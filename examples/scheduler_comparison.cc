// Compare the three scheduler architectures of the paper on one workload:
// monolithic (single- and multi-path), two-level (Mesos-style offers), and
// shared-state (Omega) — the §4 experiment in miniature.
//
//   ./build/examples/scheduler_comparison [t_job_service_seconds]
//
// Try e.g. 0.1 (everything fine everywhere) and 30 (the monolithic
// single-path saturates and Mesos starves its batch framework while Omega
// shrugs it off).
#include <cstdlib>
#include <iostream>

#include "src/exp/experiment.h"
#include "src/mesos/mesos_simulation.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/monolithic.h"
#include "src/workload/cluster_config.h"

int main(int argc, char** argv) {
  using namespace omega;

  const double t_job_service = argc > 1 ? std::atof(argv[1]) : 10.0;
  ClusterConfig cluster = TestCluster(128);
  cluster.batch.interarrival_mean_secs = 0.5;
  cluster.service.interarrival_mean_secs = 20.0;

  SimOptions options;
  options.horizon = Duration::FromHours(12);
  options.seed = 7;

  SchedulerConfig batch;
  SchedulerConfig service;
  service.service_times.t_job = Duration::FromSeconds(t_job_service);
  SchedulerConfig single = service;
  single.batch_times = single.service_times;

  std::cout << "cluster: " << cluster.num_machines << " machines, "
            << "t_job(service) = " << t_job_service << " s, horizon = "
            << options.horizon.ToHours() << " h\n\n";

  TablePrinter table({"architecture", "batch wait [s]", "service wait [s]",
                      "busyness (batch path)", "conflicts", "abandoned"});

  {
    MonolithicSimulation sim(cluster, options, single);
    sim.Run();
    const auto& m = sim.scheduler().metrics();
    table.AddRow({"monolithic single-path",
                  FormatValue(m.MeanWait(JobType::kBatch)),
                  FormatValue(m.MeanWait(JobType::kService)),
                  FormatValue(m.Busyness(sim.EndTime()).median), "0",
                  std::to_string(m.JobsAbandonedTotal())});
  }
  {
    MonolithicSimulation sim(cluster, options, service);
    sim.Run();
    const auto& m = sim.scheduler().metrics();
    table.AddRow({"monolithic multi-path",
                  FormatValue(m.MeanWait(JobType::kBatch)),
                  FormatValue(m.MeanWait(JobType::kService)),
                  FormatValue(m.Busyness(sim.EndTime()).median), "0",
                  std::to_string(m.JobsAbandonedTotal())});
  }
  {
    MesosSimulation sim(cluster, options, batch, service);
    sim.Run();
    table.AddRow(
        {"two-level (Mesos)",
         FormatValue(sim.batch_framework().metrics().MeanWait(JobType::kBatch)),
         FormatValue(
             sim.service_framework().metrics().MeanWait(JobType::kService)),
         FormatValue(
             sim.batch_framework().metrics().Busyness(sim.EndTime()).median),
         "0 (pessimistic)", std::to_string(sim.TotalJobsAbandoned())});
  }
  {
    OmegaSimulation sim(cluster, options, batch, service);
    sim.Run();
    int64_t conflicts = sim.service_scheduler().metrics().TasksConflicted();
    for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
      conflicts += sim.batch_scheduler(i).metrics().TasksConflicted();
    }
    table.AddRow(
        {"shared-state (Omega)", FormatValue(sim.MeanBatchWait()),
         FormatValue(sim.service_scheduler().metrics().MeanWait(JobType::kService)),
         FormatValue(sim.MeanBatchBusyness()), std::to_string(conflicts),
         std::to_string(sim.TotalJobsAbandoned())});
  }
  table.Print(std::cout);
  std::cout << "\nOmega resolves its conflicts by retrying; the monolithic\n"
               "single-path serializes everything behind slow decisions and\n"
               "Mesos locks offered resources for their whole duration.\n";
  return 0;
}
