// Run one (or all) of the four simulated architectures on a small cell and
// emit a unified RunReport as JSON — one object per architecture, one per
// line. Optionally records the full scheduling-lifecycle trace and writes
// both export formats next to the reports.
//
//   ./build/examples/run_report [monolithic|mesos|omega|hifi|all] [--trace-dir DIR]
//
// With --trace-dir, each architecture's run additionally writes
// DIR/<arch>.trace.json (Chrome trace-event format; open in Perfetto or
// chrome://tracing) and DIR/<arch>.jsonl (one event per line).
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/hifi/hifi_simulation.h"
#include "src/mesos/mesos_simulation.h"
#include "src/obs/run_report.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/monolithic.h"
#include "src/workload/cluster_config.h"

namespace {

using namespace omega;

struct Setup {
  ClusterConfig cluster;
  SimOptions options;
  SchedulerConfig batch;
  SchedulerConfig service;
};

Setup MakeSetup() {
  Setup s;
  s.cluster = TestCluster(64);
  s.options.horizon = Duration::FromHours(6);
  s.options.seed = 42;
  s.options.utilization_sample_interval = Duration::FromHours(1);
  s.batch.name = "batch";
  s.service.name = "service";
  s.service.service_times.t_job = Duration::FromSeconds(5);
  return s;
}

void ExportTrace(const TraceRecorder& trace, const std::string& dir,
                 const std::string& arch) {
  {
    std::ofstream os(dir + "/" + arch + ".trace.json");
    trace.ExportChromeTrace(os);
  }
  {
    std::ofstream os(dir + "/" + arch + ".jsonl");
    trace.ExportJsonLines(os);
  }
  std::cerr << arch << ": wrote " << trace.Retained() << " trace events to "
            << dir << "/" << arch << ".{trace.json,jsonl}\n";
}

void EmitReport(const RunReport& report) {
  report.ToJson(std::cout);
  std::cout << "\n";
}

void RunArch(const std::string& arch, const std::string& trace_dir) {
  Setup s = MakeSetup();
  std::unique_ptr<TraceRecorder> trace;
  if (!trace_dir.empty()) {
    trace = std::make_unique<TraceRecorder>();
  }

  if (arch == "monolithic") {
    SchedulerConfig single = s.service;
    single.name = "monolithic";
    single.batch_times = single.service_times;
    MonolithicSimulation sim(s.cluster, s.options, single);
    if (trace) {
      sim.SetTraceRecorder(trace.get());
    }
    sim.Run();
    EmitReport(BuildRunReport(arch, sim));
  } else if (arch == "mesos") {
    MesosSimulation sim(s.cluster, s.options, s.batch, s.service);
    if (trace) {
      sim.SetTraceRecorder(trace.get());
    }
    sim.Run();
    EmitReport(BuildRunReport(arch, sim));
  } else if (arch == "omega") {
    // Enable preemption so the report shows eviction-won placements accounted
    // separately from the optimistic-commit counters.
    s.options.track_running_tasks = true;
    s.batch.enable_preemption = true;
    s.service.enable_preemption = true;
    OmegaSimulation sim(s.cluster, s.options, s.batch, s.service,
                        /*num_batch_schedulers=*/2);
    if (trace) {
      sim.SetTraceRecorder(trace.get());
    }
    sim.Run();
    EmitReport(BuildRunReport(arch, sim));
  } else if (arch == "hifi") {
    auto sim = MakeHifiSimulation(s.cluster, s.options, s.batch, s.service);
    if (trace) {
      sim->SetTraceRecorder(trace.get());
    }
    sim->RunTrace(GenerateHifiTrace(s.cluster, s.options.horizon, s.options.seed));
    EmitReport(BuildRunReport(arch, *sim));
  } else {
    std::cerr << "unknown architecture: " << arch << "\n";
    std::exit(1);
  }

  if (trace) {
    ExportTrace(*trace, trace_dir, arch);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string arch = "all";
  std::string trace_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace-dir" && i + 1 < argc) {
      trace_dir = argv[++i];
    } else {
      arch = a;
    }
  }
  if (arch == "all") {
    for (const char* a : {"monolithic", "mesos", "omega", "hifi"}) {
      RunArch(a, trace_dir);
    }
  } else {
    RunArch(arch, trace_dir);
  }
  return 0;
}
