// Trace tooling example: materialize a synthetic workload trace to a file,
// read it back, print summary statistics, and replay it through the
// high-fidelity simulator — the §5 pipeline end to end.
//
//   ./build/examples/trace_tool generate <path> [hours]
//   ./build/examples/trace_tool info <path>
//   ./build/examples/trace_tool replay <path>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/exp/experiment.h"
#include "src/hifi/hifi_simulation.h"
#include "src/workload/characterization.h"
#include "src/workload/cluster_config.h"
#include "src/workload/trace.h"

using namespace omega;

namespace {

int Generate(const std::string& path, double hours) {
  const ClusterConfig cluster = ClusterC();
  const auto trace =
      GenerateHifiTrace(cluster, Duration::FromHours(hours), /*seed=*/7);
  if (!WriteTraceFile(trace, path)) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << trace.size() << " jobs (" << hours
            << "h of cluster C workload) to " << path << "\n";
  return 0;
}

int Info(const std::string& path) {
  std::vector<Job> jobs;
  std::string error;
  if (!ReadTraceFile(path, &jobs, &error)) {
    std::cerr << error << "\n";
    return 1;
  }
  Duration window = Duration::Zero();
  for (const Job& j : jobs) {
    if (j.submit_time - SimTime::Zero() > window) {
      window = j.submit_time - SimTime::Zero();
    }
  }
  const WorkloadCharacterization ch = Characterize(jobs, window);
  std::cout << "jobs: " << jobs.size() << " over " << window.ToHours()
            << " hours\n"
            << "service job fraction:      " << FormatValue(ch.ServiceJobFraction())
            << "\n"
            << "service resource fraction: " << FormatValue(ch.ServiceCpuFraction())
            << "\n"
            << "median batch tasks/job:    " << ch.batch_tasks.Quantile(0.5) << "\n"
            << "median batch runtime:      " << ch.batch_runtime.Quantile(0.5)
            << " s\n";
  return 0;
}

int Replay(const std::string& path) {
  std::vector<Job> jobs;
  std::string error;
  if (!ReadTraceFile(path, &jobs, &error)) {
    std::cerr << error << "\n";
    return 1;
  }
  SimTime last;
  for (const Job& j : jobs) {
    if (j.submit_time > last) {
      last = j.submit_time;
    }
  }
  SimOptions options;
  options.horizon = last - SimTime::Zero();
  options.seed = 1;
  auto sim = MakeHifiSimulation(ClusterC(), options, SchedulerConfig{},
                                SchedulerConfig{});
  const auto submitted = static_cast<int64_t>(jobs.size());
  sim->RunTrace(std::move(jobs));
  int64_t scheduled =
      sim->service_scheduler().metrics().JobsScheduled(JobType::kService);
  for (uint32_t i = 0; i < sim->NumBatchSchedulers(); ++i) {
    scheduled += sim->batch_scheduler(i).metrics().JobsScheduled(JobType::kBatch);
  }
  std::cout << "replayed " << submitted << " jobs; scheduled " << scheduled
            << ", abandoned " << sim->TotalJobsAbandoned() << "\n"
            << "final cpu utilization: "
            << FormatValue(sim->cell().CpuUtilization()) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: trace_tool generate|info|replay <path> [hours]\n";
    return 2;
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  if (command == "generate") {
    return Generate(path, argc > 3 ? std::atof(argv[3]) : 1.0);
  }
  if (command == "info") {
    return Info(path);
  }
  if (command == "replay") {
    return Replay(path);
  }
  std::cerr << "unknown command: " << command << "\n";
  return 2;
}
