// The §6 use case as an example: a specialized MapReduce scheduler that
// opportunistically uses idle cluster resources to speed MapReduce jobs up,
// under a selectable resource policy.
//
//   ./build/examples/mapreduce_autoscaler [none|max|cap|relsize]
#include <cstring>
#include <iostream>

#include "src/exp/experiment.h"
#include "src/mapreduce/mr_scheduler.h"
#include "src/mapreduce/perf_model.h"
#include "src/workload/cluster_config.h"

int main(int argc, char** argv) {
  using namespace omega;

  MapReducePolicyOptions policy;
  policy.policy = MapReducePolicy::kMaxParallelism;
  if (argc > 1) {
    if (std::strcmp(argv[1], "none") == 0) {
      policy.policy = MapReducePolicy::kNone;
    } else if (std::strcmp(argv[1], "cap") == 0) {
      policy.policy = MapReducePolicy::kGlobalCap;
    } else if (std::strcmp(argv[1], "relsize") == 0) {
      policy.policy = MapReducePolicy::kRelativeJobSize;
    }
  }

  ClusterConfig cluster = TestCluster(256);
  cluster.initial_utilization = 0.3;  // idle headroom to harvest
  cluster.mapreduce_fraction = 0.3;

  SimOptions options;
  options.horizon = Duration::FromHours(12);
  options.seed = 11;
  options.utilization_sample_interval = Duration::FromMinutes(30);

  std::cout << "policy: " << MapReducePolicyName(policy.policy) << "\n";
  MapReduceSimulation sim(cluster, options, SchedulerConfig{}, SchedulerConfig{},
                          policy);
  sim.Run();

  // Per-job outcomes: the predictive model's speedup vs the user's request.
  Cdf speedups;
  int64_t grown = 0;
  for (const MapReduceOutcome& o : sim.mr_scheduler().outcomes()) {
    speedups.Add(o.predicted_speedup);
    if (o.granted_workers > o.requested_workers) {
      ++grown;
    }
  }
  std::cout << "mapreduce jobs:        " << speedups.count() << "\n"
            << "jobs granted extra:    " << grown << "\n"
            << "median speedup:        " << FormatValue(speedups.Quantile(0.5))
            << "x\n"
            << "80th percentile:       " << FormatValue(speedups.Quantile(0.8))
            << "x\n"
            << "max speedup:           " << FormatValue(speedups.MaxValue())
            << "x\n";

  // Show the utilization the policy produced.
  RunningStats cpu;
  for (const UtilizationSample& s : sim.utilization_series()) {
    cpu.Add(s.cpu);
  }
  std::cout << "mean cpu utilization:  " << FormatValue(cpu.mean())
            << " (stddev " << FormatValue(cpu.stddev()) << ")\n";

  // Demonstrate the predictive model directly for one synthetic job.
  MapReduceSpec spec;
  spec.num_map_activities = 2000;
  spec.num_reduce_activities = 600;
  spec.map_activity_duration = Duration::FromSeconds(45);
  spec.reduce_activity_duration = Duration::FromSeconds(90);
  spec.requested_workers = 11;  // one of the frequently observed values (§6)
  std::cout << "\npredictive model for a 2000-map/600-reduce job:\n";
  TablePrinter table({"workers", "predicted completion [s]", "speedup"});
  for (int64_t w : {11, 44, 200, 1000, 2000}) {
    table.AddRow({std::to_string(w),
                  FormatValue(PredictCompletionTime(spec, w).ToSeconds()),
                  FormatValue(PredictSpeedup(spec, w))});
  }
  table.Print(std::cout);
  return 0;
}
