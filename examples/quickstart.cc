// Quickstart: build a small cell, run the shared-state (Omega) architecture
// with one batch and one service scheduler for a simulated day, and print the
// headline metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "src/omega/omega_scheduler.h"
#include "src/workload/cluster_config.h"

int main() {
  using namespace omega;

  // 1. Describe the cluster. TestCluster() is a 32-machine cell with a small
  //    synthetic workload; ClusterA()..ClusterD() reproduce the paper's cells.
  const ClusterConfig cluster = TestCluster(/*num_machines=*/64);

  // 2. Simulation options: horizon, seed, optional utilization sampling.
  SimOptions options;
  options.horizon = Duration::FromHours(24);
  options.seed = 42;

  // 3. Configure the schedulers. Decision time is modeled as
  //    t_job + t_task * tasks; the service scheduler gets a deliberately slow
  //    per-job overhead to show that it does not block the batch scheduler.
  SchedulerConfig batch;
  batch.name = "batch";
  SchedulerConfig service;
  service.name = "service";
  service.service_times.t_job = Duration::FromSeconds(5.0);

  // 4. Run. Each scheduler syncs a private copy of the shared cell state,
  //    places tasks, and commits optimistic transactions.
  OmegaSimulation sim(cluster, options, batch, service);
  sim.Run();

  // 5. Inspect the results.
  const SimTime end = sim.EndTime();
  const auto& bm = sim.batch_scheduler(0).metrics();
  const auto& sm = sim.service_scheduler().metrics();
  std::cout << "jobs submitted:     " << sim.JobsSubmittedTotal() << "\n"
            << "batch scheduled:    " << bm.JobsScheduled(JobType::kBatch) << "\n"
            << "service scheduled:  " << sm.JobsScheduled(JobType::kService) << "\n"
            << "batch wait (mean):  " << bm.MeanWait(JobType::kBatch) << " s\n"
            << "service wait:       " << sm.MeanWait(JobType::kService) << " s\n"
            << "batch busyness:     " << bm.Busyness(end).median << "\n"
            << "service busyness:   " << sm.Busyness(end).median << "\n"
            << "service conflicts:  " << sm.ConflictFraction(end).mean
            << " per scheduled job\n"
            << "final cpu util:     " << sim.cell().CpuUtilization() << "\n";
  return 0;
}
