file(REMOVE_RECURSE
  "CMakeFiles/omega_exp.dir/experiment.cc.o"
  "CMakeFiles/omega_exp.dir/experiment.cc.o.d"
  "libomega_exp.a"
  "libomega_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
