# Empty compiler generated dependencies file for omega_exp.
# This may be replaced when dependencies are built.
