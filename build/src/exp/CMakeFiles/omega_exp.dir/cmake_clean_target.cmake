file(REMOVE_RECURSE
  "libomega_exp.a"
)
