file(REMOVE_RECURSE
  "CMakeFiles/omega_scheduler.dir/cluster_simulation.cc.o"
  "CMakeFiles/omega_scheduler.dir/cluster_simulation.cc.o.d"
  "CMakeFiles/omega_scheduler.dir/metrics.cc.o"
  "CMakeFiles/omega_scheduler.dir/metrics.cc.o.d"
  "CMakeFiles/omega_scheduler.dir/monolithic.cc.o"
  "CMakeFiles/omega_scheduler.dir/monolithic.cc.o.d"
  "CMakeFiles/omega_scheduler.dir/partitioned.cc.o"
  "CMakeFiles/omega_scheduler.dir/partitioned.cc.o.d"
  "CMakeFiles/omega_scheduler.dir/placement.cc.o"
  "CMakeFiles/omega_scheduler.dir/placement.cc.o.d"
  "CMakeFiles/omega_scheduler.dir/queue_scheduler.cc.o"
  "CMakeFiles/omega_scheduler.dir/queue_scheduler.cc.o.d"
  "libomega_scheduler.a"
  "libomega_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
