# Empty dependencies file for omega_scheduler.
# This may be replaced when dependencies are built.
