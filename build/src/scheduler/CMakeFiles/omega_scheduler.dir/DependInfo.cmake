
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheduler/cluster_simulation.cc" "src/scheduler/CMakeFiles/omega_scheduler.dir/cluster_simulation.cc.o" "gcc" "src/scheduler/CMakeFiles/omega_scheduler.dir/cluster_simulation.cc.o.d"
  "/root/repo/src/scheduler/metrics.cc" "src/scheduler/CMakeFiles/omega_scheduler.dir/metrics.cc.o" "gcc" "src/scheduler/CMakeFiles/omega_scheduler.dir/metrics.cc.o.d"
  "/root/repo/src/scheduler/monolithic.cc" "src/scheduler/CMakeFiles/omega_scheduler.dir/monolithic.cc.o" "gcc" "src/scheduler/CMakeFiles/omega_scheduler.dir/monolithic.cc.o.d"
  "/root/repo/src/scheduler/partitioned.cc" "src/scheduler/CMakeFiles/omega_scheduler.dir/partitioned.cc.o" "gcc" "src/scheduler/CMakeFiles/omega_scheduler.dir/partitioned.cc.o.d"
  "/root/repo/src/scheduler/placement.cc" "src/scheduler/CMakeFiles/omega_scheduler.dir/placement.cc.o" "gcc" "src/scheduler/CMakeFiles/omega_scheduler.dir/placement.cc.o.d"
  "/root/repo/src/scheduler/queue_scheduler.cc" "src/scheduler/CMakeFiles/omega_scheduler.dir/queue_scheduler.cc.o" "gcc" "src/scheduler/CMakeFiles/omega_scheduler.dir/queue_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/omega_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/omega_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omega_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/omega_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
