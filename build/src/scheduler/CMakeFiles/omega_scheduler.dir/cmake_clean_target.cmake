file(REMOVE_RECURSE
  "libomega_scheduler.a"
)
