file(REMOVE_RECURSE
  "libomega_cluster.a"
)
