# Empty compiler generated dependencies file for omega_cluster.
# This may be replaced when dependencies are built.
