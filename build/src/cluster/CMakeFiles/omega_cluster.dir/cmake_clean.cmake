file(REMOVE_RECURSE
  "CMakeFiles/omega_cluster.dir/cell_state.cc.o"
  "CMakeFiles/omega_cluster.dir/cell_state.cc.o.d"
  "CMakeFiles/omega_cluster.dir/task_registry.cc.o"
  "CMakeFiles/omega_cluster.dir/task_registry.cc.o.d"
  "libomega_cluster.a"
  "libomega_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
