file(REMOVE_RECURSE
  "CMakeFiles/omega_omega.dir/audit.cc.o"
  "CMakeFiles/omega_omega.dir/audit.cc.o.d"
  "CMakeFiles/omega_omega.dir/omega_scheduler.cc.o"
  "CMakeFiles/omega_omega.dir/omega_scheduler.cc.o.d"
  "libomega_omega.a"
  "libomega_omega.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_omega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
