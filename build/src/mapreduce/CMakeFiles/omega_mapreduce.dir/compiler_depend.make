# Empty compiler generated dependencies file for omega_mapreduce.
# This may be replaced when dependencies are built.
