file(REMOVE_RECURSE
  "CMakeFiles/omega_mapreduce.dir/mr_scheduler.cc.o"
  "CMakeFiles/omega_mapreduce.dir/mr_scheduler.cc.o.d"
  "CMakeFiles/omega_mapreduce.dir/perf_model.cc.o"
  "CMakeFiles/omega_mapreduce.dir/perf_model.cc.o.d"
  "CMakeFiles/omega_mapreduce.dir/policy.cc.o"
  "CMakeFiles/omega_mapreduce.dir/policy.cc.o.d"
  "libomega_mapreduce.a"
  "libomega_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
