
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/mr_scheduler.cc" "src/mapreduce/CMakeFiles/omega_mapreduce.dir/mr_scheduler.cc.o" "gcc" "src/mapreduce/CMakeFiles/omega_mapreduce.dir/mr_scheduler.cc.o.d"
  "/root/repo/src/mapreduce/perf_model.cc" "src/mapreduce/CMakeFiles/omega_mapreduce.dir/perf_model.cc.o" "gcc" "src/mapreduce/CMakeFiles/omega_mapreduce.dir/perf_model.cc.o.d"
  "/root/repo/src/mapreduce/policy.cc" "src/mapreduce/CMakeFiles/omega_mapreduce.dir/policy.cc.o" "gcc" "src/mapreduce/CMakeFiles/omega_mapreduce.dir/policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/omega/CMakeFiles/omega_omega.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/omega_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omega_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/omega_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/omega_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/omega_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
