file(REMOVE_RECURSE
  "libomega_mapreduce.a"
)
