file(REMOVE_RECURSE
  "CMakeFiles/omega_common.dir/distributions.cc.o"
  "CMakeFiles/omega_common.dir/distributions.cc.o.d"
  "CMakeFiles/omega_common.dir/logging.cc.o"
  "CMakeFiles/omega_common.dir/logging.cc.o.d"
  "CMakeFiles/omega_common.dir/parallel_for.cc.o"
  "CMakeFiles/omega_common.dir/parallel_for.cc.o.d"
  "CMakeFiles/omega_common.dir/random.cc.o"
  "CMakeFiles/omega_common.dir/random.cc.o.d"
  "CMakeFiles/omega_common.dir/stats.cc.o"
  "CMakeFiles/omega_common.dir/stats.cc.o.d"
  "libomega_common.a"
  "libomega_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
