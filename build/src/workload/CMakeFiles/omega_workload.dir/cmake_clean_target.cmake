file(REMOVE_RECURSE
  "libomega_workload.a"
)
