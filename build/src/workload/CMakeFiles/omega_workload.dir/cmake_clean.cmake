file(REMOVE_RECURSE
  "CMakeFiles/omega_workload.dir/characterization.cc.o"
  "CMakeFiles/omega_workload.dir/characterization.cc.o.d"
  "CMakeFiles/omega_workload.dir/cluster_config.cc.o"
  "CMakeFiles/omega_workload.dir/cluster_config.cc.o.d"
  "CMakeFiles/omega_workload.dir/generator.cc.o"
  "CMakeFiles/omega_workload.dir/generator.cc.o.d"
  "CMakeFiles/omega_workload.dir/trace.cc.o"
  "CMakeFiles/omega_workload.dir/trace.cc.o.d"
  "libomega_workload.a"
  "libomega_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
