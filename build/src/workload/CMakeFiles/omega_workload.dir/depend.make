# Empty dependencies file for omega_workload.
# This may be replaced when dependencies are built.
