file(REMOVE_RECURSE
  "CMakeFiles/omega_sim.dir/event_queue.cc.o"
  "CMakeFiles/omega_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/omega_sim.dir/simulator.cc.o"
  "CMakeFiles/omega_sim.dir/simulator.cc.o.d"
  "libomega_sim.a"
  "libomega_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
