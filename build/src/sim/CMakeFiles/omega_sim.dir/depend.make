# Empty dependencies file for omega_sim.
# This may be replaced when dependencies are built.
