file(REMOVE_RECURSE
  "CMakeFiles/omega_hifi.dir/hifi_simulation.cc.o"
  "CMakeFiles/omega_hifi.dir/hifi_simulation.cc.o.d"
  "CMakeFiles/omega_hifi.dir/scoring_placer.cc.o"
  "CMakeFiles/omega_hifi.dir/scoring_placer.cc.o.d"
  "libomega_hifi.a"
  "libomega_hifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_hifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
