# Empty compiler generated dependencies file for omega_hifi.
# This may be replaced when dependencies are built.
