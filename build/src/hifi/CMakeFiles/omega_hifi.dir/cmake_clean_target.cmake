file(REMOVE_RECURSE
  "libomega_hifi.a"
)
