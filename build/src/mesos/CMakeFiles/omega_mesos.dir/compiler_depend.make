# Empty compiler generated dependencies file for omega_mesos.
# This may be replaced when dependencies are built.
