file(REMOVE_RECURSE
  "libomega_mesos.a"
)
