file(REMOVE_RECURSE
  "CMakeFiles/omega_mesos.dir/mesos_simulation.cc.o"
  "CMakeFiles/omega_mesos.dir/mesos_simulation.cc.o.d"
  "libomega_mesos.a"
  "libomega_mesos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_mesos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
