file(REMOVE_RECURSE
  "CMakeFiles/fig8_load_scaling.dir/fig8_load_scaling.cc.o"
  "CMakeFiles/fig8_load_scaling.dir/fig8_load_scaling.cc.o.d"
  "fig8_load_scaling"
  "fig8_load_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_load_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
