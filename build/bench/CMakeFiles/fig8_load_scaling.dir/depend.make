# Empty dependencies file for fig8_load_scaling.
# This may be replaced when dependencies are built.
