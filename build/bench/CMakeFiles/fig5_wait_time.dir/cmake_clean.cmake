file(REMOVE_RECURSE
  "CMakeFiles/fig5_wait_time.dir/fig5_wait_time.cc.o"
  "CMakeFiles/fig5_wait_time.dir/fig5_wait_time.cc.o.d"
  "fig5_wait_time"
  "fig5_wait_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_wait_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
