# Empty compiler generated dependencies file for fig13_hifi_load_balance.
# This may be replaced when dependencies are built.
