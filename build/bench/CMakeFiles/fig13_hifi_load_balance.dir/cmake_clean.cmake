file(REMOVE_RECURSE
  "CMakeFiles/fig13_hifi_load_balance.dir/fig13_hifi_load_balance.cc.o"
  "CMakeFiles/fig13_hifi_load_balance.dir/fig13_hifi_load_balance.cc.o.d"
  "fig13_hifi_load_balance"
  "fig13_hifi_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hifi_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
