file(REMOVE_RECURSE
  "CMakeFiles/fig14_conflict_modes.dir/fig14_conflict_modes.cc.o"
  "CMakeFiles/fig14_conflict_modes.dir/fig14_conflict_modes.cc.o.d"
  "fig14_conflict_modes"
  "fig14_conflict_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_conflict_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
