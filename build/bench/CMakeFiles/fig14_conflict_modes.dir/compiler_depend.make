# Empty compiler generated dependencies file for fig14_conflict_modes.
# This may be replaced when dependencies are built.
