# Empty compiler generated dependencies file for fig9_multi_scheduler.
# This may be replaced when dependencies are built.
