file(REMOVE_RECURSE
  "CMakeFiles/fig9_multi_scheduler.dir/fig9_multi_scheduler.cc.o"
  "CMakeFiles/fig9_multi_scheduler.dir/fig9_multi_scheduler.cc.o.d"
  "fig9_multi_scheduler"
  "fig9_multi_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_multi_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
