# Empty dependencies file for fig4_tasks_per_job_cdf.
# This may be replaced when dependencies are built.
