file(REMOVE_RECURSE
  "CMakeFiles/fig15_mapreduce_speedup.dir/fig15_mapreduce_speedup.cc.o"
  "CMakeFiles/fig15_mapreduce_speedup.dir/fig15_mapreduce_speedup.cc.o.d"
  "fig15_mapreduce_speedup"
  "fig15_mapreduce_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_mapreduce_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
