# Empty dependencies file for fig15_mapreduce_speedup.
# This may be replaced when dependencies are built.
