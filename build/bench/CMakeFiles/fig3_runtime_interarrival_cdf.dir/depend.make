# Empty dependencies file for fig3_runtime_interarrival_cdf.
# This may be replaced when dependencies are built.
