file(REMOVE_RECURSE
  "CMakeFiles/fig7_mesos.dir/fig7_mesos.cc.o"
  "CMakeFiles/fig7_mesos.dir/fig7_mesos.cc.o.d"
  "fig7_mesos"
  "fig7_mesos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mesos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
