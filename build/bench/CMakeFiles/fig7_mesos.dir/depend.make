# Empty dependencies file for fig7_mesos.
# This may be replaced when dependencies are built.
