file(REMOVE_RECURSE
  "CMakeFiles/fig12_hifi_cluster_b.dir/fig12_hifi_cluster_b.cc.o"
  "CMakeFiles/fig12_hifi_cluster_b.dir/fig12_hifi_cluster_b.cc.o.d"
  "fig12_hifi_cluster_b"
  "fig12_hifi_cluster_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hifi_cluster_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
