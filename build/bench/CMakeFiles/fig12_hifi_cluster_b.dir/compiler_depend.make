# Empty compiler generated dependencies file for fig12_hifi_cluster_b.
# This may be replaced when dependencies are built.
