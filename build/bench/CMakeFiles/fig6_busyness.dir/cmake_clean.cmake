file(REMOVE_RECURSE
  "CMakeFiles/fig6_busyness.dir/fig6_busyness.cc.o"
  "CMakeFiles/fig6_busyness.dir/fig6_busyness.cc.o.d"
  "fig6_busyness"
  "fig6_busyness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_busyness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
