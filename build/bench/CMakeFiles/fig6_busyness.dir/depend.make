# Empty dependencies file for fig6_busyness.
# This may be replaced when dependencies are built.
