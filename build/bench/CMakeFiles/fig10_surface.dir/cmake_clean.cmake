file(REMOVE_RECURSE
  "CMakeFiles/fig10_surface.dir/fig10_surface.cc.o"
  "CMakeFiles/fig10_surface.dir/fig10_surface.cc.o.d"
  "fig10_surface"
  "fig10_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
