# Empty dependencies file for fig10_surface.
# This may be replaced when dependencies are built.
