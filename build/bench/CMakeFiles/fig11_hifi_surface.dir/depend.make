# Empty dependencies file for fig11_hifi_surface.
# This may be replaced when dependencies are built.
