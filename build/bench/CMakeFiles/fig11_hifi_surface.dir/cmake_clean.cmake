file(REMOVE_RECURSE
  "CMakeFiles/fig11_hifi_surface.dir/fig11_hifi_surface.cc.o"
  "CMakeFiles/fig11_hifi_surface.dir/fig11_hifi_surface.cc.o.d"
  "fig11_hifi_surface"
  "fig11_hifi_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hifi_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
