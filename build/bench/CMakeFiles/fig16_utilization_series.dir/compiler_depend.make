# Empty compiler generated dependencies file for fig16_utilization_series.
# This may be replaced when dependencies are built.
