file(REMOVE_RECURSE
  "CMakeFiles/fig16_utilization_series.dir/fig16_utilization_series.cc.o"
  "CMakeFiles/fig16_utilization_series.dir/fig16_utilization_series.cc.o.d"
  "fig16_utilization_series"
  "fig16_utilization_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_utilization_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
