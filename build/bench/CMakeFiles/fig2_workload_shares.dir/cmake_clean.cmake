file(REMOVE_RECURSE
  "CMakeFiles/fig2_workload_shares.dir/fig2_workload_shares.cc.o"
  "CMakeFiles/fig2_workload_shares.dir/fig2_workload_shares.cc.o.d"
  "fig2_workload_shares"
  "fig2_workload_shares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_workload_shares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
