# Empty compiler generated dependencies file for fig2_workload_shares.
# This may be replaced when dependencies are built.
