# Empty compiler generated dependencies file for table2_simulators.
# This may be replaced when dependencies are built.
