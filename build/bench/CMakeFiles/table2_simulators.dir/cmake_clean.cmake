file(REMOVE_RECURSE
  "CMakeFiles/table2_simulators.dir/table2_simulators.cc.o"
  "CMakeFiles/table2_simulators.dir/table2_simulators.cc.o.d"
  "table2_simulators"
  "table2_simulators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_simulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
