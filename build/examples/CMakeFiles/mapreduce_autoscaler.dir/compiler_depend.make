# Empty compiler generated dependencies file for mapreduce_autoscaler.
# This may be replaced when dependencies are built.
