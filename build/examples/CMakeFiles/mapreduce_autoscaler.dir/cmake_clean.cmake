file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_autoscaler.dir/mapreduce_autoscaler.cc.o"
  "CMakeFiles/mapreduce_autoscaler.dir/mapreduce_autoscaler.cc.o.d"
  "mapreduce_autoscaler"
  "mapreduce_autoscaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
