# Empty compiler generated dependencies file for preemption_test.
# This may be replaced when dependencies are built.
