file(REMOVE_RECURSE
  "CMakeFiles/preemption_test.dir/preemption_test.cc.o"
  "CMakeFiles/preemption_test.dir/preemption_test.cc.o.d"
  "preemption_test"
  "preemption_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preemption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
