file(REMOVE_RECURSE
  "CMakeFiles/omega_test.dir/omega_test.cc.o"
  "CMakeFiles/omega_test.dir/omega_test.cc.o.d"
  "omega_test"
  "omega_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
