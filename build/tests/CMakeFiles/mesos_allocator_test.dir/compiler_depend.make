# Empty compiler generated dependencies file for mesos_allocator_test.
# This may be replaced when dependencies are built.
