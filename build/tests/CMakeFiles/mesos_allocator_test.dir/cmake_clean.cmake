file(REMOVE_RECURSE
  "CMakeFiles/mesos_allocator_test.dir/mesos_allocator_test.cc.o"
  "CMakeFiles/mesos_allocator_test.dir/mesos_allocator_test.cc.o.d"
  "mesos_allocator_test"
  "mesos_allocator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesos_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
