# Empty dependencies file for queue_scheduler_test.
# This may be replaced when dependencies are built.
