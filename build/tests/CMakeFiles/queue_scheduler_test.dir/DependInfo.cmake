
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/queue_scheduler_test.cc" "tests/CMakeFiles/queue_scheduler_test.dir/queue_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/queue_scheduler_test.dir/queue_scheduler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/omega_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/hifi/CMakeFiles/omega_hifi.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/omega_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/mesos/CMakeFiles/omega_mesos.dir/DependInfo.cmake"
  "/root/repo/build/src/omega/CMakeFiles/omega_omega.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/omega_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/omega_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/omega_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omega_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/omega_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
