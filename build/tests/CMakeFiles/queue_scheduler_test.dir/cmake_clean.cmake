file(REMOVE_RECURSE
  "CMakeFiles/queue_scheduler_test.dir/queue_scheduler_test.cc.o"
  "CMakeFiles/queue_scheduler_test.dir/queue_scheduler_test.cc.o.d"
  "queue_scheduler_test"
  "queue_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
