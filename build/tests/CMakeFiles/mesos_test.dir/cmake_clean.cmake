file(REMOVE_RECURSE
  "CMakeFiles/mesos_test.dir/mesos_test.cc.o"
  "CMakeFiles/mesos_test.dir/mesos_test.cc.o.d"
  "mesos_test"
  "mesos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
