# Empty dependencies file for hifi_test.
# This may be replaced when dependencies are built.
