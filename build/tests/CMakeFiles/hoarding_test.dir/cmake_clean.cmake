file(REMOVE_RECURSE
  "CMakeFiles/hoarding_test.dir/hoarding_test.cc.o"
  "CMakeFiles/hoarding_test.dir/hoarding_test.cc.o.d"
  "hoarding_test"
  "hoarding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoarding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
