file(REMOVE_RECURSE
  "CMakeFiles/cell_state_test.dir/cell_state_test.cc.o"
  "CMakeFiles/cell_state_test.dir/cell_state_test.cc.o.d"
  "cell_state_test"
  "cell_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
