file(REMOVE_RECURSE
  "CMakeFiles/resources_test.dir/resources_test.cc.o"
  "CMakeFiles/resources_test.dir/resources_test.cc.o.d"
  "resources_test"
  "resources_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resources_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
