// Regression tests for allocator accounting under task-kill churn.
//
// Machine failures (and preemption) cancel a running task's end event. The
// end event is what runs the framework's end-of-life callback, which credits
// the DRF allocator via OnResourcesFreed — so a cancelled event used to leak
// the killed task's resources in the allocator's per-framework account
// forever. RunEndCallbackForKill now runs the callback on the kill path;
// these tests drive heavy kill churn through the Mesos harness and assert
// the accounts drain back to zero.
#include <gtest/gtest.h>

#include <memory>

#include "src/mesos/mesos_simulation.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

// A cell with no synthetic load at all: no arrivals, no initial fill. Every
// allocated resource in the run is traceable to a job this test injects, so
// the end-of-run allocator accounts have exact expected values.
ClusterConfig QuietCell(uint32_t machines) {
  ClusterConfig cfg = TestCluster(machines);
  cfg.initial_utilization = 0.0;
  return cfg;
}

SimOptions ChurnOptions(uint64_t seed) {
  SimOptions o;
  o.horizon = Duration::FromHours(2);
  o.seed = seed;
  o.batch_rate_multiplier = 0.0;  // no generator arrivals
  o.service_rate_multiplier = 0.0;
  o.track_running_tasks = true;
  o.machine_failure_rate_per_day = 100.0;
  o.machine_repair_time = Duration::FromSeconds(300);
  return o;
}

JobPtr MakeBatchJob(JobId id, SimTime submit, uint32_t tasks) {
  auto job = std::make_shared<Job>();
  job->id = id;
  job->type = JobType::kBatch;
  job->submit_time = submit;
  job->num_tasks = tasks;
  // Unit-resource tasks keep the allocator arithmetic exact: every credit
  // and debit is a sum of 1.0s, so a drained account is exactly zero.
  job->task_resources = Resources{1.0, 1.0};
  job->task_duration = Duration::FromSeconds(900);
  job->precedence = DefaultPrecedence(JobType::kBatch);
  return job;
}

TEST(MesosChurnTest, KilledTasksDrainAllocatorAccounts) {
  MesosSimulation sim(QuietCell(16), ChurnOptions(11), SchedulerConfig{},
                      SchedulerConfig{});
  // Stagger 30 jobs over the first ~15 minutes; with 900 s tasks and a
  // failure every ~minute, many tasks die mid-flight. All work — completed
  // or killed — is long over by the 2 h horizon.
  for (uint32_t i = 0; i < 30; ++i) {
    const SimTime when = SimTime::Zero() + Duration::FromSeconds(30.0 * (i + 1));
    JobPtr job = MakeBatchJob(/*id=*/1000 + i, when, /*tasks=*/8);
    sim.sim().ScheduleAt(when, [&sim, job] { sim.InjectJob(job); });
  }
  sim.Run();

  // The churn actually happened: tasks ran and tasks were killed.
  EXPECT_GT(sim.batch_framework().metrics().TasksAccepted(), 0);
  EXPECT_GT(sim.TasksKilledByFailures(), 0);

  // The regression: killed tasks' end callbacks must have credited the
  // allocator, so both DRF accounts are back to exactly zero.
  EXPECT_EQ(sim.allocator().DominantShare(&sim.batch_framework()), 0.0);
  EXPECT_EQ(sim.allocator().DominantShare(&sim.service_framework()), 0.0);
  EXPECT_TRUE(sim.allocator().TotalOffered().IsZero());
  EXPECT_TRUE(sim.batch_framework().HoardedResources().IsZero());
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(MesosChurnTest, SustainedChurnKeepsSharesBounded) {
  // With generator arrivals flowing for four hours and failures killing
  // tasks throughout, a leak in the kill path accumulates without bound and
  // pushes the dominant share far past 1. A correct account can never
  // exceed the cell (running + hoarded resources fit inside capacity).
  ClusterConfig cfg = TestCluster(16);
  SimOptions o;
  o.horizon = Duration::FromHours(4);
  o.seed = 12;
  o.track_running_tasks = true;
  o.machine_failure_rate_per_day = 50.0;
  o.machine_repair_time = Duration::FromSeconds(600);
  MesosSimulation sim(cfg, o, SchedulerConfig{}, SchedulerConfig{});
  sim.Run();

  EXPECT_GT(sim.TasksKilledByFailures(), 0);
  for (MesosFramework* fw :
       {&sim.batch_framework(), &sim.service_framework()}) {
    const double share = sim.allocator().DominantShare(fw);
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0);
  }
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(MesosChurnTest, GangHoardingSurvivesChurn) {
  // Gang-scheduled (all-or-nothing) jobs hoard partial placements; failures
  // interleaved with hoarding must not corrupt either the hoard ledger or
  // the DRF account.
  ClusterConfig cfg = TestCluster(16);
  SimOptions o;
  o.horizon = Duration::FromHours(2);
  o.seed = 13;
  o.track_running_tasks = true;
  o.machine_failure_rate_per_day = 50.0;
  o.machine_repair_time = Duration::FromSeconds(600);
  SchedulerConfig gang_batch;
  gang_batch.commit_mode = CommitMode::kAllOrNothing;
  gang_batch.max_attempts = 50;  // break hoarding deadlocks promptly
  MesosSimulation sim(cfg, o, gang_batch, SchedulerConfig{});
  sim.Run();

  EXPECT_GT(sim.batch_framework().metrics().TasksAccepted(), 0);
  for (MesosFramework* fw :
       {&sim.batch_framework(), &sim.service_framework()}) {
    const double share = sim.allocator().DominantShare(fw);
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0);
  }
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

}  // namespace
}  // namespace omega
