#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "src/workload/characterization.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

TEST(ClusterConfigTest, AllClustersWellFormed) {
  for (const char* name : {"A", "B", "C", "D"}) {
    const ClusterConfig c = ClusterByName(name);
    EXPECT_EQ(c.name, name);
    EXPECT_GT(c.num_machines, 0u);
    EXPECT_GT(c.machine_capacity.cpus, 0.0);
    EXPECT_GT(c.machine_capacity.mem_gb, 0.0);
    EXPECT_GT(c.batch.interarrival_mean_secs, 0.0);
    EXPECT_GT(c.service.interarrival_mean_secs, 0.0);
    // Batch jobs arrive far more often than service jobs (>80% batch, §2.1).
    EXPECT_LT(c.batch.interarrival_mean_secs, c.service.interarrival_mean_secs);
    EXPECT_GT(c.initial_utilization, 0.0);
    EXPECT_LT(c.initial_utilization, 1.0);
  }
}

TEST(ClusterConfigTest, RelativeSizes) {
  // B and C are large clusters; A medium; D small (about a quarter of C).
  EXPECT_GT(ClusterB().num_machines, ClusterA().num_machines);
  EXPECT_GT(ClusterC().num_machines, ClusterA().num_machines);
  EXPECT_LT(ClusterD().num_machines, ClusterA().num_machines);
  EXPECT_NEAR(static_cast<double>(ClusterD().num_machines) /
                  ClusterC().num_machines,
              0.25, 0.05);
}

TEST(ClusterConfigDeathTest, UnknownClusterAborts) {
  EXPECT_DEATH(ClusterByName("Z"), "unknown cluster");
}

TEST(GeneratorTest, DeterministicForSeed) {
  const ClusterConfig cfg = TestCluster();
  WorkloadGenerator g1(cfg, {}, 42);
  WorkloadGenerator g2(cfg, {}, 42);
  const auto jobs1 = g1.GenerateArrivals(Duration::FromHours(2));
  const auto jobs2 = g2.GenerateArrivals(Duration::FromHours(2));
  ASSERT_EQ(jobs1.size(), jobs2.size());
  for (size_t i = 0; i < jobs1.size(); ++i) {
    EXPECT_EQ(jobs1[i].id, jobs2[i].id);
    EXPECT_EQ(jobs1[i].submit_time, jobs2[i].submit_time);
    EXPECT_EQ(jobs1[i].num_tasks, jobs2[i].num_tasks);
    EXPECT_EQ(jobs1[i].task_resources, jobs2[i].task_resources);
  }
}

TEST(GeneratorTest, ArrivalsSortedAndWithinHorizon) {
  WorkloadGenerator gen(TestCluster(), {}, 7);
  const Duration horizon = Duration::FromHours(4);
  const auto jobs = gen.GenerateArrivals(horizon);
  ASSERT_FALSE(jobs.empty());
  for (size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_LE(jobs[i - 1].submit_time, jobs[i].submit_time);
  }
  for (const Job& j : jobs) {
    EXPECT_LE(j.submit_time, SimTime::Zero() + horizon);
    EXPECT_GE(j.num_tasks, 1u);
    EXPECT_GT(j.task_duration.micros(), 0);
    EXPECT_GT(j.task_resources.cpus, 0.0);
    EXPECT_GT(j.task_resources.mem_gb, 0.0);
  }
}

TEST(GeneratorTest, UniqueJobIds) {
  WorkloadGenerator gen(TestCluster(), {}, 9);
  const auto jobs = gen.GenerateArrivals(Duration::FromHours(8));
  std::set<JobId> ids;
  for (const Job& j : jobs) {
    EXPECT_TRUE(ids.insert(j.id).second);
  }
}

TEST(GeneratorTest, BatchRateMultiplierScalesArrivals) {
  GeneratorOptions base;
  GeneratorOptions scaled;
  scaled.batch_rate_multiplier = 4.0;
  WorkloadGenerator g1(TestCluster(), base, 11);
  WorkloadGenerator g2(TestCluster(), scaled, 11);
  auto count_batch = [](const std::vector<Job>& jobs) {
    int64_t n = 0;
    for (const Job& j : jobs) {
      if (j.type == JobType::kBatch) {
        ++n;
      }
    }
    return n;
  };
  const auto n1 = count_batch(g1.GenerateArrivals(Duration::FromHours(24)));
  const auto n2 = count_batch(g2.GenerateArrivals(Duration::FromHours(24)));
  EXPECT_NEAR(static_cast<double>(n2) / static_cast<double>(n1), 4.0, 0.5);
}

TEST(GeneratorTest, InterarrivalMeanMatchesConfig) {
  const ClusterConfig cfg = TestCluster();
  WorkloadGenerator gen(cfg, {}, 13);
  const auto jobs = gen.GenerateArrivals(Duration::FromHours(48));
  int64_t batch_jobs = 0;
  for (const Job& j : jobs) {
    if (j.type == JobType::kBatch) {
      ++batch_jobs;
    }
  }
  const double expected = 48.0 * 3600.0 / cfg.batch.interarrival_mean_secs;
  EXPECT_NEAR(batch_jobs, expected, expected * 0.1);
}

TEST(GeneratorTest, ConstraintsOnlyWhenEnabled) {
  WorkloadGenerator gen(TestCluster(), {}, 15);
  for (const Job& j : gen.GenerateArrivals(Duration::FromHours(12))) {
    EXPECT_TRUE(j.constraints.empty());
  }
}

TEST(GeneratorTest, ConstraintsHaveDistinctKeys) {
  GeneratorOptions opts;
  opts.generate_constraints = true;
  ClusterConfig cfg = TestCluster();
  cfg.service_constrained_fraction = 1.0;
  cfg.batch_constrained_fraction = 1.0;
  WorkloadGenerator gen(cfg, opts, 17);
  int constrained = 0;
  for (const Job& j : gen.GenerateArrivals(Duration::FromHours(12))) {
    if (j.constraints.empty()) {
      continue;
    }
    ++constrained;
    std::set<int32_t> keys;
    for (const PlacementConstraint& c : j.constraints) {
      EXPECT_TRUE(keys.insert(c.attribute_key).second)
          << "duplicate constraint key would make the job unsatisfiable";
      EXPECT_GE(c.attribute_key, 0);
      EXPECT_LT(c.attribute_key, opts.num_attribute_keys);
      EXPECT_GE(c.attribute_value, 0);
      EXPECT_LT(c.attribute_value, opts.num_attribute_values);
    }
  }
  EXPECT_GT(constrained, 0);
}

TEST(GeneratorTest, MapReduceSpecsAttachedToBatchOnly) {
  GeneratorOptions opts;
  opts.generate_mapreduce_specs = true;
  ClusterConfig cfg = TestCluster();
  cfg.mapreduce_fraction = 0.5;
  WorkloadGenerator gen(cfg, opts, 19);
  int mr = 0;
  int batch = 0;
  int with_headroom = 0;
  for (const Job& j : gen.GenerateArrivals(Duration::FromHours(24))) {
    if (j.type == JobType::kService) {
      EXPECT_FALSE(j.mapreduce.has_value());
      continue;
    }
    ++batch;
    if (j.mapreduce.has_value()) {
      ++mr;
      EXPECT_GT(j.mapreduce->num_map_activities, 0);
      EXPECT_GT(j.mapreduce->requested_workers, 0);
      if (j.mapreduce->num_map_activities >= j.mapreduce->requested_workers) {
        ++with_headroom;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(mr) / batch, 0.5, 0.1);
  // Most — but deliberately not all — MapReduce jobs have more activities
  // than workers, i.e. headroom for opportunistic speedup (§6.1 / Fig. 15:
  // only 50-70% of jobs can benefit).
  EXPECT_GT(static_cast<double>(with_headroom) / mr, 0.5);
  EXPECT_LT(static_cast<double>(with_headroom) / mr, 0.95);
}

TEST(GeneratorTest, InitialTasksMostlyLongLived) {
  WorkloadGenerator gen(ClusterA(), {}, 21);
  int64_t longer_than_day = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto task = gen.SampleInitialTask();
    EXPECT_GT(task.resources.cpus, 0.0);
    EXPECT_GE(task.remaining.micros(), 0);
    if (task.remaining > Duration::FromDays(1)) {
      ++longer_than_day;
    }
  }
  // Length-biased sampling: a solid fraction of the standing population
  // remains beyond a day (the long-lived service stock).
  EXPECT_GT(longer_than_day, n / 4);
}

TEST(MachineAttributesTest, DeterministicAndInRange) {
  MachineAttributeAssignment a;
  a.num_attribute_keys = 5;
  a.num_attribute_values = 3;
  a.seed = 77;
  const auto attrs1 = GenerateMachineAttributes(100, a);
  const auto attrs2 = GenerateMachineAttributes(100, a);
  EXPECT_EQ(attrs1, attrs2);
  ASSERT_EQ(attrs1.size(), 100u);
  for (const auto& machine : attrs1) {
    ASSERT_EQ(machine.size(), 5u);
    for (int32_t v : machine) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 3);
    }
  }
}

TEST(CharacterizationTest, SharesMatchPaperShape) {
  // Use a full-size cluster over several days so the shares stabilize.
  WorkloadGenerator gen(ClusterB(), {}, 23);
  const Duration window = Duration::FromDays(3);
  const auto jobs = gen.GenerateArrivals(window);
  const WorkloadCharacterization ch = Characterize(jobs, window);
  // >80% of jobs are batch (§2.1).
  EXPECT_GT(1.0 - ch.ServiceJobFraction(), 0.8);
  // The majority of resources go to service jobs (55-80% in the paper; our
  // synthetic calibration targets that band loosely).
  EXPECT_GT(ch.ServiceCpuFraction(), 0.4);
  // Service jobs run longer: compare median runtimes.
  EXPECT_GT(ch.service_runtime.Quantile(0.5), ch.batch_runtime.Quantile(0.5));
  // A visible fraction of service jobs outlives a month.
  EXPECT_GT(ch.service_over_month_fraction, 0.03);
}

TEST(CharacterizationTest, EmptyInput) {
  const WorkloadCharacterization ch = Characterize({}, Duration::FromDays(1));
  EXPECT_EQ(ch.batch.jobs, 0.0);
  EXPECT_EQ(ch.ServiceJobFraction(), 0.0);
  EXPECT_EQ(ch.service_over_month_fraction, 0.0);
}

TEST(CharacterizationTest, RuntimeCappedAtWindow) {
  Job j;
  j.type = JobType::kService;
  j.submit_time = SimTime::Zero();
  j.num_tasks = 1;
  j.task_duration = Duration::FromDays(100);
  j.task_resources = Resources{1.0, 1.0};
  const auto ch = Characterize({j}, Duration::FromDays(30));
  EXPECT_DOUBLE_EQ(ch.service_runtime.MaxValue(), 30.0 * 86400.0);
  EXPECT_DOUBLE_EQ(ch.service_over_month_fraction, 1.0);
  EXPECT_DOUBLE_EQ(ch.service.cpu_seconds, 30.0 * 86400.0);
}

}  // namespace
}  // namespace omega
