// Negative fixture: everything here is legal header content — constants,
// declarations, classes with mutable members, inline functions with locals.
#pragma once

#include <string>

namespace fixture {

inline constexpr int kAnswer = 42;
constexpr double kScale = 2.5;
const char* LookupName(int id);

class Widget {
 public:
  void Tick() {
    int local_state = 0;  // function-local mutable state is fine
    ++local_state;
    count_ += local_state;
  }

 private:
  int count_ = 0;  // mutable class member is fine
  std::string name_;
};

enum class Mode : int {
  kIdle = 0,
  kBusy = 1,
};

inline int Twice(int x) {
  int doubled = x * 2;
  return doubled;
}

}  // namespace fixture
