// Negative fixture: `using namespace` in a .cc file is allowed (the rule is
// about header scope leaking into every includer).
#include <string>

using namespace std;

string FixtureGreeting() { return "hi"; }
