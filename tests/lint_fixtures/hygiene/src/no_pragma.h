// Positive fixture: a classic include guard is not #pragma once.
#ifndef FIXTURE_NO_PRAGMA_H_
#define FIXTURE_NO_PRAGMA_H_

namespace fixture {
constexpr int kGuarded = 1;
}  // namespace fixture

#endif  // FIXTURE_NO_PRAGMA_H_
