// Positive fixture: `using namespace` at header scope.
#pragma once

#include <string>

using namespace std;

namespace fixture {
inline string Greeting() { return "hi"; }
}  // namespace fixture
