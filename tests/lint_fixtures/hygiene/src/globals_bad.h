// Positive fixture: mutable namespace-scope variables in a header.
#pragma once

namespace fixture {

inline int g_counter = 0;

static double g_scale_factor;

}  // namespace fixture
