// Negative fixture: FP accumulation over ordered containers is fine, and
// integer accumulation over unordered ones is order-independent anyway.
#include <map>
#include <unordered_map>

namespace omega {

double SumOrdered(const std::map<int, double>& prio_by_key) {
  double total = 0.0;
  for (const auto& kv : prio_by_key) {
    total += kv.second;  // std::map iterates in key order
  }
  return total;
}

int CountEntries(const std::unordered_map<int, double>& histogram) {
  int n = 0;
  // omega-lint: allow(det-unordered-iter)
  for (const auto& kv : histogram) {
    n += 1;  // integer accumulation: exact in any order
    (void)kv;
  }
  return n;
}

}  // namespace omega
