// Positive fixture for det-fp-unordered-acc: floating-point accumulation in
// iteration order over unordered containers.
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace omega {

double SumWeights(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  // omega-lint: allow(det-unordered-iter)
  for (const auto& kv : weights) {
    total += kv.second;  // FP += in bucket order
  }
  return total;
}

double AccumulateSet(const std::unordered_set<double>& values) {
  // omega-lint: allow(det-unordered-iter)
  return std::accumulate(values.begin(), values.end(), 0.0);
}

}  // namespace omega
