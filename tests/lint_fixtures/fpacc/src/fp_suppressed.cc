// Suppression fixture for det-fp-unordered-acc (the v1 unordered-iter rule
// fires on the same loop, so the allow() names both).
#include <unordered_map>

namespace omega {

double ToleratedDrift(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  // Order drift accepted here: the sum feeds a log line, not a result.
  // omega-lint: allow(det-unordered-iter)
  for (const auto& kv : weights) {
    // omega-lint: allow(det-fp-unordered-acc)
    total += kv.second;
  }
  return total;
}

}  // namespace omega
