// Positive fixture: every iteration form the det-unordered-iter rule flags.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using Hoards = std::unordered_map<uint64_t, std::vector<int>>;

struct Framework {
  Hoards hoards_;
  std::unordered_set<int32_t> domains_;
};

double SumEverything(Framework& fw) {
  double total = 0.0;
  for (const auto& [id, claims] : fw.hoards_) {  // range-for over alias-typed
    total += static_cast<double>(id) + static_cast<double>(claims.size());
  }
  for (auto it = fw.domains_.begin(); it != fw.domains_.end(); ++it) {
    total += *it;  // explicit iterator loop
  }
  std::unordered_map<std::string, double> local_weights;
  for (const auto& [name, weight] : local_weights) {  // local declaration
    total += weight + static_cast<double>(name.size());
  }
  return total;
}
