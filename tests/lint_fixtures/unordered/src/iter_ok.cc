// Negative fixture: unordered containers used without iterating, and
// iteration over ordered containers.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

double LookupsOnly() {
  std::unordered_map<uint64_t, double> pending;
  pending.reserve(16);
  pending[7] = 1.5;
  double total = pending.count(7) ? pending.at(7) : 0.0;

  std::map<uint64_t, double> ordered = {{1, 2.0}, {3, 4.0}};
  for (const auto& [key, value] : ordered) {  // ordered: deterministic
    total += static_cast<double>(key) + value;
  }
  std::vector<double> values = {1.0, 2.0};
  for (double v : values) {
    total += v;
  }
  return total;
}
