// Negative fixture: det-unordered-iter is scoped to src/ — a test may
// iterate an unordered container to assert set-equality.
#include <unordered_set>

int CountAll(const std::unordered_set<int>& seen_values) {
  int n = 0;
  for (int v : seen_values) {
    n += v;
  }
  return n;
}
