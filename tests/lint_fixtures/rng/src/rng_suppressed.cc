// Suppression fixture for det-rng-substream.
#include <random>

namespace omega {

unsigned NonDeterministicByDesign() {
  // Fixture exercising the suppression path, not a sanctioned pattern.
  // omega-lint: allow(det-rng-substream)
  std::mt19937 gen(1);
  return gen();
}

}  // namespace omega
