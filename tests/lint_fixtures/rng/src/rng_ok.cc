// Negative fixture: substream-seeded streams and per-shard engines are the
// sanctioned shapes.
#include <cstddef>
#include <vector>

namespace omega {

double SeededStream(uint64_t base) {
  Rng r(SubstreamSeed(base, 7));  // substream marker present
  return r.NextDouble();
}

void PerShardEngines(uint64_t base) {
  std::vector<double> out(4, 0.0);
  ShardSlots<double> slots(out);
  ParallelFor(4, [&](size_t i) {
    Rng rng(SubstreamSeed(base, i));  // engine private to the shard frame
    slots[i] = rng.NextDouble();
  });
}

}  // namespace omega
