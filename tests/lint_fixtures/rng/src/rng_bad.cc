// Positive fixture for det-rng-substream: fresh engines outside
// src/common/random, unseeded Rng, and shared-RNG draws inside shard code.
#include <cstddef>
#include <random>

namespace omega {

double FreshEngine() {
  std::mt19937 gen(42);  // fresh engine construction outside src/common/random
  return static_cast<double>(gen());
}

double UnseededStream() {
  Rng r(12345);  // raw literal seed, no SubstreamSeed/Fork marker
  return r.NextDouble();
}

void SharedDrawInShard(Rng& rng) {
  ParallelFor(4, [&](size_t i) {
    // The engine lives outside the shard callback: draw order depends on
    // shard interleaving.
    double v = rng.NextDouble();
    (void)v;
    (void)i;
  });
}

}  // namespace omega
