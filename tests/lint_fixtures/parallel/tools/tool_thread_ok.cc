// tools/ is outside parallel_scope: direct primitive use is allowed there.
#include <thread>

namespace fx {

void Par() {
  std::thread t([] {});
  t.join();
}

}  // namespace fx
