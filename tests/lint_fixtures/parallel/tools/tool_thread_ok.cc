// tools/ is inside the v2 scan scope: raw primitive use must carry an
// inline justification to stay clean.
// omega-lint: allow(det-parallel-reduce)
#include <thread>

namespace fx {

void Par() {
  // Host-parallel helper tool; never runs inside a simulation.
  // omega-lint: allow(det-parallel-reduce)
  std::thread t([] {});
  t.join();
}

}  // namespace fx
