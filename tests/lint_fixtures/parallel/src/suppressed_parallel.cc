// Suppression fixture: both allow() forms silence det-parallel-reduce.
#include <thread>  // omega-lint: allow(det-parallel-reduce)

namespace fx {

// omega-lint: allow(det-parallel-reduce) — mirrors sanctioned pool internals
void SpawnSuppressed() { std::thread t([] {}); t.join(); }

}  // namespace fx
