// Negative fixture: member accesses, comments, and string literals that
// merely mention primitive names are not findings.
namespace fx {

struct Pool {
  int lanes = 0;
};

// std::thread in a comment is not scanned.
int Use(const Pool& p, Pool* q) {
  const char* s = "std::mutex in a string is not scanned";
  (void)s;
  // `p.thread` / `q->mutex` are the caller's own members, not the std types.
  return p.thread + q->mutex + p.lanes;
}

}  // namespace fx
