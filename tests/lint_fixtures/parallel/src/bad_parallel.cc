// Positive fixture: raw concurrency primitives in simulator code. Every
// line marked `hit` is one det-parallel-reduce finding (8 total).
#include <thread>  // hit: the include line tokenizes to `thread`
#include <mutex>   // hit
#include <atomic>  // hit

namespace fx {

std::mutex g_mu;                 // hit
std::atomic<int> g_count{0};     // hit
thread_local int g_scratch = 0;  // hit

void Run() {
  std::thread t([] {});        // hit
  std::condition_variable cv;  // hit
  t.join();
  (void)cv;
}

}  // namespace fx
