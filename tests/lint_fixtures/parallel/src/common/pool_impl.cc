// src/common/ is the sanctioned home of the parallelism wrappers
// (ParallelFor / WorkerPool / DeterministicReducer): primitives allowed.
#include <atomic>
#include <mutex>
#include <thread>

namespace fx {

std::mutex g_mu;
std::atomic<int> g_next{0};

void Spin() {
  std::thread t([] {});
  t.join();
}

}  // namespace fx
