// Positive fixture: the seeded upward include — a rank-0 file reaching into
// rank 1 must be rejected by layer-order.
#pragma once

#include "src/hi/top.h"

namespace fixture {
constexpr int kUpward = kTop + 1;
}  // namespace fixture
