// Negative fixture: a downward include (hi -> lo) is legal.
#pragma once

#include "src/lo/base.h"

namespace fixture {
constexpr int kTop = kBase + 1;
}  // namespace fixture
