// Call-graph edge cases for det-shard-unsafe-write: overload widening,
// virtual dispatch, recursion termination, and WorkerPool::Run roots.
#include <cstddef>

namespace omega {

int g_touch_count = 0;

// Overload pair: a receiverless call to Touch from shard code must
// conservatively reach BOTH bodies, so the global write in either one fires.
void Touch(int v) { g_touch_count += v; }  // written through overload widening
void Touch(double) {}

struct Base {
  virtual void Apply() {}
  virtual ~Base() = default;
};

struct Derived : Base {
  void Apply() override { hits_ += 1; }  // reached via virtual dispatch
  int hits_ = 0;
};

// Recursion in the reachable set must terminate (visited-set worklist), and a
// pure recursive walker with only frame-local writes stays clean.
int CountDown(int n) {
  int acc = n;
  if (n > 0) {
    acc = CountDown(n - 1);
  }
  return acc;
}

int g_pool_state = 0;

void EdgeCases(WorkerPool* pool, Base* shape) {
  ParallelFor(4, [&](size_t i) {
    Touch(static_cast<int>(i));  // overload widening reaches the int body
    shape->Apply();              // virtual dispatch reaches Derived::Apply
    CountDown(3);                // recursion: must terminate, no finding
  });
  pool->Run(4, [&](size_t shard) {
    g_pool_state += static_cast<int>(shard);  // WorkerPool::Run is a root too
  });
}

}  // namespace omega
