// Negative fixture: the sanctioned shapes. Frame-local state and ShardSlots
// writes inside shard callbacks are clean.
#include <cstddef>
#include <vector>

namespace omega {

double ShardLocalOnly() {
  std::vector<double> out(8, 0.0);
  ShardSlots<double> slots(out);
  ParallelFor(8, [&](size_t i) {
    double local = static_cast<double>(i);  // frame-local: fine
    local += 1.0;
    slots[i] = local;  // per-shard output view: allowlisted scratch type
  });
  double total = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    total += out[i];
  }
  return total;
}

// Per-trial pattern: the whole object is constructed inside the shard
// callback, so its member writes are private to the shard.
struct Trial {
  void Step() { ticks_ += 1; }
  int ticks_ = 0;
};

void PerTrialObjects() {
  ParallelFor(4, [&](size_t i) {
    Trial trial;
    trial.Step();  // receiver tree rooted at a shard-frame local
    (void)i;
  });
}

}  // namespace omega
