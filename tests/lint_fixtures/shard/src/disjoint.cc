// Disjoint-tree barrier (RunDisjoint, DESIGN.md §15): each callback owns the
// i-th object tree, so mutating it is sanctioned; globals are still shared.
#include <cstddef>
#include <vector>

namespace omega {

int disjoint_global = 0;

struct Cell {
  void Advance() { steps_ += 1; }
  int steps_ = 0;
};

void DisjointTreesAreClean(WorkerPool* pool, std::vector<Cell*>& cells) {
  RunDisjoint(pool, cells.size(), [&](size_t i) {
    cells[i]->Advance();    // per-index tree: member write is sanctioned
    cells[i]->steps_ += 1;  // direct field write on the i-th tree: clean
  });
}

void DisjointGlobalWriteStillFlags(WorkerPool* pool) {
  RunDisjoint(pool, 4, [&](size_t i) {
    disjoint_global += static_cast<int>(i);  // global: flagged
  });
}

}  // namespace omega
