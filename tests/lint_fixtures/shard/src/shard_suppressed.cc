// Suppression fixture: an intentional shared write, justified inline.
#include <cstddef>

namespace omega {

int g_progress = 0;

void SuppressedSharedWrite() {
  ParallelFor(2, [&](size_t i) {
    // Benign data race accepted for this fixture's sake.
    // omega-lint: allow(det-shard-unsafe-write)
    g_progress += static_cast<int>(i);
  });
}

}  // namespace omega
