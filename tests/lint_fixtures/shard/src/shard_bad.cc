// Positive fixture for det-shard-unsafe-write: writes to shared state from
// code reachable from shard callbacks. Types are opaque to the scanner; only
// the token shapes matter.
#include <cstddef>
#include <vector>

namespace omega {

struct Accum {
  void Bump() { total_ += 1.0; }  // member write, reached via shard call
  double total_ = 0.0;
};

void ShardedWrites() {
  Accum acc;
  int shared_counter = 0;
  std::vector<double> out(8, 0.0);
  ParallelFor(8, [&](size_t i) {
    shared_counter += 1;  // by-ref capture of the launching frame
    acc.Bump();           // member write through a shared receiver
    out[i] = 1.0;         // raw vector capture: not an allowlisted view
  });
}

}  // namespace omega
