// Suppression fixture for sim-dangling-capture: the frame provably outlives
// the callback because it drives the simulator loop itself.
namespace omega {

int RunToCompletion(Simulator& sim) {
  int count = 0;
  // This frame calls sim.Run() below, so the callback fires while `count`
  // is alive.
  // omega-lint: allow(sim-dangling-capture)
  sim.ScheduleAt(SimTime(1), [&count] { count += 1; });
  sim.Run();
  return count;
}

}  // namespace omega
