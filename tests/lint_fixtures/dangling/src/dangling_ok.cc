// Negative fixture: by-value captures and references to caller-owned state
// outlive the scheduling frame.
#include <cstddef>
#include <vector>

namespace omega {

void ScheduleByValue(Simulator& sim) {
  int count = 0;
  sim.ScheduleAt(SimTime(5), [count] { (void)count; });  // copied in
}

void ScheduleCallerOwned(Simulator& sim, std::vector<int>& store) {
  // `store` is a reference parameter: the callee does not own its lifetime,
  // so re-capturing it by reference is the caller's contract, not a dangle.
  sim.ScheduleAfter(SimDuration(2), [&store] { store.push_back(1); });
}

}  // namespace omega
