// Positive fixture for sim-dangling-capture: deferred callbacks capturing
// stack locals by reference.
#include <cstddef>

namespace omega {

void ScheduleWithStackRef(Simulator& sim) {
  int count = 0;
  sim.ScheduleAt(SimTime(5), [&count] { count += 1; });  // &count dangles
}

void ScheduleWithDefaultRef(Simulator& sim) {
  double score = 0.0;
  sim.ScheduleAfter(SimDuration(1), [&] { score += 1.0; });  // [&] dangles
}

}  // namespace omega
