#pragma once

#include "src/a/a.h"

namespace fixture {
struct B {
  int a_count = 0;
};
}  // namespace fixture
