#pragma once

#include "src/b/b.h"

namespace fixture {
struct A {
  int b_count = 0;
};
}  // namespace fixture
