// Fixture mirror of the one blessed entropy wrapper: src/common/random.* is
// exempt from the determinism rules, so this rand() must not be flagged.
#pragma once
#include <cstdlib>

namespace fixture {
inline int BlessedEntropy() { return rand(); }
}  // namespace fixture
