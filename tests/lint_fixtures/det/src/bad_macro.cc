// Positive fixture: build-time macros the det-time-macro rule bans.
// (One per line: same-line findings of the same rule dedupe to one.)
const char* BuildDate() { return __DATE__; }
const char* BuildTime() { return __TIME__; }
