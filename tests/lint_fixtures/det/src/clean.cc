// Negative fixture: things that look close to banned APIs but are fine.
// A comment mentioning rand() or __DATE__ must not trip the scanner.
#include <chrono>
#include <string>

struct Sampler {
  double time(int t) { return t * 2.0; }  // member named `time` is fine
  double my_rand() { return 0.5; }        // prefixed identifier is fine
};

double CleanTiming(Sampler& s) {
  const auto t0 = std::chrono::steady_clock::now();  // steady_clock allowed
  const std::string note = "calls rand() and time() at __TIME__";  // string
  double total = s.time(3) + s.my_rand() + static_cast<double>(note.size());
  const auto t1 = std::chrono::steady_clock::now();
  return total + std::chrono::duration<double>(t1 - t0).count();
}
