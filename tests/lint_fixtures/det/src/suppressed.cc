// Fixture: both suppression forms silence a real finding.
#include <cstdlib>
#include <random>

int SuppressedEntropy() {
  int total = rand();  // omega-lint: allow(det-rand)
  // omega-lint: allow(det-rand) -- previous-line form
  std::random_device rd;
  return total + static_cast<int>(rd());
}
