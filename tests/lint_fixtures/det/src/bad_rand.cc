// Positive fixture: every entropy-reading API the det-rand rule bans.
#include <cstdlib>
#include <random>

int EntropyEverywhere() {
  std::random_device rd;
  srand(rd());
  return rand();
}
