// Positive fixture: wall-clock reads the det-wallclock rule bans.
#include <chrono>
#include <ctime>

long WallClockEverywhere() {
  long total = static_cast<long>(time(nullptr));
  total += std::chrono::system_clock::now().time_since_epoch().count();
  total += std::chrono::high_resolution_clock::now().time_since_epoch().count();
  total += clock();
  return total;
}
