// Positive fixture: the banned-API rules apply to tests too — a test that
// reads ambient entropy is flaky by construction.
#include <cstdlib>

int FlakyTestHelper() { return rand(); }
