#include "src/obs/run_report.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "src/hifi/hifi_simulation.h"
#include "src/mesos/mesos_simulation.h"
#include "src/trace/trace_recorder.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/monolithic.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

SimOptions ReportRun(uint64_t seed = 7) {
  SimOptions o;
  o.horizon = Duration::FromHours(2);
  o.seed = seed;
  o.utilization_sample_interval = Duration::FromMinutes(30);
  return o;
}

TEST(RunReportTest, MonolithicReport) {
  SchedulerConfig single;
  single.name = "mono";
  MonolithicSimulation sim(TestCluster(16), ReportRun(), single);
  sim.Run();
  const RunReport report = BuildRunReport("monolithic", sim);
  EXPECT_EQ(report.architecture, "monolithic");
  EXPECT_EQ(report.num_machines, 16u);
  EXPECT_DOUBLE_EQ(report.horizon_hours, 2.0);
  EXPECT_EQ(report.seed, 7u);
  EXPECT_EQ(report.jobs_submitted_batch + report.jobs_submitted_service,
            sim.JobsSubmittedTotal());
  ASSERT_EQ(report.schedulers.size(), 1u);
  const SchedulerReport& s = report.schedulers[0];
  EXPECT_EQ(s.name, "mono");
  EXPECT_GT(s.jobs_scheduled_batch, 0);
  EXPECT_EQ(s.total_attempts, sim.scheduler().metrics().TotalAttempts());
  EXPECT_EQ(s.tasks_accepted, sim.scheduler().metrics().TasksAccepted());
  // A single-path scheduler commits without contention.
  EXPECT_EQ(s.tasks_conflicted, 0);
  EXPECT_GE(s.mean_attempts_per_job, 1.0);
  EXPECT_FALSE(report.utilization_series.empty());
  EXPECT_GT(report.final_cpu_utilization, 0.0);
  // No recorder attached: the trace summary must say so.
  EXPECT_FALSE(report.trace.enabled);
  EXPECT_EQ(report.trace.events_total, 0);
}

TEST(RunReportTest, MesosReportHasBothFrameworks) {
  MesosSimulation sim(TestCluster(16), ReportRun(), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();
  const RunReport report = BuildRunReport("mesos", sim);
  ASSERT_EQ(report.schedulers.size(), 2u);
  EXPECT_EQ(report.schedulers[0].tasks_accepted,
            sim.batch_framework().metrics().TasksAccepted());
  EXPECT_EQ(report.schedulers[1].tasks_accepted,
            sim.service_framework().metrics().TasksAccepted());
}

TEST(RunReportTest, OmegaReportSeparatesPreemptionFromCommits) {
  // Saturate a small cell with long batch work so the preempting service
  // scheduler actually evicts; the report must keep those placements out of
  // tasks_accepted.
  ClusterConfig cfg = TestCluster(8);
  cfg.initial_utilization = 0.05;
  cfg.batch.interarrival_mean_secs = 2.0;
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(8.0);
  cfg.batch.cpus_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.mem_gb_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.task_duration_secs = std::make_shared<ConstantDist>(36000.0);
  cfg.service.interarrival_mean_secs = 900.0;
  cfg.service.tasks_per_job = std::make_shared<ConstantDist>(4.0);
  cfg.service.cpus_per_task = std::make_shared<ConstantDist>(2.0);
  cfg.service.mem_gb_per_task = std::make_shared<ConstantDist>(2.0);
  cfg.service.task_duration_secs = std::make_shared<ConstantDist>(36000.0);

  SimOptions opts = ReportRun(1);
  opts.track_running_tasks = true;
  SchedulerConfig batch;
  batch.max_attempts = 20;
  batch.no_progress_backoff = Duration::FromSeconds(5);
  SchedulerConfig service = batch;
  service.name = "service";
  service.enable_preemption = true;

  TraceRecorder trace;
  OmegaSimulation sim(cfg, opts, batch, service);
  sim.SetTraceRecorder(&trace);
  sim.Run();
  ASSERT_GT(sim.TasksPreempted(), 0);

  const RunReport report = BuildRunReport("omega", sim);
  EXPECT_EQ(report.tasks_preempted, sim.TasksPreempted());
  const SchedulerReport* svc = nullptr;
  for (const SchedulerReport& s : report.schedulers) {
    if (s.name == "service") {
      svc = &s;
    }
  }
  ASSERT_NE(svc, nullptr);
  EXPECT_GT(svc->preemption_tasks_placed, 0);
  EXPECT_EQ(svc->preemption_victims, sim.TasksPreempted());
  EXPECT_EQ(svc->tasks_accepted,
            sim.service_scheduler().metrics().TasksAccepted());

  // Trace summary carries the wrap-proof totals.
  EXPECT_TRUE(report.trace.enabled);
  EXPECT_EQ(report.trace.events_total, trace.TotalRecorded());
  int64_t preemption_count = -1;
  for (const auto& [name, count] : report.trace.counts) {
    if (name == "preemption") {
      preemption_count = count;
    }
  }
  EXPECT_EQ(preemption_count, sim.TasksPreempted());
}

TEST(RunReportTest, HifiReportBuilds) {
  ClusterConfig cfg = TestCluster(16);
  SimOptions opts = ReportRun(3);
  auto sim = MakeHifiSimulation(cfg, opts, SchedulerConfig{}, SchedulerConfig{});
  sim->RunTrace(GenerateHifiTrace(cfg, opts.horizon, opts.seed));
  const RunReport report = BuildRunReport("hifi", *sim);
  EXPECT_EQ(report.architecture, "hifi");
  EXPECT_GE(report.schedulers.size(), 2u);
  int64_t scheduled = 0;
  for (const SchedulerReport& s : report.schedulers) {
    scheduled += s.jobs_scheduled_batch + s.jobs_scheduled_service;
  }
  EXPECT_GT(scheduled, 0);
}

TEST(RunReportTest, ToJsonEmitsWellFormedDocument) {
  SchedulerConfig single;
  single.name = "mono";
  MonolithicSimulation sim(TestCluster(16), ReportRun(), single);
  sim.Run();
  const RunReport report = BuildRunReport("monolithic", sim);
  std::ostringstream os;
  report.ToJson(os);
  const std::string json = os.str();

  // Structural sanity: one object, balanced braces/brackets, no trailing
  // comma before a closer (the classic hand-rolled-JSON bugs).
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0) << "unbalanced at byte " << i;
    } else if (c == ',') {
      size_t j = i + 1;
      while (j < json.size() && (json[j] == ' ' || json[j] == '\n')) {
        ++j;
      }
      ASSERT_TRUE(j < json.size() && json[j] != '}' && json[j] != ']')
          << "trailing comma at byte " << i;
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  // Key content is present.
  EXPECT_NE(json.find("\"architecture\":\"monolithic\""), std::string::npos);
  EXPECT_NE(json.find("\"schedulers\""), std::string::npos);
  EXPECT_NE(json.find("\"preemption_tasks_placed\""), std::string::npos);
  EXPECT_NE(json.find("\"tasks_accepted\""), std::string::npos);
  EXPECT_NE(json.find("\"utilization_series\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"mono\""), std::string::npos);
}

TEST(RunReportTest, ToJsonRendersNonFiniteValuesAsNull) {
  // Empty-Cdf percentiles and zero-duration rates surface as NaN/inf in the
  // report struct; the document must stay parseable JSON (null), never emit
  // the C library's "nan"/"inf" spellings.
  RunReport report;
  report.architecture = "synthetic";
  report.horizon_hours = std::numeric_limits<double>::quiet_NaN();
  report.final_cpu_utilization = std::numeric_limits<double>::infinity();
  report.final_mem_utilization = -std::numeric_limits<double>::infinity();
  SchedulerReport sched;
  sched.name = "s";
  sched.mean_wait_batch_secs = std::numeric_limits<double>::quiet_NaN();
  sched.p90_wait_service_secs = std::numeric_limits<double>::infinity();
  report.schedulers.push_back(sched);
  std::ostringstream os;
  report.ToJson(os);
  const std::string json = os.str();
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_NE(json.find("\"horizon_hours\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean_wait_batch_secs\":null"), std::string::npos)
      << json;
}

}  // namespace
}  // namespace omega
