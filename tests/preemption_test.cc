#include <gtest/gtest.h>

#include "src/cluster/task_registry.h"
#include "src/trace/trace_recorder.h"
#include "src/omega/omega_scheduler.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

TEST(TaskRegistryTest, AddRemove) {
  TaskRegistry reg;
  const uint64_t a = reg.Add(0, Resources{1.0, 2.0}, 4, 11);
  const uint64_t b = reg.Add(0, Resources{0.5, 1.0}, 10, 12);
  EXPECT_EQ(reg.NumRunning(), 2u);
  EXPECT_EQ(reg.NumRunningOn(0), 2u);
  EXPECT_TRUE(reg.Remove(a));
  EXPECT_FALSE(reg.Remove(a));
  EXPECT_EQ(reg.NumRunning(), 1u);
  EXPECT_TRUE(reg.Remove(b));
}

TEST(TaskRegistryTest, PreemptibleSumsBelowPrecedence) {
  TaskRegistry reg;
  reg.Add(3, Resources{1.0, 1.0}, 4, 0);   // batch
  reg.Add(3, Resources{2.0, 2.0}, 4, 0);   // batch
  reg.Add(3, Resources{1.0, 4.0}, 10, 0);  // service: not preemptible by 10
  const Resources pool = reg.PreemptibleOn(3, 10);
  EXPECT_DOUBLE_EQ(pool.cpus, 3.0);
  EXPECT_DOUBLE_EQ(pool.mem_gb, 3.0);
  EXPECT_TRUE(reg.PreemptibleOn(3, 4).IsZero());
  EXPECT_TRUE(reg.PreemptibleOn(99, 10).IsZero());
}

TEST(TaskRegistryTest, SelectVictimsLowestPrecedenceFirst) {
  TaskRegistry reg;
  reg.Add(0, Resources{1.0, 1.0}, 2, 0);
  reg.Add(0, Resources{1.0, 1.0}, 6, 0);
  const auto victims = reg.SelectVictims(0, 10, Resources{1.0, 1.0});
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].precedence, 2);
}

TEST(TaskRegistryTest, SelectVictimsEmptyWhenInsufficient) {
  TaskRegistry reg;
  reg.Add(0, Resources{1.0, 1.0}, 2, 0);
  EXPECT_TRUE(reg.SelectVictims(0, 10, Resources{5.0, 1.0}).empty());
  // Equal precedence is never preemptible.
  EXPECT_TRUE(reg.SelectVictims(0, 2, Resources{0.5, 0.5}).empty());
}

TEST(TaskRegistryTest, SelectVictimsCoversNeedExactly) {
  TaskRegistry reg;
  for (int i = 0; i < 5; ++i) {
    reg.Add(0, Resources{1.0, 1.0}, 1, 0);
  }
  const auto victims = reg.SelectVictims(0, 10, Resources{2.5, 0.0});
  Resources freed;
  for (const RunningTask& v : victims) {
    freed += v.resources;
  }
  EXPECT_TRUE(Resources({2.5, 0.0}).FitsIn(freed));
  EXPECT_LE(victims.size(), 3u);  // no more than necessary
}

// --- end-to-end preemption through the Omega scheduler ---

SimOptions PreemptRun(uint64_t seed = 1) {
  SimOptions o;
  o.horizon = Duration::FromHours(2);
  o.seed = seed;
  o.track_running_tasks = true;
  return o;
}

// A cell saturated with long batch work plus rare large service jobs: without
// preemption the service jobs starve; with it they evict batch tasks.
ClusterConfig SaturatedCell() {
  ClusterConfig cfg = TestCluster(8);
  cfg.initial_utilization = 0.05;
  cfg.batch.interarrival_mean_secs = 2.0;
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(8.0);
  cfg.batch.cpus_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.mem_gb_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.task_duration_secs = std::make_shared<ConstantDist>(36000.0);
  cfg.service.interarrival_mean_secs = 900.0;
  cfg.service.tasks_per_job = std::make_shared<ConstantDist>(4.0);
  cfg.service.cpus_per_task = std::make_shared<ConstantDist>(2.0);
  cfg.service.mem_gb_per_task = std::make_shared<ConstantDist>(2.0);
  cfg.service.task_duration_secs = std::make_shared<ConstantDist>(36000.0);
  return cfg;
}

TEST(PreemptionTest, ServicePreemptsBatchWhenEnabled) {
  SchedulerConfig batch;
  batch.max_attempts = 20;
  batch.no_progress_backoff = Duration::FromSeconds(5);
  SchedulerConfig service = batch;
  service.enable_preemption = true;

  OmegaSimulation sim(SaturatedCell(), PreemptRun(), batch, service);
  sim.Run();
  EXPECT_GT(sim.TasksPreempted(), 0);
  EXPECT_GT(sim.service_scheduler().metrics().JobsScheduled(JobType::kService), 0);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(PreemptionTest, NoPreemptionWhenDisabled) {
  SchedulerConfig batch;
  batch.max_attempts = 20;
  batch.no_progress_backoff = Duration::FromSeconds(5);
  OmegaSimulation sim(SaturatedCell(), PreemptRun(2), batch, batch);
  sim.Run();
  EXPECT_EQ(sim.TasksPreempted(), 0);
}

TEST(PreemptionTest, PreemptionImprovesServiceOutcomes) {
  SchedulerConfig batch;
  batch.max_attempts = 20;
  batch.no_progress_backoff = Duration::FromSeconds(5);
  SchedulerConfig service_plain = batch;
  SchedulerConfig service_preempt = batch;
  service_preempt.enable_preemption = true;

  OmegaSimulation plain(SaturatedCell(), PreemptRun(3), batch, service_plain);
  OmegaSimulation preempt(SaturatedCell(), PreemptRun(3), batch, service_preempt);
  plain.Run();
  preempt.Run();
  EXPECT_GE(preempt.service_scheduler().metrics().JobsScheduled(JobType::kService),
            plain.service_scheduler().metrics().JobsScheduled(JobType::kService));
  EXPECT_LE(preempt.service_scheduler().metrics().JobsAbandonedTotal(),
            plain.service_scheduler().metrics().JobsAbandonedTotal());
}

TEST(PreemptionTest, BatchNeverEvictsService) {
  // Batch precedence (4) is below service (10): even with preemption enabled
  // on the batch scheduler, service tasks are never victims, so abandoned
  // service work cannot be caused by batch.
  SchedulerConfig batch;
  batch.enable_preemption = true;
  batch.max_attempts = 20;
  batch.no_progress_backoff = Duration::FromSeconds(5);
  SchedulerConfig service = batch;
  service.enable_preemption = false;

  ClusterConfig cfg = SaturatedCell();
  // Flip the mix: service fills the cell first, batch then tries to preempt.
  cfg.service.interarrival_mean_secs = 20.0;
  cfg.batch.interarrival_mean_secs = 10.0;
  OmegaSimulation sim(cfg, PreemptRun(4), batch, service);
  sim.Run();
  // Batch may preempt other *batch* tasks (same precedence -> never), so no
  // preemptions can occur at all in this setup.
  EXPECT_EQ(sim.TasksPreempted(), 0);
}

TEST(PreemptionTest, PreemptionAccountedSeparatelyFromTransactions) {
  // Regression: eviction-won placements used to be recorded via
  // RecordTransaction(n, 0) with fabricated zero-seqnum claims, inflating
  // TasksAccepted and diluting the conflict fraction. They now flow through
  // RecordPreemption and stay out of the optimistic-commit counters.
  SchedulerConfig batch;
  batch.max_attempts = 20;
  batch.no_progress_backoff = Duration::FromSeconds(5);
  SchedulerConfig service = batch;
  service.enable_preemption = true;

  TraceRecorder trace;
  OmegaSimulation sim(SaturatedCell(), PreemptRun(), batch, service);
  sim.SetTraceRecorder(&trace);
  sim.Run();
  ASSERT_GT(sim.TasksPreempted(), 0);

  const SchedulerMetrics& sm = sim.service_scheduler().metrics();
  EXPECT_GT(sm.TasksPlacedByPreemption(), 0);
  EXPECT_GT(sm.PreemptionVictims(), 0);
  // Only the service scheduler preempts; its victim count is the harness's.
  EXPECT_EQ(sm.PreemptionVictims(), sim.TasksPreempted());
  for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
    EXPECT_EQ(sim.batch_scheduler(i).metrics().TasksPlacedByPreemption(), 0);
    EXPECT_EQ(sim.batch_scheduler(i).metrics().PreemptionVictims(), 0);
  }

  // TasksAccepted must reconcile with the committed-transaction event stream
  // alone — with the old accounting it would exceed SumArg0(kTxnCommit) by
  // the preemption placements.
  int64_t accepted = sm.TasksAccepted();
  int64_t started = sm.TasksAccepted() + sm.TasksPlacedByPreemption();
  for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
    const SchedulerMetrics& bm = sim.batch_scheduler(i).metrics();
    accepted += bm.TasksAccepted();
    started += bm.TasksAccepted() + bm.TasksPlacedByPreemption();
  }
  EXPECT_EQ(trace.SumArg0(TraceEventType::kTxnCommit), accepted);
  EXPECT_EQ(trace.CountOf(TraceEventType::kTaskStart), started);
  EXPECT_EQ(trace.CountOf(TraceEventType::kPreemption), sim.TasksPreempted());
}

TEST(PreemptionDeathTest, RequiresRegistry) {
  SchedulerConfig service;
  service.enable_preemption = true;
  SimOptions opts;
  opts.horizon = Duration::FromHours(1);
  opts.seed = 5;
  opts.track_running_tasks = false;  // forgot to enable the registry
  ClusterConfig cfg = SaturatedCell();
  OmegaSimulation sim(cfg, opts, SchedulerConfig{}, service);
  EXPECT_DEATH(sim.Run(), "track_running_tasks");
}

}  // namespace
}  // namespace omega
