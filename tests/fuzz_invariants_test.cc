// Randomized invariant fuzzing: placers never produce uncommittable claims on
// a quiescent cell, commits never violate conservation, and interleaved
// random scheduler activity keeps the cell state consistent under every
// combination of conflict-detection and commit mode.
#include <gtest/gtest.h>

#include "src/hifi/scoring_placer.h"
#include "src/scheduler/placement.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

Job RandomJob(Rng& rng, JobId id) {
  Job j;
  j.id = id;
  j.num_tasks = 1 + static_cast<uint32_t>(rng.NextBounded(12));
  j.task_resources =
      Resources{0.1 + rng.NextDouble() * 1.5, 0.2 + rng.NextDouble() * 4.0};
  j.task_duration = Duration::FromSeconds(60);
  j.precedence = rng.NextBool(0.2) ? 10 : 4;
  return j;
}

struct FuzzCase {
  uint64_t seed;
  bool use_scoring;
  ConflictMode conflict;
  CommitMode commit;
};

class PlacerCommitFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PlacerCommitFuzzTest, NoOvercommitNoLeaks) {
  const FuzzCase& c = GetParam();
  Rng rng(c.seed);
  CellState cell(48, Resources{4.0, 16.0});
  if (c.use_scoring) {
    cell.EnableAvailabilityIndex();
  }
  std::unique_ptr<TaskPlacer> placer;
  if (c.use_scoring) {
    placer = std::make_unique<ScoringPlacer>();
  } else {
    placer = std::make_unique<RandomizedFirstFitPlacer>();
  }

  // Live allocations we can free later: (machine, resources).
  std::vector<TaskClaim> live;
  JobId next_id = 1;
  for (int round = 0; round < 400; ++round) {
    const double action = rng.NextDouble();
    if (action < 0.55) {
      // Place and commit a job, possibly with a stale snapshot: mutate the
      // cell between placement and commit to provoke conflicts.
      const Job job = RandomJob(rng, next_id++);
      std::vector<TaskClaim> claims;
      placer->PlaceTasks(cell, job, job.num_tasks, rng, &claims);
      // Interleaved activity from "another scheduler".
      if (rng.NextBool(0.5) && !live.empty()) {
        const size_t k = rng.NextBounded(live.size());
        cell.Free(live[k].machine, live[k].resources);
        live[k] = live.back();
        live.pop_back();
      }
      if (rng.NextBool(0.5)) {
        const Job other = RandomJob(rng, next_id++);
        std::vector<TaskClaim> other_claims;
        placer->PlaceTasks(cell, other, 2, rng, &other_claims);
        const CommitResult r = cell.Commit(other_claims,
                                           ConflictMode::kFineGrained,
                                           CommitMode::kIncremental);
        for (size_t i = 0; i < static_cast<size_t>(r.accepted); ++i) {
          live.push_back(other_claims[i]);
        }
      }
      std::vector<TaskClaim> rejected;
      const CommitResult r = cell.Commit(claims, c.conflict, c.commit, &rejected);
      // Accepted + rejected account for every claim.
      EXPECT_EQ(static_cast<size_t>(r.accepted + r.conflicted), claims.size());
      // Track accepted ones so they can be freed (reconstruct accepted set).
      size_t reject_idx = 0;
      for (const TaskClaim& claim : claims) {
        if (reject_idx < rejected.size() &&
            claim.machine == rejected[reject_idx].machine &&
            claim.resources == rejected[reject_idx].resources) {
          ++reject_idx;
          continue;
        }
        live.push_back(claim);
      }
    } else if (!live.empty()) {
      const size_t k = rng.NextBounded(live.size());
      cell.Free(live[k].machine, live[k].resources);
      live[k] = live.back();
      live.pop_back();
    }
    ASSERT_TRUE(cell.CheckInvariants()) << "round " << round;
  }
  // Drain everything: the cell must return to empty.
  for (const TaskClaim& claim : live) {
    cell.Free(claim.machine, claim.resources);
  }
  EXPECT_TRUE(cell.TotalAllocated().IsZero());
  EXPECT_TRUE(cell.CheckInvariants());
}

std::vector<FuzzCase> MakeCases() {
  std::vector<FuzzCase> cases;
  uint64_t seed = 1000;
  for (bool scoring : {false, true}) {
    for (ConflictMode conflict :
         {ConflictMode::kFineGrained, ConflictMode::kCoarseGrained}) {
      for (CommitMode commit :
           {CommitMode::kIncremental, CommitMode::kAllOrNothing}) {
        for (int i = 0; i < 2; ++i) {
          cases.push_back(FuzzCase{seed++, scoring, conflict, commit});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, PlacerCommitFuzzTest,
                         ::testing::ValuesIn(MakeCases()));

}  // namespace
}  // namespace omega
