#include "src/omega/omega_scheduler.h"

#include <gtest/gtest.h>

#include "src/workload/cluster_config.h"

namespace omega {
namespace {

SimOptions ShortRun(uint64_t seed = 1) {
  SimOptions o;
  o.horizon = Duration::FromHours(4);
  o.seed = seed;
  return o;
}

int64_t TotalScheduled(OmegaSimulation& sim) {
  int64_t n = sim.service_scheduler().metrics().JobsScheduled(JobType::kService);
  for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
    n += sim.batch_scheduler(i).metrics().JobsScheduled(JobType::kBatch);
  }
  return n;
}

TEST(OmegaTest, SchedulesWholeWorkload) {
  OmegaSimulation sim(TestCluster(), ShortRun(), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();
  EXPECT_GT(sim.JobsSubmittedTotal(), 100);
  // Nearly everything is scheduled by the end (a handful may be in flight).
  EXPECT_GE(TotalScheduled(sim) + sim.TotalJobsAbandoned(),
            sim.JobsSubmittedTotal() - 5);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(OmegaTest, ServiceAndBatchIndependent) {
  // A pathologically slow service scheduler must not delay batch jobs:
  // no inter-scheduler head-of-line blocking (§4.3).
  SchedulerConfig batch;
  SchedulerConfig service;
  service.service_times.t_job = Duration::FromSeconds(60.0);
  OmegaSimulation sim(TestCluster(), ShortRun(2), batch, service);
  sim.Run();
  EXPECT_LT(sim.MeanBatchWait(), 5.0);
}

TEST(OmegaTest, ConflictsDetectedBetweenSchedulers) {
  // Tiny cell + long decision times + two schedulers fighting over the same
  // machines: conflicts must occur and be resolved (everything still lands).
  ClusterConfig cfg = TestCluster(4);
  cfg.initial_utilization = 0.05;
  cfg.batch.interarrival_mean_secs = 30.0;
  cfg.service.interarrival_mean_secs = 30.0;
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(6.0);
  cfg.service.tasks_per_job = std::make_shared<ConstantDist>(6.0);
  cfg.batch.cpus_per_task = std::make_shared<ConstantDist>(1.5);
  cfg.service.cpus_per_task = std::make_shared<ConstantDist>(1.5);
  cfg.batch.mem_gb_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.service.mem_gb_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.task_duration_secs = std::make_shared<ConstantDist>(40.0);
  cfg.service.task_duration_secs = std::make_shared<ConstantDist>(40.0);
  SchedulerConfig sched;
  sched.batch_times.t_job = Duration::FromSeconds(25.0);
  sched.service_times.t_job = Duration::FromSeconds(25.0);
  OmegaSimulation sim(cfg, ShortRun(3), sched, sched);
  sim.Run();
  int64_t conflicts = sim.service_scheduler().metrics().TasksConflicted();
  for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
    conflicts += sim.batch_scheduler(i).metrics().TasksConflicted();
  }
  EXPECT_GT(conflicts, 0);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(OmegaTest, MultipleBatchSchedulersSplitWork) {
  OmegaSimulation sim(TestCluster(), ShortRun(4), SchedulerConfig{},
                      SchedulerConfig{}, /*num_batch_schedulers=*/4);
  sim.Run();
  ASSERT_EQ(sim.NumBatchSchedulers(), 4u);
  int64_t total = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    const int64_t n = sim.batch_scheduler(i).metrics().JobsScheduled(JobType::kBatch);
    // Hash load balancing: every scheduler gets a meaningful share.
    EXPECT_GT(n, 0);
    total += n;
  }
  EXPECT_GT(total, 100);
  // Shares are roughly even (within a factor ~2 of each other).
  for (uint32_t i = 0; i < 4; ++i) {
    const auto n = static_cast<double>(
        sim.batch_scheduler(i).metrics().JobsScheduled(JobType::kBatch));
    EXPECT_GT(n, total / 4.0 / 2.0);
    EXPECT_LT(n, total / 4.0 * 2.0);
  }
}

TEST(OmegaTest, MoreSchedulersReducePerSchedulerBusyness) {
  ClusterConfig cfg = TestCluster();
  cfg.batch.interarrival_mean_secs = 0.5;  // load the batch path
  SchedulerConfig sched;
  OmegaSimulation sim1(cfg, ShortRun(5), sched, sched, 1);
  OmegaSimulation sim4(cfg, ShortRun(5), sched, sched, 4);
  sim1.Run();
  sim4.Run();
  EXPECT_LT(sim4.MeanBatchBusyness(), sim1.MeanBatchBusyness());
}

TEST(OmegaTest, GangSchedulingAllOrNothing) {
  SchedulerConfig gang;
  gang.commit_mode = CommitMode::kAllOrNothing;
  OmegaSimulation sim(TestCluster(), ShortRun(6), gang, gang);
  sim.Run();
  // Gang-scheduled jobs either fully land or retry: no partially scheduled
  // job can ever be recorded as scheduled (checked inside CompleteAttempt),
  // and the run completes with consistent cell state.
  EXPECT_GT(TotalScheduled(sim), 50);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(OmegaTest, CoarseDetectionProducesMoreConflicts) {
  auto run_with = [](ConflictMode mode, int64_t* conflicts, int64_t* scheduled) {
    ClusterConfig cfg = TestCluster(8);
    cfg.batch.interarrival_mean_secs = 1.0;
    cfg.service.interarrival_mean_secs = 5.0;
    SchedulerConfig sched;
    sched.conflict_mode = mode;
    sched.batch_times.t_job = Duration::FromSeconds(2.0);
    sched.service_times.t_job = Duration::FromSeconds(2.0);
    OmegaSimulation sim(cfg, ShortRun(7), sched, sched);
    sim.Run();
    *conflicts = sim.service_scheduler().metrics().TasksConflicted();
    *scheduled = TotalScheduled(sim);
    for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
      *conflicts += sim.batch_scheduler(i).metrics().TasksConflicted();
    }
  };
  int64_t fine_conflicts = 0;
  int64_t fine_scheduled = 0;
  int64_t coarse_conflicts = 0;
  int64_t coarse_scheduled = 0;
  run_with(ConflictMode::kFineGrained, &fine_conflicts, &fine_scheduled);
  run_with(ConflictMode::kCoarseGrained, &coarse_conflicts, &coarse_scheduled);
  EXPECT_GT(coarse_conflicts, fine_conflicts);
  EXPECT_GT(fine_scheduled, 100);
  EXPECT_GT(coarse_scheduled, 100);
}

TEST(OmegaTest, AdmissionLimitRejectsExcessJobs) {
  ClusterConfig cfg = TestCluster();
  cfg.batch.interarrival_mean_secs = 0.05;  // flood the scheduler
  SchedulerConfig sched;
  sched.admission_limit = 10;
  sched.batch_times.t_job = Duration::FromSeconds(5.0);
  OmegaSimulation sim(cfg, ShortRun(8), sched, SchedulerConfig{});
  sim.Run();
  int64_t abandoned = 0;
  for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
    abandoned += sim.batch_scheduler(i).metrics().JobsAbandoned(JobType::kBatch);
  }
  EXPECT_GT(abandoned, 0);
}

TEST(OmegaTest, DeterministicAcrossRuns) {
  OmegaSimulation sim1(TestCluster(), ShortRun(9), SchedulerConfig{},
                       SchedulerConfig{});
  OmegaSimulation sim2(TestCluster(), ShortRun(9), SchedulerConfig{},
                       SchedulerConfig{});
  sim1.Run();
  sim2.Run();
  EXPECT_EQ(TotalScheduled(sim1), TotalScheduled(sim2));
  EXPECT_DOUBLE_EQ(sim1.cell().CpuUtilization(), sim2.cell().CpuUtilization());
}

}  // namespace
}  // namespace omega
