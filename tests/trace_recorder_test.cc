#include "src/trace/trace_recorder.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/mesos/mesos_simulation.h"
#include "src/omega/omega_scheduler.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

TEST(TraceRecorderTest, TrackZeroIsClusterAndNamesDedup) {
  TraceRecorder trace;
  ASSERT_EQ(trace.track_names().size(), 1u);
  EXPECT_EQ(trace.track_names()[0], "cluster");
  const uint16_t a = trace.RegisterTrack("batch-0");
  const uint16_t b = trace.RegisterTrack("service");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(trace.RegisterTrack("batch-0"), a);
  EXPECT_EQ(trace.RegisterTrack("cluster"), 0);
}

TEST(TraceRecorderTest, CountsAndArgSums) {
  TraceRecorder trace;
  trace.TxnCommit(SimTime::FromSeconds(1), 0, 1, /*accepted=*/5, /*conflicted=*/2);
  trace.TxnCommit(SimTime::FromSeconds(2), 0, 2, /*accepted=*/3, /*conflicted=*/0);
  trace.TaskStart(SimTime::FromSeconds(3), 1, 0);
  EXPECT_EQ(trace.TotalRecorded(), 3);
  EXPECT_EQ(trace.CountOf(TraceEventType::kTxnCommit), 2);
  EXPECT_EQ(trace.SumArg0(TraceEventType::kTxnCommit), 8);
  EXPECT_EQ(trace.SumArg1(TraceEventType::kTxnCommit), 2);
  EXPECT_EQ(trace.CountOf(TraceEventType::kTaskStart), 1);
  EXPECT_EQ(trace.CountOf(TraceEventType::kGangAbort), 0);
}

TEST(TraceRecorderTest, RingWrapKeepsNewestAndCountsSurvive) {
  // Capacity is clamped up to one slab (4096 events).
  TraceRecorder trace(/*capacity_events=*/1);
  const int64_t n = 5000;
  for (int64_t i = 0; i < n; ++i) {
    trace.TaskStart(SimTime(i), static_cast<uint64_t>(i), 0);
  }
  EXPECT_EQ(trace.TotalRecorded(), n);
  EXPECT_EQ(trace.Retained(), TraceRecorder::kSlabSize);
  EXPECT_EQ(trace.Dropped(), n - static_cast<int64_t>(TraceRecorder::kSlabSize));
  // The wrap-proof per-type count still reflects every append.
  EXPECT_EQ(trace.CountOf(TraceEventType::kTaskStart), n);
  // Retained window is the newest events, visited oldest-first.
  std::vector<int64_t> times;
  trace.ForEachRetained([&](const TraceEvent& e) { times.push_back(e.time_us); });
  ASSERT_EQ(times.size(), TraceRecorder::kSlabSize);
  EXPECT_EQ(times.front(), n - static_cast<int64_t>(TraceRecorder::kSlabSize));
  EXPECT_EQ(times.back(), n - 1);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ(times[i], times[i - 1] + 1);
  }
}

// Builds the small fixed event sequence used by the golden-export tests.
TraceRecorder GoldenEvents() {
  TraceRecorder trace;
  const uint16_t track = trace.RegisterTrack("sched-a");
  trace.JobSubmit(SimTime(1000000), /*job=*/7, /*job_type=*/0, /*num_tasks=*/3);
  trace.AttemptBegin(SimTime(2000000), track, 7, /*attempt=*/1,
                     /*tasks_in_attempt=*/3);
  trace.ClaimConflict(SimTime(2500000), track, 7, /*machine=*/4,
                      /*seqnum_at_placement=*/9, /*seqnum_at_commit=*/12);
  trace.AttemptEnd(SimTime(3000000), track, 7, /*tasks_placed=*/2,
                   /*had_conflict=*/true);
  return trace;
}

TEST(TraceRecorderTest, GoldenChromeTrace) {
  std::ostringstream os;
  GoldenEvents().ExportChromeTrace(os);
  const std::string expected =
      "{\"traceEvents\": [\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"cluster\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, "
      "\"args\": {\"name\": \"sched-a\"}},\n"
      "{\"pid\": 1, \"tid\": 0, \"ts\": 1000000, \"ph\": \"i\", \"s\": \"t\", "
      "\"name\": \"job_submit\", \"args\": {\"job\": 7, \"job_type\": "
      "\"batch\", \"num_tasks\": 3}},\n"
      "{\"pid\": 1, \"tid\": 1, \"ts\": 2000000, \"ph\": \"B\", \"name\": "
      "\"job 7\", \"args\": {\"job\": 7, \"attempt\": 1, "
      "\"tasks_in_attempt\": 3}},\n"
      "{\"pid\": 1, \"tid\": 1, \"ts\": 2500000, \"ph\": \"i\", \"s\": \"t\", "
      "\"name\": \"claim_conflict\", \"args\": {\"job\": 7, \"machine\": 4, "
      "\"seqnum_at_placement\": 9, \"seqnum_at_commit\": 12}},\n"
      "{\"pid\": 1, \"tid\": 1, \"ts\": 3000000, \"ph\": \"E\", \"name\": "
      "\"job 7\", \"args\": {\"job\": 7, \"tasks_placed\": 2, "
      "\"had_conflict\": true}}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TraceRecorderTest, GoldenJsonLines) {
  std::ostringstream os;
  GoldenEvents().ExportJsonLines(os);
  const std::string expected =
      "{\"ts_us\": 1000000, \"type\": \"job_submit\", \"track\": \"cluster\", "
      "\"job\": 7, \"job_type\": \"batch\", \"num_tasks\": 3}\n"
      "{\"ts_us\": 2000000, \"type\": \"attempt_begin\", \"track\": "
      "\"sched-a\", \"job\": 7, \"attempt\": 1, \"tasks_in_attempt\": 3}\n"
      "{\"ts_us\": 2500000, \"type\": \"claim_conflict\", \"track\": "
      "\"sched-a\", \"job\": 7, \"machine\": 4, \"seqnum_at_placement\": 9, "
      "\"seqnum_at_commit\": 12}\n"
      "{\"ts_us\": 3000000, \"type\": \"attempt_end\", \"track\": "
      "\"sched-a\", \"job\": 7, \"tasks_placed\": 2, \"had_conflict\": "
      "true}\n";
  EXPECT_EQ(os.str(), expected);
}

// --- end-to-end: the event stream reconciles with SchedulerMetrics ---

// A small, contended cell: several Omega schedulers race on near-full
// machines, so commits conflict and the full lifecycle is exercised.
ClusterConfig ContendedCell() {
  ClusterConfig cfg = TestCluster(16);
  cfg.initial_utilization = 0.7;
  cfg.batch.interarrival_mean_secs = 0.5;
  return cfg;
}

SimOptions TraceRun(uint64_t seed = 11) {
  SimOptions o;
  o.horizon = Duration::FromHours(3);
  o.seed = seed;
  return o;
}

TEST(TraceRecorderTest, OmegaEventCountsReconcileWithMetrics) {
  SchedulerConfig batch;
  batch.batch_times.t_job = Duration::FromSeconds(2);
  SchedulerConfig service;
  TraceRecorder trace;
  OmegaSimulation sim(ContendedCell(), TraceRun(), batch, service,
                      /*num_batch_schedulers=*/3);
  sim.SetTraceRecorder(&trace);
  sim.Run();

  int64_t attempts = sim.service_scheduler().metrics().TotalAttempts();
  int64_t accepted = sim.service_scheduler().metrics().TasksAccepted();
  int64_t conflicted = sim.service_scheduler().metrics().TasksConflicted();
  for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
    const SchedulerMetrics& m = sim.batch_scheduler(i).metrics();
    attempts += m.TotalAttempts();
    accepted += m.TasksAccepted();
    conflicted += m.TasksConflicted();
  }
  ASSERT_GT(conflicted, 0) << "config failed to generate commit conflicts";

  EXPECT_EQ(trace.CountOf(TraceEventType::kJobSubmit), sim.JobsSubmittedTotal());
  EXPECT_EQ(trace.CountOf(TraceEventType::kAttemptBegin), attempts);
  EXPECT_EQ(trace.CountOf(TraceEventType::kClaimConflict), conflicted);
  EXPECT_EQ(trace.SumArg0(TraceEventType::kTxnCommit), accepted);
  EXPECT_EQ(trace.SumArg1(TraceEventType::kTxnCommit), conflicted);
  // Every placement goes through StartTasks (no preemption configured), and
  // the state-store-side commit stream must agree with the scheduler-side one.
  EXPECT_EQ(trace.CountOf(TraceEventType::kTaskStart), accepted);
  EXPECT_EQ(trace.SumArg0(TraceEventType::kCellCommit), accepted);
  EXPECT_EQ(trace.SumArg1(TraceEventType::kCellCommit), conflicted);
  EXPECT_EQ(trace.CountOf(TraceEventType::kPreemption), 0);
  // One named track per scheduler plus the cluster track.
  EXPECT_EQ(trace.track_names().size(), 1u + sim.NumBatchSchedulers() + 1u);

  // Both exporters must render every retained event.
  std::ostringstream jsonl;
  trace.ExportJsonLines(jsonl);
  std::istringstream lines(jsonl.str());
  int64_t line_count = 0;
  std::string line;
  while (std::getline(lines, line)) {
    ++line_count;
  }
  EXPECT_EQ(line_count, static_cast<int64_t>(trace.Retained()));
}

TEST(TraceRecorderTest, MachineFailureEventsReconcile) {
  SimOptions o = TraceRun(13);
  o.track_running_tasks = true;
  o.machine_failure_rate_per_day = 4.0;
  o.machine_repair_time = Duration::FromMinutes(30);
  TraceRecorder trace;
  OmegaSimulation sim(ContendedCell(), o, SchedulerConfig{}, SchedulerConfig{});
  sim.SetTraceRecorder(&trace);
  sim.Run();
  ASSERT_GT(sim.MachineFailures(), 0);
  EXPECT_EQ(trace.CountOf(TraceEventType::kMachineFailure), sim.MachineFailures());
  EXPECT_EQ(trace.SumArg0(TraceEventType::kMachineFailure),
            sim.TasksKilledByFailures());
  EXPECT_LE(trace.CountOf(TraceEventType::kMachineRepair), sim.MachineFailures());
}

TEST(TraceRecorderTest, MesosEventCountsReconcileWithMetrics) {
  TraceRecorder trace;
  MesosSimulation sim(ContendedCell(), TraceRun(17), SchedulerConfig{},
                      SchedulerConfig{});
  sim.SetTraceRecorder(&trace);
  sim.Run();
  const int64_t attempts = sim.batch_framework().metrics().TotalAttempts() +
                           sim.service_framework().metrics().TotalAttempts();
  const int64_t accepted = sim.batch_framework().metrics().TasksAccepted() +
                           sim.service_framework().metrics().TasksAccepted();
  EXPECT_EQ(trace.CountOf(TraceEventType::kAttemptBegin), attempts);
  EXPECT_EQ(trace.SumArg0(TraceEventType::kTxnCommit), accepted);
  // Offers are pessimistic locks: nothing may conflict.
  EXPECT_EQ(trace.CountOf(TraceEventType::kClaimConflict), 0);
  EXPECT_EQ(trace.SumArg1(TraceEventType::kCellCommit), 0);
}

// The load-bearing property behind "off by default": attaching a recorder
// must not change simulation results at all.
TEST(TraceRecorderTest, AttachedRecorderIsBitIdentical) {
  SchedulerConfig batch;
  batch.batch_times.t_job = Duration::FromSeconds(2);
  OmegaSimulation plain(ContendedCell(), TraceRun(), batch, SchedulerConfig{},
                        /*num_batch_schedulers=*/3);
  plain.Run();

  TraceRecorder trace;
  OmegaSimulation traced(ContendedCell(), TraceRun(), batch, SchedulerConfig{},
                         /*num_batch_schedulers=*/3);
  traced.SetTraceRecorder(&trace);
  traced.Run();
  ASSERT_GT(trace.TotalRecorded(), 0);

  EXPECT_EQ(plain.JobsSubmittedTotal(), traced.JobsSubmittedTotal());
  for (uint32_t i = 0; i < plain.NumBatchSchedulers(); ++i) {
    const SchedulerMetrics& a = plain.batch_scheduler(i).metrics();
    const SchedulerMetrics& b = traced.batch_scheduler(i).metrics();
    EXPECT_EQ(a.TasksAccepted(), b.TasksAccepted());
    EXPECT_EQ(a.TasksConflicted(), b.TasksConflicted());
    EXPECT_EQ(a.TotalAttempts(), b.TotalAttempts());
    // Exact double equality, not approximate: bit-identical or bust.
    EXPECT_EQ(a.MeanWait(JobType::kBatch), b.MeanWait(JobType::kBatch));
    EXPECT_EQ(a.Busyness(plain.EndTime()).median,
              b.Busyness(traced.EndTime()).median);
  }
  EXPECT_EQ(plain.cell().TotalAllocated(), traced.cell().TotalAllocated());
}

}  // namespace
}  // namespace omega
