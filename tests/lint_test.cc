// Fixture-driven tests for omega_lint (tools/lint). Each fixture directory
// under tests/lint_fixtures/ is a miniature repository root; positive
// fixtures must produce exactly the expected rule hits and negative fixtures
// none, so the linter's precision is pinned alongside its recall.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/linter.h"

namespace {

using omega_lint::Config;
using omega_lint::Finding;
using omega_lint::Linter;

std::string FixtureRoot(const std::string& name) {
  return std::string(OMEGA_LINT_FIXTURES_DIR) + "/" + name;
}

std::vector<Finding> RunOn(const std::string& fixture,
                           bool with_layers = false) {
  Config config;
  if (with_layers) {
    std::string error;
    EXPECT_TRUE(omega_lint::ParseLayersFile(
        FixtureRoot(fixture) + "/layers.conf", &config, &error))
        << error;
  }
  Linter linter(FixtureRoot(fixture), config);
  EXPECT_TRUE(linter.Run());
  EXPECT_TRUE(linter.errors().empty());
  return linter.findings();
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& file) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.file == file;
  });
}

int CountFile(const std::vector<Finding>& findings, const std::string& file) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.file == file; }));
}

bool HasFindingAt(const std::vector<Finding>& findings, const std::string& rule,
                  const std::string& file, int line) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.file == file && f.line == line;
  });
}

TEST(LintDeterminism, FlagsEntropyApis) {
  const auto findings = RunOn("det");
  EXPECT_EQ(CountRule(findings, "det-rand"), 4);  // rd, srand, rand, test rand
  EXPECT_TRUE(HasFinding(findings, "det-rand", "src/bad_rand.cc"));
  EXPECT_TRUE(HasFinding(findings, "det-rand", "tests/test_entropy.cc"));
}

TEST(LintDeterminism, FlagsWallClockApis) {
  const auto findings = RunOn("det");
  // time(), system_clock, high_resolution_clock, clock().
  EXPECT_EQ(CountRule(findings, "det-wallclock"), 4);
  EXPECT_TRUE(HasFinding(findings, "det-wallclock", "src/bad_clock.cc"));
}

TEST(LintDeterminism, FlagsBuildTimeMacros) {
  const auto findings = RunOn("det");
  EXPECT_EQ(CountRule(findings, "det-time-macro"), 2);  // __DATE__, __TIME__
  EXPECT_TRUE(HasFinding(findings, "det-time-macro", "src/bad_macro.cc"));
}

TEST(LintDeterminism, CleanFileMemberCallsCommentsAndStringsAreIgnored) {
  const auto findings = RunOn("det");
  EXPECT_EQ(CountFile(findings, "src/clean.cc"), 0);
}

TEST(LintDeterminism, BlessedRandomWrapperIsExempt) {
  const auto findings = RunOn("det");
  EXPECT_EQ(CountFile(findings, "src/common/random.h"), 0);
}

TEST(LintSuppression, SameLineAndPreviousLineFormsSilenceFindings) {
  const auto findings = RunOn("det");
  EXPECT_EQ(CountFile(findings, "src/suppressed.cc"), 0);
}

TEST(LintUnorderedIteration, FlagsRangeForIteratorAndAliasForms) {
  const auto findings = RunOn("unordered");
  EXPECT_EQ(CountRule(findings, "det-unordered-iter"), 3);
  // Each of the three unordered loops accumulates FP, so the v2 FP rule
  // fires alongside each iteration finding.
  EXPECT_EQ(CountRule(findings, "det-fp-unordered-acc"), 3);
  EXPECT_EQ(CountFile(findings, "src/iter_bad.cc"), 6);
}

TEST(LintUnorderedIteration, LookupsAndOrderedContainersAreClean) {
  const auto findings = RunOn("unordered");
  EXPECT_EQ(CountFile(findings, "src/iter_ok.cc"), 0);
}

TEST(LintUnorderedIteration, TestsDirectoryIsOutOfScope) {
  const auto findings = RunOn("unordered");
  EXPECT_EQ(CountFile(findings, "tests/iter_in_tests_ok.cc"), 0);
}

TEST(LintParallel, FlagsRawPrimitivesInSimulatorCode) {
  const auto findings = RunOn("parallel");
  // 3 include lines + mutex/atomic/thread_local decls + thread + cv.
  EXPECT_EQ(CountRule(findings, "det-parallel-reduce"), 8);
  EXPECT_EQ(CountFile(findings, "src/bad_parallel.cc"), 8);
}

TEST(LintParallel, MemberAccessCommentsAndStringsAreClean) {
  const auto findings = RunOn("parallel");
  EXPECT_EQ(CountFile(findings, "src/clean_parallel.cc"), 0);
}

TEST(LintParallel, SuppressionsSilenceTheRule) {
  const auto findings = RunOn("parallel");
  EXPECT_EQ(CountFile(findings, "src/suppressed_parallel.cc"), 0);
}

TEST(LintParallel, CommonWrappersAreExemptAndJustifiedToolsStayClean) {
  const auto findings = RunOn("parallel");
  EXPECT_EQ(CountFile(findings, "src/common/pool_impl.cc"), 0);
  // tools/ is in scope since v2; the fixture tool carries an allow() with a
  // one-line justification, so it produces no findings.
  EXPECT_EQ(CountFile(findings, "tools/tool_thread_ok.cc"), 0);
}

TEST(LintLayering, RejectsSeededUpwardInclude) {
  const auto findings = RunOn("layers", /*with_layers=*/true);
  EXPECT_EQ(CountRule(findings, "layer-order"), 1);
  EXPECT_TRUE(HasFinding(findings, "layer-order", "src/lo/bad_upward.h"));
  // The downward edge hi -> lo is legal.
  EXPECT_EQ(CountFile(findings, "src/hi/top.h"), 0);
}

TEST(LintLayering, DetectsIncludeCycleBetweenEqualRankPeers) {
  const auto findings = RunOn("cycle", /*with_layers=*/true);
  EXPECT_EQ(CountRule(findings, "layer-order"), 0);  // equal rank: not upward
  EXPECT_GE(CountRule(findings, "layer-cycle"), 1);
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == "layer-cycle"; });
  ASSERT_NE(it, findings.end());
  EXPECT_NE(it->message.find("src/a/a.h"), std::string::npos);
  EXPECT_NE(it->message.find("src/b/b.h"), std::string::npos);
}

TEST(LintLayering, MalformedLayersFileIsRejected) {
  Config config;
  std::string error;
  const std::string path =
      testing::TempDir() + "/omega_lint_bad_layers.conf";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("layer missing_rank\n", f);
  fclose(f);
  EXPECT_FALSE(omega_lint::ParseLayersFile(path, &config, &error));
  EXPECT_NE(error.find("expected"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LintHygiene, HeaderWithoutPragmaOnceIsFlagged) {
  const auto findings = RunOn("hygiene");
  EXPECT_EQ(CountRule(findings, "hygiene-pragma-once"), 1);
  EXPECT_TRUE(
      HasFinding(findings, "hygiene-pragma-once", "src/no_pragma.h"));
}

TEST(LintHygiene, UsingNamespaceFlaggedInHeadersOnly) {
  const auto findings = RunOn("hygiene");
  EXPECT_EQ(CountRule(findings, "hygiene-using-namespace"), 1);
  EXPECT_TRUE(
      HasFinding(findings, "hygiene-using-namespace", "src/using_ns.h"));
  EXPECT_EQ(CountFile(findings, "src/using_ns_ok.cc"), 0);
}

TEST(LintHygiene, MutableNamespaceScopeVariablesFlagged) {
  const auto findings = RunOn("hygiene");
  EXPECT_EQ(CountRule(findings, "hygiene-nonconst-global"), 2);
  EXPECT_EQ(CountFile(findings, "src/globals_bad.h"), 2);
}

TEST(LintHygiene, ConstantsClassesAndFunctionLocalsAreClean) {
  const auto findings = RunOn("hygiene");
  EXPECT_EQ(CountFile(findings, "src/good.h"), 0);
}

TEST(LintShardSafety, FlagsMemberCaptureAndRawBufferWrites) {
  const auto findings = RunOn("shard");
  // shard_bad.cc: member write via reached method, by-ref capture of a
  // launching-frame local, and a raw (non-ShardSlots) vector capture.
  EXPECT_EQ(CountFile(findings, "src/shard_bad.cc"), 3);
  EXPECT_TRUE(HasFindingAt(findings, "det-shard-unsafe-write",
                           "src/shard_bad.cc", 10));  // Accum::Bump total_
  EXPECT_TRUE(HasFindingAt(findings, "det-shard-unsafe-write",
                           "src/shard_bad.cc", 19));  // shared_counter += 1
  EXPECT_TRUE(HasFindingAt(findings, "det-shard-unsafe-write",
                           "src/shard_bad.cc", 21));  // out[i] = 1.0
}

TEST(LintShardSafety, CallGraphEdgeCases) {
  const auto findings = RunOn("shard");
  // Overload widening: the receiverless Touch() call must reach the int
  // overload's global write even though the double overload is also viable.
  EXPECT_TRUE(HasFindingAt(findings, "det-shard-unsafe-write",
                           "src/edges.cc", 11));
  // Virtual dispatch: Base* -> Derived::Apply's member write.
  EXPECT_TRUE(HasFindingAt(findings, "det-shard-unsafe-write",
                           "src/edges.cc", 20));
  // WorkerPool::Run callbacks are shard roots like ParallelFor's.
  EXPECT_TRUE(HasFindingAt(findings, "det-shard-unsafe-write",
                           "src/edges.cc", 43));
  // Recursion (CountDown) terminates the worklist and stays clean: the only
  // edges.cc findings are the three pinned above.
  EXPECT_EQ(CountFile(findings, "src/edges.cc"), 3);
}

TEST(LintShardSafety, DisjointTreeCallbacksOwnTheirObjects) {
  const auto findings = RunOn("shard");
  // disjoint.cc: RunDisjoint callbacks are seeded per-tree, so writes
  // through the captured per-index objects (direct or via a reached method)
  // are clean; a global write inside the callback still flags.
  EXPECT_EQ(CountFile(findings, "src/disjoint.cc"), 1);
  EXPECT_TRUE(HasFindingAt(findings, "det-shard-unsafe-write",
                           "src/disjoint.cc", 24));  // disjoint_global +=
}

TEST(LintShardSafety, ShardSlotsFrameLocalsAndPerTrialObjectsAreClean) {
  const auto findings = RunOn("shard");
  EXPECT_EQ(CountFile(findings, "src/shard_ok.cc"), 0);
}

TEST(LintShardSafety, SuppressionSilencesTheRule) {
  const auto findings = RunOn("shard");
  EXPECT_EQ(CountFile(findings, "src/shard_suppressed.cc"), 0);
}

TEST(LintRngSubstream, FlagsFreshEnginesUnseededRngAndSharedShardDraws) {
  const auto findings = RunOn("rng");
  EXPECT_EQ(CountRule(findings, "det-rng-substream"), 3);
  EXPECT_TRUE(HasFindingAt(findings, "det-rng-substream",
                           "src/rng_bad.cc", 9));   // std::mt19937 gen(42)
  EXPECT_TRUE(HasFindingAt(findings, "det-rng-substream",
                           "src/rng_bad.cc", 14));  // Rng r(12345)
  EXPECT_TRUE(HasFindingAt(findings, "det-rng-substream",
                           "src/rng_bad.cc", 22));  // shared draw in shard
}

TEST(LintRngSubstream, SubstreamSeedsAndPerShardEnginesAreClean) {
  const auto findings = RunOn("rng");
  EXPECT_EQ(CountFile(findings, "src/rng_ok.cc"), 0);
}

TEST(LintRngSubstream, SuppressionSilencesTheRule) {
  const auto findings = RunOn("rng");
  EXPECT_EQ(CountFile(findings, "src/rng_suppressed.cc"), 0);
}

TEST(LintFpUnorderedAcc, FlagsRangeForAndAccumulateForms) {
  const auto findings = RunOn("fpacc");
  EXPECT_EQ(CountRule(findings, "det-fp-unordered-acc"), 2);
  EXPECT_TRUE(HasFindingAt(findings, "det-fp-unordered-acc",
                           "src/fp_bad.cc", 13));  // total += kv.second
  EXPECT_TRUE(HasFindingAt(findings, "det-fp-unordered-acc",
                           "src/fp_bad.cc", 20));  // std::accumulate 0.0
}

TEST(LintFpUnorderedAcc, OrderedContainersAndIntegerAccumulationAreClean) {
  // fp_ok.cc: FP += over std::map and integer += over unordered_map —
  // neither is order-sensitive, so the file is entirely clean.
  const auto findings = RunOn("fpacc");
  EXPECT_EQ(CountFile(findings, "src/fp_ok.cc"), 0);
}

TEST(LintFpUnorderedAcc, SuppressionSilencesTheRule) {
  const auto findings = RunOn("fpacc");
  EXPECT_EQ(CountFile(findings, "src/fp_suppressed.cc"), 0);
}

TEST(LintDanglingCapture, FlagsNamedRefAndDefaultRefCaptures) {
  const auto findings = RunOn("dangling");
  EXPECT_EQ(CountRule(findings, "sim-dangling-capture"), 2);
  EXPECT_TRUE(HasFindingAt(findings, "sim-dangling-capture",
                           "src/dangling_bad.cc", 9));   // [&count]
  EXPECT_TRUE(HasFindingAt(findings, "sim-dangling-capture",
                           "src/dangling_bad.cc", 14));  // [&]
}

TEST(LintDanglingCapture, ByValueAndCallerOwnedReferencesAreClean) {
  const auto findings = RunOn("dangling");
  EXPECT_EQ(CountFile(findings, "src/dangling_ok.cc"), 0);
}

TEST(LintDanglingCapture, SuppressionSilencesTheRule) {
  const auto findings = RunOn("dangling");
  EXPECT_EQ(CountFile(findings, "src/dangling_suppressed.cc"), 0);
}

// Seeded-mutation check: start from a clean shard pattern, flip the sanctioned
// ShardSlots write into a raw captured-vector write, and assert the linter
// catches exactly that regression. Guards against the flow rules silently
// losing recall.
TEST(LintMutation, SeededShardWriteMutationIsCaught) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "omega_lint_mutation";
  fs::remove_all(root);
  fs::create_directories(root / "src");
  const fs::path file = root / "src" / "mut.cc";

  const std::string clean =
      "#include <cstddef>\n"
      "#include <vector>\n"
      "namespace omega {\n"
      "void Fill() {\n"
      "  std::vector<double> out(8, 0.0);\n"
      "  ShardSlots<double> slots(out);\n"
      "  ParallelFor(8, [&](size_t i) {\n"
      "    slots[i] = 1.0;\n"
      "  });\n"
      "}\n"
      "}  // namespace omega\n";
  {
    std::ofstream os(file);
    os << clean;
  }
  Config config;
  Linter before(root.string(), config);
  ASSERT_TRUE(before.Run());
  EXPECT_TRUE(before.findings().empty());

  // The mutation: bypass the per-shard view and write the shared buffer.
  std::string mutated = clean;
  const auto pos = mutated.find("slots[i] = 1.0;");
  ASSERT_NE(pos, std::string::npos);
  mutated.replace(pos, 5, "  out");
  {
    std::ofstream os(file);
    os << mutated;
  }
  Linter after(root.string(), config);
  ASSERT_TRUE(after.Run());
  ASSERT_EQ(after.findings().size(), 1u);
  EXPECT_EQ(after.findings().front().rule, "det-shard-unsafe-write");
  EXPECT_EQ(after.findings().front().file, "src/mut.cc");
  fs::remove_all(root);
}

TEST(LintBaseline, RoundTripSilencesAndReexposesFindings) {
  Config config;
  Linter linter(FixtureRoot("det"), config);
  ASSERT_TRUE(linter.Run());
  ASSERT_FALSE(linter.findings().empty());

  const std::string path = testing::TempDir() + "/omega_lint_baseline.txt";
  ASSERT_TRUE(omega_lint::WriteBaseline(path, linter.findings()));
  auto baseline = omega_lint::LoadBaseline(path);
  EXPECT_EQ(baseline.size(), linter.findings().size());

  // Full baseline: nothing un-baselined remains.
  EXPECT_TRUE(
      omega_lint::FilterBaselined(linter.findings(), baseline).empty());

  // Dropping one entry re-exposes exactly that finding.
  const std::string dropped = linter.findings().front().Key();
  baseline.erase(dropped);
  const auto fresh = omega_lint::FilterBaselined(linter.findings(), baseline);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh.front().Key(), dropped);
  std::remove(path.c_str());
}

TEST(LintCatalogue, EveryRuleIdHasFixtureCoverage) {
  std::set<std::string> seen;
  for (const auto& f : RunOn("det")) seen.insert(f.rule);
  for (const auto& f : RunOn("unordered")) seen.insert(f.rule);
  for (const auto& f : RunOn("parallel")) seen.insert(f.rule);
  for (const auto& f : RunOn("layers", true)) seen.insert(f.rule);
  for (const auto& f : RunOn("cycle", true)) seen.insert(f.rule);
  for (const auto& f : RunOn("hygiene")) seen.insert(f.rule);
  for (const auto& f : RunOn("shard")) seen.insert(f.rule);
  for (const auto& f : RunOn("rng")) seen.insert(f.rule);
  for (const auto& f : RunOn("fpacc")) seen.insert(f.rule);
  for (const auto& f : RunOn("dangling")) seen.insert(f.rule);
  for (const std::string& id : omega_lint::AllRuleIds()) {
    EXPECT_TRUE(seen.count(id)) << "no fixture produces rule " << id;
  }
  EXPECT_EQ(seen.size(), omega_lint::AllRuleIds().size());
}

TEST(LintOutput, FindingsAreDeterministicAcrossRuns) {
  const auto a = RunOn("det");
  const auto b = RunOn("det");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Key(), b[i].Key());
    EXPECT_EQ(a[i].message, b[i].message);
  }
}

TEST(LintOutput, FlowAnalysisIsDeterministicAcrossRuns) {
  // The flow rules run a worklist over hash-keyed tables; pin that their
  // output order and content are byte-identical run to run.
  const auto a = RunOn("shard");
  const auto b = RunOn("shard");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Key(), b[i].Key());
    EXPECT_EQ(a[i].message, b[i].message);
  }
}

}  // namespace
