// Multi-cell federation (DESIGN.md §13): determinism differentials across
// sweep threads and intra-trial threads, gossip-staleness edge cases, and
// spillover end-to-end.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/sweep.h"
#include "src/federation/federation.h"
#include "src/obs/federation_report.h"
#include "src/trace/trace_recorder.h"
#include "src/workload/cluster_config.h"
#include "tests/bitwise_eq.h"

namespace omega {
namespace {

SchedulerConfig Sched(const std::string& name) {
  SchedulerConfig c;
  c.name = name;
  return c;
}

SimOptions BaseOptions(uint64_t seed, double hours = 0.25) {
  SimOptions o;
  o.horizon = Duration::FromHours(hours);
  o.seed = seed;
  return o;
}

FederationOptions BaseFed(uint32_t cells = 4) {
  FederationOptions f;
  f.num_cells = cells;
  f.gossip_interval = Duration::FromSeconds(15);
  f.gossip_delay = Duration::FromSeconds(1);
  f.gossip_jitter = Duration::FromSeconds(2);
  f.pending_timeout = Duration::FromSeconds(120);
  f.max_spills = 2;
  return f;
}

// Everything a federation run can surface, for bitwise comparison: front-door
// counters, fleet statistics, per-cell submissions/utilization, and the sum
// of every machine's commit seqnum in every cell (a fingerprint of the entire
// transaction history).
struct FedResult {
  int64_t routed = 0;
  int64_t scheduled = 0;
  int64_t lost = 0;
  int64_t spills = 0;
  int64_t timeouts = 0;
  int64_t rejections = 0;
  int64_t published = 0;
  int64_t delivered = 0;
  int64_t fallback = 0;
  int64_t submitted = 0;
  int64_t abandoned = 0;
  uint64_t seqnum_sum = 0;
  double staleness_mean = 0.0;
  double delivery_mean = 0.0;
  double tts_p50 = 0.0;
  double tts_p90 = 0.0;
  double spill_p90 = 0.0;
  double conflict = 0.0;
  double util_mean = 0.0;
  double skew = 0.0;
  std::vector<double> cell_cpu;
  std::vector<int64_t> cell_submitted;
};

FedResult RunFed(const SimOptions& options, const FederationOptions& fed_opts,
                 std::string* trace_bytes = nullptr) {
  FederationSim fed(TestCluster(24), options, Sched("batch"), Sched("service"),
                    fed_opts);
  TraceRecorder recorder;
  if (trace_bytes != nullptr) {
    fed.SetTraceRecorder(&recorder);
  }
  fed.Run();
  const FederationMetrics& m = fed.metrics();
  FedResult r;
  r.routed = m.jobs_routed;
  r.scheduled = m.jobs_fully_scheduled;
  r.lost = m.jobs_lost;
  r.spills = m.spills;
  r.timeouts = m.spill_timeouts;
  r.rejections = m.spill_rejections;
  r.published = m.summaries_published;
  r.delivered = m.summaries_delivered;
  r.fallback = m.hash_fallback_routes;
  r.submitted = fed.JobsSubmittedTotal();
  r.abandoned = fed.TotalJobsAbandoned();
  r.staleness_mean = m.routing_staleness_secs.mean();
  r.delivery_mean = m.delivery_latency_secs.mean();
  r.tts_p50 = m.time_to_scheduled_secs.Quantile(0.5);
  r.tts_p90 = m.time_to_scheduled_secs.Quantile(0.9);
  r.spill_p90 = m.spillover_latency_secs.Quantile(0.9);
  r.conflict = fed.FleetConflictFraction();
  r.util_mean = fed.MeanCellCpuUtilization();
  r.skew = fed.CpuUtilizationSkew();
  for (uint32_t i = 0; i < fed.num_cells(); ++i) {
    r.cell_cpu.push_back(fed.cell(i).cell().CpuUtilization());
    r.cell_submitted.push_back(fed.cell(i).JobsSubmittedTotal());
    for (MachineId mch = 0; mch < fed.cell(i).cell().NumMachines(); ++mch) {
      r.seqnum_sum += fed.cell(i).cell().machine(mch).seqnum;
    }
  }
  if (trace_bytes != nullptr) {
    std::ostringstream os;
    recorder.ExportJsonLines(os);
    *trace_bytes = os.str();
  }
  return r;
}

void ExpectSameResult(const FedResult& a, const FedResult& b) {
  EXPECT_EQ(a.routed, b.routed);
  EXPECT_EQ(a.scheduled, b.scheduled);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.spills, b.spills);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.rejections, b.rejections);
  EXPECT_EQ(a.published, b.published);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.fallback, b.fallback);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.seqnum_sum, b.seqnum_sum);
  EXPECT_TRUE(SameBits(a.staleness_mean, b.staleness_mean));
  EXPECT_TRUE(SameBits(a.delivery_mean, b.delivery_mean));
  EXPECT_TRUE(SameBits(a.tts_p50, b.tts_p50));
  EXPECT_TRUE(SameBits(a.tts_p90, b.tts_p90));
  EXPECT_TRUE(SameBits(a.spill_p90, b.spill_p90));
  EXPECT_TRUE(SameBits(a.conflict, b.conflict));
  EXPECT_TRUE(SameBits(a.util_mean, b.util_mean));
  EXPECT_TRUE(SameBits(a.skew, b.skew));
  ASSERT_EQ(a.cell_cpu.size(), b.cell_cpu.size());
  for (size_t i = 0; i < a.cell_cpu.size(); ++i) {
    EXPECT_TRUE(SameBits(a.cell_cpu[i], b.cell_cpu[i])) << "cell " << i;
    EXPECT_EQ(a.cell_submitted[i], b.cell_submitted[i]) << "cell " << i;
  }
}

// Same seed => bit-identical federation results regardless of how the sweep
// shards trials over worker threads.
TEST(FederationDeterminismTest, BitIdenticalAcrossSweepThreads) {
  constexpr size_t kTrials = 3;
  auto run_sweep = [&](size_t threads) {
    SweepRunner runner("federation_det", /*base_seed=*/77, threads);
    return runner.Run(kTrials, [](const TrialContext& ctx) {
      return RunFed(BaseOptions(ctx.seed), BaseFed());
    });
  };
  const auto on1 = run_sweep(1);
  const auto on2 = run_sweep(2);
  const auto on8 = run_sweep(8);
  ASSERT_EQ(on1.size(), kTrials);
  for (size_t i = 0; i < kTrials; ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    ExpectSameResult(on1[i], on2[i]);
    ExpectSameResult(on1[i], on8[i]);
  }
  // The trials are genuinely different runs, not copies of one stream.
  EXPECT_NE(on1[0].seqnum_sum, on1[1].seqnum_sum);
}

// Placement/commit parallelism inside each cell must not perturb anything —
// counters, statistics, or the byte-exact trace stream.
TEST(FederationDeterminismTest, BitIdenticalAcrossIntraTrialThreads) {
  SimOptions sequential = BaseOptions(/*seed=*/5);
  SimOptions sharded = sequential;
  sharded.intra_trial_threads = 2;
  sharded.parallel_commit_min_claims = 1;  // force the parallel pre-check
  std::string trace_seq;
  std::string trace_par;
  const FedResult a = RunFed(sequential, BaseFed(), &trace_seq);
  const FedResult b = RunFed(sharded, BaseFed(), &trace_par);
  ExpectSameResult(a, b);
  EXPECT_EQ(trace_seq, trace_par) << "trace streams diverge";
  EXPECT_FALSE(trace_seq.empty());
}

// Gossip that is published but never delivered leaves the least-loaded router
// with no summaries, so every decision falls back to the job-id hash — which
// must be exactly the static-partitioning baseline, bit for bit.
TEST(FederationGossipTest, InfiniteDelayEqualsStaticPartitioning) {
  FederationOptions never = BaseFed();
  never.routing = FederationRouting::kLeastLoaded;
  never.gossip_delay = Duration::Max();
  FederationOptions static_hash = never;
  static_hash.routing = FederationRouting::kStaticHash;
  const FedResult a = RunFed(BaseOptions(9), never);
  const FedResult b = RunFed(BaseOptions(9), static_hash);
  ExpectSameResult(a, b);
  EXPECT_EQ(a.delivered, 0);
  EXPECT_GT(a.published, 0);
  EXPECT_EQ(a.fallback, a.routed + a.spills);
}

// Static routing never consults summaries, so the gossip configuration is
// observationally inert: cell outcomes are bit-identical whether summaries
// flow normally or never arrive. (Only the gossip counters may differ.)
TEST(FederationGossipTest, GossipInertUnderStaticRouting) {
  FederationOptions flowing = BaseFed();
  flowing.routing = FederationRouting::kStaticHash;
  flowing.gossip_jitter = Duration::Zero();
  FederationOptions starved = flowing;
  starved.gossip_delay = Duration::Max();
  FedResult a = RunFed(BaseOptions(13), flowing);
  FedResult b = RunFed(BaseOptions(13), starved);
  EXPECT_GT(a.delivered, 0);
  EXPECT_EQ(b.delivered, 0);
  // Neutralize the fields gossip is allowed to touch, then demand bitwise
  // equality of everything else.
  b.delivered = a.delivered;
  b.delivery_mean = a.delivery_mean;
  ExpectSameResult(a, b);
}

// Zero gossip delay means every summary arrives the instant it is published;
// zero interval means the router reads live state (staleness identically 0).
TEST(FederationGossipTest, ZeroDelayAndLiveSummariesAreFresh) {
  FederationOptions zero_delay = BaseFed();
  zero_delay.gossip_delay = Duration::Zero();
  zero_delay.gossip_jitter = Duration::Zero();
  const FedResult a = RunFed(BaseOptions(21), zero_delay);
  EXPECT_GT(a.delivered, 0);
  EXPECT_TRUE(SameBits(a.delivery_mean, 0.0));
  // Staleness at routing time is bounded by the publish cadence.
  EXPECT_LE(a.staleness_mean, zero_delay.gossip_interval.ToSeconds());

  FederationOptions live = BaseFed();
  live.gossip_interval = Duration::Zero();
  const FedResult b = RunFed(BaseOptions(21), live);
  EXPECT_EQ(b.published, 0);
  EXPECT_EQ(b.fallback, 0);  // live summaries are always available
  EXPECT_TRUE(SameBits(b.staleness_mean, 0.0));
}

// Admission rejection spills a job to the next cell; when every cell has
// rejected it, the job is lost. With admission_limit = 0 every cell rejects
// everything, so the arithmetic is exact.
TEST(FederationSpilloverTest, RejectionSpillsThenLoses) {
  SchedulerConfig closed_batch = Sched("batch");
  closed_batch.admission_limit = 0;
  SchedulerConfig closed_service = Sched("service");
  closed_service.admission_limit = 0;
  FederationOptions fed_opts = BaseFed(/*cells=*/2);
  fed_opts.max_spills = 4;  // more budget than cells: the mask must stop it
  SimOptions options = BaseOptions(3, /*hours=*/0.1);
  FederationSim fed(TestCluster(8), options, closed_batch, closed_service,
                    fed_opts);
  fed.Run();
  const FederationMetrics& m = fed.metrics();
  EXPECT_GT(m.jobs_routed, 0);
  EXPECT_GT(m.jobs_lost, 0);
  EXPECT_EQ(m.jobs_fully_scheduled, 0);
  EXPECT_EQ(m.spills, m.spill_rejections);
  EXPECT_EQ(m.spill_timeouts, 0);
  // With two cells the tried-mask caps every job at one spill even though
  // max_spills allows four; each lost job spilled exactly once. Jobs still in
  // transfer flight at the horizon account for the slack in both bounds.
  EXPECT_GE(m.spills, m.jobs_lost);
  EXPECT_LE(m.spills, m.jobs_routed);
}

// A cell that sits on a job past the pending timeout loses it to a sibling,
// and the job still completes somewhere: spilled work is not dropped.
TEST(FederationSpilloverTest, TimeoutSpillsCompleteElsewhere) {
  // Keep per-cell queues stable (utilization ~0.6) so timeouts come from
  // transient bursts, not permanent overload: a job that times out behind a
  // burst in one cell usually finds the other cell's queue short enough to
  // finish within the timeout, exercising the full spill-and-complete path.
  SchedulerConfig slow_batch = Sched("batch");
  slow_batch.batch_times.t_job = Duration::FromSeconds(5);
  FederationOptions fed_opts = BaseFed(/*cells=*/2);
  fed_opts.pending_timeout = Duration::FromSeconds(15);
  SimOptions options = BaseOptions(4, /*hours=*/0.5);
  options.batch_rate_multiplier = 0.25;
  options.service_rate_multiplier = 0.0;  // batch-only keeps this focused
  FederationSim fed(TestCluster(16), options, slow_batch, Sched("service"),
                    fed_opts);
  fed.Run();
  const FederationMetrics& m = fed.metrics();
  EXPECT_GT(m.spill_timeouts, 0);
  EXPECT_GT(m.jobs_fully_scheduled, 0);
  EXPECT_EQ(m.spills, m.spill_timeouts + m.spill_rejections);
  // Every fully-scheduled job records a time-to-scheduled sample; only the
  // ones that hopped cells also land in the spillover CDF.
  EXPECT_EQ(static_cast<int64_t>(m.time_to_scheduled_secs.count()),
            m.jobs_fully_scheduled);
  EXPECT_GT(m.spillover_latency_secs.count(), size_t{0});
  EXPECT_LE(m.spillover_latency_secs.count(),
            m.time_to_scheduled_secs.count());
}

// Multi-cell trials share one TraceRecorder: per-cell track names are
// namespaced, so two cells' schedulers never collide on one thread id.
TEST(FederationTraceTest, TracksAreNamespacedPerCell) {
  TraceRecorder recorder;
  FederationSim fed(TestCluster(16), BaseOptions(2, /*hours=*/0.05),
                    Sched("batch"), Sched("service"), BaseFed(/*cells=*/2));
  fed.SetTraceRecorder(&recorder);
  fed.Run();
  const std::vector<std::string>& names = recorder.track_names();
  auto has = [&](const std::string& name) {
    for (const std::string& n : names) {
      if (n == name) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has("cell0/batch-0"));
  EXPECT_TRUE(has("cell1/batch-0"));
  EXPECT_TRUE(has("cell0/cluster"));
  EXPECT_TRUE(has("cell1/cluster"));
  // The namespaced harness tracks keep cell events off the shared track 0.
  std::ostringstream os;
  recorder.ExportChromeTrace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("cell0/"), std::string::npos);
  EXPECT_NE(trace.find("cell1/"), std::string::npos);
}

// --- windowed execution (DESIGN.md §15) ------------------------------------

FederationOptions Windowed(FederationOptions f, uint32_t threads) {
  f.window_parallelism = threads;
  return f;
}

// Runs the same configuration through the shared queue and through windowed
// execution at 1, 2, and 8 threads, demanding the full fingerprint and the
// byte-exact JSON-lines trace stream agree every time.
void ExpectWindowedMatchesShared(const SimOptions& options,
                                 const FederationOptions& fed_opts) {
  std::string shared_trace;
  const FedResult shared = RunFed(options, fed_opts, &shared_trace);
  EXPECT_FALSE(shared_trace.empty());
  for (uint32_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("window_parallelism=" + std::to_string(threads));
    std::string windowed_trace;
    const FedResult windowed =
        RunFed(options, Windowed(fed_opts, threads), &windowed_trace);
    ExpectSameResult(shared, windowed);
    EXPECT_EQ(shared_trace, windowed_trace) << "trace streams diverge";
  }
}

// The headline differential: the default gossip/spillover configuration,
// windowed at 1/2/8 threads, bit-identical to the shared-queue interleaving.
TEST(FederationWindowedTest, BitIdenticalSharedVsWindowed) {
  ExpectWindowedMatchesShared(BaseOptions(/*seed=*/31), BaseFed());
}

// Static-hash routing never reads summaries, so windows stretch between
// transfer deliveries; the stream must still match exactly.
TEST(FederationWindowedTest, BitIdenticalUnderStaticRouting) {
  FederationOptions f = BaseFed();
  f.routing = FederationRouting::kStaticHash;
  ExpectWindowedMatchesShared(BaseOptions(/*seed=*/32), f);
}

// Windowed execution engages (it is not silently falling back to the shared
// path) and reports coherent window accounting.
TEST(FederationWindowedTest, EngagesAndReportsWindowStats) {
  const SimOptions options = BaseOptions(/*seed=*/33);
  FederationSim fed(TestCluster(24), options, Sched("batch"), Sched("service"),
                    Windowed(BaseFed(), 2));
  EXPECT_TRUE(fed.windowed_active());
  fed.Run();
  EXPECT_GT(fed.WindowCount(), 0);
  EXPECT_GT(fed.MeanWindowWidthSecs(), 0.0);
  EXPECT_GE(fed.BarrierStallFraction(), 0.0);
  EXPECT_LE(fed.BarrierStallFraction(), 1.0);
}

// Configurations the conservative lookahead cannot bound fall back to the
// shared queue — and say so — rather than risking divergence.
TEST(FederationWindowedTest, UnsupportedConfigsFallBackToShared) {
  FederationOptions zero_delay = BaseFed();
  zero_delay.transfer_delay = Duration::Zero();
  EXPECT_TRUE(FederationSim::WindowedUnsupported(zero_delay));

  FederationOptions live = BaseFed();
  live.gossip_interval = Duration::Zero();
  EXPECT_TRUE(FederationSim::WindowedUnsupported(live));

  // Without spillover, neither case needs mid-window reads: both are safe.
  FederationOptions no_spill_zero_delay = zero_delay;
  no_spill_zero_delay.spillover = SpilloverPolicy::kNone;
  EXPECT_FALSE(FederationSim::WindowedUnsupported(no_spill_zero_delay));

  FederationSim fed(TestCluster(24), BaseOptions(/*seed=*/34), Sched("batch"),
                    Sched("service"), Windowed(live, 4));
  EXPECT_FALSE(fed.windowed_active());
  fed.Run();
  EXPECT_EQ(fed.WindowCount(), 0);

  // The fallback still produces the canonical result.
  const FedResult a = RunFed(BaseOptions(/*seed=*/34), live);
  const FedResult b = RunFed(BaseOptions(/*seed=*/34), Windowed(live, 4));
  ExpectSameResult(a, b);
}

// Live summaries without spillover avoid the fallback: windows are bounded
// by the arrival stream itself, and the differential must still hold.
TEST(FederationWindowedTest, LiveSummariesWithoutSpillover) {
  FederationOptions f = BaseFed();
  f.gossip_interval = Duration::Zero();
  f.spillover = SpilloverPolicy::kNone;
  ASSERT_FALSE(FederationSim::WindowedUnsupported(f));
  ExpectWindowedMatchesShared(BaseOptions(/*seed=*/35), f);
}

// --- window-boundary edges --------------------------------------------------

// Transfers that land exactly on a gossip barrier: with transfer_delay equal
// to the (jitter-free) gossip interval, every delivery collides with a
// publication instant. Master-lane ordering must keep the two modes aligned.
TEST(FederationWindowEdgeTest, TransferExactlyAtBarrier) {
  FederationOptions f = BaseFed();
  f.gossip_jitter = Duration::Zero();
  f.transfer_delay = f.gossip_interval;  // deliveries hit publish instants
  ExpectWindowedMatchesShared(BaseOptions(/*seed=*/41), f);
}

// Gossip published at the exact instant a window opens: zero delivery delay
// makes every summary land at its publication barrier, the window's open
// edge. The router must see it on the next decision in both modes.
TEST(FederationWindowEdgeTest, GossipAtWindowOpen) {
  FederationOptions f = BaseFed();
  f.gossip_delay = Duration::Zero();
  f.gossip_jitter = Duration::Zero();
  ExpectWindowedMatchesShared(BaseOptions(/*seed=*/42), f);
}

// Pending-timeout watchdogs racing cell progress: a timeout short enough to
// fire while jobs are still queued makes watchdog-vs-completion ties common.
// The watchdog runs on the master lane, so it always wins a same-instant race
// in both modes.
TEST(FederationWindowEdgeTest, WatchdogRacesSpill) {
  FederationOptions f = BaseFed();
  f.pending_timeout = Duration::FromSeconds(10);
  f.max_spills = 3;
  SimOptions options = BaseOptions(/*seed=*/43);
  options.batch_rate_multiplier = 2.0;  // queue pressure => real timeouts
  const FedResult probe = RunFed(options, f);
  EXPECT_GT(probe.timeouts, 0) << "edge not exercised: no watchdog fired";
  ExpectWindowedMatchesShared(options, f);
}

// The federation report nests one RunReport per cell under a fleet section
// and renders as one JSON object.
TEST(FederationReportTest, BuildsAndSerializes) {
  FederationSim fed(TestCluster(16), BaseOptions(6, /*hours=*/0.1),
                    Sched("batch"), Sched("service"), BaseFed(/*cells=*/3));
  fed.Run();
  const FederationReport report = BuildFederationReport(fed);
  EXPECT_EQ(report.fleet.num_cells, 3u);
  ASSERT_EQ(report.cells.size(), 3u);
  EXPECT_EQ(report.cells[0].architecture, "federation/cell0");
  EXPECT_EQ(report.fleet.jobs_routed, fed.metrics().jobs_routed);
  ASSERT_EQ(report.fleet.routed_per_cell.size(), 3u);
  int64_t routed = 0;
  for (int64_t per_cell : report.fleet.routed_per_cell) {
    routed += per_cell;
  }
  EXPECT_EQ(routed, fed.metrics().jobs_routed + fed.metrics().spills);
  std::ostringstream os;
  report.ToJson(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"fleet\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("\"cpu_utilization_skew\""), std::string::npos);
}

}  // namespace
}  // namespace omega
