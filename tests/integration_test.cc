// Cross-architecture integration tests: the same workload run through the
// monolithic, two-level (Mesos) and shared-state (Omega) simulations, checking
// the comparative properties the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "src/mesos/mesos_simulation.h"
#include "src/scheduler/monolithic.h"
#include "src/omega/omega_scheduler.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

SimOptions Run6h(uint64_t seed = 42) {
  SimOptions o;
  o.horizon = Duration::FromHours(6);
  o.seed = seed;
  return o;
}

// A moderately loaded test cell with slow service decisions: the regime where
// the architectures differ (§4).
ClusterConfig Cell() {
  ClusterConfig cfg = TestCluster(64);
  cfg.batch.interarrival_mean_secs = 1.0;
  cfg.service.interarrival_mean_secs = 30.0;
  return cfg;
}

SchedulerConfig SlowService() {
  SchedulerConfig s;
  s.service_times.t_job = Duration::FromSeconds(10.0);
  return s;
}

TEST(IntegrationTest, OmegaAvoidsHeadOfLineBlocking) {
  const ClusterConfig cfg = Cell();
  // Single-path monolithic: service decision time applies to everything.
  SchedulerConfig single = SlowService();
  single.batch_times = single.service_times;
  MonolithicSimulation mono(cfg, Run6h(), single);
  mono.Run();

  OmegaSimulation om(cfg, Run6h(), SchedulerConfig{}, SlowService());
  om.Run();

  const double mono_batch_wait =
      mono.scheduler().metrics().MeanWait(JobType::kBatch);
  EXPECT_GT(mono_batch_wait, 10.0 * om.MeanBatchWait());
}

TEST(IntegrationTest, OmegaMatchesMultiPathWaitTimes) {
  // §4.3: Omega's wait times are comparable to multi-path monolithic.
  const ClusterConfig cfg = Cell();
  MonolithicSimulation multi(cfg, Run6h(), SlowService());
  multi.Run();
  OmegaSimulation om(cfg, Run6h(), SchedulerConfig{}, SlowService());
  om.Run();
  const double multi_wait = multi.scheduler().metrics().MeanWait(JobType::kBatch);
  const double om_wait = om.MeanBatchWait();
  // Same order of magnitude (Omega may be slightly better: no shared queue).
  EXPECT_LT(om_wait, multi_wait + 5.0);
}

TEST(IntegrationTest, OmegaSchedulesMoreThanMesosUnderSlowDecisions) {
  // §4.2: the offer model degrades with slow service schedulers; Omega does
  // not. Compare completed batch jobs on identical workloads.
  ClusterConfig cfg = Cell();
  SchedulerConfig service;
  service.service_times.t_job = Duration::FromSeconds(30.0);
  service.max_attempts = 100;
  SchedulerConfig batch;
  batch.max_attempts = 100;

  MesosSimulation mesos(cfg, Run6h(), batch, service);
  mesos.Run();
  OmegaSimulation om(cfg, Run6h(), batch, service);
  om.Run();

  int64_t omega_batch = 0;
  for (uint32_t i = 0; i < om.NumBatchSchedulers(); ++i) {
    omega_batch += om.batch_scheduler(i).metrics().JobsScheduled(JobType::kBatch);
  }
  const int64_t mesos_batch =
      mesos.batch_framework().metrics().JobsScheduled(JobType::kBatch);
  EXPECT_GE(omega_batch, mesos_batch);
  // And Mesos batch wait suffers relative to Omega.
  EXPECT_GE(mesos.batch_framework().metrics().MeanWait(JobType::kBatch),
            om.MeanBatchWait());
}

TEST(IntegrationTest, AllArchitecturesConserveResources) {
  const ClusterConfig cfg = Cell();
  MonolithicSimulation mono(cfg, Run6h(1), SchedulerConfig{});
  mono.Run();
  EXPECT_TRUE(mono.cell().CheckInvariants());

  MesosSimulation mesos(cfg, Run6h(2), SchedulerConfig{}, SchedulerConfig{});
  mesos.Run();
  EXPECT_TRUE(mesos.cell().CheckInvariants());

  OmegaSimulation om(cfg, Run6h(3), SchedulerConfig{}, SchedulerConfig{}, 3);
  om.Run();
  EXPECT_TRUE(om.cell().CheckInvariants());
}

TEST(IntegrationTest, UtilizationStaysNearTarget) {
  // The initial fill plus balanced arrivals keep utilization in a sane band
  // over the run (neither draining to zero nor saturating).
  ClusterConfig cfg = Cell();
  SimOptions opts = Run6h(4);
  opts.utilization_sample_interval = Duration::FromMinutes(30);
  OmegaSimulation om(cfg, opts, SchedulerConfig{}, SchedulerConfig{});
  om.Run();
  for (const UtilizationSample& s : om.utilization_series()) {
    EXPECT_GT(s.cpu, 0.05);
    EXPECT_LT(s.cpu, 0.98);
  }
}

}  // namespace
}  // namespace omega
