// Intra-trial parallelism differential tests (DESIGN.md §12).
//
// SimOptions::intra_trial_threads shards the placement scans and the Commit
// conflict pre-check across a worker pool. The hard design constraint is the
// same as the SoA core's (soa_diff_test.cc): at any thread count, every
// simulation must produce exactly the same cell state, metrics, and trace
// event stream as the sequential run — parallelism is a pure wall-clock
// optimization with zero observable effect. The tests here run every
// architecture at 1, 2, and 8 threads and compare fingerprints bitwise, and
// re-run a small fig5 grid at 1 and 2 threads.
#include <gtest/gtest.h>

#include "tests/bitwise_eq.h"

#include <memory>
#include <vector>

#include "bench/fig56_sweep.h"
#include "src/cluster/cell_state.h"
#include "src/hifi/hifi_simulation.h"
#include "src/mapreduce/mr_scheduler.h"
#include "src/mapreduce/policy.h"
#include "src/mesos/mesos_simulation.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/cluster_simulation.h"
#include "src/scheduler/monolithic.h"
#include "src/trace/trace_recorder.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

struct SimFingerprint {
  std::vector<uint64_t> seqnums;
  std::vector<double> allocated;  // cpus, mem per machine, exact
  double total_cpus = 0.0;
  double total_mem = 0.0;
  int64_t submitted = 0;
  int64_t preempted = 0;
  int64_t failures = 0;
  int64_t killed = 0;
  std::vector<TraceEvent> events;
  std::vector<int64_t> event_counts;
};

SimFingerprint Fingerprint(const ClusterSimulation& sim,
                           const TraceRecorder& trace) {
  SimFingerprint fp;
  const CellState& cell = sim.cell();
  for (MachineId m = 0; m < cell.NumMachines(); ++m) {
    fp.seqnums.push_back(cell.machine(m).seqnum);
    fp.allocated.push_back(cell.machine(m).allocated.cpus);
    fp.allocated.push_back(cell.machine(m).allocated.mem_gb);
  }
  fp.total_cpus = cell.TotalAllocated().cpus;
  fp.total_mem = cell.TotalAllocated().mem_gb;
  fp.submitted = sim.JobsSubmittedTotal();
  fp.preempted = sim.TasksPreempted();
  fp.failures = sim.MachineFailures();
  fp.killed = sim.TasksKilledByFailures();
  trace.ForEachRetained(
      [&fp](const TraceEvent& e) { fp.events.push_back(e); });
  for (size_t t = 0; t < kNumTraceEventTypes; ++t) {
    fp.event_counts.push_back(trace.CountOf(static_cast<TraceEventType>(t)));
    fp.event_counts.push_back(trace.SumArg0(static_cast<TraceEventType>(t)));
  }
  return fp;
}

void ExpectIdentical(const SimFingerprint& par, const SimFingerprint& seq,
                     uint32_t threads) {
  EXPECT_EQ(par.seqnums, seq.seqnums) << "threads=" << threads;
  EXPECT_EQ(par.allocated, seq.allocated) << "threads=" << threads;
  EXPECT_EQ(par.total_cpus, seq.total_cpus) << "threads=" << threads;
  EXPECT_EQ(par.total_mem, seq.total_mem) << "threads=" << threads;
  EXPECT_EQ(par.submitted, seq.submitted) << "threads=" << threads;
  EXPECT_EQ(par.preempted, seq.preempted) << "threads=" << threads;
  EXPECT_EQ(par.failures, seq.failures) << "threads=" << threads;
  EXPECT_EQ(par.killed, seq.killed) << "threads=" << threads;
  EXPECT_EQ(par.event_counts, seq.event_counts) << "threads=" << threads;
  ASSERT_EQ(par.events.size(), seq.events.size()) << "threads=" << threads;
  for (size_t i = 0; i < par.events.size(); ++i) {
    const TraceEvent& a = par.events[i];
    const TraceEvent& b = seq.events[i];
    ASSERT_TRUE(a.time_us == b.time_us && a.type == b.type &&
                a.track == b.track && a.job == b.job &&
                a.machine == b.machine && a.seqnum == b.seqnum &&
                a.arg0 == b.arg0 && a.arg1 == b.arg1)
        << "threads=" << threads << ": trace streams diverge at event " << i;
  }
}

// Runs `make_and_run(options, trace)` at 1 thread (the reference), then at 2
// and 8, and asserts bitwise-identical outcomes at every thread count.
template <typename MakeAndRun>
void DiffThreadCounts(SimOptions options, MakeAndRun&& make_and_run) {
  options.intra_trial_threads = 1;
  TraceRecorder trace_seq;
  const SimFingerprint seq = make_and_run(options, trace_seq);
  for (uint32_t threads : {2u, 8u}) {
    options.intra_trial_threads = threads;
    TraceRecorder trace_par;
    const SimFingerprint par = make_and_run(options, trace_par);
    ExpectIdentical(par, seq, threads);
  }
}

SimOptions DiffRun(uint64_t seed, double hours = 2.0) {
  SimOptions o;
  o.horizon = Duration::FromHours(hours);
  o.seed = seed;
  // The production default (256) keeps typical transactions inline; lower it
  // so these workloads' multi-task commits actually take the parallel
  // pre-check branch at 2 and 8 threads.
  o.parallel_commit_min_claims = 8;
  return o;
}

TEST(IntraTrialDiffTest, MonolithicBitIdentical) {
  DiffThreadCounts(DiffRun(1), [](const SimOptions& o, TraceRecorder& t) {
    MonolithicSimulation sim(TestCluster(256), o, SchedulerConfig{});
    sim.SetTraceRecorder(&t);
    sim.Run();
    EXPECT_TRUE(sim.cell().CheckInvariants());
    return Fingerprint(sim, t);
  });
}

TEST(IntraTrialDiffTest, OmegaMultiSchedulerBitIdentical) {
  // Three schedulers commit against the shared cell: the parallel Commit
  // pre-check must accept/reject exactly the claims the sequential verdict
  // loop would, in the same order, or retries diverge immediately.
  DiffThreadCounts(DiffRun(2), [](const SimOptions& o, TraceRecorder& t) {
    OmegaSimulation sim(TestCluster(256), o, SchedulerConfig{},
                        SchedulerConfig{}, 3);
    sim.SetTraceRecorder(&t);
    sim.Run();
    EXPECT_TRUE(sim.cell().CheckInvariants());
    return Fingerprint(sim, t);
  });
}

TEST(IntraTrialDiffTest, OmegaGangSchedulingBitIdentical) {
  // All-or-nothing commits with coarse-grained detection: the highest
  // conflict pressure on the pre-check path.
  SchedulerConfig gang;
  gang.commit_mode = CommitMode::kAllOrNothing;
  gang.conflict_mode = ConflictMode::kCoarseGrained;
  DiffThreadCounts(DiffRun(3), [&gang](const SimOptions& o, TraceRecorder& t) {
    OmegaSimulation sim(TestCluster(256), o, gang, gang, 3);
    sim.SetTraceRecorder(&t);
    sim.Run();
    EXPECT_TRUE(sim.cell().CheckInvariants());
    return Fingerprint(sim, t);
  });
}

TEST(IntraTrialDiffTest, MesosFrameworksBitIdentical) {
  DiffThreadCounts(DiffRun(4), [](const SimOptions& o, TraceRecorder& t) {
    MesosSimulation sim(TestCluster(256), o, SchedulerConfig{},
                        SchedulerConfig{});
    sim.SetTraceRecorder(&t);
    sim.Run();
    EXPECT_TRUE(sim.cell().CheckInvariants());
    return Fingerprint(sim, t);
  });
}

TEST(IntraTrialDiffTest, MapReduceBitIdentical) {
  ClusterConfig cfg = TestCluster(256);
  cfg.mapreduce_fraction = 0.3;
  MapReducePolicyOptions policy;
  policy.policy = MapReducePolicy::kMaxParallelism;
  DiffThreadCounts(DiffRun(5), [&](const SimOptions& o, TraceRecorder& t) {
    MapReduceSimulation sim(cfg, o, SchedulerConfig{}, SchedulerConfig{},
                            policy);
    sim.SetTraceRecorder(&t);
    sim.Run();
    EXPECT_TRUE(sim.cell().CheckInvariants());
    return Fingerprint(sim, t);
  });
}

TEST(IntraTrialDiffTest, HifiReplayBitIdentical) {
  // The high-fidelity path exercises the ScoringPlacer: the sharded
  // candidate-sampling ArgBest and (on the non-index fallback) the sharded
  // first-fit scan must reproduce the sequential scores and tie-breaks.
  const ClusterConfig cfg = TestCluster(256);
  const std::vector<Job> trace_jobs =
      GenerateHifiTrace(cfg, Duration::FromHours(2), 6);
  DiffThreadCounts(DiffRun(6), [&](const SimOptions& o, TraceRecorder& t) {
    auto sim = MakeHifiSimulation(cfg, o, SchedulerConfig{}, SchedulerConfig{});
    sim->SetTraceRecorder(&t);
    sim->RunTrace(trace_jobs);
    EXPECT_TRUE(sim->cell().CheckInvariants());
    return Fingerprint(*sim, t);
  });
}

// ---------------------------------------------------------------------------
// A small fig5 grid re-run at 1 and 2 intra-trial threads: every reported
// figure metric must match bitwise (the same property the bench golden
// checks pin in CI at OMEGA_INTRA_TRIAL_THREADS=2).
// ---------------------------------------------------------------------------

TEST(IntraTrialDiffTest, Fig5SweepBitIdenticalAcrossThreadCounts) {
  const Duration horizon = Duration::FromDays(0.004);
  SimOptions seq;
  seq.intra_trial_threads = 1;
  SimOptions par;
  par.intra_trial_threads = 2;
  SweepRunner runner_seq("test_fig5_intra_seq", kFig56BaseSeed, 1);
  const auto a = RunFig56Sweep(horizon, runner_seq, /*tjob_points=*/3, seq);
  SweepRunner runner_par("test_fig5_intra_par", kFig56BaseSeed, 1);
  const auto b = RunFig56Sweep(horizon, runner_par, /*tjob_points=*/3, par);
  ASSERT_EQ(a.size(), 27u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arch, b[i].arch) << "trial " << i;
    EXPECT_EQ(a[i].cluster, b[i].cluster) << "trial " << i;
    EXPECT_TRUE(SameBits(a[i].t_job_secs, b[i].t_job_secs)) << "trial " << i;
    EXPECT_TRUE(SameBits(a[i].batch_wait, b[i].batch_wait)) << "trial " << i;
    EXPECT_TRUE(SameBits(a[i].service_wait, b[i].service_wait)) << "trial " << i;
    EXPECT_TRUE(SameBits(a[i].batch_busy, b[i].batch_busy)) << "trial " << i;
    EXPECT_TRUE(SameBits(a[i].batch_busy_mad, b[i].batch_busy_mad)) << "trial " << i;
    EXPECT_TRUE(SameBits(a[i].service_busy, b[i].service_busy)) << "trial " << i;
    EXPECT_TRUE(SameBits(a[i].service_busy_mad, b[i].service_busy_mad)) << "trial " << i;
    EXPECT_EQ(a[i].abandoned, b[i].abandoned) << "trial " << i;
  }
}

}  // namespace
}  // namespace omega
