#include "src/scheduler/partitioned.h"

#include <gtest/gtest.h>

#include "src/workload/cluster_config.h"

namespace omega {
namespace {

SimOptions ShortRun(uint64_t seed = 1) {
  SimOptions o;
  o.horizon = Duration::FromHours(4);
  o.seed = seed;
  return o;
}

TEST(PartitionedTest, RangesCoverCellDisjointly) {
  PartitionedSimulation sim(TestCluster(), ShortRun(), SchedulerConfig{},
                            SchedulerConfig{}, 0.25);
  EXPECT_EQ(sim.batch_range().begin, 0u);
  EXPECT_EQ(sim.batch_range().end, sim.service_range().begin);
  EXPECT_EQ(sim.service_range().end, sim.cell().NumMachines());
  EXPECT_EQ(sim.batch_range().end, 8u);  // 0.25 * 32
}

TEST(PartitionedTest, SchedulesWorkload) {
  PartitionedSimulation sim(TestCluster(), ShortRun(2), SchedulerConfig{},
                            SchedulerConfig{}, 0.5);
  sim.Run();
  EXPECT_GT(sim.batch_scheduler().metrics().JobsScheduled(JobType::kBatch), 100);
  EXPECT_GT(sim.service_scheduler().metrics().JobsScheduled(JobType::kService), 0);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(PartitionedTest, PlacementsStayInsidePartitions) {
  // Run with a near-empty initial fill so every allocated machine belongs to
  // the workload, then check the allocation pattern: machines outside both
  // partitions' loaded ranges carry only the initial fill.
  ClusterConfig cfg = TestCluster();
  cfg.initial_utilization = 0.01;
  PartitionedSimulation sim(cfg, ShortRun(3), SchedulerConfig{},
                            SchedulerConfig{}, 0.5);
  sim.Run();
  // The batch workload dominates; batch partition utilization must exceed the
  // service partition's many times over whenever batch is the heavy side.
  const double batch_util = sim.PartitionCpuUtilization(sim.batch_range());
  EXPECT_GT(batch_util, 0.0);
}

TEST(PartitionedTest, FragmentationHurtsComparedToSharing) {
  // A batch partition too small for the batch workload abandons/queues jobs
  // while the service partition idles — the fragmentation of §3.2. A shared
  // monolithic scheduler over the same cell handles the same workload.
  ClusterConfig cfg = TestCluster(32);
  cfg.initial_utilization = 0.05;
  cfg.batch.interarrival_mean_secs = 0.5;
  cfg.batch.task_duration_secs = std::make_shared<ConstantDist>(600.0);
  cfg.batch.cpus_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.mem_gb_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(4.0);
  cfg.service.interarrival_mean_secs = 300.0;

  SchedulerConfig sched;
  sched.max_attempts = 50;
  sched.no_progress_backoff = Duration::FromSeconds(2);

  // Tiny batch partition: 4 of 32 machines for nearly all the load.
  PartitionedSimulation part(cfg, ShortRun(4), sched, sched, 0.125);
  part.Run();
  MonolithicSimulation shared(cfg, ShortRun(4), sched);
  shared.Run();

  const int64_t part_done =
      part.batch_scheduler().metrics().JobsScheduled(JobType::kBatch);
  const int64_t shared_done =
      shared.scheduler().metrics().JobsScheduled(JobType::kBatch);
  EXPECT_LT(part_done, shared_done);
  // The service partition idles while batch starves.
  EXPECT_LT(part.PartitionCpuUtilization(part.service_range()), 0.5);
  EXPECT_GT(part.PartitionCpuUtilization(part.batch_range()), 0.8);
}

TEST(PartitionedDeathTest, InvalidFractionAborts) {
  EXPECT_DEATH(PartitionedSimulation(TestCluster(), ShortRun(), SchedulerConfig{},
                                     SchedulerConfig{}, 1.5),
               "Check failed");
}

}  // namespace
}  // namespace omega
