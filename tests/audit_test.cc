#include "src/omega/audit.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/omega/omega_scheduler.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

SimOptions ShortRun(uint64_t seed = 1) {
  SimOptions o;
  o.horizon = Duration::FromHours(4);
  o.seed = seed;
  return o;
}

std::vector<const QueueScheduler*> AllSchedulers(OmegaSimulation& sim) {
  std::vector<const QueueScheduler*> out;
  for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
    out.push_back(&sim.batch_scheduler(i));
  }
  out.push_back(&sim.service_scheduler());
  return out;
}

TEST(AuditTest, HealthySystemIsCompliant) {
  OmegaSimulation sim(TestCluster(), ShortRun(), SchedulerConfig{},
                      SchedulerConfig{}, 2);
  sim.Run();
  const AuditReport report = AuditSchedulers(AllSchedulers(sim), sim.EndTime());
  EXPECT_TRUE(report.Compliant());
  ASSERT_EQ(report.entries.size(), 3u);
  for (const SchedulerAuditEntry& e : report.entries) {
    EXPECT_GT(e.jobs_scheduled, 0);
    EXPECT_TRUE(e.findings.empty());
  }
}

TEST(AuditTest, SaturatedSchedulerViolatesSlo) {
  ClusterConfig cfg = TestCluster();
  cfg.batch.interarrival_mean_secs = 0.2;
  SchedulerConfig slow;
  slow.batch_times.t_job = Duration::FromSeconds(2.0);  // overload
  OmegaSimulation sim(cfg, ShortRun(2), slow, SchedulerConfig{});
  sim.Run();
  const SchedulerAuditEntry entry =
      AuditScheduler(sim.batch_scheduler(0), sim.EndTime());
  EXPECT_FALSE(entry.findings.empty());
  EXPECT_NE(entry.findings[0].find("SLO"), std::string::npos);
}

TEST(AuditTest, AbandonmentFlagged) {
  ClusterConfig cfg = TestCluster(2);
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(200.0);  // > cell
  cfg.batch.cpus_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.mem_gb_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.interarrival_mean_secs = 60.0;
  SchedulerConfig sched;
  sched.max_attempts = 3;
  sched.no_progress_backoff = Duration::FromSeconds(1);
  OmegaSimulation sim(cfg, ShortRun(3), sched, SchedulerConfig{});
  sim.Run();
  const SchedulerAuditEntry entry =
      AuditScheduler(sim.batch_scheduler(0), sim.EndTime());
  bool flagged = false;
  for (const std::string& f : entry.findings) {
    if (f.find("abandonment") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(AuditTest, ReportPrints) {
  OmegaSimulation sim(TestCluster(), ShortRun(4), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();
  const AuditReport report = AuditSchedulers(AllSchedulers(sim), sim.EndTime());
  std::ostringstream os;
  report.Print(os);
  EXPECT_NE(os.str().find("post-facto policy audit"), std::string::npos);
  EXPECT_NE(os.str().find("COMPLIANT"), std::string::npos);
}

TEST(AuditTest, CustomPolicyThresholds) {
  OmegaSimulation sim(TestCluster(), ShortRun(5), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();
  AuditPolicy strict;
  strict.wait_slo_secs = 0.0;  // impossible SLO: everything violates
  const AuditReport report =
      AuditSchedulers(AllSchedulers(sim), sim.EndTime(), strict);
  EXPECT_FALSE(report.Compliant());
}

}  // namespace
}  // namespace omega
