#include "src/mapreduce/mr_scheduler.h"

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/mapreduce/perf_model.h"
#include "src/mapreduce/policy.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

MapReduceSpec SimpleSpec() {
  MapReduceSpec spec;
  spec.num_map_activities = 1000;
  spec.num_reduce_activities = 300;
  spec.map_activity_duration = Duration::FromSeconds(60);
  spec.reduce_activity_duration = Duration::FromSeconds(120);
  spec.requested_workers = 10;
  return spec;
}

TEST(PerfModelTest, WaveArithmetic) {
  const MapReduceSpec spec = SimpleSpec();
  // 10 workers: 100 map waves * 60s + 30 reduce waves * 120s.
  EXPECT_EQ(PredictCompletionTime(spec, 10),
            Duration::FromSeconds(100 * 60 + 30 * 120));
  // 1000 workers: 1 map wave + 1 reduce wave.
  EXPECT_EQ(PredictCompletionTime(spec, 1000), Duration::FromSeconds(60 + 120));
}

TEST(PerfModelTest, MonotoneNonIncreasingInWorkers) {
  const MapReduceSpec spec = SimpleSpec();
  Duration prev = PredictCompletionTime(spec, 1);
  for (int64_t w = 2; w <= 1200; w += 7) {
    const Duration t = PredictCompletionTime(spec, w);
    EXPECT_LE(t, prev) << "w=" << w;
    prev = t;
  }
}

TEST(PerfModelTest, NoBenefitBeyondMaxActivities) {
  const MapReduceSpec spec = SimpleSpec();
  EXPECT_EQ(MaxBeneficialWorkers(spec), 1000);
  EXPECT_EQ(PredictCompletionTime(spec, 1000), PredictCompletionTime(spec, 5000));
}

TEST(PerfModelTest, SpeedupRelativeToRequested) {
  const MapReduceSpec spec = SimpleSpec();
  EXPECT_DOUBLE_EQ(PredictSpeedup(spec, spec.requested_workers), 1.0);
  EXPECT_GT(PredictSpeedup(spec, 100), 1.0);
  // Idealized linear speedup: 10x workers -> ~10x faster (§6.1).
  EXPECT_NEAR(PredictSpeedup(spec, 100), 10.0, 1.0);
}

TEST(PerfModelTest, ZeroReducePhase) {
  MapReduceSpec spec = SimpleSpec();
  spec.num_reduce_activities = 0;
  EXPECT_EQ(PredictCompletionTime(spec, 10), Duration::FromSeconds(100 * 60));
}

Job MakeMrJob(const MapReduceSpec& spec) {
  Job j;
  j.id = 1;
  j.type = JobType::kBatch;
  j.num_tasks = static_cast<uint32_t>(spec.requested_workers);
  j.task_resources = Resources{1.0, 2.0};
  j.mapreduce = spec;
  return j;
}

TEST(PolicyTest, NoneReturnsRequested) {
  CellState cell(100, Resources{4.0, 16.0});
  MapReducePolicyOptions opts;
  opts.policy = MapReducePolicy::kNone;
  EXPECT_EQ(ChooseWorkers(opts, MakeMrJob(SimpleSpec()), cell), 10);
}

TEST(PolicyTest, MaxParallelismUsesIdleResources) {
  CellState cell(100, Resources{4.0, 16.0});  // 400 idle cpus
  MapReducePolicyOptions opts;
  opts.policy = MapReducePolicy::kMaxParallelism;
  const int64_t w = ChooseWorkers(opts, MakeMrJob(SimpleSpec()), cell);
  EXPECT_GT(w, 10);
  // Bounded by idle capacity (400 workers of 1 cpu + the requested 10).
  EXPECT_LE(w, 410);
}

TEST(PolicyTest, MaxParallelismNeverExceedsBenefit) {
  CellState cell(5000, Resources{4.0, 16.0});  // effectively unlimited
  MapReducePolicyOptions opts;
  opts.policy = MapReducePolicy::kMaxParallelism;
  const int64_t w = ChooseWorkers(opts, MakeMrJob(SimpleSpec()), cell);
  EXPECT_LE(w, MaxBeneficialWorkers(SimpleSpec()));
  // And the chosen allocation achieves the best possible finish time.
  EXPECT_EQ(PredictCompletionTime(SimpleSpec(), w),
            PredictCompletionTime(SimpleSpec(), MaxBeneficialWorkers(SimpleSpec())));
}

TEST(PolicyTest, RelativeJobSizeCapsAtFourX) {
  CellState cell(5000, Resources{4.0, 16.0});
  MapReducePolicyOptions opts;
  opts.policy = MapReducePolicy::kRelativeJobSize;
  const int64_t w = ChooseWorkers(opts, MakeMrJob(SimpleSpec()), cell);
  EXPECT_GT(w, 10);
  EXPECT_LE(w, 40);
}

TEST(PolicyTest, GlobalCapStopsAboveThreshold) {
  CellState cell(100, Resources{4.0, 16.0});
  // Push utilization above 60%.
  for (MachineId m = 0; m < 100; ++m) {
    cell.Allocate(m, Resources{3.0, 4.0});
  }
  MapReducePolicyOptions opts;
  opts.policy = MapReducePolicy::kGlobalCap;
  EXPECT_EQ(ChooseWorkers(opts, MakeMrJob(SimpleSpec()), cell), 10);
}

TEST(PolicyTest, GlobalCapGrowsOnlyToThreshold) {
  CellState cell(100, Resources{4.0, 16.0});  // empty: utilization 0
  MapReducePolicyOptions opts;
  opts.policy = MapReducePolicy::kGlobalCap;
  const int64_t w = ChooseWorkers(opts, MakeMrJob(SimpleSpec()), cell);
  EXPECT_GT(w, 10);
  // 60% of 400 cpus = 240 one-cpu workers at most (plus the requested 10).
  EXPECT_LE(w, 250);
}

TEST(PolicyTest, NeverBelowRequested) {
  CellState cell(1, Resources{4.0, 16.0});  // nearly no idle resources
  cell.Allocate(0, Resources{4.0, 16.0});
  for (MapReducePolicy p :
       {MapReducePolicy::kMaxParallelism, MapReducePolicy::kGlobalCap,
        MapReducePolicy::kRelativeJobSize}) {
    MapReducePolicyOptions opts;
    opts.policy = p;
    EXPECT_EQ(ChooseWorkers(opts, MakeMrJob(SimpleSpec()), cell), 10)
        << MapReducePolicyName(p);
  }
}

TEST(PolicyTest, PrefersFewestWorkersAchievingBestTime) {
  // 100 map activities, no reduces: 100 workers reach 1 wave; more adds
  // nothing, so the chooser must return exactly 100.
  MapReduceSpec spec;
  spec.num_map_activities = 100;
  spec.num_reduce_activities = 0;
  spec.map_activity_duration = Duration::FromSeconds(60);
  spec.requested_workers = 10;
  CellState cell(1000, Resources{4.0, 16.0});
  MapReducePolicyOptions opts;
  opts.policy = MapReducePolicy::kMaxParallelism;
  EXPECT_EQ(ChooseWorkers(opts, MakeMrJob(spec), cell), 100);
}

SimOptions ShortRun(uint64_t seed = 1) {
  SimOptions o;
  o.horizon = Duration::FromHours(6);
  o.seed = seed;
  return o;
}

MapReducePolicyOptions Policy(MapReducePolicy p) {
  MapReducePolicyOptions o;
  o.policy = p;
  return o;
}

TEST(MapReduceSimulationTest, OutcomesRecordedWithSpeedups) {
  ClusterConfig cfg = TestCluster(64);
  cfg.mapreduce_fraction = 0.3;
  MapReduceSimulation sim(cfg, ShortRun(), SchedulerConfig{}, SchedulerConfig{},
                          Policy(MapReducePolicy::kMaxParallelism));
  sim.Run();
  const auto& outcomes = sim.mr_scheduler().outcomes();
  ASSERT_GT(outcomes.size(), 5u);
  int sped_up = 0;
  for (const MapReduceOutcome& o : outcomes) {
    EXPECT_GE(o.predicted_speedup, 0.0);
    EXPECT_GE(o.granted_workers, 0);
    if (o.predicted_speedup > 1.01) {
      ++sped_up;
    }
  }
  // Opportunistic resources speed up a solid share of MR jobs (§6.2).
  EXPECT_GT(sped_up, 0);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(MapReduceSimulationTest, BaselinePolicyGivesNoSpeedup) {
  ClusterConfig cfg = TestCluster(64);
  cfg.mapreduce_fraction = 0.3;
  MapReduceSimulation sim(cfg, ShortRun(2), SchedulerConfig{}, SchedulerConfig{},
                          Policy(MapReducePolicy::kNone));
  sim.Run();
  for (const MapReduceOutcome& o : sim.mr_scheduler().outcomes()) {
    EXPECT_LE(o.predicted_speedup, 1.0 + 1e-9);
  }
}

TEST(MapReduceSimulationTest, MaxParallelismBeatsRelativeJobSize) {
  // On a lightly loaded cluster, max-parallelism's speedup tail dominates the
  // 4x-capped policy's (Fig. 15 ordering). Identical workloads, but placement
  // dynamics diverge after the first decision, so compare upper quantiles
  // rather than demanding per-job dominance.
  ClusterConfig cfg = TestCluster(128);
  cfg.initial_utilization = 0.2;
  cfg.mapreduce_fraction = 0.3;
  auto speedup_quantile = [&](MapReducePolicy p, uint64_t seed, double q) {
    MapReduceSimulation sim(cfg, ShortRun(seed), SchedulerConfig{},
                            SchedulerConfig{}, Policy(p));
    sim.Run();
    std::vector<double> speedups;
    for (const auto& o : sim.mr_scheduler().outcomes()) {
      speedups.push_back(o.predicted_speedup);
    }
    return Percentile(speedups, q);
  };
  const double max_par =
      speedup_quantile(MapReducePolicy::kMaxParallelism, 3, 0.9);
  const double rel_size =
      speedup_quantile(MapReducePolicy::kRelativeJobSize, 3, 0.9);
  // The 4x cap binds in the tail; max-parallelism can exceed it.
  EXPECT_GE(max_par, rel_size * 0.9);
  EXPECT_LE(rel_size, 4.0 + 1e-9);
  EXPECT_GT(max_par, 1.0);
}

}  // namespace
}  // namespace omega
