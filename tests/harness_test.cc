// Tests of the ClusterSimulation harness itself: arrival streams, initial
// fill, trace replay, utilization sampling, task lifecycle hooks — plus a
// cross-architecture accounting property test over random configurations.
#include <gtest/gtest.h>

#include "src/mesos/mesos_simulation.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/monolithic.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

class RecordingSimulation : public ClusterSimulation {
 public:
  RecordingSimulation(const ClusterConfig& config, const SimOptions& options)
      : ClusterSimulation(config, options) {}

  void SubmitJob(const JobPtr& job) override { submitted.push_back(job); }

  std::vector<JobPtr> submitted;
};

SimOptions Opts(double hours, uint64_t seed) {
  SimOptions o;
  o.horizon = Duration::FromHours(hours);
  o.seed = seed;
  return o;
}

TEST(HarnessTest, InitialFillNearTarget) {
  ClusterConfig cfg = TestCluster(64);
  cfg.initial_utilization = 0.5;
  RecordingSimulation sim(cfg, Opts(0.001, 1));
  sim.Run();
  // Utilization right after start (almost nothing has churned yet).
  EXPECT_NEAR(sim.cell().CpuUtilization(), 0.5, 0.12);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(HarnessTest, ArrivalRateMatchesConfig) {
  ClusterConfig cfg = TestCluster();
  RecordingSimulation sim(cfg, Opts(24, 2));
  sim.Run();
  const double expected_batch = 24.0 * 3600.0 / cfg.batch.interarrival_mean_secs;
  EXPECT_NEAR(static_cast<double>(sim.JobsSubmitted(JobType::kBatch)),
              expected_batch, expected_batch * 0.1);
  EXPECT_EQ(sim.JobsSubmittedTotal(),
            static_cast<int64_t>(sim.submitted.size()));
}

TEST(HarnessTest, RateMultipliersScaleArrivals) {
  ClusterConfig cfg = TestCluster();
  SimOptions opts = Opts(12, 3);
  opts.batch_rate_multiplier = 3.0;
  opts.service_rate_multiplier = 0.0;  // suppress service entirely
  RecordingSimulation sim(cfg, opts);
  sim.Run();
  EXPECT_EQ(sim.JobsSubmitted(JobType::kService), 0);
  const double expected =
      3.0 * 12.0 * 3600.0 / cfg.batch.interarrival_mean_secs;
  EXPECT_NEAR(static_cast<double>(sim.JobsSubmitted(JobType::kBatch)), expected,
              expected * 0.15);
}

TEST(HarnessTest, TraceReplaySubmitsExactly) {
  ClusterConfig cfg = TestCluster();
  RecordingSimulation sim(cfg, Opts(2, 4));
  std::vector<Job> trace;
  for (int i = 0; i < 10; ++i) {
    Job j;
    j.id = static_cast<JobId>(i + 1);
    j.type = i % 3 == 0 ? JobType::kService : JobType::kBatch;
    j.submit_time = SimTime::FromSeconds(60.0 * i);
    j.num_tasks = 2;
    j.task_duration = Duration::FromSeconds(30);
    j.task_resources = Resources{0.5, 1.0};
    trace.push_back(j);
  }
  sim.RunTrace(trace);
  ASSERT_EQ(sim.submitted.size(), 10u);
  for (size_t i = 1; i < sim.submitted.size(); ++i) {
    EXPECT_LT(sim.submitted[i - 1]->submit_time, sim.submitted[i]->submit_time);
  }
}

TEST(HarnessTest, TraceJobsBeyondHorizonDropped) {
  RecordingSimulation sim(TestCluster(), Opts(1, 5));
  Job early;
  early.id = 1;
  early.submit_time = SimTime::FromMinutes(30);
  early.num_tasks = 1;
  Job late;
  late.id = 2;
  late.submit_time = SimTime::FromHours(5);  // beyond the 1 h horizon
  late.num_tasks = 1;
  sim.RunTrace({early, late});
  EXPECT_EQ(sim.submitted.size(), 1u);
}

TEST(HarnessTest, UtilizationSamplingInterval) {
  SimOptions opts = Opts(2, 6);
  opts.utilization_sample_interval = Duration::FromMinutes(10);
  RecordingSimulation sim(TestCluster(), opts);
  sim.Run();
  // Samples at t=0,10,...,120 minutes inclusive.
  EXPECT_EQ(sim.utilization_series().size(), 13u);
  EXPECT_DOUBLE_EQ(sim.utilization_series().front().time_hours, 0.0);
}

TEST(HarnessTest, RegistryTracksRunningTasks) {
  SimOptions opts = Opts(0.001, 7);
  opts.track_running_tasks = true;
  RecordingSimulation sim(TestCluster(64), opts);
  sim.Run();
  // Every initial-fill task is registered until it ends.
  EXPECT_GT(sim.task_registry().NumRunning(), 0u);
}

// Accounting identity across architectures and seeds: every submitted job is
// scheduled, abandoned, queued, or in flight — never lost.
class AccountingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AccountingPropertyTest, OmegaJobsNeverLost) {
  const uint64_t seed = GetParam();
  ClusterConfig cfg = TestCluster(16 + seed % 3 * 16);
  SchedulerConfig sched;
  sched.batch_times.t_job = Duration::FromSeconds(0.1 + 0.4 * (seed % 5));
  OmegaSimulation sim(cfg, Opts(3, seed), sched, sched, 1 + seed % 4);
  sim.Run();
  int64_t accounted = sim.TotalJobsAbandoned();
  accounted += sim.service_scheduler().metrics().JobsScheduled(JobType::kService);
  accounted += static_cast<int64_t>(sim.service_scheduler().QueueDepth());
  accounted += sim.service_scheduler().busy() ? 1 : 0;
  for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
    accounted += sim.batch_scheduler(i).metrics().JobsScheduled(JobType::kBatch);
    accounted += static_cast<int64_t>(sim.batch_scheduler(i).QueueDepth());
    accounted += sim.batch_scheduler(i).busy() ? 1 : 0;
  }
  EXPECT_EQ(accounted, sim.JobsSubmittedTotal());
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST_P(AccountingPropertyTest, MesosJobsNeverLost) {
  const uint64_t seed = GetParam();
  ClusterConfig cfg = TestCluster(32);
  SchedulerConfig sched;
  sched.max_attempts = 100;
  MesosSimulation sim(cfg, Opts(3, seed), sched, sched);
  sim.Run();
  int64_t accounted = sim.TotalJobsAbandoned();
  for (MesosFramework* fw : {&sim.batch_framework(), &sim.service_framework()}) {
    accounted += fw->metrics().JobsScheduled(JobType::kBatch);
    accounted += fw->metrics().JobsScheduled(JobType::kService);
    accounted += static_cast<int64_t>(fw->QueueDepth());
    accounted += fw->busy() ? 1 : 0;
  }
  EXPECT_EQ(accounted, sim.JobsSubmittedTotal());
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace omega
