// Unit tests of the shared queue-scheduler state machine: retry policy
// (conflict -> immediate head retry; no progress -> requeue at back with
// backoff), attempt accounting, admission limits, wait-time semantics.
#include "src/scheduler/queue_scheduler.h"

#include <gtest/gtest.h>

#include "src/workload/cluster_config.h"

namespace omega {
namespace {

// Minimal concrete harness: no arrivals, no fill; tests drive it manually.
class TestHarness : public ClusterSimulation {
 public:
  explicit TestHarness(uint64_t seed = 1)
      : ClusterSimulation(TestCluster(4), MakeOptions(seed)) {}

  void SubmitJob(const JobPtr& job) override { last_submitted = job; }

  JobPtr last_submitted;

 private:
  static SimOptions MakeOptions(uint64_t seed) {
    SimOptions o;
    o.horizon = Duration::FromHours(10);
    o.seed = seed;
    return o;
  }
};

// A scheduler whose attempts are scripted: each BeginAttempt consumes the
// next (tasks_placed, had_conflict) outcome after a fixed decision time.
class ScriptedScheduler : public QueueScheduler {
 public:
  struct Outcome {
    uint32_t tasks_placed = 0;
    bool had_conflict = false;
  };

  ScriptedScheduler(ClusterSimulation& harness, SchedulerConfig config)
      : QueueScheduler(harness, std::move(config)) {}

  std::vector<Outcome> script;
  std::vector<SimTime> attempt_times;

 protected:
  void BeginAttempt(const JobPtr& job) override {
    attempt_times.push_back(harness_.sim().Now());
    const Duration d = AccountAttemptStart(job, job->TasksRemaining());
    const size_t idx = attempt_times.size() - 1;
    const Outcome outcome =
        idx < script.size() ? script[idx] : Outcome{job->TasksRemaining(), false};
    harness_.sim().ScheduleAfter(d, [this, job, outcome] {
      CompleteAttempt(job, outcome.tasks_placed, outcome.had_conflict);
    });
  }
};

JobPtr MakeJob(uint32_t tasks, SimTime submit = SimTime::Zero()) {
  auto job = std::make_shared<Job>();
  job->id = 1;
  job->type = JobType::kBatch;
  job->submit_time = submit;
  job->num_tasks = tasks;
  job->task_resources = Resources{0.1, 0.1};
  job->task_duration = Duration::FromSeconds(10);
  return job;
}

SchedulerConfig FastConfig() {
  SchedulerConfig c;
  c.batch_times.t_job = Duration::FromSeconds(1.0);
  c.batch_times.t_task = Duration::Zero();
  c.no_progress_backoff = Duration::FromSeconds(30.0);
  return c;
}

TEST(QueueSchedulerTest, SingleAttemptSuccess) {
  TestHarness harness;
  ScriptedScheduler sched(harness, FastConfig());
  auto job = MakeJob(5);
  sched.Submit(job);
  harness.sim().Run();
  EXPECT_TRUE(job->FullyScheduled());
  EXPECT_EQ(job->scheduling_attempts, 1u);
  EXPECT_EQ(sched.metrics().JobsScheduled(JobType::kBatch), 1);
  EXPECT_EQ(sched.metrics().TotalAttempts(), 1);
}

TEST(QueueSchedulerTest, ConflictRetriesImmediately) {
  TestHarness harness;
  ScriptedScheduler sched(harness, FastConfig());
  sched.script = {{2, true}, {3, false}};
  auto job = MakeJob(5);
  sched.Submit(job);
  harness.sim().Run();
  EXPECT_TRUE(job->FullyScheduled());
  EXPECT_EQ(job->scheduling_attempts, 2u);
  EXPECT_EQ(job->conflicted_attempts, 1u);
  // Retry began immediately when the first attempt's decision time elapsed.
  ASSERT_EQ(sched.attempt_times.size(), 2u);
  EXPECT_EQ(sched.attempt_times[1], SimTime::FromSeconds(1.0));
}

TEST(QueueSchedulerTest, NoProgressBacksOffWhenQueueEmpty) {
  TestHarness harness;
  ScriptedScheduler sched(harness, FastConfig());
  sched.script = {{0, false}, {5, false}};
  auto job = MakeJob(5);
  sched.Submit(job);
  harness.sim().Run();
  EXPECT_TRUE(job->FullyScheduled());
  ASSERT_EQ(sched.attempt_times.size(), 2u);
  // Second attempt only after the 30 s backoff (1 s decision + 30 s).
  EXPECT_EQ(sched.attempt_times[1], SimTime::FromSeconds(31.0));
}

TEST(QueueSchedulerTest, NoProgressYieldsToOtherJobs) {
  TestHarness harness;
  ScriptedScheduler sched(harness, FastConfig());
  // Job A makes no progress; job B (submitted meanwhile) must run next.
  sched.script = {{0, false}, {3, false}, {5, false}};
  auto job_a = MakeJob(5);
  auto job_b = MakeJob(3);
  job_b->id = 2;
  sched.Submit(job_a);
  sched.Submit(job_b);
  harness.sim().Run();
  EXPECT_TRUE(job_a->FullyScheduled());
  EXPECT_TRUE(job_b->FullyScheduled());
  // B's completion (attempt 2 of the script) happened before A's retry.
  EXPECT_EQ(sched.metrics().JobsScheduled(JobType::kBatch), 2);
  ASSERT_EQ(sched.attempt_times.size(), 3u);
  EXPECT_EQ(sched.attempt_times[1], SimTime::FromSeconds(1.0));  // B immediately
}

TEST(QueueSchedulerTest, PartialProgressRetriesAtHead) {
  TestHarness harness;
  ScriptedScheduler sched(harness, FastConfig());
  sched.script = {{3, false}, {2, false}};
  auto job = MakeJob(5);
  sched.Submit(job);
  harness.sim().Run();
  EXPECT_TRUE(job->FullyScheduled());
  EXPECT_EQ(job->scheduling_attempts, 2u);
  EXPECT_EQ(job->conflicted_attempts, 0u);
  ASSERT_EQ(sched.attempt_times.size(), 2u);
  EXPECT_EQ(sched.attempt_times[1], SimTime::FromSeconds(1.0));
}

TEST(QueueSchedulerTest, AbandonedAtMaxAttempts) {
  TestHarness harness;
  SchedulerConfig config = FastConfig();
  config.max_attempts = 3;
  ScriptedScheduler sched(harness, config);
  sched.script = {{1, true}, {1, true}, {1, true}, {1, true}};
  auto job = MakeJob(10);
  sched.Submit(job);
  harness.sim().Run();
  EXPECT_TRUE(job->abandoned);
  EXPECT_EQ(job->scheduling_attempts, 3u);
  EXPECT_EQ(sched.metrics().JobsAbandonedTotal(), 1);
  EXPECT_EQ(sched.metrics().JobsScheduled(JobType::kBatch), 0);
}

TEST(QueueSchedulerTest, WaitTimeMeasuredToFirstAttemptOnly) {
  TestHarness harness;
  ScriptedScheduler sched(harness, FastConfig());
  sched.script = {{1, true}, {4, false}};
  // Submit at t=0 via an event at t=5s to create queueing delay.
  auto job = MakeJob(5, SimTime::Zero());
  harness.sim().ScheduleAt(SimTime::FromSeconds(5), [&] { sched.Submit(job); });
  harness.sim().Run();
  // Wait = 5 s (submission to first attempt), regardless of the retry.
  EXPECT_DOUBLE_EQ(sched.metrics().MeanWait(JobType::kBatch), 5.0);
  EXPECT_EQ(sched.metrics().JobsWaited(JobType::kBatch), 1);
}

TEST(QueueSchedulerTest, AdmissionLimitAbandonsOverflow) {
  TestHarness harness;
  SchedulerConfig config = FastConfig();
  config.admission_limit = 1;
  // Long decision keeps the first job in flight while others arrive.
  config.batch_times.t_job = Duration::FromSeconds(100.0);
  ScriptedScheduler sched(harness, config);
  for (int i = 0; i < 4; ++i) {
    auto job = MakeJob(1);
    job->id = static_cast<JobId>(i + 1);
    sched.Submit(job);
  }
  harness.sim().Run();
  // One in flight, one queued; two rejected.
  EXPECT_EQ(sched.metrics().JobsAbandonedTotal(), 2);
}

TEST(QueueSchedulerTest, BusynessAccountsDecisionTime) {
  TestHarness harness;
  ScriptedScheduler sched(harness, FastConfig());
  auto job = MakeJob(5);
  sched.Submit(job);
  harness.sim().RunUntil(SimTime::FromSeconds(100));
  // 1 s of decision time in 100 s simulated.
  EXPECT_NEAR(sched.metrics().Busyness(SimTime::FromSeconds(100)).median, 0.01,
              1e-9);
}

}  // namespace
}  // namespace omega
