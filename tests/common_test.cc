// Tests for the remaining common utilities: SimTime/Duration arithmetic,
// ParallelFor, JSON emission, and logging levels.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/parallel_for.h"
#include "src/common/sim_time.h"

namespace omega {
namespace {

TEST(SimTimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(SimTime::FromSeconds(1.5).micros(), 1500000);
  EXPECT_EQ(SimTime::FromMillis(2.0).micros(), 2000);
  EXPECT_EQ(SimTime::FromMinutes(1.0), SimTime::FromSeconds(60.0));
  EXPECT_EQ(SimTime::FromHours(1.0), SimTime::FromSeconds(3600.0));
  EXPECT_EQ(SimTime::FromDays(1.0), SimTime::FromHours(24.0));
  EXPECT_DOUBLE_EQ(SimTime::FromSeconds(90.0).ToSeconds(), 90.0);
  EXPECT_DOUBLE_EQ(SimTime::FromHours(36.0).ToDays(), 1.5);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime t = SimTime::FromSeconds(100);
  const Duration d = Duration::FromSeconds(40);
  EXPECT_EQ(t + d, SimTime::FromSeconds(140));
  EXPECT_EQ(t - d, SimTime::FromSeconds(60));
  EXPECT_EQ((t + d) - t, d);
  EXPECT_EQ(d + d, Duration::FromSeconds(80));
  EXPECT_EQ(d - Duration::FromSeconds(10), Duration::FromSeconds(30));
  EXPECT_EQ(d * 2.5, Duration::FromSeconds(100));
  EXPECT_EQ(2.5 * d, Duration::FromSeconds(100));
  EXPECT_DOUBLE_EQ(Duration::FromSeconds(80) / d, 2.0);
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::FromSeconds(1), SimTime::FromSeconds(2));
  EXPECT_EQ(SimTime::Zero(), SimTime(0));
  EXPECT_GT(SimTime::Max(), SimTime::FromDays(100000));
  EXPECT_LE(Duration::Zero(), Duration::FromMillis(1));
}

TEST(SimTimeTest, Streaming) {
  std::ostringstream os;
  os << SimTime::FromSeconds(2.5) << " " << Duration::FromSeconds(0.5);
  EXPECT_EQ(os.str(), "2.5s 0.5s");
}

TEST(ParallelForTest, CoversAllIndicesOnce) {
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); }, 8);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> sum{0};
  ParallelFor(3, [&](size_t i) { sum.fetch_add(static_cast<int>(i) + 1); }, 64);
  EXPECT_EQ(sum.load(), 6);
}

// Regression: an exception thrown inside fn used to escape the worker thread
// and call std::terminate. It must surface on the joining thread instead.
TEST(ParallelForTest, ExceptionRethrownOnCallingThread) {
  EXPECT_THROW(
      ParallelFor(
          100,
          [](size_t i) {
            if (i == 17) {
              throw std::runtime_error("trial 17 failed");
            }
          },
          4),
      std::runtime_error);
}

TEST(ParallelForTest, ExceptionStopsSchedulingNewIterations) {
  std::atomic<int> started{0};
  try {
    ParallelFor(
        1000000,
        [&](size_t) {
          started.fetch_add(1);
          throw std::runtime_error("boom");
        },
        4);
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error&) {
  }
  // At most one in-flight iteration per worker after the first throw.
  EXPECT_LE(started.load(), 8);
}

TEST(ParallelForTest, ExceptionPropagatesFromSingleThreadPath) {
  EXPECT_THROW(
      ParallelFor(
          5, [](size_t) { throw std::logic_error("serial"); }, 1),
      std::logic_error);
}

TEST(ParallelForTest, ExceptionPreservesMessage) {
  try {
    ParallelFor(
        8, [](size_t) { throw std::runtime_error("exact message"); }, 4);
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "exact message");
  }
}

std::string RenderNumber(double v) {
  std::ostringstream os;
  json::AppendNumber(os, v);
  return os.str();
}

TEST(JsonTest, AppendNumberRoundTripsFiniteValues) {
  const double values[] = {0.0,
                           1.0,
                           -2.5,
                           0.1,
                           1.0 / 3.0,
                           9.531760859161224e-05,
                           1e300,
                           -1e-300,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::lowest()};
  for (const double v : values) {
    const std::string s = RenderNumber(v);
    const double parsed = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(parsed, v) << "rendered as " << s;
  }
}

TEST(JsonTest, AppendNumberEmitsNullForNonFiniteValues) {
  // JSON has no NaN/Infinity; an empty-Cdf percentile or a zero-duration
  // rate must not poison the whole document.
  EXPECT_EQ(RenderNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(RenderNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(RenderNumber(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonTest, AppendNumberIgnoresStreamFormatState) {
  // A caller that left hexfloat/fixed/precision set on the stream must not
  // change what lands in the document.
  std::ostringstream os;
  os << std::hexfloat << std::setprecision(2);
  json::AppendNumber(os, 0.1);
  os << ' ';
  os.setf(std::ios::fixed, std::ios::floatfield);
  json::AppendNumber(os, 1e-7);
  EXPECT_EQ(os.str(), "0.1 1e-07");
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(OMEGA_LOG_IS_ON(kDebug));
  EXPECT_FALSE(OMEGA_LOG_IS_ON(kInfo));
  EXPECT_TRUE(OMEGA_LOG_IS_ON(kWarning));
  EXPECT_TRUE(OMEGA_LOG_IS_ON(kError));
  SetLogLevel(old);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ OMEGA_CHECK(1 == 2) << "impossible"; }, "Check failed");
}

TEST(LoggingTest, CheckPassesSilently) {
  OMEGA_CHECK(true) << "never evaluated";
  SUCCEED();
}

}  // namespace
}  // namespace omega
