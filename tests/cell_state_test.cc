#include "src/cluster/cell_state.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/common/random.h"

namespace omega {
namespace {

constexpr Resources kMachine{4.0, 16.0};
constexpr Resources kTask{1.0, 2.0};

TEST(CellStateTest, ConstructionTotals) {
  CellState cell(10, kMachine);
  EXPECT_EQ(cell.NumMachines(), 10u);
  EXPECT_EQ(cell.TotalCapacity(), (Resources{40.0, 160.0}));
  EXPECT_TRUE(cell.TotalAllocated().IsZero());
  EXPECT_DOUBLE_EQ(cell.CpuUtilization(), 0.0);
}

TEST(CellStateTest, FailureDomainsGroupMachines) {
  CellState cell(10, kMachine, FullnessPolicy::kExact, 0.0,
                 /*machines_per_domain=*/4);
  EXPECT_EQ(cell.machine(0).failure_domain, 0);
  EXPECT_EQ(cell.machine(3).failure_domain, 0);
  EXPECT_EQ(cell.machine(4).failure_domain, 1);
  EXPECT_EQ(cell.machine(9).failure_domain, 2);
}

TEST(CellStateTest, AllocateFreeRoundTrip) {
  CellState cell(2, kMachine);
  cell.Allocate(0, kTask);
  EXPECT_EQ(cell.machine(0).allocated, kTask);
  EXPECT_EQ(cell.TotalAllocated(), kTask);
  EXPECT_DOUBLE_EQ(cell.CpuUtilization(), 1.0 / 8.0);
  cell.Free(0, kTask);
  EXPECT_TRUE(cell.TotalAllocated().IsZero());
  EXPECT_TRUE(cell.CheckInvariants());
}

TEST(CellStateTest, SeqnumBumpsOnEveryChange) {
  CellState cell(1, kMachine);
  const uint64_t s0 = cell.machine(0).seqnum;
  cell.Allocate(0, kTask);
  EXPECT_EQ(cell.machine(0).seqnum, s0 + 1);
  cell.Free(0, kTask);
  EXPECT_EQ(cell.machine(0).seqnum, s0 + 2);
}

TEST(CellStateDeathTest, OvercommitAborts) {
  CellState cell(1, kMachine);
  cell.Allocate(0, Resources{4.0, 16.0});
  EXPECT_DEATH(cell.Allocate(0, kTask), "overcommit");
}

TEST(CellStateDeathTest, NegativeFreeAborts) {
  CellState cell(1, kMachine);
  EXPECT_DEATH(cell.Free(0, kTask), "negative allocation");
}

TEST(CellStateTest, CanFitExactPolicy) {
  CellState cell(1, kMachine);
  EXPECT_TRUE(cell.CanFit(0, Resources{4.0, 16.0}));
  EXPECT_FALSE(cell.CanFit(0, Resources{4.5, 1.0}));
  cell.Allocate(0, Resources{3.5, 1.0});
  EXPECT_TRUE(cell.CanFit(0, Resources{0.5, 1.0}));
  EXPECT_FALSE(cell.CanFit(0, Resources{0.6, 1.0}));
}

TEST(CellStateTest, HeadroomPolicyIsStricter) {
  CellState exact(1, kMachine, FullnessPolicy::kExact);
  CellState headroom(1, kMachine, FullnessPolicy::kHeadroom, 0.1);
  // 3.7 cpus fits exactly but violates the 10% headroom (3.6 usable).
  EXPECT_TRUE(exact.CanFit(0, Resources{3.7, 1.0}));
  EXPECT_FALSE(headroom.CanFit(0, Resources{3.7, 1.0}));
  EXPECT_TRUE(headroom.CanFit(0, Resources{3.6, 1.0}));
  EXPECT_EQ(headroom.UsableCapacity(0), (Resources{3.6, 14.4}));
}

TEST(CellStateTest, CanFitWithPendingStacks) {
  CellState cell(1, kMachine);
  EXPECT_TRUE(cell.CanFitWithPending(0, Resources{2.0, 2.0}, Resources{2.0, 2.0}));
  EXPECT_FALSE(cell.CanFitWithPending(0, Resources{2.5, 2.0}, Resources{2.0, 2.0}));
}

// --- transaction commit semantics (§3.4, §5.2) ---

TaskClaim Claim(const CellState& cell, MachineId m, const Resources& r) {
  return TaskClaim{m, r, cell.machine(m).seqnum};
}

TEST(CommitTest, CleanCommitAcceptsAll) {
  CellState cell(2, kMachine);
  std::vector<TaskClaim> claims{Claim(cell, 0, kTask), Claim(cell, 1, kTask)};
  const CommitResult r = cell.Commit(claims, ConflictMode::kFineGrained,
                                     CommitMode::kIncremental);
  EXPECT_EQ(r.accepted, 2);
  EXPECT_EQ(r.conflicted, 0);
  EXPECT_TRUE(r.AllAccepted());
  EXPECT_EQ(cell.TotalAllocated(), kTask + kTask);
}

TEST(CommitTest, FineGrainedAcceptsDespiteInterveningFit) {
  CellState cell(1, kMachine);
  std::vector<TaskClaim> claims{Claim(cell, 0, kTask)};
  // Another scheduler commits to the same machine, but room remains.
  cell.Allocate(0, kTask);
  const CommitResult r = cell.Commit(claims, ConflictMode::kFineGrained,
                                     CommitMode::kIncremental);
  EXPECT_EQ(r.accepted, 1);
  EXPECT_EQ(r.conflicted, 0);
}

TEST(CommitTest, FineGrainedRejectsOvercommit) {
  CellState cell(1, kMachine);
  std::vector<TaskClaim> claims{Claim(cell, 0, Resources{2.0, 2.0})};
  cell.Allocate(0, Resources{3.0, 2.0});  // now only 1 cpu left
  std::vector<TaskClaim> rejected;
  const CommitResult r = cell.Commit(claims, ConflictMode::kFineGrained,
                                     CommitMode::kIncremental, &rejected);
  EXPECT_EQ(r.accepted, 0);
  EXPECT_EQ(r.conflicted, 1);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].machine, 0u);
}

TEST(CommitTest, CoarseGrainedRejectsAnyChange) {
  CellState cell(1, kMachine);
  std::vector<TaskClaim> claims{Claim(cell, 0, kTask)};
  // An allocation that still leaves room: fine-grained would accept, coarse
  // conflicts because the sequence number moved.
  cell.Allocate(0, kTask);
  const CommitResult r = cell.Commit(claims, ConflictMode::kCoarseGrained,
                                     CommitMode::kIncremental);
  EXPECT_EQ(r.accepted, 0);
  EXPECT_EQ(r.conflicted, 1);
}

TEST(CommitTest, CoarseGrainedSpuriousConflictOnFree) {
  CellState cell(1, kMachine);
  cell.Allocate(0, kTask);
  std::vector<TaskClaim> claims{Claim(cell, 0, kTask)};
  // A *free* makes the machine emptier; coarse detection still conflicts.
  cell.Free(0, kTask);
  const CommitResult coarse = cell.Commit(claims, ConflictMode::kCoarseGrained,
                                          CommitMode::kIncremental);
  EXPECT_EQ(coarse.conflicted, 1);
}

TEST(CommitTest, IntraTransactionClaimsDoNotConflict) {
  CellState cell(1, kMachine);
  // Two tasks of the same transaction stack onto one machine; coarse-grained
  // detection must not treat the first as a conflict for the second.
  std::vector<TaskClaim> claims{Claim(cell, 0, kTask), Claim(cell, 0, kTask)};
  const CommitResult r = cell.Commit(claims, ConflictMode::kCoarseGrained,
                                     CommitMode::kIncremental);
  EXPECT_EQ(r.accepted, 2);
  EXPECT_EQ(r.conflicted, 0);
}

TEST(CommitTest, IntraTransactionOvercommitRejected) {
  CellState cell(1, kMachine);
  // Three 2-cpu tasks cannot all fit a 4-cpu machine even within one txn.
  const Resources big{2.0, 2.0};
  std::vector<TaskClaim> claims{Claim(cell, 0, big), Claim(cell, 0, big),
                                Claim(cell, 0, big)};
  const CommitResult r = cell.Commit(claims, ConflictMode::kFineGrained,
                                     CommitMode::kIncremental);
  EXPECT_EQ(r.accepted, 2);
  EXPECT_EQ(r.conflicted, 1);
  EXPECT_TRUE(cell.CheckInvariants());
}

TEST(CommitTest, AllOrNothingRejectsWholeTransaction) {
  CellState cell(2, kMachine);
  std::vector<TaskClaim> claims{Claim(cell, 0, kTask),
                                Claim(cell, 1, Resources{2.0, 2.0})};
  cell.Allocate(1, Resources{3.0, 2.0});  // machine 1 can no longer fit 2 cpus
  std::vector<TaskClaim> rejected;
  const CommitResult r = cell.Commit(claims, ConflictMode::kFineGrained,
                                     CommitMode::kAllOrNothing, &rejected);
  EXPECT_EQ(r.accepted, 0);
  EXPECT_EQ(r.conflicted, 2);
  EXPECT_EQ(rejected.size(), 2u);
  // Machine 0 must be untouched (atomicity).
  EXPECT_TRUE(cell.machine(0).allocated.IsZero());
}

TEST(CommitTest, AllOrNothingCleanCommits) {
  CellState cell(2, kMachine);
  std::vector<TaskClaim> claims{Claim(cell, 0, kTask), Claim(cell, 1, kTask)};
  const CommitResult r = cell.Commit(claims, ConflictMode::kFineGrained,
                                     CommitMode::kAllOrNothing);
  EXPECT_EQ(r.accepted, 2);
}

TEST(CommitTest, EmptyTransactionIsNoop) {
  CellState cell(1, kMachine);
  const CommitResult r = cell.Commit({}, ConflictMode::kFineGrained,
                                     CommitMode::kIncremental);
  EXPECT_EQ(r.accepted, 0);
  EXPECT_EQ(r.conflicted, 0);
}

// Property: fine-grained detection accepts a superset of coarse-grained, for
// random interleavings of claims and concurrent commits.
class ConflictModePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConflictModePropertyTest, FineAcceptsSupersetOfCoarse) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    CellState fine(8, kMachine);
    CellState coarse(8, kMachine);
    // Pre-fill both identically.
    for (int i = 0; i < 10; ++i) {
      const auto m = static_cast<MachineId>(rng.NextBounded(8));
      const Resources r{0.5 + rng.NextDouble(), 1.0};
      if (fine.CanFit(m, r)) {
        fine.Allocate(m, r);
        coarse.Allocate(m, r);
      }
    }
    // Build claims against the current snapshot.
    std::vector<TaskClaim> claims;
    for (int i = 0; i < 6; ++i) {
      const auto m = static_cast<MachineId>(rng.NextBounded(8));
      const Resources r{0.5, 1.0};
      claims.push_back(Claim(fine, m, r));
    }
    // Concurrent commits by "another scheduler".
    for (int i = 0; i < 4; ++i) {
      const auto m = static_cast<MachineId>(rng.NextBounded(8));
      const Resources r{0.5, 0.5};
      if (fine.CanFit(m, r)) {
        fine.Allocate(m, r);
        coarse.Allocate(m, r);
      }
    }
    const CommitResult rf =
        fine.Commit(claims, ConflictMode::kFineGrained, CommitMode::kIncremental);
    const CommitResult rc = coarse.Commit(claims, ConflictMode::kCoarseGrained,
                                          CommitMode::kIncremental);
    EXPECT_GE(rf.accepted, rc.accepted);
    EXPECT_TRUE(fine.CheckInvariants());
    EXPECT_TRUE(coarse.CheckInvariants());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictModePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// Property: after arbitrary random operations the availability index agrees
// with a brute-force scan.
class AvailabilityIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(AvailabilityIndexPropertyTest, IndexMatchesBruteForce) {
  Rng rng(GetParam());
  CellState cell(32, kMachine);
  cell.EnableAvailabilityIndex(16);
  std::vector<Resources> held(32, Resources::Zero());
  for (int op = 0; op < 500; ++op) {
    const auto m = static_cast<MachineId>(rng.NextBounded(32));
    const Resources r{0.25 + rng.NextDouble(), 0.5};
    if (rng.NextBool(0.6)) {
      if (cell.CanFit(m, r)) {
        cell.Allocate(m, r);
        held[m] += r;
      }
    } else if (!held[m].IsZero()) {
      cell.Free(m, held[m]);
      held[m] = Resources::Zero();
    }
  }
  // The index must visit every machine exactly once (zero minimum request),
  // in non-strictly increasing bucket order of effective availability
  // (min of CPU and memory headroom, in CPU units).
  std::vector<int> visits(32, 0);
  double last_bucket_key = -1.0;
  int bucket_tolerant_inversions = 0;
  const double mem_per_cpu = kMachine.mem_gb / kMachine.cpus;
  cell.VisitByAvailability(Resources::Zero(), [&](MachineId id) {
    ++visits[id];
    const Resources avail = cell.machine(id).Available();
    const double key = std::min(avail.cpus, avail.mem_gb / mem_per_cpu);
    if (key + 0.25 < last_bucket_key) {  // allow intra-bucket disorder
      ++bucket_tolerant_inversions;
    }
    last_bucket_key = std::max(last_bucket_key, key);
    return true;
  });
  for (int v : visits) {
    EXPECT_EQ(v, 1);
  }
  EXPECT_EQ(bucket_tolerant_inversions, 0);
  EXPECT_TRUE(cell.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvailabilityIndexPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(AvailabilityIndexTest, MinRequestSkipsTightMachines) {
  CellState cell(4, kMachine);
  cell.EnableAvailabilityIndex(16);
  cell.Allocate(0, Resources{3.9, 1.0});  // 0.1 cpu left
  cell.Allocate(1, Resources{2.0, 1.0});  // 2 cpus left
  std::vector<MachineId> seen;
  cell.VisitByAvailability(Resources{1.0, 0.0}, [&](MachineId id) {
    seen.push_back(id);
    return true;
  });
  // Machine 0 (0.1 cpu) is below the 1-cpu threshold bucket and not visited.
  for (MachineId id : seen) {
    EXPECT_NE(id, 0u);
  }
  // Machines 1..3 are all visited.
  EXPECT_EQ(seen.size(), 3u);
}

TEST(AvailabilityIndexTest, MemoryBoundMachinesSortTight) {
  // A machine with plenty of CPU but no memory must land in a low bucket, so
  // memory-hungry requests skip it via the effective key.
  CellState cell(3, kMachine);
  cell.EnableAvailabilityIndex(16);
  cell.Allocate(0, Resources{0.5, 15.5});  // 3.5 cpus, 0.5 GB left
  std::vector<MachineId> seen;
  // Request needing 8 GB: machine 0's bucket (effective ~0.03 cpu) is skipped.
  cell.VisitByAvailability(Resources{0.5, 8.0}, [&](MachineId id) {
    seen.push_back(id);
    return true;
  });
  for (MachineId id : seen) {
    EXPECT_NE(id, 0u);
  }
  EXPECT_EQ(seen.size(), 2u);
}

// --- block availability summaries ---

TEST(BlockSummaryTest, FreshCellAdvertisesFullCapacity) {
  CellState cell(CellState::kBlockSize * 2 + 7, kMachine);
  EXPECT_EQ(cell.NumBlocks(), 3u);
  for (MachineId m = 0; m < cell.NumMachines(); m += 13) {
    EXPECT_TRUE(cell.BlockMayFit(m, kMachine));
    EXPECT_FALSE(cell.BlockMayFit(m, Resources{kMachine.cpus + 0.5, 1.0}));
  }
}

TEST(BlockSummaryTest, SoundnessNeverRulesOutAFeasibleMachine) {
  // Whatever BlockMayFit says "no" to must truly fit nowhere in the block.
  CellState cell(CellState::kBlockSize * 3, kMachine);
  Rng rng(42);
  for (int step = 0; step < 5000; ++step) {
    const auto m = static_cast<MachineId>(rng.NextBounded(cell.NumMachines()));
    const Resources r{0.5 + rng.NextDouble(), 1.0 + 4.0 * rng.NextDouble()};
    if (rng.NextBool(0.7)) {
      if (cell.CanFit(m, r)) {
        cell.Allocate(m, r);
      }
    } else if (!cell.machine(m).allocated.IsZero()) {
      cell.Free(m, cell.machine(m).allocated);
    }
    const Resources probe{0.25 + 3.75 * rng.NextDouble(),
                          1.0 + 15.0 * rng.NextDouble()};
    const MachineId block_first =
        (m / CellState::kBlockSize) * CellState::kBlockSize;
    if (!cell.BlockMayFit(m, probe)) {
      for (MachineId i = block_first;
           i < block_first + CellState::kBlockSize && i < cell.NumMachines();
           ++i) {
        EXPECT_FALSE(cell.CanFit(i, probe)) << "machine " << i;
      }
    }
  }
  EXPECT_TRUE(cell.CheckInvariants());
}

// CheckInvariants verifies both soundness (summary dominates every machine)
// and tightness (summary achieved by some machine), so a randomized
// allocate/free/commit storm through every update path is a full regression
// of the incremental maintenance.
TEST(BlockSummaryTest, StaysExactThroughRandomizedChurn) {
  for (const FullnessPolicy policy :
       {FullnessPolicy::kExact, FullnessPolicy::kHeadroom}) {
    CellState cell(150, kMachine, policy,
                   policy == FullnessPolicy::kHeadroom ? 0.2 : 0.0);
    Rng rng(7);
    std::vector<std::pair<MachineId, Resources>> allocs;
    for (int step = 0; step < 3000; ++step) {
      const auto m = static_cast<MachineId>(rng.NextBounded(cell.NumMachines()));
      const Resources r{0.25 + rng.NextDouble(), 0.5 + 2.0 * rng.NextDouble()};
      if (rng.NextBool(0.6)) {
        if (cell.CanFit(m, r)) {
          cell.Allocate(m, r);
          allocs.emplace_back(m, r);
        }
      } else if (rng.NextBool(0.5) && !allocs.empty()) {
        const size_t pick = rng.NextBounded(allocs.size());
        cell.Free(allocs[pick].first, allocs[pick].second);
        allocs[pick] = allocs.back();
        allocs.pop_back();
      } else {
        // Commit path: accepted claims stay allocated for good, pushing the
        // cell toward the near-full regime the summary exists for.
        std::vector<TaskClaim> claims;
        for (int c = 0; c < 3; ++c) {
          const auto cm =
              static_cast<MachineId>(rng.NextBounded(cell.NumMachines()));
          claims.push_back(TaskClaim{cm, r, cell.machine(cm).seqnum});
        }
        cell.Commit(claims, ConflictMode::kFineGrained,
                    CommitMode::kIncremental);
      }
      if (step % 100 == 0) {
        // Consulting each block refreshes any dirty summary, so the
        // invariant check below exercises tightness on every block.
        for (MachineId b = 0; b < cell.NumBlocks(); ++b) {
          cell.BlockMayFit(b * CellState::kBlockSize, kTask);
        }
        ASSERT_TRUE(cell.CheckInvariants()) << "step " << step;
      }
    }
    ASSERT_TRUE(cell.CheckInvariants());
  }
}

TEST(BlockSummaryTest, NextBlockStartJumpsToBoundary) {
  EXPECT_EQ(CellState::NextBlockStart(0), CellState::kBlockSize);
  EXPECT_EQ(CellState::NextBlockStart(CellState::kBlockSize - 1),
            CellState::kBlockSize);
  EXPECT_EQ(CellState::NextBlockStart(CellState::kBlockSize),
            2 * CellState::kBlockSize);
}

// Boundary regression: cell sizes straddling the block (64) and superblock
// (64 * 64 = 4096) boundaries, so the final partial block and the final
// partial superblock are exercised through every maintenance path. 4095 ends
// one machine short of a full superblock; 4097 spills a one-machine block
// into a one-block superblock.
TEST(BlockSummaryTest, PartialTailSizesStayExactThroughChurn) {
  for (const uint32_t size : {63u, 64u, 65u, 4095u, 4097u}) {
    CellState cell(size, kMachine);
    EXPECT_EQ(cell.NumBlocks(), (size + CellState::kBlockSize - 1) /
                                    CellState::kBlockSize);
    EXPECT_EQ(cell.NumSuperblocks(),
              (cell.NumBlocks() + CellState::kSuperSize - 1) /
                  CellState::kSuperSize);
    Rng rng(size);
    std::vector<std::pair<MachineId, Resources>> allocs;
    for (int step = 0; step < 600; ++step) {
      // Bias churn toward the tail so the partial block/superblock sees the
      // most traffic.
      const auto m = static_cast<MachineId>(
          rng.NextBool(0.5) ? size - 1 - rng.NextBounded(std::min(size, 70u))
                            : rng.NextBounded(size));
      const Resources r{0.25 + rng.NextDouble(), 0.5 + 2.0 * rng.NextDouble()};
      if (rng.NextBool(0.6)) {
        if (cell.CanFit(m, r)) {
          cell.Allocate(m, r);
          allocs.emplace_back(m, r);
        }
      } else if (!allocs.empty()) {
        const size_t pick = rng.NextBounded(allocs.size());
        cell.Free(allocs[pick].first, allocs[pick].second);
        allocs[pick] = allocs.back();
        allocs.pop_back();
      }
      if (step % 50 == 0) {
        // Consult both levels (refreshing any dirty summary) so the
        // invariant check exercises tightness everywhere, including the
        // partial tails.
        for (MachineId b = 0; b < cell.NumBlocks(); ++b) {
          cell.BlockMayFit(b * CellState::kBlockSize, kTask);
        }
        for (MachineId s = 0; s < cell.NumSuperblocks(); ++s) {
          cell.SuperblockMayFit(
              s * CellState::kBlockSize * CellState::kSuperSize, kTask);
        }
        ASSERT_TRUE(cell.CheckInvariants()) << "size " << size << " step "
                                            << step;
      }
    }
    ASSERT_TRUE(cell.CheckInvariants()) << "size " << size;
  }
}

TEST(BlockSummaryTest, SuperblockSoundnessNeverRulesOutAFeasibleMachine) {
  // 4097 machines: superblock 0 is full-size, superblock 1 holds a single
  // one-machine block. Whatever SuperblockMayFit says "no" to must truly fit
  // nowhere in that superblock.
  constexpr uint32_t kSuperMachines =
      CellState::kBlockSize * CellState::kSuperSize;
  CellState cell(kSuperMachines + 1, kMachine);
  Rng rng(99);
  for (int step = 0; step < 3000; ++step) {
    const auto m = static_cast<MachineId>(rng.NextBounded(cell.NumMachines()));
    const Resources r{0.5 + rng.NextDouble(), 1.0 + 4.0 * rng.NextDouble()};
    if (rng.NextBool(0.8)) {
      if (cell.CanFit(m, r)) {
        cell.Allocate(m, r);
      }
    } else if (!cell.machine(m).allocated.IsZero()) {
      cell.Free(m, cell.machine(m).allocated);
    }
    const Resources probe{0.25 + 3.75 * rng.NextDouble(),
                          1.0 + 15.0 * rng.NextDouble()};
    const MachineId super_first = m < kSuperMachines ? 0 : kSuperMachines;
    if (!cell.SuperblockMayFit(m, probe)) {
      for (MachineId i = super_first;
           i < super_first + kSuperMachines && i < cell.NumMachines(); ++i) {
        ASSERT_FALSE(cell.CanFit(i, probe)) << "machine " << i;
      }
    }
  }
  EXPECT_TRUE(cell.CheckInvariants());
}

// --- struct-of-arrays first-fit sweep ---

TEST(SoAScanTest, FindFirstFitMatchesBruteForceAtBoundarySizes) {
  // FindFirstFit must return exactly the first machine in [begin, end) that
  // CanFit the request — across partial blocks, partial superblocks, chunk
  // tails, and stale summaries left by churn.
  for (const uint32_t size : {63u, 64u, 65u, 200u, 4095u, 4097u}) {
    CellState cell(size, kMachine);
    Rng rng(size * 31 + 1);
    std::vector<std::pair<MachineId, Resources>> allocs;
    for (int step = 0; step < 400; ++step) {
      const auto m = static_cast<MachineId>(rng.NextBounded(size));
      const Resources r{0.25 + rng.NextDouble(), 0.5 + 2.0 * rng.NextDouble()};
      if (rng.NextBool(0.7)) {
        if (cell.CanFit(m, r)) {
          cell.Allocate(m, r);
          allocs.emplace_back(m, r);
        }
      } else if (!allocs.empty()) {
        const size_t pick = rng.NextBounded(allocs.size());
        cell.Free(allocs[pick].first, allocs[pick].second);
        allocs[pick] = allocs.back();
        allocs.pop_back();
      }
      const Resources probe{0.25 + 3.75 * rng.NextDouble(),
                            0.5 + 15.5 * rng.NextDouble()};
      // Random sub-range, plus the full range every few steps.
      MachineId begin = 0;
      MachineId end = size;
      if (step % 3 != 0) {
        begin = static_cast<MachineId>(rng.NextBounded(size));
        end = begin + 1 +
              static_cast<MachineId>(rng.NextBounded(size - begin));
      }
      MachineId expected = kInvalidMachineId;
      for (MachineId i = begin; i < end; ++i) {
        if (cell.CanFit(i, probe)) {
          expected = i;
          break;
        }
      }
      ASSERT_EQ(cell.FindFirstFit(begin, end, probe), expected)
          << "size " << size << " step " << step << " range [" << begin << ", "
          << end << ")";
    }
  }
}

TEST(SoAScanTest, FindFirstFitClampsEndBeyondCell) {
  CellState cell(65, kMachine);
  // end past NumMachines must not over-read the arrays.
  EXPECT_EQ(cell.FindFirstFit(0, 1000, kTask), 0u);
  for (MachineId m = 0; m < cell.NumMachines(); ++m) {
    while (cell.CanFit(m, kTask)) {
      cell.Allocate(m, kTask);
    }
  }
  EXPECT_EQ(cell.FindFirstFit(0, 1000, kTask), kInvalidMachineId);
  EXPECT_EQ(cell.FindFirstFit(64, 65, kTask), kInvalidMachineId);
  cell.Free(64, kTask);
  EXPECT_EQ(cell.FindFirstFit(0, 1000, kTask), 64u);
  EXPECT_EQ(cell.FindFirstFit(0, 64, kTask), kInvalidMachineId);
  EXPECT_TRUE(cell.CheckInvariants());
}

TEST(SoAScanTest, HeadroomPolicyUsesUsableCapacity) {
  // Under the headroom policy the fit limit is the reduced usable capacity,
  // not raw capacity: a machine with room under kExact must be rejected once
  // headroom eats the slack — by FindFirstFit exactly as by CanFit.
  CellState cell(130, kMachine, FullnessPolicy::kHeadroom,
                 /*headroom_fraction=*/0.2);
  const Resources big{3.5, 1.0};  // fits 4.0 raw, not 3.2 usable
  EXPECT_FALSE(cell.CanFit(0, big));
  EXPECT_EQ(cell.FindFirstFit(0, cell.NumMachines(), big), kInvalidMachineId);
  const Resources ok{3.0, 1.0};
  EXPECT_EQ(cell.FindFirstFit(0, cell.NumMachines(), ok), 0u);
  cell.Allocate(0, ok);
  EXPECT_EQ(cell.FindFirstFit(0, cell.NumMachines(), ok), 1u);
  EXPECT_TRUE(cell.CheckInvariants());
}

// --- accepted-set reconstruction after partial commits ---

TEST(ReconstructAcceptedClaimsTest, RemovesRejectedInOrder) {
  const std::vector<TaskClaim> claims = {
      {0, kTask, 1}, {1, kTask, 2}, {2, kTask, 3}, {3, kTask, 4}};
  const std::vector<TaskClaim> rejected = {{1, kTask, 2}, {3, kTask, 4}};
  const auto accepted = ReconstructAcceptedClaims(claims, rejected, 2);
  ASSERT_EQ(accepted.size(), 2u);
  EXPECT_EQ(accepted[0].machine, 0u);
  EXPECT_EQ(accepted[1].machine, 2u);
}

TEST(ReconstructAcceptedClaimsTest, DuplicateIdenticalClaimsPartialRejection) {
  // Three byte-identical claims on one machine, only the last two rejected
  // (the machine had room for one). The merge drops exactly as many
  // occurrences as were rejected and keeps the rest.
  const std::vector<TaskClaim> claims = {
      {5, kTask, 7}, {5, kTask, 7}, {5, kTask, 7}};
  const std::vector<TaskClaim> rejected = {{5, kTask, 7}, {5, kTask, 7}};
  const auto accepted = ReconstructAcceptedClaims(claims, rejected, 1);
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].machine, 5u);
  EXPECT_EQ(accepted[0].seqnum_at_placement, 7u);
}

TEST(ReconstructAcceptedClaimsTest, SeqnumDistinguishesSameMachineClaims) {
  // Two claims on the same machine with the same resources but different
  // placement seqnums: the rejected entry must match the right one. (The
  // MapReduce scheduler's former copy of this loop ignored seqnums.)
  const std::vector<TaskClaim> claims = {{4, kTask, 10}, {4, kTask, 11}};
  const std::vector<TaskClaim> rejected = {{4, kTask, 11}};
  const auto accepted = ReconstructAcceptedClaims(claims, rejected, 1);
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].seqnum_at_placement, 10u);
}

TEST(ReconstructAcceptedClaimsTest, MatchesCommitOutput) {
  // End-to-end against a real partial commit: fill machine 0 behind the
  // claimant's back so its claim conflicts, then reconstruct.
  CellState cell(2, kMachine);
  std::vector<TaskClaim> claims;
  claims.push_back({0, Resources{3.0, 3.0}, cell.machine(0).seqnum});
  claims.push_back({1, Resources{3.0, 3.0}, cell.machine(1).seqnum});
  cell.Allocate(0, Resources{2.0, 2.0});  // competing commit wins machine 0
  std::vector<TaskClaim> rejected;
  const CommitResult result = cell.Commit(claims, ConflictMode::kFineGrained,
                                          CommitMode::kIncremental, &rejected);
  ASSERT_EQ(result.accepted, 1);
  ASSERT_EQ(result.conflicted, 1);
  const auto accepted = ReconstructAcceptedClaims(claims, rejected, result.accepted);
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].machine, 1u);
}

using ReconstructAcceptedClaimsDeathTest = ::testing::Test;

TEST(ReconstructAcceptedClaimsDeathTest, RejectedOrderMismatchAborts) {
  // `rejected` out of claim order is a contract violation (Commit emits
  // rejections in order): the merge cannot match the first rejected entry and
  // must abort rather than silently start the wrong tasks.
  const std::vector<TaskClaim> claims = {{0, kTask, 1}, {1, kTask, 2}};
  const std::vector<TaskClaim> out_of_order = {{1, kTask, 2}, {0, kTask, 1}};
  EXPECT_DEATH(ReconstructAcceptedClaims(claims, out_of_order, 0),
               "reject_idx == rejected.size");
}

TEST(ReconstructAcceptedClaimsDeathTest, WrongAcceptedCountAborts) {
  const std::vector<TaskClaim> claims = {{0, kTask, 1}, {1, kTask, 2}};
  const std::vector<TaskClaim> rejected = {{0, kTask, 1}};
  EXPECT_DEATH(ReconstructAcceptedClaims(claims, rejected, 2),
               "accepted.size");
}

}  // namespace
}  // namespace omega
