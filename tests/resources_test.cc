#include "src/cluster/resources.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

TEST(ResourcesTest, Arithmetic) {
  const Resources a{2.0, 8.0};
  const Resources b{1.0, 4.0};
  EXPECT_EQ(a + b, (Resources{3.0, 12.0}));
  EXPECT_EQ(a - b, (Resources{1.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Resources{4.0, 16.0}));
  Resources c = a;
  c += b;
  EXPECT_EQ(c, (Resources{3.0, 12.0}));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(ResourcesTest, FitsInBothDimensions) {
  const Resources cap{4.0, 16.0};
  EXPECT_TRUE((Resources{4.0, 16.0}).FitsIn(cap));
  EXPECT_TRUE((Resources{0.0, 0.0}).FitsIn(cap));
  EXPECT_FALSE((Resources{4.1, 1.0}).FitsIn(cap));
  EXPECT_FALSE((Resources{1.0, 16.1}).FitsIn(cap));
}

TEST(ResourcesTest, FitsInToleratesFloatDrift) {
  // Repeated add/subtract cycles leave sub-epsilon residue; FitsIn must not
  // reject because of it.
  Resources used{0.0, 0.0};
  const Resources task{0.1, 0.3};
  for (int i = 0; i < 10; ++i) {
    used += task;
  }
  for (int i = 0; i < 10; ++i) {
    used -= task;
  }
  const Resources cap{1.0, 3.0};
  EXPECT_TRUE((Resources{1.0, 3.0} + used).FitsIn(cap));
}

TEST(ResourcesTest, IsZeroAndNegative) {
  EXPECT_TRUE(Resources::Zero().IsZero());
  EXPECT_FALSE((Resources{0.5, 0.0}).IsZero());
  EXPECT_FALSE(Resources::Zero().IsNegative());
  EXPECT_TRUE((Resources{-0.5, 1.0}).IsNegative());
  EXPECT_TRUE((Resources{1.0, -0.5}).IsNegative());
}

TEST(ResourcesTest, ClampNonNegative) {
  EXPECT_EQ((Resources{-1.0, 2.0}).ClampNonNegative(), (Resources{0.0, 2.0}));
}

TEST(ResourcesTest, DominantShareTakesMax) {
  const Resources total{100.0, 1000.0};
  // 10% CPU, 50% RAM -> dominant share is the RAM share.
  EXPECT_DOUBLE_EQ((Resources{10.0, 500.0}).DominantShare(total), 0.5);
  // 20% CPU, 1% RAM -> dominant share is the CPU share.
  EXPECT_DOUBLE_EQ((Resources{20.0, 10.0}).DominantShare(total), 0.2);
}

TEST(ResourcesTest, DominantShareZeroTotal) {
  EXPECT_DOUBLE_EQ((Resources{1.0, 1.0}).DominantShare(Resources::Zero()), 0.0);
}

}  // namespace
}  // namespace omega
