#include "src/scheduler/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace omega {
namespace {

const SimTime kDay1 = SimTime::Zero() + Duration::FromDays(1);
const SimTime kDay7 = SimTime::Zero() + Duration::FromDays(7);

TEST(MetricsTest, BusynessSingleDay) {
  SchedulerMetrics m;
  // Busy 6 hours of a 24-hour day.
  m.AddBusyInterval(SimTime::FromSeconds(0), SimTime::Zero() + Duration::FromHours(6));
  const auto daily = m.DailyBusyness(kDay1);
  ASSERT_EQ(daily.size(), 1u);
  EXPECT_NEAR(daily[0], 0.25, 1e-9);
  EXPECT_NEAR(m.Busyness(kDay1).median, 0.25, 1e-9);
}

TEST(MetricsTest, BusyIntervalSplitsAcrossDays) {
  SchedulerMetrics m;
  // From 23:00 of day 0 to 01:00 of day 1.
  m.AddBusyInterval(SimTime::Zero() + Duration::FromHours(23),
                    SimTime::Zero() + Duration::FromHours(25));
  const auto daily = m.DailyBusyness(SimTime::Zero() + Duration::FromDays(2));
  ASSERT_EQ(daily.size(), 2u);
  EXPECT_NEAR(daily[0], 1.0 / 24.0, 1e-9);
  EXPECT_NEAR(daily[1], 1.0 / 24.0, 1e-9);
}

TEST(MetricsTest, BusynessMedianAndMad) {
  SchedulerMetrics m;
  // Days with busyness 0.1, 0.2, 0.3, 0.4, 0.5.
  for (int d = 0; d < 5; ++d) {
    const SimTime start = SimTime::Zero() + Duration::FromDays(d);
    m.AddBusyInterval(start, start + Duration::FromHours(24.0 * 0.1 * (d + 1)));
  }
  const DailySummary s = m.Busyness(SimTime::Zero() + Duration::FromDays(5));
  EXPECT_NEAR(s.median, 0.3, 1e-9);
  EXPECT_NEAR(s.mad, 0.1, 1e-9);
  EXPECT_NEAR(s.mean, 0.3, 1e-9);
}

TEST(MetricsTest, IdleDaysCountAsZero) {
  SchedulerMetrics m;
  m.AddBusyInterval(SimTime::Zero(), SimTime::Zero() + Duration::FromHours(12));
  const auto daily = m.DailyBusyness(kDay7);
  ASSERT_EQ(daily.size(), 7u);
  EXPECT_NEAR(daily[0], 0.5, 1e-9);
  for (size_t d = 1; d < 7; ++d) {
    EXPECT_EQ(daily[d], 0.0);
  }
}

TEST(MetricsTest, ConflictFractionPerDay) {
  SchedulerMetrics m;
  // Day 0: two jobs, one with 3 conflicted attempts -> fraction 1.5.
  m.RecordJobScheduled(SimTime::FromSeconds(10), JobType::kService, 4, 3);
  m.RecordJobScheduled(SimTime::FromSeconds(20), JobType::kService, 1, 0);
  // Day 1: one job, no conflicts.
  m.RecordJobScheduled(kDay1 + Duration::FromSeconds(5), JobType::kService, 1, 0);
  const auto daily = m.DailyConflictFraction(SimTime::Zero() + Duration::FromDays(2));
  ASSERT_EQ(daily.size(), 2u);
  EXPECT_DOUBLE_EQ(daily[0], 1.5);
  EXPECT_DOUBLE_EQ(daily[1], 0.0);
  EXPECT_DOUBLE_EQ(m.ConflictFraction(SimTime::Zero() + Duration::FromDays(2)).mean,
                   0.75);
}

TEST(MetricsTest, NoConflictBusynessSubtractsRetryWork) {
  SchedulerMetrics m;
  m.AddBusyInterval(SimTime::Zero(), SimTime::Zero() + Duration::FromHours(6),
                    /*conflict_retry=*/false);
  m.AddBusyInterval(SimTime::Zero() + Duration::FromHours(6),
                    SimTime::Zero() + Duration::FromHours(12),
                    /*conflict_retry=*/true);
  EXPECT_NEAR(m.Busyness(kDay1).median, 0.5, 1e-9);
  EXPECT_NEAR(m.BusynessNoConflict(kDay1).median, 0.25, 1e-9);
}

TEST(MetricsTest, WaitTimesPerType) {
  SchedulerMetrics m;
  m.RecordJobWait(JobType::kBatch, Duration::FromSeconds(10));
  m.RecordJobWait(JobType::kBatch, Duration::FromSeconds(20));
  m.RecordJobWait(JobType::kService, Duration::FromSeconds(100));
  EXPECT_DOUBLE_EQ(m.MeanWait(JobType::kBatch), 15.0);
  EXPECT_DOUBLE_EQ(m.MeanWait(JobType::kService), 100.0);
  EXPECT_EQ(m.JobsWaited(JobType::kBatch), 2);
  EXPECT_EQ(m.JobsWaited(JobType::kService), 1);
  EXPECT_DOUBLE_EQ(m.WaitPercentile(JobType::kBatch, 1.0), 20.0);
}

TEST(MetricsTest, EmptyWaitIsNaN) {
  // "No jobs waited" must be distinguishable from a true zero-second wait;
  // JSON emitters render the NaN as null.
  SchedulerMetrics m;
  EXPECT_TRUE(std::isnan(m.MeanWait(JobType::kBatch)));
  EXPECT_TRUE(std::isnan(m.WaitPercentile(JobType::kService, 0.9)));
}

TEST(MetricsTest, JobCounters) {
  SchedulerMetrics m;
  m.RecordJobScheduled(SimTime::FromSeconds(1), JobType::kBatch, 1, 0);
  m.RecordJobScheduled(SimTime::FromSeconds(2), JobType::kBatch, 2, 1);
  m.RecordJobScheduled(SimTime::FromSeconds(3), JobType::kService, 1, 0);
  m.RecordJobAbandoned(JobType::kBatch);
  m.RecordJobAbandoned(JobType::kService);
  EXPECT_EQ(m.JobsScheduled(JobType::kBatch), 2);
  EXPECT_EQ(m.JobsScheduled(JobType::kService), 1);
  EXPECT_EQ(m.JobsAbandoned(JobType::kBatch), 1);
  EXPECT_EQ(m.JobsAbandonedTotal(), 2);
  EXPECT_EQ(m.TotalConflictedAttempts(), 1);
}

TEST(MetricsTest, TransactionCounters) {
  SchedulerMetrics m;
  m.RecordTransaction(5, 2);
  m.RecordTransaction(3, 0);
  EXPECT_EQ(m.TasksAccepted(), 8);
  EXPECT_EQ(m.TasksConflicted(), 2);
}

TEST(MetricsTest, PartialDayNormalizedByElapsedSpan) {
  SchedulerMetrics m;
  // A 12-hour run, busy the whole time: busyness must be 1.0, not 0.5.
  m.AddBusyInterval(SimTime::Zero(), SimTime::Zero() + Duration::FromHours(12));
  const auto daily = m.DailyBusyness(SimTime::Zero() + Duration::FromHours(12));
  ASSERT_EQ(daily.size(), 1u);
  EXPECT_NEAR(daily[0], 1.0, 1e-9);
  // 36-hour run: one full day busy 1/3 of it, plus a half day fully busy.
  SchedulerMetrics m2;
  m2.AddBusyInterval(SimTime::Zero(), SimTime::Zero() + Duration::FromHours(8));
  m2.AddBusyInterval(SimTime::Zero() + Duration::FromHours(24),
                     SimTime::Zero() + Duration::FromHours(36));
  const auto daily2 = m2.DailyBusyness(SimTime::Zero() + Duration::FromHours(36));
  ASSERT_EQ(daily2.size(), 2u);
  EXPECT_NEAR(daily2[0], 8.0 / 24.0, 1e-9);
  EXPECT_NEAR(daily2[1], 1.0, 1e-9);
}

TEST(MetricsTest, BusynessCappedAtOne) {
  SchedulerMetrics m(Duration::FromDays(1));
  // Two overlapping logical busy intervals (parallel attempts would be a bug,
  // but the metric itself must stay in [0, 1]).
  m.AddBusyInterval(SimTime::Zero(), SimTime::Zero() + Duration::FromHours(20));
  m.AddBusyInterval(SimTime::Zero(), SimTime::Zero() + Duration::FromHours(20));
  EXPECT_LE(m.Busyness(kDay1).median, 1.0);
}

TEST(MetricsTest, BusynessClampEventsCounted) {
  SchedulerMetrics m;
  // Day 0 double-counted (40 h of "busy" in a 24 h day), day 1 legitimate.
  m.AddBusyInterval(SimTime::Zero(), SimTime::Zero() + Duration::FromHours(20));
  m.AddBusyInterval(SimTime::Zero(), SimTime::Zero() + Duration::FromHours(20));
  m.AddBusyInterval(kDay1, kDay1 + Duration::FromHours(10));
  const SimTime end = SimTime::Zero() + Duration::FromDays(2);
  EXPECT_EQ(m.BusynessClampEvents(end), 1);
  // No double counting anywhere: no clamps.
  SchedulerMetrics clean;
  clean.AddBusyInterval(SimTime::Zero(), SimTime::Zero() + Duration::FromHours(23));
  EXPECT_EQ(clean.BusynessClampEvents(kDay1), 0);
}

TEST(MetricsTest, BusynessClampOnPartialFinalDay) {
  SchedulerMetrics m;
  // A 6-hour run whose final attempt runs past the horizon: busy exceeds the
  // elapsed span of the (only) day, the legitimate clamp case.
  m.AddBusyInterval(SimTime::Zero(), SimTime::Zero() + Duration::FromHours(6) +
                                         Duration::FromSeconds(30));
  const SimTime end = SimTime::Zero() + Duration::FromHours(6);
  EXPECT_EQ(m.BusynessClampEvents(end), 1);
  EXPECT_NEAR(m.DailyBusyness(end)[0], 1.0, 1e-9);
}

TEST(MetricsTest, BusyIntervalSplitsAcrossMultipleDayBoundaries) {
  SchedulerMetrics m;
  // One interval spanning parts of day 0 and 2 and all of day 1: from 18:00
  // of day 0 to 06:00 of day 2 (36 hours total).
  m.AddBusyInterval(SimTime::Zero() + Duration::FromHours(18),
                    SimTime::Zero() + Duration::FromHours(54));
  const SimTime end = SimTime::Zero() + Duration::FromDays(3);
  const auto daily = m.DailyBusyness(end);
  ASSERT_EQ(daily.size(), 3u);
  EXPECT_NEAR(daily[0], 6.0 / 24.0, 1e-9);
  EXPECT_NEAR(daily[1], 1.0, 1e-9);
  EXPECT_NEAR(daily[2], 6.0 / 24.0, 1e-9);
  EXPECT_NEAR(m.TotalBusy().ToSeconds(), 36.0 * 3600.0, 1e-6);
  // Exactly one attempt was accounted, not one per split segment.
  EXPECT_EQ(m.TotalAttempts(), 1);
  EXPECT_EQ(m.BusynessClampEvents(end), 0);
}

TEST(MetricsTest, BusyIntervalSplitWithPartialFinalDay) {
  SchedulerMetrics m;
  // Interval from 12:00 of day 0 to 06:00 of day 1, horizon at 06:00 day 1:
  // the final day's partial span normalizes to fully busy.
  m.AddBusyInterval(SimTime::Zero() + Duration::FromHours(12),
                    SimTime::Zero() + Duration::FromHours(30));
  const SimTime end = SimTime::Zero() + Duration::FromHours(30);
  const auto daily = m.DailyBusyness(end);
  ASSERT_EQ(daily.size(), 2u);
  EXPECT_NEAR(daily[0], 0.5, 1e-9);
  EXPECT_NEAR(daily[1], 1.0, 1e-9);
  EXPECT_EQ(m.BusynessClampEvents(end), 0);
}

TEST(MetricsTest, AttemptsPerJobDistributionRecorded) {
  SchedulerMetrics m;
  // Regression: RecordJobScheduled used to silently discard `attempts`.
  m.RecordJobScheduled(SimTime::FromSeconds(1), JobType::kBatch, 1, 0);
  m.RecordJobScheduled(SimTime::FromSeconds(2), JobType::kBatch, 4, 3);
  m.RecordJobScheduled(SimTime::FromSeconds(3), JobType::kService, 7, 2);
  EXPECT_EQ(m.AttemptsPerJob().count(), 3u);
  EXPECT_DOUBLE_EQ(m.MeanAttemptsPerJob(), 4.0);
  EXPECT_DOUBLE_EQ(m.AttemptsPerJob().MaxValue(), 7.0);
}

TEST(MetricsTest, PreemptionAccountedSeparatelyFromTransactions) {
  SchedulerMetrics m;
  m.RecordTransaction(5, 2);
  m.RecordPreemption(/*tasks_placed=*/3, /*victims_evicted=*/4);
  // Eviction-won placements must not leak into the optimistic-commit counters.
  EXPECT_EQ(m.TasksAccepted(), 5);
  EXPECT_EQ(m.TasksConflicted(), 2);
  EXPECT_EQ(m.TasksPlacedByPreemption(), 3);
  EXPECT_EQ(m.PreemptionVictims(), 4);
}

}  // namespace
}  // namespace omega
