// Mesos gang scheduling via resource hoarding (§3.3): accepted resources are
// held idle until the whole job is placed; hoarding wastes resources and can
// deadlock, broken only by the retry limit.
#include <gtest/gtest.h>

#include "src/mesos/mesos_simulation.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

SimOptions ShortRun(uint64_t seed = 1) {
  SimOptions o;
  o.horizon = Duration::FromHours(4);
  o.seed = seed;
  return o;
}

SchedulerConfig Hoarding() {
  SchedulerConfig c;
  c.commit_mode = CommitMode::kAllOrNothing;
  c.max_attempts = 50;
  return c;
}

TEST(HoardingTest, GangJobsStillComplete) {
  MesosSimulation sim(TestCluster(), ShortRun(), Hoarding(), Hoarding());
  sim.Run();
  const int64_t scheduled =
      sim.batch_framework().metrics().JobsScheduled(JobType::kBatch) +
      sim.service_framework().metrics().JobsScheduled(JobType::kService);
  EXPECT_GT(scheduled, 100);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(HoardingTest, NoHoardLeftWhenIdle) {
  ClusterConfig cfg = TestCluster();
  cfg.batch.interarrival_mean_secs = 500.0;
  cfg.service.interarrival_mean_secs = 1000.0;
  MesosSimulation sim(cfg, ShortRun(2), Hoarding(), Hoarding());
  sim.Run();
  // With an almost idle cluster every gang completes or is abandoned; either
  // way the hoards must have been drained or released.
  EXPECT_TRUE(sim.batch_framework().HoardedResources().IsZero());
  EXPECT_TRUE(sim.service_framework().HoardedResources().IsZero());
}

TEST(HoardingTest, AbandonmentReleasesHoard) {
  // Jobs bigger than the whole cell hoard everything they are offered, burn
  // their attempts, and must release the hoard on abandonment — otherwise the
  // cell stays locked forever (the §3.3 deadlock, broken by the limit).
  ClusterConfig cfg = TestCluster(4);
  cfg.initial_utilization = 0.05;
  cfg.batch.interarrival_mean_secs = 120.0;
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(64.0);  // > cell
  cfg.batch.cpus_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.mem_gb_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.task_duration_secs = std::make_shared<ConstantDist>(3600.0);
  cfg.service.interarrival_mean_secs = 100000.0;
  SchedulerConfig hoarding = Hoarding();
  hoarding.max_attempts = 5;
  MesosSimulation sim(cfg, ShortRun(3), hoarding, SchedulerConfig{});
  sim.Run();
  EXPECT_GT(sim.batch_framework().metrics().JobsAbandonedTotal(), 0);
  EXPECT_TRUE(sim.batch_framework().HoardedResources().IsZero());
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(HoardingTest, HoardingNeedsMoreAttemptsUnderContention) {
  // On a contended cell, offers often cover only part of a gang, so hoarding
  // frameworks need extra attempts per job (holding the partial hoard idle in
  // between) where incremental placement finishes in one.
  ClusterConfig cfg = TestCluster(8);
  cfg.initial_utilization = 0.5;
  cfg.batch.interarrival_mean_secs = 10.0;
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(24.0);
  cfg.batch.cpus_per_task = std::make_shared<ConstantDist>(0.5);
  cfg.batch.mem_gb_per_task = std::make_shared<ConstantDist>(0.5);
  cfg.batch.task_duration_secs = std::make_shared<ConstantDist>(120.0);
  cfg.service.interarrival_mean_secs = 100000.0;

  SchedulerConfig incremental;
  incremental.max_attempts = 50;
  MesosSimulation inc(cfg, ShortRun(4), incremental, SchedulerConfig{});
  inc.Run();

  MesosSimulation hoard(cfg, ShortRun(4), Hoarding(), SchedulerConfig{});
  hoard.Run();

  auto attempts_per_job = [](MesosSimulation& sim) {
    const auto& m = sim.batch_framework().metrics();
    const int64_t scheduled = m.JobsScheduled(JobType::kBatch);
    return scheduled > 0 ? static_cast<double>(m.TotalAttempts()) /
                               static_cast<double>(scheduled)
                         : 0.0;
  };
  EXPECT_GE(attempts_per_job(hoard), attempts_per_job(inc));
}

}  // namespace
}  // namespace omega
