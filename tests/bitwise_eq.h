// Bitwise double equality for the determinism differential tests.
//
// EXPECT_EQ on doubles uses operator==, which fails on NaN == NaN — but an
// empty-sample summary statistic is legitimately NaN (stats.h), and the
// differentials assert *bit-identical* reproduction, a strictly stronger
// property than numeric equality. Compare the representations instead.
#pragma once

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

namespace omega {

inline ::testing::AssertionResult SameBits(double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << std::bit_cast<uint64_t>(a) << ") vs "
         << b << " (0x" << std::bit_cast<uint64_t>(b) << ")";
}

}  // namespace omega
