#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/random.h"
#include "src/sim/event_queue.h"

namespace omega {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Push(SimTime(30), [&] { order.push_back(3); });
  q.Push(SimTime(10), [&] { order.push_back(1); });
  q.Push(SimTime(20), [&] { order.push_back(2); });
  while (!q.Empty()) {
    SimTime t;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(SimTime(5), [&order, i] { order.push_back(i); });
  }
  while (!q.Empty()) {
    q.Pop(nullptr)();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.Push(SimTime(1), [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelUnknownIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(12345));
}

TEST(EventQueueTest, CancelAfterPopIsNoop) {
  EventQueue q;
  const EventId id = q.Push(SimTime(1), [] {});
  q.Pop(nullptr);
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, PendingCountExcludesCancelled) {
  EventQueue q;
  q.Push(SimTime(1), [] {});
  const EventId id = q.Push(SimTime(2), [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(id);
  EXPECT_EQ(q.PendingCount(), 1u);
}

// Regression: cancelling an already-fired id must not enter the lazy
// cancelled set — a stray entry there would skew PendingCount (with the old
// `heap_.size() - cancelled_.size()` arithmetic it underflowed to a bogus
// huge count once the heap drained).
TEST(EventQueueTest, CancelAfterFireKeepsPendingCountExact) {
  EventQueue q;
  const EventId fired = q.Push(SimTime(1), [] {});
  q.Push(SimTime(2), [] {});
  q.Pop(nullptr)();  // fires `fired`
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_FALSE(q.Cancel(fired));
  EXPECT_EQ(q.PendingCount(), 1u);
  q.Pop(nullptr)();
  EXPECT_EQ(q.PendingCount(), 0u);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, DoubleCancelCountsOnce) {
  EventQueue q;
  const EventId id = q.Push(SimTime(1), [] {});
  q.Push(SimTime(2), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_EQ(q.PendingCount(), 1u);
  q.Pop(nullptr)();
  EXPECT_EQ(q.PendingCount(), 0u);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, PendingCountStableThroughMixedCancelAbuse) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.Push(SimTime(i + 1), [] {}));
  }
  // Fire two, then hammer Cancel on fired, live, unknown and repeat ids.
  q.Pop(nullptr)();
  q.Pop(nullptr)();
  EXPECT_FALSE(q.Cancel(ids[0]));  // already fired
  EXPECT_FALSE(q.Cancel(ids[1]));  // already fired
  EXPECT_TRUE(q.Cancel(ids[4]));
  EXPECT_FALSE(q.Cancel(ids[4]));       // double-cancel
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(999999));       // never pushed
  EXPECT_EQ(q.PendingCount(), 5u);
  size_t fired = 0;
  while (!q.Empty()) {
    q.Pop(nullptr)();
    ++fired;
  }
  EXPECT_EQ(fired, 5u);
  EXPECT_EQ(q.PendingCount(), 0u);
}

TEST(EventQueueTest, PeekSkipsCancelledHead) {
  EventQueue q;
  const EventId id = q.Push(SimTime(1), [] {});
  q.Push(SimTime(5), [] {});
  q.Cancel(id);
  EXPECT_EQ(q.PeekTime(), SimTime(5));
}

TEST(EventQueueTest, InspectorsAreConstCallable) {
  EventQueue q;
  q.Push(SimTime(3), [] {});
  const EventQueue& cq = q;
  EXPECT_FALSE(cq.Empty());
  EXPECT_EQ(cq.PeekTime(), SimTime(3));
  EXPECT_EQ(cq.PendingCount(), 1u);
}

TEST(EventQueueTest, IdsAreUniqueAcrossSlotReuse) {
  // Slots are recycled through a free list; ids must not be. A stale id held
  // across a pop must never cancel the slot's new occupant.
  EventQueue q;
  const EventId first = q.Push(SimTime(1), [] {});
  q.Pop(nullptr);
  bool fired = false;
  const EventId second = q.Push(SimTime(2), [&] { fired = true; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(q.Cancel(first));
  EXPECT_EQ(q.PendingCount(), 1u);
  q.Pop(nullptr)();
  EXPECT_TRUE(fired);
  EXPECT_NE(first, kInvalidEventId);
  EXPECT_NE(second, kInvalidEventId);
}

// Differential regression against a trivially correct reference model: the
// slab/heap implementation must pop the exact same (time, insertion-order)
// sequence as the seed's lazy-tombstone queue under randomized push/cancel/pop
// interleavings, with matching Cancel results and pending counts throughout.
TEST(EventQueueTest, MatchesReferenceModelUnderRandomizedInterleavings) {
  struct RefEvent {
    int64_t time;
    uint64_t seq;
    EventId id;
  };
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    EventQueue q;
    std::vector<RefEvent> ref;  // live events, unordered
    std::vector<EventId> issued;
    uint64_t next_seq = 0;
    Rng rng(seed);
    for (int step = 0; step < 20000; ++step) {
      const double roll = rng.NextDouble();
      if (roll < 0.5 || ref.empty()) {
        const auto t = static_cast<int64_t>(rng.NextBounded(50));
        const EventId id = q.Push(SimTime(t), [] {});
        ref.push_back(RefEvent{t, next_seq++, id});
        issued.push_back(id);
      } else if (roll < 0.75) {
        // Cancel a random issued id (live, fired, or already cancelled).
        const EventId id = issued[rng.NextBounded(issued.size())];
        bool ref_live = false;
        for (size_t i = 0; i < ref.size(); ++i) {
          if (ref[i].id == id) {
            ref[i] = ref.back();
            ref.pop_back();
            ref_live = true;
            break;
          }
        }
        EXPECT_EQ(q.Cancel(id), ref_live);
      } else {
        // Pop: must match the reference minimum by (time, seq).
        size_t best = 0;
        for (size_t i = 1; i < ref.size(); ++i) {
          if (ref[i].time < ref[best].time ||
              (ref[i].time == ref[best].time && ref[i].seq < ref[best].seq)) {
            best = i;
          }
        }
        EXPECT_EQ(q.PeekTime(), SimTime(ref[best].time));
        SimTime when;
        q.Pop(&when);
        EXPECT_EQ(when, SimTime(ref[best].time));
        ref[best] = ref.back();
        ref.pop_back();
      }
      ASSERT_EQ(q.PendingCount(), ref.size()) << "step " << step;
      ASSERT_EQ(q.Empty(), ref.empty());
    }
    // Drain: remaining pops must come out in exact (time, seq) order.
    std::sort(ref.begin(), ref.end(), [](const RefEvent& a, const RefEvent& b) {
      return a.time != b.time ? a.time < b.time : a.seq < b.seq;
    });
    for (const RefEvent& e : ref) {
      SimTime when;
      q.Pop(&when);
      EXPECT_EQ(when, SimTime(e.time));
    }
    EXPECT_TRUE(q.Empty());
  }
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen;
  sim.ScheduleAt(SimTime::FromSeconds(3), [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, SimTime::FromSeconds(3));
  EXPECT_EQ(sim.Now(), SimTime::FromSeconds(3));
}

TEST(SimulatorTest, ScheduleAfterUsesRelativeDelay) {
  Simulator sim;
  std::vector<double> times;
  sim.ScheduleAt(SimTime::FromSeconds(1), [&] {
    times.push_back(sim.Now().ToSeconds());
    sim.ScheduleAfter(Duration::FromSeconds(2),
                      [&] { times.push_back(sim.Now().ToSeconds()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(SimTime::FromSeconds(1), [&] { ++fired; });
  sim.ScheduleAt(SimTime::FromSeconds(2), [&] { ++fired; });
  sim.ScheduleAt(SimTime::FromSeconds(3), [&] { ++fired; });
  const int64_t processed = sim.RunUntil(SimTime::FromSeconds(2));
  EXPECT_EQ(processed, 2);
  EXPECT_EQ(fired, 2);
  // Clock lands exactly on the horizon even though an event remains.
  EXPECT_EQ(sim.Now(), SimTime::FromSeconds(2));
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(SimulatorTest, EventAtHorizonExecutes) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(SimTime::FromSeconds(5), [&] { fired = true; });
  sim.RunUntil(SimTime::FromSeconds(5));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelledEventDoesNotRun) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(SimTime::FromSeconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecuteInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(SimTime(10), [&] {
    order.push_back(1);
    // Same-time follow-up runs after already-queued same-time events.
    sim.ScheduleAt(SimTime(10), [&] { order.push_back(3); });
  });
  sim.ScheduleAt(SimTime(10), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorDeathTest, SchedulingIntoThePastAborts) {
  Simulator sim;
  sim.ScheduleAt(SimTime::FromSeconds(10), [&] {
    sim.ScheduleAt(SimTime::FromSeconds(1), [] {});
  });
  EXPECT_DEATH(sim.Run(), "scheduling into the past");
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator sim;
  int64_t last = -1;
  bool monotone = true;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const auto t = SimTime(static_cast<int64_t>(rng.NextBounded(1000000)));
    sim.ScheduleAt(t, [&, t] {
      if (t.micros() < last) {
        monotone = false;
      }
      last = t.micros();
    });
  }
  sim.Run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace omega
