#include "src/exp/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

namespace omega {
namespace {

TEST(LogSpaceTest, EndpointsAndMonotonicity) {
  const auto v = LogSpace(0.01, 100.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_NEAR(v.front(), 0.01, 1e-12);
  EXPECT_NEAR(v.back(), 100.0, 1e-9);
  EXPECT_NEAR(v[2], 1.0, 1e-9);  // geometric midpoint
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_GT(v[i], v[i - 1]);
  }
}

TEST(LinSpaceTest, EvenSpacing) {
  const auto v = LinSpace(0.0, 10.0, 6);
  ASSERT_EQ(v.size(), 6u);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], 2.0 * static_cast<double>(i), 1e-12);
  }
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer_name", "2.5"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, NumericRows) {
  TablePrinter t({"a", "b"});
  t.AddNumericRow({1.23456789, 1e6});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("1.235"), std::string::npos);
}

TEST(TablePrinterDeathTest, WrongArityAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "Check failed");
}

TEST(PrintCdfTest, RendersRows) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(i);
  }
  std::ostringstream os;
  PrintCdf(os, cdf, "test-cdf", 6);
  const std::string out = os.str();
  EXPECT_NE(out.find("test-cdf"), std::string::npos);
  EXPECT_NE(out.find("n=100"), std::string::npos);
}

TEST(PrintCdfTest, EmptyCdf) {
  Cdf cdf;
  std::ostringstream os;
  PrintCdf(os, cdf, "empty");
  EXPECT_NE(os.str().find("no samples"), std::string::npos);
}

TEST(BenchHorizonTest, DefaultAndOverride) {
  unsetenv("OMEGA_BENCH_DAYS");
  EXPECT_EQ(BenchHorizon(2.0), Duration::FromDays(2.0));
  setenv("OMEGA_BENCH_DAYS", "0.5", 1);
  EXPECT_EQ(BenchHorizon(2.0), Duration::FromDays(0.5));
  unsetenv("OMEGA_BENCH_DAYS");
}

}  // namespace
}  // namespace omega
