#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "src/workload/cluster_config.h"
#include "src/workload/generator.h"

namespace omega {
namespace {

std::vector<Job> SampleJobs() {
  GeneratorOptions opts;
  opts.generate_constraints = true;
  opts.generate_mapreduce_specs = true;
  ClusterConfig cfg = TestCluster();
  cfg.mapreduce_fraction = 0.4;
  cfg.batch_constrained_fraction = 0.4;
  cfg.service_constrained_fraction = 0.6;
  WorkloadGenerator gen(cfg, opts, 31);
  return gen.GenerateArrivals(Duration::FromHours(6));
}

void ExpectJobsEqual(const std::vector<Job>& a, const std::vector<Job>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].num_tasks, b[i].num_tasks);
    EXPECT_EQ(a[i].task_duration, b[i].task_duration);
    EXPECT_DOUBLE_EQ(a[i].task_resources.cpus, b[i].task_resources.cpus);
    EXPECT_DOUBLE_EQ(a[i].task_resources.mem_gb, b[i].task_resources.mem_gb);
    EXPECT_EQ(a[i].constraints, b[i].constraints);
    EXPECT_EQ(a[i].mapreduce, b[i].mapreduce);
  }
}

TEST(TraceTest, RoundTripPreservesEverything) {
  const std::vector<Job> jobs = SampleJobs();
  ASSERT_FALSE(jobs.empty());
  std::stringstream ss;
  WriteTrace(jobs, ss);
  std::vector<Job> parsed;
  std::string error;
  ASSERT_TRUE(ReadTrace(ss, &parsed, &error)) << error;
  ExpectJobsEqual(jobs, parsed);
}

TEST(TraceTest, FileRoundTrip) {
  const std::vector<Job> jobs = SampleJobs();
  const std::string path = ::testing::TempDir() + "/trace_test.trace";
  ASSERT_TRUE(WriteTraceFile(jobs, path));
  std::vector<Job> parsed;
  std::string error;
  ASSERT_TRUE(ReadTraceFile(path, &parsed, &error)) << error;
  ExpectJobsEqual(jobs, parsed);
  std::remove(path.c_str());
}

TEST(TraceTest, WriterSortsBySubmitTime) {
  std::vector<Job> jobs(2);
  jobs[0].id = 1;
  jobs[0].submit_time = SimTime::FromSeconds(100);
  jobs[0].num_tasks = 1;
  jobs[1].id = 2;
  jobs[1].submit_time = SimTime::FromSeconds(5);
  jobs[1].num_tasks = 1;
  std::stringstream ss;
  WriteTrace(jobs, ss);
  std::vector<Job> parsed;
  ASSERT_TRUE(ReadTrace(ss, &parsed, nullptr));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].id, 2u);
  EXPECT_EQ(parsed[1].id, 1u);
}

TEST(TraceTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# a comment\n"
      "\n"
      "job 7 batch 1000 3 2000000 0.5 1.5\n"
      "# trailing comment\n");
  std::vector<Job> parsed;
  std::string error;
  ASSERT_TRUE(ReadTrace(ss, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].id, 7u);
  EXPECT_EQ(parsed[0].type, JobType::kBatch);
  EXPECT_EQ(parsed[0].submit_time, SimTime(1000));
  EXPECT_EQ(parsed[0].num_tasks, 3u);
  EXPECT_EQ(parsed[0].task_duration, Duration(2000000));
}

TEST(TraceTest, RejectsMalformedJob) {
  std::stringstream ss("job 1 batch not_a_number\n");
  std::vector<Job> parsed;
  std::string error;
  EXPECT_FALSE(ReadTrace(ss, &parsed, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(TraceTest, RejectsUnknownJobType) {
  std::stringstream ss("job 1 gpu 0 1 1 1 1\n");
  std::vector<Job> parsed;
  std::string error;
  EXPECT_FALSE(ReadTrace(ss, &parsed, &error));
  EXPECT_NE(error.find("unknown job type"), std::string::npos);
}

TEST(TraceTest, RejectsDuplicateJobId) {
  std::stringstream ss(
      "job 1 batch 0 1 1 1 1\n"
      "job 1 batch 5 1 1 1 1\n");
  std::vector<Job> parsed;
  std::string error;
  EXPECT_FALSE(ReadTrace(ss, &parsed, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(TraceTest, RejectsConstraintForUnknownJob) {
  std::stringstream ss("constraint 99 0 1 eq\n");
  std::vector<Job> parsed;
  std::string error;
  EXPECT_FALSE(ReadTrace(ss, &parsed, &error));
  EXPECT_NE(error.find("unknown job"), std::string::npos);
}

TEST(TraceTest, RejectsUnknownRecordKind) {
  std::stringstream ss("frobnicate 1 2 3\n");
  std::vector<Job> parsed;
  std::string error;
  EXPECT_FALSE(ReadTrace(ss, &parsed, &error));
  EXPECT_NE(error.find("unknown record kind"), std::string::npos);
}

TEST(TraceTest, RejectsBadConstraintComparator) {
  std::stringstream ss(
      "job 1 batch 0 1 1 1 1\n"
      "constraint 1 0 1 maybe\n");
  std::vector<Job> parsed;
  std::string error;
  EXPECT_FALSE(ReadTrace(ss, &parsed, &error));
}

TEST(TraceTest, MissingFileReportsError) {
  std::vector<Job> parsed;
  std::string error;
  EXPECT_FALSE(ReadTraceFile("/nonexistent/path/foo.trace", &parsed, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(TraceTest, EmptyTraceIsValid) {
  std::stringstream ss("# omegatrace v1\n");
  std::vector<Job> parsed;
  ASSERT_TRUE(ReadTrace(ss, &parsed, nullptr));
  EXPECT_TRUE(parsed.empty());
}

}  // namespace
}  // namespace omega
