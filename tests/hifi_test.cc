#include "src/hifi/hifi_simulation.h"

#include <gtest/gtest.h>

#include "src/workload/cluster_config.h"
#include "src/workload/trace.h"

namespace omega {
namespace {

SimOptions ShortRun(uint64_t seed = 1) {
  SimOptions o;
  o.horizon = Duration::FromHours(2);
  o.seed = seed;
  return o;
}

TEST(HifiTest, TraceGenerationDeterministic) {
  const auto t1 = GenerateHifiTrace(TestCluster(), Duration::FromHours(2), 5);
  const auto t2 = GenerateHifiTrace(TestCluster(), Duration::FromHours(2), 5);
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].id, t2[i].id);
    EXPECT_EQ(t1[i].submit_time, t2[i].submit_time);
  }
}

TEST(HifiTest, TraceCarriesConstraintsAndMapReduceSpecs) {
  ClusterConfig cfg = TestCluster();
  cfg.service_constrained_fraction = 0.8;
  cfg.mapreduce_fraction = 0.5;
  const auto trace = GenerateHifiTrace(cfg, Duration::FromHours(6), 5);
  int constrained = 0;
  int mapreduce = 0;
  for (const Job& j : trace) {
    constrained += j.constraints.empty() ? 0 : 1;
    mapreduce += j.mapreduce.has_value() ? 1 : 0;
  }
  EXPECT_GT(constrained, 0);
  EXPECT_GT(mapreduce, 0);
}

TEST(HifiTest, RoundTripTraceMatchesFile) {
  const auto trace = GenerateHifiTrace(TestCluster(), Duration::FromHours(2), 6);
  const std::string path = ::testing::TempDir() + "/hifi_roundtrip.trace";
  const auto replayed = RoundTripTrace(trace, path);
  ASSERT_EQ(replayed.size(), trace.size());
  std::remove(path.c_str());
}

TEST(HifiTest, ReplaySchedulesTrace) {
  auto sim = MakeHifiSimulation(TestCluster(), ShortRun(), SchedulerConfig{},
                                SchedulerConfig{});
  auto trace = GenerateHifiTrace(TestCluster(), Duration::FromHours(2), 7);
  const auto submitted = static_cast<int64_t>(trace.size());
  sim->RunTrace(std::move(trace));
  EXPECT_EQ(sim->JobsSubmittedTotal(), submitted);
  int64_t scheduled =
      sim->service_scheduler().metrics().JobsScheduled(JobType::kService);
  for (uint32_t i = 0; i < sim->NumBatchSchedulers(); ++i) {
    scheduled += sim->batch_scheduler(i).metrics().JobsScheduled(JobType::kBatch);
  }
  EXPECT_GE(scheduled + sim->TotalJobsAbandoned(), submitted - 10);
  EXPECT_TRUE(sim->cell().CheckInvariants());
}

TEST(HifiTest, MachinesCarryAttributes) {
  auto sim = MakeHifiSimulation(TestCluster(), ShortRun(2), SchedulerConfig{},
                                SchedulerConfig{});
  HifiOptions defaults;
  for (MachineId m = 0; m < sim->cell().NumMachines(); ++m) {
    EXPECT_EQ(sim->cell().machine(m).attributes.size(),
              static_cast<size_t>(defaults.num_attribute_keys));
  }
}

TEST(HifiTest, HeadroomPolicyActive) {
  auto sim = MakeHifiSimulation(TestCluster(), ShortRun(3), SchedulerConfig{},
                                SchedulerConfig{});
  EXPECT_EQ(sim->cell().fullness_policy(), FullnessPolicy::kHeadroom);
  const Resources usable = sim->cell().UsableCapacity(0);
  EXPECT_LT(usable.cpus, sim->cell().machine(0).capacity.cpus);
}

TEST(HifiTest, AvailabilityIndexEnabled) {
  auto sim = MakeHifiSimulation(TestCluster(), ShortRun(4), SchedulerConfig{},
                                SchedulerConfig{});
  EXPECT_TRUE(sim->cell().HasAvailabilityIndex());
}

TEST(HifiTest, MultipleBatchSchedulers) {
  HifiOptions hifi;
  hifi.num_batch_schedulers = 3;
  auto sim = MakeHifiSimulation(TestCluster(), ShortRun(5), SchedulerConfig{},
                                SchedulerConfig{}, hifi);
  auto trace = GenerateHifiTrace(TestCluster(), Duration::FromHours(2), 8);
  sim->RunTrace(std::move(trace));
  EXPECT_EQ(sim->NumBatchSchedulers(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_GT(sim->batch_scheduler(i).metrics().JobsScheduled(JobType::kBatch), 0);
  }
}

TEST(HifiTest, HigherInterferenceThanLightweight) {
  // The high-fidelity simulator reports more interference than the
  // lightweight one (§5: constraints + stricter fullness + careful placement).
  // Compare conflicted tasks under identical decision-time settings: the
  // lightweight randomized first fit spreads claims and rarely collides,
  // while best-fit concentration collides often.
  ClusterConfig cfg = TestCluster(64);
  cfg.batch.interarrival_mean_secs = 0.5;
  cfg.service.interarrival_mean_secs = 20.0;
  SchedulerConfig sched;
  sched.batch_times.t_job = Duration::FromSeconds(0.5);
  sched.service_times.t_job = Duration::FromSeconds(5.0);

  SimOptions opts = ShortRun(6);
  OmegaSimulation light(cfg, opts, sched, sched);
  light.Run();

  auto hifi = MakeHifiSimulation(cfg, opts, sched, sched);
  auto trace = GenerateHifiTrace(cfg, opts.horizon, 6);
  hifi->RunTrace(std::move(trace));

  auto conflicts = [](OmegaSimulation& sim) {
    int64_t c = sim.service_scheduler().metrics().TasksConflicted();
    for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
      c += sim.batch_scheduler(i).metrics().TasksConflicted();
    }
    return c;
  };
  EXPECT_GE(conflicts(*hifi), conflicts(light));
}

}  // namespace
}  // namespace omega
