#include "src/common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace omega {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextBoundedApproximatelyUniform) {
  Rng rng(13);
  constexpr uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(kBound)];
  }
  for (uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kSamples / kBound, kSamples * 0.01);
  }
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(17);
  int trues = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) {
      ++trues;
    }
  }
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.3, 0.01);
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
    EXPECT_FALSE(rng.NextBool(-0.5));
    EXPECT_TRUE(rng.NextBool(1.5));
  }
}

TEST(RngTest, NextRangeWithinBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextRange(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.Fork();
  // The child stream should not be a shifted copy of the parent's.
  int matches = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) {
      ++matches;
    }
  }
  EXPECT_EQ(matches, 0);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

}  // namespace
}  // namespace omega
