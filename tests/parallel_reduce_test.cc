// Unit tests for the intra-trial parallelism primitives (DESIGN.md §12):
// WorkerPool dispatch, ParallelForRanges chunking, the deterministic
// FirstMatch / ArgBest reductions, the no-refresh SoA scan, the parallel
// Commit pre-check, and the EpochFlagSet scratch. The reductions' contract —
// bit-identical to the sequential scan for every shard layout and thread
// count — is exercised directly here; the architecture-level differential
// runs live in intra_trial_diff_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/cluster/cell_state.h"
#include "src/common/deterministic_reduce.h"
#include "src/common/parallel_for.h"
#include "src/common/random.h"
#include "src/common/worker_pool.h"
#include "src/hifi/scoring_placer.h"
#include "src/mesos/mesos_simulation.h"
#include "src/scheduler/placement.h"
#include "src/workload/cluster_config.h"
#include "tests/bitwise_eq.h"

namespace omega {
namespace {

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<int> hits(10000, 0);
  pool.Run(hits.size(), [&](size_t i) { hits[i] += 1; });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(WorkerPoolTest, SingleLaneRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<int> hits(100, 0);
  pool.Run(hits.size(), [&](size_t i) { hits[i] += 1; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(WorkerPoolTest, ZeroMeansHardwareConcurrency) {
  WorkerPool pool(0);
  EXPECT_GE(pool.concurrency(), 1u);
  std::vector<int> hits(64, 0);
  pool.Run(hits.size(), [&](size_t i) { hits[i] += 1; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(WorkerPoolTest, EmptyRunIsANoop) {
  WorkerPool pool(4);
  pool.Run(0, [&](size_t) { FAIL() << "fn called for empty range"; });
}

TEST(WorkerPoolTest, RethrowsFirstExceptionAndStaysUsable) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.Run(1000,
                        [&](size_t i) {
                          if (i == 37) {
                            throw std::runtime_error("boom");
                          }
                        }),
               std::runtime_error);
  // The pool must drain cleanly and accept the next generation.
  std::vector<int> hits(256, 0);
  pool.Run(hits.size(), [&](size_t i) { hits[i] += 1; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

// ---------------------------------------------------------------------------
// ParallelForRanges
// ---------------------------------------------------------------------------

TEST(ParallelForRangesTest, ChunksAreAlignedBoundedAndCoverEveryIndex) {
  const size_t n = 1000;
  const size_t grain = 64;
  std::vector<int> covered(n, 0);
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelForRanges(
      n, grain,
      [&](size_t begin, size_t end) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, n);
        ASSERT_LE(end - begin, grain);
        ASSERT_EQ(begin % grain, 0u);
        for (size_t i = begin; i < end; ++i) {
          covered[i] += 1;
        }
        chunks.emplace_back(begin, end);
      },
      /*max_threads=*/1);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(covered[i], 1) << "index " << i;
  }
  // 1000 / 64 -> 15 full chunks plus the 40-element tail.
  EXPECT_EQ(chunks.size(), 16u);
  EXPECT_EQ(chunks.back().second - chunks.back().first, n % grain);
}

TEST(ParallelForRangesTest, CoversEveryIndexMultithreaded) {
  const size_t n = 4096;
  std::vector<int> covered(n, 0);
  ParallelForRanges(
      n, 100,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          covered[i] += 1;  // chunks are disjoint: no two threads share i
        }
      },
      /*max_threads=*/4);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(covered[i], 1) << "index " << i;
  }
}

TEST(ParallelForRangesTest, GrainZeroMeansPerIndexDispatch) {
  const size_t n = 17;
  size_t calls = 0;
  ParallelForRanges(
      n, 0,
      [&](size_t begin, size_t end) {
        EXPECT_EQ(end, begin + 1);
        ++calls;
      },
      /*max_threads=*/1);
  EXPECT_EQ(calls, n);
}

// ---------------------------------------------------------------------------
// ReduceGrain
// ---------------------------------------------------------------------------

TEST(ReduceGrainTest, EnforcesMinimumAndTargetsFourShardsPerLane) {
  // Small inputs collapse to one shard (the sequential scan).
  EXPECT_EQ(ReduceGrain(10, 8), 64u);
  EXPECT_EQ(ReduceGrain(64, 8), 64u);
  // Large inputs: ~4 shards per lane.
  EXPECT_EQ(ReduceGrain(100000, 8, 1), (100000u + 31) / 32);
  // Zero concurrency is treated as one lane.
  EXPECT_EQ(ReduceGrain(1000, 0, 1), 250u);
}

// ---------------------------------------------------------------------------
// DeterministicReducer::FirstMatch
// ---------------------------------------------------------------------------

// Sequential reference: lowest index whose flag is set, else kReduceNotFound.
size_t SequentialFirst(const std::vector<char>& flags) {
  for (size_t i = 0; i < flags.size(); ++i) {
    if (flags[i]) {
      return i;
    }
  }
  return kReduceNotFound;
}

DeterministicReducer::ScanFn FlagScan(const std::vector<char>& flags) {
  return [&flags](size_t begin, size_t end) -> size_t {
    for (size_t i = begin; i < end; ++i) {
      if (flags[i]) {
        return i;
      }
    }
    return kReduceNotFound;
  };
}

TEST(FirstMatchTest, MatchesSequentialAcrossGrainsAndThreadCounts) {
  const size_t n = 1000;
  std::vector<std::vector<char>> patterns;
  patterns.push_back(std::vector<char>(n, 0));  // no match
  for (size_t hit : {size_t{0}, size_t{1}, size_t{499}, n - 1}) {
    std::vector<char> f(n, 0);
    f[hit] = 1;
    patterns.push_back(std::move(f));
  }
  {
    std::vector<char> f(n, 0);  // several matches: lowest must win
    f[700] = f[703] = f[999] = f[64] = 1;
    patterns.push_back(std::move(f));
  }
  DeterministicReducer reducer;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    WorkerPool pool(threads);
    for (const auto& flags : patterns) {
      const size_t want = SequentialFirst(flags);
      for (size_t grain : {size_t{1}, size_t{3}, size_t{64}, size_t{333}, n}) {
        EXPECT_EQ(reducer.FirstMatch(&pool, n, grain, FlagScan(flags)), want)
            << "threads=" << threads << " grain=" << grain;
      }
      // Null pool: plain sequential fallback.
      EXPECT_EQ(reducer.FirstMatch(nullptr, n, 64, FlagScan(flags)), want);
    }
  }
}

TEST(FirstMatchTest, EmptyRangeIsNotFound) {
  DeterministicReducer reducer;
  WorkerPool pool(2);
  const std::vector<char> empty;
  EXPECT_EQ(reducer.FirstMatch(&pool, 0, 64, FlagScan(empty)),
            kReduceNotFound);
}

// ---------------------------------------------------------------------------
// DeterministicReducer::ArgBest
// ---------------------------------------------------------------------------

// Sequential reference: the placer update rule — strictly greater score wins,
// earliest index wins ties; indices with eligible[i] == 0 never win.
DeterministicReducer::Best SequentialArgBest(const std::vector<double>& scores,
                                             const std::vector<char>& eligible) {
  DeterministicReducer::Best best;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!eligible[i]) {
      continue;
    }
    if (best.index == kReduceNotFound || scores[i] > best.score) {
      best.index = i;
      best.score = scores[i];
    }
  }
  return best;
}

DeterministicReducer::BestFn ScoreScan(const std::vector<double>& scores,
                                       const std::vector<char>& eligible) {
  return [&scores, &eligible](size_t begin, size_t end) {
    DeterministicReducer::Best local;
    for (size_t i = begin; i < end; ++i) {
      if (!eligible[i]) {
        continue;
      }
      if (local.index == kReduceNotFound || scores[i] > local.score) {
        local.index = i;
        local.score = scores[i];
      }
    }
    return local;
  };
}

TEST(ArgBestTest, TieResolvesToLowestIndexAcrossShardLayouts) {
  // The maximum appears in three different shards; the earliest occurrence
  // must win for every grain, exactly as the sequential scan resolves it.
  const size_t n = 300;
  std::vector<double> scores(n, 0.5);
  std::vector<char> eligible(n, 1);
  scores[77] = scores[150] = scores[299] = 2.25;
  DeterministicReducer reducer;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    WorkerPool pool(threads);
    for (size_t grain : {size_t{1}, size_t{7}, size_t{64}, n}) {
      const auto best =
          reducer.ArgBest(&pool, n, grain, ScoreScan(scores, eligible));
      EXPECT_EQ(best.index, 77u) << "threads=" << threads << " grain=" << grain;
      EXPECT_EQ(best.score, 2.25);
    }
  }
}

TEST(ArgBestTest, EmptyAndIneligibleShardsAreSkipped) {
  const size_t n = 200;
  std::vector<double> scores(n, 1.0);
  std::vector<char> eligible(n, 0);
  DeterministicReducer reducer;
  WorkerPool pool(4);
  // Nothing eligible anywhere.
  EXPECT_EQ(reducer.ArgBest(&pool, n, 16, ScoreScan(scores, eligible)).index,
            kReduceNotFound);
  EXPECT_EQ(reducer.ArgBest(&pool, 0, 16, ScoreScan(scores, eligible)).index,
            kReduceNotFound);
  // One eligible index in a late shard; every earlier shard reports
  // not-found and must not poison the merge.
  eligible[187] = 1;
  scores[187] = -3.5;  // negative scores are legal for the reducer itself
  const auto best = reducer.ArgBest(&pool, n, 16, ScoreScan(scores, eligible));
  EXPECT_EQ(best.index, 187u);
  EXPECT_EQ(best.score, -3.5);
}

TEST(ArgBestTest, FuzzMatchesSequentialReference) {
  Rng rng(0xC0FFEE);
  DeterministicReducer reducer;
  WorkerPool pool(8);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + rng.NextBounded(500);
    std::vector<double> scores(n);
    std::vector<char> eligible(n);
    for (size_t i = 0; i < n; ++i) {
      // Coarse quantization makes ties frequent.
      scores[i] = static_cast<double>(rng.NextBounded(8)) * 0.125;
      eligible[i] = rng.NextBounded(4) != 0 ? 1 : 0;
    }
    const auto want = SequentialArgBest(scores, eligible);
    const size_t grain = 1 + rng.NextBounded(n);
    const auto got =
        reducer.ArgBest(&pool, n, grain, ScoreScan(scores, eligible));
    ASSERT_EQ(got.index, want.index) << "round " << round << " n=" << n
                                     << " grain=" << grain;
    if (want.index != kReduceNotFound) {
      ASSERT_EQ(got.score, want.score) << "round " << round;
    }
  }
}

// ---------------------------------------------------------------------------
// EpochFlagSet
// ---------------------------------------------------------------------------

TEST(EpochFlagSetTest, InsertContainsResetAndNegativeKeys) {
  EpochFlagSet set;
  EXPECT_FALSE(set.Contains(0));
  set.Insert(3);
  set.Insert(0);
  EXPECT_TRUE(set.Contains(3));
  EXPECT_TRUE(set.Contains(0));
  EXPECT_FALSE(set.Contains(1));
  EXPECT_FALSE(set.Contains(4000));
  set.Insert(-1);  // failure_domain can be "none": never stored
  EXPECT_FALSE(set.Contains(-1));
  set.Reset();
  EXPECT_FALSE(set.Contains(3));
  EXPECT_FALSE(set.Contains(0));
  set.Insert(3);
  EXPECT_TRUE(set.Contains(3));
}

// ---------------------------------------------------------------------------
// FindFirstFitNoRefresh vs FindFirstFit
// ---------------------------------------------------------------------------

TEST(NoRefreshScanTest, MatchesRefreshingScanUnderChurn) {
  const uint32_t n = 1024;
  CellState cell(n, Resources{16.0, 64.0});
  Rng rng(99);
  const Resources small{2.0, 8.0};
  const Resources big{12.0, 48.0};
  for (int round = 0; round < 40; ++round) {
    // Deterministic churn: allocations dirty summaries (stale-high), frees
    // restore them eagerly; both states must scan identically.
    for (int k = 0; k < 200; ++k) {
      const auto m = static_cast<MachineId>(rng.NextBounded(n));
      if (cell.CanFit(m, small)) {
        cell.Allocate(m, small);
      } else if (cell.machine(m).allocated.cpus >= small.cpus) {
        cell.Free(m, small);
      }
    }
    for (const Resources& req : {small, big, Resources{17.0, 1.0}}) {
      const auto begin = static_cast<MachineId>(rng.NextBounded(n));
      // NoRefresh first (it must cope with dirty, stale-high summaries),
      // then the refreshing reference on the same state.
      const MachineId no_refresh = cell.FindFirstFitNoRefresh(begin, n, req);
      const MachineId reference = cell.FindFirstFit(begin, n, req);
      ASSERT_EQ(no_refresh, reference)
          << "round " << round << " begin " << begin;
      // And again with summaries explicitly refreshed (the sharded-scan
      // calling convention).
      cell.RefreshSummaries();
      ASSERT_EQ(cell.FindFirstFitNoRefresh(begin, n, req), reference);
    }
  }
  EXPECT_TRUE(cell.CheckInvariants());
}

// ---------------------------------------------------------------------------
// Parallel Commit pre-check differential
// ---------------------------------------------------------------------------

struct CommitSetup {
  CellState cell;
  std::vector<TaskClaim> claims;
};

// Builds a cell with deterministic pre-load, a claim set captured against a
// snapshot, and post-snapshot churn so some claims are stale (coarse-grained
// conflicts) and some machines are full (fine-grained conflicts). Several
// claims share a machine to exercise pending same-transaction accumulation.
CommitSetup MakeCommitSetup(uint32_t threads) {
  const uint32_t n = 512;
  CommitSetup s{CellState(n, Resources{16.0, 64.0}), {}};
  s.cell.SetIntraTrialParallelism(threads);
  // Below the production default of 256 claims the pre-check stays inline;
  // lower the threshold so this 96-claim transaction takes the parallel
  // branch when a pool is attached.
  s.cell.SetParallelCommitMinClaims(16);
  Rng rng(4242);
  const Resources unit{2.0, 8.0};
  for (int k = 0; k < 800; ++k) {
    const auto m = static_cast<MachineId>(rng.NextBounded(n));
    if (s.cell.CanFit(m, unit)) {
      s.cell.Allocate(m, unit);
    }
  }
  // Claims against the current snapshot; duplicates are intentional.
  for (int k = 0; k < 96; ++k) {
    const auto m = static_cast<MachineId>(rng.NextBounded(n / 4) * 4);
    s.claims.push_back(TaskClaim{m, unit, s.cell.machine(m).seqnum});
  }
  // Post-snapshot churn: bump seqnums and fill some machines.
  for (int k = 0; k < 300; ++k) {
    const auto m = static_cast<MachineId>(rng.NextBounded(n));
    if (s.cell.CanFit(m, Resources{8.0, 32.0})) {
      s.cell.Allocate(m, Resources{8.0, 32.0});
    }
  }
  return s;
}

void ExpectSameCellState(const CellState& a, const CellState& b) {
  ASSERT_EQ(a.NumMachines(), b.NumMachines());
  for (MachineId m = 0; m < a.NumMachines(); ++m) {
    ASSERT_EQ(a.machine(m).seqnum, b.machine(m).seqnum) << "machine " << m;
    ASSERT_EQ(a.machine(m).allocated.cpus, b.machine(m).allocated.cpus)
        << "machine " << m;
    ASSERT_EQ(a.machine(m).allocated.mem_gb, b.machine(m).allocated.mem_gb)
        << "machine " << m;
  }
  EXPECT_EQ(a.TotalAllocated().cpus, b.TotalAllocated().cpus);
  EXPECT_EQ(a.TotalAllocated().mem_gb, b.TotalAllocated().mem_gb);
}

TEST(ParallelCommitTest, PreCheckBitIdenticalAcrossThreadCountsAndModes) {
  for (uint32_t threads : {2u, 8u}) {
    for (ConflictMode conflict :
         {ConflictMode::kFineGrained, ConflictMode::kCoarseGrained}) {
      for (CommitMode commit :
           {CommitMode::kIncremental, CommitMode::kAllOrNothing}) {
        CommitSetup seq = MakeCommitSetup(1);
        CommitSetup par = MakeCommitSetup(threads);
        ASSERT_EQ(seq.claims.size(), par.claims.size());
        ASSERT_GE(seq.claims.size(), 16u);  // above the lowered threshold
        std::vector<TaskClaim> seq_rejected;
        std::vector<TaskClaim> par_rejected;
        const CommitResult a =
            seq.cell.Commit(seq.claims, conflict, commit, &seq_rejected);
        const CommitResult b =
            par.cell.Commit(par.claims, conflict, commit, &par_rejected);
        EXPECT_EQ(a.accepted, b.accepted);
        EXPECT_EQ(a.conflicted, b.conflicted);
        ASSERT_EQ(seq_rejected.size(), par_rejected.size());
        for (size_t i = 0; i < seq_rejected.size(); ++i) {
          EXPECT_EQ(seq_rejected[i].machine, par_rejected[i].machine);
          EXPECT_EQ(seq_rejected[i].seqnum_at_placement,
                    par_rejected[i].seqnum_at_placement);
          EXPECT_EQ(seq_rejected[i].resources, par_rejected[i].resources);
        }
        ExpectSameCellState(seq.cell, par.cell);
        EXPECT_TRUE(par.cell.CheckInvariants());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Placer-level differentials: sequential vs pooled placement on the same
// state must produce the same claims and the same RNG trajectory.
// ---------------------------------------------------------------------------

// Near-full cell with a few scattered holes: random probes are disabled so
// every placement exercises the phase-2 linear sweep.
CellState MakeNearFullCell(uint32_t threads) {
  const uint32_t n = 512;
  CellState cell(n, Resources{16.0, 64.0});
  cell.SetIntraTrialParallelism(threads);
  for (MachineId m = 0; m < n; ++m) {
    const bool hole = m == 3 || m == 200 || m == 201 || m == 340 || m == 511;
    cell.Allocate(m, hole ? Resources{8.0, 32.0} : Resources{15.0, 60.0});
  }
  return cell;
}

TEST(PlacerParallelDifferentialTest, RandomizedFirstFitSweepBitIdentical) {
  for (uint32_t threads : {2u, 8u}) {
    CellState seq_cell = MakeNearFullCell(1);
    CellState par_cell = MakeNearFullCell(threads);
    // The parallel sweep only engages under constraints (without them the
    // pruned sequential sweep is already sublinear); the job carries none,
    // so the predicate is unchanged and both arms must place identically.
    RandomizedFirstFitPlacer seq_placer(/*max_random_probes=*/0,
                                        /*respect_constraints=*/true);
    RandomizedFirstFitPlacer par_placer(/*max_random_probes=*/0,
                                        /*respect_constraints=*/true);
    Job job;
    job.task_resources = Resources{2.0, 8.0};
    job.num_tasks = 6;
    Rng seq_rng(7);
    Rng par_rng(7);
    std::vector<TaskClaim> seq_claims;
    std::vector<TaskClaim> par_claims;
    const uint32_t seq_placed =
        seq_placer.PlaceTasks(seq_cell, job, 6, seq_rng, &seq_claims);
    const uint32_t par_placed =
        par_placer.PlaceTasks(par_cell, job, 6, par_rng, &par_claims);
    EXPECT_EQ(seq_placed, par_placed);
    EXPECT_GT(par_placed, 0u);
    ASSERT_EQ(seq_claims.size(), par_claims.size());
    for (size_t i = 0; i < seq_claims.size(); ++i) {
      EXPECT_EQ(seq_claims[i].machine, par_claims[i].machine) << "claim " << i;
      EXPECT_EQ(seq_claims[i].seqnum_at_placement,
                par_claims[i].seqnum_at_placement);
    }
    // Same number of draws consumed: the streams stay in lockstep.
    EXPECT_EQ(seq_rng.Next(), par_rng.Next());
  }
}

// The regime the parallel sweep exists for: every machine passes the raw
// fit (so the block summaries cannot prune), but only a sparse subset
// satisfies the job's attribute constraint, so the scan walks a long run of
// futile raw-fit hits. The sharded FirstMatch must reject exactly the hits
// the sequential constraint re-check rejects and stop at the same machine.
TEST(PlacerParallelDifferentialTest, ConstraintSweepBitIdentical) {
  for (uint32_t threads : {2u, 8u}) {
    const uint32_t n = 2048;
    CellState seq_cell(n, Resources{16.0, 64.0});
    CellState par_cell(n, Resources{16.0, 64.0});
    par_cell.SetIntraTrialParallelism(threads);
    for (MachineId m = 0; m < n; ++m) {
      // Plenty of headroom everywhere; only every 97th machine carries the
      // attribute value the job demands (97 is coprime with shard grains).
      const std::vector<int32_t> attrs = {m % 97 == 13 ? 7 : 0};
      seq_cell.mutable_machine(m).attributes = attrs;
      par_cell.mutable_machine(m).attributes = attrs;
    }
    RandomizedFirstFitPlacer seq_placer(/*max_random_probes=*/0,
                                        /*respect_constraints=*/true);
    RandomizedFirstFitPlacer par_placer(/*max_random_probes=*/0,
                                        /*respect_constraints=*/true);
    Job job;
    job.task_resources = Resources{2.0, 8.0};
    job.num_tasks = 8;
    job.constraints.push_back(
        PlacementConstraint{/*attribute_key=*/0, /*attribute_value=*/7,
                            /*must_equal=*/true});
    Rng seq_rng(23);
    Rng par_rng(23);
    std::vector<TaskClaim> seq_claims;
    std::vector<TaskClaim> par_claims;
    const uint32_t seq_placed =
        seq_placer.PlaceTasks(seq_cell, job, 8, seq_rng, &seq_claims);
    const uint32_t par_placed =
        par_placer.PlaceTasks(par_cell, job, 8, par_rng, &par_claims);
    EXPECT_EQ(seq_placed, par_placed);
    EXPECT_GT(par_placed, 0u);
    ASSERT_EQ(seq_claims.size(), par_claims.size());
    for (size_t i = 0; i < seq_claims.size(); ++i) {
      EXPECT_EQ(seq_claims[i].machine, par_claims[i].machine) << "claim " << i;
      EXPECT_EQ(par_claims[i].machine % 97, 13u) << "claim " << i;
    }
    EXPECT_EQ(seq_rng.Next(), par_rng.Next());
  }
}

TEST(PlacerParallelDifferentialTest, ScoringPlacerSamplingAndScanBitIdentical) {
  for (uint32_t threads : {2u, 8u}) {
    const uint32_t n = 512;
    CellState seq_cell(n, Resources{16.0, 64.0});
    CellState par_cell(n, Resources{16.0, 64.0});
    par_cell.SetIntraTrialParallelism(threads);
    for (MachineId m = 0; m < n; ++m) {
      // Coarse utilization classes make score ties frequent, so the
      // tie-break (earliest sample position) is genuinely exercised.
      const double u = static_cast<double>(m % 7);
      const Resources load{u * 2.0, u * 8.0};
      seq_cell.Allocate(m, load);
      par_cell.Allocate(m, load);
    }
    ScoringPlacerOptions opts;
    opts.candidate_sample = 32;
    ScoringPlacer seq_placer(opts);
    ScoringPlacer par_placer(opts);
    Job job;
    job.task_resources = Resources{2.0, 8.0};
    job.num_tasks = 8;
    Rng seq_rng(11);
    Rng par_rng(11);
    std::vector<TaskClaim> seq_claims;
    std::vector<TaskClaim> par_claims;
    const uint32_t seq_placed =
        seq_placer.PlaceTasks(seq_cell, job, 8, seq_rng, &seq_claims);
    const uint32_t par_placed =
        par_placer.PlaceTasks(par_cell, job, 8, par_rng, &par_claims);
    EXPECT_EQ(seq_placed, par_placed);
    EXPECT_GT(par_placed, 0u);
    ASSERT_EQ(seq_claims.size(), par_claims.size());
    for (size_t i = 0; i < seq_claims.size(); ++i) {
      EXPECT_EQ(seq_claims[i].machine, par_claims[i].machine) << "claim " << i;
    }
    EXPECT_EQ(seq_rng.Next(), par_rng.Next());
  }
}

TEST(PlacerParallelDifferentialTest, ScoringPlacerFullScanFallbackBitIdentical) {
  // All machines full except two holes a 4-candidate sample is unlikely to
  // draw: the full-scan fallback (FirstMatch over the SoA sweep) runs and
  // must pick the same machine — and burn the same single RNG draw for the
  // start offset — as the sequential reference.
  for (uint32_t threads : {2u, 8u}) {
    CellState seq_cell = MakeNearFullCell(1);
    CellState par_cell = MakeNearFullCell(threads);
    ScoringPlacerOptions opts;
    opts.candidate_sample = 4;
    ScoringPlacer seq_placer(opts);
    ScoringPlacer par_placer(opts);
    Job job;
    job.task_resources = Resources{2.0, 8.0};
    job.num_tasks = 4;
    Rng seq_rng(13);
    Rng par_rng(13);
    std::vector<TaskClaim> seq_claims;
    std::vector<TaskClaim> par_claims;
    const uint32_t seq_placed =
        seq_placer.PlaceTasks(seq_cell, job, 4, seq_rng, &seq_claims);
    const uint32_t par_placed =
        par_placer.PlaceTasks(par_cell, job, 4, par_rng, &par_claims);
    EXPECT_EQ(seq_placed, par_placed);
    EXPECT_GT(par_placed, 0u);
    ASSERT_EQ(seq_claims.size(), par_claims.size());
    for (size_t i = 0; i < seq_claims.size(); ++i) {
      EXPECT_EQ(seq_claims[i].machine, par_claims[i].machine) << "claim " << i;
    }
    EXPECT_EQ(seq_rng.Next(), par_rng.Next());
  }
}

// ---------------------------------------------------------------------------
// Mesos DRF argmin differential: the allocator's PickFramework shards its
// dominant-share scan across the intra-trial pool; a full simulation with
// threads must be bit-identical to the sequential reference.
// ---------------------------------------------------------------------------

TEST(MesosDrfParallelTest, FullSimulationBitIdenticalAcrossThreads) {
  SimOptions sequential;
  sequential.horizon = Duration::FromHours(2);
  sequential.seed = 17;
  SimOptions sharded = sequential;
  sharded.intra_trial_threads = 4;
  MesosSimulation seq(TestCluster(16), sequential, SchedulerConfig{},
                      SchedulerConfig{});
  MesosSimulation par(TestCluster(16), sharded, SchedulerConfig{},
                      SchedulerConfig{});
  seq.Run();
  par.Run();
  auto scheduled = [](MesosSimulation& s) {
    return s.batch_framework().metrics().JobsScheduled(JobType::kBatch) +
           s.service_framework().metrics().JobsScheduled(JobType::kService);
  };
  EXPECT_GT(scheduled(seq), 0);
  EXPECT_EQ(scheduled(seq), scheduled(par));
  EXPECT_EQ(seq.JobsSubmittedTotal(), par.JobsSubmittedTotal());
  EXPECT_EQ(seq.TotalJobsAbandoned(), par.TotalJobsAbandoned());
  EXPECT_TRUE(SameBits(
      seq.batch_framework().metrics().MeanWait(JobType::kBatch),
      par.batch_framework().metrics().MeanWait(JobType::kBatch)));
  EXPECT_TRUE(SameBits(
      seq.service_framework().metrics().MeanWait(JobType::kService),
      par.service_framework().metrics().MeanWait(JobType::kService)));
  EXPECT_TRUE(SameBits(seq.allocator().DominantShare(&seq.batch_framework()),
                       par.allocator().DominantShare(&par.batch_framework())));
  uint64_t seq_sum = 0;
  uint64_t par_sum = 0;
  for (MachineId m = 0; m < seq.cell().NumMachines(); ++m) {
    seq_sum += seq.cell().machine(m).seqnum;
    par_sum += par.cell().machine(m).seqnum;
  }
  EXPECT_EQ(seq_sum, par_sum);
}

}  // namespace
}  // namespace omega
