#include "src/common/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace omega {
namespace {

// Empirical mean over many samples should match the analytic Mean() for each
// distribution family (property-style check, parameterized over instances).
struct MeanCase {
  const char* name;
  std::shared_ptr<const Distribution> dist;
  double tolerance_frac;  // relative tolerance on the mean
};

class DistributionMeanTest : public ::testing::TestWithParam<MeanCase> {};

TEST_P(DistributionMeanTest, EmpiricalMeanMatchesAnalytic) {
  const MeanCase& c = GetParam();
  Rng rng(12345);
  const int n = 400000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += c.dist->Sample(rng);
  }
  const double empirical = sum / n;
  const double analytic = c.dist->Mean();
  EXPECT_NEAR(empirical, analytic,
              std::abs(analytic) * c.tolerance_frac + 1e-9)
      << "for " << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, DistributionMeanTest,
    ::testing::Values(
        MeanCase{"constant", std::make_shared<ConstantDist>(3.5), 0.0},
        MeanCase{"uniform", std::make_shared<UniformDist>(2.0, 10.0), 0.01},
        MeanCase{"exponential", std::make_shared<ExponentialDist>(7.0), 0.02},
        MeanCase{"lognormal_narrow", std::make_shared<LogNormalDist>(5.0, 0.5),
                 0.02},
        MeanCase{"lognormal_wide", std::make_shared<LogNormalDist>(100.0, 1.5),
                 0.10},
        MeanCase{"pareto", std::make_shared<BoundedParetoDist>(1.0, 100.0, 1.5),
                 0.03},
        MeanCase{"pareto_heavy",
                 std::make_shared<BoundedParetoDist>(1.0, 1000.0, 0.9), 0.10}),
    [](const ::testing::TestParamInfo<MeanCase>& info) {
      return info.param.name;
    });

TEST(ExponentialDistTest, AllSamplesPositive) {
  ExponentialDist d(2.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(d.Sample(rng), 0.0);
  }
}

TEST(BoundedParetoDistTest, SamplesWithinBounds) {
  BoundedParetoDist d(2.0, 50.0, 1.1);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const double x = d.Sample(rng);
    EXPECT_GE(x, 2.0 - 1e-9);
    EXPECT_LE(x, 50.0 + 1e-9);
  }
}

TEST(BoundedParetoDistTest, HeavyTailHasLargeSamples) {
  BoundedParetoDist d(1.0, 10000.0, 0.8);
  Rng rng(3);
  double max_seen = 0.0;
  for (int i = 0; i < 100000; ++i) {
    max_seen = std::max(max_seen, d.Sample(rng));
  }
  EXPECT_GT(max_seen, 1000.0);
}

TEST(LogNormalDistTest, MedianBelowMean) {
  // Log-normals are right-skewed: the median exp(mu) is below the mean.
  LogNormalDist d(10.0, 1.0);
  Rng rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 100001; ++i) {
    samples.push_back(d.Sample(rng));
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_LT(samples[samples.size() / 2], 10.0);
}

TEST(EmpiricalDistTest, SamplesFollowCdfPoints) {
  EmpiricalDist d({{1.0, 0.25}, {2.0, 0.5}, {10.0, 1.0}});
  Rng rng(5);
  int below_2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = d.Sample(rng);
    EXPECT_GE(x, 1.0 - 1e-9);
    EXPECT_LE(x, 10.0 + 1e-9);
    if (x <= 2.0) {
      ++below_2;
    }
  }
  EXPECT_NEAR(static_cast<double>(below_2) / n, 0.5, 0.01);
}

TEST(EmpiricalDistTest, MeanOfPiecewiseLinear) {
  // Uniform over [0, 10] expressed as an empirical CDF: mean 5.
  EmpiricalDist d({{0.0, 0.0}, {10.0, 1.0}});
  EXPECT_NEAR(d.Mean(), 5.0, 1e-9);
}

TEST(ClampedDistTest, RespectsBounds) {
  auto inner = std::make_shared<LogNormalDist>(10.0, 2.0);
  ClampedDist d(inner, 1.0, 20.0);
  Rng rng(6);
  for (int i = 0; i < 50000; ++i) {
    const double x = d.Sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 20.0);
  }
}

TEST(MixtureDistTest, WeightsRespected) {
  MixtureDist d({{0.25, std::make_shared<ConstantDist>(1.0)},
                 {0.75, std::make_shared<ConstantDist>(2.0)}});
  Rng rng(7);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (d.Sample(rng) == 1.0) {
      ++ones;
    }
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.25, 0.01);
  EXPECT_NEAR(d.Mean(), 1.75, 1e-9);
}

TEST(MixtureDistTest, UnnormalizedWeightsNormalize) {
  MixtureDist d({{2.0, std::make_shared<ConstantDist>(4.0)},
                 {6.0, std::make_shared<ConstantDist>(8.0)}});
  EXPECT_NEAR(d.Mean(), 0.25 * 4.0 + 0.75 * 8.0, 1e-9);
}

}  // namespace
}  // namespace omega
