// SoA placement core differential tests (DESIGN.md §11).
//
// The SoA cell keeps contiguous per-resource arrays alongside the Machine
// structs and routes no-fit scans through CellState::FindFirstFit. The hard
// design constraint mirrors cohort batching's: with `soa_cell` on or off,
// every simulation must produce exactly the same cell state, metrics, and
// trace event stream. The differential tests here run each architecture both
// ways and compare fingerprints bitwise — including gang aborts, machine
// failures/repairs, and preemption — and re-run the 27-trial fig5 grid under
// both settings.
#include <gtest/gtest.h>

#include "tests/bitwise_eq.h"

#include <memory>
#include <vector>

#include "bench/fig56_sweep.h"
#include "src/cluster/cell_state.h"
#include "src/hifi/hifi_simulation.h"
#include "src/mapreduce/mr_scheduler.h"
#include "src/mapreduce/policy.h"
#include "src/mesos/mesos_simulation.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/cluster_simulation.h"
#include "src/scheduler/monolithic.h"
#include "src/trace/trace_recorder.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

// ---------------------------------------------------------------------------
// Differential fingerprinting: run an architecture with the SoA scan path on
// and off, demand bitwise-equal cell state, counters, and trace streams.
// ---------------------------------------------------------------------------

struct SimFingerprint {
  std::vector<uint64_t> seqnums;
  std::vector<double> allocated;  // cpus, mem per machine, exact
  double total_cpus = 0.0;
  double total_mem = 0.0;
  int64_t submitted = 0;
  int64_t preempted = 0;
  int64_t failures = 0;
  int64_t killed = 0;
  std::vector<TraceEvent> events;
  std::vector<int64_t> event_counts;
};

SimFingerprint Fingerprint(const ClusterSimulation& sim,
                           const TraceRecorder& trace) {
  SimFingerprint fp;
  const CellState& cell = sim.cell();
  for (MachineId m = 0; m < cell.NumMachines(); ++m) {
    fp.seqnums.push_back(cell.machine(m).seqnum);
    fp.allocated.push_back(cell.machine(m).allocated.cpus);
    fp.allocated.push_back(cell.machine(m).allocated.mem_gb);
  }
  fp.total_cpus = cell.TotalAllocated().cpus;
  fp.total_mem = cell.TotalAllocated().mem_gb;
  fp.submitted = sim.JobsSubmittedTotal();
  fp.preempted = sim.TasksPreempted();
  fp.failures = sim.MachineFailures();
  fp.killed = sim.TasksKilledByFailures();
  trace.ForEachRetained(
      [&fp](const TraceEvent& e) { fp.events.push_back(e); });
  for (size_t t = 0; t < kNumTraceEventTypes; ++t) {
    fp.event_counts.push_back(trace.CountOf(static_cast<TraceEventType>(t)));
    fp.event_counts.push_back(trace.SumArg0(static_cast<TraceEventType>(t)));
  }
  return fp;
}

void ExpectIdentical(const SimFingerprint& soa, const SimFingerprint& aos) {
  EXPECT_EQ(soa.seqnums, aos.seqnums);
  EXPECT_EQ(soa.allocated, aos.allocated);  // bitwise via operator==
  EXPECT_EQ(soa.total_cpus, aos.total_cpus);
  EXPECT_EQ(soa.total_mem, aos.total_mem);
  EXPECT_EQ(soa.submitted, aos.submitted);
  EXPECT_EQ(soa.preempted, aos.preempted);
  EXPECT_EQ(soa.failures, aos.failures);
  EXPECT_EQ(soa.killed, aos.killed);
  EXPECT_EQ(soa.event_counts, aos.event_counts);
  ASSERT_EQ(soa.events.size(), aos.events.size());
  for (size_t i = 0; i < soa.events.size(); ++i) {
    const TraceEvent& a = soa.events[i];
    const TraceEvent& b = aos.events[i];
    ASSERT_TRUE(a.time_us == b.time_us && a.type == b.type &&
                a.track == b.track && a.job == b.job &&
                a.machine == b.machine && a.seqnum == b.seqnum &&
                a.arg0 == b.arg0 && a.arg1 == b.arg1)
        << "trace streams diverge at event " << i;
  }
}

// Runs `make_and_run(options, trace)` twice — SoA scan on, then the AoS
// reference path — and asserts bitwise-identical outcomes.
template <typename MakeAndRun>
void DiffSoAPaths(SimOptions options, MakeAndRun&& make_and_run) {
  options.soa_cell = true;
  TraceRecorder trace_soa;
  const SimFingerprint soa = make_and_run(options, trace_soa);
  options.soa_cell = false;
  TraceRecorder trace_aos;
  const SimFingerprint aos = make_and_run(options, trace_aos);
  ExpectIdentical(soa, aos);
}

SimOptions DiffRun(uint64_t seed, double hours = 3.0) {
  SimOptions o;
  o.horizon = Duration::FromHours(hours);
  o.seed = seed;
  return o;
}

TEST(SoADifferentialTest, MonolithicBitIdentical) {
  for (uint64_t seed : {1u, 7u}) {
    DiffSoAPaths(DiffRun(seed), [](const SimOptions& o, TraceRecorder& t) {
      MonolithicSimulation sim(TestCluster(64), o, SchedulerConfig{});
      sim.SetTraceRecorder(&t);
      sim.Run();
      EXPECT_TRUE(sim.cell().CheckInvariants());
      return Fingerprint(sim, t);
    });
  }
}

TEST(SoADifferentialTest, OmegaMultiSchedulerBitIdentical) {
  // Multiple schedulers commit against the shared cell, so this exercises
  // conflicting transactions and retries: the SoA no-fit scan must skip only
  // machines the AoS reference scan would also reject.
  for (uint64_t seed : {2u, 11u}) {
    DiffSoAPaths(DiffRun(seed), [](const SimOptions& o, TraceRecorder& t) {
      OmegaSimulation sim(TestCluster(64), o, SchedulerConfig{},
                          SchedulerConfig{}, 3);
      sim.SetTraceRecorder(&t);
      sim.Run();
      EXPECT_TRUE(sim.cell().CheckInvariants());
      return Fingerprint(sim, t);
    });
  }
}

TEST(SoADifferentialTest, OmegaGangSchedulingBitIdentical) {
  // All-or-nothing commits: gang aborts roll entire transactions back, so
  // the SoA mirrors see allocate-then-free churn at high rates.
  SchedulerConfig gang;
  gang.commit_mode = CommitMode::kAllOrNothing;
  gang.conflict_mode = ConflictMode::kCoarseGrained;
  DiffSoAPaths(DiffRun(3), [&gang](const SimOptions& o, TraceRecorder& t) {
    OmegaSimulation sim(TestCluster(64), o, gang, gang, 3);
    sim.SetTraceRecorder(&t);
    sim.Run();
    EXPECT_TRUE(sim.cell().CheckInvariants());
    return Fingerprint(sim, t);
  });
}

TEST(SoADifferentialTest, MesosFrameworksBitIdentical) {
  for (uint64_t seed : {4u, 13u}) {
    DiffSoAPaths(DiffRun(seed), [](const SimOptions& o, TraceRecorder& t) {
      MesosSimulation sim(TestCluster(64), o, SchedulerConfig{},
                          SchedulerConfig{});
      sim.SetTraceRecorder(&t);
      sim.Run();
      EXPECT_TRUE(sim.cell().CheckInvariants());
      return Fingerprint(sim, t);
    });
  }
}

TEST(SoADifferentialTest, MapReduceBitIdentical) {
  ClusterConfig cfg = TestCluster(64);
  cfg.mapreduce_fraction = 0.3;
  MapReducePolicyOptions policy;
  policy.policy = MapReducePolicy::kMaxParallelism;
  DiffSoAPaths(DiffRun(5), [&](const SimOptions& o, TraceRecorder& t) {
    MapReduceSimulation sim(cfg, o, SchedulerConfig{}, SchedulerConfig{},
                            policy);
    sim.SetTraceRecorder(&t);
    sim.Run();
    EXPECT_TRUE(sim.cell().CheckInvariants());
    return Fingerprint(sim, t);
  });
}

TEST(SoADifferentialTest, HifiReplayBitIdentical) {
  // The high-fidelity configuration enables the availability index; when the
  // index covers a request the SoA sweep never runs, and the ScoringPlacer's
  // non-index fallback must visit candidates in the same first-fit order.
  const ClusterConfig cfg = TestCluster(64);
  const std::vector<Job> trace_jobs =
      GenerateHifiTrace(cfg, Duration::FromHours(3), 6);
  DiffSoAPaths(DiffRun(6), [&](const SimOptions& o, TraceRecorder& t) {
    auto sim = MakeHifiSimulation(cfg, o, SchedulerConfig{}, SchedulerConfig{});
    sim->SetTraceRecorder(&t);
    sim->RunTrace(trace_jobs);
    EXPECT_TRUE(sim->cell().CheckInvariants());
    return Fingerprint(*sim, t);
  });
}

TEST(SoADifferentialTest, MachineFailuresBitIdentical) {
  // Failures and repairs change usable capacity, which the SoA fit arrays
  // must track exactly (downtime reservations flow through Allocate/Free).
  for (uint64_t seed : {8u, 21u}) {
    SimOptions o = DiffRun(seed, 6.0);
    o.track_running_tasks = true;
    o.machine_failure_rate_per_day = 12.0;
    o.machine_repair_time = Duration::FromMinutes(30);
    DiffSoAPaths(o, [](const SimOptions& opts, TraceRecorder& t) {
      OmegaSimulation sim(TestCluster(64), opts, SchedulerConfig{},
                          SchedulerConfig{});
      sim.SetTraceRecorder(&t);
      sim.Run();
      EXPECT_GT(sim.MachineFailures(), 0);
      EXPECT_TRUE(sim.cell().CheckInvariants());
      return Fingerprint(sim, t);
    });
  }
}

TEST(SoADifferentialTest, PreemptionBitIdentical) {
  // A small saturated cell forces the service scheduler to preempt batch
  // tasks; victim selection happens after placement, so any divergence in
  // the scan's candidate order would show up as different victims.
  ClusterConfig cfg = TestCluster(8);
  cfg.initial_utilization = 0.05;
  cfg.batch.interarrival_mean_secs = 2.0;
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(8.0);
  cfg.batch.cpus_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.mem_gb_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.task_duration_secs = std::make_shared<ConstantDist>(36000.0);
  cfg.service.interarrival_mean_secs = 900.0;
  cfg.service.tasks_per_job = std::make_shared<ConstantDist>(4.0);
  cfg.service.cpus_per_task = std::make_shared<ConstantDist>(2.0);
  cfg.service.mem_gb_per_task = std::make_shared<ConstantDist>(2.0);
  cfg.service.task_duration_secs = std::make_shared<ConstantDist>(36000.0);
  SchedulerConfig batch;
  batch.max_attempts = 20;
  batch.no_progress_backoff = Duration::FromSeconds(5);
  SchedulerConfig service = batch;
  service.enable_preemption = true;
  SimOptions o = DiffRun(9, 6.0);
  o.track_running_tasks = true;
  DiffSoAPaths(o, [&](const SimOptions& opts, TraceRecorder& t) {
    OmegaSimulation sim(cfg, opts, batch, service);
    sim.SetTraceRecorder(&t);
    sim.Run();
    EXPECT_GT(sim.TasksPreempted(), 0);
    EXPECT_TRUE(sim.cell().CheckInvariants());
    return Fingerprint(sim, t);
  });
}

// ---------------------------------------------------------------------------
// The 27-trial fig5 grid (3 architectures x 3 clusters x 3 t_job points)
// re-run under soa_cell on and off: every result field must match bitwise.
// The existing sweep_test goldens already pin the soa-on numbers to the
// pre-SoA seed values; this check closes the loop on the off path too.
// ---------------------------------------------------------------------------

TEST(SoADifferentialTest, Fig5SweepBitIdenticalWithSoAOnAndOff) {
  const Duration horizon = Duration::FromDays(0.004);
  SimOptions soa_on;
  soa_on.soa_cell = true;
  SimOptions soa_off;
  soa_off.soa_cell = false;
  SweepRunner runner_on("test_fig5_soa_on", kFig56BaseSeed, 1);
  const auto on = RunFig56Sweep(horizon, runner_on, /*tjob_points=*/3, soa_on);
  SweepRunner runner_off("test_fig5_soa_off", kFig56BaseSeed, 1);
  const auto off =
      RunFig56Sweep(horizon, runner_off, /*tjob_points=*/3, soa_off);
  ASSERT_EQ(on.size(), 27u);
  ASSERT_EQ(on.size(), off.size());
  for (size_t i = 0; i < on.size(); ++i) {
    const SweepResult& a = on[i];
    const SweepResult& b = off[i];
    EXPECT_EQ(a.arch, b.arch) << "trial " << i;
    EXPECT_EQ(a.cluster, b.cluster) << "trial " << i;
    EXPECT_TRUE(SameBits(a.t_job_secs, b.t_job_secs)) << "trial " << i;
    EXPECT_TRUE(SameBits(a.batch_wait, b.batch_wait)) << "trial " << i;
    EXPECT_TRUE(SameBits(a.service_wait, b.service_wait)) << "trial " << i;
    EXPECT_TRUE(SameBits(a.batch_busy, b.batch_busy)) << "trial " << i;
    EXPECT_TRUE(SameBits(a.batch_busy_mad, b.batch_busy_mad)) << "trial " << i;
    EXPECT_TRUE(SameBits(a.service_busy, b.service_busy)) << "trial " << i;
    EXPECT_TRUE(SameBits(a.service_busy_mad, b.service_busy_mad)) << "trial " << i;
    EXPECT_EQ(a.abandoned, b.abandoned) << "trial " << i;
  }
}

}  // namespace
}  // namespace omega
