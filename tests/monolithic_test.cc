#include "src/scheduler/monolithic.h"

#include <gtest/gtest.h>

#include "src/workload/cluster_config.h"

namespace omega {
namespace {

SimOptions ShortRun(uint64_t seed = 1) {
  SimOptions o;
  o.horizon = Duration::FromHours(4);
  o.seed = seed;
  return o;
}

TEST(MonolithicTest, SchedulesWholeWorkload) {
  MonolithicSimulation sim(TestCluster(), ShortRun(), SchedulerConfig{});
  sim.Run();
  const auto& m = sim.scheduler().metrics();
  const int64_t submitted = sim.JobsSubmittedTotal();
  EXPECT_GT(submitted, 100);
  EXPECT_EQ(m.JobsScheduled(JobType::kBatch) + m.JobsScheduled(JobType::kService) +
                m.JobsAbandonedTotal() +
                static_cast<int64_t>(sim.scheduler().QueueDepth()) +
                (sim.scheduler().busy() ? 1 : 0),
            submitted);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(MonolithicTest, NoConflictsEver) {
  MonolithicSimulation sim(TestCluster(), ShortRun(2), SchedulerConfig{});
  sim.Run();
  EXPECT_EQ(sim.scheduler().metrics().TasksConflicted(), 0);
  EXPECT_EQ(sim.scheduler().metrics().TotalConflictedAttempts(), 0);
}

TEST(MonolithicTest, DeterministicAcrossRuns) {
  MonolithicSimulation sim1(TestCluster(), ShortRun(3), SchedulerConfig{});
  MonolithicSimulation sim2(TestCluster(), ShortRun(3), SchedulerConfig{});
  sim1.Run();
  sim2.Run();
  EXPECT_EQ(sim1.JobsSubmittedTotal(), sim2.JobsSubmittedTotal());
  EXPECT_EQ(sim1.scheduler().metrics().JobsScheduled(JobType::kBatch),
            sim2.scheduler().metrics().JobsScheduled(JobType::kBatch));
  EXPECT_DOUBLE_EQ(sim1.scheduler().metrics().MeanWait(JobType::kBatch),
                   sim2.scheduler().metrics().MeanWait(JobType::kBatch));
}

TEST(MonolithicTest, BusynessGrowsWithDecisionTime) {
  SchedulerConfig fast;
  SchedulerConfig slow;
  slow.batch_times.t_job = Duration::FromSeconds(1.0);
  slow.service_times.t_job = Duration::FromSeconds(1.0);
  MonolithicSimulation sim_fast(TestCluster(), ShortRun(4), fast);
  MonolithicSimulation sim_slow(TestCluster(), ShortRun(4), slow);
  sim_fast.Run();
  sim_slow.Run();
  EXPECT_GT(sim_slow.scheduler().metrics().Busyness(sim_slow.EndTime()).mean,
            sim_fast.scheduler().metrics().Busyness(sim_fast.EndTime()).mean);
}

TEST(MonolithicTest, HeadOfLineBlocking) {
  // Single-path with slow decisions for everyone: batch jobs queue behind
  // service jobs, so batch wait time explodes relative to the multi-path
  // configuration with a fast batch path (§4.1).
  SchedulerConfig single_path;
  single_path.batch_times.t_job = Duration::FromSeconds(20.0);
  single_path.service_times.t_job = Duration::FromSeconds(20.0);

  SchedulerConfig multi_path;
  multi_path.batch_times.t_job = Duration::FromSeconds(0.1);
  multi_path.service_times.t_job = Duration::FromSeconds(20.0);

  MonolithicSimulation single(TestCluster(), ShortRun(5), single_path);
  MonolithicSimulation multi(TestCluster(), ShortRun(5), multi_path);
  single.Run();
  multi.Run();
  EXPECT_GT(single.scheduler().metrics().MeanWait(JobType::kBatch),
            10.0 * multi.scheduler().metrics().MeanWait(JobType::kBatch));
}

TEST(MonolithicTest, WaitTimeIsUntilFirstAttempt) {
  // With a nearly idle scheduler, wait times should be ~0 even though
  // decision times are long (wait measures queueing, not deciding; §4).
  ClusterConfig cfg = TestCluster();
  cfg.batch.interarrival_mean_secs = 500.0;
  cfg.service.interarrival_mean_secs = 1000.0;
  SchedulerConfig sched;
  sched.batch_times.t_job = Duration::FromSeconds(30.0);
  MonolithicSimulation sim(cfg, ShortRun(6), sched);
  sim.Run();
  EXPECT_LT(sim.scheduler().metrics().MeanWait(JobType::kBatch), 10.0);
}

TEST(MonolithicTest, AbandonsAfterMaxAttempts) {
  // A cluster too small for its workload: jobs larger than the cell burn
  // their 1,000 attempts and are abandoned.
  ClusterConfig cfg = TestCluster(2);
  cfg.initial_utilization = 0.9;
  cfg.batch.interarrival_mean_secs = 10.0;
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(500.0);
  cfg.batch.cpus_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.mem_gb_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.task_duration_secs = std::make_shared<ConstantDist>(100000.0);
  SchedulerConfig sched;
  sched.max_attempts = 5;
  sched.no_progress_backoff = Duration::FromSeconds(1);
  MonolithicSimulation sim(cfg, ShortRun(7), sched);
  sim.Run();
  EXPECT_GT(sim.scheduler().metrics().JobsAbandonedTotal(), 0);
}

TEST(MonolithicTest, ResourceLimitCapsHeldResources) {
  ClusterConfig cfg = TestCluster();
  SchedulerConfig sched;
  // A tiny limit: nothing sizable can be held, so most jobs are abandoned.
  sched.resource_limit = Resources{1.0, 4.0};
  sched.max_attempts = 3;
  sched.no_progress_backoff = Duration::FromSeconds(1);
  MonolithicSimulation sim(cfg, ShortRun(8), sched);
  sim.Run();
  // The scheduler never holds more than the limit's worth of running tasks.
  EXPECT_LE(sim.cell().TotalAllocated().cpus,
            1.0 + cfg.num_machines * cfg.machine_capacity.cpus *
                      cfg.initial_utilization);
  EXPECT_GT(sim.scheduler().metrics().JobsAbandonedTotal(), 0);
}

TEST(MonolithicTest, UtilizationSeriesRecorded) {
  SimOptions opts = ShortRun(9);
  opts.utilization_sample_interval = Duration::FromMinutes(10);
  MonolithicSimulation sim(TestCluster(), opts, SchedulerConfig{});
  sim.Run();
  const auto& series = sim.utilization_series();
  ASSERT_GT(series.size(), 10u);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].time_hours, series[i - 1].time_hours);
    EXPECT_GE(series[i].cpu, 0.0);
    EXPECT_LE(series[i].cpu, 1.0);
  }
}

}  // namespace
}  // namespace omega
