// Tests for the deterministic parallel sweep engine: substream derivation,
// trial-index ordering, thread-count invariance of a fig5-style sweep, merge
// helpers, and the BENCH_<figure>.json output.
#include "src/exp/sweep.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "bench/fig56_sweep.h"
#include "src/common/random.h"
#include "tests/bitwise_eq.h"

namespace omega {
namespace {

TEST(SubstreamSeedTest, PureAndInjectiveOverSmallIndexRange) {
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 4096; ++i) {
    const uint64_t s = SubstreamSeed(7, i);
    EXPECT_EQ(s, SubstreamSeed(7, i)) << "must be pure";
    seeds.insert(s);
  }
  EXPECT_EQ(seeds.size(), 4096u) << "substreams must not collide";
}

TEST(SubstreamSeedTest, DependsOnBaseSeed) {
  EXPECT_NE(SubstreamSeed(1, 0), SubstreamSeed(2, 0));
  EXPECT_NE(SubstreamSeed(1, 5), SubstreamSeed(2, 5));
}

TEST(SubstreamSeedTest, StreamsAreStatisticallyIndependent) {
  // Adjacent substreams must not produce correlated output: check that the
  // first draws of 1000 adjacent substreams look uniform in [0,1).
  RunningStats first_draws;
  for (uint64_t i = 0; i < 1000; ++i) {
    Rng rng(SubstreamSeed(123, i));
    first_draws.Add(rng.NextDouble());
  }
  EXPECT_NEAR(first_draws.mean(), 0.5, 0.05);
  EXPECT_NEAR(first_draws.stddev(), 0.2887, 0.03);
}

TEST(SweepRunnerTest, ResultsComeBackInTrialIndexOrder) {
  SweepRunner runner("test_order", 1, 4);
  const auto results = runner.Run(
      257, [](const TrialContext& ctx) { return ctx.index * 10; });
  ASSERT_EQ(results.size(), 257u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * 10);
  }
}

TEST(SweepRunnerTest, ContextSeedsMatchSubstreamDerivation) {
  SweepRunner runner("test_seeds", 77, 2);
  const auto seeds = runner.Run(
      16, [](const TrialContext& ctx) {
        EXPECT_EQ(ctx.base_seed, 77u);
        return ctx.seed;
      });
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], SubstreamSeed(77, i));
  }
}

TEST(SweepRunnerTest, RecordsPerTrialAndTotalTiming) {
  SweepRunner runner("test_timing", 1, 2);
  runner.Run(8, [](const TrialContext& ctx) {
    // A sliver of real work so per-trial clocks tick.
    Rng rng(ctx.seed);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
      sum += rng.NextDouble();
    }
    return sum;
  });
  const SweepReport& rep = runner.report();
  EXPECT_EQ(rep.trials, 8u);
  EXPECT_EQ(rep.threads, 2u);
  ASSERT_EQ(rep.trial_wall_seconds.size(), 8u);
  EXPECT_GT(rep.wall_seconds, 0.0);
  for (double s : rep.trial_wall_seconds) {
    EXPECT_GE(s, 0.0);
  }
  EXPECT_GT(rep.TrialSecondsTotal(), 0.0);
}

TEST(SweepRunnerTest, TrialExceptionSurfacesOnCaller) {
  SweepRunner runner("test_throw", 1, 4);
  EXPECT_THROW(runner.Run(64,
                          [](const TrialContext& ctx) -> int {
                            if (ctx.index == 13) {
                              throw std::runtime_error("trial 13");
                            }
                            return 0;
                          }),
               std::runtime_error);
}

TEST(MergeHelpersTest, FoldInTrialIndexOrder) {
  std::vector<RunningStats> stats(3);
  std::vector<Cdf> cdfs(3);
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 5; ++i) {
      stats[t].Add(t * 5 + i);
      cdfs[t].Add(t * 5 + i);
    }
  }
  const RunningStats merged = MergeTrialStats(stats);
  EXPECT_EQ(merged.count(), 15);
  EXPECT_DOUBLE_EQ(merged.mean(), 7.0);
  EXPECT_DOUBLE_EQ(merged.min(), 0.0);
  EXPECT_DOUBLE_EQ(merged.max(), 14.0);
  const Cdf cdf = MergeTrialCdfs(cdfs);
  EXPECT_EQ(cdf.count(), 15u);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 7.0);
}

// The acceptance bar for the sweep engine: a fig5-style sweep must produce
// bit-identical results (and bit-identical merged statistics) no matter how
// many worker threads shard the grid.
TEST(SweepDeterminismTest, Fig5SweepIdenticalAcrossThreadCounts) {
  const Duration horizon = Duration::FromDays(0.004);
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  // Always include an oversubscribed 4-thread leg: containers can report a
  // hardware concurrency of 1, which would otherwise duplicate the serial leg.
  const std::set<size_t> thread_counts{1, 2, 4, hw};
  std::vector<std::vector<SweepResult>> runs;
  std::vector<double> merged_means;
  for (size_t threads : thread_counts) {
    SweepRunner runner("test_fig5_determinism", kFig56BaseSeed, threads);
    runs.push_back(RunFig56Sweep(horizon, runner, /*tjob_points=*/3));
    RunningStats merged;
    for (const SweepResult& r : runs.back()) {
      merged.Add(r.batch_wait);
      merged.Add(r.service_wait);
    }
    merged_means.push_back(merged.mean());
  }
  ASSERT_EQ(runs.size(), thread_counts.size());
  for (size_t k = 1; k < runs.size(); ++k) {
    ASSERT_EQ(runs[k].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      const SweepResult& a = runs[0][i];
      const SweepResult& b = runs[k][i];
      EXPECT_EQ(a.arch, b.arch) << "trial " << i;
      EXPECT_EQ(a.cluster, b.cluster) << "trial " << i;
      EXPECT_TRUE(SameBits(a.t_job_secs, b.t_job_secs)) << "trial " << i;
      EXPECT_TRUE(SameBits(a.batch_wait, b.batch_wait)) << "trial " << i;
      EXPECT_TRUE(SameBits(a.service_wait, b.service_wait)) << "trial " << i;
      EXPECT_TRUE(SameBits(a.batch_busy, b.batch_busy)) << "trial " << i;
      EXPECT_TRUE(SameBits(a.batch_busy_mad, b.batch_busy_mad)) << "trial " << i;
      EXPECT_TRUE(SameBits(a.service_busy, b.service_busy)) << "trial " << i;
      EXPECT_TRUE(SameBits(a.service_busy_mad, b.service_busy_mad))
          << "trial " << i;
      EXPECT_EQ(a.abandoned, b.abandoned) << "trial " << i;
    }
    EXPECT_TRUE(SameBits(merged_means[k], merged_means[0]));
  }
}

// Bit-identical regression against seed behavior: these golden values were
// captured from the pre-overhaul simulator (priority_queue + lazy-tombstone
// event queue, unpruned placement scan) at commit f3f58e8, Release build, by
// running RunFig56Sweep(Duration::FromDays(0.004), runner, 3) serially and
// printing every field at %.17g. The indexed event slab and the
// block-summary placement pruning must not move ANY of these numbers: the
// event queue pops the same (time, insertion-order) sequence, and the pruned
// scan only skips machines that could never be chosen.
TEST(SweepDeterminismTest, Fig5SweepMatchesSeedGoldens) {
  struct Golden {
    const char* arch;
    const char* cluster;
    double t_job_secs;
    double batch_wait;
    double service_wait;
    double batch_busy;
    double batch_busy_mad;
    double service_busy;
    double service_busy_mad;
    long long abandoned;
  };
  // No service job waited in these trials; the empty-sample summary is NaN
  // (stats.h). The underlying wait samples are unchanged from the seed
  // capture — only the empty-summary sentinel moved from 0 to NaN.
  constexpr double kNoData = std::numeric_limits<double>::quiet_NaN();
  static constexpr Golden kGolden[] = {
      {"mono-single", "A", 0.01, 0.35810137145969495, 0.60821516666666664, 0.19081307870370454, 0, 0.19081307870370454, 0, 0},
      {"mono-single", "A", 1, 110.57116944680847, 96.259733999999995, 1, 0, 1, 0, 0},
      {"mono-single", "A", 100, 149.18958900000001, kNoData, 1, 0, 1, 0, 0},
      {"mono-single", "B", 0.01, 0.010851626062322947, 0, 0.049898726851851788, 0, 0.049898726851851788, 0, 0},
      {"mono-single", "B", 1, 36.526920896969678, 37.894711799999996, 1, 0, 1, 0, 0},
      {"mono-single", "B", 100, 146.54060200000001, kNoData, 1, 0, 1, 0, 0},
      {"mono-single", "C", 0.01, 0.20543388524590164, 0, 0.075491898148148148, 0, 0.075491898148148148, 0, 0},
      {"mono-single", "C", 1, 2.3980126640316208, 2.0010374999999998, 0.8365885416666643, 0, 0.8365885416666643, 0, 0},
      {"mono-single", "C", 100, 146.97280624999999, kNoData, 1, 0, 1, 0, 0},
      {"mono-multi", "A", 0.01, 0.25805040549450547, 0.87945300000000004, 0.41238425925925909, 0, 0.41238425925925909, 0, 0},
      {"mono-multi", "A", 1, 0.22850834676564138, 0.053920666666666672, 0.43074363425926049, 0, 0.43074363425926049, 0, 0},
      {"mono-multi", "A", 100, 29.779923723650395, 2.5036619999999998, 0.92524594907407631, 0, 0.92524594907407631, 0, 0},
      {"mono-multi", "B", 0.01, 0.079715182795698947, 0, 0.16537905092592539, 0, 0.16537905092592539, 0, 0},
      {"mono-multi", "B", 1, 0.12389177628032348, 0.12642466666666669, 0.20879629629629579, 0, 0.20879629629629579, 0, 0},
      {"mono-multi", "B", 100, 81.354557092391317, 75.226221249999995, 1, 0, 1, 0, 0},
      {"mono-multi", "C", 0.01, 0.059811987755102027, 0, 0.1050491898148147, 0, 0.1050491898148147, 0, 0},
      {"mono-multi", "C", 1, 0.024634778723404253, 0.030712555555555559, 0.11953124999999981, 0, 0.11953124999999981, 0, 0},
      {"mono-multi", "C", 100, 51.580935257142855, 65.315072999999998, 0.90789930555555576, 0, 0.90789930555555576, 0, 0},
      {"omega", "A", 0.01, 0.17871788255033555, 0, 0.38203125000000054, 0, 0.00072337962962962948, 0, 0},
      {"omega", "A", 1, 0.43564019913885904, 0, 0.41986400462962947, 0, 0.008998842592592593, 0, 0},
      {"omega", "A", 100, 0.22022789887640468, 64.386239000000003, 0.41323784722222279, 0, 0.86835937500000004, 0, 0},
      {"omega", "B", 0.01, 0.014338062827225133, 0, 0.14380787037036979, 0, 0.00078124999999999983, 0, 0},
      {"omega", "B", 1, 0.37723597593582869, 0.080352599999999996, 0.21183449074074059, 0, 0.029629629629629624, 0, 0},
      {"omega", "B", 100, 0.020923341597796144, 95.70052475, 0.14218749999999972, 0, 1, 0, 0},
      {"omega", "C", 0.01, 0.014253648000000001, 0, 0.0942563657407407, 0, 0.0011574074074074073, 0, 0},
      {"omega", "C", 1, 0.057344087452471486, 0.080009999999999998, 0.11814236111111104, 0, 0.029311342592592587, 0, 0},
      {"omega", "C", 100, 0.056803409448818912, 124.80843300000001, 0.11025752314814807, 0, 1, 0, 0},
  };
  SweepRunner runner("test_fig5_goldens", kFig56BaseSeed, 1);
  const auto results =
      RunFig56Sweep(Duration::FromDays(0.004), runner, /*tjob_points=*/3);
  ASSERT_EQ(results.size(), std::size(kGolden));
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    const Golden& g = kGolden[i];
    EXPECT_EQ(r.arch, g.arch) << "trial " << i;
    EXPECT_EQ(r.cluster, g.cluster) << "trial " << i;
    EXPECT_TRUE(SameBits(r.t_job_secs, g.t_job_secs)) << "trial " << i;
    EXPECT_TRUE(SameBits(r.batch_wait, g.batch_wait)) << "trial " << i;
    EXPECT_TRUE(SameBits(r.service_wait, g.service_wait)) << "trial " << i;
    EXPECT_TRUE(SameBits(r.batch_busy, g.batch_busy)) << "trial " << i;
    EXPECT_TRUE(SameBits(r.batch_busy_mad, g.batch_busy_mad)) << "trial " << i;
    EXPECT_TRUE(SameBits(r.service_busy, g.service_busy)) << "trial " << i;
    EXPECT_TRUE(SameBits(r.service_busy_mad, g.service_busy_mad))
        << "trial " << i;
    EXPECT_EQ(r.abandoned, g.abandoned) << "trial " << i;
  }
}

TEST(SweepReportTest, JsonContainsAllSections) {
  SweepRunner runner("test_json", 5, 2);
  runner.Run(4, [](const TrialContext& ctx) { return ctx.index; });
  runner.report().AddMetric("answer", 42.0);
  const std::string json = runner.report().ToJson();
  EXPECT_NE(json.find("\"figure\": \"test_json\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"git_sha\": \""), std::string::npos) << json;
  EXPECT_NE(json.find("\"build_type\": \""), std::string::npos) << json;
  EXPECT_NE(json.find("\"base_seed\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trials\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wall_seconds\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trial_seconds_total\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"speedup_vs_serial\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trial_wall_seconds\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"answer\": 42"), std::string::npos) << json;
}

TEST(SweepReportTest, WriteJsonHonorsOutputDirEnv) {
  const std::string dir = ::testing::TempDir();
  setenv("OMEGA_BENCH_JSON_DIR", dir.c_str(), 1);
  SweepRunner runner("test_write", 1, 1);
  runner.Run(2, [](const TrialContext& ctx) { return ctx.index; });
  const std::string path = runner.WriteJson();
  unsetenv("OMEGA_BENCH_JSON_DIR");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.rfind(dir, 0), 0u) << path;
  EXPECT_NE(path.find("BENCH_test_write.json"), std::string::npos) << path;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), runner.report().ToJson());
}

TEST(SweepRunnerTest, EnvGitShaOverridesCompiledProvenance) {
  setenv("OMEGA_GIT_SHA", "deadbeef1234", 1);
  SweepRunner runner("test_env_sha", 1, 1);
  unsetenv("OMEGA_GIT_SHA");
  EXPECT_EQ(runner.report().git_sha, "deadbeef1234");
  EXPECT_FALSE(runner.report().build_type.empty());
  const std::string json = runner.report().ToJson();
  EXPECT_NE(json.find("\"git_sha\": \"deadbeef1234\""), std::string::npos)
      << json;
}

TEST(ProvenanceTest, SanitizeAcceptsPlainTokens) {
  EXPECT_EQ(SanitizeProvenance("deadbeef1234"), "deadbeef1234");
  EXPECT_EQ(SanitizeProvenance("Release"), "Release");
  EXPECT_EQ(SanitizeProvenance("v2.1-rc3+local"), "v2.1-rc3+local");
}

TEST(ProvenanceTest, SanitizeMapsDegenerateValuesToUnknown) {
  // `git rev-parse` outside a work tree prints an error on stderr and can
  // leave the captured variable empty — or, with output merging, a full
  // diagnostic sentence. Neither may leak into BENCH provenance.
  EXPECT_EQ(SanitizeProvenance(""), "unknown");
  EXPECT_EQ(SanitizeProvenance("fatal: not a git repository"), "unknown");
  EXPECT_EQ(SanitizeProvenance("deadbeef\n"), "unknown");
  EXPECT_EQ(SanitizeProvenance(" "), "unknown");
  EXPECT_EQ(SanitizeProvenance("abc\tdef"), "unknown");
}

TEST(SweepRunnerTest, EnvSeedOverridesBaseSeed) {
  setenv("OMEGA_BENCH_SEED", "31337", 1);
  SweepRunner runner("test_env_seed", 1, 1);
  unsetenv("OMEGA_BENCH_SEED");
  EXPECT_EQ(runner.report().base_seed, 31337u);
  const auto seeds =
      runner.Run(2, [](const TrialContext& ctx) { return ctx.seed; });
  EXPECT_EQ(seeds[0], SubstreamSeed(31337, 0));
  EXPECT_EQ(seeds[1], SubstreamSeed(31337, 1));
}

}  // namespace
}  // namespace omega
