#include "src/scheduler/placement.h"

#include <gtest/gtest.h>

#include <set>

#include "src/hifi/scoring_placer.h"

namespace omega {
namespace {

constexpr Resources kMachine{4.0, 16.0};

Job MakeJob(uint32_t tasks, const Resources& per_task) {
  Job j;
  j.id = 1;
  j.num_tasks = tasks;
  j.task_resources = per_task;
  j.task_duration = Duration::FromSeconds(60);
  return j;
}

TEST(RandomizedFirstFitTest, PlacesAllWhenRoomExists) {
  CellState cell(8, kMachine);
  RandomizedFirstFitPlacer placer;
  Rng rng(1);
  const Job job = MakeJob(16, Resources{1.0, 2.0});
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 16, rng, &claims), 16u);
  EXPECT_EQ(claims.size(), 16u);
  // Claims must be committable without conflicts.
  const CommitResult r =
      cell.Commit(claims, ConflictMode::kFineGrained, CommitMode::kIncremental);
  EXPECT_EQ(r.conflicted, 0);
  EXPECT_TRUE(cell.CheckInvariants());
}

TEST(RandomizedFirstFitTest, PendingClaimsStackWithinCall) {
  // One machine, 4 cpus: exactly 4 one-cpu tasks fit; a 5th must fail even
  // though nothing is committed yet.
  CellState cell(1, kMachine);
  RandomizedFirstFitPlacer placer;
  Rng rng(2);
  const Job job = MakeJob(5, Resources{1.0, 1.0});
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 5, rng, &claims), 4u);
}

TEST(RandomizedFirstFitTest, FindsTheOnlyFit) {
  // Fill all but one machine; the linear-scan fallback must find the hole.
  CellState cell(64, kMachine);
  for (MachineId m = 0; m < 64; ++m) {
    if (m != 37) {
      cell.Allocate(m, Resources{4.0, 16.0});
    }
  }
  RandomizedFirstFitPlacer placer(/*max_random_probes=*/4);
  Rng rng(3);
  const Job job = MakeJob(1, Resources{2.0, 4.0});
  std::vector<TaskClaim> claims;
  ASSERT_EQ(placer.PlaceTasks(cell, job, 1, rng, &claims), 1u);
  EXPECT_EQ(claims[0].machine, 37u);
}

TEST(RandomizedFirstFitTest, ZeroWhenNothingFits) {
  CellState cell(4, kMachine);
  for (MachineId m = 0; m < 4; ++m) {
    cell.Allocate(m, Resources{3.5, 15.0});
  }
  RandomizedFirstFitPlacer placer;
  Rng rng(4);
  const Job job = MakeJob(2, Resources{1.0, 2.0});
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 2, rng, &claims), 0u);
  EXPECT_TRUE(claims.empty());
}

TEST(RandomizedFirstFitTest, ClaimsCaptureSeqnums) {
  CellState cell(2, kMachine);
  cell.Allocate(0, Resources{1.0, 1.0});
  RandomizedFirstFitPlacer placer;
  Rng rng(5);
  const Job job = MakeJob(4, Resources{0.5, 0.5});
  std::vector<TaskClaim> claims;
  placer.PlaceTasks(cell, job, 4, rng, &claims);
  for (const TaskClaim& c : claims) {
    EXPECT_EQ(c.seqnum_at_placement, cell.machine(c.machine).seqnum);
  }
}

TEST(ConstraintTest, EqualityAndInequality) {
  Machine m;
  m.attributes = {1, 2, 3};
  Job job;
  job.constraints = {{0, 1, true}};
  EXPECT_TRUE(MachineSatisfiesConstraints(m, job));
  job.constraints = {{0, 2, true}};
  EXPECT_FALSE(MachineSatisfiesConstraints(m, job));
  job.constraints = {{1, 2, false}};
  EXPECT_FALSE(MachineSatisfiesConstraints(m, job));
  job.constraints = {{1, 5, false}};
  EXPECT_TRUE(MachineSatisfiesConstraints(m, job));
  job.constraints = {{0, 1, true}, {2, 3, true}};
  EXPECT_TRUE(MachineSatisfiesConstraints(m, job));
}

TEST(ConstraintTest, MissingAttributeKey) {
  Machine m;
  m.attributes = {1};
  Job job;
  job.constraints = {{5, 1, true}};  // key out of range
  EXPECT_FALSE(MachineSatisfiesConstraints(m, job));
  job.constraints = {{5, 1, false}};
  EXPECT_TRUE(MachineSatisfiesConstraints(m, job));
}

TEST(ConstraintTest, RandomizedFirstFitRespectsConstraintsWhenAsked) {
  CellState cell(16, kMachine);
  for (MachineId m = 0; m < 16; ++m) {
    cell.mutable_machine(m).attributes = {static_cast<int32_t>(m % 4)};
  }
  Job job = MakeJob(8, Resources{0.5, 0.5});
  job.constraints = {{0, 2, true}};
  RandomizedFirstFitPlacer placer(/*max_random_probes=*/8,
                                  /*respect_constraints=*/true);
  Rng rng(6);
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 8, rng, &claims), 8u);
  for (const TaskClaim& c : claims) {
    EXPECT_EQ(c.machine % 4, 2u);
  }
}

TEST(ScoringPlacerTest, PicksTightestFeasibleMachine) {
  CellState cell(4, kMachine);
  cell.EnableAvailabilityIndex();
  cell.Allocate(0, Resources{3.0, 3.0});  // 1.0 cpu left: tightest fit
  cell.Allocate(1, Resources{2.0, 2.0});  // 2.0 left
  cell.Allocate(2, Resources{1.0, 1.0});  // 3.0 left
  ScoringPlacer placer;
  Rng rng(7);
  const Job job = MakeJob(1, Resources{1.0, 1.0});
  std::vector<TaskClaim> claims;
  ASSERT_EQ(placer.PlaceTasks(cell, job, 1, rng, &claims), 1u);
  EXPECT_EQ(claims[0].machine, 0u);
}

TEST(ScoringPlacerTest, RespectsConstraints) {
  CellState cell(16, kMachine);
  cell.EnableAvailabilityIndex();
  for (MachineId m = 0; m < 16; ++m) {
    cell.mutable_machine(m).attributes = {static_cast<int32_t>(m % 2)};
  }
  Job job = MakeJob(6, Resources{1.0, 1.0});
  job.constraints = {{0, 1, true}};
  ScoringPlacer placer;
  Rng rng(8);
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 6, rng, &claims), 6u);
  for (const TaskClaim& c : claims) {
    EXPECT_EQ(c.machine % 2, 1u);
  }
}

TEST(ScoringPlacerTest, SpreadsAcrossFailureDomains) {
  // 8 empty machines in 4 domains; 4 tasks should land in 4 distinct domains
  // thanks to the spreading term (all machines tie on the fit term).
  CellState cell(8, kMachine, FullnessPolicy::kExact, 0.0,
                 /*machines_per_domain=*/2);
  cell.EnableAvailabilityIndex();
  ScoringPlacer placer(ScoringPlacerOptions{.candidate_sample = 64,
                                            .best_fit_weight = 1.0,
                                            .spreading_weight = 1.0});
  Rng rng(9);
  const Job job = MakeJob(4, Resources{1.0, 1.0});
  std::vector<TaskClaim> claims;
  ASSERT_EQ(placer.PlaceTasks(cell, job, 4, rng, &claims), 4u);
  std::set<int32_t> domains;
  for (const TaskClaim& c : claims) {
    domains.insert(cell.machine(c.machine).failure_domain);
  }
  EXPECT_EQ(domains.size(), 4u);
}

TEST(ScoringPlacerTest, WorksWithoutIndex) {
  CellState cell(8, kMachine);
  ScoringPlacer placer;
  Rng rng(10);
  const Job job = MakeJob(4, Resources{1.0, 1.0});
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 4, rng, &claims), 4u);
}

TEST(ScoringPlacerTest, WalksToLooseBucketsForBigMemoryTasks) {
  // CPU-tight machines have no memory; a memory-hungry task must reach the
  // looser buckets even past the nominal visit budget.
  CellState cell(64, kMachine);
  cell.EnableAvailabilityIndex();
  for (MachineId m = 0; m < 63; ++m) {
    cell.Allocate(m, Resources{1.0, 15.5});  // plenty cpu, no memory
  }
  ScoringPlacer placer(ScoringPlacerOptions{.candidate_sample = 4});
  Rng rng(11);
  const Job job = MakeJob(1, Resources{0.5, 8.0});
  std::vector<TaskClaim> claims;
  ASSERT_EQ(placer.PlaceTasks(cell, job, 1, rng, &claims), 1u);
  EXPECT_EQ(claims[0].machine, 63u);
}

}  // namespace
}  // namespace omega
