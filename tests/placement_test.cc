#include "src/scheduler/placement.h"

#include <gtest/gtest.h>

#include <set>

#include "src/hifi/scoring_placer.h"

namespace omega {
namespace {

constexpr Resources kMachine{4.0, 16.0};

Job MakeJob(uint32_t tasks, const Resources& per_task) {
  Job j;
  j.id = 1;
  j.num_tasks = tasks;
  j.task_resources = per_task;
  j.task_duration = Duration::FromSeconds(60);
  return j;
}

TEST(RandomizedFirstFitTest, PlacesAllWhenRoomExists) {
  CellState cell(8, kMachine);
  RandomizedFirstFitPlacer placer;
  Rng rng(1);
  const Job job = MakeJob(16, Resources{1.0, 2.0});
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 16, rng, &claims), 16u);
  EXPECT_EQ(claims.size(), 16u);
  // Claims must be committable without conflicts.
  const CommitResult r =
      cell.Commit(claims, ConflictMode::kFineGrained, CommitMode::kIncremental);
  EXPECT_EQ(r.conflicted, 0);
  EXPECT_TRUE(cell.CheckInvariants());
}

TEST(RandomizedFirstFitTest, PendingClaimsStackWithinCall) {
  // One machine, 4 cpus: exactly 4 one-cpu tasks fit; a 5th must fail even
  // though nothing is committed yet.
  CellState cell(1, kMachine);
  RandomizedFirstFitPlacer placer;
  Rng rng(2);
  const Job job = MakeJob(5, Resources{1.0, 1.0});
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 5, rng, &claims), 4u);
}

TEST(RandomizedFirstFitTest, FindsTheOnlyFit) {
  // Fill all but one machine; the linear-scan fallback must find the hole.
  CellState cell(64, kMachine);
  for (MachineId m = 0; m < 64; ++m) {
    if (m != 37) {
      cell.Allocate(m, Resources{4.0, 16.0});
    }
  }
  RandomizedFirstFitPlacer placer(/*max_random_probes=*/4);
  Rng rng(3);
  const Job job = MakeJob(1, Resources{2.0, 4.0});
  std::vector<TaskClaim> claims;
  ASSERT_EQ(placer.PlaceTasks(cell, job, 1, rng, &claims), 1u);
  EXPECT_EQ(claims[0].machine, 37u);
}

TEST(RandomizedFirstFitTest, ZeroWhenNothingFits) {
  CellState cell(4, kMachine);
  for (MachineId m = 0; m < 4; ++m) {
    cell.Allocate(m, Resources{3.5, 15.0});
  }
  RandomizedFirstFitPlacer placer;
  Rng rng(4);
  const Job job = MakeJob(2, Resources{1.0, 2.0});
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 2, rng, &claims), 0u);
  EXPECT_TRUE(claims.empty());
}

TEST(RandomizedFirstFitTest, ClaimsCaptureSeqnums) {
  CellState cell(2, kMachine);
  cell.Allocate(0, Resources{1.0, 1.0});
  RandomizedFirstFitPlacer placer;
  Rng rng(5);
  const Job job = MakeJob(4, Resources{0.5, 0.5});
  std::vector<TaskClaim> claims;
  placer.PlaceTasks(cell, job, 4, rng, &claims);
  for (const TaskClaim& c : claims) {
    EXPECT_EQ(c.seqnum_at_placement, cell.machine(c.machine).seqnum);
  }
}

TEST(ConstraintTest, EqualityAndInequality) {
  Machine m;
  m.attributes = {1, 2, 3};
  Job job;
  job.constraints = {{0, 1, true}};
  EXPECT_TRUE(MachineSatisfiesConstraints(m, job));
  job.constraints = {{0, 2, true}};
  EXPECT_FALSE(MachineSatisfiesConstraints(m, job));
  job.constraints = {{1, 2, false}};
  EXPECT_FALSE(MachineSatisfiesConstraints(m, job));
  job.constraints = {{1, 5, false}};
  EXPECT_TRUE(MachineSatisfiesConstraints(m, job));
  job.constraints = {{0, 1, true}, {2, 3, true}};
  EXPECT_TRUE(MachineSatisfiesConstraints(m, job));
}

TEST(ConstraintTest, MissingAttributeKey) {
  Machine m;
  m.attributes = {1};
  Job job;
  job.constraints = {{5, 1, true}};  // key out of range
  EXPECT_FALSE(MachineSatisfiesConstraints(m, job));
  job.constraints = {{5, 1, false}};
  EXPECT_TRUE(MachineSatisfiesConstraints(m, job));
}

TEST(ConstraintTest, RandomizedFirstFitRespectsConstraintsWhenAsked) {
  CellState cell(16, kMachine);
  for (MachineId m = 0; m < 16; ++m) {
    cell.mutable_machine(m).attributes = {static_cast<int32_t>(m % 4)};
  }
  Job job = MakeJob(8, Resources{0.5, 0.5});
  job.constraints = {{0, 2, true}};
  RandomizedFirstFitPlacer placer(/*max_random_probes=*/8,
                                  /*respect_constraints=*/true);
  Rng rng(6);
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 8, rng, &claims), 8u);
  for (const TaskClaim& c : claims) {
    EXPECT_EQ(c.machine % 4, 2u);
  }
}

TEST(ScoringPlacerTest, PicksTightestFeasibleMachine) {
  CellState cell(4, kMachine);
  cell.EnableAvailabilityIndex();
  cell.Allocate(0, Resources{3.0, 3.0});  // 1.0 cpu left: tightest fit
  cell.Allocate(1, Resources{2.0, 2.0});  // 2.0 left
  cell.Allocate(2, Resources{1.0, 1.0});  // 3.0 left
  ScoringPlacer placer;
  Rng rng(7);
  const Job job = MakeJob(1, Resources{1.0, 1.0});
  std::vector<TaskClaim> claims;
  ASSERT_EQ(placer.PlaceTasks(cell, job, 1, rng, &claims), 1u);
  EXPECT_EQ(claims[0].machine, 0u);
}

TEST(ScoringPlacerTest, RespectsConstraints) {
  CellState cell(16, kMachine);
  cell.EnableAvailabilityIndex();
  for (MachineId m = 0; m < 16; ++m) {
    cell.mutable_machine(m).attributes = {static_cast<int32_t>(m % 2)};
  }
  Job job = MakeJob(6, Resources{1.0, 1.0});
  job.constraints = {{0, 1, true}};
  ScoringPlacer placer;
  Rng rng(8);
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 6, rng, &claims), 6u);
  for (const TaskClaim& c : claims) {
    EXPECT_EQ(c.machine % 2, 1u);
  }
}

TEST(ScoringPlacerTest, SpreadsAcrossFailureDomains) {
  // 8 empty machines in 4 domains; 4 tasks should land in 4 distinct domains
  // thanks to the spreading term (all machines tie on the fit term).
  CellState cell(8, kMachine, FullnessPolicy::kExact, 0.0,
                 /*machines_per_domain=*/2);
  cell.EnableAvailabilityIndex();
  ScoringPlacer placer(ScoringPlacerOptions{.candidate_sample = 64,
                                            .best_fit_weight = 1.0,
                                            .spreading_weight = 1.0});
  Rng rng(9);
  const Job job = MakeJob(4, Resources{1.0, 1.0});
  std::vector<TaskClaim> claims;
  ASSERT_EQ(placer.PlaceTasks(cell, job, 4, rng, &claims), 4u);
  std::set<int32_t> domains;
  for (const TaskClaim& c : claims) {
    domains.insert(cell.machine(c.machine).failure_domain);
  }
  EXPECT_EQ(domains.size(), 4u);
}

TEST(ScoringPlacerTest, WorksWithoutIndex) {
  CellState cell(8, kMachine);
  ScoringPlacer placer;
  Rng rng(10);
  const Job job = MakeJob(4, Resources{1.0, 1.0});
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 4, rng, &claims), 4u);
}

// --- block-summary pruning regression ---

// Seed-behavior reference: randomized first fit exactly as shipped before the
// block-summary pruning (random probes, then an unpruned linear scan from a
// random offset). Consumes the RNG identically, so the pruned implementation
// must return bit-identical claims.
uint32_t ReferenceFirstFit(const CellState& cell, const Job& job,
                           uint32_t count, Rng& rng,
                           std::vector<TaskClaim>* claims,
                           uint32_t max_random_probes = 32) {
  const uint32_t num_machines = cell.NumMachines();
  PendingClaims pending;
  uint32_t placed = 0;
  for (uint32_t t = 0; t < count; ++t) {
    MachineId chosen = kInvalidMachineId;
    for (uint32_t probe = 0; probe < max_random_probes; ++probe) {
      const auto m = static_cast<MachineId>(rng.NextBounded(num_machines));
      if (cell.CanFitWithPending(m, job.task_resources, pending.On(m))) {
        chosen = m;
        break;
      }
    }
    if (chosen == kInvalidMachineId) {
      const auto start = static_cast<uint32_t>(rng.NextBounded(num_machines));
      for (uint32_t i = 0; i < num_machines; ++i) {
        const MachineId m = (start + i) % num_machines;
        if (cell.CanFitWithPending(m, job.task_resources, pending.On(m))) {
          chosen = m;
          break;
        }
      }
    }
    if (chosen == kInvalidMachineId) {
      break;
    }
    claims->push_back(TaskClaim{chosen, job.task_resources,
                                cell.machine(chosen).seqnum});
    pending.Add(chosen, job.task_resources);
    ++placed;
  }
  return placed;
}

// Differential test across utilization levels, including the near-full regime
// where pruning actually fires: placements must be bit-identical to the
// unpruned seed algorithm for the same RNG stream.
TEST(BlockPruningTest, PlacementsMatchUnprunedReferenceAcrossFills) {
  // > 3 blocks so whole-block skips happen; odd size so the last block is
  // partial.
  constexpr uint32_t kMachines = 3 * 64 + 17;
  for (const double fill_fraction : {0.0, 0.5, 0.9, 0.97, 1.0}) {
    CellState cell(kMachines, kMachine);
    CellState reference_cell(kMachines, kMachine);
    Rng fill(1234);
    const auto target =
        static_cast<uint32_t>(fill_fraction * kMachines * 4.0);  // cpus
    uint32_t filled = 0;
    for (uint32_t attempt = 0; filled < target && attempt < kMachines * 64;
         ++attempt) {
      const auto m = static_cast<MachineId>(fill.NextBounded(kMachines));
      if (cell.CanFit(m, Resources{1.0, 4.0})) {
        cell.Allocate(m, Resources{1.0, 4.0});
        reference_cell.Allocate(m, Resources{1.0, 4.0});
        ++filled;
      }
    }
    const Job job = MakeJob(8, Resources{0.5, 2.0});
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      RandomizedFirstFitPlacer placer(/*max_random_probes=*/8);
      Rng rng_a(seed);
      Rng rng_b(seed);
      std::vector<TaskClaim> pruned, unpruned;
      const uint32_t na =
          placer.PlaceTasks(cell, job, 8, rng_a, &pruned);
      const uint32_t nb = ReferenceFirstFit(reference_cell, job, 8, rng_b,
                                            &unpruned, /*max_random_probes=*/8);
      ASSERT_EQ(na, nb) << "fill " << fill_fraction << " seed " << seed;
      ASSERT_EQ(pruned.size(), unpruned.size());
      for (size_t i = 0; i < pruned.size(); ++i) {
        EXPECT_EQ(pruned[i].machine, unpruned[i].machine)
            << "fill " << fill_fraction << " seed " << seed << " task " << i;
        EXPECT_EQ(pruned[i].seqnum_at_placement,
                  unpruned[i].seqnum_at_placement);
      }
    }
  }
}

TEST(BlockPruningTest, FindsFitStraddlingBlockBoundary) {
  // Only machines 63 and 64 (the two sides of a block boundary) have room;
  // the scan must find them regardless of where it starts.
  CellState cell(128, kMachine);
  for (MachineId m = 0; m < 128; ++m) {
    if (m != 63 && m != 64) {
      cell.Allocate(m, kMachine);
    }
  }
  RandomizedFirstFitPlacer placer(/*max_random_probes=*/2);
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    Rng rng(seed);
    const Job job = MakeJob(2, Resources{4.0, 16.0});
    std::vector<TaskClaim> claims;
    ASSERT_EQ(placer.PlaceTasks(cell, job, 2, rng, &claims), 2u) << seed;
    std::set<MachineId> machines;
    for (const TaskClaim& c : claims) {
      machines.insert(c.machine);
    }
    EXPECT_EQ(machines, (std::set<MachineId>{63, 64})) << seed;
  }
}

TEST(BlockPruningTest, FindsLastMachineFit) {
  // The very last machine of a partial trailing block is the only fit.
  constexpr uint32_t kMachines = 2 * 64 + 5;
  CellState cell(kMachines, kMachine);
  for (MachineId m = 0; m < kMachines - 1; ++m) {
    cell.Allocate(m, kMachine);
  }
  RandomizedFirstFitPlacer placer(/*max_random_probes=*/2);
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    Rng rng(seed);
    const Job job = MakeJob(1, Resources{1.0, 2.0});
    std::vector<TaskClaim> claims;
    ASSERT_EQ(placer.PlaceTasks(cell, job, 1, rng, &claims), 1u) << seed;
    EXPECT_EQ(claims[0].machine, kMachines - 1) << seed;
  }
}

TEST(BlockPruningTest, AllBlocksFullPlacesNothing) {
  constexpr uint32_t kMachines = 4 * 64;
  CellState cell(kMachines, kMachine);
  for (MachineId m = 0; m < kMachines; ++m) {
    cell.Allocate(m, Resources{3.8, 15.5});
  }
  RandomizedFirstFitPlacer placer;
  Rng rng(9);
  const Job job = MakeJob(4, Resources{1.0, 2.0});
  std::vector<TaskClaim> claims;
  EXPECT_EQ(placer.PlaceTasks(cell, job, 4, rng, &claims), 0u);
  EXPECT_TRUE(claims.empty());
}

TEST(BlockPruningTest, PartitionedRangeStillScansOnlyItsPartition) {
  // A range that starts mid-block must only ever claim machines inside the
  // range, and still finds the single fit there.
  CellState cell(256, kMachine);
  for (MachineId m = 0; m < 256; ++m) {
    if (m != 130) {
      cell.Allocate(m, kMachine);
    }
  }
  RandomizedFirstFitPlacer placer(/*max_random_probes=*/2, false,
                                  MachineRange{100, 200});
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    Rng rng(seed);
    const Job job = MakeJob(1, Resources{1.0, 2.0});
    std::vector<TaskClaim> claims;
    ASSERT_EQ(placer.PlaceTasks(cell, job, 1, rng, &claims), 1u) << seed;
    EXPECT_EQ(claims[0].machine, 130u) << seed;
  }
}

TEST(ScoringPlacerTest, WalksToLooseBucketsForBigMemoryTasks) {
  // CPU-tight machines have no memory; a memory-hungry task must reach the
  // looser buckets even past the nominal visit budget.
  CellState cell(64, kMachine);
  cell.EnableAvailabilityIndex();
  for (MachineId m = 0; m < 63; ++m) {
    cell.Allocate(m, Resources{1.0, 15.5});  // plenty cpu, no memory
  }
  ScoringPlacer placer(ScoringPlacerOptions{.candidate_sample = 4});
  Rng rng(11);
  const Job job = MakeJob(1, Resources{0.5, 8.0});
  std::vector<TaskClaim> claims;
  ASSERT_EQ(placer.PlaceTasks(cell, job, 1, rng, &claims), 1u);
  EXPECT_EQ(claims[0].machine, 63u);
}

}  // namespace
}  // namespace omega
