#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/random.h"

namespace omega {
namespace {

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextRange(-10, 10);
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(5.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(PercentileTest, KnownValues) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 5.5);
  EXPECT_DOUBLE_EQ(Median(v), 5.5);
}

TEST(PercentileTest, EmptyAndSingle) {
  // An empty sample is "no data", not zero (AppendNumber emits null for it).
  EXPECT_TRUE(std::isnan(Percentile({}, 0.5)));
  EXPECT_TRUE(std::isnan(Median({})));
  EXPECT_TRUE(std::isnan(MedianAbsoluteDeviation({})));
  EXPECT_EQ(Percentile({7.0}, 0.9), 7.0);
}

TEST(PercentileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Median({5, 1, 3}), 3.0);
}

TEST(MadTest, KnownValue) {
  // median = 3; |x - 3| = {2,1,0,1,2}; MAD = 1.
  EXPECT_DOUBLE_EQ(MedianAbsoluteDeviation({1, 2, 3, 4, 5}), 1.0);
}

TEST(MadTest, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(MedianAbsoluteDeviation({4, 4, 4, 4}), 0.0);
}

TEST(MadTest, RobustToOutlier) {
  // One huge outlier barely moves the MAD, unlike the standard deviation.
  const double mad = MedianAbsoluteDeviation({1, 2, 3, 4, 1000});
  EXPECT_LE(mad, 2.0);
}

TEST(CdfTest, FractionAtOrBelow) {
  Cdf cdf;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    cdf.Add(x);
  }
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(100.0), 1.0);
}

TEST(CdfTest, QuantileInverse) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(i);
  }
  EXPECT_NEAR(cdf.Quantile(0.9), 90.0, 1.0);
  EXPECT_DOUBLE_EQ(cdf.MinValue(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.MaxValue(), 100.0);
  EXPECT_DOUBLE_EQ(cdf.MeanValue(), 50.5);
}

TEST(CdfTest, AddNWeights) {
  Cdf cdf;
  cdf.AddN(1.0, 3);
  cdf.AddN(2.0, 1);
  EXPECT_EQ(cdf.count(), 4u);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1.0), 0.75);
}

// Weighted adds must agree exactly with the equivalent sequence of unit adds.
TEST(CdfTest, AddNMatchesRepeatedAdd) {
  Rng rng(42);
  Cdf weighted;
  Cdf unit;
  for (int i = 0; i < 50; ++i) {
    const double x = rng.NextRange(0.0, 100.0);
    const auto n = static_cast<int64_t>(1 + rng.NextBounded(9));
    weighted.AddN(x, n);
    for (int64_t k = 0; k < n; ++k) {
      unit.Add(x);
    }
  }
  ASSERT_EQ(weighted.count(), unit.count());
  EXPECT_DOUBLE_EQ(weighted.MinValue(), unit.MinValue());
  EXPECT_DOUBLE_EQ(weighted.MaxValue(), unit.MaxValue());
  EXPECT_DOUBLE_EQ(weighted.MeanValue(), unit.MeanValue());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(weighted.Quantile(q), unit.Quantile(q)) << "q=" << q;
  }
  for (double x : {-1.0, 0.0, 12.5, 50.0, 99.0, 1000.0}) {
    EXPECT_DOUBLE_EQ(weighted.FractionAtOrBelow(x), unit.FractionAtOrBelow(x))
        << "x=" << x;
  }
}

// Regression: AddN used to materialize n copies of the sample, so a large
// weighted add was O(n) memory. With (value, count) runs this is O(1) and
// finishes instantly even for billions of samples.
TEST(CdfTest, AddNHugeWeightIsCheap) {
  Cdf cdf;
  cdf.AddN(1.0, 3'000'000'000LL);
  cdf.AddN(2.0, 1'000'000'000LL);
  EXPECT_EQ(cdf.count(), 4'000'000'000ULL);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1.5), 0.75);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.MeanValue(), 1.25);
}

TEST(CdfTest, AddNZeroOrNegativeIsNoop) {
  Cdf cdf;
  cdf.AddN(1.0, 0);
  cdf.AddN(2.0, -5);
  EXPECT_TRUE(cdf.empty());
  cdf.Add(3.0);
  EXPECT_EQ(cdf.count(), 1u);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 3.0);
}

TEST(CdfTest, DuplicateValuesAcrossAddsCoalesce) {
  Cdf cdf;
  cdf.Add(5.0);
  cdf.AddN(5.0, 2);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(5.0), 1.0);  // forces a sort
  cdf.AddN(5.0, 3);                                   // add after a query
  cdf.Add(7.0);
  EXPECT_EQ(cdf.count(), 7u);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(5.0), 6.0 / 7.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 7.0);
}

TEST(CdfTest, MergeMatchesCombinedAdds) {
  Cdf a;
  Cdf b;
  Cdf combined;
  for (int i = 1; i <= 10; ++i) {
    (i % 2 == 0 ? a : b).Add(i);
    combined.Add(i);
  }
  a.Merge(b);
  ASSERT_EQ(a.count(), combined.count());
  for (double q : {0.0, 0.3, 0.5, 0.8, 1.0}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), combined.Quantile(q));
  }
  Cdf empty;
  a.Merge(empty);  // merging empty changes nothing
  EXPECT_EQ(a.count(), combined.count());
  empty.Merge(a);  // merging into empty copies everything
  EXPECT_EQ(empty.count(), combined.count());
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), combined.Quantile(0.5));
}

TEST(CdfTest, EmptyBehaviour) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.FractionAtOrBelow(1.0), 0.0);
  EXPECT_EQ(cdf.MeanValue(), 0.0);
  EXPECT_TRUE(std::isnan(cdf.Quantile(0.5)));
}

TEST(CdfTest, AddAfterQueryResorts) {
  Cdf cdf;
  cdf.Add(5.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(5.0), 1.0);
  cdf.Add(1.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1.0), 0.5);
}

TEST(CdfTest, EvaluateMultiplePoints) {
  Cdf cdf;
  for (int i = 1; i <= 10; ++i) {
    cdf.Add(i);
  }
  const auto fracs = cdf.Evaluate({0.0, 5.0, 10.0});
  ASSERT_EQ(fracs.size(), 3u);
  EXPECT_DOUBLE_EQ(fracs[0], 0.0);
  EXPECT_DOUBLE_EQ(fracs[1], 0.5);
  EXPECT_DOUBLE_EQ(fracs[2], 1.0);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(5.0);
  EXPECT_EQ(h.TotalCount(), 3);
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(9), 1);
  EXPECT_EQ(h.BucketCount(5), 1);
  EXPECT_DOUBLE_EQ(h.BucketLow(5), 5.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(5), 6.0);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(4), 1);
}

// Property: Percentile agrees with a brute-force rank computation at the
// order statistics themselves, across random data sets.
class PercentilePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PercentilePropertyTest, MatchesOrderStatistics) {
  Rng rng(GetParam());
  std::vector<double> data;
  const int n = 1 + static_cast<int>(rng.NextBounded(500));
  for (int i = 0; i < n; ++i) {
    data.push_back(rng.NextRange(-1000, 1000));
  }
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (size_t k = 0; k < sorted.size(); ++k) {
    const double q = sorted.size() == 1
                         ? 0.5
                         : static_cast<double>(k) / (sorted.size() - 1);
    EXPECT_NEAR(Percentile(data, q), sorted[k], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentilePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace omega
