// Unit-level tests of the Mesos allocator mechanics: DRF ordering, offer
// locking arithmetic, and round pacing.
#include <gtest/gtest.h>

#include "src/mesos/mesos_simulation.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

SimOptions Opts(uint64_t seed = 1) {
  SimOptions o;
  o.horizon = Duration::FromHours(1);
  o.seed = seed;
  return o;
}

// Suppress arrivals so tests can drive submissions manually.
ClusterConfig QuietCluster() {
  ClusterConfig cfg = TestCluster(8);
  cfg.initial_utilization = 0.05;
  cfg.batch.interarrival_mean_secs = 1e9;
  cfg.service.interarrival_mean_secs = 1e9;
  return cfg;
}

JobPtr MakeJob(JobId id, JobType type, uint32_t tasks) {
  auto job = std::make_shared<Job>();
  job->id = id;
  job->type = type;
  job->num_tasks = tasks;
  job->task_resources = Resources{1.0, 2.0};
  job->task_duration = Duration::FromMinutes(30);
  job->precedence = DefaultPrecedence(type);
  return job;
}

TEST(MesosAllocatorTest, DrfOffersToFrameworkFurthestBelowShare) {
  MesosSimulation sim(QuietCluster(), Opts(), SchedulerConfig{},
                      SchedulerConfig{});
  // Batch grabs a big chunk first; then both frameworks have pending jobs and
  // the *service* framework (share 0) must be served first.
  sim.sim().ScheduleAt(SimTime::FromSeconds(1), [&] {
    sim.SubmitJob(MakeJob(1, JobType::kBatch, 12));
  });
  sim.sim().ScheduleAt(SimTime::FromSeconds(60), [&] {
    sim.SubmitJob(MakeJob(2, JobType::kBatch, 4));
    sim.SubmitJob(MakeJob(3, JobType::kService, 4));
  });
  sim.sim().RunUntil(SimTime::FromMinutes(10));
  const double batch_share = sim.allocator().DominantShare(&sim.batch_framework());
  const double service_share =
      sim.allocator().DominantShare(&sim.service_framework());
  // Both got their jobs placed eventually...
  EXPECT_GT(batch_share, 0.0);
  EXPECT_GT(service_share, 0.0);
  // ...and the service framework's first job started no later than the second
  // batch job finished scheduling (it had priority by DRF).
  EXPECT_EQ(sim.service_framework().metrics().JobsScheduled(JobType::kService), 1);
}

TEST(MesosAllocatorTest, OfferedPlusAvailableNeverExceedsCapacity) {
  MesosSimulation sim(QuietCluster(), Opts(2), SchedulerConfig{},
                      SchedulerConfig{});
  sim.sim().ScheduleAt(SimTime::FromSeconds(1), [&] {
    sim.SubmitJob(MakeJob(1, JobType::kBatch, 6));
    sim.SubmitJob(MakeJob(2, JobType::kService, 6));
  });
  // Probe invariants at several points in time.
  for (int s = 2; s <= 20; s += 3) {
    sim.sim().ScheduleAt(SimTime::FromSeconds(s), [&] {
      const Resources offered = sim.allocator().TotalOffered();
      const Resources available = sim.cell().TotalAvailable();
      EXPECT_TRUE(offered.FitsIn(available))
          << "offers must only cover unused resources";
    });
  }
  sim.sim().RunUntil(SimTime::FromMinutes(5));
}

TEST(MesosAllocatorTest, PacedRoundsDoNotStarveThroughput) {
  // Even with the 100 ms round pacing, a stream of small jobs schedules at
  // high rate (the pacing bounds allocator work, not framework throughput).
  ClusterConfig cfg = TestCluster(32);
  cfg.batch.interarrival_mean_secs = 0.5;
  cfg.service.interarrival_mean_secs = 1e9;
  MesosSimulation sim(cfg, Opts(3), SchedulerConfig{}, SchedulerConfig{});
  sim.Run();
  const int64_t submitted = sim.JobsSubmitted(JobType::kBatch);
  const int64_t scheduled =
      sim.batch_framework().metrics().JobsScheduled(JobType::kBatch);
  EXPECT_GT(submitted, 5000);
  EXPECT_GE(scheduled, submitted * 9 / 10);
}

TEST(MesosAllocatorTest, IdleFrameworkReceivesNoOffers) {
  MesosSimulation sim(QuietCluster(), Opts(4), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();  // no arrivals at all
  EXPECT_EQ(sim.batch_framework().metrics().TotalAttempts(), 0);
  EXPECT_EQ(sim.service_framework().metrics().TotalAttempts(), 0);
  EXPECT_TRUE(sim.allocator().TotalOffered().IsZero());
}

}  // namespace
}  // namespace omega
