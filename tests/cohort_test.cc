// Cohort task-lifecycle batching (DESIGN.md §10).
//
// The hard design constraint is bit-identicality: every simulation must
// produce exactly the same cell state, metrics, and trace event stream with
// cohort batching on or off. The differential tests here run each
// architecture both ways and compare fingerprints bitwise; the unit tests
// cover the batched CellState mutations, the partial-cancel (tombstone)
// paths, and the TaskRegistry slab against naive reference models.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cluster/cell_state.h"
#include "src/cluster/task_registry.h"
#include "src/common/random.h"
#include "src/hifi/hifi_simulation.h"
#include "src/mapreduce/mr_scheduler.h"
#include "src/mapreduce/policy.h"
#include "src/mesos/mesos_simulation.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/cluster_simulation.h"
#include "src/scheduler/monolithic.h"
#include "src/trace/trace_recorder.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

// ---------------------------------------------------------------------------
// Differential fingerprinting: run an architecture with cohort batching on
// and off, demand bitwise-equal cell state, counters, and trace streams.
// ---------------------------------------------------------------------------

struct SimFingerprint {
  std::vector<uint64_t> seqnums;
  std::vector<double> allocated;  // cpus, mem per machine, exact
  double total_cpus = 0.0;
  double total_mem = 0.0;
  int64_t submitted = 0;
  int64_t preempted = 0;
  int64_t failures = 0;
  int64_t killed = 0;
  std::vector<TraceEvent> events;
  std::vector<int64_t> event_counts;
};

SimFingerprint Fingerprint(const ClusterSimulation& sim,
                           const TraceRecorder& trace) {
  SimFingerprint fp;
  const CellState& cell = sim.cell();
  for (MachineId m = 0; m < cell.NumMachines(); ++m) {
    fp.seqnums.push_back(cell.machine(m).seqnum);
    fp.allocated.push_back(cell.machine(m).allocated.cpus);
    fp.allocated.push_back(cell.machine(m).allocated.mem_gb);
  }
  fp.total_cpus = cell.TotalAllocated().cpus;
  fp.total_mem = cell.TotalAllocated().mem_gb;
  fp.submitted = sim.JobsSubmittedTotal();
  fp.preempted = sim.TasksPreempted();
  fp.failures = sim.MachineFailures();
  fp.killed = sim.TasksKilledByFailures();
  trace.ForEachRetained(
      [&fp](const TraceEvent& e) { fp.events.push_back(e); });
  for (size_t t = 0; t < kNumTraceEventTypes; ++t) {
    fp.event_counts.push_back(trace.CountOf(static_cast<TraceEventType>(t)));
    fp.event_counts.push_back(trace.SumArg0(static_cast<TraceEventType>(t)));
  }
  return fp;
}

void ExpectIdentical(const SimFingerprint& batched,
                     const SimFingerprint& per_task) {
  EXPECT_EQ(batched.seqnums, per_task.seqnums);
  EXPECT_EQ(batched.allocated, per_task.allocated);  // bitwise via operator==
  EXPECT_EQ(batched.total_cpus, per_task.total_cpus);
  EXPECT_EQ(batched.total_mem, per_task.total_mem);
  EXPECT_EQ(batched.submitted, per_task.submitted);
  EXPECT_EQ(batched.preempted, per_task.preempted);
  EXPECT_EQ(batched.failures, per_task.failures);
  EXPECT_EQ(batched.killed, per_task.killed);
  EXPECT_EQ(batched.event_counts, per_task.event_counts);
  ASSERT_EQ(batched.events.size(), per_task.events.size());
  for (size_t i = 0; i < batched.events.size(); ++i) {
    const TraceEvent& a = batched.events[i];
    const TraceEvent& b = per_task.events[i];
    ASSERT_TRUE(a.time_us == b.time_us && a.type == b.type &&
                a.track == b.track && a.job == b.job &&
                a.machine == b.machine && a.seqnum == b.seqnum &&
                a.arg0 == b.arg0 && a.arg1 == b.arg1)
        << "trace streams diverge at event " << i;
  }
}

// Runs `make_and_run(options, trace)` twice — cohort batching on, then off —
// and asserts bitwise-identical outcomes. The factory must construct the
// simulation, attach the recorder, run, and return the simulation's
// fingerprint.
template <typename MakeAndRun>
void DiffCohortPaths(SimOptions options, MakeAndRun&& make_and_run) {
  options.cohort_batching = true;
  TraceRecorder trace_on;
  const SimFingerprint batched = make_and_run(options, trace_on);
  options.cohort_batching = false;
  TraceRecorder trace_off;
  const SimFingerprint per_task = make_and_run(options, trace_off);
  ExpectIdentical(batched, per_task);
}

SimOptions DiffRun(uint64_t seed, double hours = 3.0) {
  SimOptions o;
  o.horizon = Duration::FromHours(hours);
  o.seed = seed;
  return o;
}

TEST(CohortDifferentialTest, MonolithicBitIdentical) {
  for (uint64_t seed : {1u, 7u}) {
    DiffCohortPaths(DiffRun(seed), [](const SimOptions& o, TraceRecorder& t) {
      MonolithicSimulation sim(TestCluster(64), o, SchedulerConfig{});
      sim.SetTraceRecorder(&t);
      sim.Run();
      EXPECT_TRUE(sim.cell().CheckInvariants());
      return Fingerprint(sim, t);
    });
  }
}

TEST(CohortDifferentialTest, OmegaMultiSchedulerBitIdentical) {
  // Multiple schedulers commit against the shared cell, so this exercises
  // conflicting transactions, partial commit (incremental mode), and
  // ReconstructAcceptedClaims feeding the cohort path.
  for (uint64_t seed : {2u, 11u}) {
    DiffCohortPaths(DiffRun(seed), [](const SimOptions& o, TraceRecorder& t) {
      OmegaSimulation sim(TestCluster(64), o, SchedulerConfig{},
                          SchedulerConfig{}, 3);
      sim.SetTraceRecorder(&t);
      sim.Run();
      EXPECT_TRUE(sim.cell().CheckInvariants());
      return Fingerprint(sim, t);
    });
  }
}

TEST(CohortDifferentialTest, OmegaGangSchedulingBitIdentical) {
  // All-or-nothing commits: gang aborts discard whole transactions before any
  // cohort is created; retried attempts must line up bit-identically.
  SchedulerConfig gang;
  gang.commit_mode = CommitMode::kAllOrNothing;
  gang.conflict_mode = ConflictMode::kCoarseGrained;
  DiffCohortPaths(DiffRun(3), [&gang](const SimOptions& o, TraceRecorder& t) {
    OmegaSimulation sim(TestCluster(64), o, gang, gang, 3);
    sim.SetTraceRecorder(&t);
    sim.Run();
    EXPECT_TRUE(sim.cell().CheckInvariants());
    return Fingerprint(sim, t);
  });
}

TEST(CohortDifferentialTest, MesosFrameworksBitIdentical) {
  // Mesos routes task-end through the on_task_end callback (allocator
  // bookkeeping) and OnTaskFreed (offer re-triggering); both must observe
  // the same sequence of states either way.
  for (uint64_t seed : {4u, 13u}) {
    DiffCohortPaths(DiffRun(seed), [](const SimOptions& o, TraceRecorder& t) {
      MesosSimulation sim(TestCluster(64), o, SchedulerConfig{},
                          SchedulerConfig{});
      sim.SetTraceRecorder(&t);
      sim.Run();
      EXPECT_TRUE(sim.cell().CheckInvariants());
      return Fingerprint(sim, t);
    });
  }
}

TEST(CohortDifferentialTest, MapReduceBitIdentical) {
  ClusterConfig cfg = TestCluster(64);
  cfg.mapreduce_fraction = 0.3;
  MapReducePolicyOptions policy;
  policy.policy = MapReducePolicy::kMaxParallelism;
  DiffCohortPaths(DiffRun(5), [&](const SimOptions& o, TraceRecorder& t) {
    MapReduceSimulation sim(cfg, o, SchedulerConfig{}, SchedulerConfig{},
                            policy);
    sim.SetTraceRecorder(&t);
    sim.Run();
    EXPECT_TRUE(sim.cell().CheckInvariants());
    return Fingerprint(sim, t);
  });
}

TEST(CohortDifferentialTest, HifiReplayBitIdentical) {
  // The high-fidelity configuration enables the availability index, whose
  // bucket-list order is observable through placement — the cohort path must
  // fall back to per-task index maintenance and still win on event count.
  const ClusterConfig cfg = TestCluster(64);
  const std::vector<Job> trace_jobs =
      GenerateHifiTrace(cfg, Duration::FromHours(3), 6);
  DiffCohortPaths(DiffRun(6), [&](const SimOptions& o, TraceRecorder& t) {
    auto sim = MakeHifiSimulation(cfg, o, SchedulerConfig{}, SchedulerConfig{});
    sim->SetTraceRecorder(&t);
    sim->RunTrace(trace_jobs);
    EXPECT_TRUE(sim->cell().CheckInvariants());
    return Fingerprint(*sim, t);
  });
}

TEST(CohortDifferentialTest, MachineFailuresBitIdentical) {
  // Failures kill cohort members mid-flight: the partial-cancel path must
  // shrink the pending free so the shared end event releases exactly the
  // survivors' resources.
  for (uint64_t seed : {8u, 21u}) {
    SimOptions o = DiffRun(seed, 6.0);
    o.track_running_tasks = true;
    o.machine_failure_rate_per_day = 12.0;
    o.machine_repair_time = Duration::FromMinutes(30);
    DiffCohortPaths(o, [](const SimOptions& opts, TraceRecorder& t) {
      OmegaSimulation sim(TestCluster(64), opts, SchedulerConfig{},
                          SchedulerConfig{});
      sim.SetTraceRecorder(&t);
      sim.Run();
      EXPECT_GT(sim.MachineFailures(), 0);
      EXPECT_TRUE(sim.cell().CheckInvariants());
      return Fingerprint(sim, t);
    });
  }
}

TEST(CohortDifferentialTest, PreemptionBitIdentical) {
  // Preemption evicts individual cohort members (and sometimes whole
  // cohorts); victim selection reads the registry's per-machine list order,
  // so this also pins the slab registry's order evolution.
  // A small cell saturated with long batch work plus rare large service jobs
  // (mirrors preemption_test's SaturatedCell): the service scheduler must
  // evict batch tasks, including individual cohort members.
  ClusterConfig cfg = TestCluster(8);
  cfg.initial_utilization = 0.05;
  cfg.batch.interarrival_mean_secs = 2.0;
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(8.0);
  cfg.batch.cpus_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.mem_gb_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.task_duration_secs = std::make_shared<ConstantDist>(36000.0);
  cfg.service.interarrival_mean_secs = 900.0;
  cfg.service.tasks_per_job = std::make_shared<ConstantDist>(4.0);
  cfg.service.cpus_per_task = std::make_shared<ConstantDist>(2.0);
  cfg.service.mem_gb_per_task = std::make_shared<ConstantDist>(2.0);
  cfg.service.task_duration_secs = std::make_shared<ConstantDist>(36000.0);
  SchedulerConfig batch;
  batch.max_attempts = 20;
  batch.no_progress_backoff = Duration::FromSeconds(5);
  SchedulerConfig service = batch;
  service.enable_preemption = true;
  SimOptions o = DiffRun(9, 6.0);
  o.track_running_tasks = true;
  DiffCohortPaths(o, [&](const SimOptions& opts, TraceRecorder& t) {
    OmegaSimulation sim(cfg, opts, batch, service);
    sim.SetTraceRecorder(&t);
    sim.Run();
    EXPECT_GT(sim.TasksPreempted(), 0);
    EXPECT_TRUE(sim.cell().CheckInvariants());
    return Fingerprint(sim, t);
  });
}

// ---------------------------------------------------------------------------
// CellState batched mutations vs. the per-task reference.
// ---------------------------------------------------------------------------

TEST(CellStateBatchTest, AllocateAndFreeBatchMatchPerTaskLoops) {
  const Resources cap{16.0, 64.0};
  CellState batched(64, cap);
  CellState reference(64, cap);
  Rng rng(99);
  // Random interleaving of batch allocations and frees; the reference applies
  // the same operations as per-task loops. States must match bitwise.
  std::vector<std::pair<MachineId, std::pair<Resources, uint32_t>>> live;
  for (int step = 0; step < 2000; ++step) {
    const bool do_free = !live.empty() && rng.NextBounded(2) == 0;
    if (do_free) {
      const size_t pick = rng.NextBounded(live.size());
      const auto [m, rc] = live[pick];
      batched.FreeBatch(m, rc.first, rc.second);
      for (uint32_t i = 0; i < rc.second; ++i) {
        reference.Free(m, rc.first);
      }
      live[pick] = live.back();
      live.pop_back();
    } else {
      const auto m = static_cast<MachineId>(rng.NextBounded(64));
      const Resources r{0.1 + 0.1 * static_cast<double>(rng.NextBounded(5)),
                        0.3 + 0.3 * static_cast<double>(rng.NextBounded(5))};
      const auto count = static_cast<uint32_t>(1 + rng.NextBounded(6));
      if (!batched.CanFit(m, r * static_cast<double>(count))) {
        continue;
      }
      batched.AllocateBatch(m, r, count);
      for (uint32_t i = 0; i < count; ++i) {
        reference.Allocate(m, r);
      }
      live.push_back({m, {r, count}});
    }
    ASSERT_TRUE(batched.CheckInvariants());
  }
  for (MachineId m = 0; m < 64; ++m) {
    ASSERT_EQ(batched.machine(m).allocated, reference.machine(m).allocated);
    ASSERT_EQ(batched.machine(m).seqnum, reference.machine(m).seqnum);
  }
  EXPECT_EQ(batched.TotalAllocated(), reference.TotalAllocated());
}

TEST(CellStateBatchTest, BatchOfOneEqualsSingleCall) {
  CellState a(4, Resources{8.0, 32.0});
  CellState b(4, Resources{8.0, 32.0});
  a.AllocateBatch(2, Resources{1.5, 3.0}, 1);
  b.Allocate(2, Resources{1.5, 3.0});
  EXPECT_EQ(a.machine(2).allocated, b.machine(2).allocated);
  EXPECT_EQ(a.machine(2).seqnum, b.machine(2).seqnum);
  a.FreeBatch(2, Resources{1.5, 3.0}, 1);
  b.Free(2, Resources{1.5, 3.0});
  EXPECT_EQ(a.machine(2).allocated, b.machine(2).allocated);
  EXPECT_EQ(a.machine(2).seqnum, b.machine(2).seqnum);
}

TEST(CellStateBatchTest, ZeroCountBatchIsNoop) {
  CellState cell(4, Resources{8.0, 32.0});
  cell.AllocateBatch(1, Resources{1.0, 1.0}, 0);
  cell.FreeBatch(1, Resources{1.0, 1.0}, 0);
  EXPECT_EQ(cell.machine(1).seqnum, 0u);
  EXPECT_EQ(cell.TotalAllocated(), Resources::Zero());
}

TEST(CellStateBatchTest, BatchSeqnumAdvanceEqualsCount) {
  CellState cell(4, Resources{8.0, 32.0});
  cell.AllocateBatch(3, Resources{0.5, 1.0}, 7);
  EXPECT_EQ(cell.machine(3).seqnum, 7u);
  cell.FreeBatch(3, Resources{0.5, 1.0}, 7);
  EXPECT_EQ(cell.machine(3).seqnum, 14u);
}

TEST(CellStateBatchTest, BatchedOpsWithAvailabilityIndexMatchReference) {
  // With the index enabled, batched ops fall back to the per-task sequence so
  // bucket-list order (observable via VisitByAvailability) stays identical.
  CellState batched(64, Resources{16.0, 64.0});
  CellState reference(64, Resources{16.0, 64.0});
  batched.EnableAvailabilityIndex();
  reference.EnableAvailabilityIndex();
  Rng rng(7);
  for (int step = 0; step < 300; ++step) {
    const auto m = static_cast<MachineId>(rng.NextBounded(64));
    const Resources r{0.5, 2.0};
    const auto count = static_cast<uint32_t>(1 + rng.NextBounded(4));
    if (batched.CanFit(m, r * static_cast<double>(count))) {
      batched.AllocateBatch(m, r, count);
      for (uint32_t i = 0; i < count; ++i) {
        reference.Allocate(m, r);
      }
    }
  }
  std::vector<MachineId> order_batched;
  std::vector<MachineId> order_reference;
  batched.VisitByAvailability(Resources{0.5, 2.0}, [&](MachineId m) {
    order_batched.push_back(m);
    return true;
  });
  reference.VisitByAvailability(Resources{0.5, 2.0}, [&](MachineId m) {
    order_reference.push_back(m);
    return true;
  });
  EXPECT_EQ(order_batched, order_reference);
}

TEST(CellStateBatchTest, GroupedCommitMatchesPerClaimCommit) {
  // Randomized transactions — stacked claims, stale seqnums, both conflict
  // and commit modes — applied to twin cells, one with grouped application
  // disabled. Results, rejected lists, and state must match exactly.
  Rng rng(1234);
  for (int round = 0; round < 200; ++round) {
    const auto conflict = rng.NextBounded(2) == 0 ? ConflictMode::kFineGrained
                                                  : ConflictMode::kCoarseGrained;
    const auto commit = rng.NextBounded(2) == 0 ? CommitMode::kIncremental
                                                : CommitMode::kAllOrNothing;
    CellState grouped(16, Resources{8.0, 32.0});
    CellState per_claim(16, Resources{8.0, 32.0});
    per_claim.SetBatchedCommit(false);
    // Pre-load some machines and bump seqnums so stale claims conflict.
    for (int i = 0; i < 8; ++i) {
      const auto m = static_cast<MachineId>(rng.NextBounded(16));
      const Resources r{1.0, 4.0};
      if (grouped.CanFit(m, r)) {
        grouped.Allocate(m, r);
        per_claim.Allocate(m, r);
      }
    }
    const Resources task{1.0 + static_cast<double>(rng.NextBounded(3)),
                         2.0 + static_cast<double>(rng.NextBounded(3))};
    std::vector<TaskClaim> claims;
    const auto n = 1 + rng.NextBounded(24);
    for (uint64_t i = 0; i < n; ++i) {
      const auto m = static_cast<MachineId>(rng.NextBounded(16));
      // Mix fresh and stale seqnums to draw both accept and reject paths.
      const uint64_t seq = rng.NextBounded(2) == 0
                               ? grouped.machine(m).seqnum
                               : grouped.machine(m).seqnum + 1;
      claims.push_back(TaskClaim{m, task, seq});
    }
    std::vector<TaskClaim> rejected_grouped;
    std::vector<TaskClaim> rejected_per_claim;
    const CommitResult a =
        grouped.Commit(claims, conflict, commit, &rejected_grouped);
    const CommitResult b =
        per_claim.Commit(claims, conflict, commit, &rejected_per_claim);
    ASSERT_EQ(a.accepted, b.accepted);
    ASSERT_EQ(a.conflicted, b.conflicted);
    ASSERT_EQ(rejected_grouped.size(), rejected_per_claim.size());
    for (size_t i = 0; i < rejected_grouped.size(); ++i) {
      ASSERT_EQ(rejected_grouped[i].machine, rejected_per_claim[i].machine);
      ASSERT_EQ(rejected_grouped[i].seqnum_at_placement,
                rejected_per_claim[i].seqnum_at_placement);
    }
    for (MachineId m = 0; m < 16; ++m) {
      ASSERT_EQ(grouped.machine(m).allocated, per_claim.machine(m).allocated);
      ASSERT_EQ(grouped.machine(m).seqnum, per_claim.machine(m).seqnum);
    }
    ASSERT_EQ(grouped.TotalAllocated(), per_claim.TotalAllocated());
    ASSERT_TRUE(grouped.CheckInvariants());
  }
}

TEST(CellStateBatchTest, MixedResourceCommitFallsBackAndMatches) {
  // Transactions with non-uniform per-claim resources (not a cohort) must
  // take the per-claim path and still match the ungrouped reference.
  CellState grouped(8, Resources{8.0, 32.0});
  CellState per_claim(8, Resources{8.0, 32.0});
  per_claim.SetBatchedCommit(false);
  std::vector<TaskClaim> claims;
  claims.push_back(TaskClaim{0, Resources{1.0, 2.0}, 0});
  claims.push_back(TaskClaim{0, Resources{2.0, 1.0}, 0});
  claims.push_back(TaskClaim{1, Resources{1.0, 2.0}, 0});
  const CommitResult a =
      grouped.Commit(claims, ConflictMode::kFineGrained, CommitMode::kIncremental);
  const CommitResult b = per_claim.Commit(claims, ConflictMode::kFineGrained,
                                          CommitMode::kIncremental);
  EXPECT_EQ(a.accepted, 3);
  EXPECT_EQ(b.accepted, 3);
  for (MachineId m = 0; m < 8; ++m) {
    EXPECT_EQ(grouped.machine(m).allocated, per_claim.machine(m).allocated);
    EXPECT_EQ(grouped.machine(m).seqnum, per_claim.machine(m).seqnum);
  }
}

// ---------------------------------------------------------------------------
// Harness-level cohort lifecycle edge cases.
// ---------------------------------------------------------------------------

class HarnessSim final : public ClusterSimulation {
 public:
  using ClusterSimulation::ClusterSimulation;
  using ClusterSimulation::FailMachine;
  void SubmitJob(const JobPtr&) override {}
};

SimOptions TrackedOpts(bool cohorts) {
  SimOptions o;
  o.horizon = Duration::FromHours(2);
  o.track_running_tasks = true;
  o.cohort_batching = cohorts;
  return o;
}

Job UniformJob(uint32_t num_tasks, double secs = 600.0) {
  Job j;
  j.id = 42;
  j.num_tasks = num_tasks;
  j.task_duration = Duration::FromSeconds(secs);
  j.task_resources = Resources{1.0, 2.0};
  j.precedence = 0;
  return j;
}

TEST(CohortLifecycleTest, SingleTaskCohortRunsToCompletion) {
  HarnessSim sim(TestCluster(8), TrackedOpts(true));
  const Job job = UniformJob(1);
  sim.cell().Allocate(3, job.task_resources);
  const std::vector<TaskClaim> claims{{3, job.task_resources, 0}};
  sim.StartTasks(job, claims);
  EXPECT_EQ(sim.task_registry().NumRunning(), 1u);
  sim.sim().RunUntil(SimTime::Zero() + Duration::FromSeconds(601));
  EXPECT_EQ(sim.task_registry().NumRunning(), 0u);
  EXPECT_EQ(sim.cell().machine(3).allocated, Resources::Zero());
  // One allocate + one free.
  EXPECT_EQ(sim.cell().machine(3).seqnum, 2u);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(CohortLifecycleTest, CohortEndFreesAggregatedResourcesPerMachine) {
  HarnessSim sim(TestCluster(8), TrackedOpts(true));
  const Job job = UniformJob(5);
  // Three tasks stacked on machine 1, two on machine 4.
  std::vector<TaskClaim> claims;
  for (const MachineId m : {1u, 1u, 1u, 4u, 4u}) {
    sim.cell().Allocate(m, job.task_resources);
    claims.push_back(TaskClaim{m, job.task_resources, 0});
  }
  sim.StartTasks(job, claims);
  EXPECT_EQ(sim.task_registry().NumRunningOn(1), 3u);
  EXPECT_EQ(sim.task_registry().NumRunningOn(4), 2u);
  sim.sim().RunUntil(SimTime::Zero() + Duration::FromSeconds(601));
  EXPECT_EQ(sim.task_registry().NumRunning(), 0u);
  EXPECT_EQ(sim.cell().machine(1).allocated, Resources::Zero());
  EXPECT_EQ(sim.cell().machine(4).allocated, Resources::Zero());
  // 3 allocs + one batched free advancing by 3.
  EXPECT_EQ(sim.cell().machine(1).seqnum, 6u);
  EXPECT_EQ(sim.cell().machine(4).seqnum, 4u);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(CohortLifecycleTest, MemberKilledByFailureShrinksPendingFree) {
  // A machine failure kills two of five cohort members mid-flight; the
  // survivors' end event must free exactly the survivors' resources.
  for (const bool cohorts : {true, false}) {
    HarnessSim sim(TestCluster(8), TrackedOpts(cohorts));
    const Job job = UniformJob(5);
    std::vector<TaskClaim> claims;
    for (const MachineId m : {2u, 2u, 5u, 5u, 5u}) {
      sim.cell().Allocate(m, job.task_resources);
      claims.push_back(TaskClaim{m, job.task_resources, 0});
    }
    sim.StartTasks(job, claims);
    // Fail machine 2 halfway through the tasks' lifetime.
    sim.sim().ScheduleAt(SimTime::Zero() + Duration::FromSeconds(300),
                         [&sim] { sim.FailMachine(2); });
    sim.sim().RunUntil(SimTime::Zero() + Duration::FromSeconds(601));
    EXPECT_EQ(sim.TasksKilledByFailures(), 2);
    EXPECT_EQ(sim.task_registry().NumRunning(), 0u);
    // The failed machine holds only its downtime reservation; the survivor
    // machine is fully freed.
    EXPECT_EQ(sim.cell().machine(5).allocated, Resources::Zero());
    EXPECT_TRUE(sim.cell().CheckInvariants());
  }
}

TEST(CohortLifecycleTest, FullyEvictedCohortCancelsItsEndEvent) {
  for (const bool cohorts : {true, false}) {
    HarnessSim sim(TestCluster(8), TrackedOpts(cohorts));
    const Job job = UniformJob(3);
    std::vector<TaskClaim> claims;
    for (const MachineId m : {6u, 6u, 6u}) {
      sim.cell().Allocate(m, job.task_resources);
      claims.push_back(TaskClaim{m, job.task_resources, 0});
    }
    sim.StartTasks(job, claims);
    sim.sim().ScheduleAt(SimTime::Zero() + Duration::FromSeconds(100),
                         [&sim] { sim.FailMachine(6); });
    // Run well past the cohort's end time: the cancelled end event must not
    // double-free (Free would CHECK-fail on negative allocation).
    sim.sim().RunUntil(SimTime::Zero() + Duration::FromSeconds(2000));
    EXPECT_EQ(sim.TasksKilledByFailures(), 3);
    EXPECT_EQ(sim.task_registry().NumRunning(), 0u);
    EXPECT_TRUE(sim.cell().CheckInvariants());
  }
}

TEST(CohortLifecycleTest, OnTaskEndRunsPerMemberInClaimOrder) {
  HarnessSim sim(TestCluster(8), TrackedOpts(true));
  const Job job = UniformJob(4);
  std::vector<TaskClaim> claims;
  for (const MachineId m : {7u, 0u, 7u, 3u}) {
    sim.cell().Allocate(m, job.task_resources);
    claims.push_back(TaskClaim{m, job.task_resources, 0});
  }
  std::vector<MachineId> seen;
  sim.StartTasks(job, claims,
                 [&seen](const TaskClaim& c) { seen.push_back(c.machine); });
  sim.sim().RunUntil(SimTime::Zero() + Duration::FromSeconds(601));
  EXPECT_EQ(seen, (std::vector<MachineId>{7u, 0u, 7u, 3u}));
}

// ---------------------------------------------------------------------------
// TaskRegistry slab vs. a naive reference model (mirrors cell_state_test's
// randomized block-summary churn test).
// ---------------------------------------------------------------------------

// Reference model: hash maps plus the same append/swap-remove list evolution
// the registry promises (victim selection order is observable, so the slab
// must reproduce it exactly).
class ReferenceRegistry {
 public:
  uint64_t Add(MachineId machine, const Resources& resources,
               int32_t precedence) {
    const uint64_t id = next_id_++;
    tasks_.emplace(id, RunningTask{id, machine, resources, precedence, 0, 0});
    by_machine_[machine].push_back(id);
    return id;
  }

  void Remove(uint64_t task_id) {
    auto it = tasks_.find(task_id);
    ASSERT_TRUE(it != tasks_.end());
    auto& list = by_machine_[it->second.machine];
    auto pos = std::find(list.begin(), list.end(), task_id);
    ASSERT_TRUE(pos != list.end());
    *pos = list.back();
    list.pop_back();
    tasks_.erase(it);
  }

  std::vector<uint64_t> IdsOn(MachineId machine) const {
    auto it = by_machine_.find(machine);
    return it == by_machine_.end() ? std::vector<uint64_t>{} : it->second;
  }

  Resources PreemptibleOn(MachineId machine, int32_t precedence) const {
    Resources total;
    for (const uint64_t id : IdsOn(machine)) {
      const RunningTask& t = tasks_.at(id);
      if (t.precedence < precedence) {
        total += t.resources;
      }
    }
    return total;
  }

  size_t Size() const { return tasks_.size(); }

 private:
  std::unordered_map<uint64_t, RunningTask> tasks_;
  std::unordered_map<MachineId, std::vector<uint64_t>> by_machine_;
  uint64_t next_id_ = 1;
};

TEST(TaskRegistryChurnTest, MatchesReferenceModelUnderRandomizedChurn) {
  TaskRegistry registry;
  ReferenceRegistry reference;
  Rng rng(4321);
  std::vector<uint64_t> live;
  constexpr uint32_t kMachines = 24;
  for (int step = 0; step < 5000; ++step) {
    const uint64_t op = rng.NextBounded(10);
    if (op < 6 || live.empty()) {
      const auto m = static_cast<MachineId>(rng.NextBounded(kMachines));
      const Resources r{0.5 + 0.5 * static_cast<double>(rng.NextBounded(4)),
                        1.0 + static_cast<double>(rng.NextBounded(4))};
      const auto prec = static_cast<int32_t>(rng.NextBounded(3));
      const uint64_t id = registry.Add(m, r, prec, 0);
      const uint64_t ref_id = reference.Add(m, r, prec);
      ASSERT_EQ(id, ref_id);  // sequential ids are observable in traces
      live.push_back(id);
    } else {
      const size_t pick = rng.NextBounded(live.size());
      const uint64_t id = live[pick];
      EXPECT_TRUE(registry.Remove(id));
      reference.Remove(id);
      live[pick] = live.back();
      live.pop_back();
    }
    if (step % 50 == 0) {
      ASSERT_EQ(registry.NumRunning(), reference.Size());
      for (MachineId m = 0; m < kMachines; ++m) {
        const std::vector<uint64_t> expect_ids = reference.IdsOn(m);
        const std::vector<RunningTask> got = registry.TasksOn(m);
        ASSERT_EQ(got.size(), expect_ids.size()) << "machine " << m;
        for (size_t i = 0; i < got.size(); ++i) {
          // Exact order match: the per-machine list evolution is observable
          // through SelectVictims' non-stable sort.
          ASSERT_EQ(got[i].task_id, expect_ids[i]) << "machine " << m;
        }
        const auto prec = static_cast<int32_t>(rng.NextBounded(4));
        ASSERT_EQ(registry.PreemptibleOn(m, prec),
                  reference.PreemptibleOn(m, prec));
        ASSERT_EQ(registry.NumRunningOn(m), expect_ids.size());
      }
    }
  }
  EXPECT_FALSE(registry.Remove(~0ull));  // unknown id
}

TEST(TaskRegistryChurnTest, SlotReuseKeepsIdsUniqueAndSequential) {
  TaskRegistry registry;
  const uint64_t a = registry.Add(0, Resources{1.0, 1.0}, 0, 0);
  const uint64_t b = registry.Add(1, Resources{1.0, 1.0}, 0, 0);
  EXPECT_TRUE(registry.Remove(a));
  const uint64_t c = registry.Add(0, Resources{1.0, 1.0}, 0, 0);  // reuses slot
  EXPECT_NE(c, a);
  EXPECT_EQ(c, b + 1);
  EXPECT_FALSE(registry.Remove(a));  // stale id does not resolve
  EXPECT_TRUE(registry.Remove(b));
  EXPECT_TRUE(registry.Remove(c));
  EXPECT_EQ(registry.NumRunning(), 0u);
}

}  // namespace
}  // namespace omega
