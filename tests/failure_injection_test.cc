// Machine failure injection and heterogeneous cells — the two simplifications
// the paper's simulators made ("does not model machine failures"; lightweight
// machines are homogeneous) that this implementation can lift.
#include <gtest/gtest.h>

#include <set>

#include "src/omega/omega_scheduler.h"
#include "src/workload/cluster_config.h"

namespace omega {
namespace {

TEST(HeterogeneityTest, HomogeneousByDefault) {
  const auto caps = BuildMachineCapacities(TestCluster(10));
  ASSERT_EQ(caps.size(), 10u);
  for (const Resources& c : caps) {
    EXPECT_EQ(c, TestCluster().machine_capacity);
  }
}

TEST(HeterogeneityTest, ClassesInterleavedByFraction) {
  ClusterConfig cfg = TestCluster(1000);
  cfg.machine_classes = {
      {Resources{4.0, 16.0}, 0.6},
      {Resources{8.0, 32.0}, 0.3},
      {Resources{16.0, 64.0}, 0.1},
  };
  const auto caps = BuildMachineCapacities(cfg);
  int small = 0;
  int medium = 0;
  int large = 0;
  for (const Resources& c : caps) {
    if (c.cpus == 4.0) {
      ++small;
    } else if (c.cpus == 8.0) {
      ++medium;
    } else {
      ++large;
    }
  }
  EXPECT_NEAR(small, 600, 30);
  EXPECT_NEAR(medium, 300, 30);
  EXPECT_NEAR(large, 100, 30);
  // Interleaved, not blocked: the first 20 machines already mix classes.
  std::set<double> first_20;
  for (int i = 0; i < 20; ++i) {
    first_20.insert(caps[i].cpus);
  }
  EXPECT_GE(first_20.size(), 2u);
}

TEST(HeterogeneityTest, CellTotalsReflectMixedCapacities) {
  CellState cell({Resources{4.0, 16.0}, Resources{8.0, 32.0}});
  EXPECT_EQ(cell.TotalCapacity(), (Resources{12.0, 48.0}));
  EXPECT_EQ(cell.machine(1).capacity, (Resources{8.0, 32.0}));
}

TEST(HeterogeneityTest, SimulationRunsOnMixedCell) {
  ClusterConfig cfg = TestCluster(64);
  cfg.machine_classes = {
      {Resources{4.0, 16.0}, 0.7},
      {Resources{8.0, 32.0}, 0.3},
  };
  SimOptions opts;
  opts.horizon = Duration::FromHours(2);
  opts.seed = 11;
  OmegaSimulation sim(cfg, opts, SchedulerConfig{}, SchedulerConfig{});
  sim.Run();
  EXPECT_GT(sim.batch_scheduler(0).metrics().JobsScheduled(JobType::kBatch), 50);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

SimOptions FailureOpts(uint64_t seed, double rate_per_day) {
  SimOptions o;
  o.horizon = Duration::FromHours(6);
  o.seed = seed;
  o.track_running_tasks = true;
  o.machine_failure_rate_per_day = rate_per_day;
  o.machine_repair_time = Duration::FromMinutes(30);
  return o;
}

TEST(FailureInjectionTest, FailuresOccurAtConfiguredRate) {
  OmegaSimulation sim(TestCluster(64), FailureOpts(1, 1.0), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();
  // 64 machines * 1/day * 0.25 days = ~16 expected failures.
  EXPECT_GT(sim.MachineFailures(), 4);
  EXPECT_LT(sim.MachineFailures(), 48);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(FailureInjectionTest, NoFailuresWhenDisabled) {
  SimOptions opts = FailureOpts(2, 0.0);
  OmegaSimulation sim(TestCluster(64), opts, SchedulerConfig{}, SchedulerConfig{});
  sim.Run();
  EXPECT_EQ(sim.MachineFailures(), 0);
  EXPECT_EQ(sim.TasksKilledByFailures(), 0);
}

TEST(FailureInjectionTest, FailuresKillRunningTasks) {
  // A busy cell: failures should land on occupied machines.
  ClusterConfig cfg = TestCluster(32);
  cfg.initial_utilization = 0.6;
  OmegaSimulation sim(cfg, FailureOpts(3, 4.0), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();
  EXPECT_GT(sim.MachineFailures(), 0);
  EXPECT_GT(sim.TasksKilledByFailures(), 0);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(FailureInjectionTest, MachinesRepairAndReturn) {
  OmegaSimulation sim(TestCluster(16), FailureOpts(4, 8.0), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();
  EXPECT_GT(sim.MachineFailures(), 0);
  // Repair time (30 min) is far shorter than the horizon: almost everything
  // failed early has been repaired; at most a handful remain down.
  EXPECT_LE(sim.MachinesDown(), 4);
  EXPECT_GE(sim.MachinesDown(), 0);
}

TEST(FailureInjectionTest, WorkloadStillSchedules) {
  OmegaSimulation sim(TestCluster(64), FailureOpts(5, 2.0), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();
  const int64_t scheduled =
      sim.batch_scheduler(0).metrics().JobsScheduled(JobType::kBatch);
  EXPECT_GT(scheduled, 100);
}

TEST(FailureInjectionDeathTest, RequiresRegistry) {
  SimOptions opts = FailureOpts(6, 1.0);
  opts.track_running_tasks = false;
  OmegaSimulation sim(TestCluster(16), opts, SchedulerConfig{}, SchedulerConfig{});
  EXPECT_DEATH(sim.Run(), "track_running_tasks");
}

}  // namespace
}  // namespace omega
