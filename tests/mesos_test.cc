#include "src/mesos/mesos_simulation.h"

#include <gtest/gtest.h>

#include "src/workload/cluster_config.h"

namespace omega {
namespace {

SimOptions ShortRun(uint64_t seed = 1) {
  SimOptions o;
  o.horizon = Duration::FromHours(4);
  o.seed = seed;
  return o;
}

TEST(MesosTest, SchedulesWorkloadWhenDecisionsAreFast) {
  MesosSimulation sim(TestCluster(), ShortRun(), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();
  const int64_t scheduled =
      sim.batch_framework().metrics().JobsScheduled(JobType::kBatch) +
      sim.service_framework().metrics().JobsScheduled(JobType::kService);
  EXPECT_GT(scheduled, 100);
  EXPECT_GE(scheduled + sim.TotalJobsAbandoned(), sim.JobsSubmittedTotal() - 10);
  EXPECT_TRUE(sim.cell().CheckInvariants());
}

TEST(MesosTest, OffersNeverConflict) {
  // Pessimistic concurrency: the offered resources are locked, so commits can
  // never conflict (Table 1: "pessimistic").
  MesosSimulation sim(TestCluster(), ShortRun(2), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();
  EXPECT_EQ(sim.batch_framework().metrics().TasksConflicted(), 0);
  EXPECT_EQ(sim.service_framework().metrics().TasksConflicted(), 0);
}

TEST(MesosTest, OfferedResourcesReturnToZeroWhenIdle) {
  ClusterConfig cfg = TestCluster();
  cfg.batch.interarrival_mean_secs = 1000.0;  // almost no load
  cfg.service.interarrival_mean_secs = 2000.0;
  MesosSimulation sim(cfg, ShortRun(3), SchedulerConfig{}, SchedulerConfig{});
  sim.Run();
  // All offers must have been returned: no resources stay locked forever.
  EXPECT_TRUE(sim.allocator().TotalOffered().IsZero());
}

TEST(MesosTest, SlowServiceFrameworkStarvesBatch) {
  // The §4.2 pathology: with long service decision times, the service
  // framework locks nearly all resources, the batch framework only sees
  // slivers, and batch scheduling degrades (busyness up, abandonments).
  ClusterConfig cfg = TestCluster(16);
  cfg.batch.interarrival_mean_secs = 2.0;
  cfg.service.interarrival_mean_secs = 60.0;

  SchedulerConfig batch;
  batch.max_attempts = 100;
  SchedulerConfig fast_service;
  SchedulerConfig slow_service;
  slow_service.service_times.t_job = Duration::FromSeconds(50.0);

  MesosSimulation fast(cfg, ShortRun(4), batch, fast_service);
  MesosSimulation slow(cfg, ShortRun(4), batch, slow_service);
  fast.Run();
  slow.Run();

  EXPECT_GT(slow.batch_framework().metrics().MeanWait(JobType::kBatch),
            fast.batch_framework().metrics().MeanWait(JobType::kBatch));
}

TEST(MesosTest, AbandonsJobsUnderPathologicalLoad) {
  ClusterConfig cfg = TestCluster(8);
  cfg.initial_utilization = 0.7;
  cfg.batch.interarrival_mean_secs = 1.0;
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(20.0);
  cfg.service.interarrival_mean_secs = 30.0;
  SchedulerConfig batch;
  batch.max_attempts = 20;
  SchedulerConfig service;
  service.service_times.t_job = Duration::FromSeconds(25.0);
  MesosSimulation sim(cfg, ShortRun(5), batch, service);
  sim.Run();
  EXPECT_GT(sim.TotalJobsAbandoned(), 0);
}

TEST(MesosTest, DrfSharesTracked) {
  MesosSimulation sim(TestCluster(), ShortRun(6), SchedulerConfig{},
                      SchedulerConfig{});
  sim.Run();
  const double batch_share = sim.allocator().DominantShare(&sim.batch_framework());
  const double service_share =
      sim.allocator().DominantShare(&sim.service_framework());
  EXPECT_GE(batch_share, 0.0);
  EXPECT_LE(batch_share, 1.0);
  EXPECT_GE(service_share, 0.0);
  EXPECT_LE(service_share, 1.0);
  // Something actually ran through each framework.
  EXPECT_GT(sim.batch_framework().metrics().TasksAccepted(), 0);
  EXPECT_GT(sim.service_framework().metrics().TasksAccepted(), 0);
}

TEST(MesosTest, DeterministicAcrossRuns) {
  MesosSimulation sim1(TestCluster(), ShortRun(7), SchedulerConfig{},
                       SchedulerConfig{});
  MesosSimulation sim2(TestCluster(), ShortRun(7), SchedulerConfig{},
                       SchedulerConfig{});
  sim1.Run();
  sim2.Run();
  EXPECT_EQ(sim1.batch_framework().metrics().JobsScheduled(JobType::kBatch),
            sim2.batch_framework().metrics().JobsScheduled(JobType::kBatch));
}

}  // namespace
}  // namespace omega
