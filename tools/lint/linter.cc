#include "tools/lint/linter.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace omega_lint {
namespace {

namespace fs = std::filesystem;

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

// One lexed token: an identifier or a single punctuation character.
struct ScanToken {
  std::string text;
  size_t offset = 0;
  bool ident = false;
};

std::vector<ScanToken> Tokenize(const std::string& code) {
  std::vector<ScanToken> tokens;
  size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < code.size() && IsIdentChar(code[j])) {
        ++j;
      }
      tokens.push_back({code.substr(i, j - i), i, true});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;  // good enough for a scanner: digits glob with . ' x
      while (j < code.size() &&
             (IsIdentChar(code[j]) || code[j] == '.' || code[j] == '\'')) {
        ++j;
      }
      i = j;
      continue;
    }
    tokens.push_back({std::string(1, c), i, false});
    ++i;
  }
  return tokens;
}

int LineAt(const std::vector<size_t>& line_offsets, size_t offset) {
  auto it = std::upper_bound(line_offsets.begin(), line_offsets.end(), offset);
  return static_cast<int>(it - line_offsets.begin());
}

// Records `omega-lint: allow(rule-a, rule-b)` directives found in a comment.
void ParseSuppression(const std::string& comment, int line,
                      std::map<int, std::set<std::string>>* out) {
  const std::string marker = "omega-lint:";
  size_t pos = comment.find(marker);
  if (pos == std::string::npos) {
    return;
  }
  pos = comment.find("allow(", pos);
  if (pos == std::string::npos) {
    return;
  }
  pos += 6;
  const size_t end = comment.find(')', pos);
  if (end == std::string::npos) {
    return;
  }
  std::string list = comment.substr(pos, end - pos);
  std::string rule;
  std::stringstream ss(list);
  while (std::getline(ss, rule, ',')) {
    const size_t first = rule.find_first_not_of(" \t");
    const size_t last = rule.find_last_not_of(" \t");
    if (first != std::string::npos) {
      (*out)[line].insert(rule.substr(first, last - first + 1));
    }
  }
}

const std::set<std::string>& UnorderedContainerNames() {
  static const std::set<std::string> names = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return names;
}

// Identifiers that read ambient entropy. random_device is flagged even
// without a call so member declarations are caught too.
const std::set<std::string>& RandCallNames() {
  static const std::set<std::string> names = {"rand", "srand", "drand48",
                                              "lrand48", "random"};
  return names;
}

const std::set<std::string>& WallClockCallNames() {
  static const std::set<std::string> names = {
      "time",      "clock",    "gettimeofday", "clock_gettime",
      "localtime", "gmtime",   "mktime",       "ftime"};
  return names;
}

const std::set<std::string>& WallClockTypeNames() {
  static const std::set<std::string> names = {"system_clock",
                                              "high_resolution_clock"};
  return names;
}

const std::set<std::string>& TimeMacroNames() {
  static const std::set<std::string> names = {"__DATE__", "__TIME__",
                                              "__TIMESTAMP__"};
  return names;
}

// Raw concurrency identifiers banned in simulator code outside src/common/
// (det-parallel-reduce). Matched as bare identifiers so both std:: uses and
// the <thread>/<mutex>/<atomic> include lines (whose header names tokenize
// to the same words) are caught.
const std::set<std::string>& ParallelPrimitiveNames() {
  static const std::set<std::string> names = {
      "thread",         "jthread",
      "mutex",          "shared_mutex",
      "recursive_mutex", "timed_mutex",
      "condition_variable", "condition_variable_any",
      "atomic",         "atomic_flag",
      "atomic_ref",     "future",
      "promise",        "packaged_task",
      "async",          "counting_semaphore",
      "binary_semaphore", "barrier",
      "latch",          "call_once",
      "once_flag",      "thread_local",
      "stop_token",     "stop_source"};
  return names;
}

// True if tokens[idx] is reached through a member access (`.x` / `->x`),
// meaning it names the caller's own member, not the banned global.
bool IsMemberAccess(const std::vector<ScanToken>& tokens, size_t idx) {
  if (idx == 0) {
    return false;
  }
  const std::string& prev = tokens[idx - 1].text;
  if (prev == ".") {
    return true;
  }
  return idx >= 2 && prev == ">" && tokens[idx - 2].text == "-";
}

// True if tokens[idx] followed by '(' looks like a function *declaration*
// rather than a call: a preceding identifier is the return type
// (`double time(int)`), while call sites are preceded by punctuation or a
// statement keyword (`return time(nullptr)`).
bool IsDeclarationContext(const std::vector<ScanToken>& tokens, size_t idx) {
  if (idx == 0) {
    return false;
  }
  const ScanToken& prev = tokens[idx - 1];
  if (!prev.ident) {
    return false;
  }
  static const std::set<std::string> kStatementKeywords = {
      "return", "co_return", "co_yield", "case", "throw", "not", "and", "or"};
  return !kStatementKeywords.count(prev.text);
}

// Skips a balanced <...> starting at tokens[idx] == "<"; returns the index
// one past the closing ">", or npos if unbalanced. Parens inside template
// arguments are tolerated because only <> depth is tracked.
size_t SkipAngles(const std::vector<ScanToken>& tokens, size_t idx) {
  int depth = 0;
  for (size_t i = idx; i < tokens.size(); ++i) {
    if (tokens[i].text == "<") {
      ++depth;
    } else if (tokens[i].text == ">") {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (tokens[i].text == ";") {
      return std::string::npos;  // gave up: a stray comparison, not a decl
    }
  }
  return std::string::npos;
}

}  // namespace

const std::vector<std::string>& AllRuleIds() {
  static const std::vector<std::string> ids = {
      "det-rand",
      "det-wallclock",
      "det-time-macro",
      "det-unordered-iter",
      "det-parallel-reduce",
      "layer-order",
      "layer-cycle",
      "hygiene-pragma-once",
      "hygiene-using-namespace",
      "hygiene-nonconst-global",
      "det-shard-unsafe-write",
      "det-rng-substream",
      "det-fp-unordered-acc",
      "sim-dangling-capture",
  };
  return ids;
}

std::string Finding::Key() const {
  return file + ":" + std::to_string(line) + ":" + rule;
}

bool ParseLayersFile(const std::string& path, Config* config,
                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open layers file: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::stringstream ss(line);
    std::string keyword;
    if (!(ss >> keyword)) {
      continue;  // blank
    }
    Layer layer;
    if (keyword != "layer" || !(ss >> layer.name >> layer.rank >>
                                layer.prefix)) {
      *error = path + ":" + std::to_string(lineno) +
               ": expected `layer <name> <rank> <prefix>`";
      return false;
    }
    config->layers.push_back(layer);
  }
  return true;
}

Linter::Linter(std::string root, Config config)
    : root_(std::move(root)), config_(std::move(config)) {}

bool Linter::Run() {
  bool ok = true;
  std::vector<std::string> rel_paths;
  for (const std::string& dir : config_.scan_dirs) {
    const fs::path base = fs::path(root_) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      continue;  // optional scan dir (e.g. no tools/ in a fixture tree)
    }
    for (auto it = fs::recursive_directory_iterator(base, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file()) {
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc") {
        continue;
      }
      std::string rel = fs::relative(it->path(), root_).generic_string();
      bool excluded = false;
      for (const std::string& sub : config_.exclude_substrings) {
        if (rel.find(sub) != std::string::npos) {
          excluded = true;
          break;
        }
      }
      if (!excluded) {
        rel_paths.push_back(std::move(rel));
      }
    }
    if (ec) {
      errors_.push_back("error walking " + base.string() + ": " +
                        ec.message());
      ok = false;
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  for (const std::string& rel : rel_paths) {
    std::ifstream in(fs::path(root_) / rel, std::ios::binary);
    if (!in) {
      errors_.push_back("cannot read " + rel);
      ok = false;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    LoadFile(rel, buf.str());
  }
  Finish();
  return ok;
}

// Strips comments (recording suppressions) and produces the two code views.
void Linter::LoadFile(const std::string& rel_path, const std::string& content) {
  FileData f;
  f.rel_path = rel_path;
  f.code = content;
  f.line_offsets.push_back(0);
  for (size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') {
      f.line_offsets.push_back(i + 1);
    }
  }

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string comment;     // text of the comment being consumed
  int comment_line = 0;    // line the current comment started on
  std::string raw_delim;   // delimiter of the current raw string
  f.code_nostrings = content;
  std::string& code = f.code;
  std::string& nostr = f.code_nostrings;
  int line = 1;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      ++line;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment.clear();
          comment_line = line;
          code[i] = ' ';
          nostr[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment.clear();
          comment_line = line;
          code[i] = ' ';
          nostr[i] = ' ';
        } else if (c == '"' && i >= 1 && content[i - 1] == 'R') {
          // R"delim( ... )delim"
          state = State::kRawString;
          raw_delim.clear();
          size_t j = i + 1;
          while (j < content.size() && content[j] != '(') {
            raw_delim += content[j];
            ++j;
          }
          nostr[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          nostr[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          nostr[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          ParseSuppression(comment, comment_line, &f.suppressions);
          state = State::kCode;
        } else {
          comment += c;
          code[i] = ' ';
          nostr[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          ParseSuppression(comment, comment_line, &f.suppressions);
          code[i] = ' ';
          nostr[i] = ' ';
          code[i + 1] = ' ';
          nostr[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else {
          comment += c;
          if (c != '\n') {
            code[i] = ' ';
            nostr[i] = ' ';
          }
        }
        break;
      case State::kString:
        if (c == '\\') {
          nostr[i] = ' ';
          if (next != '\0' && next != '\n') {
            nostr[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          nostr[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          nostr[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          nostr[i] = ' ';
          if (next != '\0' && next != '\n') {
            nostr[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          nostr[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          nostr[i] = ' ';
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (c == ')' && content.compare(i, close.size(), close) == 0) {
          for (size_t j = 0; j < close.size(); ++j) {
            nostr[i + j] = ' ';
          }
          i += close.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          nostr[i] = ' ';
        }
        break;
      }
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    ParseSuppression(comment, comment_line, &f.suppressions);
  }
  files_[rel_path] = std::move(f);
}

void Linter::Finish() {
  // Two collection passes so a type alias defined in one file registers
  // variables declared with it in files that sort earlier.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& [path, f] : files_) {
      if (InScope(path, config_.unordered_iter_scope)) {
        CollectUnorderedDecls(f);
      }
    }
  }
  for (const auto& [path, f] : files_) {
    if (InScope(path, config_.flow_scope)) {
      CollectFpDecls(f);
    }
  }
  for (const auto& [path, f] : files_) {
    LintFile(f);
  }
  CheckIncludeCycles();
  BuildModel();
  CheckShardSafety();
  CheckRngDiscipline();
  CheckFpUnorderedAcc();
  CheckDanglingCaptures();
  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  findings_.erase(std::unique(findings_.begin(), findings_.end(),
                              [](const Finding& a, const Finding& b) {
                                return a.Key() == b.Key();
                              }),
                  findings_.end());
}

void Linter::AddFinding(const FileData& f, int line, const std::string& rule,
                        const std::string& message) {
  for (int l : {line, line - 1}) {
    auto it = f.suppressions.find(l);
    if (it != f.suppressions.end() &&
        (it->second.count(rule) || it->second.count("*"))) {
      return;
    }
  }
  findings_.push_back({f.rel_path, line, rule, message});
}

const Layer* Linter::LayerFor(const std::string& rel_path) const {
  const Layer* best = nullptr;
  for (const Layer& layer : config_.layers) {
    if (HasPrefix(rel_path, layer.prefix) &&
        (best == nullptr || layer.prefix.size() > best->prefix.size())) {
      best = &layer;
    }
  }
  return best;
}

bool Linter::InScope(const std::string& rel_path,
                     const std::vector<std::string>& prefixes) const {
  for (const std::string& prefix : prefixes) {
    if (HasPrefix(rel_path, prefix)) {
      return true;
    }
  }
  return false;
}

bool Linter::DetExempt(const std::string& rel_path) const {
  for (const std::string& exempt : config_.det_exempt_files) {
    if (rel_path == exempt) {
      return true;
    }
  }
  return false;
}

// Registers names declared with an unordered container type: direct
// declarations (`std::unordered_map<K, V> name`), alias definitions
// (`using Alias = std::unordered_set<T>;`), and alias-typed declarations
// (`Alias name;`). Name-based on purpose: a per-file type system is out of
// scope for a scanner, and suppressions cover the rare collision.
void Linter::CollectUnorderedDecls(const FileData& f) {
  const std::vector<ScanToken> tokens = Tokenize(f.code_nostrings);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const ScanToken& t = tokens[i];
    if (!t.ident) {
      continue;
    }
    size_t after = std::string::npos;
    if (UnorderedContainerNames().count(t.text)) {
      if (i + 1 < tokens.size() && tokens[i + 1].text == "<") {
        after = SkipAngles(tokens, i + 1);
      }
    } else if (unordered_types_.count(t.text)) {
      after = i + 1;
    }
    if (after == std::string::npos || after >= tokens.size()) {
      continue;
    }
    // `using Alias = std::unordered_map<...>;` — walk back over the
    // `std ::` qualification to find the `= Alias using` shape.
    size_t back = i;
    while (back > 0 &&
           (tokens[back - 1].text == ":" || tokens[back - 1].text == "std")) {
      --back;
    }
    if (back >= 3 && tokens[back - 1].text == "=" && tokens[back - 2].ident &&
        tokens[back - 3].text == "using") {
      unordered_types_.insert(tokens[back - 2].text);
      continue;
    }
    // Skip qualifiers/ref/pointer between the type and the declared name.
    size_t j = after;
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" ||
            tokens[j].text == "const")) {
      ++j;
    }
    if (j >= tokens.size() || !tokens[j].ident) {
      continue;  // e.g. `std::unordered_map<K,V>::iterator`, casts, returns
    }
    const std::string& name = tokens[j].text;
    // Require a declarator-terminating token so plain uses of an alias in an
    // expression are not registered.
    if (j + 1 < tokens.size()) {
      const std::string& term = tokens[j + 1].text;
      if (term == ";" || term == "=" || term == "{" || term == "(" ||
          term == "," || term == ")") {
        unordered_vars_.insert(name);
      }
    }
  }
}

// Registers names declared with a floating-point type (`double x`,
// `float total_`, `double* out`) so det-fp-unordered-acc can tell an
// order-sensitive FP accumulation from an integer count. Name-based like the
// unordered registry; collisions are rare and suppressible.
void Linter::CollectFpDecls(const FileData& f) {
  const std::vector<ScanToken> tokens = Tokenize(f.code_nostrings);
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    const ScanToken& t = tokens[i];
    if (!t.ident || (t.text != "double" && t.text != "float")) {
      continue;
    }
    size_t j = i + 1;
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" ||
            tokens[j].text == "const")) {
      ++j;
    }
    if (j >= tokens.size() || !tokens[j].ident) {
      continue;
    }
    if (j + 1 < tokens.size()) {
      const std::string& term = tokens[j + 1].text;
      if (term == ";" || term == "=" || term == "{" || term == "(" ||
          term == "," || term == ")" || term == "[") {
        fp_vars_.insert(tokens[j].text);
      }
    }
  }
}

void Linter::LintFile(const FileData& f) {
  if (InScope(f.rel_path, config_.det_scope) && !DetExempt(f.rel_path)) {
    CheckBannedIdentifiers(f);
  }
  if (InScope(f.rel_path, config_.unordered_iter_scope) &&
      !DetExempt(f.rel_path)) {
    CheckUnorderedIteration(f);
  }
  if (InScope(f.rel_path, config_.parallel_scope) &&
      !InScope(f.rel_path, config_.parallel_exempt_prefixes)) {
    CheckParallelPrimitives(f);
  }
  CheckHeaderHygiene(f);
  CheckLayerOrder(f);
}

void Linter::CheckBannedIdentifiers(const FileData& f) {
  const std::vector<ScanToken> tokens = Tokenize(f.code_nostrings);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const ScanToken& t = tokens[i];
    if (!t.ident) {
      continue;
    }
    const int line = LineAt(f.line_offsets, t.offset);
    const bool called =
        i + 1 < tokens.size() && tokens[i + 1].text == "(";
    if (t.text == "random_device") {
      AddFinding(f, line, "det-rand",
                 "std::random_device reads ambient entropy; derive streams "
                 "from the experiment seed (src/common/random.h)");
    } else if (called && !IsMemberAccess(tokens, i) &&
               !IsDeclarationContext(tokens, i) &&
               RandCallNames().count(t.text)) {
      AddFinding(f, line, "det-rand",
                 t.text + "() is not seed-reproducible; use omega::Rng "
                          "(src/common/random.h)");
    } else if (called && !IsMemberAccess(tokens, i) &&
               !IsDeclarationContext(tokens, i) &&
               WallClockCallNames().count(t.text)) {
      AddFinding(f, line, "det-wallclock",
                 t.text + "() reads wall-clock time; simulation time must "
                          "come from the event queue (steady_clock is allowed "
                          "for benchmarking real elapsed time)");
    } else if (WallClockTypeNames().count(t.text)) {
      AddFinding(f, line, "det-wallclock",
                 "std::chrono::" + t.text +
                     " is wall-clock-dependent; use steady_clock for "
                     "benchmarking and simulation time for everything else");
    } else if (TimeMacroNames().count(t.text)) {
      AddFinding(f, line, "det-time-macro",
                 t.text + " bakes build time into the binary, breaking "
                          "reproducible builds and run provenance");
    }
  }
}

// Flags raw concurrency primitives (std::thread, std::mutex, std::atomic,
// ...) in simulator code outside the sanctioned src/common/ wrappers. Thread
// timing must never order results — all parallelism goes through ParallelFor
// / WorkerPool / DeterministicReducer, whose ordered merges keep outputs
// bit-identical at any thread count (DESIGN.md §12). Member accesses are
// skipped so a field named `mutex` on a project type is not a finding.
void Linter::CheckParallelPrimitives(const FileData& f) {
  const std::vector<ScanToken> tokens = Tokenize(f.code_nostrings);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const ScanToken& t = tokens[i];
    if (!t.ident || IsMemberAccess(tokens, i) ||
        !ParallelPrimitiveNames().count(t.text)) {
      continue;
    }
    AddFinding(f, LineAt(f.line_offsets, t.offset), "det-parallel-reduce",
               "raw concurrency primitive `" + t.text +
                   "` in simulator code: thread timing must not order "
                   "results; use ParallelFor / WorkerPool / "
                   "DeterministicReducer from src/common/ (DESIGN.md §12)");
  }
}

// Flags iteration over identifiers registered by CollectUnorderedDecls:
// range-for whose range expression is a (member-access chain of)
// registered identifier(s), and explicit .begin()/.cbegin()/.rbegin() calls.
void Linter::CheckUnorderedIteration(const FileData& f) {
  const std::vector<ScanToken> tokens = Tokenize(f.code_nostrings);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const ScanToken& t = tokens[i];
    if (!t.ident) {
      continue;
    }
    // `name.begin()` / `name->cbegin()`
    if (unordered_vars_.count(t.text) && i + 2 < tokens.size()) {
      size_t call = 0;
      if (tokens[i + 1].text == ".") {
        call = i + 2;
      } else if (tokens[i + 1].text == "-" && tokens[i + 2].text == ">" &&
                 i + 3 < tokens.size()) {
        call = i + 3;
      }
      if (call != 0 && tokens[call].ident &&
          (tokens[call].text == "begin" || tokens[call].text == "cbegin" ||
           tokens[call].text == "rbegin")) {
        AddFinding(f, LineAt(f.line_offsets, t.offset), "det-unordered-iter",
                   "iterator over unordered container `" + t.text +
                       "`: iteration order is not deterministic across "
                       "standard libraries; use an ordered container or sort");
      }
    }
    // `for (decl : range)`
    if (t.text != "for" || i + 1 >= tokens.size() ||
        tokens[i + 1].text != "(") {
      continue;
    }
    // Find the top-level ':' and the closing ')' of the for-parens.
    int depth = 0;
    size_t colon = 0;
    size_t close = 0;
    for (size_t j = i + 1; j < tokens.size(); ++j) {
      const std::string& s = tokens[j].text;
      if (s == "(" || s == "[" || s == "{") {
        ++depth;
      } else if (s == ")" || s == "]" || s == "}") {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (s == ":" && depth == 1 && colon == 0) {
        // Exclude `::` qualifications.
        const bool part_of_scope =
            (j + 1 < tokens.size() && tokens[j + 1].text == ":") ||
            (j >= 1 && tokens[j - 1].text == ":");
        if (!part_of_scope) {
          colon = j;
        }
      } else if (s == ";" && depth == 1) {
        break;  // classic for-loop, not range-for
      }
    }
    if (colon == 0 || close == 0) {
      continue;
    }
    // The range expression: flag if it is a pure identifier/member chain
    // (no calls — a call's result type is unknowable to a scanner) that
    // mentions a registered unordered name.
    bool has_call = false;
    bool hits_registry = false;
    for (size_t j = colon + 1; j < close; ++j) {
      if (tokens[j].text == "(") {
        has_call = true;
        break;
      }
      if (tokens[j].ident && unordered_vars_.count(tokens[j].text)) {
        hits_registry = true;
      }
    }
    if (!has_call && hits_registry) {
      AddFinding(f, LineAt(f.line_offsets, tokens[colon].offset),
                 "det-unordered-iter",
                 "range-for over unordered container: iteration order is not "
                 "deterministic across standard libraries and can change "
                 "metric bits; use an ordered container or sort first");
    }
  }
}

void Linter::CheckHeaderHygiene(const FileData& f) {
  if (!HasSuffix(f.rel_path, ".h")) {
    return;
  }
  const std::vector<ScanToken> tokens = Tokenize(f.code_nostrings);
  bool has_pragma_once = false;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text == "#" && tokens[i + 1].text == "pragma" &&
        tokens[i + 2].text == "once") {
      has_pragma_once = true;
      break;
    }
  }
  if (!has_pragma_once) {
    AddFinding(f, 1, "hygiene-pragma-once",
               "header lacks #pragma once (double-inclusion guard)");
  }
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text == "using" && tokens[i + 1].text == "namespace") {
      AddFinding(f, LineAt(f.line_offsets, tokens[i].offset),
                 "hygiene-using-namespace",
                 "`using namespace` at header scope leaks into every "
                 "includer; qualify names instead");
    }
  }
  CheckNonConstGlobals(f);
}

// Heuristic scan for mutable namespace-scope variables in a header. Tracks a
// brace-context stack so class members and function locals are ignored;
// statements at namespace scope that declare a variable without
// const/constexpr/constinit are flagged. Functions are recognized by a '('
// in the statement, type definitions by their keyword.
void Linter::CheckNonConstGlobals(const FileData& f) {
  const std::vector<ScanToken> tokens = Tokenize(f.code_nostrings);
  enum class Ctx { kNamespace, kOther, kInit };
  std::vector<Ctx> stack;  // implicit bottom: namespace (top level)
  std::vector<const ScanToken*> stmt;

  auto at_namespace_scope = [&] {
    for (Ctx c : stack) {
      if (c != Ctx::kNamespace) {
        return false;
      }
    }
    return true;
  };
  auto stmt_has = [&](const char* word) {
    for (const ScanToken* t : stmt) {
      if (t->text == word) {
        return true;
      }
    }
    return false;
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const ScanToken& t = tokens[i];
    if (t.text == "{") {
      if (!at_namespace_scope()) {
        stack.push_back(Ctx::kOther);
        continue;
      }
      if (stmt_has("=")) {
        stack.push_back(Ctx::kInit);  // brace initializer: statement goes on
      } else if (stmt_has("namespace") || stmt_has("extern")) {
        stack.push_back(Ctx::kNamespace);
        stmt.clear();
      } else {
        stack.push_back(Ctx::kOther);  // class/struct/enum/function body
        stmt.clear();
      }
      continue;
    }
    if (t.text == "}") {
      if (!stack.empty()) {
        const Ctx popped = stack.back();
        stack.pop_back();
        if (popped != Ctx::kInit) {
          stmt.clear();
        }
      }
      continue;
    }
    if (!at_namespace_scope()) {
      continue;
    }
    if (t.text == ";") {
      bool skip = stmt.size() < 2;
      static const char* kSkipWords[] = {
          "(",      "using",         "typedef", "friend",    "operator",
          "extern", "static_assert", "template", "class",    "struct",
          "union",  "enum",          "concept",  "namespace", "requires",
          "const",  "constexpr",     "constinit", "consteval", "#"};
      for (const char* word : kSkipWords) {
        if (skip) {
          break;
        }
        skip = stmt_has(word);
      }
      if (!skip) {
        // Name for the message: last identifier before '=' (or the end).
        std::string name;
        for (const ScanToken* s : stmt) {
          if (s->text == "=") {
            break;
          }
          if (s->ident) {
            name = s->text;
          }
        }
        AddFinding(f, LineAt(f.line_offsets, stmt.front()->offset),
                   "hygiene-nonconst-global",
                   "mutable namespace-scope variable `" + name +
                       "` in a header: every TU gets its own copy (or an ODR "
                       "violation) and it is shared mutable state; make it "
                       "constexpr or move it behind a function");
      }
      stmt.clear();
      continue;
    }
    // Preprocessor directives end at the newline, not at a ';'; drop a
    // directive from the statement buffer once the line advances so it does
    // not mask the following declaration.
    if (!stmt.empty() && stmt.front()->text == "#" &&
        LineAt(f.line_offsets, t.offset) >
            LineAt(f.line_offsets, stmt.front()->offset)) {
      stmt.clear();
    }
    stmt.push_back(&t);
  }
}

void Linter::CheckLayerOrder(const FileData& f) {
  // Parse project-local includes from the comment-stripped text (string
  // literals intact), so commented-out includes are ignored.
  std::stringstream ss(f.code);
  std::string line_text;
  int line = 0;
  while (std::getline(ss, line_text)) {
    ++line;
    size_t pos = line_text.find_first_not_of(" \t");
    if (pos == std::string::npos || line_text[pos] != '#') {
      continue;
    }
    pos = line_text.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos ||
        line_text.compare(pos, 7, "include") != 0) {
      continue;
    }
    const size_t open = line_text.find('"', pos);
    if (open == std::string::npos) {
      continue;  // <system> include
    }
    const size_t end = line_text.find('"', open + 1);
    if (end == std::string::npos) {
      continue;
    }
    const std::string target = line_text.substr(open + 1, end - open - 1);
    if (target.find('/') == std::string::npos) {
      continue;  // not a root-relative project path
    }
    includes_[f.rel_path].push_back({line, target});

    const Layer* from = LayerFor(f.rel_path);
    if (from == nullptr) {
      continue;  // tests/bench/examples/tools may include anything
    }
    const Layer* to = LayerFor(target);
    if (to == nullptr) {
      // A layered file reaching outside the layered tree (e.g. src/
      // including bench/) is an ordering violation by definition.
      if (files_.count(target) ||
          HasPrefix(target, from->prefix.substr(0, from->prefix.find('/')))) {
        AddFinding(f, line, "layer-order",
                   "layered file includes non-layered project file \"" +
                       target + "\"");
      }
      continue;
    }
    if (to->rank > from->rank) {
      AddFinding(f, line, "layer-order",
                 "upward include: " + from->name + " (rank " +
                     std::to_string(from->rank) + ") -> " + to->name +
                     " (rank " + std::to_string(to->rank) +
                     ") violates the layer DAG (" + target + ")");
    }
  }
}

// DFS over the project include graph; reports one finding per back edge with
// the full cycle path. Rank checks alone cannot catch mutual includes between
// equal-rank peers, so this closes the loop on "no cyclic edges".
void Linter::CheckIncludeCycles() {
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path;

  struct Frame {
    std::string node;
    size_t next_edge = 0;
  };
  for (const auto& [start, unused] : includes_) {
    (void)unused;
    if (color[start] != 0) {
      continue;
    }
    std::vector<Frame> frames;
    frames.push_back({start, 0});
    color[start] = 1;
    path.push_back(start);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      auto it = includes_.find(frame.node);
      static const std::vector<std::pair<int, std::string>> kNoEdges;
      const auto& edges = it != includes_.end() ? it->second : kNoEdges;
      if (frame.next_edge >= edges.size()) {
        color[frame.node] = 2;
        frames.pop_back();
        path.pop_back();
        continue;
      }
      const auto& [line, target] = edges[frame.next_edge++];
      if (!files_.count(target)) {
        continue;  // include of a file outside the scanned tree
      }
      if (color[target] == 1) {
        std::string cycle;
        bool in_cycle = false;
        for (const std::string& node : path) {
          if (node == target) {
            in_cycle = true;
          }
          if (in_cycle) {
            cycle += node + " -> ";
          }
        }
        cycle += target;
        const FileData& f = files_.at(frame.node);
        AddFinding(f, line, "layer-cycle", "include cycle: " + cycle);
        continue;
      }
      if (color[target] == 0) {
        color[target] = 1;
        path.push_back(target);
        frames.push_back({target, 0});
      }
    }
  }
}

std::set<std::string> LoadBaseline(const std::string& path) {
  std::set<std::string> baseline;
  std::ifstream in(path);
  if (!in) {
    return baseline;
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
      continue;
    }
    const size_t last = line.find_last_not_of(" \t\r");
    baseline.insert(line.substr(first, last - first + 1));
  }
  return baseline;
}

bool WriteBaseline(const std::string& path,
                   const std::vector<Finding>& all) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "# omega_lint baseline: findings accepted as pre-existing debt.\n"
      << "# One `<file>:<line>:<rule>` per line. Regenerate with\n"
      << "# `omega_lint --write-baseline`; shrink it whenever you can.\n";
  for (const Finding& finding : all) {
    out << finding.Key() << "\n";
  }
  return static_cast<bool>(out);
}

std::vector<Finding> FilterBaselined(const std::vector<Finding>& all,
                                     const std::set<std::string>& baseline) {
  std::vector<Finding> out;
  for (const Finding& finding : all) {
    if (!baseline.count(finding.Key())) {
      out.push_back(finding);
    }
  }
  return out;
}

}  // namespace omega_lint
