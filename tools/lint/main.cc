// CLI driver for omega_lint. See linter.h for the rule catalogue and
// DESIGN.md §9 for the policy. Exit codes: 0 clean, 1 un-baselined findings,
// 2 usage or IO error.
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "tools/lint/linter.h"

namespace {

void Usage(std::ostream& os) {
  os << "usage: omega_lint [--root DIR] [--layers FILE] [--baseline FILE]\n"
        "                  [--write-baseline] [--list-rules]\n"
        "\n"
        "Scans src/, tools/, bench/, examples/, tests/ under --root (default\n"
        "'.') for determinism, layering, and header-hygiene violations.\n"
        "  --root DIR        repository root to scan\n"
        "  --layers FILE     layer DAG config (default ROOT/tools/lint/\n"
        "                    layers.conf)\n"
        "  --baseline FILE   accepted-findings file (default ROOT/tools/\n"
        "                    lint/baseline.txt)\n"
        "  --write-baseline  rewrite the baseline to the current findings\n"
        "  --require-empty-baseline  exit 1 if the baseline file contains\n"
        "                    any entry (CI ratchet: debt must be fixed, not\n"
        "                    parked)\n"
        "  --list-rules      print every rule ID and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string layers_path;
  std::string baseline_path;
  bool write_baseline = false;
  bool require_empty_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "omega_lint: " << flag << " requires a value\n";
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--layers") {
      layers_path = value("--layers");
    } else if (arg == "--baseline") {
      baseline_path = value("--baseline");
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--require-empty-baseline") {
      require_empty_baseline = true;
    } else if (arg == "--list-rules") {
      for (const std::string& id : omega_lint::AllRuleIds()) {
        std::cout << id << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage(std::cout);
      return 0;
    } else {
      std::cerr << "omega_lint: unknown argument '" << arg << "'\n";
      Usage(std::cerr);
      return 2;
    }
  }

  namespace fs = std::filesystem;
  if (layers_path.empty()) {
    layers_path = (fs::path(root) / "tools/lint/layers.conf").string();
  }
  if (baseline_path.empty()) {
    baseline_path = (fs::path(root) / "tools/lint/baseline.txt").string();
  }

  omega_lint::Config config;
  std::string error;
  if (fs::exists(layers_path)) {
    if (!omega_lint::ParseLayersFile(layers_path, &config, &error)) {
      std::cerr << "omega_lint: " << error << "\n";
      return 2;
    }
  } else {
    std::cerr << "omega_lint: warning: no layers config at " << layers_path
              << "; layering rules disabled\n";
  }

  omega_lint::Linter linter(root, config);
  const bool ok = linter.Run();
  for (const std::string& err : linter.errors()) {
    std::cerr << "omega_lint: " << err << "\n";
  }
  if (!ok) {
    return 2;
  }

  if (write_baseline) {
    if (!omega_lint::WriteBaseline(baseline_path, linter.findings())) {
      std::cerr << "omega_lint: cannot write baseline " << baseline_path
                << "\n";
      return 2;
    }
    std::cout << "omega_lint: wrote " << linter.findings().size()
              << " finding(s) to " << baseline_path << "\n";
    return 0;
  }

  const auto baseline = omega_lint::LoadBaseline(baseline_path);
  if (require_empty_baseline && !baseline.empty()) {
    std::cout << "omega_lint: baseline " << baseline_path << " holds "
              << baseline.size()
              << " entrie(s) but --require-empty-baseline is set; fix the "
                 "findings instead of parking them\n";
    return 1;
  }
  const auto fresh = omega_lint::FilterBaselined(linter.findings(), baseline);
  for (const auto& finding : fresh) {
    std::cout << finding.file << ":" << finding.line << ": [" << finding.rule
              << "] " << finding.message << "\n";
  }
  const size_t baselined = linter.findings().size() - fresh.size();
  if (fresh.empty()) {
    std::cout << "omega_lint: clean (" << baselined << " baselined)\n";
    return 0;
  }
  std::cout << "omega_lint: " << fresh.size() << " finding(s) (" << baselined
            << " baselined). Fix them, add an inline\n"
            << "`// omega-lint: allow(<rule>)`, or (last resort) re-run with "
               "--write-baseline.\n";
  return 1;
}
