// omega_lint v2 project model: a lightweight, dependency-free (std:: only)
// syntactic model of the whole scanned tree, built from the same
// comment/string-stripped text the single-pass rules scan.
//
// It is deliberately NOT a C++ front end. A scope-stack parser recognizes
// namespaces, classes, function/method/lambda bodies, local and parameter
// declarations, and call sites with a coarse receiver classification. On top
// of that, ProjectModel links a symbol table and resolves calls
// conservatively: exact qualified matches first, then receiver-type matches
// (including derived-class overrides, so virtual dispatch is over-
// approximated), then every definition sharing the bare name. Ambiguity
// always widens the answer — the flow rules built on this model (DESIGN.md
// §14) prefer false reachability over missed reachability.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace omega_lint {

// One lexed token: an identifier or a single punctuation character.
// Numeric literals are skipped (no rule needs them); offsets index into the
// stripped text, which is byte-aligned with the original file.
struct Token {
  std::string text;
  size_t offset = 0;
  bool ident = false;
};

std::vector<Token> Lex(const std::string& code);

// How a local name binds storage. kRefNonLocal marks the dangerous case:
// a reference whose initializer roots outside the function's own frame
// (member, global, or unknown), so writes through it escape the frame.
enum class DeclKind { kValue, kPointer, kRefLocal, kRefNonLocal };

struct LocalDecl {
  DeclKind kind = DeclKind::kValue;
  std::string type;  // principal type identifier; "" when unrecognizable
};

// Receiver classification for `recv.Method(...)` call sites.
// kFrameLocal: the receiver chain roots at a by-value local/parameter of the
// calling function, so the callee's writes to its own members stay inside
// the caller's frame. kShared: anything else (member, global, reference
// parameter, unknown) — the callee's member writes touch shared state.
enum class ReceiverKind { kNone, kFrameLocal, kShared };

struct CallSite {
  std::string callee;           // bare name of the called function
  std::string qualifier;        // "Cls" for explicit Cls::fn(...) calls
  std::string receiver_root;    // root identifier of the receiver chain
  std::string receiver_type;    // declared type of that root, "" unknown
  ReceiverKind receiver = ReceiverKind::kNone;
  size_t token_index = 0;       // index of the callee token in file tokens
  std::vector<int> lambda_args;         // function ids of inline lambda args
  std::vector<std::string> ident_args;  // arguments that are one identifier
};

struct LambdaInfo {
  bool default_ref = false;   // [&]
  bool default_copy = false;  // [=]
  bool captures_this = false;
  std::vector<std::string> ref_captures;   // [&x]
  std::vector<std::string> copy_captures;  // [x], [x = expr]
};

struct FunctionDef {
  int id = -1;
  std::string file;
  std::string name;        // bare name; "<lambda>" for lambdas
  std::string class_name;  // enclosing class, "" for free functions
  bool is_lambda = false;
  int enclosing = -1;      // enclosing FunctionDef id (lambdas, local defs)
  LambdaInfo lambda;
  size_t name_token = 0;   // token index of the name (line lookup)
  size_t body_begin = 0;   // token index of the opening '{'
  size_t body_end = 0;     // token index of the matching '}'
  std::map<std::string, LocalDecl> locals;  // params + locals by name
  std::map<std::string, int> local_lambdas;  // `auto f = [...]...` by name
  std::vector<CallSite> calls;
};

struct ClassInfo {
  std::string name;
  std::vector<std::string> bases;
  // Member name -> principal type identifier (used for receiver typing).
  std::map<std::string, std::string> member_types;
};

class ProjectModel {
 public:
  // Parses one file's stripped text into the model. Call once per file, then
  // resolve calls via the lookup helpers; there is no separate link step.
  void AddFile(const std::string& rel_path, const std::string& code_nostrings);

  const std::vector<FunctionDef>& functions() const { return functions_; }
  const FunctionDef& function(int id) const { return functions_[id]; }
  const std::vector<Token>& tokens(const std::string& rel_path) const;
  const ClassInfo* class_info(const std::string& name) const;

  // All function ids sharing a bare name, across classes and files.
  const std::vector<int>* by_name(const std::string& name) const;

  // Definitions of `cls::name` plus overrides in classes deriving from cls
  // (transitively): the virtual-dispatch over-approximation.
  std::vector<int> MethodsOf(const std::string& cls,
                             const std::string& name) const;

  bool DerivesFrom(const std::string& derived, const std::string& base) const;

  // Resolves a call conservatively. Order: local lambda named `callee` in
  // the caller or a lexical ancestor; explicit `qualifier::callee`;
  // `receiver_type::callee`; a method of the caller's own class (or a base)
  // when the call is unqualified and receiver-less; otherwise every
  // definition with the bare name. Unknown names resolve to {}.
  std::vector<int> Resolve(const FunctionDef& caller,
                           const CallSite& call) const;

 private:
  std::vector<FunctionDef> functions_;
  std::map<std::string, std::vector<Token>> file_tokens_;
  std::map<std::string, ClassInfo> classes_;
  std::map<std::string, std::vector<int>> by_name_;
  // Namespace names seen so far: distinguishes `ns::Fn` from `Cls::Fn` in
  // out-of-line definitions and qualified calls.
  std::set<std::string> namespaces_;
};

}  // namespace omega_lint
