#include "tools/lint/model.h"

#include <algorithm>
#include <cctype>

namespace omega_lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Keywords that can precede '(' without being a call, or start a statement
// that must not be mistaken for a declaration.
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "if",        "for",       "while",     "switch",    "catch",
      "return",    "co_return", "co_yield",  "co_await",  "sizeof",
      "alignof",   "alignas",   "decltype",  "noexcept",  "typeid",
      "new",       "delete",    "throw",     "case",      "default",
      "goto",      "break",     "continue",  "else",      "do",
      "static_cast",            "dynamic_cast",
      "reinterpret_cast",       "const_cast",
      "static_assert",          "constexpr", "consteval", "constinit",
      "using",     "typedef",   "template",  "typename",  "operator",
      "public",    "private",   "protected", "virtual",   "override",
      "final",     "friend",    "explicit",  "inline",    "static",
      "const",     "mutable",   "auto",      "void",      "not",
      "and",       "or",        "defined",   "requires",  "concept",
  };
  return kw;
}

bool IsTypeIsh(const Token& t) {
  if (t.text == ">" || t.text == "&" || t.text == "*") {
    return true;
  }
  // `auto`/`const`/`unsigned` etc. head declarations as often as a named
  // type does; the other keywords never do.
  if (t.text == "auto" || t.text == "const" || t.text == "unsigned" ||
      t.text == "signed" || t.text == "long" || t.text == "short" ||
      t.text == "bool" || t.text == "int" || t.text == "char" ||
      t.text == "float" || t.text == "double" || t.text == "void") {
    return true;
  }
  return t.ident && !Keywords().count(t.text) &&
         !std::isdigit(static_cast<unsigned char>(t.text[0]));
}

// Skips backward over a balanced ']'/')' group ending at `i`; returns the
// index of the matching opener, or npos on imbalance.
size_t BalanceBack(const std::vector<Token>& t, size_t i) {
  const std::string close = t[i].text;
  const std::string open = close == "]" ? "[" : "(";
  int depth = 0;
  for (size_t j = i + 1; j-- > 0;) {
    if (t[j].text == close) {
      ++depth;
    } else if (t[j].text == open) {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return std::string::npos;
}

// Skips forward over a balanced group starting at `i` ('(' or '[' or '{');
// returns the index of the matching closer, or npos.
size_t BalanceFwd(const std::vector<Token>& t, size_t i) {
  const std::string open = t[i].text;
  const std::string close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    if (t[j].text == open) {
      ++depth;
    } else if (t[j].text == close) {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return std::string::npos;
}

}  // namespace

std::vector<Token> Lex(const std::string& code) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < code.size() && IsIdentChar(code[j])) {
        ++j;
      }
      tokens.push_back({code.substr(i, j - i), i, true});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;  // numbers glob with . ' and suffix letters
      while (j < code.size() &&
             (IsIdentChar(code[j]) || code[j] == '.' || code[j] == '\'')) {
        ++j;
      }
      tokens.push_back({code.substr(i, j - i), i, false});
      i = j;
      continue;
    }
    tokens.push_back({std::string(1, c), i, false});
    ++i;
  }
  return tokens;
}

namespace {

// Drops preprocessor-directive tokens ('#' to end of logical line, honoring
// '\' continuations) so macro bodies never look like declarations or calls.
std::vector<Token> FilterPreprocessor(const std::vector<Token>& in,
                                      const std::string& code) {
  std::vector<size_t> line_offsets{0};
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '\n') {
      line_offsets.push_back(i + 1);
    }
  }
  auto line_of = [&](size_t off) {
    return std::upper_bound(line_offsets.begin(), line_offsets.end(), off) -
           line_offsets.begin();
  };
  std::vector<Token> out;
  size_t i = 0;
  while (i < in.size()) {
    if (in[i].text != "#") {
      out.push_back(in[i++]);
      continue;
    }
    long line = line_of(in[i].offset);
    bool cont = false;
    size_t j = i + 1;
    for (; j < in.size(); ++j) {
      const long tl = line_of(in[j].offset);
      if (tl != line) {
        if (!cont) {
          break;
        }
        line = tl;
      }
      cont = in[j].text == "\\";
    }
    i = j;
  }
  return out;
}

// A recognized lambda introducer: `[caps](params) specs... {`.
struct LambdaIntro {
  size_t intro_begin = 0;  // index of '['
  size_t caps_end = 0;     // index of matching ']'
  size_t params_begin = 0; // index of '(' or 0 if absent
  size_t params_end = 0;   // index of ')' or 0
  size_t body_begin = 0;   // index of '{'
};

// Finds every lambda introducer up front so the main scope scan can treat
// the body '{' specially. A '[' starts a lambda iff it appears in expression
// context and is followed by a balanced capture list, an optional parameter
// list, and (within a bounded lookahead for specifiers and trailing return
// types) a '{'.
std::map<size_t, LambdaIntro> FindLambdaIntros(const std::vector<Token>& t) {
  std::map<size_t, LambdaIntro> out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "[") {
      continue;
    }
    if (i > 0) {
      const Token& p = t[i - 1];
      const bool expr_ctx =
          !p.ident ? (p.text != "]" && p.text != ")" && p.text != "[")
                   : Keywords().count(p.text) > 0;
      // After an identifier (array subscript) or ']'/')' a '[' subscripts.
      if (!expr_ctx) {
        continue;
      }
      if (p.text == "operator") {
        continue;
      }
    }
    const size_t caps_end = BalanceFwd(t, i);
    if (caps_end == std::string::npos) {
      continue;
    }
    LambdaIntro intro;
    intro.intro_begin = i;
    intro.caps_end = caps_end;
    size_t j = caps_end + 1;
    if (j < t.size() && t[j].text == "(") {
      intro.params_begin = j;
      intro.params_end = BalanceFwd(t, j);
      if (intro.params_end == std::string::npos) {
        continue;
      }
      j = intro.params_end + 1;
    }
    // Specifiers and trailing return type: bounded scan for the body '{'.
    bool found = false;
    for (int steps = 0; j < t.size() && steps < 40; ++steps) {
      const std::string& s = t[j].text;
      if (s == "{") {
        intro.body_begin = j;
        found = true;
        break;
      }
      if (s == ";" || s == ")" || s == ",") {
        break;  // a subscript or array type, not a lambda
      }
      if (s == "(" || s == "<" || s == "[") {
        const size_t close = s == "<" ? j : BalanceFwd(t, j);
        if (s == "<") {
          // crude angle skip: advance to matching '>' at this depth
          int depth = 0;
          size_t k = j;
          for (; k < t.size(); ++k) {
            if (t[k].text == "<") ++depth;
            else if (t[k].text == ">" && --depth == 0) break;
            else if (t[k].text == ";") { k = std::string::npos; break; }
          }
          if (k == std::string::npos || k >= t.size()) break;
          j = k + 1;
          continue;
        }
        if (close == std::string::npos) {
          break;
        }
        j = close + 1;
        continue;
      }
      ++j;
    }
    if (found) {
      out[intro.body_begin] = intro;
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& file, const std::vector<Token>& t,
         std::vector<FunctionDef>* functions,
         std::map<std::string, ClassInfo>* classes,
         std::map<std::string, std::vector<int>>* by_name,
         std::set<std::string>* namespaces)
      : file_(file),
        t_(t),
        functions_(functions),
        classes_(classes),
        by_name_(by_name),
        namespaces_(namespaces),
        lambdas_(FindLambdaIntros(t)) {}

  void Parse();

 private:
  struct ScopeFrame {
    enum Kind { kNamespace, kClass, kFunction, kBlock, kInit } kind;
    std::string class_name;  // for kClass
    int func = -1;           // active function id, -1 outside functions
  };
  struct ParenFrame {
    bool is_call = false;
    int owner_func = -1;
    int call_index = -1;
    bool is_for = false;
    bool is_cond = false;  // `if (...)` / `while (...)` condition
    size_t open_tok = 0;   // token index of the '('
    size_t colon = 0;  // token index of a range-for ':', 0 if none
    int arg_tokens = 0;
    std::string arg_ident;
  };

  int CurFunc() const {
    for (size_t i = scopes_.size(); i-- > 0;) {
      if (scopes_[i].kind == ScopeFrame::kFunction ||
          scopes_[i].kind == ScopeFrame::kBlock) {
        return scopes_[i].func;
      }
      if (scopes_[i].kind == ScopeFrame::kInit) {
        continue;
      }
      return -1;
    }
    return -1;
  }
  const ScopeFrame* InnermostNonInit() const {
    for (size_t i = scopes_.size(); i-- > 0;) {
      if (scopes_[i].kind != ScopeFrame::kInit) {
        return &scopes_[i];
      }
    }
    return nullptr;
  }
  std::string CurClass() const {
    for (size_t i = scopes_.size(); i-- > 0;) {
      if (scopes_[i].kind == ScopeFrame::kClass) {
        return scopes_[i].class_name;
      }
      if (scopes_[i].kind == ScopeFrame::kFunction ||
          scopes_[i].kind == ScopeFrame::kBlock) {
        // methods defined out of line carry their own class name
        const int f = scopes_[i].func;
        return f >= 0 ? (*functions_)[f].class_name : "";
      }
    }
    return "";
  }

  void HandleOpenBrace(size_t i);
  void HandleCloseBrace(size_t i);
  void HandleOpenParen(size_t i);
  void HandleCloseParen(size_t i);
  void HandleSemicolon();
  void HandleComma();
  void HandleColon(size_t i);

  int MakeFunction(const std::string& name, const std::string& cls,
                   bool is_lambda, size_t name_token, size_t body_begin);
  void ParseCaptures(FunctionDef* fn, const LambdaIntro& intro);
  void ParseParams(FunctionDef* fn, size_t begin, size_t end);
  void AnalyzeDeclStmt(FunctionDef* fn);
  void AnalyzeMemberDecl(const std::string& cls);
  void AnalyzeClassHead(size_t brace);
  bool TryFunctionHead(size_t brace);
  DeclKind ClassifyRefInit(FunctionDef* fn, size_t eq_stmt_idx);
  const LocalDecl* FindLocal(const FunctionDef& fn,
                             const std::string& name) const;

  bool StmtHasAtDepth0(const std::string& word) const;
  bool StmtParensBalanced() const;

  const std::string& file_;
  const std::vector<Token>& t_;
  std::vector<FunctionDef>* functions_;
  std::map<std::string, ClassInfo>* classes_;
  std::map<std::string, std::vector<int>>* by_name_;
  std::set<std::string>* namespaces_;
  std::map<size_t, LambdaIntro> lambdas_;

  std::vector<ScopeFrame> scopes_;
  std::vector<ParenFrame> parens_;
  std::vector<size_t> stmt_;  // token indexes since the last boundary
};

bool Parser::StmtHasAtDepth0(const std::string& word) const {
  int angle = 0;
  for (size_t idx : stmt_) {
    const std::string& s = t_[idx].text;
    if (s == "<") {
      ++angle;
    } else if (s == ">") {
      angle = std::max(0, angle - 1);
    } else if (angle == 0 && s == word) {
      return true;
    }
  }
  return false;
}

bool Parser::StmtParensBalanced() const {
  int depth = 0;
  for (size_t idx : stmt_) {
    if (t_[idx].text == "(") {
      ++depth;
    } else if (t_[idx].text == ")") {
      --depth;
    }
  }
  return depth == 0;
}

const LocalDecl* Parser::FindLocal(const FunctionDef& fn,
                                   const std::string& name) const {
  auto it = fn.locals.find(name);
  return it == fn.locals.end() ? nullptr : &it->second;
}

int Parser::MakeFunction(const std::string& name, const std::string& cls,
                         bool is_lambda, size_t name_token,
                         size_t body_begin) {
  FunctionDef fn;
  fn.id = static_cast<int>(functions_->size());
  fn.file = file_;
  fn.name = name;
  fn.class_name = cls;
  fn.is_lambda = is_lambda;
  fn.enclosing = CurFunc();
  fn.name_token = name_token;
  fn.body_begin = body_begin;
  fn.body_end = body_begin;
  functions_->push_back(std::move(fn));
  if (!is_lambda) {
    (*by_name_)[name].push_back(static_cast<int>(functions_->size()) - 1);
  }
  return static_cast<int>(functions_->size()) - 1;
}

void Parser::ParseCaptures(FunctionDef* fn, const LambdaIntro& intro) {
  fn->lambda.default_ref = false;
  std::vector<std::vector<size_t>> entries(1);
  int depth = 0;
  for (size_t j = intro.intro_begin + 1; j < intro.caps_end; ++j) {
    const std::string& s = t_[j].text;
    if (s == "(" || s == "[" || s == "{" || s == "<") {
      ++depth;
    } else if (s == ")" || s == "]" || s == "}" || s == ">") {
      --depth;
    } else if (s == "," && depth == 0) {
      entries.emplace_back();
      continue;
    }
    entries.back().push_back(j);
  }
  for (const auto& e : entries) {
    if (e.empty()) {
      continue;
    }
    const std::string& first = t_[e.front()].text;
    if (first == "&" && e.size() == 1) {
      fn->lambda.default_ref = true;
    } else if (first == "=" && e.size() == 1) {
      fn->lambda.default_copy = true;
    } else if (first == "this") {
      fn->lambda.captures_this = true;
    } else if (first == "*" && e.size() >= 2 && t_[e[1]].text == "this") {
      fn->lambda.copy_captures.push_back("this");
    } else if (first == "&" && e.size() >= 2 && t_[e[1]].ident) {
      fn->lambda.ref_captures.push_back(t_[e[1]].text);
    } else if (t_[e.front()].ident) {
      fn->lambda.copy_captures.push_back(first);
      // `[x]` and `[x = expr]` copies live in the closure object; the
      // "<capture>" marker lets the flow rules treat writes to them as
      // writes to the closure, which is shared when the closure outlives
      // one shard invocation.
      fn->locals[first] = {DeclKind::kValue, "<capture>"};
    }
  }
}

void Parser::ParseParams(FunctionDef* fn, size_t begin, size_t end) {
  if (begin == 0 || end == std::string::npos || end <= begin) {
    return;
  }
  std::vector<std::vector<size_t>> pieces(1);
  int depth = 0;
  for (size_t j = begin + 1; j < end; ++j) {
    const std::string& s = t_[j].text;
    if (s == "(" || s == "[" || s == "{" || s == "<") {
      ++depth;
    } else if (s == ")" || s == "]" || s == "}" || s == ">") {
      --depth;
    } else if (s == "," && depth == 0) {
      pieces.emplace_back();
      continue;
    }
    pieces.back().push_back(j);
  }
  for (auto& piece : pieces) {
    // cut default arguments at the top-level '='
    size_t cut = piece.size();
    for (size_t k = 0; k < piece.size(); ++k) {
      if (t_[piece[k]].text == "=") {
        cut = k;
        break;
      }
    }
    piece.resize(cut);
    if (piece.size() < 2) {
      continue;  // unnamed or `void`
    }
    // name: last identifier, skipping trailing []-groups
    size_t name_idx = std::string::npos;
    for (size_t k = piece.size(); k-- > 0;) {
      if (t_[piece[k]].ident && !Keywords().count(t_[piece[k]].text)) {
        name_idx = k;
        break;
      }
      if (t_[piece[k]].text != "]" && t_[piece[k]].text != "[") {
        break;
      }
    }
    if (name_idx == std::string::npos || name_idx == 0) {
      continue;
    }
    LocalDecl decl;
    int angle = 0;
    bool top_ref = false;
    bool top_ptr = false;
    for (size_t k = 0; k < name_idx; ++k) {
      const std::string& s = t_[piece[k]].text;
      if (s == "<") {
        ++angle;
      } else if (s == ">") {
        angle = std::max(0, angle - 1);
      } else if (angle == 0 && s == "&") {
        top_ref = true;
      } else if (angle == 0 && s == "*") {
        top_ptr = true;
      } else if (angle == 0 && t_[piece[k]].ident &&
                 !Keywords().count(s)) {
        decl.type = s;  // last top-level type-ish identifier wins
      }
    }
    decl.kind = top_ref    ? DeclKind::kRefNonLocal
                : top_ptr  ? DeclKind::kPointer
                           : DeclKind::kValue;
    fn->locals[t_[piece[name_idx]].text] = decl;
  }
}

// Classifies `T& name = init;` by the root of the initializer: a reference
// bound to a by-value local stays frame-local, anything else escapes.
DeclKind Parser::ClassifyRefInit(FunctionDef* fn, size_t eq_stmt_idx) {
  for (size_t k = eq_stmt_idx + 1; k < stmt_.size(); ++k) {
    const Token& tok = t_[stmt_[k]];
    if (!tok.ident) {
      continue;
    }
    const LocalDecl* local = FindLocal(*fn, tok.text);
    if (local != nullptr && (local->kind == DeclKind::kValue ||
                             local->kind == DeclKind::kRefLocal)) {
      return DeclKind::kRefLocal;
    }
    return DeclKind::kRefNonLocal;
  }
  return DeclKind::kRefNonLocal;
}

// Registers local declarations from the current statement buffer:
//   Type name;   Type name = init;   Type name(args);   Type& name = init;
//   auto [a, b] = init;   for (Type x = ...;   Type* name = init;
void Parser::AnalyzeDeclStmt(FunctionDef* fn) {
  if (stmt_.empty()) {
    return;
  }
  const std::string& head = t_[stmt_.front()].text;
  static const std::set<std::string> kSkipHeads = {
      "return", "co_return", "throw",  "delete", "goto",  "break",
      "continue", "case",    "using",  "typedef", "static_assert",
      "if",       "while",   "switch", "do",      "else",  "template",
      "friend",   "public",  "private", "protected"};
  if (kSkipHeads.count(head)) {
    return;
  }
  // Find the top-level '=' (assignment-style, not == != <= >= etc.).
  size_t eq = std::string::npos;
  int depth = 0;
  for (size_t k = 0; k < stmt_.size(); ++k) {
    const std::string& s = t_[stmt_[k]].text;
    if (s == "(" || s == "[" || s == "{") {
      ++depth;
    } else if (s == ")" || s == "]" || s == "}") {
      --depth;
    } else if (s == "=" && (depth == 0 || (depth == 1 && head == "for"))) {
      const Token& cur = t_[stmt_[k]];
      const bool op_before =
          k > 0 && !t_[stmt_[k - 1]].ident &&
          t_[stmt_[k - 1]].offset + t_[stmt_[k - 1]].text.size() ==
              cur.offset &&
          std::string("=!<>+-*/%&|^").find(t_[stmt_[k - 1]].text) !=
              std::string::npos;
      const bool eq_after =
          k + 1 < stmt_.size() && t_[stmt_[k + 1]].text == "=" &&
          cur.offset + 1 == t_[stmt_[k + 1]].offset;
      if (!op_before && !eq_after) {
        eq = k;
        break;
      }
    }
  }
  const size_t limit = eq == std::string::npos ? stmt_.size() : eq;
  if (limit == 0) {
    return;
  }
  // Structured binding: `auto [a, b] = init` / `auto& [a, b] = init`.
  if (eq != std::string::npos && t_[stmt_[eq - 1]].text == "]") {
    bool is_ref = false;
    size_t open = std::string::npos;
    for (size_t k = eq - 1; k-- > 0;) {
      const std::string& s = t_[stmt_[k]].text;
      if (s == "[") {
        open = k;
        break;
      }
      if (!t_[stmt_[k]].ident && s != ",") {
        return;
      }
    }
    if (open == std::string::npos || open == 0) {
      return;
    }
    for (size_t k = open; k-- > 0;) {
      const std::string& s = t_[stmt_[k]].text;
      if (s == "&") {
        is_ref = true;
      } else if (s != "auto" && s != "const") {
        break;
      }
    }
    const DeclKind kind =
        is_ref ? ClassifyRefInit(fn, eq) : DeclKind::kValue;
    for (size_t k = open + 1; k + 1 < eq; ++k) {
      if (t_[stmt_[k]].ident) {
        fn->locals[t_[stmt_[k]].text] = {kind, ""};
      }
    }
    return;
  }
  // Candidate name: last identifier before '=' (or before a final (...) /
  // [...] group for `Type name(args);` declarations).
  size_t ni = limit;  // index into stmt_, one past the candidate
  while (ni > 0) {
    const std::string& s = t_[stmt_[ni - 1]].text;
    if (s == ")" || s == "]") {
      // skip one balanced group
      const std::string open = s == ")" ? "(" : "[";
      int d = 0;
      size_t k = ni;
      while (k-- > 0) {
        if (t_[stmt_[k]].text == s) {
          ++d;
        } else if (t_[stmt_[k]].text == open) {
          if (--d == 0) {
            break;
          }
        }
      }
      if (d != 0) {
        return;
      }
      ni = k;
      continue;
    }
    break;
  }
  if (ni == 0 || !t_[stmt_[ni - 1]].ident ||
      Keywords().count(t_[stmt_[ni - 1]].text)) {
    return;
  }
  const size_t cand = ni - 1;
  if (cand == 0) {
    return;  // bare `name = expr`: assignment, not a declaration
  }
  const Token& before = t_[stmt_[cand - 1]];
  DeclKind kind = DeclKind::kValue;
  size_t type_end = cand - 1;  // stmt index of last type token
  if (before.text == "&") {
    size_t b = cand - 1;
    while (b > 0 && t_[stmt_[b - 1]].text == "&") {
      --b;
    }
    if (b == 0 || !IsTypeIsh(t_[stmt_[b - 1]])) {
      return;  // `x & y = ...` or address-of: not a declaration
    }
    kind = eq != std::string::npos ? ClassifyRefInit(fn, eq)
                                   : DeclKind::kRefNonLocal;
    type_end = b - 1;
  } else if (before.text == "*") {
    size_t b = cand - 1;
    while (b > 0 && (t_[stmt_[b - 1]].text == "*" ||
                     t_[stmt_[b - 1]].text == "const")) {
      --b;
    }
    if (b == 0 || !IsTypeIsh(t_[stmt_[b - 1]])) {
      return;  // deref-assignment, not a declaration
    }
    kind = DeclKind::kPointer;
    type_end = b - 1;
  } else if (!IsTypeIsh(before)) {
    return;  // assignment or expression statement
  }
  // Extract the principal type identifier. For single-argument wrappers
  // (`unique_ptr<T>`, `shared_ptr<T>`, `optional<T>`) the element type is
  // the one receiver calls dispatch on, so prefer it.
  std::string type;
  std::string inner;
  size_t k = type_end + 1;
  while (k-- > 0) {
    const Token& tok = t_[stmt_[k]];
    if (tok.text == ">") {
      int d = 0;
      size_t m = k + 1;
      while (m-- > 0) {
        if (t_[stmt_[m]].text == ">") {
          ++d;
        } else if (t_[stmt_[m]].text == "<") {
          if (--d == 0) {
            break;
          }
        }
      }
      if (d != 0 || m == 0) {
        break;
      }
      for (size_t a = k; a-- > m + 1;) {
        const Token& at = t_[stmt_[a]];
        if (at.ident && !Keywords().count(at.text)) {
          inner = at.text;  // last identifier of the template argument
          break;
        }
      }
      k = m;  // continue before the template argument list
      continue;
    }
    if (tok.ident && !Keywords().count(tok.text)) {
      type = tok.text;
      break;
    }
    if (tok.text == "const" || tok.text == ":") {
      continue;
    }
    break;
  }
  if (!inner.empty() && (type == "unique_ptr" || type == "shared_ptr" ||
                         type == "optional")) {
    type = inner;
  }
  fn->locals[t_[stmt_[cand]].text] = {kind, type};
}

// Class-body member declarations: `Type name_;` registers the member type
// for receiver classification. Method declarations are skipped by the same
// heuristics as AnalyzeDeclStmt (their "name" lands before a paren group and
// the walk-back lands on the method name; a spurious registration of a
// method name as a member is harmless because methods are never receivers).
void Parser::AnalyzeMemberDecl(const std::string& cls) {
  if (cls.empty() || stmt_.empty()) {
    return;
  }
  FunctionDef scratch;  // reuse the local-decl analyzer
  AnalyzeDeclStmt(&scratch);
  for (const auto& [name, decl] : scratch.locals) {
    (*classes_)[cls].member_types[name] = decl.type;
  }
}

// `struct Foo : public Bar, Baz {` — name and base list.
void Parser::AnalyzeClassHead(size_t brace) {
  std::string name;
  std::vector<std::string> bases;
  size_t k = 0;
  int angle = 0;
  size_t kw = std::string::npos;
  for (; k < stmt_.size(); ++k) {
    const std::string& s = t_[stmt_[k]].text;
    if (s == "<") {
      ++angle;
    } else if (s == ">") {
      angle = std::max(0, angle - 1);
    } else if (angle == 0 && (s == "class" || s == "struct" || s == "union")) {
      kw = k;
      break;
    }
  }
  if (kw == std::string::npos) {
    scopes_.push_back({ScopeFrame::kBlock, "", -1});
    return;
  }
  size_t colon = std::string::npos;
  for (size_t j = kw + 1; j < stmt_.size(); ++j) {
    const Token& tok = t_[stmt_[j]];
    if (tok.text == ":" &&
        !(j + 1 < stmt_.size() && t_[stmt_[j + 1]].text == ":" &&
          tok.offset + 1 == t_[stmt_[j + 1]].offset) &&
        !(j > 0 && t_[stmt_[j - 1]].text == ":" &&
          t_[stmt_[j - 1]].offset + 1 == tok.offset)) {
      colon = j;
      break;
    }
    if (tok.text == "alignas" && j + 1 < stmt_.size() &&
        t_[stmt_[j + 1]].text == "(") {
      continue;
    }
    if (tok.ident && !Keywords().count(tok.text)) {
      name = tok.text;  // last identifier before ':' or '{' wins (skips
                        // attribute/alignas arguments naming constants)
    }
  }
  if (colon != std::string::npos) {
    static const std::set<std::string> kAccess = {"public", "protected",
                                                  "private", "virtual",
                                                  "std"};
    int a2 = 0;
    for (size_t j = colon + 1; j < stmt_.size(); ++j) {
      const Token& tok = t_[stmt_[j]];
      if (tok.text == "<") {
        ++a2;
      } else if (tok.text == ">") {
        a2 = std::max(0, a2 - 1);
      } else if (a2 == 0 && tok.ident && !kAccess.count(tok.text) &&
                 !Keywords().count(tok.text)) {
        bases.push_back(tok.text);
      }
    }
  }
  if (name.empty()) {
    scopes_.push_back({ScopeFrame::kBlock, "", -1});
    return;
  }
  ClassInfo& ci = (*classes_)[name];
  ci.name = name;
  for (const std::string& b : bases) {
    if (std::find(ci.bases.begin(), ci.bases.end(), b) == ci.bases.end()) {
      ci.bases.push_back(b);
    }
  }
  scopes_.push_back({ScopeFrame::kClass, name, -1});
  (void)brace;
}

// Recognizes `Ret [Cls::]name(params) [qualifiers / init-list] {` in the
// current statement; creates the FunctionDef and pushes its scope.
bool Parser::TryFunctionHead(size_t brace) {
  // Find the first candidate: identifier followed by '(' at angle depth 0.
  int angle = 0;
  size_t cand = std::string::npos;
  for (size_t k = 0; k + 1 < stmt_.size(); ++k) {
    const Token& tok = t_[stmt_[k]];
    if (tok.text == "<") {
      ++angle;
      continue;
    }
    if (tok.text == ">") {
      angle = std::max(0, angle - 1);
      continue;
    }
    if (angle != 0 || !tok.ident || Keywords().count(tok.text)) {
      continue;
    }
    if (t_[stmt_[k + 1]].text == "(") {
      cand = k;
      break;
    }
  }
  if (cand == std::string::npos) {
    return false;
  }
  // The parameter group must be balanced within the statement.
  int d = 0;
  size_t close = std::string::npos;
  for (size_t k = cand + 1; k < stmt_.size(); ++k) {
    if (t_[stmt_[k]].text == "(") {
      ++d;
    } else if (t_[stmt_[k]].text == ")") {
      if (--d == 0) {
        close = k;
        break;
      }
    }
  }
  if (close == std::string::npos) {
    return false;
  }
  // Qualifier: `Cls ::` chain immediately before the name.
  std::string cls = CurClass();
  size_t q = cand;
  while (q >= 2 && t_[stmt_[q - 1]].text == ":" &&
         t_[stmt_[q - 2]].text == ":") {
    if (q >= 3 && t_[stmt_[q - 3]].ident) {
      if (!namespaces_->count(t_[stmt_[q - 3]].text)) {
        cls = t_[stmt_[q - 3]].text;
      }
      q -= 3;
    } else {
      break;
    }
  }
  const std::string name = t_[stmt_[cand]].text;
  const int id = MakeFunction(name, cls, /*is_lambda=*/false,
                              stmt_[cand], brace);
  ParseParams(&(*functions_)[id], stmt_[cand + 1], stmt_[close]);
  scopes_.push_back({ScopeFrame::kFunction, "", id});
  return true;
}

void Parser::HandleOpenBrace(size_t i) {
  auto lam = lambdas_.find(i);
  if (lam != lambdas_.end()) {
    const LambdaIntro& intro = lam->second;
    const int id = MakeFunction("<lambda>", CurClass(), /*is_lambda=*/true,
                                intro.intro_begin, i);
    FunctionDef* fn = &(*functions_)[id];
    ParseCaptures(fn, intro);
    if (intro.params_begin != 0) {
      ParseParams(fn, intro.params_begin, intro.params_end);
    }
    // `auto name = [...]` registers a named local lambda in the encloser.
    const int outer = fn->enclosing;
    if (outer >= 0 && intro.intro_begin >= 2 &&
        t_[intro.intro_begin - 1].text == "=" &&
        t_[intro.intro_begin - 2].ident) {
      const std::string& nm = t_[intro.intro_begin - 2].text;
      (*functions_)[outer].local_lambdas[nm] = id;
      (*functions_)[outer].locals[nm] = {DeclKind::kValue, "<lambda>"};
    }
    // An inline lambda argument attaches to the innermost open call.
    for (size_t p = parens_.size(); p-- > 0;) {
      if (parens_[p].is_call) {
        (*functions_)[parens_[p].owner_func]
            .calls[parens_[p].call_index]
            .lambda_args.push_back(id);
        break;
      }
      break;  // only the directly-enclosing paren counts
    }
    scopes_.push_back({ScopeFrame::kFunction, "", id});
    stmt_.clear();
    return;
  }
  const int func = CurFunc();
  if (func != -1) {
    const std::string last =
        stmt_.empty() ? std::string() : t_[stmt_.back()].text;
    const std::string& head =
        stmt_.empty() ? last : t_[stmt_.front()].text;
    const bool block = stmt_.empty() || last == ")" || last == "else" ||
                       last == "try" || last == "do" || head == "if" ||
                       head == "for" || head == "while" || head == "switch";
    if (block) {
      scopes_.push_back({ScopeFrame::kBlock, "", func});
      stmt_.clear();
    } else {
      scopes_.push_back({ScopeFrame::kInit, "", func});
    }
    return;
  }
  // Namespace / class scope.
  if (!StmtParensBalanced()) {
    scopes_.push_back({ScopeFrame::kInit, "", -1});
    return;
  }
  if (StmtHasAtDepth0("namespace")) {
    std::string name;
    for (size_t k = 0; k + 1 < stmt_.size(); ++k) {
      if (t_[stmt_[k]].text == "namespace" && t_[stmt_[k + 1]].ident) {
        name = t_[stmt_[k + 1]].text;
      }
    }
    if (!name.empty()) {
      namespaces_->insert(name);
    }
    scopes_.push_back({ScopeFrame::kNamespace, "", -1});
    stmt_.clear();
    return;
  }
  if (StmtHasAtDepth0("enum")) {
    scopes_.push_back({ScopeFrame::kBlock, "", -1});
    stmt_.clear();
    return;
  }
  if (StmtHasAtDepth0("class") || StmtHasAtDepth0("struct") ||
      StmtHasAtDepth0("union")) {
    AnalyzeClassHead(i);
    stmt_.clear();
    return;
  }
  if (StmtHasAtDepth0("=")) {
    scopes_.push_back({ScopeFrame::kInit, "", -1});
    return;
  }
  if (TryFunctionHead(i)) {
    stmt_.clear();
    return;
  }
  // Default member initializer `Type name_{...};` at class scope: the brace
  // is part of the declaration, which AnalyzeMemberDecl sees at the ';'.
  const ScopeFrame* inner = InnermostNonInit();
  if (inner != nullptr && inner->kind == ScopeFrame::kClass &&
      !stmt_.empty() && t_[stmt_.back()].ident) {
    scopes_.push_back({ScopeFrame::kInit, "", -1});
    return;
  }
  scopes_.push_back({ScopeFrame::kBlock, "", -1});
  stmt_.clear();
}

void Parser::HandleCloseBrace(size_t i) {
  if (scopes_.empty()) {
    return;
  }
  const ScopeFrame top = scopes_.back();
  scopes_.pop_back();
  if (top.kind == ScopeFrame::kFunction && top.func >= 0) {
    (*functions_)[top.func].body_end = i;
  }
  if (top.kind != ScopeFrame::kInit) {
    stmt_.clear();
  }
}

void Parser::HandleOpenParen(size_t i) {
  ParenFrame frame;
  frame.open_tok = i;
  const int func = CurFunc();
  if (i > 0) {
    const Token& prev = t_[i - 1];
    frame.is_for = prev.text == "for";
    frame.is_cond = prev.text == "if" || prev.text == "while";
    if (func != -1 && prev.ident && !Keywords().count(prev.text)) {
      // `Foo x(...)` is a declaration when an identifier precedes the name;
      // `recv.M(...)`, `f(...)`, `ns::f(...)` are calls.
      const bool decl_like =
          i >= 2 && t_[i - 2].ident && !Keywords().count(t_[i - 2].text) &&
          t_[i - 2].text != "this";
      if (!decl_like) {
        CallSite call;
        call.callee = prev.text;
        call.token_index = i - 1;
        // Receiver / qualifier analysis.
        if (i >= 2 && (t_[i - 2].text == "." ||
                       (i >= 3 && t_[i - 2].text == ">" &&
                        t_[i - 3].text == "-"))) {
          size_t q = t_[i - 2].text == "." ? i - 3 : i - 4;
          std::string root;
          while (q != std::string::npos) {
            // skip trailing ()/[] groups of the previous chain component
            while (q != std::string::npos && q < t_.size() &&
                   (t_[q].text == "]" || t_[q].text == ")")) {
              const size_t open = BalanceBack(t_, q);
              if (open == std::string::npos || open == 0) {
                q = std::string::npos;
                break;
              }
              q = open - 1;
            }
            if (q == std::string::npos || !(t_[q].ident)) {
              root.clear();
              break;
            }
            root = t_[q].text;
            if (q >= 1 && t_[q - 1].text == ".") {
              q = q >= 2 ? q - 2 : std::string::npos;
            } else if (q >= 2 && t_[q - 1].text == ">" &&
                       t_[q - 2].text == "-") {
              q = q >= 3 ? q - 3 : std::string::npos;
            } else {
              break;
            }
          }
          call.receiver_root = root;
          call.receiver = ReceiverKind::kShared;  // refined at Resolve time
          if (!root.empty() && func >= 0) {
            for (const FunctionDef* f = &(*functions_)[func];;) {
              auto it = f->locals.find(root);
              if (it != f->locals.end()) {
                if (it->second.kind == DeclKind::kValue ||
                    it->second.kind == DeclKind::kRefLocal) {
                  call.receiver = ReceiverKind::kFrameLocal;
                }
                call.receiver_type = it->second.type;
                break;
              }
              if (f->enclosing < 0) {
                break;
              }
              f = &(*functions_)[f->enclosing];
            }
          }
        } else if (i >= 4 && t_[i - 2].text == ":" &&
                   t_[i - 3].text == ":" && t_[i - 4].ident) {
          if (!namespaces_->count(t_[i - 4].text) &&
              t_[i - 4].text != "std") {
            call.qualifier = t_[i - 4].text;
          }
        }
        if (func >= 0) {
          frame.is_call = true;
          frame.owner_func = func;
          frame.call_index =
              static_cast<int>((*functions_)[func].calls.size());
          (*functions_)[func].calls.push_back(std::move(call));
        }
      }
    }
  }
  parens_.push_back(frame);
}

void Parser::HandleCloseParen(size_t i) {
  if (parens_.empty()) {
    return;
  }
  ParenFrame frame = parens_.back();
  parens_.pop_back();
  if (frame.is_call) {
    if (frame.arg_tokens == 1 && !frame.arg_ident.empty()) {
      (*functions_)[frame.owner_func]
          .calls[frame.call_index]
          .ident_args.push_back(frame.arg_ident);
    }
  }
  if (frame.is_cond) {
    // `if (Type* x = init)` / `while (auto v = next())` declare a name
    // scoped to the controlled block; analyze the condition tokens as a
    // declaration statement (AnalyzeDeclStmt rejects plain conditions).
    const int func = CurFunc();
    if (func >= 0) {
      std::vector<size_t> cond;
      for (size_t k : stmt_) {
        if (k > frame.open_tok) {
          cond.push_back(k);
        }
      }
      // A condition declaration always carries an initializer; without a
      // top-level '=' the condition is a plain expression (`a > b` would
      // otherwise register `b` as a local through the type heuristics).
      bool has_eq = false;
      int depth = 0;
      for (size_t k = 0; k < cond.size(); ++k) {
        const std::string& s = t_[cond[k]].text;
        if (s == "(" || s == "[" || s == "{") {
          ++depth;
        } else if (s == ")" || s == "]" || s == "}") {
          --depth;
        } else if (s == "=" && depth == 0) {
          const bool op_before =
              k > 0 && !t_[cond[k - 1]].ident &&
              t_[cond[k - 1]].offset + 1 == t_[cond[k]].offset &&
              std::string("=!<>+-*/%&|^").find(t_[cond[k - 1]].text) !=
                  std::string::npos;
          const bool eq_after =
              k + 1 < cond.size() &&
              t_[cond[k + 1]].text == "=" &&
              t_[cond[k]].offset + 1 == t_[cond[k + 1]].offset;
          if (!op_before && !eq_after) {
            has_eq = true;
            break;
          }
        }
      }
      if (has_eq && !cond.empty()) {
        std::swap(stmt_, cond);
        AnalyzeDeclStmt(&(*functions_)[func]);
        std::swap(stmt_, cond);
      }
    }
    return;
  }
  if (frame.is_for && frame.colon != 0) {
    // Range-for: `for (decl : range)` — register the loop variable(s),
    // classifying references by the root of the range expression.
    const int func = CurFunc();
    if (func >= 0) {
      FunctionDef* fn = &(*functions_)[func];
      bool is_ref = false;
      std::vector<std::string> names;
      for (size_t k : stmt_) {
        if (k >= frame.colon) {
          break;
        }
        const Token& tok = t_[k];
        if (tok.text == "&") {
          is_ref = true;
        } else if (tok.ident && !Keywords().count(tok.text)) {
          names.assign(1, tok.text);  // plain decl: last identifier wins
        }
      }
      // structured-binding names override the plain-decl guess
      bool in_binding = false;
      std::vector<std::string> binding;
      for (size_t k : stmt_) {
        if (k >= frame.colon) {
          break;
        }
        if (t_[k].text == "[") {
          in_binding = true;
          binding.clear();
        } else if (t_[k].text == "]") {
          in_binding = false;
        } else if (in_binding && t_[k].ident) {
          binding.push_back(t_[k].text);
        }
      }
      if (!binding.empty()) {
        names = binding;
      }
      DeclKind kind = DeclKind::kValue;
      if (is_ref) {
        kind = DeclKind::kRefNonLocal;
        for (size_t k = frame.colon + 1; k < i; ++k) {
          if (!t_[k].ident) {
            continue;
          }
          const LocalDecl* local = FindLocal(*fn, t_[k].text);
          if (local != nullptr && (local->kind == DeclKind::kValue ||
                                   local->kind == DeclKind::kRefLocal)) {
            kind = DeclKind::kRefLocal;
          }
          break;
        }
      }
      for (const std::string& nm : names) {
        fn->locals[nm] = {kind, ""};
      }
    }
    stmt_.clear();
  }
}

void Parser::HandleSemicolon() {
  const int func = CurFunc();
  if (func != -1) {
    AnalyzeDeclStmt(&(*functions_)[func]);
  } else {
    const ScopeFrame* inner = InnermostNonInit();
    if (inner != nullptr && inner->kind == ScopeFrame::kClass) {
      AnalyzeMemberDecl(inner->class_name);
    }
  }
  stmt_.clear();
}

void Parser::HandleComma() {
  if (!parens_.empty() && parens_.back().is_call) {
    ParenFrame& frame = parens_.back();
    if (frame.arg_tokens == 1 && !frame.arg_ident.empty()) {
      (*functions_)[frame.owner_func]
          .calls[frame.call_index]
          .ident_args.push_back(frame.arg_ident);
    }
    frame.arg_tokens = 0;
    frame.arg_ident.clear();
  }
}

void Parser::HandleColon(size_t i) {
  if (parens_.empty() || !parens_.back().is_for ||
      parens_.back().colon != 0) {
    return;
  }
  // exclude `::`
  const bool scope_op =
      (i + 1 < t_.size() && t_[i + 1].text == ":" &&
       t_[i].offset + 1 == t_[i + 1].offset) ||
      (i > 0 && t_[i - 1].text == ":" &&
       t_[i - 1].offset + 1 == t_[i].offset);
  if (!scope_op) {
    parens_.back().colon = i;
  }
}

void Parser::Parse() {
  for (size_t i = 0; i < t_.size(); ++i) {
    const std::string& s = t_[i].text;
    if (s == "{") {
      HandleOpenBrace(i);
      continue;
    }
    if (s == "}") {
      HandleCloseBrace(i);
      continue;
    }
    if (s == "(") {
      HandleOpenParen(i);
      stmt_.push_back(i);
      continue;
    }
    if (s == ")") {
      HandleCloseParen(i);
      stmt_.push_back(i);
      continue;
    }
    if (s == ";") {
      if (!parens_.empty()) {
        // classic-for header: analyze the init clause, keep scanning
        const int func = CurFunc();
        if (func != -1) {
          AnalyzeDeclStmt(&(*functions_)[func]);
        }
        stmt_.clear();
        continue;
      }
      HandleSemicolon();
      continue;
    }
    if (s == ",") {
      HandleComma();
      stmt_.push_back(i);
      continue;
    }
    if (s == ":") {
      HandleColon(i);
      // `public:` / `private:` / `protected:` labels are statement
      // boundaries inside a class body; dropping them keeps the following
      // member declaration's head token a type, not an access specifier.
      if (stmt_.size() == 1 &&
          (t_[stmt_[0]].text == "public" ||
           t_[stmt_[0]].text == "private" ||
           t_[stmt_[0]].text == "protected")) {
        stmt_.clear();
        continue;
      }
      stmt_.push_back(i);
      continue;
    }
    // Arg tracking for the innermost call.
    if (!parens_.empty() && parens_.back().is_call) {
      ParenFrame& frame = parens_.back();
      ++frame.arg_tokens;
      frame.arg_ident = t_[i].ident ? t_[i].text : std::string();
    }
    if (stmt_.size() < 4096) {
      stmt_.push_back(i);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ProjectModel
// ---------------------------------------------------------------------------

void ProjectModel::AddFile(const std::string& rel_path,
                           const std::string& code_nostrings) {
  std::vector<Token> toks =
      FilterPreprocessor(Lex(code_nostrings), code_nostrings);
  namespaces_.insert("std");
  Parser parser(rel_path, toks, &functions_, &classes_, &by_name_,
                &namespaces_);
  parser.Parse();
  file_tokens_[rel_path] = std::move(toks);
}

const std::vector<Token>& ProjectModel::tokens(
    const std::string& rel_path) const {
  static const std::vector<Token> kEmpty;
  auto it = file_tokens_.find(rel_path);
  return it == file_tokens_.end() ? kEmpty : it->second;
}

const ClassInfo* ProjectModel::class_info(const std::string& name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : &it->second;
}

const std::vector<int>* ProjectModel::by_name(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

bool ProjectModel::DerivesFrom(const std::string& derived,
                               const std::string& base) const {
  if (derived == base) {
    return false;
  }
  std::vector<std::string> frontier = {derived};
  std::set<std::string> seen = {derived};
  while (!frontier.empty()) {
    const std::string cur = frontier.back();
    frontier.pop_back();
    const ClassInfo* ci = class_info(cur);
    if (ci == nullptr) {
      continue;
    }
    for (const std::string& b : ci->bases) {
      if (b == base) {
        return true;
      }
      if (seen.insert(b).second) {
        frontier.push_back(b);
      }
    }
  }
  return false;
}

std::vector<int> ProjectModel::MethodsOf(const std::string& cls,
                                         const std::string& name) const {
  std::vector<int> out;
  const std::vector<int>* candidates = by_name(name);
  if (candidates == nullptr) {
    return out;
  }
  for (int id : *candidates) {
    const FunctionDef& fn = functions_[id];
    if (fn.class_name.empty()) {
      continue;
    }
    // Exact class, derived override (virtual dispatch over-approximation),
    // or inherited base implementation.
    if (fn.class_name == cls || DerivesFrom(fn.class_name, cls) ||
        DerivesFrom(cls, fn.class_name)) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<int> ProjectModel::Resolve(const FunctionDef& caller,
                                       const CallSite& call) const {
  // 1. Named local lambda in the caller or a lexical ancestor.
  for (const FunctionDef* f = &caller;;) {
    auto it = f->local_lambdas.find(call.callee);
    if (it != f->local_lambdas.end()) {
      return {it->second};
    }
    if (f->enclosing < 0) {
      break;
    }
    f = &functions_[f->enclosing];
  }
  // 2. Explicit qualifier.
  if (!call.qualifier.empty()) {
    std::vector<int> v = MethodsOf(call.qualifier, call.callee);
    if (!v.empty()) {
      return v;
    }
  }
  // 3. Receiver type: parse-time if the root was a typed local, otherwise
  // try the caller's class members.
  std::string recv_type = call.receiver_type;
  if (recv_type.empty() && !call.receiver_root.empty()) {
    std::string cls = caller.class_name;
    std::set<std::string> seen;
    while (!cls.empty() && seen.insert(cls).second) {
      const ClassInfo* ci = class_info(cls);
      if (ci == nullptr) {
        break;
      }
      auto it = ci->member_types.find(call.receiver_root);
      if (it != ci->member_types.end()) {
        recv_type = it->second;
        break;
      }
      cls = ci->bases.empty() ? "" : ci->bases.front();
    }
  }
  if (!recv_type.empty()) {
    std::vector<int> v = MethodsOf(recv_type, call.callee);
    if (!v.empty()) {
      return v;
    }
  }
  // 4. Unqualified receiver-less call inside a method: own class first.
  if (call.receiver == ReceiverKind::kNone && call.qualifier.empty() &&
      !caller.class_name.empty()) {
    std::vector<int> v = MethodsOf(caller.class_name, call.callee);
    if (!v.empty()) {
      return v;
    }
  }
  // 5. Bare-name over-approximation, bounded by call syntax: a
  // receiver-less unqualified call can only reach a free function (implicit
  // this-calls were handled in step 4), while a call through an untyped
  // receiver widens to every same-named method of any class.
  const std::vector<int>* v = by_name(call.callee);
  if (v == nullptr) {
    return {};
  }
  const bool receiverless =
      call.receiver == ReceiverKind::kNone && call.qualifier.empty();
  std::vector<int> out;
  for (int id : *v) {
    const bool is_method = !functions_[id].class_name.empty();
    if (receiverless != is_method) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace omega_lint
