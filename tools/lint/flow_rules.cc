// omega_lint v2 flow rules: det-shard-unsafe-write, det-rng-substream,
// det-fp-unordered-acc, sim-dangling-capture. All four run over the
// whole-project syntactic model (tools/lint/model.h); see DESIGN.md §14 for
// the reachability semantics and the soundness trade-offs.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "tools/lint/linter.h"

namespace omega_lint {
namespace {

int LineAt(const std::vector<size_t>& line_offsets, size_t offset) {
  auto it = std::upper_bound(line_offsets.begin(), line_offsets.end(), offset);
  return static_cast<int>(it - line_offsets.begin());
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

bool AdjacentNext(const std::vector<Token>& t, size_t i) {
  return i + 1 < t.size() &&
         t[i + 1].offset == t[i].offset + t[i].text.size();
}

bool AdjacentPrev(const std::vector<Token>& t, size_t i) {
  return i > 0 && t[i - 1].offset + t[i - 1].text.size() == t[i].offset;
}

size_t BalanceBack(const std::vector<Token>& t, size_t i) {
  const std::string close = t[i].text;
  const std::string open = close == "]" ? "[" : close == ")" ? "(" : "{";
  int depth = 0;
  for (size_t j = i + 1; j-- > 0;) {
    if (t[j].text == close) {
      ++depth;
    } else if (t[j].text == open) {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return std::string::npos;
}

size_t BalanceFwd(const std::vector<Token>& t, size_t i) {
  const std::string open = t[i].text;
  const std::string close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    if (t[j].text == open) {
      ++depth;
    } else if (t[j].text == close) {
      if (--depth == 0) {
        return j;
      }
    }
  }
  return std::string::npos;
}

bool IsKeywordIdent(const std::string& s) {
  static const std::set<std::string> kw = {
      "return", "if",    "for",   "while",  "switch", "case",  "new",
      "delete", "const", "auto",  "static", "else",   "do",    "throw",
      "sizeof", "this",  "break", "continue"};
  return kw.count(s) > 0;
}

// Walks an lvalue chain (`a.b[i].c`, `this->x`, `p->slot`) backwards from
// its last token; returns the token index of the root identifier, or npos
// when the expression is too complex to root (callers treat that as shared).
// Sets *designated_init for `{.field = ...}` aggregate initializers, which
// are not writes.
size_t ChainRoot(const std::vector<Token>& t, size_t e,
                 bool* designated_init) {
  *designated_init = false;
  size_t p = e;
  while (true) {
    bool deref_root = false;
    while (p != std::string::npos && p < t.size() &&
           (t[p].text == "]" || t[p].text == ")")) {
      const size_t open = BalanceBack(t, p);
      if (open == std::string::npos || open == 0) {
        return std::string::npos;
      }
      // `(*name)[...]` / `(*name).field`: the chain roots at the pointer.
      if (t[p].text == ")" && open + 3 == p && t[open + 1].text == "*" &&
          t[open + 2].ident) {
        p = open + 2;
        deref_root = true;
        break;
      }
      p = open - 1;
    }
    if (deref_root) {
      return p;
    }
    if (p == std::string::npos || p >= t.size() || !t[p].ident) {
      return std::string::npos;
    }
    if (p >= 1 && t[p - 1].text == ".") {
      if (p >= 2 && (t[p - 2].text == "{" || t[p - 2].text == ",")) {
        *designated_init = true;
        return std::string::npos;
      }
      if (p < 2) {
        return std::string::npos;
      }
      p -= 2;
      continue;
    }
    if (p >= 2 && t[p - 1].text == ">" && t[p - 2].text == "-" &&
        AdjacentPrev(t, p - 1)) {
      if (p < 3) {
        return std::string::npos;
      }
      p -= 3;
      continue;
    }
    return p;
  }
}

// `Type name = ...` / `Type* name = ...` declarations are bindings, not
// writes: the candidate root is directly preceded by type syntax.
bool LooksLikeDecl(const std::vector<Token>& t, size_t root) {
  if (root == 0) {
    return false;
  }
  const Token& prev = t[root - 1];
  if (prev.text == ">" || prev.text == "auto" || prev.text == "const") {
    return true;
  }
  if (prev.ident && !IsKeywordIdent(prev.text) &&
      !std::isdigit(static_cast<unsigned char>(prev.text[0]))) {
    return prev.text != "this";
  }
  if ((prev.text == "*" || prev.text == "&") && root >= 2) {
    const Token& pp = t[root - 2];
    return pp.text == ">" || (pp.ident && !IsKeywordIdent(pp.text));
  }
  return false;
}

}  // namespace

void Linter::BuildModel() {
  for (const auto& [path, f] : files_) {
    if (InScope(path, config_.flow_scope)) {
      model_.AddFile(path, f.code_nostrings);
    }
  }
}

bool Linter::IsScratchType(const std::string& type) const {
  return Contains(config_.shard_scratch_types, type);
}

int Linter::FindNamedLambda(const FunctionDef& fn,
                            const std::string& name) const {
  for (const FunctionDef* f = &fn;;) {
    auto it = f->local_lambdas.find(name);
    if (it != f->local_lambdas.end()) {
      return it->second;
    }
    if (f->enclosing < 0) {
      return -1;
    }
    f = &model_.function(f->enclosing);
  }
}

namespace {

// True if `fn` is lexically inside (or equal to) the shard-root callback's
// subtree: such frames and closures are instantiated per shard invocation.
bool InShardSubtree(const ProjectModel& model, int fn, int shard_root) {
  for (int cur = fn; cur >= 0; cur = model.function(cur).enclosing) {
    if (cur == shard_root) {
      return true;
    }
  }
  return false;
}

}  // namespace

// Storage classification for a write through `root` executed by `fn` while
// running as part of shard `shard_root`'s callback. Per-shard-safe storage:
// the frame of any function whose every activation happens inside one shard
// invocation, and allowlisted scratch types. Shared: members (when the
// receiver chain was shared), globals, by-reference bindings that escape the
// frame, captures of frames that outlive the shard, and the shard callback's
// own closure object (one object invoked by every worker).
bool Linter::RootIsShared(const FunctionDef& fn, bool self_shared,
                          int shard_root, const std::string& root,
                          std::string* why) const {
  if (root.empty()) {
    *why = "unrecognized lvalue expression";
    return true;
  }
  if (root == "this") {
    *why = "member state via this";
    return self_shared;
  }
  if (IsKeywordIdent(root)) {
    // The "root" is a keyword (`return (a - b).Clamp()`): the receiver is a
    // temporary living in this frame.
    return false;
  }
  const FunctionDef* f = &fn;
  while (true) {
    auto it = f->locals.find(root);
    if (it != f->locals.end()) {
      const LocalDecl& decl = it->second;
      if (IsScratchType(decl.type)) {
        return false;  // sanctioned per-shard scratch view
      }
      if (decl.type == "<capture>") {
        // Closure member: the shard callback's own closure is one object
        // invoked by every worker; a closure built elsewhere is as shared
        // as the call chain that constructed it.
        if (f->id == shard_root) {
          *why = "state stored in the shard callback's closure (one object "
                 "shared by every worker)";
          return true;
        }
        if (!InShardSubtree(model_, f->id, shard_root)) {
          *why = "state in a closure built outside the shard callback";
          return self_shared;
        }
        return false;
      }
      const bool owner_per_shard = InShardSubtree(model_, f->id, shard_root);
      if (!owner_per_shard && f != &fn) {
        // Ancestor frames outside the shard callback are shared across
        // shards when the traversal entered this code as shared; under a
        // per-trial tree (self_shared false) they belong to the trial.
        *why = "by-reference capture of `" + root +
               "` from a frame outside the shard callback";
        return self_shared;
      }
      if (decl.kind == DeclKind::kRefNonLocal) {
        // A reference rooted outside this frame aliases the surrounding
        // object tree (member, argument): shared exactly when that tree is.
        *why = "reference `" + root + "` bound outside the frame";
        return self_shared;
      }
      // Plain locals of called functions are per-activation even when the
      // function itself sits outside the shard subtree.
      return false;
    }
    if (f->enclosing < 0) {
      break;
    }
    if (f->is_lambda && f->lambda.default_copy &&
        !f->lambda.default_ref &&
        !Contains(f->lambda.ref_captures, root)) {
      // `[=]` copy: the name is a member of this closure object.
      if (f->id == shard_root) {
        *why = "state copied into the shard callback's closure (one object "
               "shared by every worker)";
        return true;
      }
      if (!InShardSubtree(model_, f->id, shard_root)) {
        *why = "state in a closure built outside the shard callback";
        return self_shared;
      }
      return false;
    }
    f = &model_.function(f->enclosing);
  }
  // Not a local anywhere on the lexical chain: a member or a global.
  std::string cls = fn.class_name;
  std::set<std::string> seen;
  while (!cls.empty() && seen.insert(cls).second) {
    const ClassInfo* ci = model_.class_info(cls);
    if (ci == nullptr) {
      break;
    }
    if (ci->member_types.count(root)) {
      if (IsScratchType(ci->member_types.at(root))) {
        return false;
      }
      *why = "member field `" + root + "`";
      return self_shared;
    }
    cls = ci->bases.empty() ? "" : ci->bases.front();
  }
  // A member-accessor receiver (`trace().Append(...)`): the chain roots at a
  // method of this class, i.e. it is reached through `this`.
  if (!fn.class_name.empty() &&
      !model_.MethodsOf(fn.class_name, root).empty()) {
    *why = "state reached through accessor `" + root + "()`";
    return self_shared;
  }
  *why = "global or unrecognized name `" + root + "`";
  return true;
}

void Linter::ScanShardFunction(const ShardState& state,
                               std::vector<ShardState>* work) {
  const FunctionDef& fn = model_.function(state.fn);
  auto file_it = files_.find(fn.file);
  if (file_it == files_.end()) {
    return;
  }
  const FileData& fd = file_it->second;
  const std::vector<Token>& t = model_.tokens(fn.file);
  if (fn.body_end <= fn.body_begin || fn.body_end >= t.size()) {
    return;
  }

  // Nested lambdas are separate functions: skip their spans here and make
  // them reachable in their own right (defined inside shard code, so if they
  // ever run they run on a worker).
  std::vector<std::pair<size_t, size_t>> skips;
  for (const FunctionDef& child : model_.functions()) {
    if (child.enclosing == fn.id && child.is_lambda) {
      skips.push_back({child.name_token, child.body_end});
      work->push_back({child.id, state.self_shared, state.root});
    }
  }
  std::sort(skips.begin(), skips.end());

  auto flag = [&](size_t tok_idx, const std::string& what,
                  const std::string& why) {
    AddFinding(fd, LineAt(fd.line_offsets, t[tok_idx].offset),
               "det-shard-unsafe-write",
               what + " in code reachable from a shard callback: " + why +
                   "; shard code must only write per-shard state (use a "
                   "ShardSlots view for disjoint per-index output, or merge "
                   "through DeterministicReducer — DESIGN.md §14)");
  };
  auto classify_write = [&](size_t chain_end, size_t op_idx) {
    bool designated = false;
    const size_t root_idx = ChainRoot(t, chain_end, &designated);
    if (designated) {
      return;
    }
    if (root_idx == std::string::npos) {
      flag(op_idx, "write", "unrecognized lvalue expression");
      return;
    }
    if (LooksLikeDecl(t, root_idx) && root_idx == chain_end) {
      return;  // `Type name = init` binds, it does not write
    }
    std::string why;
    if (RootIsShared(fn, state.self_shared, state.root, t[root_idx].text,
                     &why)) {
      flag(op_idx, "write to `" + t[root_idx].text + "`", why);
    }
  };

  size_t skip_at = 0;
  for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    while (skip_at < skips.size() && skips[skip_at].second < i) {
      ++skip_at;
    }
    if (skip_at < skips.size() && i >= skips[skip_at].first &&
        i <= skips[skip_at].second) {
      i = skips[skip_at].second;
      continue;
    }
    const std::string& s = t[i].text;
    if (s == "=") {
      const bool op_before =
          AdjacentPrev(t, i) && !t[i - 1].ident &&
          std::string("=!<>+-*/%&|^").find(t[i - 1].text) !=
              std::string::npos;
      const bool eq_after = AdjacentNext(t, i) && t[i + 1].text == "=";
      if (!op_before && !eq_after && i > fn.body_begin + 1) {
        classify_write(i - 1, i);
      }
      continue;
    }
    if (s.size() == 1 && std::string("+-*/%&|^").find(s) != std::string::npos &&
        AdjacentNext(t, i) && t[i + 1].text == "=") {
      if (i > fn.body_begin + 1) {
        classify_write(i - 1, i);
      }
      ++i;  // consume the '='
      continue;
    }
    if ((s == "+" || s == "-") && AdjacentNext(t, i) &&
        t[i + 1].text == s) {
      // ++x / x++ / --x / x--
      if (i > fn.body_begin + 1 &&
          (t[i - 1].ident || t[i - 1].text == "]" || t[i - 1].text == ")")) {
        classify_write(i - 1, i);
      } else if (i + 2 < fn.body_end && t[i + 2].ident) {
        bool designated = false;
        (void)designated;
        std::string why;
        if (!IsKeywordIdent(t[i + 2].text) &&
            RootIsShared(fn, state.self_shared, state.root, t[i + 2].text,
                         &why)) {
          flag(i, "increment of `" + t[i + 2].text + "`", why);
        }
      }
      ++i;
      continue;
    }
    // Mutating container method on a receiver chain.
    if (t[i].ident && Contains(config_.mutating_methods, s) &&
        i + 1 < fn.body_end && t[i + 1].text == "(" && i >= 2 &&
        (t[i - 1].text == "." ||
         (t[i - 1].text == ">" && t[i - 2].text == "-"))) {
      const size_t recv_end = t[i - 1].text == "." ? i - 2 : i - 3;
      if (recv_end != std::string::npos && recv_end < t.size()) {
        classify_write(recv_end, i);
      }
      continue;
    }
  }

  // Calls: RNG draws are findings; resolvable callees extend reachability.
  for (const CallSite& call : fn.calls) {
    // Shard-API calls are handled by root collection (their callbacks become
    // roots); resolving `pool_->Run(...)` as an ordinary call would widen,
    // via the bare-name fallback, to every `Run` method in the project.
    if (Contains(config_.shard_api_names, call.callee) ||
        Contains(config_.disjoint_api_names, call.callee) ||
        (call.callee == config_.pool_run_name &&
         Lower(call.receiver_root).find(config_.pool_receiver_hint) !=
             std::string::npos)) {
      continue;
    }
    const std::vector<int> targets = model_.Resolve(fn, call);
    // det-rng-substream: any draw inside shard-parallel code is layout-
    // dependent (ReduceGrain splits by worker count).
    if (Contains(config_.rng_draw_methods, call.callee)) {
      bool is_rng = call.receiver_type == config_.rng_type_name ||
                    Lower(call.receiver_root).find("rng") !=
                        std::string::npos;
      for (int id : targets) {
        if (model_.function(id).class_name == config_.rng_type_name) {
          is_rng = true;
        }
      }
      // A draw is layout-dependent only when the stream is shared across
      // shards; a per-trial Rng inside a per-trial tree draws the same
      // sequence at any worker count.
      std::string rng_why;
      if (is_rng &&
          RootIsShared(fn, state.self_shared, state.root,
                       call.receiver_root, &rng_why)) {
        AddFinding(fd, LineAt(fd.line_offsets, t[call.token_index].offset),
                   "det-rng-substream",
                   "RNG draw inside a shard callback: shard boundaries "
                   "depend on the worker count, so per-shard draws change "
                   "results with threads; pre-draw into a buffer before the "
                   "parallel section (DESIGN.md §14)");
        continue;
      }
    }
    for (int id : targets) {
      const FunctionDef& target = model_.function(id);
      if (DetExempt(target.file) ||
          InScope(target.file, config_.parallel_exempt_prefixes)) {
        continue;  // sanctioned wrappers prove their own determinism
      }
      bool target_shared = state.self_shared;
      if (!call.receiver_root.empty()) {
        std::string why;
        target_shared = RootIsShared(fn, state.self_shared, state.root,
                                     call.receiver_root, &why);
        // A local pointer's provenance is unknown: under a shared context,
        // conservatively treat the pointee as shared; under a per-trial
        // tree it can only point within the trial.
        const FunctionDef* look = &fn;
        for (; look != nullptr;) {
          auto it = look->locals.find(call.receiver_root);
          if (it != look->locals.end()) {
            if (it->second.kind == DeclKind::kPointer) {
              target_shared = target_shared || state.self_shared;
            }
            break;
          }
          look = look->enclosing >= 0 ? &model_.function(look->enclosing)
                                      : nullptr;
        }
      }
      if (std::getenv("OMEGA_LINT_DEBUG_REACH") != nullptr) {
        const FunctionDef& tg = model_.function(id);
        std::fprintf(stderr,
                     "edge %s:%s::%s -> %s:%s::%s callee=%s recv=%s sh=%d self=%d\n",
                     fn.file.c_str(), fn.class_name.c_str(), fn.name.c_str(),
                     tg.file.c_str(), tg.class_name.c_str(), tg.name.c_str(),
                     call.callee.c_str(), call.receiver_root.c_str(),
                     target_shared ? 1 : 0, state.self_shared ? 1 : 0);
      }
      work->push_back({id, target_shared, state.root});
    }
  }
}

void Linter::CheckShardSafety() {
  std::vector<ShardState> work;
  for (const FunctionDef& fn : model_.functions()) {
    if (!InScope(fn.file, config_.flow_scope) || DetExempt(fn.file) ||
        InScope(fn.file, config_.parallel_exempt_prefixes)) {
      continue;
    }
    for (const CallSite& call : fn.calls) {
      // Disjoint-tree barriers (RunDisjoint): callbacks run on workers, so
      // they are shard roots, but each invocation owns its index's object
      // tree — seed them per-tree (self_shared = false) so mutating the
      // captured per-index objects is legal while globals still flag.
      const bool disjoint_api =
          Contains(config_.disjoint_api_names, call.callee);
      bool shard_api =
          disjoint_api || Contains(config_.shard_api_names, call.callee);
      if (!shard_api && call.callee == config_.pool_run_name) {
        shard_api = Lower(call.receiver_root)
                        .find(config_.pool_receiver_hint) !=
                    std::string::npos;
      }
      if (!shard_api) {
        continue;
      }
      const bool self_shared = !disjoint_api;
      for (int id : call.lambda_args) {
        work.push_back({id, self_shared, id});
      }
      for (const std::string& arg : call.ident_args) {
        const int id = FindNamedLambda(fn, arg);
        if (id >= 0) {
          work.push_back({id, self_shared, id});
        }
      }
    }
  }
  std::set<ShardState> visited;
  const bool debug = std::getenv("OMEGA_LINT_DEBUG_REACH") != nullptr;
  while (!work.empty()) {
    const ShardState state = work.back();
    work.pop_back();
    if (!visited.insert(state).second) {
      continue;
    }
    if (debug) {
      const FunctionDef& fn = model_.function(state.fn);
      const FunctionDef& rt = model_.function(state.root);
      std::fprintf(stderr, "reach %s:%s::%s shared=%d root=%s:%zu\n",
                   fn.file.c_str(), fn.class_name.c_str(), fn.name.c_str(),
                   state.self_shared ? 1 : 0, rt.file.c_str(),
                   rt.name_token);
    }
    ScanShardFunction(state, &work);
  }
}

// det-rng-substream, construction half: fresh std engines anywhere, and
// project Rng objects constructed without a seed-derivation marker
// (SubstreamSeed / Fork / an identifier mentioning "seed").
void Linter::CheckRngDiscipline() {
  for (const auto& [path, fd] : files_) {
    if (!InScope(path, config_.flow_scope) || DetExempt(path)) {
      continue;
    }
    const std::vector<Token>& t = model_.tokens(path);
    for (size_t i = 0; i < t.size(); ++i) {
      if (!t[i].ident || !Contains(config_.rng_engine_names, t[i].text)) {
        continue;
      }
      if (i > 0 && (t[i - 1].text == "." ||
                    (i >= 2 && t[i - 1].text == ">" &&
                     t[i - 2].text == "-"))) {
        continue;  // member named like an engine, not std::
      }
      AddFinding(fd, LineAt(fd.line_offsets, t[i].offset),
                 "det-rng-substream",
                 "fresh std::" + t[i].text +
                     " engine: all randomness must flow from the experiment "
                     "seed through omega::Rng substreams "
                     "(src/common/random.h)");
    }
  }
  auto has_marker = [&](const std::vector<Token>& t, size_t begin,
                        size_t end) {
    for (size_t k = begin; k < end && k < t.size(); ++k) {
      if (!t[k].ident) {
        continue;
      }
      for (const std::string& m : config_.rng_seed_markers) {
        if (t[k].text.find(m) != std::string::npos) {
          return true;
        }
      }
    }
    return false;
  };
  for (const FunctionDef& fn : model_.functions()) {
    if (!InScope(fn.file, config_.flow_scope) || DetExempt(fn.file)) {
      continue;
    }
    auto file_it = files_.find(fn.file);
    if (file_it == files_.end()) {
      continue;
    }
    const FileData& fd = file_it->second;
    const std::vector<Token>& t = model_.tokens(fn.file);
    for (size_t i = fn.body_begin + 1;
         i + 1 < fn.body_end && i + 1 < t.size(); ++i) {
      if (!t[i].ident || t[i].text != config_.rng_type_name ||
          !t[i + 1].ident) {
        continue;
      }
      if (i + 2 >= t.size()) {
        continue;
      }
      const std::string& term = t[i + 2].text;
      bool seeded = true;
      size_t at = i;
      if (term == "(" || term == "{") {
        const size_t close = BalanceFwd(t, i + 2);
        seeded = close != std::string::npos && has_marker(t, i + 3, close);
      } else if (term == "=") {
        size_t semi = i + 3;
        while (semi < t.size() && t[semi].text != ";") {
          ++semi;
        }
        seeded = has_marker(t, i + 3, semi);
      } else if (term == ";") {
        seeded = false;
      } else {
        continue;  // `Rng&`, `Rng*`, template args, ...
      }
      if (!seeded) {
        AddFinding(fd, LineAt(fd.line_offsets, t[at].offset),
                   "det-rng-substream",
                   "Rng `" + t[i + 1].text +
                       "` constructed without a derived substream: seed it "
                       "via SubstreamSeed()/Fork() so streams are "
                       "independent of sweep order and thread count");
      }
    }
  }
}

// det-fp-unordered-acc: floating-point compound assignment inside a loop
// iterating an unordered container, and std::accumulate over one with an
// FP accumulator. Unordered iteration order differs across standard
// libraries, and FP addition does not commute in the last bits.
void Linter::CheckFpUnorderedAcc() {
  for (const auto& [path, fd] : files_) {
    if (!InScope(path, config_.flow_scope) || DetExempt(path)) {
      continue;
    }
    const std::vector<Token>& t = model_.tokens(path);
    auto span_mentions_unordered = [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end && k < t.size(); ++k) {
        if (t[k].ident && unordered_vars_.count(t[k].text)) {
          return true;
        }
      }
      return false;
    };
    auto scan_body_for_fp_acc = [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end && k < t.size(); ++k) {
        const std::string& s = t[k].text;
        const bool compound =
            s.size() == 1 &&
            std::string("+-*/").find(s) != std::string::npos &&
            AdjacentNext(t, k) && t[k + 1].text == "=";
        if (!compound) {
          continue;
        }
        bool designated = false;
        const size_t root = ChainRoot(t, k - 1, &designated);
        if (root == std::string::npos) {
          continue;
        }
        if (fp_vars_.count(t[root].text)) {
          AddFinding(fd, LineAt(fd.line_offsets, t[k].offset),
                     "det-fp-unordered-acc",
                     "floating-point accumulation into `" + t[root].text +
                         "` while iterating an unordered container: FP "
                         "addition is order-sensitive and unordered "
                         "iteration order is implementation-defined; "
                         "iterate a sorted view or accumulate per key");
        }
      }
    };
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].text == "accumulate" && t[i + 1].text == "(") {
        const size_t close = BalanceFwd(t, i + 1);
        if (close == std::string::npos ||
            !span_mentions_unordered(i + 2, close)) {
          continue;
        }
        bool fp = false;
        for (size_t k = i + 2; k < close; ++k) {
          if (t[k].ident && fp_vars_.count(t[k].text)) {
            fp = true;
          }
          if (!t[k].ident &&
              std::isdigit(static_cast<unsigned char>(t[k].text[0])) &&
              t[k].text.find('.') != std::string::npos) {
            fp = true;
          }
        }
        if (fp) {
          AddFinding(fd, LineAt(fd.line_offsets, t[i].offset),
                     "det-fp-unordered-acc",
                     "std::accumulate with a floating-point accumulator "
                     "over an unordered container: the sum depends on "
                     "implementation-defined iteration order; sort the "
                     "range first");
        }
        continue;
      }
      if (t[i].text != "for" || t[i + 1].text != "(") {
        continue;
      }
      const size_t close = BalanceFwd(t, i + 1);
      if (close == std::string::npos) {
        continue;
      }
      // Find a top-level ':' (range-for) or ';' (classic for).
      int depth = 0;
      size_t colon = 0;
      bool classic = false;
      for (size_t j = i + 1; j < close; ++j) {
        const std::string& s = t[j].text;
        if (s == "(" || s == "[" || s == "{") {
          ++depth;
        } else if (s == ")" || s == "]" || s == "}") {
          --depth;
        } else if (s == ":" && depth == 1 && colon == 0) {
          const bool scope_op =
              (j + 1 < t.size() && t[j + 1].text == ":" &&
               AdjacentNext(t, j)) ||
              (t[j - 1].text == ":" && AdjacentPrev(t, j));
          if (!scope_op) {
            colon = j;
          }
        } else if (s == ";" && depth == 1) {
          classic = true;
        }
      }
      bool over_unordered = false;
      if (colon != 0 && !classic) {
        bool has_call = false;
        for (size_t j = colon + 1; j < close; ++j) {
          if (t[j].text == "(") {
            has_call = true;
          }
        }
        over_unordered = !has_call && span_mentions_unordered(colon + 1, close);
      } else if (classic) {
        bool begin_call = false;
        for (size_t j = i + 2; j < close; ++j) {
          if (t[j].ident &&
              (t[j].text == "begin" || t[j].text == "cbegin")) {
            begin_call = true;
          }
        }
        over_unordered =
            begin_call && span_mentions_unordered(i + 2, close);
      }
      if (!over_unordered) {
        continue;
      }
      size_t body_begin = close + 1;
      size_t body_end;
      if (body_begin < t.size() && t[body_begin].text == "{") {
        body_end = BalanceFwd(t, body_begin);
        if (body_end == std::string::npos) {
          continue;
        }
      } else {
        body_end = body_begin;
        while (body_end < t.size() && t[body_end].text != ";") {
          ++body_end;
        }
      }
      scan_body_for_fp_acc(body_begin, body_end);
    }
  }
}

// sim-dangling-capture: a lambda handed to a deferred-execution API
// (Simulator::ScheduleAt / ScheduleAfter) runs after the calling frame is
// gone; capturing stack locals by reference is a use-after-return.
void Linter::CheckDanglingCaptures() {
  auto check_lambda = [&](const FileData& fd, const std::vector<Token>& t,
                          const CallSite& call, const FunctionDef& owner,
                          const FunctionDef& lam) {
    const int line = LineAt(fd.line_offsets, t[call.token_index].offset);
    if (lam.lambda.default_ref) {
      AddFinding(fd, line, "sim-dangling-capture",
                 "lambda passed to " + call.callee +
                     "() captures by reference ([&]): the callback runs "
                     "after this frame returns; capture by value (or [this] "
                     "plus copies)");
      return;
    }
    for (const std::string& name : lam.lambda.ref_captures) {
      const LocalDecl* decl = nullptr;
      for (const FunctionDef* f = &owner;;) {
        auto it = f->locals.find(name);
        if (it != f->locals.end()) {
          decl = &it->second;
          break;
        }
        if (f->enclosing < 0) {
          break;
        }
        f = &model_.function(f->enclosing);
      }
      if (decl != nullptr && decl->kind != DeclKind::kRefNonLocal) {
        AddFinding(fd, line, "sim-dangling-capture",
                   "lambda passed to " + call.callee + "() captures local `" +
                       name +
                       "` by reference: the callback outlives the frame; "
                       "capture it by value");
      }
    }
  };
  for (const FunctionDef& fn : model_.functions()) {
    if (!InScope(fn.file, config_.flow_scope)) {
      continue;
    }
    auto file_it = files_.find(fn.file);
    if (file_it == files_.end()) {
      continue;
    }
    const FileData& fd = file_it->second;
    const std::vector<Token>& t = model_.tokens(fn.file);
    for (const CallSite& call : fn.calls) {
      if (!Contains(config_.deferred_apis, call.callee)) {
        continue;
      }
      for (int id : call.lambda_args) {
        check_lambda(fd, t, call, fn, model_.function(id));
      }
      for (const std::string& arg : call.ident_args) {
        const int id = FindNamedLambda(fn, arg);
        if (id >= 0) {
          const FunctionDef& lam = model_.function(id);
          check_lambda(fd, t, call,
                       lam.enclosing >= 0 ? model_.function(lam.enclosing)
                                          : fn,
                       lam);
        }
      }
    }
  }
}

}  // namespace omega_lint
