// omega_lint: project-specific static analysis for determinism, layering,
// and header hygiene.
//
// The reproduction's headline claim is bit-identical determinism (the figure
// sweeps produce the same bytes for any thread count), and its architecture
// depends on a strict layer order (obs above the four scheduler
// architectures, which sit above sim/cluster/common). Neither property is
// visible to the compiler: one `rand()` call, one range-for over a
// `std::unordered_map` feeding ordered output, or one upward `#include`
// silently breaks them. This linter makes those invariants machine-checked.
//
// It is a lightweight tokenizer/scanner (no libclang): comments and string
// literals are stripped, identifiers are matched exactly, declarations of
// unordered containers are tracked by name, and `#include` edges are checked
// against a declared layer DAG. Findings are suppressible with an inline
// `// omega-lint: allow(<rule>)` comment (same line or the line above) or via
// a checked-in baseline file; any un-baselined finding fails the build.
//
// Rule catalogue (see DESIGN.md §9 and §14 for rationale):
//   det-rand              rand()/srand()/std::random_device/...
//   det-wallclock         time()/clock()/system_clock/high_resolution_clock
//   det-time-macro        __DATE__/__TIME__/__TIMESTAMP__
//   det-unordered-iter    iteration over std::unordered_{map,set,...}
//   det-parallel-reduce   raw concurrency primitives outside src/common/
//   layer-order           #include pointing to a higher-ranked layer
//   layer-cycle           cycle in the project #include graph
//   hygiene-pragma-once   header without #pragma once
//   hygiene-using-namespace  `using namespace` at header scope
//   hygiene-nonconst-global  mutable namespace-scope variable in a header
//
// v2 flow-aware rules, built on the whole-project call-graph model
// (tools/lint/model.h, DESIGN.md §14):
//   det-shard-unsafe-write   a function transitively reachable from a
//                            WorkerPool / DeterministicReducer::{FirstMatch,
//                            ArgBest} / ParallelFor(Ranges) shard callback
//                            writes a member field, a global, or a
//                            by-reference capture of a frame outside the
//                            shard, except through an allowlisted per-shard
//                            scratch type (ShardSlots)
//   det-rng-substream        fresh RNG engine construction/seeding outside
//                            src/common/random, or any RNG draw inside
//                            shard-parallel code (shard layout depends on
//                            thread count, so even a per-shard stream breaks
//                            bit-identicality)
//   det-fp-unordered-acc     floating-point +=/accumulate inside a loop
//                            iterating an unordered container (type-aware
//                            successor to det-unordered-iter)
//   sim-dangling-capture     a lambda handed to a Simulator deferred-
//                            execution API captures stack locals by
//                            reference; the callback outlives the frame
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/model.h"

namespace omega_lint {

// Every rule ID the linter can emit, for --list-rules and the test suite.
const std::vector<std::string>& AllRuleIds();

struct Finding {
  std::string file;  // path relative to the scan root, '/'-separated
  int line = 0;      // 1-based
  std::string rule;
  std::string message;

  // Stable identity used by the baseline file: "<file>:<line>:<rule>".
  std::string Key() const;
};

struct Layer {
  std::string name;
  int rank = 0;
  std::string prefix;  // root-relative directory prefix, e.g. "src/common/"
};

struct Config {
  // The declared layer DAG. An include edge from layer A to layer B is legal
  // iff rank(B) <= rank(A); equal ranks express "peer" subsystems (the four
  // scheduler architectures), and the cycle check keeps peers honest.
  std::vector<Layer> layers;

  // Directories (relative to root) walked by Run().
  std::vector<std::string> scan_dirs = {"src", "tools", "bench", "examples",
                                        "tests"};
  // Any path containing one of these substrings is skipped (lint fixtures
  // contain violations on purpose).
  std::vector<std::string> exclude_substrings = {"tests/lint_fixtures/"};

  // Scope of the determinism banned-API rules (det-rand, det-wallclock,
  // det-time-macro): everywhere, including tests — a test that reads ambient
  // entropy or wall time is flaky by construction. Timing of *real* work
  // uses steady_clock, which is not banned.
  std::vector<std::string> det_scope = {"src/", "bench/", "examples/",
                                        "tools/", "tests/"};
  // Scope of det-unordered-iter: simulator, bench, and tool code. Tests may
  // iterate unordered containers to assert set-equality.
  std::vector<std::string> unordered_iter_scope = {"src/", "bench/",
                                                   "tools/"};
  // Files exempt from all determinism rules: the one blessed entropy wrapper.
  std::vector<std::string> det_exempt_files = {"src/common/random.h",
                                               "src/common/random.cc"};

  // Scope of det-parallel-reduce: simulator code. Raw concurrency primitives
  // (std::thread, std::mutex, std::atomic, ...) in scheduler/placement logic
  // can order results by thread timing, breaking the bit-identical-at-any-
  // thread-count guarantee; all parallelism must go through the sanctioned
  // wrappers — ParallelFor / WorkerPool / DeterministicReducer — which live
  // under the exempt prefixes below (DESIGN.md §12). Tests may use
  // primitives directly; bench/tool code needs an inline allow() with a
  // justification.
  std::vector<std::string> parallel_scope = {"src/", "bench/", "tools/"};
  std::vector<std::string> parallel_exempt_prefixes = {"src/common/"};

  // --- v2 whole-project flow rules (DESIGN.md §14) ---

  // Files fed to the call-graph model and scanned by the flow rules.
  std::vector<std::string> flow_scope = {"src/", "bench/", "tools/"};

  // Call names whose lambda (or named-lambda) arguments run as shard
  // callbacks on worker threads.
  std::vector<std::string> shard_api_names = {"FirstMatch", "ArgBest",
                                              "ParallelForRanges",
                                              "ParallelFor"};
  // Barrier primitives whose callbacks run concurrently but each own a
  // disjoint object tree (RunDisjoint(pool, n, fn): fn(i) may freely mutate
  // the i-th tree — the windowed federation advancing per-cell simulators,
  // DESIGN.md §15). Their callbacks are seeded with a *per-tree* context
  // (self_shared = false), so writes through captured objects are legal
  // while writes to globals or into an enclosing shared root still flag.
  std::vector<std::string> disjoint_api_names = {"RunDisjoint"};
  // `Run` is a shard API only when the receiver looks like a worker pool
  // (WorkerPool::Run), so Simulator::Run is not a false root.
  std::string pool_run_name = "Run";
  std::string pool_receiver_hint = "pool";
  // Types through which per-shard writes are sanctioned: a ShardSlots view
  // asserts disjoint per-index slots (src/common/deterministic_reduce.h).
  std::vector<std::string> shard_scratch_types = {"ShardSlots"};
  // std:: container methods that mutate the receiver; calling one on a
  // shared receiver from shard-reachable code is a write.
  std::vector<std::string> mutating_methods = {
      "push_back", "pop_back",      "emplace_back", "emplace_front",
      "push_front", "pop_front",    "emplace",      "insert",
      "erase",      "clear",        "resize",       "assign",
      "reserve",    "swap",         "push",         "pop",
      "merge",      "extract",      "fill",         "sort",
      "splice",     "remove",       "shrink_to_fit"};

  // det-rng-substream: std engines are banned outside src/common/random;
  // project Rng construction must mention a seed-derivation marker.
  std::vector<std::string> rng_engine_names = {
      "mt19937",      "mt19937_64",   "minstd_rand", "minstd_rand0",
      "ranlux24",     "ranlux48",     "ranlux24_base", "ranlux48_base",
      "knuth_b",      "default_random_engine"};
  std::string rng_type_name = "Rng";
  std::vector<std::string> rng_seed_markers = {"SubstreamSeed", "Fork",
                                               "seed", "Seed"};
  std::vector<std::string> rng_draw_methods = {"Next", "NextDouble",
                                               "NextBounded", "NextRange",
                                               "NextBool", "Fork"};

  // sim-dangling-capture: deferred-execution APIs whose callbacks outlive
  // the calling frame.
  std::vector<std::string> deferred_apis = {"ScheduleAt", "ScheduleAfter"};
};

// Parses a layers.conf file into config->layers. Format, one layer per line:
//   layer <name> <rank> <path-prefix>
// '#' starts a comment; blank lines are ignored. Returns false and sets
// *error on malformed input.
bool ParseLayersFile(const std::string& path, Config* config,
                     std::string* error);

class Linter {
 public:
  Linter(std::string root, Config config);

  // Walks config.scan_dirs under root, lints every *.h/*.cc file, and runs
  // the whole-tree passes (unordered-declaration registry, include-cycle
  // detection). Returns false if a scan dir cannot be read.
  bool Run();

  // Findings sorted by (file, line, rule); deterministic across runs.
  const std::vector<Finding>& findings() const { return findings_; }

  // IO errors encountered while scanning (unreadable file, bad root).
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  struct FileData {
    std::string rel_path;
    // Original text with comments blanked, strings preserved (for #include
    // parsing).
    std::string code;
    // As above, but with string literals blanked too (for token scanning).
    std::string code_nostrings;
    // Line -> rules allowed by an `omega-lint: allow(...)` comment on it.
    std::map<int, std::set<std::string>> suppressions;
    std::vector<size_t> line_offsets;  // offset of each line start
  };

  void LoadFile(const std::string& rel_path, const std::string& content);
  void CollectUnorderedDecls(const FileData& f);
  void CollectFpDecls(const FileData& f);
  void LintFile(const FileData& f);
  void CheckBannedIdentifiers(const FileData& f);
  void CheckParallelPrimitives(const FileData& f);
  void CheckUnorderedIteration(const FileData& f);
  void CheckHeaderHygiene(const FileData& f);
  void CheckNonConstGlobals(const FileData& f);
  void CheckLayerOrder(const FileData& f);
  void CheckIncludeCycles();
  void Finish();  // whole-tree passes + sort/suppress

  // v2 flow rules over the whole-project model (tools/lint/flow_rules.cc).
  void BuildModel();
  void CheckShardSafety();
  void CheckRngDiscipline();
  void CheckFpUnorderedAcc();
  void CheckDanglingCaptures();
  // Scans one shard-reachable function for unsafe writes and RNG draws;
  // appends newly reachable (callee, shared-self) states to the worklist.
  struct ShardState {
    int fn = -1;
    bool self_shared = true;
    int root = -1;  // the shard callback this traversal started from
    bool operator<(const ShardState& o) const {
      if (fn != o.fn) return fn < o.fn;
      if (self_shared != o.self_shared) return self_shared < o.self_shared;
      return root < o.root;
    }
  };
  void ScanShardFunction(const ShardState& state,
                         std::vector<ShardState>* work);
  // True if a write through `root` from `fn` lands in state shared across
  // shard invocations; *why describes the storage class for the message.
  bool RootIsShared(const FunctionDef& fn, bool self_shared, int shard_root,
                    const std::string& root, std::string* why) const;
  bool IsScratchType(const std::string& type) const;
  int FindNamedLambda(const FunctionDef& fn, const std::string& name) const;

  void AddFinding(const FileData& f, int line, const std::string& rule,
                  const std::string& message);
  const Layer* LayerFor(const std::string& rel_path) const;
  bool InScope(const std::string& rel_path,
               const std::vector<std::string>& prefixes) const;
  bool DetExempt(const std::string& rel_path) const;

  std::string root_;
  Config config_;
  std::map<std::string, FileData> files_;  // rel_path -> data (sorted)
  // Identifiers declared anywhere in unordered_iter_scope with an unordered
  // container type (variable and member names, plus alias-typed variables).
  std::set<std::string> unordered_vars_;
  // Type-alias names bound to unordered containers (`using X = ...`).
  std::set<std::string> unordered_types_;
  // Identifiers declared with double/float anywhere in flow_scope (locals,
  // params, members) — the accumulation targets of det-fp-unordered-acc.
  std::set<std::string> fp_vars_;
  // Whole-project syntactic model backing the flow rules.
  ProjectModel model_;
  // rel_path -> (line, included rel_path) for project-local includes.
  std::map<std::string, std::vector<std::pair<int, std::string>>> includes_;
  std::vector<Finding> findings_;
  std::vector<std::string> errors_;
};

// Baseline file: one Finding::Key() per line; '#' comments and blank lines
// ignored. A missing file is an empty baseline.
std::set<std::string> LoadBaseline(const std::string& path);
bool WriteBaseline(const std::string& path, const std::vector<Finding>& all);

// Findings whose Key() is not in the baseline.
std::vector<Finding> FilterBaselined(const std::vector<Finding>& all,
                                     const std::set<std::string>& baseline);

}  // namespace omega_lint
