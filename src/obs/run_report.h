// Unified end-of-run reports (the second half of the observability subsystem).
//
// Each simulated architecture exposes its results through slightly different
// accessors (monolithic: one scheduler; Mesos: two frameworks; Omega/hifi: N
// batch schedulers plus a service scheduler). A RunReport flattens all of
// them into one architecture-agnostic document: per-scheduler metrics with
// preemption accounting kept separate from the optimistic-commit counters,
// the post-facto policy audit, the utilization series, failure-injection
// counters, and — when a TraceRecorder was attached — a summary of the event
// stream. ToJson renders the whole thing as a single JSON object so runs can
// be diffed, archived, and consumed by scripts without scraping stdout.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/trace_recorder.h"
#include "src/omega/audit.h"
#include "src/scheduler/cluster_simulation.h"
#include "src/scheduler/metrics.h"

namespace omega {

class MesosSimulation;
class MonolithicSimulation;
class OmegaSimulation;

// One scheduler's (or Mesos framework's) slice of the report.
struct SchedulerReport {
  std::string name;

  int64_t jobs_scheduled_batch = 0;
  int64_t jobs_scheduled_service = 0;
  int64_t jobs_abandoned = 0;

  double mean_wait_batch_secs = 0.0;
  double mean_wait_service_secs = 0.0;
  double p90_wait_batch_secs = 0.0;
  double p90_wait_service_secs = 0.0;

  double busyness_median = 0.0;
  double busyness_mad = 0.0;
  double conflict_fraction_mean = 0.0;
  int64_t busyness_clamp_events = 0;

  // Optimistic-commit counters...
  int64_t tasks_accepted = 0;
  int64_t tasks_conflicted = 0;
  // ...and eviction-won placements, reported separately (folding them into
  // tasks_accepted would skew the transaction-level conflict statistics).
  int64_t preemption_tasks_placed = 0;
  int64_t preemption_victims = 0;

  int64_t total_attempts = 0;
  double mean_attempts_per_job = 0.0;

  std::vector<std::string> audit_findings;
};

// Wrap-proof per-type event totals from an attached TraceRecorder.
struct TraceSummary {
  bool enabled = false;
  int64_t events_total = 0;
  int64_t events_dropped = 0;
  // (event type name, appended count), one entry per TraceEventType.
  std::vector<std::pair<std::string, int64_t>> counts;
};

struct RunReport {
  std::string architecture;  // "monolithic", "mesos", "omega", "hifi", ...

  uint32_t num_machines = 0;
  double horizon_hours = 0.0;
  uint64_t seed = 0;

  int64_t jobs_submitted_batch = 0;
  int64_t jobs_submitted_service = 0;

  double final_cpu_utilization = 0.0;
  double final_mem_utilization = 0.0;
  std::vector<UtilizationSample> utilization_series;

  int64_t machine_failures = 0;
  int64_t tasks_killed_by_failures = 0;
  // Harness-level victim count (sum over all schedulers' preemptions).
  int64_t tasks_preempted = 0;

  bool audit_compliant = true;
  std::vector<SchedulerReport> schedulers;

  TraceSummary trace;

  // Renders the report as one JSON object.
  void ToJson(std::ostream& os) const;
};

// Architecture-agnostic core: summarizes `sim` plus the named per-scheduler
// metrics. The convenience overloads below enumerate each architecture's
// schedulers for you.
RunReport BuildRunReport(
    const std::string& architecture, const ClusterSimulation& sim,
    const std::vector<std::pair<std::string, const SchedulerMetrics*>>& schedulers,
    const AuditPolicy& policy = {});

RunReport BuildRunReport(const std::string& architecture,
                         MonolithicSimulation& sim,
                         const AuditPolicy& policy = {});
RunReport BuildRunReport(const std::string& architecture, MesosSimulation& sim,
                         const AuditPolicy& policy = {});
// Covers the high-fidelity simulator too (it is an OmegaSimulation).
RunReport BuildRunReport(const std::string& architecture, OmegaSimulation& sim,
                         const AuditPolicy& policy = {});

}  // namespace omega

