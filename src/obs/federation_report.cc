#include "src/obs/federation_report.h"

#include <ostream>

#include "src/common/json.h"

namespace omega {
namespace {

void AppendFleetJson(std::ostream& os, const FederationFleetReport& f) {
  os << "{\"num_cells\":" << f.num_cells
     << ",\"jobs_routed\":" << f.jobs_routed << ",\"spills\":" << f.spills
     << ",\"spill_timeouts\":" << f.spill_timeouts
     << ",\"spill_rejections\":" << f.spill_rejections
     << ",\"jobs_fully_scheduled\":" << f.jobs_fully_scheduled
     << ",\"jobs_lost\":" << f.jobs_lost
     << ",\"summaries_published\":" << f.summaries_published
     << ",\"summaries_delivered\":" << f.summaries_delivered
     << ",\"hash_fallback_routes\":" << f.hash_fallback_routes;
  os << ",\"mean_delivery_latency_secs\":";
  json::AppendNumber(os, f.mean_delivery_latency_secs);
  os << ",\"mean_routing_staleness_secs\":";
  json::AppendNumber(os, f.mean_routing_staleness_secs);
  os << ",\"time_to_scheduled_p50_secs\":";
  json::AppendNumber(os, f.time_to_scheduled_p50_secs);
  os << ",\"time_to_scheduled_p90_secs\":";
  json::AppendNumber(os, f.time_to_scheduled_p90_secs);
  os << ",\"time_to_scheduled_p99_secs\":";
  json::AppendNumber(os, f.time_to_scheduled_p99_secs);
  os << ",\"spillover_latency_p50_secs\":";
  json::AppendNumber(os, f.spillover_latency_p50_secs);
  os << ",\"spillover_latency_p90_secs\":";
  json::AppendNumber(os, f.spillover_latency_p90_secs);
  os << ",\"spillover_latency_p99_secs\":";
  json::AppendNumber(os, f.spillover_latency_p99_secs);
  os << ",\"mean_cpu_utilization\":";
  json::AppendNumber(os, f.mean_cpu_utilization);
  os << ",\"cpu_utilization_skew\":";
  json::AppendNumber(os, f.cpu_utilization_skew);
  os << ",\"cpu_utilization_stddev\":";
  json::AppendNumber(os, f.cpu_utilization_stddev);
  os << ",\"fleet_conflict_fraction\":";
  json::AppendNumber(os, f.fleet_conflict_fraction);
  os << ",\"window_parallelism\":" << f.window_parallelism
     << ",\"windowed\":" << (f.windowed ? "true" : "false")
     << ",\"windows\":" << f.windows;
  os << ",\"mean_window_width_secs\":";
  json::AppendNumber(os, f.mean_window_width_secs);
  os << ",\"barrier_stall_fraction\":";
  json::AppendNumber(os, f.barrier_stall_fraction);
  os << ",\"routed_per_cell\":[";
  for (size_t i = 0; i < f.routed_per_cell.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << f.routed_per_cell[i];
  }
  os << "]}";
}

}  // namespace

void FederationReport::ToJson(std::ostream& os) const {
  os << "{\"fleet\":";
  AppendFleetJson(os, fleet);
  os << ",\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    cells[i].ToJson(os);
  }
  os << "]}";
}

FederationReport BuildFederationReport(FederationSim& sim,
                                       const AuditPolicy& policy) {
  FederationReport report;
  const FederationMetrics& m = sim.metrics();
  FederationFleetReport& f = report.fleet;
  f.num_cells = sim.num_cells();
  f.jobs_routed = m.jobs_routed;
  f.spills = m.spills;
  f.spill_timeouts = m.spill_timeouts;
  f.spill_rejections = m.spill_rejections;
  f.jobs_fully_scheduled = m.jobs_fully_scheduled;
  f.jobs_lost = m.jobs_lost;
  f.summaries_published = m.summaries_published;
  f.summaries_delivered = m.summaries_delivered;
  f.hash_fallback_routes = m.hash_fallback_routes;
  f.mean_delivery_latency_secs = m.delivery_latency_secs.mean();
  f.mean_routing_staleness_secs = m.routing_staleness_secs.mean();
  f.time_to_scheduled_p50_secs = m.time_to_scheduled_secs.Quantile(0.5);
  f.time_to_scheduled_p90_secs = m.time_to_scheduled_secs.Quantile(0.9);
  f.time_to_scheduled_p99_secs = m.time_to_scheduled_secs.Quantile(0.99);
  f.spillover_latency_p50_secs = m.spillover_latency_secs.Quantile(0.5);
  f.spillover_latency_p90_secs = m.spillover_latency_secs.Quantile(0.9);
  f.spillover_latency_p99_secs = m.spillover_latency_secs.Quantile(0.99);
  f.mean_cpu_utilization = sim.MeanCellCpuUtilization();
  f.cpu_utilization_skew = sim.CpuUtilizationSkew();
  f.cpu_utilization_stddev = sim.CpuUtilizationStddev();
  f.fleet_conflict_fraction = sim.FleetConflictFraction();
  f.window_parallelism = sim.fed_options().window_parallelism;
  f.windowed = sim.windowed_active();
  f.windows = sim.WindowCount();
  f.mean_window_width_secs = sim.MeanWindowWidthSecs();
  f.barrier_stall_fraction = sim.BarrierStallFraction();
  f.routed_per_cell = m.routed_per_cell;

  report.cells.reserve(sim.num_cells());
  for (uint32_t i = 0; i < sim.num_cells(); ++i) {
    RunReport cell = BuildRunReport("omega", sim.cell(i), policy);
    cell.architecture = "federation/cell" + std::to_string(i);
    report.cells.push_back(std::move(cell));
  }
  return report;
}

}  // namespace omega
