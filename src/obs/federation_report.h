// Federation-level end-of-run reports (RunReport, one level up).
//
// A FederationReport nests one full per-cell RunReport per member cell under
// a fleet section: front-door routing/spillover counters, gossip propagation
// statistics, the spillover-latency and time-to-scheduled quantiles, and the
// cross-cell utilization skew that the fig_federation sweep compares against
// the one-giant-cell and static-partitioning baselines.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/federation/federation.h"
#include "src/obs/run_report.h"

namespace omega {

// Fleet-level rollup of FederationMetrics plus cross-cell aggregates.
struct FederationFleetReport {
  uint32_t num_cells = 0;

  int64_t jobs_routed = 0;
  int64_t spills = 0;
  int64_t spill_timeouts = 0;
  int64_t spill_rejections = 0;
  int64_t jobs_fully_scheduled = 0;
  int64_t jobs_lost = 0;
  int64_t summaries_published = 0;
  int64_t summaries_delivered = 0;
  int64_t hash_fallback_routes = 0;

  double mean_delivery_latency_secs = 0.0;
  double mean_routing_staleness_secs = 0.0;

  // Quantiles are NaN (rendered as null) when no job hit the path.
  double time_to_scheduled_p50_secs = 0.0;
  double time_to_scheduled_p90_secs = 0.0;
  double time_to_scheduled_p99_secs = 0.0;
  double spillover_latency_p50_secs = 0.0;
  double spillover_latency_p90_secs = 0.0;
  double spillover_latency_p99_secs = 0.0;

  double mean_cpu_utilization = 0.0;
  double cpu_utilization_skew = 0.0;  // max - min across cells
  double cpu_utilization_stddev = 0.0;
  double fleet_conflict_fraction = 0.0;

  // Windowed execution (DESIGN.md §15). `window_parallelism` echoes the
  // option; `windowed` says whether it actually engaged (unsupported
  // configurations fall back to the shared queue). The remaining fields are
  // wall-clock/engagement diagnostics, never simulation results — they vary
  // run to run while every field above stays bit-identical.
  uint32_t window_parallelism = 0;
  bool windowed = false;
  int64_t windows = 0;
  double mean_window_width_secs = 0.0;   // simulated seconds per window
  double barrier_stall_fraction = 0.0;   // wall time outside parallel sections

  std::vector<int64_t> routed_per_cell;
};

struct FederationReport {
  FederationFleetReport fleet;
  // One RunReport per cell, cell-index order (architecture "omega").
  std::vector<RunReport> cells;

  // Renders {"fleet": {...}, "cells": [...]} as one JSON object.
  void ToJson(std::ostream& os) const;
};

FederationReport BuildFederationReport(FederationSim& sim,
                                       const AuditPolicy& policy = {});

}  // namespace omega
