#include "src/obs/run_report.h"

#include <ostream>

#include "src/common/json.h"
#include "src/mesos/mesos_simulation.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/monolithic.h"

namespace omega {
namespace {

SchedulerReport SummarizeScheduler(const std::string& name,
                                   const SchedulerMetrics& m, SimTime end,
                                   const AuditPolicy& policy) {
  SchedulerReport r;
  r.name = name;
  r.jobs_scheduled_batch = m.JobsScheduled(JobType::kBatch);
  r.jobs_scheduled_service = m.JobsScheduled(JobType::kService);
  r.jobs_abandoned = m.JobsAbandonedTotal();
  r.mean_wait_batch_secs = m.MeanWait(JobType::kBatch);
  r.mean_wait_service_secs = m.MeanWait(JobType::kService);
  r.p90_wait_batch_secs = m.WaitPercentile(JobType::kBatch, 0.9);
  r.p90_wait_service_secs = m.WaitPercentile(JobType::kService, 0.9);
  const DailySummary busyness = m.Busyness(end);
  r.busyness_median = busyness.median;
  r.busyness_mad = busyness.mad;
  r.conflict_fraction_mean = m.ConflictFraction(end).mean;
  r.busyness_clamp_events = m.BusynessClampEvents(end);
  r.tasks_accepted = m.TasksAccepted();
  r.tasks_conflicted = m.TasksConflicted();
  r.preemption_tasks_placed = m.TasksPlacedByPreemption();
  r.preemption_victims = m.PreemptionVictims();
  r.total_attempts = m.TotalAttempts();
  r.mean_attempts_per_job = m.MeanAttemptsPerJob();
  r.audit_findings = AuditMetrics(name, m, end, policy).findings;
  return r;
}

void AppendSchedulerJson(std::ostream& os, const SchedulerReport& r) {
  os << "{\"name\":";
  json::AppendString(os, r.name);
  os << ",\"jobs_scheduled_batch\":" << r.jobs_scheduled_batch
     << ",\"jobs_scheduled_service\":" << r.jobs_scheduled_service
     << ",\"jobs_abandoned\":" << r.jobs_abandoned;
  os << ",\"mean_wait_batch_secs\":";
  json::AppendNumber(os, r.mean_wait_batch_secs);
  os << ",\"mean_wait_service_secs\":";
  json::AppendNumber(os, r.mean_wait_service_secs);
  os << ",\"p90_wait_batch_secs\":";
  json::AppendNumber(os, r.p90_wait_batch_secs);
  os << ",\"p90_wait_service_secs\":";
  json::AppendNumber(os, r.p90_wait_service_secs);
  os << ",\"busyness_median\":";
  json::AppendNumber(os, r.busyness_median);
  os << ",\"busyness_mad\":";
  json::AppendNumber(os, r.busyness_mad);
  os << ",\"conflict_fraction_mean\":";
  json::AppendNumber(os, r.conflict_fraction_mean);
  os << ",\"busyness_clamp_events\":" << r.busyness_clamp_events
     << ",\"tasks_accepted\":" << r.tasks_accepted
     << ",\"tasks_conflicted\":" << r.tasks_conflicted
     << ",\"preemption_tasks_placed\":" << r.preemption_tasks_placed
     << ",\"preemption_victims\":" << r.preemption_victims
     << ",\"total_attempts\":" << r.total_attempts;
  os << ",\"mean_attempts_per_job\":";
  json::AppendNumber(os, r.mean_attempts_per_job);
  os << ",\"audit_findings\":[";
  for (size_t i = 0; i < r.audit_findings.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    json::AppendString(os, r.audit_findings[i]);
  }
  os << "]}";
}

}  // namespace

RunReport BuildRunReport(
    const std::string& architecture, const ClusterSimulation& sim,
    const std::vector<std::pair<std::string, const SchedulerMetrics*>>& schedulers,
    const AuditPolicy& policy) {
  RunReport report;
  report.architecture = architecture;
  report.num_machines = sim.cell().NumMachines();
  report.horizon_hours = sim.options().horizon.ToHours();
  report.seed = sim.options().seed;
  report.jobs_submitted_batch = sim.JobsSubmitted(JobType::kBatch);
  report.jobs_submitted_service = sim.JobsSubmitted(JobType::kService);
  report.final_cpu_utilization = sim.cell().CpuUtilization();
  report.final_mem_utilization = sim.cell().MemUtilization();
  report.utilization_series = sim.utilization_series();
  report.machine_failures = sim.MachineFailures();
  report.tasks_killed_by_failures = sim.TasksKilledByFailures();
  report.tasks_preempted = sim.TasksPreempted();

  const SimTime end = sim.EndTime();
  report.schedulers.reserve(schedulers.size());
  for (const auto& [name, metrics] : schedulers) {
    report.schedulers.push_back(SummarizeScheduler(name, *metrics, end, policy));
    if (!report.schedulers.back().audit_findings.empty()) {
      report.audit_compliant = false;
    }
  }

  if (const TraceRecorder* trace = sim.trace()) {
    report.trace.enabled = true;
    report.trace.events_total = trace->TotalRecorded();
    report.trace.events_dropped = trace->Dropped();
    for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
      const auto type = static_cast<TraceEventType>(i);
      report.trace.counts.emplace_back(TraceEventTypeName(type),
                                       trace->CountOf(type));
    }
  }
  return report;
}

RunReport BuildRunReport(const std::string& architecture,
                         MonolithicSimulation& sim, const AuditPolicy& policy) {
  return BuildRunReport(
      architecture, sim,
      {{sim.scheduler().name(), &sim.scheduler().metrics()}}, policy);
}

RunReport BuildRunReport(const std::string& architecture, MesosSimulation& sim,
                         const AuditPolicy& policy) {
  return BuildRunReport(
      architecture, sim,
      {{sim.batch_framework().name(), &sim.batch_framework().metrics()},
       {sim.service_framework().name(), &sim.service_framework().metrics()}},
      policy);
}

RunReport BuildRunReport(const std::string& architecture, OmegaSimulation& sim,
                         const AuditPolicy& policy) {
  std::vector<std::pair<std::string, const SchedulerMetrics*>> schedulers;
  for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
    schedulers.emplace_back(sim.batch_scheduler(i).name(),
                            &sim.batch_scheduler(i).metrics());
  }
  schedulers.emplace_back(sim.service_scheduler().name(),
                          &sim.service_scheduler().metrics());
  return BuildRunReport(architecture, sim, schedulers, policy);
}

void RunReport::ToJson(std::ostream& os) const {
  os << "{\"architecture\":";
  json::AppendString(os, architecture);
  os << ",\"cell\":{\"num_machines\":" << num_machines;
  os << ",\"horizon_hours\":";
  json::AppendNumber(os, horizon_hours);
  os << ",\"seed\":" << seed;
  os << ",\"final_cpu_utilization\":";
  json::AppendNumber(os, final_cpu_utilization);
  os << ",\"final_mem_utilization\":";
  json::AppendNumber(os, final_mem_utilization);
  os << "},\"workload\":{\"jobs_submitted_batch\":" << jobs_submitted_batch
     << ",\"jobs_submitted_service\":" << jobs_submitted_service << "}";
  os << ",\"failures\":{\"machine_failures\":" << machine_failures
     << ",\"tasks_killed\":" << tasks_killed_by_failures << "}";
  os << ",\"preemption\":{\"tasks_preempted_total\":" << tasks_preempted << "}";
  os << ",\"audit\":{\"compliant\":" << (audit_compliant ? "true" : "false")
     << "}";
  os << ",\"schedulers\":[";
  for (size_t i = 0; i < schedulers.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    AppendSchedulerJson(os, schedulers[i]);
  }
  os << "]";
  os << ",\"utilization_series\":[";
  for (size_t i = 0; i < utilization_series.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    const UtilizationSample& s = utilization_series[i];
    os << "{\"time_hours\":";
    json::AppendNumber(os, s.time_hours);
    os << ",\"cpu\":";
    json::AppendNumber(os, s.cpu);
    os << ",\"mem\":";
    json::AppendNumber(os, s.mem);
    os << "}";
  }
  os << "]";
  os << ",\"trace\":{\"enabled\":" << (trace.enabled ? "true" : "false");
  if (trace.enabled) {
    os << ",\"events_total\":" << trace.events_total
       << ",\"events_dropped\":" << trace.events_dropped << ",\"counts\":{";
    for (size_t i = 0; i < trace.counts.size(); ++i) {
      if (i > 0) {
        os << ",";
      }
      json::AppendString(os, trace.counts[i].first);
      os << ":" << trace.counts[i].second;
    }
    os << "}";
  }
  os << "}}";
}

}  // namespace omega
