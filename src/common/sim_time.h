// Simulation time types.
//
// Simulated time is represented as integer microseconds since the start of the
// simulation. A strong type prevents accidental mixing with other integer
// quantities (task counts, sequence numbers, ...) that pervade the simulator.
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>

namespace omega {

// A point in simulated time, in microseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(int64_t micros) : micros_(micros) {}

  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() {
    return SimTime(std::numeric_limits<int64_t>::max());
  }

  static constexpr SimTime FromSeconds(double seconds) {
    return SimTime(static_cast<int64_t>(seconds * 1e6));
  }
  static constexpr SimTime FromMillis(double millis) {
    return SimTime(static_cast<int64_t>(millis * 1e3));
  }
  static constexpr SimTime FromMinutes(double minutes) {
    return FromSeconds(minutes * 60.0);
  }
  static constexpr SimTime FromHours(double hours) {
    return FromSeconds(hours * 3600.0);
  }
  static constexpr SimTime FromDays(double days) { return FromHours(days * 24.0); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double ToSeconds() const { return static_cast<double>(micros_) / 1e6; }
  constexpr double ToHours() const { return ToSeconds() / 3600.0; }
  constexpr double ToDays() const { return ToSeconds() / 86400.0; }

  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  int64_t micros_ = 0;
};

// A span of simulated time, in microseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(int64_t micros) : micros_(micros) {}

  static constexpr Duration Zero() { return Duration(0); }
  // Sentinel for "effectively never" delays (e.g. gossip that is published
  // but never delivered); callers must test for it rather than add it to a
  // SimTime, which would overflow.
  static constexpr Duration Max() {
    return Duration(std::numeric_limits<int64_t>::max());
  }
  static constexpr Duration FromSeconds(double seconds) {
    return Duration(static_cast<int64_t>(seconds * 1e6));
  }
  static constexpr Duration FromMillis(double millis) {
    return Duration(static_cast<int64_t>(millis * 1e3));
  }
  static constexpr Duration FromMinutes(double minutes) {
    return FromSeconds(minutes * 60.0);
  }
  static constexpr Duration FromHours(double hours) {
    return FromSeconds(hours * 3600.0);
  }
  static constexpr Duration FromDays(double days) { return FromHours(days * 24.0); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double ToSeconds() const { return static_cast<double>(micros_) / 1e6; }
  constexpr double ToHours() const { return ToSeconds() / 3600.0; }
  constexpr double ToDays() const { return ToHours() / 24.0; }

  constexpr auto operator<=>(const Duration&) const = default;

 private:
  int64_t micros_ = 0;
};

constexpr SimTime operator+(SimTime t, Duration d) {
  return SimTime(t.micros() + d.micros());
}
constexpr SimTime operator-(SimTime t, Duration d) {
  return SimTime(t.micros() - d.micros());
}
constexpr Duration operator-(SimTime a, SimTime b) {
  return Duration(a.micros() - b.micros());
}
constexpr Duration operator+(Duration a, Duration b) {
  return Duration(a.micros() + b.micros());
}
constexpr Duration operator-(Duration a, Duration b) {
  return Duration(a.micros() - b.micros());
}
constexpr Duration operator*(Duration d, double k) {
  return Duration(static_cast<int64_t>(static_cast<double>(d.micros()) * k));
}
constexpr Duration operator*(double k, Duration d) { return d * k; }
constexpr double operator/(Duration a, Duration b) {
  return static_cast<double>(a.micros()) / static_cast<double>(b.micros());
}

inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.ToSeconds() << "s";
}
inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.ToSeconds() << "s";
}

}  // namespace omega

