// Random-variate distributions used by the synthetic workload generator.
//
// The lightweight simulator of the Omega paper synthesizes jobs from empirical
// parameter distributions fitted to production traces (Table 2, "sampled").
// These classes provide the distribution families used for that synthesis:
// exponential inter-arrival times, log-normal durations and resource sizes,
// bounded-Pareto task counts, and piecewise empirical distributions for cases
// where a parametric family does not fit.
#pragma once

#include <memory>
#include <vector>

#include "src/common/random.h"

namespace omega {

// Interface for a real-valued random variate source.
class Distribution {
 public:
  virtual ~Distribution() = default;

  // Draws one sample using `rng`.
  virtual double Sample(Rng& rng) const = 0;

  // Analytic (or approximated) mean of the distribution; used by tests and by
  // load calculations in the experiment harness.
  virtual double Mean() const = 0;
};

// Constant value (degenerate distribution).
class ConstantDist final : public Distribution {
 public:
  explicit ConstantDist(double value) : value_(value) {}
  double Sample(Rng&) const override { return value_; }
  double Mean() const override { return value_; }

 private:
  double value_;
};

// Uniform on [lo, hi).
class UniformDist final : public Distribution {
 public:
  UniformDist(double lo, double hi);
  double Sample(Rng& rng) const override;
  double Mean() const override { return 0.5 * (lo_ + hi_); }

 private:
  double lo_;
  double hi_;
};

// Exponential with the given mean (= 1/rate). Used for inter-arrival times.
class ExponentialDist final : public Distribution {
 public:
  explicit ExponentialDist(double mean);
  double Sample(Rng& rng) const override;
  double Mean() const override { return mean_; }

 private:
  double mean_;
};

// Log-normal parameterized by the *linear-space* mean and sigma of the
// underlying normal; heavy-tailed, fits task durations and resource sizes.
class LogNormalDist final : public Distribution {
 public:
  // `mean` is the distribution mean E[X]; `sigma` is the log-space std dev.
  LogNormalDist(double mean, double sigma);
  double Sample(Rng& rng) const override;
  double Mean() const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

// Bounded Pareto on [lo, hi] with tail index alpha. Captures the heavy tail of
// tasks-per-job (most jobs are small; a few have thousands of tasks, Fig. 4).
class BoundedParetoDist final : public Distribution {
 public:
  BoundedParetoDist(double lo, double hi, double alpha);
  double Sample(Rng& rng) const override;
  double Mean() const override;

 private:
  double lo_;
  double hi_;
  double alpha_;
};

// Piecewise-linear empirical distribution built from (value, cumulative
// probability) points. Sampling inverts the CDF with linear interpolation.
class EmpiricalDist final : public Distribution {
 public:
  struct Point {
    double value = 0.0;
    double cumulative = 0.0;  // in [0, 1], non-decreasing across points
  };

  // `points` must be non-empty, sorted by cumulative probability, and end with
  // cumulative == 1.0.
  explicit EmpiricalDist(std::vector<Point> points);

  double Sample(Rng& rng) const override;
  double Mean() const override;

 private:
  std::vector<Point> points_;
};

// Weighted mixture of component distributions. Used e.g. for service-job
// durations, which combine a long-lived population (20-40% of service jobs run
// beyond a month, §2.1) with shorter-lived restarts.
class MixtureDist final : public Distribution {
 public:
  struct Component {
    double weight = 0.0;
    std::shared_ptr<const Distribution> dist;
  };

  // Weights must be positive; they are normalized internally.
  explicit MixtureDist(std::vector<Component> components);

  double Sample(Rng& rng) const override;
  double Mean() const override;

 private:
  std::vector<Component> components_;  // weights normalized to cumulative form
};

// A distribution clamped to [lo, hi]; keeps heavy-tailed samples physical
// (e.g., a task cannot request more CPU than a machine has).
class ClampedDist final : public Distribution {
 public:
  ClampedDist(std::shared_ptr<const Distribution> inner, double lo, double hi);
  double Sample(Rng& rng) const override;
  double Mean() const override;

 private:
  std::shared_ptr<const Distribution> inner_;
  double lo_;
  double hi_;
};

}  // namespace omega

