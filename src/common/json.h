// Minimal JSON emission helpers shared by the machine-readable outputs
// (BENCH_<figure>.json, RunReport, trace exports). Writing only — the repo
// never parses JSON, so there is deliberately no reader here.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

namespace omega {
namespace json {

// JSON-safe rendering of a double: full round-trip precision, and the
// non-finite values JSON cannot represent become null.
void AppendNumber(std::ostream& os, double v);

// Quoted and escaped string literal.
void AppendString(std::ostream& os, std::string_view s);

}  // namespace json
}  // namespace omega

