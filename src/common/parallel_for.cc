#include "src/common/parallel_for.h"

#include <algorithm>
#include <exception>
#include <mutex>

namespace omega {

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t max_threads) {
  if (n == 0) {
    return;
  }
  size_t num_threads = max_threads;
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, n);
  if (num_threads == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  // An exception escaping a worker thread would call std::terminate; capture
  // the first one instead, stop handing out work, and rethrow after the join.
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&] {
      while (!abort.load(std::memory_order_relaxed)) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) {
          return;
        }
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

void ParallelForRanges(size_t n, size_t grain,
                       const std::function<void(size_t, size_t)>& fn,
                       size_t max_threads) {
  if (n == 0) {
    return;
  }
  if (grain == 0) {
    grain = 1;
  }
  const size_t num_chunks = (n + grain - 1) / grain;
  size_t num_threads = max_threads;
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, num_chunks);
  auto run_chunk = [&](size_t c) {
    const size_t begin = c * grain;
    fn(begin, std::min(n, begin + grain));
  };
  if (num_threads == 1) {
    // Still iterate chunk-by-chunk so the callee sees identical range shapes
    // in the sequential and parallel cases.
    for (size_t c = 0; c < num_chunks; ++c) {
      run_chunk(c);
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&] {
      while (!abort.load(std::memory_order_relaxed)) {
        const size_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) {
          return;
        }
        try {
          run_chunk(c);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace omega
