#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace omega {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Median(std::vector<double> values) { return Percentile(std::move(values), 0.5); }

double MedianAbsoluteDeviation(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  const double med = Median(values);
  for (double& v : values) {
    v = std::abs(v - med);
  }
  return Median(std::move(values));
}

void Cdf::AddN(double x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    values_.push_back(x);
  }
  sorted_ = false;
}

void Cdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Cdf::FractionAtOrBelow(double x) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double Cdf::Quantile(double q) const {
  EnsureSorted();
  return Percentile(values_, q);  // values_ already sorted; Percentile re-sorts, fine.
}

double Cdf::MinValue() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Cdf::MaxValue() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Cdf::MeanValue() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

std::vector<double> Cdf::Evaluate(const std::vector<double>& points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) {
    out.push_back(FractionAtOrBelow(p));
  }
  return out;
}

std::string Cdf::ToTable(const std::string& value_label, int num_points,
                         bool log_spaced) const {
  std::ostringstream os;
  os << value_label << "\tCDF\n";
  if (values_.empty() || num_points < 2) {
    return os.str();
  }
  EnsureSorted();
  double lo = values_.front();
  double hi = values_.back();
  if (log_spaced) {
    lo = std::max(lo, 1e-9);
    hi = std::max(hi, lo * (1.0 + 1e-9));
  }
  for (int i = 0; i < num_points; ++i) {
    const double frac = static_cast<double>(i) / (num_points - 1);
    double x = 0.0;
    if (log_spaced) {
      x = lo * std::pow(hi / lo, frac);
    } else {
      x = lo + frac * (hi - lo);
    }
    os << x << "\t" << FractionAtOrBelow(x) << "\n";
  }
  return os.str();
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::Add(double x) {
  auto idx = static_cast<int64_t>((x - lo_) / width_);
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::BucketHigh(size_t i) const { return BucketLow(i) + width_; }

}  // namespace omega
