#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace omega {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    // NaN, not 0.0: an empty sample is not a sample of zeros. JSON emitters
    // render non-finite values as null (json::AppendNumber), so the report
    // distinguishes "no data" from a true zero.
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Median(std::vector<double> values) { return Percentile(std::move(values), 0.5); }

double MedianAbsoluteDeviation(std::vector<double> values) {
  if (values.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double med = Median(values);
  for (double& v : values) {
    v = std::abs(v - med);
  }
  return Median(std::move(values));
}

void Cdf::AddN(double x, int64_t n) {
  if (n <= 0) {
    return;
  }
  runs_.emplace_back(x, n);
  total_ += n;
  sorted_ = false;
}

void Cdf::Merge(const Cdf& other) {
  if (other.total_ == 0) {
    return;
  }
  runs_.insert(runs_.end(), other.runs_.begin(), other.runs_.end());
  total_ += other.total_;
  sorted_ = false;
}

void Cdf::EnsureSorted() const {
  if (sorted_) {
    return;
  }
  std::sort(runs_.begin(), runs_.end());
  // Coalesce runs with equal values so rank queries see one entry per value.
  size_t out = 0;
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (out > 0 && runs_[out - 1].first == runs_[i].first) {
      runs_[out - 1].second += runs_[i].second;
    } else {
      runs_[out++] = runs_[i];
    }
  }
  runs_.resize(out);
  cumulative_.resize(runs_.size());
  int64_t running = 0;
  for (size_t i = 0; i < runs_.size(); ++i) {
    running += runs_[i].second;
    cumulative_[i] = running;
  }
  sorted_ = true;
}

double Cdf::ValueAtRank(int64_t k) const {
  // First run whose inclusive cumulative count exceeds k holds the k-th
  // order statistic.
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), k);
  assert(it != cumulative_.end());
  return runs_[static_cast<size_t>(it - cumulative_.begin())].first;
}

double Cdf::FractionAtOrBelow(double x) const {
  if (total_ == 0) {
    return 0.0;
  }
  EnsureSorted();
  auto it = std::upper_bound(
      runs_.begin(), runs_.end(), x,
      [](double v, const std::pair<double, int64_t>& run) { return v < run.first; });
  if (it == runs_.begin()) {
    return 0.0;
  }
  const size_t idx = static_cast<size_t>(it - runs_.begin()) - 1;
  return static_cast<double>(cumulative_[idx]) / static_cast<double>(total_);
}

double Cdf::Quantile(double q) const {
  if (total_ == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  EnsureSorted();
  // Same linear interpolation between order statistics as Percentile().
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(total_ - 1);
  const auto lo = static_cast<int64_t>(pos);
  const int64_t hi = std::min(lo + 1, total_ - 1);
  const double frac = pos - static_cast<double>(lo);
  const double v_lo = ValueAtRank(lo);
  const double v_hi = ValueAtRank(hi);
  return v_lo + frac * (v_hi - v_lo);
}

double Cdf::MinValue() const {
  if (total_ == 0) {
    return 0.0;
  }
  EnsureSorted();
  return runs_.front().first;
}

double Cdf::MaxValue() const {
  if (total_ == 0) {
    return 0.0;
  }
  EnsureSorted();
  return runs_.back().first;
}

double Cdf::MeanValue() const {
  if (total_ == 0) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& [value, n] : runs_) {
    sum += value * static_cast<double>(n);
  }
  return sum / static_cast<double>(total_);
}

std::vector<double> Cdf::Evaluate(const std::vector<double>& points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) {
    out.push_back(FractionAtOrBelow(p));
  }
  return out;
}

std::string Cdf::ToTable(const std::string& value_label, int num_points,
                         bool log_spaced) const {
  std::ostringstream os;
  os << value_label << "\tCDF\n";
  if (total_ == 0 || num_points < 2) {
    return os.str();
  }
  double lo = MinValue();
  double hi = MaxValue();
  if (log_spaced) {
    lo = std::max(lo, 1e-9);
    hi = std::max(hi, lo * (1.0 + 1e-9));
  }
  for (int i = 0; i < num_points; ++i) {
    const double frac = static_cast<double>(i) / (num_points - 1);
    double x = 0.0;
    if (log_spaced) {
      x = lo * std::pow(hi / lo, frac);
    } else {
      x = lo + frac * (hi - lo);
    }
    os << x << "\t" << FractionAtOrBelow(x) << "\n";
  }
  return os.str();
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::Add(double x) {
  auto idx = static_cast<int64_t>((x - lo_) / width_);
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::BucketHigh(size_t i) const { return BucketLow(i) + width_; }

}  // namespace omega
