#include "src/common/deterministic_reduce.h"

#include <atomic>

namespace omega {

size_t DeterministicReducer::FirstMatch(WorkerPool* pool, size_t n,
                                        size_t grain, const ScanFn& scan) {
  if (n == 0) {
    return kReduceNotFound;
  }
  if (grain == 0) {
    grain = 1;
  }
  const size_t num_shards = (n + grain - 1) / grain;
  if (pool == nullptr || pool->concurrency() <= 1 || num_shards <= 1) {
    return scan(0, n);
  }
  shard_hit_.assign(num_shards, kReduceNotFound);
  // Lowest shard index known to contain a hit. Relaxed: a stale read only
  // costs a redundant shard scan, never a wrong merge result.
  std::atomic<size_t> bound{num_shards};
  pool->Run(num_shards, [&](size_t s) {
    if (s > bound.load(std::memory_order_relaxed)) {
      return;
    }
    const size_t begin = s * grain;
    const size_t hit = scan(begin, std::min(n, begin + grain));
    shard_hit_[s] = hit;
    if (hit != kReduceNotFound) {
      size_t cur = bound.load(std::memory_order_relaxed);
      while (s < cur && !bound.compare_exchange_weak(
                            cur, s, std::memory_order_relaxed)) {
      }
    }
  });
  for (size_t s = 0; s < num_shards; ++s) {
    if (shard_hit_[s] != kReduceNotFound) {
      return shard_hit_[s];
    }
  }
  return kReduceNotFound;
}

DeterministicReducer::Best DeterministicReducer::ArgBest(WorkerPool* pool,
                                                         size_t n,
                                                         size_t grain,
                                                         const BestFn& scan) {
  if (n == 0) {
    return Best{};
  }
  if (grain == 0) {
    grain = 1;
  }
  const size_t num_shards = (n + grain - 1) / grain;
  if (pool == nullptr || pool->concurrency() <= 1 || num_shards <= 1) {
    return scan(0, n);
  }
  shard_best_.assign(num_shards, Best{});
  pool->Run(num_shards, [&](size_t s) {
    const size_t begin = s * grain;
    shard_best_[s] = scan(begin, std::min(n, begin + grain));
  });
  Best best;
  for (size_t s = 0; s < num_shards; ++s) {
    const Best& b = shard_best_[s];
    if (b.index == kReduceNotFound) {
      continue;
    }
    if (best.index == kReduceNotFound || b.score > best.score) {
      best = b;
    }
  }
  return best;
}

}  // namespace omega
