#include "src/common/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace omega {

UniformDist::UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {
  assert(lo <= hi);
}

double UniformDist::Sample(Rng& rng) const { return rng.NextRange(lo_, hi_); }

ExponentialDist::ExponentialDist(double mean) : mean_(mean) { assert(mean > 0.0); }

double ExponentialDist::Sample(Rng& rng) const {
  // Inverse-CDF; 1 - u avoids log(0).
  return -mean_ * std::log(1.0 - rng.NextDouble());
}

LogNormalDist::LogNormalDist(double mean, double sigma) : sigma_(sigma) {
  assert(mean > 0.0);
  assert(sigma >= 0.0);
  // E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
  mu_ = std::log(mean) - 0.5 * sigma * sigma;
}

double LogNormalDist::Sample(Rng& rng) const {
  // Box-Muller transform.
  const double u1 = 1.0 - rng.NextDouble();
  const double u2 = rng.NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return std::exp(mu_ + sigma_ * z);
}

double LogNormalDist::Mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

BoundedParetoDist::BoundedParetoDist(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  assert(lo > 0.0);
  assert(hi >= lo);
  assert(alpha > 0.0);
}

double BoundedParetoDist::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  // Inverse CDF of the bounded Pareto.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

double BoundedParetoDist::Mean() const {
  if (std::abs(alpha_ - 1.0) < 1e-12) {
    const double la = lo_;
    const double ha = hi_;
    return (std::log(ha) - std::log(la)) * la * ha / (ha - la);
  }
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return la / (1.0 - la / ha) * (alpha_ / (alpha_ - 1.0)) *
         (1.0 / std::pow(lo_, alpha_ - 1.0) - 1.0 / std::pow(hi_, alpha_ - 1.0));
}

EmpiricalDist::EmpiricalDist(std::vector<Point> points) : points_(std::move(points)) {
  assert(!points_.empty());
  assert(std::is_sorted(points_.begin(), points_.end(),
                        [](const Point& a, const Point& b) {
                          return a.cumulative < b.cumulative;
                        }));
  assert(points_.back().cumulative >= 1.0 - 1e-9);
}

double EmpiricalDist::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(
      points_.begin(), points_.end(), u,
      [](const Point& p, double value) { return p.cumulative < value; });
  if (it == points_.begin()) {
    return points_.front().value;
  }
  if (it == points_.end()) {
    return points_.back().value;
  }
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double span = hi.cumulative - lo.cumulative;
  if (span <= 0.0) {
    return hi.value;
  }
  const double frac = (u - lo.cumulative) / span;
  return lo.value + frac * (hi.value - lo.value);
}

double EmpiricalDist::Mean() const {
  // Mean of the piecewise-linear CDF: each segment contributes the midpoint
  // value weighted by its probability mass.
  double mean = points_.front().value * points_.front().cumulative;
  for (size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].cumulative - points_[i - 1].cumulative;
    mean += 0.5 * (points_[i].value + points_[i - 1].value) * mass;
  }
  return mean;
}

MixtureDist::MixtureDist(std::vector<Component> components)
    : components_(std::move(components)) {
  assert(!components_.empty());
  double total = 0.0;
  for (const Component& c : components_) {
    assert(c.weight > 0.0);
    assert(c.dist != nullptr);
    total += c.weight;
  }
  // Convert to cumulative weights for O(components) sampling.
  double cumulative = 0.0;
  for (Component& c : components_) {
    cumulative += c.weight / total;
    c.weight = cumulative;
  }
  components_.back().weight = 1.0;
}

double MixtureDist::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  for (const Component& c : components_) {
    if (u <= c.weight) {
      return c.dist->Sample(rng);
    }
  }
  return components_.back().dist->Sample(rng);
}

double MixtureDist::Mean() const {
  double mean = 0.0;
  double prev = 0.0;
  for (const Component& c : components_) {
    mean += (c.weight - prev) * c.dist->Mean();
    prev = c.weight;
  }
  return mean;
}

ClampedDist::ClampedDist(std::shared_ptr<const Distribution> inner, double lo,
                         double hi)
    : inner_(std::move(inner)), lo_(lo), hi_(hi) {
  assert(inner_ != nullptr);
  assert(lo <= hi);
}

double ClampedDist::Sample(Rng& rng) const {
  return std::clamp(inner_->Sample(rng), lo_, hi_);
}

double ClampedDist::Mean() const {
  // Approximation: clamping shifts the mean, but for our parameters the mass
  // outside [lo, hi] is small; report the clamped inner mean.
  return std::clamp(inner_->Mean(), lo_, hi_);
}

}  // namespace omega
