#include "src/common/random.h"

namespace omega {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits scaled into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextRange(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

uint64_t SubstreamSeed(uint64_t base_seed, uint64_t stream_index) {
  // Mix base and index into one word (odd multiplier keeps the mapping from
  // stream_index injective), then run two SplitMix64 rounds to decorrelate
  // adjacent indices and adjacent base seeds.
  uint64_t s = base_seed ^ (0xda942042e4dd58b5ULL * (stream_index + 1));
  (void)SplitMix64(s);
  return SplitMix64(s);
}

}  // namespace omega
