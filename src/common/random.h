// Deterministic pseudo-random number generation.
//
// The simulator needs fast, reproducible randomness that can be forked into
// independent streams (one per sweep point, one per workload type) so that
// experiments are deterministic regardless of execution order or parallelism.
// xoshiro256** is used as the core generator, seeded via SplitMix64.
#pragma once

#include <array>
#include <cstdint>

namespace omega {

// xoshiro256** generator. Satisfies the C++ UniformRandomBitGenerator
// requirements, so it can also drive <random> distributions if needed.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }
  uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [lo, hi).
  double NextRange(double lo, double hi);

  // Returns true with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  // Creates an independent generator derived from this one's stream.
  Rng Fork();

 private:
  std::array<uint64_t, 4> state_;
};

// Derives the seed of substream `stream_index` of `base_seed`. Substreams are
// statistically independent of each other and of the base stream, and the
// mapping is pure: a (base_seed, stream_index) pair always yields the same
// seed, regardless of call order. Parallel sweeps use this to give every
// trial its own RNG stream, making results bit-identical for any thread
// count.
uint64_t SubstreamSeed(uint64_t base_seed, uint64_t stream_index);

}  // namespace omega

