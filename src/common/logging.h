// Minimal leveled logging for the simulator.
//
// Simulation hot paths must be able to compile logging out entirely; the
// macros below evaluate their stream arguments only when the level is enabled.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace omega {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global minimum level; messages below it are dropped. Not thread-safe to
// mutate while logging concurrently — set it once at startup.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Internal: emits one formatted line and aborts on kFatal.
void EmitLogLine(LogLevel level, const char* file, int line,
                 const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { EmitLogLine(level_, file_, line_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace omega

#define OMEGA_LOG_IS_ON(level) \
  (::omega::LogLevel::level >= ::omega::GetLogLevel())

#define OMEGA_LOG(level)                                                   \
  if (!OMEGA_LOG_IS_ON(level)) {                                           \
  } else                                                                   \
    ::omega::LogMessage(::omega::LogLevel::level, __FILE__, __LINE__).stream()

// Always-on invariant check: cheap enough to keep in release builds, and the
// simulator's correctness arguments (resource conservation, transaction
// atomicity) lean on it.
#define OMEGA_CHECK(cond)                                                      \
  if (cond) {                                                                  \
  } else                                                                       \
    ::omega::LogMessage(::omega::LogLevel::kFatal, __FILE__, __LINE__).stream() \
        << "Check failed: " #cond " "

