// Persistent worker pool for intra-trial parallelism (DESIGN.md §12).
//
// ParallelFor spawns fresh threads per call, which is fine for coarse work
// (one simulation trial per iteration) but far too expensive for the
// per-decision hot paths inside a trial: a mega-cell trial issues millions of
// placement scans, each a few microseconds. WorkerPool keeps its threads
// alive across calls and dispatches "generations" of work through a
// mutex/condition-variable handshake plus one atomic shard counter, so a
// dispatch costs a wakeup instead of a thread spawn.
//
// Determinism contract: the pool itself promises nothing about which thread
// runs which index or in what order — callers that need deterministic results
// must combine per-shard outputs with an ordered reduction (see
// deterministic_reduce.h). All raw concurrency primitives live in this file
// and its .cc; simulator layers above src/common must go through WorkerPool /
// ParallelFor / DeterministicReducer (enforced by the det-parallel-reduce
// lint rule).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace omega {

class WorkerPool {
 public:
  // Total concurrency `num_threads` (0 = hardware concurrency, clamped to at
  // least 1). The pool spawns num_threads - 1 workers; the caller of Run()
  // participates as the remaining lane, so WorkerPool(1) spawns no threads
  // and Run() degenerates to a plain sequential loop.
  explicit WorkerPool(size_t num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Caller lane plus resident workers.
  size_t concurrency() const { return workers_.size() + 1; }

  // Invokes fn(i) for i in [0, n) across the pool and the calling thread,
  // blocking until every index has completed. Indices are claimed dynamically
  // from a shared counter, so assignment to threads is nondeterministic; fn
  // must be safe to call concurrently for distinct i. Writes made by fn
  // happen-before Run() returns (the completion handshake goes through a
  // mutex), so the caller may read shard outputs without further fences.
  //
  // If fn throws, no further indices are started and the first captured
  // exception is rethrown on the calling thread after the generation drains.
  // Run() is not reentrant and must only be called from one thread at a time
  // (in the simulator: the single event-loop thread).
  void Run(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  // Claims and runs indices until the counter is exhausted; records the first
  // exception and poisons the counter to stop further claims.
  void Drain(const std::function<void(size_t)>& fn, size_t n);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: new generation/shutdown
  std::condition_variable done_cv_;  // signals caller: generation drained
  uint64_t generation_ = 0;          // guarded by mu_
  size_t active_ = 0;                // workers not yet done with generation_
  bool shutdown_ = false;            // guarded by mu_
  const std::function<void(size_t)>* fn_ = nullptr;  // valid while active_ > 0
  size_t n_ = 0;
  std::atomic<size_t> next_{0};
  std::exception_ptr first_error_;  // guarded by mu_
};

// Runs fn(i) for i in [0, n) where each index advances a *disjoint* object
// tree — no two indices may touch the same mutable state (the disjointness
// contract is the caller's, exactly as with ShardSlots). Falls back to a
// plain sequential loop — no pool handshake, no wakeup — when the pool is
// absent, single-lane, or n <= 1, so per-window dispatch in the federation
// barrier loop costs nothing when only one cell is runnable. This is the
// sanctioned entry point for coarse-grained partitioned parallelism (the
// windowed federation's per-cell event loops); omega_lint's
// det-shard-unsafe-write rule treats RunDisjoint callbacks as owning their
// index's object tree rather than sharing the enclosing frame.
void RunDisjoint(WorkerPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace omega
