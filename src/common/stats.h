// Statistics utilities for experiment metrics.
//
// The paper reports medians of per-day values with median-absolute-deviation
// (MAD) error bars, overall means for wait times, percentiles (90th, 80th),
// and empirical CDFs. These helpers implement all of those plus streaming
// moments for workload characterization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace omega {

// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  // Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact percentile of a sample set (linear interpolation between order
// statistics). `q` in [0, 1]. Returns NaN for an empty sample — "no data" is
// not a zero, and json::AppendNumber renders NaN as null in reports.
double Percentile(std::vector<double> values, double q);

// Median (50th percentile). NaN for an empty sample.
double Median(std::vector<double> values);

// Median absolute deviation from the median: a robust dispersion estimator,
// used for the error bars in Figures 6-9. NaN for an empty sample.
double MedianAbsoluteDeviation(std::vector<double> values);

// An empirical cumulative distribution function over collected samples.
// Samples are stored as (value, count) runs, so weighted adds (`AddN`) cost
// O(1) memory regardless of the weight.
class Cdf {
 public:
  void Add(double x) { AddN(x, 1); }
  // Adds `n` copies of x; n <= 0 is a no-op.
  void AddN(double x, int64_t n);
  // Absorbs all samples of `other`. Used to fold per-trial CDFs from a
  // parallel sweep into one distribution.
  void Merge(const Cdf& other);

  size_t count() const { return static_cast<size_t>(total_); }
  bool empty() const { return total_ == 0; }

  // Fraction of samples <= x.
  double FractionAtOrBelow(double x) const;
  // Value at quantile q in [0, 1]. NaN when the CDF holds no samples.
  double Quantile(double q) const;

  double MinValue() const;
  double MaxValue() const;
  double MeanValue() const;

  // Evaluates the CDF at `points` x-values; returns fractions.
  std::vector<double> Evaluate(const std::vector<double>& points) const;

  // Renders a fixed-width table of (x, F(x)) rows at logarithmically spaced
  // points between min and max; used by the figure benches.
  std::string ToTable(const std::string& value_label, int num_points = 12,
                      bool log_spaced = true) const;

 private:
  // Sorts runs by value, coalesces duplicates, and rebuilds the inclusive
  // prefix-sum over counts used for O(log runs) rank/fraction queries.
  void EnsureSorted() const;
  // Value of the k-th order statistic (0-based, k in [0, total_)).
  double ValueAtRank(int64_t k) const;

  mutable std::vector<std::pair<double, int64_t>> runs_;  // (value, count)
  mutable std::vector<int64_t> cumulative_;  // inclusive prefix sums of counts
  mutable bool sorted_ = false;
  int64_t total_ = 0;
};

// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
// samples are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);
  int64_t TotalCount() const { return total_; }
  int64_t BucketCount(size_t i) const { return counts_.at(i); }
  size_t NumBuckets() const { return counts_.size(); }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace omega

