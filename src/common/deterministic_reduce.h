// Deterministic ordered map-reduce over index ranges (DESIGN.md §12).
//
// The placement hot paths are sequential scans over machine ids with two
// reduction shapes:
//
//   FirstMatch — "lowest index satisfying a predicate" (RandomizedFirstFit
//     phase-2 sweep, ScoringPlacer full-scan fallback);
//   ArgBest — "index with the strictly greatest score, earliest index wins
//     ties" (ScoringPlacer candidate sampling).
//
// Both are order-insensitive to *evaluation* (each index's verdict/score
// depends only on shared read-only state) but order-sensitive in their
// *selection*. DeterministicReducer shards [0, n) into fixed contiguous
// ranges, evaluates shards concurrently on a WorkerPool, and merges per-shard
// results in ascending shard order on the calling thread. Because shard
// boundaries are a partition of the index space and the merge visits shards
// in index order with the same comparison the sequential scan uses (first
// hit; strictly-greater-wins), the reduced result is bit-identical to the
// sequential scan for every shard layout and thread count.
//
// Floating-point note: no FP value is ever *combined* across threads — each
// score is computed independently for one index by one thread from the same
// inputs the sequential scan would use, and the merge only compares. Scores
// must not be NaN (comparisons against NaN would make "strictly greater"
// order-dependent).
//
// Per-shard scratch lives in member vectors that are reused across calls, so
// steady-state reductions do not allocate.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "src/common/worker_pool.h"

namespace omega {

// Sentinel for "no index selected".
inline constexpr size_t kReduceNotFound = static_cast<size_t>(-1);

// Per-shard output view: wraps a caller-owned buffer whose slots are written
// by at most one shard invocation each (disjoint index ranges). This is the
// one sanctioned form of shared-memory *output* from shard callbacks — every
// other write to state visible across shards is a det-shard-unsafe-write
// finding (omega_lint, DESIGN.md §14). The wrapper adds no synchronization;
// the disjointness contract is the caller's. It exists to make the pattern
// explicit at the declaration and statically recognizable.
template <typename T>
class ShardSlots {
 public:
  explicit ShardSlots(std::vector<T>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  ShardSlots(T* data, size_t size) : data_(data), size_(size) {}

  T& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  T* data() const { return data_; }

 private:
  T* data_;
  size_t size_;
};

// Shard size for an n-element scan on `concurrency` lanes: ~4 shards per lane
// for load balancing, but never smaller than min_grain so per-shard dispatch
// overhead stays amortized (and small inputs fall back to one shard, i.e.
// the plain sequential scan).
inline size_t ReduceGrain(size_t n, size_t concurrency,
                          size_t min_grain = 64) {
  if (concurrency == 0) {
    concurrency = 1;
  }
  const size_t target_shards = concurrency * 4;
  return std::max(min_grain, (n + target_shards - 1) / target_shards);
}

class DeterministicReducer {
 public:
  // scan(begin, end) must return the lowest index in [begin, end) that
  // matches, or kReduceNotFound — i.e. it must be the sequential scan
  // restricted to a subrange. (Values in a different monotone index space are
  // fine as long as a hit in an earlier range never compares "later" than a
  // hit in a later range.)
  using ScanFn = std::function<size_t(size_t begin, size_t end)>;

  struct Best {
    size_t index = kReduceNotFound;
    double score = 0.0;
  };
  // scan(begin, end) must return the argmax over [begin, end) under
  // "strictly greater score wins, earliest index wins ties", with
  // index == kReduceNotFound when no index in the range is eligible —
  // again the sequential scan restricted to a subrange.
  using BestFn = std::function<Best(size_t begin, size_t end)>;

  // Lowest matching index in [0, n), or kReduceNotFound. Shards later than
  // the earliest known hit are skipped opportunistically (a relaxed atomic
  // bound); skipped shards can never win the ordered merge, so the early
  // exit does not affect the result.
  size_t FirstMatch(WorkerPool* pool, size_t n, size_t grain,
                    const ScanFn& scan);

  // Global argmax under the contract above. No early exit: every shard's
  // local best is computed, then merged in shard order with a strict
  // greater-than, so ties resolve to the earliest index exactly as the
  // sequential scan would.
  Best ArgBest(WorkerPool* pool, size_t n, size_t grain, const BestFn& scan);

 private:
  std::vector<size_t> shard_hit_;
  std::vector<Best> shard_best_;
};

}  // namespace omega
