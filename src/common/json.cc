#include "src/common/json.h"

#include <charconv>
#include <cmath>

namespace omega {
namespace json {

void AppendNumber(std::ostream& os, double v) {
  // JSON has no NaN/Infinity (empty-Cdf percentiles and zero-duration rates
  // produce them); emit null so the document stays parseable.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // std::to_chars: shortest round-trip form, independent of the stream's
  // locale and format flags — `os << v` under a comma-decimal locale or after
  // a caller left std::hexfloat/std::fixed set emits invalid JSON.
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // cannot fail: 32 bytes covers every shortest double
  os.write(buf, ptr - buf);
}

void AppendString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace json
}  // namespace omega
