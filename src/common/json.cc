#include "src/common/json.h"

#include <cmath>
#include <limits>

namespace omega {
namespace json {

void AppendNumber(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    const auto saved = os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    os.precision(saved);
  } else {
    os << "null";
  }
}

void AppendString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace json
}  // namespace omega
