#include "src/common/worker_pool.h"

#include <algorithm>

namespace omega {

WorkerPool::WorkerPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads - 1);
  for (size_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void WorkerPool::Drain(const std::function<void(size_t)>& fn, size_t n) {
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      return;
    }
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_ == nullptr) {
        first_error_ = std::current_exception();
      }
      // Poison the counter so no further indices are handed out. Indices
      // already claimed by other lanes still run to completion.
      next_.store(n, std::memory_order_relaxed);
      return;
    }
  }
}

void WorkerPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  Drain(fn, n);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Every worker checks in once per generation (even if it wakes after the
    // counter is exhausted), so fn stays alive until all lanes are out of it.
    done_cv_.wait(lock, [this] { return active_ == 0; });
    fn_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

void RunDisjoint(WorkerPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->concurrency() == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  pool->Run(n, fn);
}

void WorkerPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      fn = fn_;
      n = n_;
    }
    Drain(*fn, n);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace omega
