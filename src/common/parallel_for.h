// Parallel execution of independent simulation runs.
//
// Experiment sweeps run many independent simulations (one per parameter
// point); each is single-threaded and deterministic, so they parallelize
// trivially across a thread pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace omega {

// Invokes fn(i) for i in [0, n), distributing iterations over up to
// `max_threads` worker threads (hardware concurrency if 0). Blocks until all
// iterations complete. fn must be safe to call concurrently for distinct i.
//
// If fn throws, no further iterations are started, remaining workers drain,
// and the first captured exception is rethrown on the calling thread once all
// workers have joined. Iterations already in flight still run to completion.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t max_threads = 0);

// Chunked variant: invokes fn(begin, end) over disjoint ranges that cover
// [0, n), each holding at most `grain` consecutive indices (grain 0 means 1).
// Block-sharded scans use this to pay one type-erased call per chunk instead
// of one per index; with grain == 1 it degenerates to per-index dispatch with
// ParallelFor's dynamic load balancing. Chunks are claimed dynamically, so
// which thread runs which chunk is nondeterministic — fn must not care (the
// same contract as ParallelFor). Exceptions behave as in ParallelFor.
void ParallelForRanges(size_t n, size_t grain,
                       const std::function<void(size_t, size_t)>& fn,
                       size_t max_threads = 0);

}  // namespace omega

