#include "src/common/logging.h"

#include <atomic>
#include <cstring>
#include <mutex>

namespace omega {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void EmitLogLine(LogLevel level, const char* file, int line,
                 const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << "[" << LevelName(level) << " " << Basename(file) << ":" << line
              << "] " << message << "\n";
  }
  if (level == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace omega
