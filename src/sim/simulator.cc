#include "src/sim/simulator.h"

#include "src/common/logging.h"

namespace omega {

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  OMEGA_CHECK(when >= now_) << "scheduling into the past: " << when << " < " << now_;
  return queue_.Push(when, std::move(fn));
}

EventId Simulator::ScheduleAfter(Duration delay, std::function<void()> fn) {
  OMEGA_CHECK(delay >= Duration::Zero());
  return ScheduleAt(now_ + delay, std::move(fn));
}

int64_t Simulator::RunUntil(SimTime end) {
  int64_t processed = 0;
  while (!queue_.Empty()) {
    if (queue_.PeekTime() > end) {
      break;
    }
    SimTime when;
    auto fn = queue_.Pop(&when);
    now_ = when;
    fn();
    ++processed;
  }
  if (now_ < end && end != SimTime::Max()) {
    now_ = end;
  }
  return processed;
}

}  // namespace omega
