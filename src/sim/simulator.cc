#include "src/sim/simulator.h"

#include "src/common/logging.h"

namespace omega {

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  OMEGA_CHECK(when >= now_) << "scheduling into the past: " << when << " < " << now_;
  return queue_.Push(when, lane_, std::move(fn));
}

EventId Simulator::ScheduleAfter(Duration delay, std::function<void()> fn) {
  OMEGA_CHECK(delay >= Duration::Zero());
  return ScheduleAt(now_ + delay, std::move(fn));
}

int64_t Simulator::RunLoop(SimTime end, bool inclusive) {
  int64_t processed = 0;
  const uint32_t ambient = lane_;
  while (!queue_.Empty()) {
    const SimTime next = queue_.PeekTime();
    if (inclusive ? next > end : next >= end) {
      break;
    }
    SimTime when;
    uint32_t lane;
    auto fn = queue_.Pop(&when, &lane);
    now_ = when;
    lane_ = lane;  // follow-up events an event schedules stay in its stream
    fn();
    ++processed;
  }
  lane_ = ambient;
  if (inclusive && now_ < end && end != SimTime::Max()) {
    now_ = end;
  }
  return processed;
}

int64_t Simulator::RunUntil(SimTime end) { return RunLoop(end, true); }

int64_t Simulator::RunUntilBefore(SimTime end) { return RunLoop(end, false); }

void Simulator::AdvanceTo(SimTime t) {
  OMEGA_CHECK(t >= now_) << "advancing into the past: " << t << " < " << now_;
  OMEGA_CHECK(queue_.Empty() || queue_.PeekTime() >= t)
      << "AdvanceTo would jump over a pending event";
  now_ = t;
}

}  // namespace omega
