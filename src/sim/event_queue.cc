#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace omega {
namespace {

// EventIds pack (generation, slot + 1); the +1 keeps every issued id distinct
// from kInvalidEventId (0).
constexpr EventId EncodeId(uint32_t generation, uint32_t slot) {
  return (static_cast<EventId>(generation) << 32) |
         (static_cast<EventId>(slot) + 1);
}

}  // namespace

uint32_t EventQueue::AcquireSlot() {
  if (free_head_ != kNoPos) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoPos;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.callback = nullptr;
  s.heap_pos = kNoPos;
  ++s.generation;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::Reserve(size_t n) {
  slots_.reserve(n);
  heap_.reserve(n);
}

EventId EventQueue::Push(SimTime time, uint32_t lane, Callback callback) {
  const uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.callback = std::move(callback);
  const size_t pos = heap_.size();
  heap_.push_back(Entry{time, next_sequence_++, slot, lane});
  s.heap_pos = static_cast<uint32_t>(pos);
  SiftUp(pos);
  return EncodeId(s.generation, slot);
}

bool EventQueue::Cancel(EventId id) {
  const uint64_t low = id & 0xffffffffull;
  if (low == 0) {
    return false;
  }
  const auto slot = static_cast<uint32_t>(low - 1);
  if (slot >= slots_.size()) {
    return false;  // never issued
  }
  Slot& s = slots_[slot];
  if (s.generation != static_cast<uint32_t>(id >> 32) || s.heap_pos == kNoPos) {
    return false;  // already fired or already cancelled
  }
  RemoveFromHeap(s.heap_pos);
  ReleaseSlot(slot);
  return true;
}

SimTime EventQueue::PeekTime() const {
  OMEGA_CHECK(!heap_.empty());
  return heap_[0].time;
}

EventQueue::Callback EventQueue::Pop(SimTime* time_out, uint32_t* lane_out) {
  OMEGA_CHECK(!heap_.empty());
  const uint32_t slot = heap_[0].slot;
  if (time_out != nullptr) {
    *time_out = heap_[0].time;
  }
  if (lane_out != nullptr) {
    *lane_out = heap_[0].lane;
  }
  Callback cb = std::move(slots_[slot].callback);
  RemoveFromHeap(0);
  ReleaseSlot(slot);
  return cb;
}

void EventQueue::RemoveFromHeap(size_t pos) {
  const size_t last = heap_.size() - 1;
  if (pos != last) {
    PlaceEntry(pos, heap_[last]);
  }
  heap_.pop_back();
  if (pos < heap_.size()) {
    // The displaced entry may belong above (removed entry was in another
    // subtree) or below its new position. SiftUp is a no-op in the latter
    // case; if it does move the entry, the element it pulls down into `pos`
    // came from an ancestor and already bounds the whole subtree, so the
    // subsequent SiftDown is a no-op.
    SiftUp(pos);
    SiftDown(pos);
  }
}

void EventQueue::SiftUp(size_t pos) {
  const Entry moving = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) / kHeapArity;
    if (!moving.Before(heap_[parent])) {
      break;
    }
    PlaceEntry(pos, heap_[parent]);
    pos = parent;
  }
  PlaceEntry(pos, moving);
}

void EventQueue::SiftDown(size_t pos) {
  const Entry moving = heap_[pos];
  const size_t size = heap_.size();
  while (true) {
    const size_t first_child = pos * kHeapArity + 1;
    if (first_child >= size) {
      break;
    }
    const size_t end_child = std::min(first_child + kHeapArity, size);
    size_t best = first_child;
    for (size_t c = first_child + 1; c < end_child; ++c) {
      if (heap_[c].Before(heap_[best])) {
        best = c;
      }
    }
    if (!heap_[best].Before(moving)) {
      break;
    }
    PlaceEntry(pos, heap_[best]);
    pos = best;
  }
  PlaceEntry(pos, moving);
}

}  // namespace omega
