#include "src/sim/event_queue.h"

#include "src/common/logging.h"

namespace omega {

EventId EventQueue::Push(SimTime time, Callback callback) {
  const EventId id = next_id_++;
  heap_.push(Entry{time, next_sequence_++, id});
  callbacks_.emplace(id, std::move(callback));
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    // Already fired, already cancelled, or never pushed. The id must NOT be
    // added to cancelled_ here: entries in cancelled_ pair 1:1 with lazy heap
    // entries, and an unpaired id would either never be reclaimed
    // (already-fired events have no heap entry left) or be reclaimed twice
    // (double-cancel), corrupting the pending-count bookkeeping.
    return false;
  }
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::Empty() {
  SkipCancelled();
  return heap_.empty();
}

SimTime EventQueue::PeekTime() {
  SkipCancelled();
  OMEGA_CHECK(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Callback EventQueue::Pop(SimTime* time_out) {
  SkipCancelled();
  OMEGA_CHECK(!heap_.empty());
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.id);
  OMEGA_CHECK(it != callbacks_.end());
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  if (time_out != nullptr) {
    *time_out = entry.time;
  }
  return cb;
}

}  // namespace omega
