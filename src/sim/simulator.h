// Discrete-event simulator core.
//
// The simulator owns the virtual clock and the event queue. All architecture
// models (monolithic, two-level, shared-state) are built as event handlers on
// top of it. Scheduler "parallelism" is modeled logically: each scheduler has
// its own busy interval, so concurrent decision-making costs no wall-clock
// serialization yet produces exactly the interleavings the paper studies.
#pragma once

#include <functional>

#include "src/common/sim_time.h"
#include "src/sim/event_queue.h"

namespace omega {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= Now()) on the current
  // ambient lane (see SetLane).
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` after Now().
  EventId ScheduleAfter(Duration delay, std::function<void()> fn);

  // Cancels a pending event; no-op if it already fired.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Sets the ambient lane tagged onto subsequently scheduled events. At equal
  // times, lower lanes fire first; within a lane, insertion order. While an
  // event callback runs, the ambient lane is that event's lane (so an event's
  // follow-ups inherit its stream), restored when RunUntil returns. Lane 0 is
  // the default; single-stream users never call this.
  void SetLane(uint32_t lane) { lane_ = lane; }
  uint32_t lane() const { return lane_; }

  // Runs events until the queue is empty or the clock passes `end`. Events at
  // exactly `end` are executed. Returns the number of events processed.
  int64_t RunUntil(SimTime end);

  // Runs events strictly before `end`: events at exactly `end` stay pending
  // and the clock is left at the last executed event (it does NOT advance to
  // `end`). The windowed federation uses this to stop each cell at an open
  // window boundary.
  int64_t RunUntilBefore(SimTime end);

  // Runs until no events remain.
  int64_t Run() { return RunUntil(SimTime::Max()); }

  // Time of the earliest pending event, or SimTime::Max() when idle.
  SimTime NextEventTime() const {
    return queue_.Empty() ? SimTime::Max() : queue_.PeekTime();
  }

  // Moves the clock forward to `t` without running anything. Requires
  // t >= Now() and no pending event before `t` (jumping over events would
  // break causality).
  void AdvanceTo(SimTime t);

  size_t PendingEvents() const { return queue_.PendingCount(); }

 private:
  int64_t RunLoop(SimTime end, bool inclusive);

  SimTime now_ = SimTime::Zero();
  uint32_t lane_ = 0;
  EventQueue queue_;
};

// Sets the simulator's ambient lane for the current scope and restores the
// previous lane on exit. The shared-queue federation wraps each scheduling
// site with the lane of the logical stream the event belongs to.
class ScopedLane {
 public:
  ScopedLane(Simulator& sim, uint32_t lane) : sim_(sim), prev_(sim.lane()) {
    sim_.SetLane(lane);
  }
  ~ScopedLane() { sim_.SetLane(prev_); }
  ScopedLane(const ScopedLane&) = delete;
  ScopedLane& operator=(const ScopedLane&) = delete;

 private:
  Simulator& sim_;
  uint32_t prev_;
};

}  // namespace omega

