// Discrete-event simulator core.
//
// The simulator owns the virtual clock and the event queue. All architecture
// models (monolithic, two-level, shared-state) are built as event handlers on
// top of it. Scheduler "parallelism" is modeled logically: each scheduler has
// its own busy interval, so concurrent decision-making costs no wall-clock
// serialization yet produces exactly the interleavings the paper studies.
#pragma once

#include <functional>

#include "src/common/sim_time.h"
#include "src/sim/event_queue.h"

namespace omega {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= Now()).
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` after Now().
  EventId ScheduleAfter(Duration delay, std::function<void()> fn);

  // Cancels a pending event; no-op if it already fired.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs events until the queue is empty or the clock passes `end`. Events at
  // exactly `end` are executed. Returns the number of events processed.
  int64_t RunUntil(SimTime end);

  // Runs until no events remain.
  int64_t Run() { return RunUntil(SimTime::Max()); }

  size_t PendingEvents() const { return queue_.PendingCount(); }

 private:
  SimTime now_ = SimTime::Zero();
  EventQueue queue_;
};

}  // namespace omega

