// Priority queue of timestamped events with O(log n) insertion and lazy
// cancellation.
//
// Ties on the timestamp are broken by insertion order, which makes simulation
// runs fully deterministic.
#ifndef OMEGA_SRC_SIM_EVENT_QUEUE_H_
#define OMEGA_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/sim_time.h"

namespace omega {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Min-heap of events keyed by (time, sequence). Cancelled events stay in the
// heap and are skipped on pop ("lazy deletion"); the cancelled-id set is kept
// small by erasing ids as their entries surface.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Adds an event firing at `time`. Returns an id usable with Cancel().
  EventId Push(SimTime time, Callback callback);

  // Cancels a previously pushed event. Cancelling an already-fired or unknown
  // id is a no-op. Returns true if the event was pending.
  bool Cancel(EventId id);

  // True if no live (non-cancelled) events remain.
  bool Empty();

  // Time of the earliest live event. Must not be called when Empty().
  SimTime PeekTime();

  // Removes and returns the earliest live event's callback, advancing past any
  // cancelled entries. Must not be called when Empty().
  Callback Pop(SimTime* time_out);

  // Count of live (pushed, not yet fired or cancelled) events. Counts the
  // callback map rather than `heap_.size() - cancelled_.size()`: the sizes
  // only agree while every cancelled id still has its lazy heap entry, and a
  // stray cancelled id with no heap entry would make the subtraction
  // underflow to a bogus huge count.
  size_t PendingCount() const { return callbacks_.size(); }

 private:
  struct Entry {
    SimTime time;
    uint64_t sequence;
    EventId id;

    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return sequence > other.sequence;
    }
  };

  // Drops cancelled entries from the heap head.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
  uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
};

}  // namespace omega

#endif  // OMEGA_SRC_SIM_EVENT_QUEUE_H_
