// Priority queue of timestamped events with O(log n) insertion and O(log n)
// in-place cancellation.
//
// Ties on the timestamp are broken by (lane, insertion order), which makes
// simulation runs fully deterministic. Lanes exist for the windowed
// federation mode (DESIGN.md §15): the shared-queue federation tags each
// cell's events with a distinct lane so that same-microsecond events from
// different logical streams order by stream, not by global push order — the
// one total order a barrier-synchronized parallel execution can reproduce
// exactly. Single-stream users never set a lane; all their events share lane
// 0 and the order degenerates to the classic (time, insertion order).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/sim_time.h"

namespace omega {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Indexed 4-ary min-heap over a slab of event records.
//
// Every pending event owns one slot in a slab (`slots_`) recycled through a
// free list, with its callback stored inline; the heap orders (time, sequence)
// keys so same-time events fire in insertion order. Each slot tracks its heap
// position, so Cancel() removes its entry in place — no tombstones, no
// per-event hash-map traffic, and Empty()/PeekTime()/PendingCount() are plain
// const reads. An EventId encodes (slot generation, slot index); generations
// are bumped when a slot is vacated, which makes Cancel() on an already-fired,
// already-cancelled, or never-issued id a detectable no-op.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Adds an event firing at `time` on lane 0. Returns an id usable with
  // Cancel().
  EventId Push(SimTime time, Callback callback) {
    return Push(time, 0, std::move(callback));
  }

  // Adds an event firing at `time` on `lane`. At equal times, lower lanes
  // fire first; within a lane, insertion order.
  EventId Push(SimTime time, uint32_t lane, Callback callback);

  // Cancels a previously pushed event. Cancelling an already-fired or unknown
  // id is a no-op. Returns true if the event was pending.
  bool Cancel(EventId id);

  // True if no live events remain.
  bool Empty() const { return heap_.empty(); }

  // Time of the earliest live event. Must not be called when Empty().
  SimTime PeekTime() const;

  // Removes and returns the earliest live event's callback. Must not be
  // called when Empty(). `lane_out`, when non-null, receives the event's lane.
  Callback Pop(SimTime* time_out, uint32_t* lane_out = nullptr);

  // Count of live (pushed, not yet fired or cancelled) events.
  size_t PendingCount() const { return heap_.size(); }

  // Pre-sizes the slab and heap for `n` pending events.
  void Reserve(size_t n);

 private:
  static constexpr uint32_t kNoPos = ~0u;
  static constexpr uint32_t kHeapArity = 4;

  // One slab record. `heap_pos` is the slot's current index in `heap_`
  // (kNoPos while the slot sits on the free list), so cancellation can find
  // and remove its heap entry without searching.
  struct Slot {
    Callback callback;
    uint32_t heap_pos = kNoPos;
    uint32_t generation = 0;
    uint32_t next_free = kNoPos;
  };

  // One heap element. The ordering key is duplicated here (rather than read
  // through `slots_`) so sifting touches only the contiguous heap array.
  struct Entry {
    SimTime time;
    uint64_t sequence;
    uint32_t slot;
    uint32_t lane;

    bool Before(const Entry& other) const {
      if (time != other.time) {
        return time < other.time;
      }
      if (lane != other.lane) {
        return lane < other.lane;
      }
      return sequence < other.sequence;
    }
  };

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);
  // Removes the heap entry at `pos`, restoring the heap property.
  void RemoveFromHeap(size_t pos);
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  void PlaceEntry(size_t pos, const Entry& e) {
    heap_[pos] = e;
    slots_[e.slot].heap_pos = static_cast<uint32_t>(pos);
  }

  std::vector<Slot> slots_;
  std::vector<Entry> heap_;
  uint32_t free_head_ = kNoPos;
  uint64_t next_sequence_ = 0;
};

}  // namespace omega

