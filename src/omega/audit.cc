#include "src/omega/audit.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace omega {
namespace {

int64_t TotalScheduled(const SchedulerMetrics& m) {
  return m.JobsScheduled(JobType::kBatch) + m.JobsScheduled(JobType::kService);
}

double OverallMeanWait(const SchedulerMetrics& m) {
  const int64_t batch = m.JobsWaited(JobType::kBatch);
  const int64_t service = m.JobsWaited(JobType::kService);
  const int64_t total = batch + service;
  if (total == 0) {
    return 0.0;
  }
  // MeanWait is NaN for a type with no waited jobs; weight only the
  // populated types so the NaN cannot poison the blend.
  double weighted = 0.0;
  if (batch > 0) {
    weighted += m.MeanWait(JobType::kBatch) * static_cast<double>(batch);
  }
  if (service > 0) {
    weighted += m.MeanWait(JobType::kService) * static_cast<double>(service);
  }
  return weighted / static_cast<double>(total);
}

}  // namespace

SchedulerAuditEntry AuditMetrics(const std::string& name,
                                 const SchedulerMetrics& m, SimTime end,
                                 const AuditPolicy& policy) {
  SchedulerAuditEntry entry;
  entry.scheduler = name;
  entry.jobs_scheduled = TotalScheduled(m);
  entry.jobs_abandoned = m.JobsAbandonedTotal();
  entry.tasks_accepted = m.TasksAccepted();
  entry.tasks_conflicted = m.TasksConflicted();
  entry.busyness = m.Busyness(end).median;
  entry.mean_wait_secs = OverallMeanWait(m);
  entry.conflict_fraction = m.ConflictFraction(end).mean;

  if (entry.mean_wait_secs > policy.wait_slo_secs) {
    std::ostringstream os;
    os << "wait-time SLO violated: mean " << entry.mean_wait_secs << "s > "
       << policy.wait_slo_secs << "s";
    entry.findings.push_back(os.str());
  }
  if (entry.conflict_fraction > policy.max_conflict_fraction) {
    std::ostringstream os;
    os << "excessive conflict fraction: " << entry.conflict_fraction << " > "
       << policy.max_conflict_fraction;
    entry.findings.push_back(os.str());
  }
  const int64_t total_jobs = entry.jobs_scheduled + entry.jobs_abandoned;
  if (total_jobs > 0) {
    const double abandoned_fraction =
        static_cast<double>(entry.jobs_abandoned) / static_cast<double>(total_jobs);
    if (abandoned_fraction > policy.max_abandoned_fraction) {
      std::ostringstream os;
      os << "abandonment above threshold: " << abandoned_fraction * 100.0
         << "% of jobs";
      entry.findings.push_back(os.str());
    }
  }
  return entry;
}

SchedulerAuditEntry AuditScheduler(const QueueScheduler& scheduler, SimTime end,
                                   const AuditPolicy& policy) {
  return AuditMetrics(scheduler.name(), scheduler.metrics(), end, policy);
}

AuditReport AuditSchedulers(const std::vector<const QueueScheduler*>& schedulers,
                            SimTime end, const AuditPolicy& policy) {
  AuditReport report;
  report.entries.reserve(schedulers.size());
  for (const QueueScheduler* s : schedulers) {
    report.entries.push_back(AuditScheduler(*s, end, policy));
  }
  return report;
}

bool AuditReport::Compliant() const {
  for (const SchedulerAuditEntry& e : entries) {
    if (!e.findings.empty()) {
      return false;
    }
  }
  return true;
}

void AuditReport::Print(std::ostream& os) const {
  os << "post-facto policy audit (" << entries.size() << " schedulers): "
     << (Compliant() ? "COMPLIANT" : "VIOLATIONS FOUND") << "\n";
  for (const SchedulerAuditEntry& e : entries) {
    os << "  " << std::left << std::setw(16) << e.scheduler << " scheduled="
       << e.jobs_scheduled << " abandoned=" << e.jobs_abandoned
       << " busyness=" << std::setprecision(3) << e.busyness
       << " conflict_fraction=" << e.conflict_fraction
       << " mean_wait=" << e.mean_wait_secs << "s\n";
    for (const std::string& finding : e.findings) {
      os << "    !! " << finding << "\n";
    }
  }
}

}  // namespace omega
