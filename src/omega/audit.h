// Post-facto policy auditing (§3.4).
//
// Omega has no central policy-enforcement engine; cluster-wide goals are
// emergent, supported by per-scheduler configuration limits and by monitoring:
// "compliance to cluster-wide policies can be audited post facto to eliminate
// the need for checks in a scheduler's critical code path". This module is
// that audit: after (or during) a run it summarizes each scheduler's behavior
// and flags violations of the configured limits and of the shared SLO.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/scheduler/queue_scheduler.h"

namespace omega {

struct SchedulerAuditEntry {
  std::string scheduler;
  int64_t jobs_scheduled = 0;
  int64_t jobs_abandoned = 0;
  int64_t tasks_accepted = 0;
  int64_t tasks_conflicted = 0;
  double busyness = 0.0;
  double mean_wait_secs = 0.0;
  double conflict_fraction = 0.0;
  // Violations found (empty = compliant).
  std::vector<std::string> findings;
};

struct AuditReport {
  std::vector<SchedulerAuditEntry> entries;

  bool Compliant() const;
  // Renders a human-readable report table plus findings.
  void Print(std::ostream& os) const;
};

struct AuditPolicy {
  // The shared wait-time SLO (30 s in the paper's evaluation).
  double wait_slo_secs = 30.0;
  // Flag schedulers whose conflict fraction exceeds this (misbehaving or
  // misconfigured schedulers redo too much work).
  double max_conflict_fraction = 2.0;
  // Flag schedulers that abandoned more than this fraction of their jobs.
  double max_abandoned_fraction = 0.01;
};

// Audits one named metrics object against the policy at time `end`. Works for
// any scheduling component that keeps SchedulerMetrics — Omega/monolithic
// queue schedulers and Mesos frameworks alike.
SchedulerAuditEntry AuditMetrics(const std::string& name,
                                 const SchedulerMetrics& metrics, SimTime end,
                                 const AuditPolicy& policy = {});

// Audits one scheduler against the policy at time `end`.
SchedulerAuditEntry AuditScheduler(const QueueScheduler& scheduler, SimTime end,
                                   const AuditPolicy& policy = {});

// Audits a set of schedulers (e.g. all schedulers of an OmegaSimulation).
AuditReport AuditSchedulers(const std::vector<const QueueScheduler*>& schedulers,
                            SimTime end, const AuditPolicy& policy = {});

}  // namespace omega

