#include "src/omega/omega_scheduler.h"

#include "src/common/logging.h"

namespace omega {

OmegaScheduler::OmegaScheduler(ClusterSimulation& harness, SchedulerConfig config,
                               Rng rng, std::unique_ptr<TaskPlacer> placer)
    : QueueScheduler(harness, std::move(config)),
      placer_(std::move(placer)),
      rng_(rng) {}

void OmegaScheduler::BeginAttempt(const JobPtr& job) {
  const uint32_t remaining = job->TasksRemaining();
  const Duration decision = AccountAttemptStart(job, remaining);

  // Sync: the local copy of cell state is refreshed now; the scheduling
  // algorithm runs against this snapshot. Claims capture per-machine sequence
  // numbers for conflict detection. The transaction spans [now, now+decision].
  auto claims = std::make_shared<std::vector<TaskClaim>>();
  uint32_t target = remaining;
  if (ExceedsResourceLimit(*job)) {
    target = 0;
  }
  uint32_t placed_locally = 0;
  if (target > 0) {
    placed_locally =
        placer_->PlaceTasks(harness_.cell(), *job, target, rng_, claims.get());
  }

  if (placed_locally < target) {
    OMEGA_LOG(kDebug) << config_.name << ": job " << job->id << " ("
                      << JobTypeName(job->type) << ") placed " << placed_locally
                      << "/" << target << " tasks; res=" << job->task_resources
                      << " constraints=" << job->constraints.size()
                      << " attempt=" << job->scheduling_attempts;
  }

  const bool gang = config_.commit_mode == CommitMode::kAllOrNothing;
  if (gang && placed_locally < remaining) {
    // Gang semantics: do not claim a partial placement; retry the whole job
    // once the decision time has been spent (the work is still paid for).
    if (TraceRecorder* trace = harness_.trace()) {
      trace->GangAbort(harness_.sim().Now(), TraceTrack(), job->id,
                       static_cast<int64_t>(claims->size()),
                       /*at_commit=*/false);
    }
    claims->clear();
    placed_locally = 0;
  }

  harness_.sim().ScheduleAfter(decision, [this, job, claims] {
    // Commit: at most one conflicting transaction succeeds; non-conflicting
    // incremental changes are accepted (§3.4).
    std::vector<TaskClaim> rejected;
    const CommitResult result = harness_.cell().Commit(
        *claims, config_.conflict_mode, config_.commit_mode, &rejected);
    metrics_.RecordTransaction(result.accepted, result.conflicted);
    if (TraceRecorder* trace = harness_.trace()) {
      const SimTime now = harness_.sim().Now();
      if (!claims->empty()) {
        trace->TxnCommit(now, TraceTrack(), job->id, result.accepted,
                         result.conflicted);
      }
      for (const TaskClaim& claim : rejected) {
        trace->ClaimConflict(now, TraceTrack(), job->id, claim.machine,
                             claim.seqnum_at_placement,
                             harness_.cell().machine(claim.machine).seqnum);
      }
      if (config_.commit_mode == CommitMode::kAllOrNothing &&
          result.conflicted > 0) {
        trace->GangAbort(now, TraceTrack(), job->id, result.conflicted,
                         /*at_commit=*/true);
      }
    }
    if (result.accepted > 0) {
      // Accepted claims are prefix-stable only for incremental commits where
      // rejected entries were removed; reconstruct the accepted set.
      if (result.conflicted == 0) {
        StartPlacedTasks(*job, *claims);
      } else {
        StartPlacedTasks(*job, ReconstructAcceptedClaims(*claims, rejected,
                                                         result.accepted));
      }
    }
    uint32_t placed_total = static_cast<uint32_t>(result.accepted);
    if (config_.enable_preemption && placed_total < job->TasksRemaining()) {
      // Lay claim to resources other schedulers have already acquired: evict
      // strictly-lower-precedence tasks to make room (§3.4). Preemption costs
      // the victims their work, so it only runs when the normal placement
      // could not finish the job.
      std::vector<TaskClaim> preempted_claims;
      int victims = 0;
      const uint32_t still_needed = job->TasksRemaining() - placed_total;
      for (uint32_t t = 0; t < still_needed; ++t) {
        const MachineId m = harness_.PreemptAndPlace(*job, rng_, &victims);
        if (m == kInvalidMachineId) {
          break;
        }
        preempted_claims.push_back(TaskClaim{m, job->task_resources, 0});
      }
      if (!preempted_claims.empty()) {
        // Eviction-won placements are not optimistic transactions: account
        // them separately so they cannot dilute the conflict statistics.
        metrics_.RecordPreemption(static_cast<int>(preempted_claims.size()),
                                  victims);
        StartPlacedTasks(*job, preempted_claims);
        placed_total += static_cast<uint32_t>(preempted_claims.size());
      }
    }
    CompleteAttempt(job, placed_total, /*had_conflict=*/result.conflicted > 0);
  });
}

OmegaSimulation::OmegaSimulation(const ClusterConfig& config,
                                 const SimOptions& options,
                                 const SchedulerConfig& batch_config,
                                 const SchedulerConfig& service_config,
                                 uint32_t num_batch_schedulers,
                                 GeneratorOptions generator_options,
                                 PlacerFactory placer_factory)
    : ClusterSimulation(config, options, generator_options) {
  OMEGA_CHECK(num_batch_schedulers >= 1);
  if (placer_factory == nullptr) {
    placer_factory = [] { return std::make_unique<RandomizedFirstFitPlacer>(); };
  }
  for (uint32_t i = 0; i < num_batch_schedulers; ++i) {
    SchedulerConfig cfg = batch_config;
    cfg.name = batch_config.name + "-" + std::to_string(i);
    batch_schedulers_.push_back(std::make_unique<OmegaScheduler>(
        *this, cfg, rng().Fork(), placer_factory()));
  }
  service_scheduler_ = std::make_unique<OmegaScheduler>(
      *this, service_config, rng().Fork(), placer_factory());
}

void OmegaSimulation::SubmitJob(const JobPtr& job) {
  if (job->type == JobType::kService) {
    service_scheduler_->Submit(job);
    return;
  }
  // Batch scheduling work is load-balanced across the schedulers with a
  // simple hash of the job identifier (§4.3).
  const uint64_t h = job->id * 0x9e3779b97f4a7c15ULL;
  const size_t idx = static_cast<size_t>(h % batch_schedulers_.size());
  batch_schedulers_[idx]->Submit(job);
}

double OmegaSimulation::MeanBatchBusyness() const {
  double sum = 0.0;
  for (const auto& s : batch_schedulers_) {
    sum += s->metrics().Busyness(EndTime()).median;
  }
  return sum / static_cast<double>(batch_schedulers_.size());
}

double OmegaSimulation::MeanBatchConflictFraction() const {
  double sum = 0.0;
  for (const auto& s : batch_schedulers_) {
    sum += s->metrics().ConflictFraction(EndTime()).mean;
  }
  return sum / static_cast<double>(batch_schedulers_.size());
}

double OmegaSimulation::MeanBatchWait() const {
  double weighted = 0.0;
  int64_t jobs = 0;
  for (const auto& s : batch_schedulers_) {
    const int64_t n = s->metrics().JobsWaited(JobType::kBatch);
    if (n > 0) {  // MeanWait is NaN when no jobs waited; NaN * 0 poisons
      weighted += s->metrics().MeanWait(JobType::kBatch) * static_cast<double>(n);
      jobs += n;
    }
  }
  return jobs > 0 ? weighted / static_cast<double>(jobs) : 0.0;
}

int64_t OmegaSimulation::TotalJobsAbandoned() const {
  int64_t total = service_scheduler_->metrics().JobsAbandonedTotal();
  for (const auto& s : batch_schedulers_) {
    total += s->metrics().JobsAbandonedTotal();
  }
  return total;
}

}  // namespace omega
