// Shared-state (Omega) scheduling (§3.4, §4.3).
//
// Each scheduler has full visibility of the cell and competes in a
// free-for-all: it syncs a local copy of cell state, runs its placement
// algorithm against that snapshot for the decision time, then attempts an
// atomic commit. Optimistic concurrency control detects conflicts at commit;
// the scheduler then resyncs and retries the remaining tasks.
//
// Transactions are incremental by default (accept all but the conflicting
// changes); all-or-nothing commits implement gang scheduling. Conflict
// detection is fine-grained (re-check fit) or coarse-grained (per-machine
// sequence numbers), per §5.2.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/scheduler/cluster_simulation.h"
#include "src/scheduler/placement.h"
#include "src/scheduler/queue_scheduler.h"

namespace omega {

class OmegaScheduler : public QueueScheduler {
 public:
  // `placer` implements the scheduling algorithm run against the local copy
  // of cell state (randomized first fit in the lightweight simulator; the
  // constraint-aware scoring algorithm in the high-fidelity one).
  OmegaScheduler(ClusterSimulation& harness, SchedulerConfig config, Rng rng,
                 std::unique_ptr<TaskPlacer> placer);

 protected:
  void BeginAttempt(const JobPtr& job) override;

 private:
  std::unique_ptr<TaskPlacer> placer_;
  Rng rng_;
};

// Builds the placement algorithm each scheduler runs. The lightweight
// simulator installs randomized first fit; the high-fidelity simulation
// installs the constraint-aware scoring placer.
using PlacerFactory = std::function<std::unique_ptr<TaskPlacer>()>;

// Harness: N batch schedulers (load-balanced by job-id hash, §4.3) plus one
// service scheduler, all operating on the shared cell state.
class OmegaSimulation : public ClusterSimulation {
 public:
  OmegaSimulation(const ClusterConfig& config, const SimOptions& options,
                  const SchedulerConfig& batch_config,
                  const SchedulerConfig& service_config,
                  uint32_t num_batch_schedulers = 1,
                  GeneratorOptions generator_options = {},
                  PlacerFactory placer_factory = nullptr);

  void SubmitJob(const JobPtr& job) override;

  uint32_t NumBatchSchedulers() const {
    return static_cast<uint32_t>(batch_schedulers_.size());
  }
  OmegaScheduler& batch_scheduler(uint32_t i) { return *batch_schedulers_[i]; }
  OmegaScheduler& service_scheduler() { return *service_scheduler_; }

  // Aggregates across the batch schedulers (means of per-scheduler values).
  double MeanBatchBusyness() const;
  double MeanBatchConflictFraction() const;
  double MeanBatchWait() const;
  int64_t TotalJobsAbandoned() const;

 private:
  std::vector<std::unique_ptr<OmegaScheduler>> batch_schedulers_;
  std::unique_ptr<OmegaScheduler> service_scheduler_;
};

}  // namespace omega

