#include "src/exp/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
// Thread-count *reporting* only; all dispatch goes through ParallelForRanges.
#include <thread>  // omega-lint: allow(det-parallel-reduce)

#include "src/common/json.h"
#include "src/exp/experiment.h"

namespace omega {

using json::AppendNumber;
using json::AppendString;

std::string SanitizeProvenance(std::string_view value) {
  if (value.empty()) {
    return "unknown";
  }
  for (const char c : value) {
    // Reject whitespace and control characters: a git error message ("fatal:
    // not a git repository") or stray newline is not a sha or build type.
    if (static_cast<unsigned char>(c) <= ' ' ||
        static_cast<unsigned char>(c) >= 0x7f) {
      return "unknown";
    }
  }
  return std::string(value);
}

double SweepReport::TrialSecondsTotal() const {
  double total = 0.0;
  for (double s : trial_wall_seconds) {
    total += s;
  }
  return total;
}

double SweepReport::SpeedupVsSerial() const {
  if (wall_seconds <= 0.0) {
    return 0.0;
  }
  return TrialSecondsTotal() / wall_seconds;
}

void SweepReport::AddMetric(const std::string& key, double value) {
  metrics.emplace_back(key, value);
}

std::string SweepReport::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"figure\": ";
  AppendString(os, name);
  os << ",\n  \"git_sha\": ";
  AppendString(os, git_sha);
  os << ",\n  \"build_type\": ";
  AppendString(os, build_type);
  os << ",\n  \"base_seed\": " << base_seed;
  os << ",\n  \"threads\": " << threads;
  os << ",\n  \"intra_trial_threads\": " << intra_trial_threads;
  os << ",\n  \"fed_window_threads\": " << fed_window_threads;
  os << ",\n  \"trials\": " << trials;
  os << ",\n  \"wall_seconds\": ";
  AppendNumber(os, wall_seconds);
  os << ",\n  \"trial_seconds_total\": ";
  AppendNumber(os, TrialSecondsTotal());
  os << ",\n  \"speedup_vs_serial\": ";
  AppendNumber(os, SpeedupVsSerial());
  os << ",\n  \"trial_wall_seconds\": [";
  for (size_t i = 0; i < trial_wall_seconds.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    AppendNumber(os, trial_wall_seconds[i]);
  }
  os << "]";
  if (!trial_labels.empty()) {
    os << ",\n  \"trial_labels\": [";
    for (size_t i = 0; i < trial_labels.size(); ++i) {
      if (i > 0) {
        os << ", ";
      }
      AppendString(os, trial_labels[i]);
    }
    os << "]";
  }
  os << ",\n  \"metrics\": {";
  for (size_t i = 0; i < metrics.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << "\n    ";
    AppendString(os, metrics[i].first);
    os << ": ";
    AppendNumber(os, metrics[i].second);
  }
  if (!metrics.empty()) {
    os << "\n  ";
  }
  os << "}\n}\n";
  return os.str();
}

std::string SweepReport::WriteJson() const {
  std::string dir = ".";
  if (const char* env = std::getenv("OMEGA_BENCH_JSON_DIR");
      env != nullptr && env[0] != '\0') {
    dir = env;
  }
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    return std::string();
  }
  out << ToJson();
  return path;
}

SweepRunner::SweepRunner(std::string name, uint64_t base_seed,
                         size_t max_threads)
    : max_threads_(max_threads == 0 ? BenchThreads() : max_threads) {
  report_.name = std::move(name);
  report_.base_seed = base_seed;
#ifdef OMEGA_GIT_SHA
  report_.git_sha = SanitizeProvenance(OMEGA_GIT_SHA);
#endif
#ifdef OMEGA_BUILD_TYPE
  report_.build_type = SanitizeProvenance(OMEGA_BUILD_TYPE);
#endif
  // The env override is deliberate operator input (tarball builds stamping a
  // known sha), so it is taken verbatim when non-empty.
  if (const char* env = std::getenv("OMEGA_GIT_SHA");
      env != nullptr && env[0] != '\0') {
    report_.git_sha = env;
  }
  if (const char* env = std::getenv("OMEGA_BENCH_SEED"); env != nullptr) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) {
      report_.base_seed = static_cast<uint64_t>(v);
    }
  }
}

void SweepRunner::Begin(size_t num_trials) {
  report_.trials = num_trials;
  report_.trial_wall_seconds.assign(num_trials, 0.0);
  report_.trial_labels.clear();  // the bench re-labels each grid after Run
  report_.wall_seconds = 0.0;
  size_t threads = max_threads_;
  if (threads == 0) {
    // omega-lint: allow(det-parallel-reduce) — reporting, not dispatch
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  report_.threads = std::min(threads, std::max<size_t>(1, num_trials));
}

RunningStats MergeTrialStats(const std::vector<RunningStats>& per_trial) {
  RunningStats merged;
  for (const RunningStats& s : per_trial) {
    merged.Merge(s);
  }
  return merged;
}

Cdf MergeTrialCdfs(const std::vector<Cdf>& per_trial) {
  Cdf merged;
  for (const Cdf& c : per_trial) {
    merged.Merge(c);
  }
  return merged;
}

}  // namespace omega
