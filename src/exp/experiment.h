// Shared utilities for the figure/table reproduction benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/stats.h"

namespace omega {

// n log-spaced values in [lo, hi] inclusive.
std::vector<double> LogSpace(double lo, double hi, int n);

// n linearly spaced values in [lo, hi] inclusive.
std::vector<double> LinSpace(double lo, double hi, int n);

// Column-aligned table printer for bench output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Convenience for numeric rows; formats with %g-style precision.
  void AddNumericRow(const std::vector<double>& cells);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double compactly ("0.42", "1.3e+04").
std::string FormatValue(double v);

// Renders an empirical CDF as rows "x  F(x)" at `points` log-spaced probe
// values of the sample range.
void PrintCdf(std::ostream& os, const Cdf& cdf, const std::string& label,
              int points = 14, bool log_spaced = true);

// Simulation horizon used by the figure benches. The paper simulates 7 days
// (1 day for Mesos); full-length runs are expensive across sweeps, so benches
// default to a shorter window and honor OMEGA_BENCH_DAYS to reproduce the
// paper's exact durations.
Duration BenchHorizon(double default_days);

// Number of worker threads for sweep parallelism (OMEGA_BENCH_THREADS).
size_t BenchThreads();

}  // namespace omega

