#include "src/exp/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/common/logging.h"

namespace omega {

std::vector<double> LogSpace(double lo, double hi, int n) {
  OMEGA_CHECK(lo > 0.0 && hi >= lo && n >= 2);
  std::vector<double> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double frac = static_cast<double>(i) / (n - 1);
    out.push_back(lo * std::pow(hi / lo, frac));
  }
  return out;
}

std::vector<double> LinSpace(double lo, double hi, int n) {
  OMEGA_CHECK(n >= 2);
  std::vector<double> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double frac = static_cast<double>(i) / (n - 1);
    out.push_back(lo + frac * (hi - lo));
  }
  return out;
}

std::string FormatValue(double v) {
  std::ostringstream os;
  os << std::setprecision(4) << v;
  return os.str();
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  OMEGA_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) {
    row.push_back(FormatValue(c));
  }
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintCdf(std::ostream& os, const Cdf& cdf, const std::string& label,
              int points, bool log_spaced) {
  os << label << " (n=" << cdf.count() << ")\n";
  if (cdf.empty()) {
    os << "  <no samples>\n";
    return;
  }
  double lo = cdf.MinValue();
  double hi = cdf.MaxValue();
  if (log_spaced) {
    lo = std::max(lo, 1e-6);
    hi = std::max(hi, lo * 1.000001);
  }
  TablePrinter table({"value", "cdf"});
  const std::vector<double> xs =
      log_spaced ? LogSpace(lo, hi, points) : LinSpace(lo, hi, points);
  for (double x : xs) {
    table.AddNumericRow({x, cdf.FractionAtOrBelow(x)});
  }
  table.Print(os);
}

Duration BenchHorizon(double default_days) {
  const char* env = std::getenv("OMEGA_BENCH_DAYS");
  if (env != nullptr) {
    const double days = std::atof(env);
    if (days > 0.0) {
      return Duration::FromDays(days);
    }
  }
  return Duration::FromDays(default_days);
}

size_t BenchThreads() {
  const char* env = std::getenv("OMEGA_BENCH_THREADS");
  if (env != nullptr) {
    const long threads = std::atol(env);
    if (threads > 0) {
      return static_cast<size_t>(threads);
    }
  }
  return 0;  // ParallelFor default: hardware concurrency
}

}  // namespace omega
