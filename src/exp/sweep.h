// Deterministic parallel sweep engine for the figure benches.
//
// Every figure in the paper's evaluation is a sweep over independent
// simulation trials — (cluster, scheduler count, decision time, seed) tuples.
// SweepRunner shards those trials across threads with ParallelFor, gives each
// trial an RNG substream derived from (base seed, trial index) so results are
// bit-identical regardless of thread count, records per-trial wall-clock, and
// emits a machine-readable JSON summary (BENCH_<figure>.json) used to track
// the perf trajectory across PRs. See EXPERIMENTS.md ("Sweep engine").
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/deterministic_reduce.h"
#include "src/common/parallel_for.h"
#include "src/common/random.h"
#include "src/common/stats.h"

namespace omega {

// Provenance guard for BENCH_*.json: returns `value` if it is a plausible
// single token (non-empty, printable, no whitespace), else "unknown". The
// compiled-in git sha / build type pass through here so a failed configure-
// time `git rev-parse` (tarball build) can never embed an empty or error
// string in a bench report.
std::string SanitizeProvenance(std::string_view value);

// Identity of one trial in a sweep grid, handed to the trial function.
struct TrialContext {
  size_t index = 0;       // position in the grid (row-major), trial order key
  uint64_t base_seed = 0; // the sweep's base seed
  uint64_t seed = 0;      // SubstreamSeed(base_seed, index)
};

// Everything a sweep run measured, serializable as BENCH_<name>.json.
struct SweepReport {
  std::string name;                   // figure id, e.g. "fig5"
  // Provenance: which commit and build flavor produced these numbers.
  // SweepRunner fills them from $OMEGA_GIT_SHA / the build (see sweep.cc).
  std::string git_sha = "unknown";
  std::string build_type = "unknown";
  uint64_t base_seed = 0;
  size_t threads = 0;                 // worker threads actually used
  // SimOptions::intra_trial_threads the bench ran its trials with (1 =
  // sequential trials). Recorded so a scaling curve is reconstructable from
  // BENCH_*.json artifacts alone; results are bit-identical at any value.
  size_t intra_trial_threads = 1;
  // FederationOptions::window_parallelism the federation benches ran with
  // (0 = shared queue). Provenance like intra_trial_threads: a wall-clock
  // knob, never a result axis — metrics are bit-identical at any value.
  size_t fed_window_threads = 0;
  size_t trials = 0;
  double wall_seconds = 0.0;          // elapsed wall-clock for the whole sweep
  std::vector<double> trial_wall_seconds;  // per trial, trial-index order
  // Human-readable trial identities (sweep row descriptions), parallel to
  // trial_wall_seconds. Optional: emitted only when the bench filled it, and
  // then it must be exactly one label per trial.
  std::vector<std::string> trial_labels;
  // Extra scalar metrics the bench wants tracked (merged stats, etc.),
  // emitted under "metrics" in insertion order.
  std::vector<std::pair<std::string, double>> metrics;

  // Sum of per-trial wall-clock: an estimate of the serial runtime of the
  // same sweep, measured from this run.
  double TrialSecondsTotal() const;
  // TrialSecondsTotal() / wall_seconds — the measured parallel speedup.
  double SpeedupVsSerial() const;

  void AddMetric(const std::string& key, double value);

  std::string ToJson() const;
  // Writes ToJson() to <dir>/BENCH_<name>.json where <dir> is
  // $OMEGA_BENCH_JSON_DIR (default "."). Returns the path written, or an
  // empty string if the file could not be opened.
  std::string WriteJson() const;
};

// Runs a grid of independent trials in parallel, deterministically.
class SweepRunner {
 public:
  // `base_seed` roots the per-trial substreams ($OMEGA_BENCH_SEED overrides
  // it). `max_threads` 0 means BenchThreads(): $OMEGA_BENCH_THREADS, else
  // hardware concurrency.
  explicit SweepRunner(std::string name, uint64_t base_seed = 1,
                       size_t max_threads = 0);

  // Invokes fn once per trial, sharded over worker threads. Results come
  // back in trial-index order; because each trial depends only on its
  // TrialContext, they are bit-identical for any thread count. Rethrows the
  // first trial exception (see ParallelFor). Each call resets the report's
  // timing section: one SweepRunner measures one grid.
  template <typename Fn>
  auto Run(size_t num_trials, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const TrialContext&>> {
    using Result = std::invoke_result_t<Fn&, const TrialContext&>;
    static_assert(std::is_default_constructible_v<Result>,
                  "trial results are collected into a pre-sized vector");
    Begin(num_trials);
    std::vector<Result> results(num_trials);
    ShardSlots<Result> result_slots(results);
    ShardSlots<double> wall_slots(report_.trial_wall_seconds);
    const auto sweep_start = std::chrono::steady_clock::now();
    // Chunked dispatch with grain 1: trials are coarse, so the chunk loop is
    // degenerate, but routing through ParallelForRanges keeps the sweep
    // engine on the same dispatch path the micro benches characterize.
    ParallelForRanges(
        num_trials, /*grain=*/1,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            const auto trial_start = std::chrono::steady_clock::now();
            TrialContext ctx;
            ctx.index = i;
            ctx.base_seed = report_.base_seed;
            ctx.seed = SubstreamSeed(report_.base_seed, i);
            result_slots[i] = fn(static_cast<const TrialContext&>(ctx));
            wall_slots[i] =
                Elapsed(trial_start, std::chrono::steady_clock::now());
          }
        },
        max_threads_);
    report_.wall_seconds =
        Elapsed(sweep_start, std::chrono::steady_clock::now());
    return results;
  }

  const SweepReport& report() const { return report_; }
  SweepReport& report() { return report_; }

  // Convenience: report().WriteJson().
  std::string WriteJson() const { return report_.WriteJson(); }

 private:
  void Begin(size_t num_trials);
  static double Elapsed(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
    return std::chrono::duration<double>(to - from).count();
  }

  size_t max_threads_;
  SweepReport report_;
};

// Folds per-trial partial statistics in trial-index order, so the merged
// result is independent of how trials were interleaved across threads.
RunningStats MergeTrialStats(const std::vector<RunningStats>& per_trial);
Cdf MergeTrialCdfs(const std::vector<Cdf>& per_trial);

}  // namespace omega

