// Scheduling-lifecycle event tracing (observability subsystem).
//
// The paper's evaluation reports three *derived* metrics — wait time,
// busyness, conflict fraction (§4 "Metrics") — but debugging why a
// configuration conflicts or stalls requires the underlying event stream:
// which attempt hit which machine, what the machine's sequence number was at
// placement vs. commit, who preempted whom. TraceRecorder captures that
// stream with low overhead so it can stay attached to full-length runs:
//
//  - recording is a bounds-checked store into a slab-backed ring buffer
//    (no allocation on the hot path after warm-up, fixed memory ceiling);
//  - it is off by default: a simulation without a recorder attached pays one
//    null-pointer check per hook, records nothing, and is bit-identical to a
//    build without the hooks (the figure sweeps rely on this);
//  - recording never schedules events, samples RNGs, or mutates simulation
//    state, so an *attached* recorder does not perturb results either.
//
// Two exporters cover the two consumption modes: Chrome trace-event JSON
// (open in Perfetto / about:tracing; one track per scheduler, attempts as
// duration slices) and JSON-lines (one event per line, for scripts).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/machine.h"
#include "src/common/sim_time.h"

namespace omega {

// The scheduling lifecycle, one enumerator per observable transition.
enum class TraceEventType : uint8_t {
  kJobSubmit = 0,       // job arrived at the harness (track: cluster)
  kAttemptBegin,        // scheduler started a scheduling attempt
  kAttemptEnd,          // attempt finished (placed / conflicted outcome)
  kTxnCommit,           // scheduler-side transaction result (accepted/conflicted)
  kCellCommit,          // state-store-side commit (every writer, incl. Mesos)
  kClaimConflict,       // one claim rejected at commit (machine + seqnums)
  kGangAbort,           // all-or-nothing transaction discarded wholesale
  kPreemption,          // one running task evicted for a beneficiary job
  kTaskStart,           // committed task began running
  kTaskEnd,             // running task finished and freed its resources
  kMachineFailure,      // machine failed; its tasks were killed
  kMachineRepair,       // failed machine returned to service
};
inline constexpr size_t kNumTraceEventTypes = 12;

// Stable lowercase name used by both exporters ("attempt_begin", ...).
const char* TraceEventTypeName(TraceEventType type);

// One recorded event. Fixed-size POD so the ring buffer is a flat slab copy;
// the meaning of arg0/arg1 depends on the type (see TraceRecorder's typed
// record methods, the single place events are constructed).
struct TraceEvent {
  int64_t time_us = 0;
  TraceEventType type = TraceEventType::kJobSubmit;
  uint16_t track = 0;  // scheduler track; 0 is the cluster/harness track
  uint64_t job = 0;
  MachineId machine = kInvalidMachineId;
  uint64_t seqnum = 0;  // claim's seqnum_at_placement where applicable
  int64_t arg0 = 0;
  int64_t arg1 = 0;
};

// Slab-backed ring buffer of TraceEvents plus per-type totals.
//
// Capacity is fixed at construction; once exceeded, the oldest events are
// overwritten (the per-type counts keep counting, so reconciliation against
// SchedulerMetrics totals works even after wrap-around — only the retained
// window shrinks). Slabs are allocated lazily, so a recorder attached to a
// short run costs memory proportional to what it actually recorded.
class TraceRecorder {
 public:
  static constexpr size_t kSlabSize = 4096;  // events per slab

  explicit TraceRecorder(size_t capacity_events = size_t{1} << 20);

  // --- track registry (one track per scheduler; track 0 is "cluster") ---

  uint16_t RegisterTrack(const std::string& name);
  const std::vector<std::string>& track_names() const { return track_names_; }

  // --- typed record methods (the instrumentation hooks call these) ---
  //
  // Harness-level events default to track 0 ("cluster"); a multi-cell driver
  // passes each cell's own harness track so two cells' streams never
  // interleave on one Perfetto thread.

  void JobSubmit(SimTime t, uint64_t job, int job_type, int64_t num_tasks,
                 uint16_t track = 0);
  void AttemptBegin(SimTime t, uint16_t track, uint64_t job, int64_t attempt,
                    int64_t tasks_in_attempt);
  void AttemptEnd(SimTime t, uint16_t track, uint64_t job, int64_t tasks_placed,
                  bool had_conflict);
  void TxnCommit(SimTime t, uint16_t track, uint64_t job, int64_t accepted,
                 int64_t conflicted);
  void CellCommit(SimTime t, int64_t claims, int64_t accepted,
                  int64_t conflicted, uint16_t track = 0);
  void ClaimConflict(SimTime t, uint16_t track, uint64_t job, MachineId machine,
                     uint64_t seqnum_at_placement, uint64_t seqnum_at_commit);
  void GangAbort(SimTime t, uint16_t track, uint64_t job, int64_t claims_discarded,
                 bool at_commit);
  void Preemption(SimTime t, uint64_t beneficiary_job, MachineId machine,
                  int64_t victim_precedence, uint64_t victim_task_id,
                  uint16_t track = 0);
  void TaskStart(SimTime t, uint64_t job, MachineId machine,
                 uint16_t track = 0);
  void TaskEnd(SimTime t, uint64_t job, MachineId machine, uint16_t track = 0);
  void MachineFailure(SimTime t, MachineId machine, int64_t tasks_killed,
                      uint16_t track = 0);
  void MachineRepair(SimTime t, MachineId machine, uint16_t track = 0);

  // --- stream merging (windowed federation, DESIGN.md §15) ---
  //
  // The windowed federation records each cell into a private recorder and
  // rebuilds the shared-queue stream afterwards: retained events are appended
  // here in merged order, and events the private rings had already dropped
  // are folded into the wrap-proof totals so CountOf/Sum*/TotalRecorded match
  // a recorder that saw the whole stream.

  // Appends a fully built event. The caller has already remapped `e.track`
  // into this recorder's registry.
  void AppendRaw(const TraceEvent& e) { Append(e); }

  // Adds `count` events of `type` (with the given arg sums) to the totals
  // without touching the ring.
  void AbsorbCounts(TraceEventType type, int64_t count, int64_t arg0_sum,
                    int64_t arg1_sum);

  size_t capacity() const { return capacity_; }

  // --- queries ---

  // Total events ever appended (including overwritten ones).
  int64_t TotalRecorded() const { return total_; }
  // Events lost to ring wrap-around.
  int64_t Dropped() const;
  // Events currently retained in the ring.
  size_t Retained() const;
  // Appended events of `type`, wrap-proof (counts, not retained entries).
  int64_t CountOf(TraceEventType type) const {
    return counts_[static_cast<size_t>(type)];
  }
  // Sum of arg0 over appended events of `type` (e.g. total accepted tasks
  // across kTxnCommit events), wrap-proof like CountOf.
  int64_t SumArg0(TraceEventType type) const {
    return arg0_sums_[static_cast<size_t>(type)];
  }
  int64_t SumArg1(TraceEventType type) const {
    return arg1_sums_[static_cast<size_t>(type)];
  }

  // Visits retained events oldest-first.
  void ForEachRetained(const std::function<void(const TraceEvent&)>& fn) const;

  // --- exporters ---

  // Chrome trace-event JSON ({"traceEvents": [...]}); open in Perfetto or
  // chrome://tracing. One named thread per track; attempts render as B/E
  // duration slices, everything else as instant events with typed args.
  void ExportChromeTrace(std::ostream& os) const;

  // One JSON object per line, typed field names, oldest-first.
  void ExportJsonLines(std::ostream& os) const;

 private:
  void Append(const TraceEvent& e);
  const TraceEvent& At(size_t ring_index) const;

  size_t capacity_;
  int64_t total_ = 0;     // appended + absorbed (wrap-proof accounting)
  int64_t appended_ = 0;  // ring write cursor: events actually stored
  std::vector<std::unique_ptr<std::array<TraceEvent, kSlabSize>>> slabs_;
  std::array<int64_t, kNumTraceEventTypes> counts_{};
  std::array<int64_t, kNumTraceEventTypes> arg0_sums_{};
  std::array<int64_t, kNumTraceEventTypes> arg1_sums_{};
  std::vector<std::string> track_names_;
};

}  // namespace omega

