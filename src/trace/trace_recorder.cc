#include "src/trace/trace_recorder.h"

#include <algorithm>
#include <ostream>

#include "src/common/json.h"
#include "src/common/logging.h"

namespace omega {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kJobSubmit:
      return "job_submit";
    case TraceEventType::kAttemptBegin:
      return "attempt_begin";
    case TraceEventType::kAttemptEnd:
      return "attempt_end";
    case TraceEventType::kTxnCommit:
      return "txn_commit";
    case TraceEventType::kCellCommit:
      return "cell_commit";
    case TraceEventType::kClaimConflict:
      return "claim_conflict";
    case TraceEventType::kGangAbort:
      return "gang_abort";
    case TraceEventType::kPreemption:
      return "preemption";
    case TraceEventType::kTaskStart:
      return "task_start";
    case TraceEventType::kTaskEnd:
      return "task_end";
    case TraceEventType::kMachineFailure:
      return "machine_failure";
    case TraceEventType::kMachineRepair:
      return "machine_repair";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(size_t capacity_events)
    : capacity_(std::max<size_t>(capacity_events, kSlabSize)) {
  slabs_.resize((capacity_ + kSlabSize - 1) / kSlabSize);
  track_names_.push_back("cluster");
}

uint16_t TraceRecorder::RegisterTrack(const std::string& name) {
  for (size_t i = 0; i < track_names_.size(); ++i) {
    if (track_names_[i] == name) {
      return static_cast<uint16_t>(i);
    }
  }
  OMEGA_CHECK(track_names_.size() < 65536) << "track id space exhausted";
  track_names_.push_back(name);
  return static_cast<uint16_t>(track_names_.size() - 1);
}

void TraceRecorder::Append(const TraceEvent& e) {
  const size_t idx = static_cast<size_t>(appended_) % capacity_;
  auto& slab = slabs_[idx / kSlabSize];
  if (slab == nullptr) {
    slab = std::make_unique<std::array<TraceEvent, kSlabSize>>();
  }
  (*slab)[idx % kSlabSize] = e;
  ++appended_;
  ++total_;
  const auto t = static_cast<size_t>(e.type);
  ++counts_[t];
  arg0_sums_[t] += e.arg0;
  arg1_sums_[t] += e.arg1;
}

void TraceRecorder::AbsorbCounts(TraceEventType type, int64_t count,
                                 int64_t arg0_sum, int64_t arg1_sum) {
  const auto t = static_cast<size_t>(type);
  counts_[t] += count;
  arg0_sums_[t] += arg0_sum;
  arg1_sums_[t] += arg1_sum;
  total_ += count;
}

const TraceEvent& TraceRecorder::At(size_t ring_index) const {
  return (*slabs_[ring_index / kSlabSize])[ring_index % kSlabSize];
}

int64_t TraceRecorder::Dropped() const {
  return total_ - static_cast<int64_t>(Retained());
}

size_t TraceRecorder::Retained() const {
  return std::min<size_t>(static_cast<size_t>(appended_), capacity_);
}

void TraceRecorder::ForEachRetained(
    const std::function<void(const TraceEvent&)>& fn) const {
  const size_t retained = Retained();
  const size_t start =
      static_cast<size_t>(appended_ - static_cast<int64_t>(retained));
  for (size_t i = 0; i < retained; ++i) {
    fn(At((start + i) % capacity_));
  }
}

// ---------------------------------------------------------------------------
// Typed record methods. Each one is the single authority for how its event's
// generic fields are laid out; the exporters mirror the same mapping.

void TraceRecorder::JobSubmit(SimTime t, uint64_t job, int job_type,
                              int64_t num_tasks, uint16_t track) {
  Append(TraceEvent{t.micros(), TraceEventType::kJobSubmit, track, job,
                    kInvalidMachineId, 0, job_type, num_tasks});
}

void TraceRecorder::AttemptBegin(SimTime t, uint16_t track, uint64_t job,
                                 int64_t attempt, int64_t tasks_in_attempt) {
  Append(TraceEvent{t.micros(), TraceEventType::kAttemptBegin, track, job,
                    kInvalidMachineId, 0, attempt, tasks_in_attempt});
}

void TraceRecorder::AttemptEnd(SimTime t, uint16_t track, uint64_t job,
                               int64_t tasks_placed, bool had_conflict) {
  Append(TraceEvent{t.micros(), TraceEventType::kAttemptEnd, track, job,
                    kInvalidMachineId, 0, tasks_placed, had_conflict ? 1 : 0});
}

void TraceRecorder::TxnCommit(SimTime t, uint16_t track, uint64_t job,
                              int64_t accepted, int64_t conflicted) {
  Append(TraceEvent{t.micros(), TraceEventType::kTxnCommit, track, job,
                    kInvalidMachineId, 0, accepted, conflicted});
}

void TraceRecorder::CellCommit(SimTime t, int64_t claims, int64_t accepted,
                               int64_t conflicted, uint16_t track) {
  Append(TraceEvent{t.micros(), TraceEventType::kCellCommit, track, 0,
                    kInvalidMachineId, static_cast<uint64_t>(claims), accepted,
                    conflicted});
}

void TraceRecorder::ClaimConflict(SimTime t, uint16_t track, uint64_t job,
                                  MachineId machine, uint64_t seqnum_at_placement,
                                  uint64_t seqnum_at_commit) {
  Append(TraceEvent{t.micros(), TraceEventType::kClaimConflict, track, job,
                    machine, seqnum_at_placement,
                    static_cast<int64_t>(seqnum_at_commit), 0});
}

void TraceRecorder::GangAbort(SimTime t, uint16_t track, uint64_t job,
                              int64_t claims_discarded, bool at_commit) {
  Append(TraceEvent{t.micros(), TraceEventType::kGangAbort, track, job,
                    kInvalidMachineId, 0, claims_discarded, at_commit ? 1 : 0});
}

void TraceRecorder::Preemption(SimTime t, uint64_t beneficiary_job,
                               MachineId machine, int64_t victim_precedence,
                               uint64_t victim_task_id, uint16_t track) {
  Append(TraceEvent{t.micros(), TraceEventType::kPreemption, track,
                    beneficiary_job, machine, victim_task_id,
                    victim_precedence, 0});
}

void TraceRecorder::TaskStart(SimTime t, uint64_t job, MachineId machine,
                              uint16_t track) {
  Append(TraceEvent{t.micros(), TraceEventType::kTaskStart, track, job, machine,
                    0, 0, 0});
}

void TraceRecorder::TaskEnd(SimTime t, uint64_t job, MachineId machine,
                            uint16_t track) {
  Append(TraceEvent{t.micros(), TraceEventType::kTaskEnd, track, job, machine,
                    0, 0, 0});
}

void TraceRecorder::MachineFailure(SimTime t, MachineId machine,
                                   int64_t tasks_killed, uint16_t track) {
  Append(TraceEvent{t.micros(), TraceEventType::kMachineFailure, track, 0,
                    machine, 0, tasks_killed, 0});
}

void TraceRecorder::MachineRepair(SimTime t, MachineId machine,
                                  uint16_t track) {
  Append(TraceEvent{t.micros(), TraceEventType::kMachineRepair, track, 0,
                    machine, 0, 0, 0});
}

// ---------------------------------------------------------------------------
// Exporters

namespace {

// Emits the typed args of `e` as JSON object members (no surrounding braces).
// Shared by both exporters so the two formats cannot drift apart.
void AppendTypedArgs(std::ostream& os, const TraceEvent& e) {
  switch (e.type) {
    case TraceEventType::kJobSubmit:
      os << "\"job\": " << e.job << ", \"job_type\": "
         << (e.arg0 == 0 ? "\"batch\"" : "\"service\"")
         << ", \"num_tasks\": " << e.arg1;
      break;
    case TraceEventType::kAttemptBegin:
      os << "\"job\": " << e.job << ", \"attempt\": " << e.arg0
         << ", \"tasks_in_attempt\": " << e.arg1;
      break;
    case TraceEventType::kAttemptEnd:
      os << "\"job\": " << e.job << ", \"tasks_placed\": " << e.arg0
         << ", \"had_conflict\": " << (e.arg1 != 0 ? "true" : "false");
      break;
    case TraceEventType::kTxnCommit:
      os << "\"job\": " << e.job << ", \"accepted\": " << e.arg0
         << ", \"conflicted\": " << e.arg1;
      break;
    case TraceEventType::kCellCommit:
      os << "\"claims\": " << e.seqnum << ", \"accepted\": " << e.arg0
         << ", \"conflicted\": " << e.arg1;
      break;
    case TraceEventType::kClaimConflict:
      os << "\"job\": " << e.job << ", \"machine\": " << e.machine
         << ", \"seqnum_at_placement\": " << e.seqnum
         << ", \"seqnum_at_commit\": " << e.arg0;
      break;
    case TraceEventType::kGangAbort:
      os << "\"job\": " << e.job << ", \"claims_discarded\": " << e.arg0
         << ", \"at_commit\": " << (e.arg1 != 0 ? "true" : "false");
      break;
    case TraceEventType::kPreemption:
      os << "\"beneficiary_job\": " << e.job << ", \"machine\": " << e.machine
         << ", \"victim_precedence\": " << e.arg0
         << ", \"victim_task_id\": " << e.seqnum;
      break;
    case TraceEventType::kTaskStart:
    case TraceEventType::kTaskEnd:
      os << "\"job\": " << e.job << ", \"machine\": " << e.machine;
      break;
    case TraceEventType::kMachineFailure:
      os << "\"machine\": " << e.machine << ", \"tasks_killed\": " << e.arg0;
      break;
    case TraceEventType::kMachineRepair:
      os << "\"machine\": " << e.machine;
      break;
  }
}

}  // namespace

void TraceRecorder::ExportChromeTrace(std::ostream& os) const {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      os << ",\n";
    }
    first = false;
  };
  // Thread-name metadata: one named track per registered scheduler.
  for (size_t i = 0; i < track_names_.size(); ++i) {
    sep();
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << i
       << ", \"args\": {\"name\": ";
    json::AppendString(os, track_names_[i]);
    os << "}}";
  }
  ForEachRetained([&](const TraceEvent& e) {
    sep();
    os << "{\"pid\": 1, \"tid\": " << e.track << ", \"ts\": " << e.time_us;
    switch (e.type) {
      case TraceEventType::kAttemptBegin:
        os << ", \"ph\": \"B\", \"name\": \"job " << e.job << "\"";
        break;
      case TraceEventType::kAttemptEnd:
        os << ", \"ph\": \"E\", \"name\": \"job " << e.job << "\"";
        break;
      default:
        os << ", \"ph\": \"i\", \"s\": \"t\", \"name\": \""
           << TraceEventTypeName(e.type) << "\"";
        break;
    }
    os << ", \"args\": {";
    AppendTypedArgs(os, e);
    os << "}}";
  });
  os << "\n]}\n";
}

void TraceRecorder::ExportJsonLines(std::ostream& os) const {
  ForEachRetained([&](const TraceEvent& e) {
    os << "{\"ts_us\": " << e.time_us << ", \"type\": \""
       << TraceEventTypeName(e.type) << "\", \"track\": ";
    json::AppendString(os, e.track < track_names_.size()
                               ? track_names_[e.track]
                               : std::to_string(e.track));
    os << ", ";
    AppendTypedArgs(os, e);
    os << "}\n";
  });
}

}  // namespace omega
