#include "src/federation/federation.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "src/common/distributions.h"
#include "src/common/logging.h"

namespace omega {
namespace {

// Same job-id mixer the Omega harness uses to shard batch work (§4.3).
constexpr uint64_t kHashMult = 0x9e3779b97f4a7c15ULL;

// Event-lane layout on the master queue (DESIGN.md §15): federation events
// (arrivals, gossip, transfers, watchdogs) run on lane 0, cell i's events on
// lane i + 1. At equal times the comparator runs lower lanes first, which is
// exactly the order the windowed barrier discipline reproduces — master
// events against paused cells, then each cell's stream.
constexpr uint32_t kMasterLane = 0;
constexpr uint32_t CellLane(uint32_t cell) { return cell + 1; }

SimTime AddSaturating(SimTime t, Duration d) {
  if (t == SimTime::Max() || d == Duration::Max()) {
    return SimTime::Max();
  }
  return t + d;
}

double ElapsedSecs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

// Disables a cell's own arrival streams: every job in a federation enters
// through the front door.
SimOptions CellOptions(const SimOptions& options, uint64_t base_seed,
                       uint32_t cell_index) {
  SimOptions cell = options;
  cell.seed = SubstreamSeed(base_seed, cell_index);
  cell.batch_rate_multiplier = 0.0;
  cell.service_rate_multiplier = 0.0;
  return cell;
}

// Accumulated (accepted, conflicted) task claims across a cell's schedulers.
std::pair<int64_t, int64_t> CellClaimCounters(FederatedCell& cell) {
  int64_t accepted = cell.service_scheduler().metrics().TasksAccepted();
  int64_t conflicted = cell.service_scheduler().metrics().TasksConflicted();
  for (uint32_t i = 0; i < cell.NumBatchSchedulers(); ++i) {
    accepted += cell.batch_scheduler(i).metrics().TasksAccepted();
    conflicted += cell.batch_scheduler(i).metrics().TasksConflicted();
  }
  return {accepted, conflicted};
}

double ConflictFraction(int64_t accepted, int64_t conflicted) {
  const int64_t total = accepted + conflicted;
  return total > 0 ? static_cast<double>(conflicted) /
                         static_cast<double>(total)
                   : 0.0;
}

}  // namespace

FederatedCell::FederatedCell(FederationSim& fed, uint32_t index,
                             Simulator* master, const ClusterConfig& config,
                             const SimOptions& options,
                             const SchedulerConfig& batch_config,
                             const SchedulerConfig& service_config,
                             uint32_t num_batch_schedulers)
    : OmegaSimulation(config, options, batch_config, service_config,
                      num_batch_schedulers),
      fed_(fed),
      index_(index) {
  // The base constructors schedule nothing, so the repoint is still legal.
  UseSharedSimulator(master);
  SetTraceScope("cell" + std::to_string(index) + "/");
}

void FederatedCell::OnJobFullyScheduled(const JobPtr& job) {
  if (defer_hooks_) {
    outbox_.push_back({sim().Now(), /*scheduled=*/true, job});
    return;
  }
  fed_.OnCellJobScheduled(index_, job);
}

void FederatedCell::OnJobAbandoned(const JobPtr& job) {
  if (defer_hooks_) {
    outbox_.push_back({sim().Now(), /*scheduled=*/false, job});
    return;
  }
  fed_.OnCellJobAbandoned(index_, job);
}

FederationSim::FederationSim(const ClusterConfig& cell_config,
                             const SimOptions& options,
                             const SchedulerConfig& batch_config,
                             const SchedulerConfig& service_config,
                             const FederationOptions& fed_options)
    : cell_config_(cell_config),
      options_(options),
      fed_options_(fed_options),
      generator_(cell_config, GeneratorOptions{},
                 SubstreamSeed(options.seed, fed_options.num_cells)),
      arrival_rng_(SubstreamSeed(options.seed, fed_options.num_cells + 1)),
      gossip_rng_(SubstreamSeed(options.seed, fed_options.num_cells + 2)) {
  OMEGA_CHECK(fed_options_.num_cells >= 1 && fed_options_.num_cells <= 64)
      << "tried-cell bookkeeping is a 64-bit mask";
  windowed_ = fed_options_.window_parallelism >= 1 &&
              !WindowedUnsupported(fed_options_);
  if (windowed_ && fed_options_.window_parallelism > 1) {
    window_pool_ = std::make_unique<WorkerPool>(
        std::min<size_t>(fed_options_.window_parallelism,
                         fed_options_.num_cells));
  }
  cells_.reserve(fed_options_.num_cells);
  for (uint32_t i = 0; i < fed_options_.num_cells; ++i) {
    cells_.push_back(std::make_unique<FederatedCell>(
        *this, i, windowed_ ? nullptr : &sim_, cell_config_,
        CellOptions(options_, options_.seed, i), batch_config, service_config,
        fed_options_.num_batch_schedulers_per_cell));
  }
  delivered_.resize(fed_options_.num_cells);
  published_counters_.resize(fed_options_.num_cells, {0, 0});
  metrics_.routed_per_cell.resize(fed_options_.num_cells, 0);
}

bool FederationSim::WindowedUnsupported(const FederationOptions& fed_options) {
  if (fed_options.spillover != SpilloverPolicy::kNextBest) {
    return false;
  }
  // A mid-window abandonment spills at its (deferred) cell-event time T: the
  // re-route transfer lands at T + transfer_delay, which must be at or past
  // the barrier. With a zero transfer delay it would have to be delivered
  // into a cell that already advanced past T.
  if (fed_options.transfer_delay == Duration::Zero()) {
    return true;
  }
  // Spilling under live least-loaded routing reads every cell's live state at
  // the deferred abandonment's mid-window time, but the cells have advanced
  // to the barrier by then.
  if (fed_options.routing == FederationRouting::kLeastLoaded &&
      fed_options.gossip_interval == Duration::Zero()) {
    return true;
  }
  return false;
}

double FederationSim::MeanWindowWidthSecs() const {
  return windows_ > 0
             ? window_width_sum_.ToSeconds() / static_cast<double>(windows_)
             : 0.0;
}

double FederationSim::BarrierStallFraction() const {
  return window_total_secs_ > 0.0
             ? 1.0 - window_parallel_secs_ / window_total_secs_
             : 0.0;
}

void FederationSim::Run() {
  // Cell-index order fixes the initial event sequence on the master queue.
  // In shared mode each cell's events carry its lane, so same-time events
  // from different streams order by (lane, insertion) — the order the
  // windowed barriers reproduce.
  for (auto& cell : cells_) {
    ScopedLane lane(sim_, CellLane(cell->index()));
    cell->PrepareRun();
  }
  ScheduleNextArrival(JobType::kBatch);
  ScheduleNextArrival(JobType::kService);
  if (fed_options_.gossip_interval > Duration::Zero()) {
    for (uint32_t i = 0; i < num_cells(); ++i) {
      SchedulePublish(i);
    }
  }
  if (windowed_) {
    RunWindowed();
  } else {
    sim_.RunUntil(EndTime());
  }
}

void FederationSim::SetTraceRecorder(TraceRecorder* recorder) {
  if (!windowed_ || recorder == nullptr) {
    for (auto& cell : cells_) {
      cell->SetTraceRecorder(recorder);
    }
    return;
  }
  // Windowed cells append from worker lanes, so each records privately (at
  // the user recorder's capacity); MergeTraces() rebuilds the shared-queue
  // stream into the user recorder after the run.
  user_trace_ = recorder;
  cell_traces_.clear();
  master_ranges_.assign(num_cells(), {});
  for (uint32_t i = 0; i < num_cells(); ++i) {
    cell_traces_.push_back(
        std::make_unique<TraceRecorder>(recorder->capacity()));
    cells_[i]->SetTraceRecorder(cell_traces_[i].get());
  }
}

void FederationSim::AddCellTouch(SimTime t) { cell_touch_times_.insert(t); }

void FederationSim::EraseCellTouch(SimTime t) {
  auto it = cell_touch_times_.find(t);
  OMEGA_CHECK(it != cell_touch_times_.end());
  cell_touch_times_.erase(it);
}

void FederationSim::ScheduleNextArrival(JobType type) {
  const size_t stream = type == JobType::kBatch ? 0 : 1;
  next_arrival_[stream] = SimTime::Max();
  const WorkloadParams& params =
      type == JobType::kBatch ? cell_config_.batch : cell_config_.service;
  const double multiplier =
      (type == JobType::kBatch ? options_.batch_rate_multiplier
                               : options_.service_rate_multiplier) *
      static_cast<double>(num_cells());
  if (multiplier <= 0.0) {
    return;
  }
  // The fleet stream carries N cells' worth of load: the per-cell
  // interarrival mean divided by N (plus the usual rate multipliers).
  ExponentialDist interarrival(params.interarrival_mean_secs / multiplier);
  const Duration gap = Duration::FromSeconds(interarrival.Sample(arrival_rng_));
  const SimTime when = sim_.Now() + gap;
  if (when > EndTime()) {
    return;
  }
  next_arrival_[stream] = when;
  // Live least-loaded routing reads every cell's state at the arrival
  // itself, so the arrival must run at a barrier. (Otherwise only the
  // transfer it schedules touches a cell, bounded via next_arrival_.)
  const bool live_touch =
      windowed_ && fed_options_.routing == FederationRouting::kLeastLoaded &&
      fed_options_.gossip_interval == Duration::Zero();
  if (live_touch) {
    AddCellTouch(when);
  }
  sim_.ScheduleAt(when, [this, type, live_touch, when] {
    if (live_touch) {
      EraseCellTouch(when);
    }
    auto job = std::make_shared<Job>(generator_.GenerateJob(type, sim_.Now()));
    RouteNewJob(job);
    ScheduleNextArrival(type);
  });
}

CellSummary FederationSim::LiveSummary(uint32_t cell) const {
  FederatedCell& c = *cells_[cell];
  CellSummary s;
  s.cell = cell;
  const Resources available = c.cell().TotalAvailable();
  const Resources capacity = c.cell().TotalCapacity();
  s.free_cpu_fraction = capacity.cpus > 0.0 ? available.cpus / capacity.cpus : 0.0;
  s.free_mem_fraction =
      capacity.mem_gb > 0.0 ? available.mem_gb / capacity.mem_gb : 0.0;
  const auto [accepted, conflicted] = CellClaimCounters(c);
  s.conflict_fraction = ConflictFraction(accepted, conflicted);
  s.queued_jobs = static_cast<int64_t>(c.service_scheduler().QueueDepth());
  for (uint32_t i = 0; i < c.NumBatchSchedulers(); ++i) {
    s.queued_jobs += static_cast<int64_t>(c.batch_scheduler(i).QueueDepth());
  }
  s.published_at = sim_.Now();
  s.received_at = sim_.Now();
  s.valid = true;
  return s;
}

void FederationSim::SchedulePublish(uint32_t cell) {
  const SimTime next = sim_.Now() + fed_options_.gossip_interval;
  if (next > EndTime()) {
    return;
  }
  if (windowed_) {
    AddCellTouch(next);  // the publication snapshots the cell's live state
  }
  sim_.ScheduleAt(next, [this, cell, next] {
    if (windowed_) {
      EraseCellTouch(next);
    }
    PublishSummary(cell);
    SchedulePublish(cell);
  });
}

void FederationSim::PublishSummary(uint32_t cell) {
  CellSummary summary = LiveSummary(cell);
  // Rewrite the conflict fraction over the window since the previous
  // publication: routing should react to *recent* contention, not the
  // whole-run average.
  const auto [accepted, conflicted] = CellClaimCounters(*cells_[cell]);
  auto& last = published_counters_[cell];
  summary.conflict_fraction =
      ConflictFraction(accepted - last.first, conflicted - last.second);
  last = {accepted, conflicted};
  ++metrics_.summaries_published;
  if (fed_options_.gossip_delay == Duration::Max()) {
    return;  // published into the void: the front door never learns of it
  }
  Duration delay = fed_options_.gossip_delay;
  if (fed_options_.gossip_jitter > Duration::Zero()) {
    // Jitter draws from its own substream, so enabling it cannot perturb the
    // arrival process or any cell's randomness.
    delay = delay + fed_options_.gossip_jitter * gossip_rng_.NextDouble();
  }
  sim_.ScheduleAfter(delay, [this, summary]() mutable {
    summary.received_at = sim_.Now();
    metrics_.delivery_latency_secs.Add(
        (summary.received_at - summary.published_at).ToSeconds());
    ++metrics_.summaries_delivered;
    // Jittered deliveries can arrive out of order; keep the freshest.
    CellSummary& slot = delivered_[summary.cell];
    if (!slot.valid || slot.published_at <= summary.published_at) {
      slot = summary;
    }
  });
}

uint32_t FederationSim::ChooseCell(const Job& job, uint64_t tried_mask,
                                   bool* used_summary,
                                   double* staleness_secs) const {
  *used_summary = false;
  *staleness_secs = 0.0;
  if (fed_options_.routing == FederationRouting::kLeastLoaded) {
    const bool live = fed_options_.gossip_interval == Duration::Zero();
    double best_score = -1.0;
    int32_t best = -1;
    SimTime best_published;
    for (uint32_t i = 0; i < num_cells(); ++i) {
      if ((tried_mask >> i) & 1) {
        continue;
      }
      const CellSummary summary = live ? LiveSummary(i) : delivered_[i];
      if (!summary.valid) {
        continue;
      }
      const double headroom =
          std::min(summary.free_cpu_fraction, summary.free_mem_fraction);
      const double score =
          headroom /
          (1.0 + fed_options_.conflict_penalty * summary.conflict_fraction);
      // Strict > with ascending scan: ties break to the lowest cell index.
      if (score > best_score) {
        best_score = score;
        best = static_cast<int32_t>(i);
        best_published = summary.published_at;
      }
    }
    if (best >= 0) {
      *used_summary = true;
      *staleness_secs = (sim_.Now() - best_published).ToSeconds();
      return static_cast<uint32_t>(best);
    }
  }
  // Static hash, or no usable summary (e.g. gossip never delivered): spread
  // by job id over the untried cells.
  uint32_t candidates[64];
  uint32_t num_candidates = 0;
  for (uint32_t i = 0; i < num_cells(); ++i) {
    if (((tried_mask >> i) & 1) == 0) {
      candidates[num_candidates++] = i;
    }
  }
  OMEGA_CHECK(num_candidates > 0);
  return candidates[(job.id * kHashMult) % num_candidates];
}

void FederationSim::RouteNewJob(const JobPtr& job) {
  ++metrics_.jobs_routed;
  bool used_summary = false;
  double staleness = 0.0;
  const uint32_t cell = ChooseCell(*job, /*tried_mask=*/0, &used_summary,
                                   &staleness);
  if (used_summary) {
    metrics_.routing_staleness_secs.Add(staleness);
  } else {
    ++metrics_.hash_fallback_routes;
  }
  PendingJob pending;
  pending.job = job;
  pending.cell = cell;
  pending.first_submit = sim_.Now();
  auto [it, inserted] = pending_.emplace(job->id, std::move(pending));
  OMEGA_CHECK(inserted) << "duplicate job id " << job->id;
  SendToCell(it->second);
}

void FederationSim::SendToCell(PendingJob& pending) {
  ++metrics_.routed_per_cell[pending.cell];
  // A spill triggered by a synchronous admission reject runs inside a cell
  // event (on that cell's lane); the transfer is a federation event and must
  // carry the master lane in every case.
  ScopedLane lane(sim_, kMasterLane);
  const SimTime at = sim_.Now() + fed_options_.transfer_delay;
  if (windowed_) {
    AddCellTouch(at);  // the delivery injects into a paused cell
  }
  sim_.ScheduleAt(at, [this, id = pending.job->id, epoch = pending.epoch, at] {
    if (windowed_) {
      EraseCellTouch(at);
    }
    DeliverJob(id, epoch);
  });
}

void FederationSim::DeliverJob(JobId id, uint32_t epoch) {
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.epoch != epoch) {
    return;  // resolved or re-routed while in flight
  }
  PendingJob& pending = it->second;
  // The cell measures wait from its own arrival; the front door keeps the
  // original submission in first_submit.
  pending.job->submit_time = sim_.Now();
  if (fed_options_.spillover != SpilloverPolicy::kNone &&
      fed_options_.pending_timeout > Duration::Zero() &&
      fed_options_.pending_timeout != Duration::Max()) {
    const SimTime at = sim_.Now() + fed_options_.pending_timeout;
    if (windowed_) {
      AddCellTouch(at);  // the watchdog withdraws a job the cell holds
    }
    sim_.ScheduleAt(at, [this, id, epoch, at] {
      if (windowed_) {
        EraseCellTouch(at);
      }
      auto timed_out = pending_.find(id);
      if (timed_out == pending_.end() || timed_out->second.epoch != epoch) {
        return;  // scheduled, lost, or already spilled again
      }
      SpillOrLose(timed_out->second, /*from_timeout=*/true);
    });
  }
  // Copies: InjectJob may re-enter OnCellJobAbandoned synchronously
  // (admission reject), and a terminal SpillOrLose erases the pending entry
  // mid-call.
  const uint32_t cell_index = pending.cell;
  const JobPtr job = pending.job;
  FederatedCell& cell = *cells_[cell_index];
  if (!windowed_) {
    // The injected job's scheduler events belong to the cell's stream.
    ScopedLane lane(sim_, CellLane(cell_index));
    cell.InjectJob(job);
    return;
  }
  // Windowed: the delivery always lands exactly at a barrier (its time
  // bounded the window), so the paused cell can jump to the master clock.
  cell.sim().AdvanceTo(sim_.Now());
  TraceRecorder* cell_trace =
      cell_traces_.empty() ? nullptr : cell_traces_[cell_index].get();
  const int64_t before =
      cell_trace != nullptr ? cell_trace->TotalRecorded() : 0;
  cell.InjectJob(job);
  if (cell_trace != nullptr) {
    // Remember this master-context append range so the trace merge can put
    // it on the master lane in master execution order.
    const int64_t after = cell_trace->TotalRecorded();
    if (after > before) {
      master_ranges_[cell_index].push_back({before, after, master_order_++});
    }
  }
}

void FederationSim::SpillOrLose(PendingJob& pending, bool from_timeout) {
  pending.tried_mask |= uint64_t{1} << pending.cell;
  const uint64_t all_cells = num_cells() >= 64
                                 ? ~uint64_t{0}
                                 : (uint64_t{1} << num_cells()) - 1;
  const bool can_spill = fed_options_.spillover == SpilloverPolicy::kNextBest &&
                         pending.spills < fed_options_.max_spills &&
                         (pending.tried_mask & all_cells) != all_cells;
  if (!can_spill) {
    ++metrics_.jobs_lost;
    pending_.erase(pending.job->id);
    return;
  }
  // Withdraw the current incarnation: if it is still queued, the scheduler
  // drops it at the queue head; if it is mid-attempt, that attempt's placed
  // tasks land but no further retries happen (QueueScheduler checks the
  // flag in CompleteAttempt). The remaining work travels as a clone so the
  // old cell's bookkeeping on the withdrawn object stays untouched.
  pending.job->cancelled = true;
  auto clone = std::make_shared<Job>(*pending.job);
  clone->num_tasks = pending.job->TasksRemaining();
  clone->tasks_scheduled = 0;
  clone->scheduling_attempts = 0;
  clone->conflicted_attempts = 0;
  clone->first_attempt_time.reset();
  clone->abandoned = false;
  clone->cancelled = false;
  bool used_summary = false;
  double staleness = 0.0;
  const uint32_t next =
      ChooseCell(*clone, pending.tried_mask, &used_summary, &staleness);
  if (used_summary) {
    metrics_.routing_staleness_secs.Add(staleness);
  } else {
    ++metrics_.hash_fallback_routes;
  }
  pending.job = std::move(clone);
  pending.cell = next;
  ++pending.spills;
  ++pending.epoch;  // invalidates the in-flight watchdog and delivery events
  ++metrics_.spills;
  if (from_timeout) {
    ++metrics_.spill_timeouts;
  } else {
    ++metrics_.spill_rejections;
  }
  SendToCell(pending);
}

void FederationSim::OnCellJobScheduled(uint32_t cell, const JobPtr& job) {
  (void)cell;
  auto it = pending_.find(job->id);
  if (it == pending_.end() || it->second.job.get() != job.get()) {
    return;  // a withdrawn incarnation finishing late; the clone supersedes it
  }
  const double secs = (sim_.Now() - it->second.first_submit).ToSeconds();
  metrics_.time_to_scheduled_secs.Add(secs);
  if (it->second.spills > 0) {
    metrics_.spillover_latency_secs.Add(secs);
  }
  ++metrics_.jobs_fully_scheduled;
  pending_.erase(it);
}

void FederationSim::OnCellJobAbandoned(uint32_t cell, const JobPtr& job) {
  (void)cell;
  auto it = pending_.find(job->id);
  if (it == pending_.end() || it->second.job.get() != job.get()) {
    return;
  }
  SpillOrLose(it->second, /*from_timeout=*/false);
}

void FederationSim::RunWindowed() {
  const SimTime end = EndTime();
  const auto loop_start = std::chrono::steady_clock::now();
  const bool spill = fed_options_.spillover == SpilloverPolicy::kNextBest;
  const bool live = fed_options_.routing == FederationRouting::kLeastLoaded &&
                    fed_options_.gossip_interval == Duration::Zero();
  while (true) {
    // Lookahead: the window closes at the earliest master event that must
    // run against paused cells. Non-live arrivals interact only through the
    // transfers they schedule; with spillover, a deferred mid-window
    // abandonment at cell-event time T re-routes at T + transfer_delay, and
    // T is at least the cell's next pending event.
    SimTime w = end;
    if (!cell_touch_times_.empty()) {
      w = std::min(w, *cell_touch_times_.begin());
    }
    if (!live) {
      for (const SimTime t : next_arrival_) {
        w = std::min(w, AddSaturating(t, fed_options_.transfer_delay));
      }
    }
    if (spill) {
      for (auto& cell : cells_) {
        w = std::min(w, AddSaturating(cell->sim().NextEventTime(),
                                      fed_options_.transfer_delay));
      }
    }
    runnable_.clear();
    for (uint32_t i = 0; i < num_cells(); ++i) {
      cells_[i]->SetDeferHooks(true);
      if (cells_[i]->sim().NextEventTime() < w) {
        runnable_.push_back(i);
      }
    }
    const auto parallel_start = std::chrono::steady_clock::now();
    RunDisjoint(window_pool_.get(), runnable_.size(), [&](size_t k) {
      cells_[runnable_[k]]->sim().RunUntilBefore(w);
    });
    window_parallel_secs_ += ElapsedSecs(parallel_start);
    for (auto& cell : cells_) {
      cell->SetDeferHooks(false);
    }
    ++windows_;
    window_width_sum_ = window_width_sum_ + (w - sim_.Now());
    // Barrier: replay the cells' deferred cross-cell messages at their
    // mid-window times, then run every master event up to and including the
    // bound — deliveries into paused cells, watchdogs, publications.
    FlushOutboxes();
    sim_.RunUntil(w);
    if (w >= end) {
      break;
    }
  }
  // Final half-window. Master events at the horizon ran above, before any
  // cell event at the horizon — the lane order. Now the cells run their
  // events at exactly the horizon and their deferred hooks replay.
  for (auto& cell : cells_) {
    cell->SetDeferHooks(true);
  }
  runnable_.clear();
  for (uint32_t i = 0; i < num_cells(); ++i) {
    if (cells_[i]->sim().NextEventTime() <= end) {
      runnable_.push_back(i);
    }
  }
  const auto parallel_start = std::chrono::steady_clock::now();
  RunDisjoint(window_pool_.get(), runnable_.size(), [&](size_t k) {
    cells_[runnable_[k]]->sim().RunUntil(end);
  });
  window_parallel_secs_ += ElapsedSecs(parallel_start);
  for (auto& cell : cells_) {
    cell->SetDeferHooks(false);
    // Idle cells never entered the parallel section; bring every clock to
    // the horizon.
    if (cell->sim().Now() < end) {
      cell->sim().AdvanceTo(end);
    }
  }
  FlushOutboxes();
  sim_.RunUntil(end);
  window_total_secs_ += ElapsedSecs(loop_start);
  MergeTraces();
}

void FederationSim::FlushOutboxes() {
  // Merge the per-cell outboxes in (time, cell, per-cell order) and replay
  // each entry on the master queue under the producing cell's lane: the
  // lane-ordered comparator then interleaves the replay with master events
  // exactly as the shared queue interleaved the hook's enclosing cell event.
  struct Ref {
    SimTime time;
    uint32_t cell;
    size_t idx;
  };
  std::vector<Ref> refs;
  for (uint32_t i = 0; i < num_cells(); ++i) {
    const auto& box = cells_[i]->outbox();
    for (size_t k = 0; k < box.size(); ++k) {
      refs.push_back({box[k].time, i, k});
    }
  }
  if (refs.empty()) {
    return;
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.cell != b.cell) return a.cell < b.cell;
    return a.idx < b.idx;
  });
  for (const Ref& r : refs) {
    auto& entry = cells_[r.cell]->outbox()[r.idx];
    ScopedLane lane(sim_, CellLane(r.cell));
    sim_.ScheduleAt(entry.time, [this, cell = r.cell,
                                 scheduled = entry.scheduled,
                                 job = std::move(entry.job)] {
      if (scheduled) {
        OnCellJobScheduled(cell, job);
      } else {
        OnCellJobAbandoned(cell, job);
      }
    });
  }
  for (auto& cell : cells_) {
    cell->outbox().clear();
  }
}

void FederationSim::MergeTraces() {
  if (user_trace_ == nullptr) {
    return;
  }
  // Pre-resolve every (cell, private track) to a user-recorder track. Track
  // *ids* may differ from a shared-queue run (both exporters print names,
  // which is what the differentials compare); names are identical.
  std::vector<std::vector<uint16_t>> track_remap(num_cells());
  for (uint32_t i = 0; i < num_cells(); ++i) {
    for (const std::string& name : cell_traces_[i]->track_names()) {
      track_remap[i].push_back(user_trace_->RegisterTrack(name));
    }
  }
  // Each retained event keyed by (time, lane, order): master-context ranges
  // (barrier-time injections) go on lane 0 ordered by master execution
  // order; everything else keeps its cell lane and per-cell append order.
  // Sorting by that key *is* the shared-queue execution order, so appending
  // in sorted order rebuilds the shared recorder's ring byte-for-byte.
  struct MergeEv {
    TraceEvent e;
    uint32_t lane = 0;
    uint64_t order_hi = 0;
    uint64_t order_lo = 0;
  };
  std::vector<MergeEv> events;
  std::array<int64_t, kNumTraceEventTypes> retained_counts{};
  std::array<int64_t, kNumTraceEventTypes> retained_arg0{};
  std::array<int64_t, kNumTraceEventTypes> retained_arg1{};
  for (uint32_t i = 0; i < num_cells(); ++i) {
    const TraceRecorder& rec = *cell_traces_[i];
    const auto& ranges = master_ranges_[i];
    int64_t idx = rec.TotalRecorded() - static_cast<int64_t>(rec.Retained());
    size_t range_pos = 0;
    rec.ForEachRetained([&](const TraceEvent& e) {
      while (range_pos < ranges.size() && ranges[range_pos].end <= idx) {
        ++range_pos;
      }
      MergeEv m;
      m.e = e;
      m.e.track = track_remap[i][e.track];
      if (range_pos < ranges.size() && idx >= ranges[range_pos].begin) {
        m.lane = kMasterLane;
        m.order_hi = ranges[range_pos].order;
      } else {
        m.lane = CellLane(i);
        m.order_hi = 0;
      }
      m.order_lo = static_cast<uint64_t>(idx);
      events.push_back(m);
      const auto t = static_cast<size_t>(e.type);
      ++retained_counts[t];
      retained_arg0[t] += e.arg0;
      retained_arg1[t] += e.arg1;
      ++idx;
    });
  }
  std::sort(events.begin(), events.end(),
            [](const MergeEv& a, const MergeEv& b) {
              if (a.e.time_us != b.e.time_us) return a.e.time_us < b.e.time_us;
              if (a.lane != b.lane) return a.lane < b.lane;
              if (a.order_hi != b.order_hi) return a.order_hi < b.order_hi;
              return a.order_lo < b.order_lo;
            });
  for (const MergeEv& m : events) {
    user_trace_->AppendRaw(m.e);
  }
  // Events the private rings had already dropped exist only in the wrap-proof
  // totals; fold those into the user recorder. Any event in the merged
  // stream's last `capacity` is also within its cell's retained window, so
  // the ring contents above are complete and only the counts need absorbing.
  for (size_t t = 0; t < kNumTraceEventTypes; ++t) {
    int64_t count = -retained_counts[t];
    int64_t arg0 = -retained_arg0[t];
    int64_t arg1 = -retained_arg1[t];
    const auto type = static_cast<TraceEventType>(t);
    for (uint32_t i = 0; i < num_cells(); ++i) {
      count += cell_traces_[i]->CountOf(type);
      arg0 += cell_traces_[i]->SumArg0(type);
      arg1 += cell_traces_[i]->SumArg1(type);
    }
    if (count != 0 || arg0 != 0 || arg1 != 0) {
      user_trace_->AbsorbCounts(type, count, arg0, arg1);
    }
  }
}

int64_t FederationSim::JobsSubmittedTotal() const {
  int64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->JobsSubmittedTotal();
  }
  return total;
}

int64_t FederationSim::TotalJobsAbandoned() const {
  int64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->TotalJobsAbandoned();
  }
  return total;
}

double FederationSim::MeanCellCpuUtilization() const {
  double sum = 0.0;
  for (const auto& cell : cells_) {
    sum += cell->cell().CpuUtilization();
  }
  return sum / static_cast<double>(num_cells());
}

double FederationSim::CpuUtilizationSkew() const {
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& cell : cells_) {
    const double u = cell->cell().CpuUtilization();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  return hi - lo;
}

double FederationSim::CpuUtilizationStddev() const {
  RunningStats stats;
  for (const auto& cell : cells_) {
    stats.Add(cell->cell().CpuUtilization());
  }
  return stats.stddev();
}

double FederationSim::FleetConflictFraction() const {
  double sum = 0.0;
  for (const auto& cell : cells_) {
    const auto [accepted, conflicted] = CellClaimCounters(*cell);
    sum += ConflictFraction(accepted, conflicted);
  }
  return sum / static_cast<double>(num_cells());
}

}  // namespace omega
