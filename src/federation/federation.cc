#include "src/federation/federation.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/distributions.h"
#include "src/common/logging.h"

namespace omega {
namespace {

// Same job-id mixer the Omega harness uses to shard batch work (§4.3).
constexpr uint64_t kHashMult = 0x9e3779b97f4a7c15ULL;

// Disables a cell's own arrival streams: every job in a federation enters
// through the front door.
SimOptions CellOptions(const SimOptions& options, uint64_t base_seed,
                       uint32_t cell_index) {
  SimOptions cell = options;
  cell.seed = SubstreamSeed(base_seed, cell_index);
  cell.batch_rate_multiplier = 0.0;
  cell.service_rate_multiplier = 0.0;
  return cell;
}

// Accumulated (accepted, conflicted) task claims across a cell's schedulers.
std::pair<int64_t, int64_t> CellClaimCounters(FederatedCell& cell) {
  int64_t accepted = cell.service_scheduler().metrics().TasksAccepted();
  int64_t conflicted = cell.service_scheduler().metrics().TasksConflicted();
  for (uint32_t i = 0; i < cell.NumBatchSchedulers(); ++i) {
    accepted += cell.batch_scheduler(i).metrics().TasksAccepted();
    conflicted += cell.batch_scheduler(i).metrics().TasksConflicted();
  }
  return {accepted, conflicted};
}

double ConflictFraction(int64_t accepted, int64_t conflicted) {
  const int64_t total = accepted + conflicted;
  return total > 0 ? static_cast<double>(conflicted) /
                         static_cast<double>(total)
                   : 0.0;
}

}  // namespace

FederatedCell::FederatedCell(FederationSim& fed, uint32_t index,
                             Simulator* master, const ClusterConfig& config,
                             const SimOptions& options,
                             const SchedulerConfig& batch_config,
                             const SchedulerConfig& service_config,
                             uint32_t num_batch_schedulers)
    : OmegaSimulation(config, options, batch_config, service_config,
                      num_batch_schedulers),
      fed_(fed),
      index_(index) {
  // The base constructors schedule nothing, so the repoint is still legal.
  UseSharedSimulator(master);
  SetTraceScope("cell" + std::to_string(index) + "/");
}

void FederatedCell::OnJobFullyScheduled(const JobPtr& job) {
  fed_.OnCellJobScheduled(index_, job);
}

void FederatedCell::OnJobAbandoned(const JobPtr& job) {
  fed_.OnCellJobAbandoned(index_, job);
}

FederationSim::FederationSim(const ClusterConfig& cell_config,
                             const SimOptions& options,
                             const SchedulerConfig& batch_config,
                             const SchedulerConfig& service_config,
                             const FederationOptions& fed_options)
    : cell_config_(cell_config),
      options_(options),
      fed_options_(fed_options),
      generator_(cell_config, GeneratorOptions{},
                 SubstreamSeed(options.seed, fed_options.num_cells)),
      arrival_rng_(SubstreamSeed(options.seed, fed_options.num_cells + 1)),
      gossip_rng_(SubstreamSeed(options.seed, fed_options.num_cells + 2)) {
  OMEGA_CHECK(fed_options_.num_cells >= 1 && fed_options_.num_cells <= 64)
      << "tried-cell bookkeeping is a 64-bit mask";
  cells_.reserve(fed_options_.num_cells);
  for (uint32_t i = 0; i < fed_options_.num_cells; ++i) {
    cells_.push_back(std::make_unique<FederatedCell>(
        *this, i, &sim_, cell_config_,
        CellOptions(options_, options_.seed, i), batch_config, service_config,
        fed_options_.num_batch_schedulers_per_cell));
  }
  delivered_.resize(fed_options_.num_cells);
  published_counters_.resize(fed_options_.num_cells, {0, 0});
  metrics_.routed_per_cell.resize(fed_options_.num_cells, 0);
}

void FederationSim::Run() {
  // Cell-index order fixes the initial event sequence on the master queue.
  for (auto& cell : cells_) {
    cell->PrepareRun();
  }
  ScheduleNextArrival(JobType::kBatch);
  ScheduleNextArrival(JobType::kService);
  if (fed_options_.gossip_interval > Duration::Zero()) {
    for (uint32_t i = 0; i < num_cells(); ++i) {
      SchedulePublish(i);
    }
  }
  sim_.RunUntil(EndTime());
}

void FederationSim::SetTraceRecorder(TraceRecorder* recorder) {
  for (auto& cell : cells_) {
    cell->SetTraceRecorder(recorder);
  }
}

void FederationSim::ScheduleNextArrival(JobType type) {
  const WorkloadParams& params =
      type == JobType::kBatch ? cell_config_.batch : cell_config_.service;
  const double multiplier =
      (type == JobType::kBatch ? options_.batch_rate_multiplier
                               : options_.service_rate_multiplier) *
      static_cast<double>(num_cells());
  if (multiplier <= 0.0) {
    return;
  }
  // The fleet stream carries N cells' worth of load: the per-cell
  // interarrival mean divided by N (plus the usual rate multipliers).
  ExponentialDist interarrival(params.interarrival_mean_secs / multiplier);
  const Duration gap = Duration::FromSeconds(interarrival.Sample(arrival_rng_));
  const SimTime when = sim_.Now() + gap;
  if (when > EndTime()) {
    return;
  }
  sim_.ScheduleAt(when, [this, type] {
    auto job = std::make_shared<Job>(generator_.GenerateJob(type, sim_.Now()));
    RouteNewJob(job);
    ScheduleNextArrival(type);
  });
}

CellSummary FederationSim::LiveSummary(uint32_t cell) const {
  FederatedCell& c = *cells_[cell];
  CellSummary s;
  s.cell = cell;
  const Resources available = c.cell().TotalAvailable();
  const Resources capacity = c.cell().TotalCapacity();
  s.free_cpu_fraction = capacity.cpus > 0.0 ? available.cpus / capacity.cpus : 0.0;
  s.free_mem_fraction =
      capacity.mem_gb > 0.0 ? available.mem_gb / capacity.mem_gb : 0.0;
  const auto [accepted, conflicted] = CellClaimCounters(c);
  s.conflict_fraction = ConflictFraction(accepted, conflicted);
  s.queued_jobs = static_cast<int64_t>(c.service_scheduler().QueueDepth());
  for (uint32_t i = 0; i < c.NumBatchSchedulers(); ++i) {
    s.queued_jobs += static_cast<int64_t>(c.batch_scheduler(i).QueueDepth());
  }
  s.published_at = sim_.Now();
  s.received_at = sim_.Now();
  s.valid = true;
  return s;
}

void FederationSim::SchedulePublish(uint32_t cell) {
  const SimTime next = sim_.Now() + fed_options_.gossip_interval;
  if (next > EndTime()) {
    return;
  }
  sim_.ScheduleAt(next, [this, cell] {
    PublishSummary(cell);
    SchedulePublish(cell);
  });
}

void FederationSim::PublishSummary(uint32_t cell) {
  CellSummary summary = LiveSummary(cell);
  // Rewrite the conflict fraction over the window since the previous
  // publication: routing should react to *recent* contention, not the
  // whole-run average.
  const auto [accepted, conflicted] = CellClaimCounters(*cells_[cell]);
  auto& last = published_counters_[cell];
  summary.conflict_fraction =
      ConflictFraction(accepted - last.first, conflicted - last.second);
  last = {accepted, conflicted};
  ++metrics_.summaries_published;
  if (fed_options_.gossip_delay == Duration::Max()) {
    return;  // published into the void: the front door never learns of it
  }
  Duration delay = fed_options_.gossip_delay;
  if (fed_options_.gossip_jitter > Duration::Zero()) {
    // Jitter draws from its own substream, so enabling it cannot perturb the
    // arrival process or any cell's randomness.
    delay = delay + fed_options_.gossip_jitter * gossip_rng_.NextDouble();
  }
  sim_.ScheduleAfter(delay, [this, summary]() mutable {
    summary.received_at = sim_.Now();
    metrics_.delivery_latency_secs.Add(
        (summary.received_at - summary.published_at).ToSeconds());
    ++metrics_.summaries_delivered;
    // Jittered deliveries can arrive out of order; keep the freshest.
    CellSummary& slot = delivered_[summary.cell];
    if (!slot.valid || slot.published_at <= summary.published_at) {
      slot = summary;
    }
  });
}

uint32_t FederationSim::ChooseCell(const Job& job, uint64_t tried_mask,
                                   bool* used_summary,
                                   double* staleness_secs) const {
  *used_summary = false;
  *staleness_secs = 0.0;
  if (fed_options_.routing == FederationRouting::kLeastLoaded) {
    const bool live = fed_options_.gossip_interval == Duration::Zero();
    double best_score = -1.0;
    int32_t best = -1;
    SimTime best_published;
    for (uint32_t i = 0; i < num_cells(); ++i) {
      if ((tried_mask >> i) & 1) {
        continue;
      }
      const CellSummary summary = live ? LiveSummary(i) : delivered_[i];
      if (!summary.valid) {
        continue;
      }
      const double headroom =
          std::min(summary.free_cpu_fraction, summary.free_mem_fraction);
      const double score =
          headroom /
          (1.0 + fed_options_.conflict_penalty * summary.conflict_fraction);
      // Strict > with ascending scan: ties break to the lowest cell index.
      if (score > best_score) {
        best_score = score;
        best = static_cast<int32_t>(i);
        best_published = summary.published_at;
      }
    }
    if (best >= 0) {
      *used_summary = true;
      *staleness_secs = (sim_.Now() - best_published).ToSeconds();
      return static_cast<uint32_t>(best);
    }
  }
  // Static hash, or no usable summary (e.g. gossip never delivered): spread
  // by job id over the untried cells.
  uint32_t candidates[64];
  uint32_t num_candidates = 0;
  for (uint32_t i = 0; i < num_cells(); ++i) {
    if (((tried_mask >> i) & 1) == 0) {
      candidates[num_candidates++] = i;
    }
  }
  OMEGA_CHECK(num_candidates > 0);
  return candidates[(job.id * kHashMult) % num_candidates];
}

void FederationSim::RouteNewJob(const JobPtr& job) {
  ++metrics_.jobs_routed;
  bool used_summary = false;
  double staleness = 0.0;
  const uint32_t cell = ChooseCell(*job, /*tried_mask=*/0, &used_summary,
                                   &staleness);
  if (used_summary) {
    metrics_.routing_staleness_secs.Add(staleness);
  } else {
    ++metrics_.hash_fallback_routes;
  }
  PendingJob pending;
  pending.job = job;
  pending.cell = cell;
  pending.first_submit = sim_.Now();
  auto [it, inserted] = pending_.emplace(job->id, std::move(pending));
  OMEGA_CHECK(inserted) << "duplicate job id " << job->id;
  SendToCell(it->second);
}

void FederationSim::SendToCell(PendingJob& pending) {
  ++metrics_.routed_per_cell[pending.cell];
  sim_.ScheduleAfter(
      fed_options_.transfer_delay,
      [this, id = pending.job->id, epoch = pending.epoch] {
        DeliverJob(id, epoch);
      });
}

void FederationSim::DeliverJob(JobId id, uint32_t epoch) {
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.epoch != epoch) {
    return;  // resolved or re-routed while in flight
  }
  PendingJob& pending = it->second;
  // The cell measures wait from its own arrival; the front door keeps the
  // original submission in first_submit.
  pending.job->submit_time = sim_.Now();
  if (fed_options_.spillover != SpilloverPolicy::kNone &&
      fed_options_.pending_timeout > Duration::Zero() &&
      fed_options_.pending_timeout != Duration::Max()) {
    sim_.ScheduleAfter(fed_options_.pending_timeout, [this, id, epoch] {
      auto timed_out = pending_.find(id);
      if (timed_out == pending_.end() || timed_out->second.epoch != epoch) {
        return;  // scheduled, lost, or already spilled again
      }
      SpillOrLose(timed_out->second, /*from_timeout=*/true);
    });
  }
  // May re-enter OnCellJobAbandoned synchronously (admission reject), which
  // is why the pending entry is fully initialized before this call.
  cells_[pending.cell]->InjectJob(pending.job);
}

void FederationSim::SpillOrLose(PendingJob& pending, bool from_timeout) {
  pending.tried_mask |= uint64_t{1} << pending.cell;
  const uint64_t all_cells = num_cells() >= 64
                                 ? ~uint64_t{0}
                                 : (uint64_t{1} << num_cells()) - 1;
  const bool can_spill = fed_options_.spillover == SpilloverPolicy::kNextBest &&
                         pending.spills < fed_options_.max_spills &&
                         (pending.tried_mask & all_cells) != all_cells;
  if (!can_spill) {
    ++metrics_.jobs_lost;
    pending_.erase(pending.job->id);
    return;
  }
  // Withdraw the current incarnation: if it is still queued, the scheduler
  // drops it at the queue head; if it is mid-attempt, that attempt's placed
  // tasks land but no further retries happen (QueueScheduler checks the
  // flag in CompleteAttempt). The remaining work travels as a clone so the
  // old cell's bookkeeping on the withdrawn object stays untouched.
  pending.job->cancelled = true;
  auto clone = std::make_shared<Job>(*pending.job);
  clone->num_tasks = pending.job->TasksRemaining();
  clone->tasks_scheduled = 0;
  clone->scheduling_attempts = 0;
  clone->conflicted_attempts = 0;
  clone->first_attempt_time.reset();
  clone->abandoned = false;
  clone->cancelled = false;
  bool used_summary = false;
  double staleness = 0.0;
  const uint32_t next =
      ChooseCell(*clone, pending.tried_mask, &used_summary, &staleness);
  if (used_summary) {
    metrics_.routing_staleness_secs.Add(staleness);
  } else {
    ++metrics_.hash_fallback_routes;
  }
  pending.job = std::move(clone);
  pending.cell = next;
  ++pending.spills;
  ++pending.epoch;  // invalidates the in-flight watchdog and delivery events
  ++metrics_.spills;
  if (from_timeout) {
    ++metrics_.spill_timeouts;
  } else {
    ++metrics_.spill_rejections;
  }
  SendToCell(pending);
}

void FederationSim::OnCellJobScheduled(uint32_t cell, const JobPtr& job) {
  (void)cell;
  auto it = pending_.find(job->id);
  if (it == pending_.end() || it->second.job.get() != job.get()) {
    return;  // a withdrawn incarnation finishing late; the clone supersedes it
  }
  const double secs = (sim_.Now() - it->second.first_submit).ToSeconds();
  metrics_.time_to_scheduled_secs.Add(secs);
  if (it->second.spills > 0) {
    metrics_.spillover_latency_secs.Add(secs);
  }
  ++metrics_.jobs_fully_scheduled;
  pending_.erase(it);
}

void FederationSim::OnCellJobAbandoned(uint32_t cell, const JobPtr& job) {
  (void)cell;
  auto it = pending_.find(job->id);
  if (it == pending_.end() || it->second.job.get() != job.get()) {
    return;
  }
  SpillOrLose(it->second, /*from_timeout=*/false);
}

int64_t FederationSim::JobsSubmittedTotal() const {
  int64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->JobsSubmittedTotal();
  }
  return total;
}

int64_t FederationSim::TotalJobsAbandoned() const {
  int64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->TotalJobsAbandoned();
  }
  return total;
}

double FederationSim::MeanCellCpuUtilization() const {
  double sum = 0.0;
  for (const auto& cell : cells_) {
    sum += cell->cell().CpuUtilization();
  }
  return sum / static_cast<double>(num_cells());
}

double FederationSim::CpuUtilizationSkew() const {
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& cell : cells_) {
    const double u = cell->cell().CpuUtilization();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  return hi - lo;
}

double FederationSim::CpuUtilizationStddev() const {
  RunningStats stats;
  for (const auto& cell : cells_) {
    stats.Add(cell->cell().CpuUtilization());
  }
  return stats.stddev();
}

double FederationSim::FleetConflictFraction() const {
  double sum = 0.0;
  for (const auto& cell : cells_) {
    const auto [accepted, conflicted] = CellClaimCounters(*cell);
    sum += ConflictFraction(accepted, conflicted);
  }
  return sum / static_cast<double>(num_cells());
}

}  // namespace omega
