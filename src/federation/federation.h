// Multi-cell federation with eventually-consistent shared state.
//
// The paper's shared-state argument is intra-cell: schedulers race over one
// cell's state with optimistic concurrency. This layer lifts the same pattern
// one level up, to a fleet of N independent Omega cells behind a front-door
// submitter. The front door routes each arriving job using *stale* per-cell
// summaries (free capacity, recent conflict rate, queue depth) that the cells
// publish by periodic gossip with a configurable delivery delay and jitter;
// on rejection or timeout inside a cell, the job is withdrawn and spilled to
// the next-best cell, paying an inter-cell transfer cost. Gossip publication,
// gossip delivery, job transfer, and the pending-timeout watchdog are all
// first-class events on one master discrete-event queue shared by every cell
// (ClusterSimulation::UseSharedSimulator), so the N-cell interleaving is a
// single deterministic event order: results are bit-identical for any sweep
// thread count and any intra_trial_threads value. See DESIGN.md §13.
//
// FederationOptions::window_parallelism switches to the conservative
// time-window parallel mode (DESIGN.md §15): each cell keeps its own event
// queue and all cells advance concurrently on a resident WorkerPool in
// lock-step windows bounded by the earliest cross-cell interaction (gossip
// publication, job transfer, watchdog firing, live-routing read). At each
// barrier, the cells' deferred cross-cell messages are merged in
// (time, cell-index, per-cell order) and replayed on the master queue, whose
// lane-ordered comparator makes the replay reproduce the shared-queue
// interleaving exactly — every counter, trace byte, and metric is bitwise
// identical to the shared path at any window thread count.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/common/worker_pool.h"
#include "src/omega/omega_scheduler.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_recorder.h"

namespace omega {

// How the front door picks a cell for a job.
enum class FederationRouting : uint8_t {
  // Highest score among the cells the job has not tried yet, where
  //   score = min(free_cpu, free_mem) / (1 + conflict_penalty * conflicts)
  // computed from the latest *delivered* summary (or the live state when
  // gossip_interval is zero). Ties break to the lowest cell index; cells with
  // no delivered summary yet fall back to the static hash below.
  kLeastLoaded,
  // Job-id hash over the untried cells: ignores summaries entirely. This is
  // the static-partitioning baseline — a fleet of N cells that never share
  // state.
  kStaticHash,
};

// What happens when a cell rejects a job (abandonment / admission reject) or
// sits on it past the pending timeout.
enum class SpilloverPolicy : uint8_t {
  kNone,      // the job is lost (counted in FederationMetrics::jobs_lost)
  kNextBest,  // withdraw and re-route to the best untried cell
};

struct FederationOptions {
  uint32_t num_cells = 4;  // 1..64 (the tried-cell set is a 64-bit mask)

  FederationRouting routing = FederationRouting::kLeastLoaded;
  SpilloverPolicy spillover = SpilloverPolicy::kNextBest;

  // Each cell publishes a summary every gossip_interval; the publication
  // becomes visible to the front door gossip_delay (plus a uniform jitter in
  // [0, gossip_jitter)) later. Zero interval disables gossip and gives the
  // front door *live* summaries — the fresh-state limit. Duration::Max()
  // delay means published-but-never-delivered — the no-shared-knowledge
  // limit, which makes kLeastLoaded degrade exactly to the static hash.
  Duration gossip_interval = Duration::FromSeconds(15);
  Duration gossip_delay = Duration::FromSeconds(1);
  Duration gossip_jitter = Duration::Zero();

  // Inter-cell transfer cost: every routed job (front door -> cell, and
  // spilled cell -> cell) arrives this much after the routing decision.
  Duration transfer_delay = Duration::FromMillis(50);

  // A job that has not fully scheduled within pending_timeout of arriving at
  // its cell is withdrawn and spilled (kNextBest only). Duration::Max()
  // disables the watchdog; rejections still spill.
  Duration pending_timeout = Duration::FromMinutes(10);
  // Maximum cell-to-cell hops per job (on top of the initial placement).
  uint32_t max_spills = 3;

  // Weight of the advertised conflict fraction in the routing score.
  double conflict_penalty = 4.0;

  uint32_t num_batch_schedulers_per_cell = 1;

  // 0 = shared-queue mode (every cell on one master event queue). >= 1 =
  // conservative time-window parallel mode with that many threads (1 runs the
  // windowed machinery sequentially — useful for differential testing).
  // Results are bitwise identical between the two modes and across thread
  // counts. Two configurations cannot honor the windowed discipline and fall
  // back to the shared queue (reported via windowed_active()): spillover with
  // a zero transfer delay, and spillover combined with live (gossip-free)
  // least-loaded routing — both would need a mid-window cell interaction.
  uint32_t window_parallelism = 0;
};

// One cell's gossiped self-description. `published_at` is when the cell
// snapshotted its state; `received_at` when the front door learned of it —
// the difference is the staleness the routing decision acts on.
struct CellSummary {
  uint32_t cell = 0;
  double free_cpu_fraction = 0.0;
  double free_mem_fraction = 0.0;
  // Conflicted / (accepted + conflicted) task claims in the window since the
  // cell's previous publication (cumulative for live summaries).
  double conflict_fraction = 0.0;
  int64_t queued_jobs = 0;
  SimTime published_at;
  SimTime received_at;
  bool valid = false;
};

// Front-door and gossip accounting. All counters advance in master-queue
// event order, so they are bit-identical across thread counts.
struct FederationMetrics {
  int64_t jobs_routed = 0;           // front-door arrivals
  int64_t spills = 0;                // cell-to-cell re-routes
  int64_t spill_timeouts = 0;        //   ...triggered by the pending watchdog
  int64_t spill_rejections = 0;      //   ...triggered by abandonment/reject
  int64_t jobs_fully_scheduled = 0;  // reached FullyScheduled in some cell
  int64_t jobs_lost = 0;             // rejected with no spill budget left
  int64_t summaries_published = 0;
  int64_t summaries_delivered = 0;
  int64_t hash_fallback_routes = 0;  // decisions made with no usable summary
  // Gossip propagation delay (received_at - published_at), per delivery.
  RunningStats delivery_latency_secs;
  // Age of the chosen cell's summary at each summary-based routing decision.
  RunningStats routing_staleness_secs;
  // Submission to FullyScheduled, across cells and spills; the spillover
  // subset covers only jobs that hopped at least once.
  Cdf time_to_scheduled_secs;
  Cdf spillover_latency_secs;
  std::vector<int64_t> routed_per_cell;  // deliveries, including spills
};

class FederationSim;

// One member cell: a full OmegaSimulation (N batch schedulers + service
// scheduler racing over the cell's shared state) whose events run on the
// federation's master queue and whose per-job terminal transitions are
// reported back to the front door for spillover.
class FederatedCell final : public OmegaSimulation {
 public:
  // A null `master` keeps the cell's own event queue (windowed mode).
  FederatedCell(FederationSim& fed, uint32_t index, Simulator* master,
                const ClusterConfig& config, const SimOptions& options,
                const SchedulerConfig& batch_config,
                const SchedulerConfig& service_config,
                uint32_t num_batch_schedulers);

  void OnJobFullyScheduled(const JobPtr& job) override;
  void OnJobAbandoned(const JobPtr& job) override;

  uint32_t index() const { return index_; }

  // One cross-cell message produced inside a window: a job reached a terminal
  // per-cell state mid-window, and the front-door reaction is deferred to the
  // next barrier so cells never touch federation state from worker threads.
  struct DeferredHook {
    SimTime time;
    bool scheduled = false;  // true = fully scheduled, false = abandoned
    JobPtr job;
  };

  // While deferring (set around each parallel window), the two hooks above
  // append to the outbox instead of calling into the federation. The outbox
  // is owned by this cell and only ever touched by the lane running it, or by
  // the barrier code between windows.
  void SetDeferHooks(bool defer) { defer_hooks_ = defer; }
  std::vector<DeferredHook>& outbox() { return outbox_; }

 private:
  FederationSim& fed_;
  uint32_t index_;
  bool defer_hooks_ = false;
  std::vector<DeferredHook> outbox_;
};

// The federation harness: N cells, one master event queue, the front-door
// router, and the gossip machinery.
//
// Determinism: cell i draws its workload-independent randomness from
// substream i of the base seed; the fleet arrival stream, the arrival
// sampler, and gossip jitter use substreams N, N+1, and N+2. Cells are
// prepared in index order on the master queue, so the full event interleaving
// is a pure function of (options, fed_options, seed).
class FederationSim {
 public:
  FederationSim(const ClusterConfig& cell_config, const SimOptions& options,
                const SchedulerConfig& batch_config,
                const SchedulerConfig& service_config,
                const FederationOptions& fed_options);

  // Prepares every cell on the master queue, starts the fleet arrival stream
  // and gossip, and runs to the horizon.
  void Run();

  // Attaches one recorder to every cell (tracks are namespaced "cell<i>/...").
  // Call before Run().
  void SetTraceRecorder(TraceRecorder* recorder);

  uint32_t num_cells() const { return static_cast<uint32_t>(cells_.size()); }
  FederatedCell& cell(uint32_t i) { return *cells_[i]; }
  const FederatedCell& cell(uint32_t i) const { return *cells_[i]; }
  Simulator& sim() { return sim_; }
  const FederationOptions& fed_options() const { return fed_options_; }
  const SimOptions& options() const { return options_; }
  const FederationMetrics& metrics() const { return metrics_; }
  SimTime EndTime() const { return SimTime::Zero() + options_.horizon; }

  // True when window_parallelism was requested AND the configuration supports
  // the windowed discipline (see FederationOptions::window_parallelism).
  bool windowed_active() const { return windowed_; }
  // Configurations the windowed mode cannot honor (it falls back to the
  // shared queue, which is bit-identical anyway).
  static bool WindowedUnsupported(const FederationOptions& fed_options);

  // --- windowed-mode accounting (zero when running the shared queue) ---

  // Barriers executed (== lock-step windows, including the final horizon
  // window).
  int64_t WindowCount() const { return windows_; }
  // Mean window width in simulated seconds.
  double MeanWindowWidthSecs() const;
  // 1 - (wall time inside the parallel cell sections / wall time of the whole
  // windowed loop): the serial fraction spent at barriers, i.e. the speedup
  // ceiling. Wall-clock derived, so it is observability only — never part of
  // a golden or a fingerprint.
  double BarrierStallFraction() const;

  // The summary the front door would compute from the cell's state right now
  // (what gossip snapshots at publication; what routing uses when
  // gossip_interval is zero). Conflict fraction is cumulative here.
  CellSummary LiveSummary(uint32_t cell) const;
  // The latest gossip delivery for the cell (valid == false before the first
  // one arrives).
  const CellSummary& DeliveredSummary(uint32_t cell) const {
    return delivered_[cell];
  }

  // --- fleet-level aggregates (after Run()) ---

  int64_t JobsSubmittedTotal() const;  // sum over cells (spills recount)
  int64_t TotalJobsAbandoned() const;  // sum over cells' scheduler metrics
  double MeanCellCpuUtilization() const;
  double CpuUtilizationSkew() const;  // max - min across cells
  double CpuUtilizationStddev() const;
  // Mean over cells of the cumulative task-claim conflict fraction.
  double FleetConflictFraction() const;

  // --- callbacks from FederatedCell (not for external use) ---
  void OnCellJobScheduled(uint32_t cell, const JobPtr& job);
  void OnCellJobAbandoned(uint32_t cell, const JobPtr& job);

 private:
  // One in-flight job's front-door bookkeeping, alive from routing until it
  // fully schedules or is lost.
  struct PendingJob {
    JobPtr job;              // current incarnation (spills re-issue a clone)
    uint32_t cell = 0;       // where that incarnation was sent
    uint32_t spills = 0;
    uint64_t tried_mask = 0;  // cells that already rejected/timed out
    uint32_t epoch = 0;       // bumped per spill; stale timer events no-op
    SimTime first_submit;     // original front-door arrival
  };

  // The windowed event loop: advance cells in parallel between barriers
  // bounded by the earliest cross-cell interaction, replaying deferred
  // cross-cell messages on the master queue at each barrier (DESIGN.md §15).
  void RunWindowed();
  // Schedules every cell's deferred hooks onto the master queue in
  // (time, cell-index, per-cell order), each on the producing cell's lane so
  // the replay interleaves with master events exactly as the shared queue
  // would, then clears the outboxes.
  void FlushOutboxes();
  // Merges the per-cell trace streams into the user recorder in shared-queue
  // event order (windowed mode records each cell privately).
  void MergeTraces();
  // Registers/erases a master event that must run against paused cells: the
  // earliest such time bounds the next window.
  void AddCellTouch(SimTime t);
  void EraseCellTouch(SimTime t);

  void ScheduleNextArrival(JobType type);
  void RouteNewJob(const JobPtr& job);
  // Best untried cell per the routing policy. Sets *used_summary and
  // *staleness_secs when a gossiped/live summary drove the decision.
  uint32_t ChooseCell(const Job& job, uint64_t tried_mask, bool* used_summary,
                      double* staleness_secs) const;
  // Transfer-delay hop: delivers the pending job's current incarnation to its
  // cell, arming the pending-timeout watchdog.
  void SendToCell(PendingJob& pending);
  void DeliverJob(JobId id, uint32_t epoch);
  // Withdraws the current incarnation and re-routes a clone of its remaining
  // work, or counts the job lost if policy/budget/candidates forbid it.
  void SpillOrLose(PendingJob& pending, bool from_timeout);
  void SchedulePublish(uint32_t cell);
  void PublishSummary(uint32_t cell);

  ClusterConfig cell_config_;
  SimOptions options_;
  FederationOptions fed_options_;

  Simulator sim_;  // master queue; must outlive the cells below
  std::vector<std::unique_ptr<FederatedCell>> cells_;
  WorkloadGenerator generator_;  // fleet arrival stream (substream N)
  Rng arrival_rng_;              // interarrival gaps (substream N+1)
  Rng gossip_rng_;               // gossip jitter only (substream N+2), so
                                 // arrivals are independent of gossip config

  std::vector<CellSummary> delivered_;
  // Per-cell (accepted, conflicted) totals at the previous publication, for
  // the windowed conflict fraction.
  std::vector<std::pair<int64_t, int64_t>> published_counters_;

  FederationMetrics metrics_;
  // Lookup only — iteration order never observed (det-unordered-iter,
  // DESIGN.md §9).
  std::unordered_map<JobId, PendingJob> pending_;

  // --- windowed mode (unused when windowed_ is false) ---

  bool windowed_ = false;
  std::unique_ptr<WorkerPool> window_pool_;  // null when window_parallelism<=1
  // Times of pending master events that read or write cell state (transfers,
  // watchdogs, gossip publications, live-routing arrivals); the minimum
  // bounds the next window so every such event runs exactly at a barrier.
  std::multiset<SimTime> cell_touch_times_;
  // Next pending front-door arrival per job type (Max when the stream has
  // stopped). In non-live routing an arrival only touches a cell through the
  // transfer it schedules, so the window bound is arrival + transfer_delay.
  std::array<SimTime, 2> next_arrival_{SimTime::Max(), SimTime::Max()};
  std::vector<uint32_t> runnable_;  // scratch: cells with work this window

  int64_t windows_ = 0;
  Duration window_width_sum_ = Duration::Zero();
  double window_parallel_secs_ = 0.0;
  double window_total_secs_ = 0.0;

  // Windowed tracing: each cell records privately; MergeTraces() rebuilds the
  // shared-queue stream. Appends made from master context (barrier-time job
  // injections) are remembered as [begin, end) index ranges tagged with a
  // master-side order, so the merge can put them on the master lane.
  TraceRecorder* user_trace_ = nullptr;
  std::vector<std::unique_ptr<TraceRecorder>> cell_traces_;
  struct MasterRange {
    int64_t begin = 0;  // global append indices into the cell's stream
    int64_t end = 0;
    uint64_t order = 0;  // master execution order across all cells
  };
  std::vector<std::vector<MasterRange>> master_ranges_;
  uint64_t master_order_ = 0;
};

}  // namespace omega
