// Registry of running tasks, enabling preemption (§3.4).
//
// Omega schedulers may lay claim to resources that another scheduler has
// already acquired, provided they have the appropriate priority ("complete
// freedom to lay claim to any available cluster resources ... even ones that
// another scheduler has already acquired"). Preempting a task requires knowing
// which tasks run where; this registry tracks them when preemption is enabled
// (the simulations leave it off by default, like the paper's high-fidelity
// simulator, because it makes little difference and costs memory).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cluster/machine.h"
#include "src/cluster/resources.h"

namespace omega {

struct RunningTask {
  uint64_t task_id = 0;
  MachineId machine = kInvalidMachineId;
  Resources resources;
  // Precedence: the common scale for the relative importance of work all
  // schedulers must agree on (§3.4). Higher preempts lower.
  int32_t precedence = 0;
  // Opaque handle the harness uses to cancel the task's end event.
  uint64_t end_event = 0;
};

class TaskRegistry {
 public:
  // Registers a running task; returns its id.
  uint64_t Add(MachineId machine, const Resources& resources, int32_t precedence,
               uint64_t end_event);

  // Removes a task (normal completion). Returns false if unknown.
  bool Remove(uint64_t task_id);

  // Records the end-event handle once the caller has scheduled it.
  void SetEndEvent(uint64_t task_id, uint64_t end_event);

  // Total resources on `machine` held by tasks with precedence strictly below
  // `precedence` (the preemptible pool).
  Resources PreemptibleOn(MachineId machine, int32_t precedence) const;

  // Selects victims on `machine` with precedence strictly below `precedence`
  // whose combined resources cover `needed`, lowest precedence first. Returns
  // an empty vector if the preemptible pool cannot cover the need. Does not
  // mutate the registry; the caller evicts via Remove().
  std::vector<RunningTask> SelectVictims(MachineId machine, int32_t precedence,
                                         const Resources& needed) const;

  size_t NumRunning() const { return tasks_.size(); }
  size_t NumRunningOn(MachineId machine) const;

  // Snapshot of the tasks running on `machine` (machine failures kill them).
  std::vector<RunningTask> TasksOn(MachineId machine) const;

 private:
  std::unordered_map<uint64_t, RunningTask> tasks_;
  std::unordered_map<MachineId, std::vector<uint64_t>> by_machine_;
  uint64_t next_id_ = 1;
};

}  // namespace omega

