// Registry of running tasks, enabling preemption (§3.4).
//
// Omega schedulers may lay claim to resources that another scheduler has
// already acquired, provided they have the appropriate priority ("complete
// freedom to lay claim to any available cluster resources ... even ones that
// another scheduler has already acquired"). Preempting a task requires knowing
// which tasks run where; this registry tracks them when preemption is enabled
// (the simulations leave it off by default, like the paper's high-fidelity
// simulator, because it makes little difference and costs memory).
//
// Storage is a slab of task slots with an explicit free list plus a dense
// per-machine index of slot positions, so the hot preemption- and
// failure-path queries (PreemptibleOn, SelectVictims, TasksOn) are
// O(tasks on the machine) with no hashing, and Remove is O(1) via a
// position backpointer. Task ids stay small sequential integers (they appear
// in preemption trace records), resolved through one id->slot hash lookup.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cluster/machine.h"
#include "src/cluster/resources.h"

namespace omega {

struct RunningTask {
  uint64_t task_id = 0;
  MachineId machine = kInvalidMachineId;
  Resources resources;
  // Precedence: the common scale for the relative importance of work all
  // schedulers must agree on (§3.4). Higher preempts lower.
  int32_t precedence = 0;
  // Opaque handle the harness uses to cancel the task's end event. Zero for
  // cohort members, whose end event is shared (see `cohort`).
  uint64_t end_event = 0;
  // Cohort membership (DESIGN.md §10): non-zero when the task's end is
  // batched into a shared cohort event; evicting it must go through
  // CohortStore::RemoveMember instead of cancelling `end_event`.
  uint64_t cohort = 0;
};

class TaskRegistry {
 public:
  // Registers a running task; returns its id.
  uint64_t Add(MachineId machine, const Resources& resources, int32_t precedence,
               uint64_t end_event, uint64_t cohort = 0);

  // Removes a task (normal completion). Returns false if unknown.
  bool Remove(uint64_t task_id);

  // Records the end-event handle once the caller has scheduled it.
  void SetEndEvent(uint64_t task_id, uint64_t end_event);

  // Total resources on `machine` held by tasks with precedence strictly below
  // `precedence` (the preemptible pool).
  Resources PreemptibleOn(MachineId machine, int32_t precedence) const;

  // Selects victims on `machine` with precedence strictly below `precedence`
  // whose combined resources cover `needed`, lowest precedence first. Returns
  // an empty vector if the preemptible pool cannot cover the need. Does not
  // mutate the registry; the caller evicts via Remove().
  std::vector<RunningTask> SelectVictims(MachineId machine, int32_t precedence,
                                         const Resources& needed) const;

  size_t NumRunning() const { return num_running_; }
  size_t NumRunningOn(MachineId machine) const;

  // Snapshot of the tasks running on `machine` (machine failures kill them).
  std::vector<RunningTask> TasksOn(MachineId machine) const;

 private:
  static constexpr uint32_t kNoSlot = ~0u;

  struct Slot {
    RunningTask task;
    // Position of this slot in by_machine_[task.machine] while live; makes
    // Remove's swap-remove O(1) instead of a linear scan.
    uint32_t pos_on_machine = 0;
    uint32_t next_free = kNoSlot;
    bool live = false;
  };

  // Slot of a live task id, or kNoSlot.
  uint32_t SlotOf(uint64_t task_id) const;

  std::vector<Slot> slots_;
  std::unordered_map<uint64_t, uint32_t> slot_of_;
  // Per machine, the slots of the tasks running there (resized on demand).
  // List order evolves exactly like the previous implementation: append on
  // Add, swap-with-back on Remove — SelectVictims' sort is not stable, so the
  // candidate order feeds observable victim choice.
  std::vector<std::vector<uint32_t>> by_machine_;
  uint32_t free_head_ = kNoSlot;
  uint64_t next_id_ = 1;
  size_t num_running_ = 0;
};

}  // namespace omega
