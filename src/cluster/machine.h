// A single machine in a cell.
#pragma once

#include <cstdint>
#include <vector>

#include "src/cluster/resources.h"

namespace omega {

using MachineId = uint32_t;
inline constexpr MachineId kInvalidMachineId = ~0u;

struct Machine {
  MachineId id = kInvalidMachineId;
  Resources capacity;
  Resources allocated;

  // Bumped on every allocation or free; coarse-grained conflict detection
  // (§5.2) compares this against the value captured at placement time.
  uint64_t seqnum = 0;

  // Failure-domain index (rack); the high-fidelity placement algorithm spreads
  // a job's tasks across failure domains.
  int32_t failure_domain = 0;

  // Attribute value per attribute key; task placement constraints (§5) are
  // predicates over these.
  std::vector<int32_t> attributes;

  Resources Available() const { return capacity - allocated; }
};

}  // namespace omega

