// Multi-dimensional resource quantities (CPU cores and RAM).
//
// The paper's clusters schedule over two resource dimensions; all comparisons
// are componentwise with a small epsilon so that repeated allocate/free cycles
// do not accumulate floating-point drift into spurious "does not fit" results.
#pragma once

#include <algorithm>
#include <ostream>

namespace omega {

inline constexpr double kResourceEpsilon = 1e-9;

struct Resources {
  double cpus = 0.0;
  double mem_gb = 0.0;

  static constexpr Resources Zero() { return Resources{0.0, 0.0}; }

  constexpr Resources operator+(const Resources& other) const {
    return Resources{cpus + other.cpus, mem_gb + other.mem_gb};
  }
  constexpr Resources operator-(const Resources& other) const {
    return Resources{cpus - other.cpus, mem_gb - other.mem_gb};
  }
  constexpr Resources operator*(double k) const {
    return Resources{cpus * k, mem_gb * k};
  }
  Resources& operator+=(const Resources& other) {
    cpus += other.cpus;
    mem_gb += other.mem_gb;
    return *this;
  }
  Resources& operator-=(const Resources& other) {
    cpus -= other.cpus;
    mem_gb -= other.mem_gb;
    return *this;
  }

  bool operator==(const Resources&) const = default;

  // True if this request fits within `available` (componentwise, tolerant).
  constexpr bool FitsIn(const Resources& available) const {
    return cpus <= available.cpus + kResourceEpsilon &&
           mem_gb <= available.mem_gb + kResourceEpsilon;
  }

  constexpr bool IsZero() const {
    return cpus <= kResourceEpsilon && mem_gb <= kResourceEpsilon;
  }

  // True if any component is negative beyond tolerance.
  constexpr bool IsNegative() const {
    return cpus < -kResourceEpsilon || mem_gb < -kResourceEpsilon;
  }

  // Componentwise max with zero; used when returning leftover offer slices.
  Resources ClampNonNegative() const {
    return Resources{std::max(0.0, cpus), std::max(0.0, mem_gb)};
  }

  // Dominant share of this quantity relative to `total` (DRF, §3.3 / [11]).
  double DominantShare(const Resources& total) const {
    const double cpu_share = total.cpus > 0.0 ? cpus / total.cpus : 0.0;
    const double mem_share = total.mem_gb > 0.0 ? mem_gb / total.mem_gb : 0.0;
    return std::max(cpu_share, mem_share);
  }
};

inline std::ostream& operator<<(std::ostream& os, const Resources& r) {
  return os << "{cpus=" << r.cpus << ", mem_gb=" << r.mem_gb << "}";
}

}  // namespace omega

