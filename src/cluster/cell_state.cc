#include "src/cluster/cell_state.h"

#include <algorithm>
#include <cmath>

#include "src/common/deterministic_reduce.h"
#include "src/common/logging.h"

namespace omega {

CellState::CellState(uint32_t num_machines, const Resources& machine_capacity,
                     FullnessPolicy fullness, double headroom_fraction,
                     uint32_t machines_per_domain)
    : CellState(std::vector<Resources>(num_machines, machine_capacity), fullness,
                headroom_fraction, machines_per_domain) {}

CellState::CellState(std::vector<Resources> machine_capacities,
                     FullnessPolicy fullness, double headroom_fraction,
                     uint32_t machines_per_domain)
    : fullness_(fullness), headroom_fraction_(headroom_fraction) {
  OMEGA_CHECK(!machine_capacities.empty());
  OMEGA_CHECK(machines_per_domain > 0);
  OMEGA_CHECK(headroom_fraction >= 0.0 && headroom_fraction < 1.0);
  machines_.resize(machine_capacities.size());
  total_allocated_ = Resources::Zero();
  for (uint32_t i = 0; i < machine_capacities.size(); ++i) {
    machines_[i].id = i;
    machines_[i].capacity = machine_capacities[i];
    machines_[i].failure_domain = static_cast<int32_t>(i / machines_per_domain);
    total_capacity_ += machine_capacities[i];
  }
  InitSoA();
  const size_t num_blocks = (machines_.size() + kBlockSize - 1) / kBlockSize;
  block_max_cpu_.resize(num_blocks);
  block_max_mem_.resize(num_blocks);
  block_dirty_.assign(num_blocks, 0);
  for (size_t b = 0; b < num_blocks; ++b) {
    RecomputeBlock(b);
  }
  const size_t num_supers = (num_blocks + kSuperSize - 1) / kSuperSize;
  super_max_cpu_.resize(num_supers);
  super_max_mem_.resize(num_supers);
  super_dirty_.assign(num_supers, 0);
  for (size_t s = 0; s < num_supers; ++s) {
    RecomputeSuper(s);
  }
}

void CellState::InitSoA() {
  const size_t n = machines_.size();
  soa_alloc_cpu_.assign(n, 0.0);
  soa_alloc_mem_.assign(n, 0.0);
  soa_fit_cpu_.resize(n);
  soa_fit_mem_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Precompute the fit limit so the scan predicate is a pure compare:
    // `alloc + request <= usable + epsilon` is componentwise exactly the
    // FitsIn test CanFit evaluates (with zero pending, x + 0.0 == x bitwise
    // for the values that occur here).
    const Resources usable = UsableCapacity(static_cast<MachineId>(i));
    soa_fit_cpu_[i] = usable.cpus + kResourceEpsilon;
    soa_fit_mem_[i] = usable.mem_gb + kResourceEpsilon;
  }
}

void CellState::RecomputeBlock(size_t block) const {
  const size_t begin = block * kBlockSize;
  const size_t end = std::min(begin + kBlockSize, machines_.size());
  Resources max_avail = Resources::Zero();
  for (size_t m = begin; m < end; ++m) {
    const Resources avail = UsableAvail(static_cast<MachineId>(m));
    max_avail.cpus = std::max(max_avail.cpus, avail.cpus);
    max_avail.mem_gb = std::max(max_avail.mem_gb, avail.mem_gb);
  }
  block_max_cpu_[block] = max_avail.cpus;
  block_max_mem_[block] = max_avail.mem_gb;
  block_dirty_[block] = 0;
}

void CellState::RecomputeSuper(size_t super) const {
  const size_t begin = super * kSuperSize;
  const size_t end = std::min(begin + kSuperSize, block_max_cpu_.size());
  double max_cpu = 0.0;
  double max_mem = 0.0;
  for (size_t b = begin; b < end; ++b) {
    if (block_dirty_[b] != 0) {
      RecomputeBlock(b);
    }
    max_cpu = std::max(max_cpu, block_max_cpu_[b]);
    max_mem = std::max(max_mem, block_max_mem_[b]);
  }
  super_max_cpu_[super] = max_cpu;
  super_max_mem_[super] = max_mem;
  super_dirty_[super] = 0;
}

void CellState::BlockAfterShrink(MachineId id) {
  // A shrink can only lower the maxima, so the stored values stay sound
  // (stale-high) upper bounds; just mark both levels stale and let the next
  // summary consult re-summarize them. Two byte stores keep the allocation
  // fast path free of summary-array traffic.
  const size_t block = id / kBlockSize;
  block_dirty_[block] = 1;
  super_dirty_[block / kSuperSize] = 1;
}

void CellState::BlockAfterGrow(MachineId id) {
  // Raising the maxima keeps a clean summary exact and a dirty summary's
  // upper bound sound; either way it is correct (and branch-free) — at both
  // levels.
  const size_t block = id / kBlockSize;
  const Resources avail = UsableAvail(id);
  block_max_cpu_[block] = std::max(block_max_cpu_[block], avail.cpus);
  block_max_mem_[block] = std::max(block_max_mem_[block], avail.mem_gb);
  const size_t super = block / kSuperSize;
  super_max_cpu_[super] = std::max(super_max_cpu_[super], avail.cpus);
  super_max_mem_[super] = std::max(super_max_mem_[super], avail.mem_gb);
}

MachineId CellState::ScanFit(MachineId from, MachineId to,
                             const Resources& request) const {
  const double* __restrict acpu = soa_alloc_cpu_.data();
  const double* __restrict amem = soa_alloc_mem_.data();
  const double* __restrict fcpu = soa_fit_cpu_.data();
  const double* __restrict fmem = soa_fit_mem_.data();
  const double rc = request.cpus;
  const double rm = request.mem_gb;
  // Branchless 8-wide chunks first: an early-exit loop defeats
  // auto-vectorization, so accumulate a chunk-level "any machine fits" mask
  // and only drop to the scalar rescan once a chunk reports a hit. The
  // predicate is componentwise exactly CanFit's FitsIn test (see InitSoA).
  constexpr uint32_t kChunk = 8;
  uint32_t i = from;
  for (; i + kChunk <= to; i += kChunk) {
    uint32_t any = 0;
    for (uint32_t k = 0; k < kChunk; ++k) {
      any += static_cast<uint32_t>(acpu[i + k] + rc <= fcpu[i + k]) &
             static_cast<uint32_t>(amem[i + k] + rm <= fmem[i + k]);
    }
    if (any != 0) {
      break;
    }
  }
  for (; i < to; ++i) {
    if (acpu[i] + rc <= fcpu[i] && amem[i] + rm <= fmem[i]) {
      return i;
    }
  }
  return kInvalidMachineId;
}

void CellState::SetIntraTrialParallelism(uint32_t threads) {
  if (threads == 1) {
    pool_.reset();
    return;
  }
  pool_ = std::make_shared<WorkerPool>(threads);
}

void CellState::RefreshSummaries() const {
  // Recomputing a dirty superblock refreshes its dirty constituent blocks
  // too, and a block shrink always marks its superblock (BlockAfterShrink),
  // so the superblock loop covers everything; the block loop is a safety net
  // for the (currently impossible) dirty-block/clean-super combination.
  for (size_t s = 0; s < super_dirty_.size(); ++s) {
    if (super_dirty_[s] != 0) {
      RecomputeSuper(s);
    }
  }
  for (size_t b = 0; b < block_dirty_.size(); ++b) {
    if (block_dirty_[b] != 0) {
      RecomputeBlock(b);
    }
  }
}

MachineId CellState::FindFirstFitNoRefresh(MachineId begin, MachineId end,
                                           const Resources& request) const {
  // FindFirstFit with the refresh-on-consult prunes replaced by reads of the
  // stored summary values. A dirty summary is stale-high (a sound upper
  // bound), so the prune never skips a feasible machine — it only prunes
  // less. No mutable member is written, so concurrent calls are safe.
  const auto num = static_cast<MachineId>(machines_.size());
  MachineId id = begin;
  const MachineId limit = std::min(end, num);
  constexpr uint32_t kSuperMachines = kBlockSize * kSuperSize;
  while (id < limit) {
    const size_t super = id / kSuperMachines;
    if (!(request.cpus <= super_max_cpu_[super] + kResourceEpsilon &&
          request.mem_gb <= super_max_mem_[super] + kResourceEpsilon)) {
      id = (id / kSuperMachines + 1) * kSuperMachines;
      continue;
    }
    const size_t block = id / kBlockSize;
    if (!(request.cpus <= block_max_cpu_[block] + kResourceEpsilon &&
          request.mem_gb <= block_max_mem_[block] + kResourceEpsilon)) {
      id = NextBlockStart(id);
      continue;
    }
    const MachineId block_end =
        std::min(limit, static_cast<MachineId>(NextBlockStart(id)));
    const MachineId hit = ScanFit(id, block_end, request);
    if (hit != kInvalidMachineId) {
      return hit;
    }
    id = block_end;
  }
  return kInvalidMachineId;
}

MachineId CellState::FindFirstFit(MachineId begin, MachineId end,
                                  const Resources& request) const {
  const auto num = static_cast<MachineId>(machines_.size());
  MachineId id = begin;
  const MachineId limit = std::min(end, num);
  constexpr uint32_t kSuperMachines = kBlockSize * kSuperSize;
  while (id < limit) {
    // Prune a whole superblock, then a whole block, before touching machines.
    // Both prunes are conservative (stale-high summaries are refreshed before
    // the compare), so no feasible machine is ever skipped.
    if (!SuperblockMayFit(id, request)) {
      id = (id / kSuperMachines + 1) * kSuperMachines;
      continue;
    }
    if (!BlockMayFit(id, request)) {
      id = NextBlockStart(id);
      continue;
    }
    const MachineId block_end =
        std::min(limit, static_cast<MachineId>(NextBlockStart(id)));
    const MachineId hit = ScanFit(id, block_end, request);
    if (hit != kInvalidMachineId) {
      return hit;
    }
    id = block_end;
  }
  return kInvalidMachineId;
}

Resources CellState::UsableCapacity(MachineId id) const {
  const Machine& m = machines_[id];
  if (fullness_ == FullnessPolicy::kExact) {
    return m.capacity;
  }
  return m.capacity * (1.0 - headroom_fraction_);
}

bool CellState::CanFit(MachineId id, const Resources& request) const {
  return CanFitWithPending(id, request, Resources::Zero());
}

bool CellState::CanFitWithPending(MachineId id, const Resources& request,
                                  const Resources& extra) const {
  const Machine& m = machines_[id];
  const Resources used = m.allocated + extra + request;
  return used.FitsIn(UsableCapacity(id));
}

void CellState::Allocate(MachineId id, const Resources& request_ref) {
  // Copy first: callers may pass a reference into this very machine (e.g.
  // Free(m, cell.machine(m).allocated)), which the updates below would alias.
  const Resources request = request_ref;
  Machine& m = machines_[id];
  OMEGA_CHECK((m.allocated + request).FitsIn(m.capacity))
      << "overcommit on machine " << id << ": allocated=" << m.allocated
      << " request=" << request << " capacity=" << m.capacity;
  const size_t old_bucket = HasAvailabilityIndex() ? BucketFor(id) : 0;
  m.allocated += request;
  ++m.seqnum;
  total_allocated_ += request;
  SyncSoA(id);
  BlockAfterShrink(id);
  if (HasAvailabilityIndex()) {
    IndexUpdate(id, old_bucket);
  }
}

void CellState::Free(MachineId id, const Resources& request_ref) {
  const Resources request = request_ref;  // see Allocate: aliasing hazard
  Machine& m = machines_[id];
  const size_t old_bucket = HasAvailabilityIndex() ? BucketFor(id) : 0;
  m.allocated -= request;
  OMEGA_CHECK(!m.allocated.IsNegative())
      << "negative allocation on machine " << id << " after freeing " << request;
  m.allocated = m.allocated.ClampNonNegative();
  ++m.seqnum;
  total_allocated_ -= request;
  total_allocated_ = total_allocated_.ClampNonNegative();
  SyncSoA(id);
  BlockAfterGrow(id);
  if (HasAvailabilityIndex()) {
    IndexUpdate(id, old_bucket);
  }
}

void CellState::AllocateBatch(MachineId id, const Resources& per_task,
                              uint32_t count) {
  if (count == 0) {
    return;
  }
  if (HasAvailabilityIndex()) {
    // Bucket transitions are order-sensitive (swap-remove permutes bucket
    // lists, and VisitByAvailability exposes that order), so replay the exact
    // per-task sequence instead of batching.
    for (uint32_t i = 0; i < count; ++i) {
      Allocate(id, per_task);
    }
    return;
  }
  const Resources request = per_task;  // see Allocate: aliasing hazard
  Machine& m = machines_[id];
  // Replay the per-task additions (FP addition is not associative, and the
  // per-task path is the reference), but check capacity once at the end —
  // sound because allocation only grows across the batch — and fold the
  // seqnum and block-summary maintenance into one step each.
  for (uint32_t i = 0; i < count; ++i) {
    m.allocated += request;
    total_allocated_ += request;
  }
  OMEGA_CHECK(m.allocated.FitsIn(m.capacity))
      << "overcommit on machine " << id << ": allocated=" << m.allocated
      << " batch=" << request << " x" << count << " capacity=" << m.capacity;
  m.seqnum += count;
  SyncSoA(id);
  BlockAfterShrink(id);
}

void CellState::FreeBatch(MachineId id, const Resources& per_task,
                          uint32_t count) {
  if (count == 0) {
    return;
  }
  if (HasAvailabilityIndex()) {
    for (uint32_t i = 0; i < count; ++i) {  // see AllocateBatch
      Free(id, per_task);
    }
    return;
  }
  const Resources request = per_task;  // see Allocate: aliasing hazard
  Machine& m = machines_[id];
  // The per-task clamps are part of the reference arithmetic (a clamp midway
  // through the batch changes the values every later step sees), so they
  // stay in the loop; only seqnum and summary maintenance are batched.
  for (uint32_t i = 0; i < count; ++i) {
    m.allocated -= request;
    OMEGA_CHECK(!m.allocated.IsNegative())
        << "negative allocation on machine " << id << " after freeing "
        << request;
    m.allocated = m.allocated.ClampNonNegative();
    total_allocated_ -= request;
    total_allocated_ = total_allocated_.ClampNonNegative();
  }
  m.seqnum += count;
  SyncSoA(id);
  BlockAfterGrow(id);
}

void CellState::EnableAvailabilityIndex(uint32_t num_buckets) {
  OMEGA_CHECK(num_buckets > 0);
  double max_cpus = 0.0;
  double max_mem = 0.0;
  for (const Machine& m : machines_) {
    max_cpus = std::max(max_cpus, m.capacity.cpus);
    max_mem = std::max(max_mem, m.capacity.mem_gb);
  }
  OMEGA_CHECK(max_cpus > 0.0);
  mem_per_cpu_ = max_mem > 0.0 ? max_mem / max_cpus : 1.0;
  bucket_scale_ = static_cast<double>(num_buckets) / max_cpus;
  buckets_.assign(num_buckets + 1, {});
  bucket_of_.assign(machines_.size(), 0);
  pos_in_bucket_.assign(machines_.size(), 0);
  for (const Machine& m : machines_) {
    IndexInsert(m.id);
  }
}

double CellState::EffectiveKey(const Resources& r) const {
  const double mem_in_cpu_units =
      mem_per_cpu_ > 0.0 ? r.mem_gb / mem_per_cpu_ : 0.0;
  // For a *request*, the binding dimension is the larger requirement; for an
  // *availability*, callers want the smaller headroom — BucketFor handles the
  // min side directly.
  return std::max(r.cpus, mem_in_cpu_units);
}

size_t CellState::BucketFor(MachineId id) const {
  const Resources available = machines_[id].Available();
  const double mem_in_cpu_units =
      mem_per_cpu_ > 0.0 ? available.mem_gb / mem_per_cpu_ : available.cpus;
  const double effective = std::min(available.cpus, mem_in_cpu_units);
  const auto bucket = static_cast<int64_t>(effective * bucket_scale_);
  return static_cast<size_t>(
      std::clamp<int64_t>(bucket, 0, static_cast<int64_t>(buckets_.size()) - 1));
}

void CellState::IndexInsert(MachineId id) {
  const size_t bucket = BucketFor(id);
  bucket_of_[id] = static_cast<uint32_t>(bucket);
  pos_in_bucket_[id] = static_cast<uint32_t>(buckets_[bucket].size());
  buckets_[bucket].push_back(id);
}

void CellState::IndexRemove(MachineId id) {
  const size_t bucket = bucket_of_[id];
  const size_t pos = pos_in_bucket_[id];
  std::vector<MachineId>& list = buckets_[bucket];
  const MachineId moved = list.back();
  list[pos] = moved;
  pos_in_bucket_[moved] = static_cast<uint32_t>(pos);
  list.pop_back();
}

void CellState::IndexUpdate(MachineId id, size_t old_bucket) {
  const size_t new_bucket = BucketFor(id);
  if (new_bucket == old_bucket) {
    return;
  }
  IndexRemove(id);
  IndexInsert(id);
}

void CellState::VisitByAvailability(
    const Resources& min_request,
    const std::function<bool(MachineId)>& visitor) const {
  OMEGA_CHECK(HasAvailabilityIndex());
  // Under the headroom policy a machine must keep headroom_fraction of its
  // capacity free *beyond* the request, so buckets below that offset can
  // never fit — skip them (best-fit packing piles machines up exactly there).
  const double max_cpus =
      static_cast<double>(buckets_.size() - 1) / bucket_scale_;
  const double headroom_key =
      fullness_ == FullnessPolicy::kHeadroom ? headroom_fraction_ * max_cpus : 0.0;
  const double min_key = EffectiveKey(min_request) + headroom_key;
  auto start = static_cast<size_t>(
      std::clamp<int64_t>(static_cast<int64_t>(min_key * bucket_scale_), 0,
                          static_cast<int64_t>(buckets_.size()) - 1));
  for (size_t b = start; b < buckets_.size(); ++b) {
    for (const MachineId id : buckets_[b]) {
      if (!visitor(id)) {
        return;
      }
    }
  }
}

std::vector<TaskClaim> ReconstructAcceptedClaims(
    std::span<const TaskClaim> claims, std::span<const TaskClaim> rejected,
    int expected_accepted) {
  std::vector<TaskClaim> accepted;
  accepted.reserve(claims.size() - rejected.size());
  size_t reject_idx = 0;
  for (const TaskClaim& claim : claims) {
    if (reject_idx < rejected.size() &&
        claim.machine == rejected[reject_idx].machine &&
        claim.seqnum_at_placement == rejected[reject_idx].seqnum_at_placement &&
        claim.resources == rejected[reject_idx].resources) {
      ++reject_idx;
      continue;
    }
    accepted.push_back(claim);
  }
  OMEGA_CHECK(reject_idx == rejected.size());
  OMEGA_CHECK(accepted.size() == static_cast<size_t>(expected_accepted));
  return accepted;
}

CommitResult CellState::Commit(std::span<const TaskClaim> claims,
                               ConflictMode conflict_mode, CommitMode commit_mode,
                               std::vector<TaskClaim>* rejected) {
  CommitResult result;
  if (claims.empty()) {
    return result;
  }

  // Phase 1: decide acceptance per claim against the current state, tracking
  // pending same-transaction allocations so intra-transaction claims stack
  // correctly and never count as conflicts against each other. The pending
  // sums live in a dense epoch-stamped per-machine scratch (see the member
  // comment); the arithmetic is the same per-claim accumulation as before.
  accept_scratch_.assign(claims.size(), 0);
  std::vector<char>& accept = accept_scratch_;
  if (pending_stamp_.size() != machines_.size()) {
    pending_stamp_.assign(machines_.size(), 0u);
    pending_amount_.resize(machines_.size());
    pending_epoch_ = 0;
  }
  if (++pending_epoch_ == 0) {  // epoch wrapped: stale stamps could collide
    std::fill(pending_stamp_.begin(), pending_stamp_.end(), 0u);
    pending_epoch_ = 1;
  }
  const uint32_t epoch = pending_epoch_;
  auto pending_on = [&](MachineId id) {
    return pending_stamp_[id] == epoch ? pending_amount_[id]
                                       : Resources::Zero();
  };

  bool uniform_resources = true;
  for (size_t i = 1; i < claims.size(); ++i) {
    // Order-free (== only), so it hoists out of the verdict loop unchanged.
    uniform_resources =
        uniform_resources && claims[i].resources == claims[0].resources;
  }

  if (pool_ != nullptr && claims.size() >= parallel_commit_min_claims_) {
    // Parallel pre-check (DESIGN.md §12): a claim's verdict depends only on
    // its machine's current state and on earlier *same-machine* claims of
    // this transaction (nothing is allocated until phase 3), so group the
    // claim indices by machine — stable sort, preserving claim order within
    // a machine — and give each machine-run to one worker, which replays the
    // run's pending accumulation in claim order exactly as the sequential
    // loop would. Workers write disjoint accept[] slots; the merge back to
    // claim order is the accept array itself.
    commit_order_.resize(claims.size());
    for (uint32_t i = 0; i < commit_order_.size(); ++i) {
      commit_order_[i] = i;
    }
    std::stable_sort(commit_order_.begin(), commit_order_.end(),
                     [&claims](uint32_t a, uint32_t b) {
                       return claims[a].machine < claims[b].machine;
                     });
    commit_runs_.clear();
    for (uint32_t i = 0; i < commit_order_.size(); ++i) {
      if (i == 0 || claims[commit_order_[i]].machine !=
                        claims[commit_order_[i - 1]].machine) {
        commit_runs_.push_back(i);
      }
    }
    commit_runs_.push_back(static_cast<uint32_t>(commit_order_.size()));
    const size_t num_runs = commit_runs_.size() - 1;
    const size_t grain = ReduceGrain(num_runs, pool_->concurrency(),
                                     /*min_grain=*/1);
    const size_t num_shards = (num_runs + grain - 1) / grain;
    ShardSlots<char> accept_slots(accept);
    pool_->Run(num_shards, [&](size_t shard) {
      const size_t run_begin = shard * grain;
      const size_t run_end = std::min(num_runs, run_begin + grain);
      for (size_t r = run_begin; r < run_end; ++r) {
        Resources pending = Resources::Zero();
        for (uint32_t k = commit_runs_[r]; k < commit_runs_[r + 1]; ++k) {
          const uint32_t idx = commit_order_[k];
          const TaskClaim& claim = claims[idx];
          bool ok = false;
          switch (conflict_mode) {
            case ConflictMode::kFineGrained:
              ok = CanFitWithPending(claim.machine, claim.resources, pending);
              break;
            case ConflictMode::kCoarseGrained:
              ok = machines_[claim.machine].seqnum == claim.seqnum_at_placement;
              if (ok) {
                ok = CanFitWithPending(claim.machine, claim.resources, pending);
              }
              break;
          }
          accept_slots[idx] = ok ? 1 : 0;
          if (ok) {
            pending += claim.resources;
          }
        }
      }
    });
  } else {
    for (size_t i = 0; i < claims.size(); ++i) {
      const TaskClaim& claim = claims[i];
      const Machine& m = machines_[claim.machine];
      bool ok = false;
      switch (conflict_mode) {
        case ConflictMode::kFineGrained: {
          // Conflict only if the claim no longer fits given what has been
          // committed since placement (plus pending claims from this txn).
          ok = CanFitWithPending(claim.machine, claim.resources,
                                 pending_on(claim.machine));
          break;
        }
        case ConflictMode::kCoarseGrained: {
          // Conflict if the machine changed at all since the scheduler's local
          // copy was synced — even if the change was a *free* that still
          // leaves room (a spurious conflict, §5.2).
          ok = m.seqnum == claim.seqnum_at_placement;
          if (ok) {
            // Unchanged machine: the placement was computed against exactly
            // this state, so the claim must still fit (pending claims
            // included, since the scheduler placed them against its local
            // copy too).
            ok = CanFitWithPending(claim.machine, claim.resources,
                                   pending_on(claim.machine));
          }
          break;
        }
      }
      accept[i] = ok ? 1 : 0;
      if (ok) {
        if (pending_stamp_[claim.machine] != epoch) {
          pending_stamp_[claim.machine] = epoch;
          pending_amount_[claim.machine] = Resources::Zero();
        }
        pending_amount_[claim.machine] += claim.resources;
      }
    }
  }

  // Phase 2: apply semantics. All-or-nothing rejects everything if any claim
  // conflicted (gang scheduling, §3.4).
  bool any_conflict = false;
  for (char a : accept) {
    if (a == 0) {
      any_conflict = true;
      break;
    }
  }
  if (commit_mode == CommitMode::kAllOrNothing && any_conflict) {
    result.accepted = 0;
    result.conflicted = static_cast<int>(claims.size());
    if (rejected != nullptr) {
      rejected->assign(claims.begin(), claims.end());
    }
    if (commit_observer_) {
      commit_observer_(claims, result);
    }
    return result;
  }

  // Phase 3: apply accepted claims atomically. When every claim carries the
  // same resources (the workload model's §2.1 cohort property) the accepted
  // set is applied grouped per machine — one batched mutation per distinct
  // machine instead of one Allocate per claim. Grouping reorders the
  // application across machines, which is state-identical here because
  // identical per-task resources make the floating-point sums order-free
  // (DESIGN.md §10); the availability index is order-sensitive, so it keeps
  // the per-claim path.
  const bool grouped =
      batched_commit_ && uniform_resources && !HasAvailabilityIndex();
  if (grouped) {
    commit_scratch_.clear();
    for (size_t i = 0; i < claims.size(); ++i) {
      if (accept[i] != 0) {
        commit_scratch_.push_back(claims[i].machine);
        ++result.accepted;
      } else {
        ++result.conflicted;
        if (rejected != nullptr) {
          rejected->push_back(claims[i]);
        }
      }
    }
    std::sort(commit_scratch_.begin(), commit_scratch_.end());
    for (size_t i = 0; i < commit_scratch_.size();) {
      size_t j = i + 1;
      while (j < commit_scratch_.size() &&
             commit_scratch_[j] == commit_scratch_[i]) {
        ++j;
      }
      AllocateBatch(commit_scratch_[i], claims[0].resources,
                    static_cast<uint32_t>(j - i));
      i = j;
    }
  } else {
    for (size_t i = 0; i < claims.size(); ++i) {
      if (accept[i] != 0) {
        Allocate(claims[i].machine, claims[i].resources);
        ++result.accepted;
      } else {
        ++result.conflicted;
        if (rejected != nullptr) {
          rejected->push_back(claims[i]);
        }
      }
    }
  }
  if (commit_observer_) {
    commit_observer_(claims, result);
  }
  return result;
}

double CellState::CpuUtilization() const {
  return total_capacity_.cpus > 0.0 ? total_allocated_.cpus / total_capacity_.cpus
                                    : 0.0;
}

double CellState::MemUtilization() const {
  return total_capacity_.mem_gb > 0.0
             ? total_allocated_.mem_gb / total_capacity_.mem_gb
             : 0.0;
}

double CellState::MaxUtilization() const {
  return std::max(CpuUtilization(), MemUtilization());
}

bool CellState::CheckInvariants() const {
  Resources sum;
  for (const Machine& m : machines_) {
    if (m.allocated.IsNegative()) {
      return false;
    }
    if (!m.allocated.FitsIn(m.capacity)) {
      return false;
    }
    sum += m.allocated;
    // The SoA mirrors must be bitwise-equal to the Machine structs (they are
    // maintained by plain assignment, so any divergence is a missed sync) ...
    if (soa_alloc_cpu_[m.id] != m.allocated.cpus ||
        soa_alloc_mem_[m.id] != m.allocated.mem_gb ||
        soa_fit_cpu_[m.id] != UsableCapacity(m.id).cpus + kResourceEpsilon ||
        soa_fit_mem_[m.id] != UsableCapacity(m.id).mem_gb + kResourceEpsilon) {
      return false;
    }
    // ... and the block summary must dominate every machine's usable
    // availability (soundness: BlockMayFit may never rule out a feasible
    // machine) ...
    const Resources avail = UsableAvail(m.id);
    const size_t block = m.id / kBlockSize;
    if (avail.cpus > block_max_cpu_[block] + kResourceEpsilon ||
        avail.mem_gb > block_max_mem_[block] + kResourceEpsilon) {
      return false;
    }
    // ... as must the superblock summary, one level up.
    const size_t super = block / kSuperSize;
    if (avail.cpus > super_max_cpu_[super] + kResourceEpsilon ||
        avail.mem_gb > super_max_mem_[super] + kResourceEpsilon) {
      return false;
    }
  }
  // ... and clean blocks must additionally stay tight: their summary must be
  // achieved by some machine per dimension, or pruning quietly degrades.
  // (Dirty blocks are allowed to be stale-high until their next consult.)
  for (size_t b = 0; b < block_max_cpu_.size(); ++b) {
    if (block_dirty_[b] != 0) {
      continue;
    }
    const size_t begin = b * kBlockSize;
    const size_t end = std::min(begin + kBlockSize, machines_.size());
    Resources max_avail = Resources::Zero();
    for (size_t m = begin; m < end; ++m) {
      const Resources avail = UsableAvail(static_cast<MachineId>(m));
      max_avail.cpus = std::max(max_avail.cpus, avail.cpus);
      max_avail.mem_gb = std::max(max_avail.mem_gb, avail.mem_gb);
    }
    if (std::abs(block_max_cpu_[b] - max_avail.cpus) > 1e-6 ||
        std::abs(block_max_mem_[b] - max_avail.mem_gb) > 1e-6) {
      return false;
    }
  }
  // Clean superblocks: every constituent block must be clean (a shrink marks
  // both levels, and only RecomputeSuper — which refreshes its blocks —
  // clears the super bit), and the stored value must equal the exact maximum
  // over the stored block values (grow raises both levels consistently).
  for (size_t s = 0; s < super_max_cpu_.size(); ++s) {
    if (super_dirty_[s] != 0) {
      continue;
    }
    const size_t begin = s * kSuperSize;
    const size_t end = std::min(begin + kSuperSize, block_max_cpu_.size());
    double max_cpu = 0.0;
    double max_mem = 0.0;
    for (size_t b = begin; b < end; ++b) {
      if (block_dirty_[b] != 0) {
        return false;
      }
      max_cpu = std::max(max_cpu, block_max_cpu_[b]);
      max_mem = std::max(max_mem, block_max_mem_[b]);
    }
    if (super_max_cpu_[s] != max_cpu || super_max_mem_[s] != max_mem) {
      return false;
    }
  }
  const Resources diff = sum - total_allocated_;
  return std::abs(diff.cpus) < 1e-3 && std::abs(diff.mem_gb) < 1e-3;
}

}  // namespace omega
