// The shared cell state: the master copy of all resource allocations (§3.4).
//
// CellState is the "persistent data store with validation code" at the heart
// of the Omega architecture. Schedulers place tasks against a (logical) local
// copy and then commit claims in an atomic transaction; the commit applies
// optimistic concurrency control with either fine-grained (per-machine
// resource re-check) or coarse-grained (sequence number) conflict detection,
// and either incremental or all-or-nothing (gang) acceptance semantics (§5.2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/cluster/machine.h"
#include "src/cluster/resources.h"
#include "src/common/worker_pool.h"

namespace omega {

// How the validation code decides whether a machine can accept a new claim.
// The lightweight simulator uses exact capacity (kExact); the high-fidelity
// simulator models the production scheduler's stricter notion of fullness by
// reserving a headroom fraction of every machine (kHeadroom), which makes
// machines fill "earlier" and produces more conflicts (§5, simulator deltas).
enum class FullnessPolicy {
  kExact,
  kHeadroom,
};

// Conflict detection granularity for transaction commit (§5.2).
enum class ConflictMode {
  kFineGrained,   // conflict only if the claim no longer fits
  kCoarseGrained, // conflict if the machine changed at all since placement
};

// Transaction acceptance semantics (§3.4, §5.2).
enum class CommitMode {
  kIncremental,   // accept all but the conflicting claims
  kAllOrNothing,  // gang scheduling: reject the whole transaction on conflict
};

// One task's claim on one machine, captured at placement time.
struct TaskClaim {
  MachineId machine = kInvalidMachineId;
  Resources resources;
  // Machine sequence number observed when the placing scheduler synced its
  // local copy of cell state.
  uint64_t seqnum_at_placement = 0;
};

// Result of committing a transaction.
struct CommitResult {
  int accepted = 0;
  int conflicted = 0;

  bool AllAccepted() const { return conflicted == 0; }
};

// Reconstructs the accepted subset of `claims` after a Commit that rejected
// some of them. Commit reports rejected claims in claim order, so a single
// forward merge suffices; entries are matched on (machine,
// seqnum_at_placement, resources), which also handles duplicate identical
// claims with partial rejection (the first matching occurrences are dropped).
// CHECK-fails if `rejected` is not an in-order subsequence of `claims` or the
// result does not hold exactly `expected_accepted` claims.
std::vector<TaskClaim> ReconstructAcceptedClaims(
    std::span<const TaskClaim> claims, std::span<const TaskClaim> rejected,
    int expected_accepted);

class CellState {
 public:
  // Builds a homogeneous cell of `num_machines` machines with the given
  // per-machine capacity. Failure domains group `machines_per_domain`
  // consecutive machines (racks).
  CellState(uint32_t num_machines, const Resources& machine_capacity,
            FullnessPolicy fullness = FullnessPolicy::kExact,
            double headroom_fraction = 0.0, uint32_t machines_per_domain = 40);

  // Builds a heterogeneous cell with the given per-machine capacities (the
  // high-fidelity simulator's "machines: actual data", Table 2).
  CellState(std::vector<Resources> machine_capacities,
            FullnessPolicy fullness = FullnessPolicy::kExact,
            double headroom_fraction = 0.0, uint32_t machines_per_domain = 40);

  uint32_t NumMachines() const { return static_cast<uint32_t>(machines_.size()); }
  const Machine& machine(MachineId id) const { return machines_[id]; }
  Machine& mutable_machine(MachineId id) { return machines_[id]; }

  FullnessPolicy fullness_policy() const { return fullness_; }
  double headroom_fraction() const { return headroom_fraction_; }

  // Effective capacity a claim may use on `id` under the fullness policy.
  Resources UsableCapacity(MachineId id) const;

  // Validation predicate: can `request` be placed on machine `id` right now?
  bool CanFit(MachineId id, const Resources& request) const;

  // As CanFit, but with `extra` already hypothetically allocated (pending
  // same-transaction claims on the same machine).
  bool CanFitWithPending(MachineId id, const Resources& request,
                         const Resources& extra) const;

  // Immediately allocates/frees (bumping the machine's sequence number).
  // Allocate CHECK-fails if the claim does not fit; Free CHECK-fails if it
  // would drive the allocation negative.
  void Allocate(MachineId id, const Resources& request);
  void Free(MachineId id, const Resources& request);

  // Applies `count` identical allocations (frees) on machine `id` as one
  // batched mutation: the floating-point arithmetic is replayed per task so
  // the resulting state is bit-identical to `count` single calls, but the
  // sequence number advances once by `+count`, the capacity check runs once
  // (sound: allocation grows monotonically across the batch), and the block
  // summary is maintained once per batch instead of per task. With the
  // availability index enabled, bucket-list order is observable through
  // VisitByAvailability, so both fall back to the per-task sequence — state
  // stays bit-identical there too, just without the batching win. See
  // DESIGN.md §10.
  void AllocateBatch(MachineId id, const Resources& per_task, uint32_t count);
  void FreeBatch(MachineId id, const Resources& per_task, uint32_t count);

  // Atomically commits a set of claims placed against an earlier snapshot.
  // Accepted claims are allocated; conflicting claims (per `conflict_mode`,
  // `commit_mode`) are reported in `rejected` if non-null. Claims within one
  // transaction never conflict with each other on sequence numbers.
  CommitResult Commit(std::span<const TaskClaim> claims, ConflictMode conflict_mode,
                      CommitMode commit_mode,
                      std::vector<TaskClaim>* rejected = nullptr);

  // Observer invoked after every non-empty Commit with the transaction's
  // claims and outcome — the state-store-side tracing seam (every writer
  // passes through here: monolithic, Mesos frameworks, Omega schedulers).
  // Null by default; the observer must not mutate cell state.
  using CommitObserver =
      std::function<void(std::span<const TaskClaim>, const CommitResult&)>;
  void SetCommitObserver(CommitObserver observer) {
    commit_observer_ = std::move(observer);
  }

  // When enabled (the default), Commit applies accepted claims grouped per
  // machine — one AllocateBatch per distinct machine — whenever every claim
  // in the transaction carries identical resources (the §2.1 cohort property
  // the workload model guarantees) and no availability index is attached.
  // Bit-identical to the per-claim path (DESIGN.md §10); the toggle exists so
  // tests can compare the grouped path against the per-claim reference.
  void SetBatchedCommit(bool on) { batched_commit_ = on; }
  bool batched_commit() const { return batched_commit_; }

  Resources TotalCapacity() const { return total_capacity_; }
  Resources TotalAllocated() const { return total_allocated_; }
  Resources TotalAvailable() const { return total_capacity_ - total_allocated_; }

  double CpuUtilization() const;
  double MemUtilization() const;
  // max(cpu, mem) utilization — the "overall cluster utilization" the
  // MapReduce global-cap policy thresholds on (§6.1).
  double MaxUtilization() const;

  // Verifies internal consistency (per-machine sums vs. totals, block
  // summaries vs. per-machine availability); used by tests and debug builds.
  // Returns true when consistent.
  bool CheckInvariants() const;

  // --- block / superblock availability summaries ---
  //
  // Machines are grouped into fixed blocks of kBlockSize consecutive ids, and
  // every block carries the componentwise maximum of its machines' usable
  // availability (UsableCapacity - allocated, clamped at zero). Placement
  // scans use BlockMayFit to skip whole blocks that cannot fit a request in
  // at least one resource dimension — which is what keeps randomized first
  // fit's linear fallback cheap in the near-full regime the paper's
  // experiments deliberately drive into (§4, §5). Blocks are further grouped
  // into superblocks of kSuperSize consecutive blocks (kBlockSize *
  // kSuperSize = 4096 machines) carrying the same kind of summary one level
  // up, so a mega-cell no-fit scan is ~O(cell / 4096) superblock consults
  // instead of O(cell / 64) block consults (DESIGN.md §11).
  //
  // Maintenance is incremental and lazy, tuned to the traffic mix: frees
  // raise the stored maxima in O(1); an allocation just marks its block and
  // superblock dirty with byte stores (allocations vastly outnumber fallback
  // scans, so doing any more work here would cost more than pruning saves);
  // a dirty summary is re-summarized on first consult. Between recomputes a
  // dirty summary's stored value is stale-high — a sound upper bound — so
  // pruning never wrongly rules a block out, it just prunes less until
  // refreshed. Because a pending (uncommitted) claim only shrinks
  // availability further, a block ruled out by the summary can never hide a
  // machine a CanFitWithPending scan would have accepted: skipping is
  // strictly conservative at both levels.

  static constexpr uint32_t kBlockSize = 64;
  // Blocks per superblock (so kBlockSize * kSuperSize machines each).
  static constexpr uint32_t kSuperSize = 64;

  uint32_t NumBlocks() const { return static_cast<uint32_t>(block_max_cpu_.size()); }
  uint32_t NumSuperblocks() const {
    return static_cast<uint32_t>(super_max_cpu_.size());
  }

  // True unless no machine in the block containing `id` can fit `request`
  // (i.e. false means every machine in the block fails CanFit for `request`).
  // Refreshes the block's summary if it is stale.
  bool BlockMayFit(MachineId id, const Resources& request) const {
    const size_t block = id / kBlockSize;
    if (block_dirty_[block] != 0) {
      RecomputeBlock(block);
    }
    return request.cpus <= block_max_cpu_[block] + kResourceEpsilon &&
           request.mem_gb <= block_max_mem_[block] + kResourceEpsilon;
  }

  // As BlockMayFit, one level up: true unless no machine in the superblock
  // containing `id` can fit `request`. Refreshes the superblock (and any
  // dirty constituent blocks) if stale.
  bool SuperblockMayFit(MachineId id, const Resources& request) const {
    const size_t super = id / (kBlockSize * kSuperSize);
    if (super_dirty_[super] != 0) {
      RecomputeSuper(super);
    }
    return request.cpus <= super_max_cpu_[super] + kResourceEpsilon &&
           request.mem_gb <= super_max_mem_[super] + kResourceEpsilon;
  }

  // First machine id after `id` that lies in the next block; placement scans
  // jump here when BlockMayFit(id, ...) is false.
  static MachineId NextBlockStart(MachineId id) {
    return (id / kBlockSize + 1) * kBlockSize;
  }

  // --- struct-of-arrays placement core (DESIGN.md §11) ---
  //
  // The per-machine allocation and fit-limit values are mirrored into
  // contiguous double arrays so the no-fit scans that dominate near-full
  // placement become branch-light linear sweeps over packed doubles (the
  // vector bin-packing layout). The mirrors are maintained unconditionally —
  // every mutation writes the machine's allocated components through — and
  // are bitwise-equal to the Machine structs by construction.

  // First machine id in [begin, end) whose current allocation can fit
  // `request` under the fullness policy, ignoring pending claims and
  // placement constraints — the same predicate as CanFit, evaluated as a
  // two-level-pruned sweep over the SoA arrays. Returns kInvalidMachineId if
  // no machine in the range fits. Callers re-check candidates with
  // constraints and pending claims: a machine this sweep skips fails those
  // stricter checks too (pending only shrinks availability), so using it as
  // a pre-filter changes no placement decision.
  MachineId FindFirstFit(MachineId begin, MachineId end,
                         const Resources& request) const;

  // Gates whether placers use the SoA sweep (FindFirstFit) or the original
  // per-Machine scan for their linear fallbacks. Decisions are identical
  // either way by construction (SimOptions::soa_cell, DESIGN.md §11); the
  // toggle exists so differential tests can compare the two paths. The SoA
  // mirrors themselves are always maintained.
  void SetSoAScan(bool on) { soa_scan_ = on; }
  bool soa_scan() const { return soa_scan_; }

  // --- intra-trial parallelism (DESIGN.md §12) ---
  //
  // The cell owns the worker pool that placers and Commit use to shard their
  // scans; results are bit-identical at every thread count (deterministic
  // ordered reductions — see deterministic_reduce.h). `threads` follows
  // SimOptions::intra_trial_threads: 1 (default) keeps every path strictly
  // sequential with no pool allocated; 0 means hardware concurrency.
  void SetIntraTrialParallelism(uint32_t threads);
  // Null when sequential (threads == 1). Placers branch on this.
  WorkerPool* intra_trial_pool() const { return pool_.get(); }
  uint32_t intra_trial_threads() const {
    return pool_ == nullptr ? 1u : static_cast<uint32_t>(pool_->concurrency());
  }

  // Transactions with fewer claims than this pre-check sequentially even when
  // a pool is attached: a pool dispatch costs a few microseconds of wakeup
  // latency, and the per-claim verdict is ~0.1 µs, so small transactions are
  // cheaper inline. The default targets the large gang/cohort commits the
  // knob exists for; tests lower it to force the parallel branch. Either
  // branch produces bitwise-identical verdicts, so this is a pure perf knob.
  void SetParallelCommitMinClaims(size_t n) { parallel_commit_min_claims_ = n; }
  size_t parallel_commit_min_claims() const {
    return parallel_commit_min_claims_;
  }

  // As FindFirstFit, but never refreshes dirty summaries: prunes consult the
  // stored (possibly stale-high) values without writing any mutable state, so
  // concurrent calls from pool workers are safe. Stale-high bounds are sound
  // upper bounds, so this returns exactly the same machine as FindFirstFit —
  // it just prunes less until the summaries are refreshed. Callers that shard
  // a scan should RefreshSummaries() once on the event-loop thread first to
  // recover full pruning.
  MachineId FindFirstFitNoRefresh(MachineId begin, MachineId end,
                                  const Resources& request) const;

  // Recomputes every dirty block/superblock summary now, on the calling
  // thread, so a subsequent sharded FindFirstFitNoRefresh scan sees fully
  // tight summaries without ever writing from a worker.
  void RefreshSummaries() const;

  // --- availability index ---
  //
  // An optional bucketed index of machines by *effective* availability — the
  // binding dimension min(avail_cpu, avail_mem / mem-per-cpu-ratio), in CPU
  // units — so that best-fit placement ("tightest feasible machine first")
  // runs in O(candidates) instead of O(machines), and machines that are loose
  // in CPU but exhausted in memory sort as tight. The high-fidelity scoring
  // placer uses it; the lightweight randomized first fit does not need it.

  void EnableAvailabilityIndex(uint32_t num_buckets = 64);
  bool HasAvailabilityIndex() const { return !buckets_.empty(); }

  // Effective availability key of a request: the CPU-unit requirement in the
  // binding dimension. Machines in buckets below EffectiveKey(request) cannot
  // fit the request in at least one dimension.
  double EffectiveKey(const Resources& r) const;

  // Visits machines in order of increasing effective availability (tightest
  // feasible bucket first), starting from the lowest bucket that can contain
  // a machine able to fit `min_request`. The visitor returns false to stop.
  void VisitByAvailability(const Resources& min_request,
                           const std::function<bool(MachineId)>& visitor) const;

 private:
  size_t BucketFor(MachineId id) const;
  void IndexRemove(MachineId id);
  void IndexInsert(MachineId id);
  void IndexUpdate(MachineId id, size_t old_bucket);

  // Usable availability of `id` under the fullness policy, clamped at zero
  // componentwise (headroom can drive the raw difference negative).
  Resources UsableAvail(MachineId id) const {
    return (UsableCapacity(id) - machines_[id].allocated).ClampNonNegative();
  }
  // Recomputes a block's summary from its machines and clears its dirty bit
  // (const: the summary is a cache over machine state).
  void RecomputeBlock(size_t block) const;
  // Recomputes a superblock's summary from its (refreshed) constituent blocks
  // and clears its dirty bit.
  void RecomputeSuper(size_t super) const;
  // Marks both summary levels stale after machine `id`'s availability shrank
  // (allocation path).
  void BlockAfterShrink(MachineId id);
  // Restores both summary levels after machine `id`'s availability grew (free
  // path).
  void BlockAfterGrow(MachineId id);

  // Writes machine `id`'s allocated components through to the SoA mirrors.
  void SyncSoA(MachineId id) {
    soa_alloc_cpu_[id] = machines_[id].allocated.cpus;
    soa_alloc_mem_[id] = machines_[id].allocated.mem_gb;
  }
  // Fills the SoA fit-limit arrays from the (immutable) usable capacities;
  // called once from both constructors.
  void InitSoA();
  // Chunked kernel under FindFirstFit: first id in [from, to) — a range that
  // never crosses a block boundary — whose raw allocation fits `request`, or
  // kInvalidMachineId.
  MachineId ScanFit(MachineId from, MachineId to, const Resources& request) const;

  std::vector<Machine> machines_;
  Resources total_capacity_;
  Resources total_allocated_;
  FullnessPolicy fullness_;
  double headroom_fraction_;

  // SoA mirrors of per-machine state (always maintained, bitwise-equal to the
  // Machine structs): allocated components, and the fit limit
  // UsableCapacity + kResourceEpsilon per component — precomputed so the scan
  // predicate `alloc + request <= fit` needs no per-machine recomputation.
  // The fit arrays are fixed at construction (capacity and fullness policy
  // are immutable after construction).
  std::vector<double> soa_alloc_cpu_;
  std::vector<double> soa_alloc_mem_;
  std::vector<double> soa_fit_cpu_;
  std::vector<double> soa_fit_mem_;
  bool soa_scan_ = true;

  // Per-block componentwise maximum of UsableAvail over the block's machines
  // (always maintained; one entry per kBlockSize machines), split into
  // per-resource double arrays, plus the same summary one level up over
  // kSuperSize blocks. Mutable: a dirty summary is lazily recomputed on first
  // consult, including through const readers.
  mutable std::vector<double> block_max_cpu_;
  mutable std::vector<double> block_max_mem_;
  mutable std::vector<uint8_t> block_dirty_;
  mutable std::vector<double> super_max_cpu_;
  mutable std::vector<double> super_max_mem_;
  mutable std::vector<uint8_t> super_dirty_;

  CommitObserver commit_observer_;
  bool batched_commit_ = true;
  // Commit scratch, reused across transactions: the per-machine grouping
  // list, the per-claim accept flags, and the pending same-transaction sums
  // as a dense epoch-stamped per-machine array (an array read per claim
  // instead of a hash lookup; a new transaction is an O(1) epoch bump).
  std::vector<MachineId> commit_scratch_;
  std::vector<char> accept_scratch_;
  std::vector<Resources> pending_amount_;
  std::vector<uint32_t> pending_stamp_;
  uint32_t pending_epoch_ = 0;

  // Intra-trial worker pool (null when intra_trial_threads == 1), plus the
  // parallel Commit pre-check scratch: claim indices grouped by machine
  // (stable sort, so claim order is preserved within a machine) and the run
  // boundaries of that grouping. shared_ptr so copied cells (schedulers'
  // local copies, if any) share one pool instead of spawning threads per copy.
  std::shared_ptr<WorkerPool> pool_;
  size_t parallel_commit_min_claims_ = 256;
  std::vector<uint32_t> commit_order_;
  std::vector<uint32_t> commit_runs_;

  // Availability index state (empty when disabled).
  std::vector<std::vector<MachineId>> buckets_;
  std::vector<uint32_t> bucket_of_;    // per machine
  std::vector<uint32_t> pos_in_bucket_;  // per machine
  double bucket_scale_ = 0.0;          // buckets per effective cpu
  double mem_per_cpu_ = 4.0;           // GB per core, for the effective key
};

}  // namespace omega

