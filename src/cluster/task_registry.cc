#include "src/cluster/task_registry.h"

#include <algorithm>

namespace omega {

uint32_t TaskRegistry::SlotOf(uint64_t task_id) const {
  auto it = slot_of_.find(task_id);
  return it == slot_of_.end() ? kNoSlot : it->second;
}

uint64_t TaskRegistry::Add(MachineId machine, const Resources& resources,
                           int32_t precedence, uint64_t end_event,
                           uint64_t cohort) {
  const uint64_t id = next_id_++;
  uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.task = RunningTask{id, machine, resources, precedence, end_event, cohort};
  s.live = true;
  s.next_free = kNoSlot;
  if (machine >= by_machine_.size()) {
    by_machine_.resize(machine + 1);
  }
  s.pos_on_machine = static_cast<uint32_t>(by_machine_[machine].size());
  by_machine_[machine].push_back(slot);
  slot_of_.emplace(id, slot);
  ++num_running_;
  return id;
}

bool TaskRegistry::Remove(uint64_t task_id) {
  auto it = slot_of_.find(task_id);
  if (it == slot_of_.end()) {
    return false;
  }
  const uint32_t slot = it->second;
  Slot& s = slots_[slot];
  std::vector<uint32_t>& list = by_machine_[s.task.machine];
  const uint32_t pos = s.pos_on_machine;
  const uint32_t moved = list.back();
  list[pos] = moved;
  slots_[moved].pos_on_machine = pos;
  list.pop_back();
  s.live = false;
  s.next_free = free_head_;
  free_head_ = slot;
  slot_of_.erase(it);
  --num_running_;
  return true;
}

void TaskRegistry::SetEndEvent(uint64_t task_id, uint64_t end_event) {
  const uint32_t slot = SlotOf(task_id);
  if (slot != kNoSlot) {
    slots_[slot].task.end_event = end_event;
  }
}

Resources TaskRegistry::PreemptibleOn(MachineId machine,
                                      int32_t precedence) const {
  Resources total;
  if (machine >= by_machine_.size()) {
    return total;
  }
  for (const uint32_t slot : by_machine_[machine]) {
    const RunningTask& task = slots_[slot].task;
    if (task.precedence < precedence) {
      total += task.resources;
    }
  }
  return total;
}

std::vector<RunningTask> TaskRegistry::SelectVictims(MachineId machine,
                                                     int32_t precedence,
                                                     const Resources& needed) const {
  if (machine >= by_machine_.size()) {
    return {};
  }
  std::vector<RunningTask> candidates;
  for (const uint32_t slot : by_machine_[machine]) {
    const RunningTask& task = slots_[slot].task;
    if (task.precedence < precedence) {
      candidates.push_back(task);
    }
  }
  // Evict the least important work first; break ties on smaller tasks to
  // minimize wasted work.
  std::sort(candidates.begin(), candidates.end(),
            [](const RunningTask& a, const RunningTask& b) {
              if (a.precedence != b.precedence) {
                return a.precedence < b.precedence;
              }
              return a.resources.cpus < b.resources.cpus;
            });
  std::vector<RunningTask> victims;
  Resources freed;
  for (const RunningTask& task : candidates) {
    if (needed.FitsIn(freed)) {
      break;
    }
    victims.push_back(task);
    freed += task.resources;
  }
  if (!needed.FitsIn(freed)) {
    return {};
  }
  return victims;
}

size_t TaskRegistry::NumRunningOn(MachineId machine) const {
  return machine < by_machine_.size() ? by_machine_[machine].size() : 0;
}

std::vector<RunningTask> TaskRegistry::TasksOn(MachineId machine) const {
  std::vector<RunningTask> out;
  if (machine >= by_machine_.size()) {
    return out;
  }
  out.reserve(by_machine_[machine].size());
  for (const uint32_t slot : by_machine_[machine]) {
    out.push_back(slots_[slot].task);
  }
  return out;
}

}  // namespace omega
