#include "src/cluster/task_registry.h"

#include <algorithm>

namespace omega {

uint64_t TaskRegistry::Add(MachineId machine, const Resources& resources,
                           int32_t precedence, uint64_t end_event) {
  const uint64_t id = next_id_++;
  tasks_.emplace(id, RunningTask{id, machine, resources, precedence, end_event});
  by_machine_[machine].push_back(id);
  return id;
}

bool TaskRegistry::Remove(uint64_t task_id) {
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) {
    return false;
  }
  auto& list = by_machine_[it->second.machine];
  auto pos = std::find(list.begin(), list.end(), task_id);
  if (pos != list.end()) {
    *pos = list.back();
    list.pop_back();
  }
  tasks_.erase(it);
  return true;
}

void TaskRegistry::SetEndEvent(uint64_t task_id, uint64_t end_event) {
  auto it = tasks_.find(task_id);
  if (it != tasks_.end()) {
    it->second.end_event = end_event;
  }
}

Resources TaskRegistry::PreemptibleOn(MachineId machine,
                                      int32_t precedence) const {
  Resources total;
  auto it = by_machine_.find(machine);
  if (it == by_machine_.end()) {
    return total;
  }
  for (uint64_t id : it->second) {
    const RunningTask& task = tasks_.at(id);
    if (task.precedence < precedence) {
      total += task.resources;
    }
  }
  return total;
}

std::vector<RunningTask> TaskRegistry::SelectVictims(MachineId machine,
                                                     int32_t precedence,
                                                     const Resources& needed) const {
  std::vector<RunningTask> candidates;
  auto it = by_machine_.find(machine);
  if (it == by_machine_.end()) {
    return {};
  }
  for (uint64_t id : it->second) {
    const RunningTask& task = tasks_.at(id);
    if (task.precedence < precedence) {
      candidates.push_back(task);
    }
  }
  // Evict the least important work first; break ties on smaller tasks to
  // minimize wasted work.
  std::sort(candidates.begin(), candidates.end(),
            [](const RunningTask& a, const RunningTask& b) {
              if (a.precedence != b.precedence) {
                return a.precedence < b.precedence;
              }
              return a.resources.cpus < b.resources.cpus;
            });
  std::vector<RunningTask> victims;
  Resources freed;
  for (const RunningTask& task : candidates) {
    if (needed.FitsIn(freed)) {
      break;
    }
    victims.push_back(task);
    freed += task.resources;
  }
  if (!needed.FitsIn(freed)) {
    return {};
  }
  return victims;
}

size_t TaskRegistry::NumRunningOn(MachineId machine) const {
  auto it = by_machine_.find(machine);
  return it == by_machine_.end() ? 0 : it->second.size();
}

std::vector<RunningTask> TaskRegistry::TasksOn(MachineId machine) const {
  std::vector<RunningTask> out;
  auto it = by_machine_.find(machine);
  if (it == by_machine_.end()) {
    return out;
  }
  out.reserve(it->second.size());
  for (uint64_t id : it->second) {
    out.push_back(tasks_.at(id));
  }
  return out;
}

}  // namespace omega
