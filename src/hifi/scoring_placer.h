// Constraint-aware scoring placement ("Google algorithm" stand-in, §5).
//
// SUBSTITUTION NOTE (DESIGN.md §2): the paper's high-fidelity simulator reuses
// Google's production scheduling code, which is proprietary. This placer
// reproduces its observable properties that matter to the §5 experiments:
//  - it respects task placement constraints (machines are filtered by the
//    job's attribute predicates), so picky jobs are genuinely hard to place;
//  - it makes *careful* placements by scoring candidates: best-fit packing
//    plus failure-domain spreading, which concentrates many schedulers'
//    choices onto the same attractive machines and thereby produces the
//    higher conflict rates the paper reports for the high-fidelity simulator;
//  - its cost is modeled by the same t_job + t_task * tasks linear model.
#pragma once

#include "src/scheduler/placement.h"

namespace omega {

struct ScoringPlacerOptions {
  // Number of candidate machines examined per task (power-of-k-choices
  // sampling keeps placement cost bounded on large cells).
  uint32_t candidate_sample = 64;
  // Weight of the best-fit packing term (prefer fuller machines).
  double best_fit_weight = 1.0;
  // Weight of the failure-domain spreading term (prefer domains the job does
  // not use yet, to resist coordinated failures).
  double spreading_weight = 0.25;
};

class ScoringPlacer final : public TaskPlacer {
 public:
  explicit ScoringPlacer(ScoringPlacerOptions options = {});

  uint32_t PlaceTasks(const CellState& cell, const Job& job, uint32_t count,
                      Rng& rng, std::vector<TaskClaim>* claims) override;

 private:
  ScoringPlacerOptions options_;
  PendingClaims pending_scratch_;
  // Failure domains the current job already occupies — dense epoch-stamped
  // scratch (domains are small dense ints), replacing the former
  // unordered_set so the scoring hot path does no hashing.
  EpochFlagSet domains_scratch_;
  // Sharded sampling/full-scan scratch, engaged when the cell carries an
  // intra-trial worker pool (DESIGN.md §12).
  DeterministicReducer reducer_;
  std::vector<MachineId> sample_scratch_;
};

}  // namespace omega

