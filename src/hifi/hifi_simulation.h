// High-fidelity trace-driven simulation of the Omega architecture (§5).
//
// Differences from the lightweight simulator (Table 2):
//  - driven by a workload *trace* (materialized to a file and replayed via the
//    trace reader) rather than by on-the-fly synthesis;
//  - placement constraints are obeyed; machines carry attributes;
//  - the placement algorithm is the constraint-aware scoring placer;
//  - machine fullness uses the stricter headroom policy, producing more
//    conflicts under fine-grained detection.
// Preemption is supported but disabled by default, matching the paper ("we
// found that they make little difference to the results").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/hifi/scoring_placer.h"
#include "src/omega/omega_scheduler.h"

namespace omega {

struct HifiOptions {
  // Strict fullness: a machine is treated as full once this fraction of its
  // capacity must be held back (production headroom for system agents and
  // usage spikes).
  double headroom_fraction = 0.04;

  ScoringPlacerOptions placer;

  // Attribute space for constraints; must match the trace generator's.
  int32_t num_attribute_keys = 8;
  int32_t num_attribute_values = 4;

  uint32_t num_batch_schedulers = 1;
};

// Builds an OmegaSimulation configured as the high-fidelity simulator.
std::unique_ptr<OmegaSimulation> MakeHifiSimulation(
    const ClusterConfig& cluster, SimOptions options,
    const SchedulerConfig& batch_config, const SchedulerConfig& service_config,
    const HifiOptions& hifi = {});

// Materializes a synthetic trace for `cluster` over `horizon` (with placement
// constraints and MapReduce specs attached) — the stand-in for a production
// workload trace. Deterministic given `seed`.
std::vector<Job> GenerateHifiTrace(const ClusterConfig& cluster, Duration horizon,
                                   uint64_t seed, const HifiOptions& hifi = {},
                                   double batch_rate_multiplier = 1.0,
                                   double service_rate_multiplier = 1.0);

// Round-trips a trace through the on-disk format (write + re-read), returning
// the re-read jobs; exercises the same I/O path a real trace would use.
// CHECK-fails on I/O errors.
std::vector<Job> RoundTripTrace(const std::vector<Job>& jobs,
                                const std::string& path);

}  // namespace omega

