#include "src/hifi/hifi_simulation.h"

#include "src/common/logging.h"
#include "src/workload/trace.h"

namespace omega {

std::unique_ptr<OmegaSimulation> MakeHifiSimulation(
    const ClusterConfig& cluster, SimOptions options,
    const SchedulerConfig& batch_config, const SchedulerConfig& service_config,
    const HifiOptions& hifi) {
  options.fullness = FullnessPolicy::kHeadroom;
  options.headroom_fraction = hifi.headroom_fraction;

  GeneratorOptions gen;
  gen.generate_constraints = true;
  gen.num_attribute_keys = hifi.num_attribute_keys;
  gen.num_attribute_values = hifi.num_attribute_values;

  const ScoringPlacerOptions placer_options = hifi.placer;
  PlacerFactory factory = [placer_options] {
    return std::make_unique<ScoringPlacer>(placer_options);
  };
  auto sim = std::make_unique<OmegaSimulation>(cluster, options, batch_config,
                                               service_config,
                                               hifi.num_batch_schedulers, gen,
                                               std::move(factory));
  // The scoring placer runs global best-fit through the availability index.
  sim->cell().EnableAvailabilityIndex();
  return sim;
}

std::vector<Job> GenerateHifiTrace(const ClusterConfig& cluster, Duration horizon,
                                   uint64_t seed, const HifiOptions& hifi,
                                   double batch_rate_multiplier,
                                   double service_rate_multiplier) {
  GeneratorOptions gen;
  gen.generate_constraints = true;
  gen.generate_mapreduce_specs = true;
  gen.num_attribute_keys = hifi.num_attribute_keys;
  gen.num_attribute_values = hifi.num_attribute_values;
  gen.batch_rate_multiplier = batch_rate_multiplier;
  gen.service_rate_multiplier = service_rate_multiplier;
  WorkloadGenerator generator(cluster, gen, seed);
  return generator.GenerateArrivals(horizon);
}

std::vector<Job> RoundTripTrace(const std::vector<Job>& jobs,
                                const std::string& path) {
  OMEGA_CHECK(WriteTraceFile(jobs, path)) << "cannot write trace: " << path;
  std::vector<Job> replayed;
  std::string error;
  OMEGA_CHECK(ReadTraceFile(path, &replayed, &error)) << error;
  return replayed;
}

}  // namespace omega
