#include "src/hifi/scoring_placer.h"

#include <algorithm>

namespace omega {

ScoringPlacer::ScoringPlacer(ScoringPlacerOptions options) : options_(options) {}

uint32_t ScoringPlacer::PlaceTasks(const CellState& cell, const Job& job,
                                   uint32_t count, Rng& rng,
                                   std::vector<TaskClaim>* claims) {
  const uint32_t num_machines = cell.NumMachines();
  if (num_machines == 0 || count == 0) {
    return 0;
  }
  PendingClaims& pending = pending_scratch_;
  pending.Reset(cell.NumMachines());
  EpochFlagSet& domains_used = domains_scratch_;
  domains_used.Reset();
  WorkerPool* pool = cell.intra_trial_pool();
  uint32_t placed = 0;

  for (uint32_t t = 0; t < count; ++t) {
    MachineId best = kInvalidMachineId;
    double best_score = -1.0;

    // Feasibility + score of one candidate, side-effect-free: every input it
    // reads (machine state, pending claims, domains used) is only mutated on
    // this thread between scans, so pool workers may evaluate it concurrently
    // for distinct machines.
    auto score_of = [&](MachineId m, double* score) -> bool {
      const Machine& machine = cell.machine(m);
      if (!MachineSatisfiesConstraints(machine, job)) {
        return false;
      }
      const Resources extra = pending.On(m);
      if (!cell.CanFitWithPending(m, job.task_resources, extra)) {
        return false;
      }
      // Best-fit term: utilization of the machine after placement, in the
      // dominant dimension. Scoring the fullest feasible machine packs tightly
      // and leaves large holes for big tasks.
      const Resources after = machine.allocated + extra + job.task_resources;
      const Resources usable = cell.UsableCapacity(m);
      const double fit = std::max(
          usable.cpus > 0.0 ? after.cpus / usable.cpus : 0.0,
          usable.mem_gb > 0.0 ? after.mem_gb / usable.mem_gb : 0.0);
      // Spreading term: reward failure domains this job does not occupy yet.
      const double spread =
          domains_used.Contains(machine.failure_domain) ? 0.0 : 1.0;
      *score =
          options_.best_fit_weight * fit + options_.spreading_weight * spread;
      return true;
    };
    // Sample candidates; fall back to a full scan if sampling finds nothing
    // (constrained jobs on a nearly full cell).
    auto consider = [&](MachineId m) -> bool {
      double score = 0.0;
      if (!score_of(m, &score)) {
        return false;
      }
      if (score > best_score) {
        best_score = score;
        best = m;
      }
      return true;
    };

    if (cell.HasAvailabilityIndex()) {
      // Global best-fit via the availability index: visit machines from the
      // tightest feasible bucket upward; the first feasible candidates are the
      // globally best-packing choices, which is exactly why careful placement
      // algorithms concentrate onto the same machines and conflict (§5).
      // Bucket order is meaningful, so this path stays sequential.
      uint32_t feasible = 0;
      uint32_t visited = 0;
      const uint32_t max_feasible = std::max(1u, options_.candidate_sample / 8);
      const uint32_t max_visited = options_.candidate_sample * 4;
      cell.VisitByAvailability(job.task_resources, [&](MachineId m) {
        ++visited;
        if (consider(m)) {
          ++feasible;
        }
        if (feasible >= max_feasible) {
          return false;  // enough tight candidates scored
        }
        // Past the visit budget, keep walking only until something feasible
        // turns up (memory-bound or constrained tasks may need to reach
        // looser buckets); a full walk happens only when nothing fits at all.
        return feasible == 0 || visited < max_visited;
      });
    } else {
      const uint32_t samples = std::min(options_.candidate_sample, num_machines);
      if (pool != nullptr) {
        // Sharded sampling (DESIGN.md §12): draw the sample ids up front —
        // the same draws, in the same order, as the sequential loop — then
        // reduce with a deterministic ArgBest over sample positions. Shard
        // scans apply the sequential update rule exactly (strictly greater
        // than a running best initialized to -1.0, so a hypothetical score
        // <= -1.0 never wins in either path), and the ordered merge resolves
        // ties to the lowest sample position, which is the candidate the
        // sequential loop would have kept.
        sample_scratch_.clear();
        for (uint32_t i = 0; i < samples; ++i) {
          sample_scratch_.push_back(
              static_cast<MachineId>(rng.NextBounded(num_machines)));
        }
        const auto sampled_best = reducer_.ArgBest(
            pool, samples, ReduceGrain(samples, pool->concurrency()),
            [&](size_t b, size_t e) {
              DeterministicReducer::Best local;
              double local_score = -1.0;
              for (size_t i = b; i < e; ++i) {
                double score = 0.0;
                if (!score_of(sample_scratch_[i], &score)) {
                  continue;
                }
                if (score > local_score) {
                  local_score = score;
                  local.index = i;
                  local.score = score;
                }
              }
              return local;
            });
        if (sampled_best.index != kReduceNotFound) {
          best = sample_scratch_[sampled_best.index];
          best_score = sampled_best.score;
        }
      } else {
        for (uint32_t i = 0; i < samples; ++i) {
          consider(static_cast<MachineId>(rng.NextBounded(num_machines)));
        }
      }
      if (best == kInvalidMachineId) {
        const auto start = static_cast<MachineId>(rng.NextBounded(num_machines));
        if (pool != nullptr && cell.soa_scan()) {
          // Sharded full scan (DESIGN.md §12): the sequential SoA sweep below
          // is a *first-fit* search (its loop stops at the first machine
          // consider() scores), so the parallel form is a FirstMatch over the
          // feasibility predicate in the same wrapped order, followed by one
          // sequential consider() on the winner to compute its score on this
          // thread (weights are non-negative, so a feasible machine always
          // scores >= 0 > -1.0 and is selected, exactly like the reference).
          // Summaries are refreshed up front so workers scan with full
          // pruning without writing anything.
          cell.RefreshSummaries();
          auto scan_span = [&](MachineId from, MachineId to) -> size_t {
            while (from < to) {
              const MachineId hit =
                  cell.FindFirstFitNoRefresh(from, to, job.task_resources);
              if (hit == kInvalidMachineId) {
                return kReduceNotFound;
              }
              double score = 0.0;
              if (score_of(hit, &score)) {
                return hit;
              }
              from = hit + 1;
            }
            return kReduceNotFound;
          };
          auto sweep = [&](MachineId seg_begin, MachineId seg_end) -> size_t {
            const size_t seg_n = seg_end - seg_begin;
            if (seg_n == 0) {
              return kReduceNotFound;
            }
            const size_t grain = ReduceGrain(seg_n, pool->concurrency());
            return reducer_.FirstMatch(
                pool, seg_n, grain, [&](size_t b, size_t e) {
                  return scan_span(seg_begin + static_cast<MachineId>(b),
                                   seg_begin + static_cast<MachineId>(e));
                });
          };
          size_t hit = sweep(start, num_machines);
          if (hit == kReduceNotFound) {
            hit = sweep(0, start);
          }
          if (hit != kReduceNotFound) {
            consider(static_cast<MachineId>(hit));
          }
        } else if (cell.soa_scan()) {
          // The reference loop below stops at the first machine consider()
          // scores (its loop condition), so this is a first-fit search: sweep
          // each ascending segment with the SoA core, re-checking candidates
          // with consider() (constraints + pending). Machines the sweep skips
          // fail CanFit outright, and consider() is side-effect-free on them,
          // so the chosen machine — and the absence of RNG draws — match the
          // reference exactly.
          auto sweep = [&](MachineId from, MachineId to) {
            while (from < to && best == kInvalidMachineId) {
              const MachineId hit =
                  cell.FindFirstFit(from, to, job.task_resources);
              if (hit == kInvalidMachineId) {
                return;
              }
              consider(hit);
              from = hit + 1;
            }
          };
          sweep(start, num_machines);
          if (best == kInvalidMachineId) {
            sweep(0, start);
          }
        } else {
          for (uint32_t i = 0; i < num_machines && best == kInvalidMachineId;
               ++i) {
            consider((start + i) % num_machines);
          }
        }
      }
    }
    if (best == kInvalidMachineId) {
      break;
    }
    claims->push_back(
        TaskClaim{best, job.task_resources, cell.machine(best).seqnum});
    pending.Add(best, job.task_resources);
    domains_used.Insert(cell.machine(best).failure_domain);
    ++placed;
  }
  return placed;
}

}  // namespace omega
