#include "src/hifi/scoring_placer.h"

#include <algorithm>
#include <unordered_set>

namespace omega {

ScoringPlacer::ScoringPlacer(ScoringPlacerOptions options) : options_(options) {}

uint32_t ScoringPlacer::PlaceTasks(const CellState& cell, const Job& job,
                                   uint32_t count, Rng& rng,
                                   std::vector<TaskClaim>* claims) {
  const uint32_t num_machines = cell.NumMachines();
  if (num_machines == 0 || count == 0) {
    return 0;
  }
  PendingClaims& pending = pending_scratch_;
  pending.Reset(cell.NumMachines());
  std::unordered_set<int32_t> domains_used;
  uint32_t placed = 0;

  for (uint32_t t = 0; t < count; ++t) {
    MachineId best = kInvalidMachineId;
    double best_score = -1.0;

    // Sample candidates; fall back to a full scan if sampling finds nothing
    // (constrained jobs on a nearly full cell).
    auto consider = [&](MachineId m) -> bool {
      const Machine& machine = cell.machine(m);
      if (!MachineSatisfiesConstraints(machine, job)) {
        return false;
      }
      const Resources extra = pending.On(m);
      if (!cell.CanFitWithPending(m, job.task_resources, extra)) {
        return false;
      }
      // Best-fit term: utilization of the machine after placement, in the
      // dominant dimension. Scoring the fullest feasible machine packs tightly
      // and leaves large holes for big tasks.
      const Resources after = machine.allocated + extra + job.task_resources;
      const Resources usable = cell.UsableCapacity(m);
      const double fit = std::max(
          usable.cpus > 0.0 ? after.cpus / usable.cpus : 0.0,
          usable.mem_gb > 0.0 ? after.mem_gb / usable.mem_gb : 0.0);
      // Spreading term: reward failure domains this job does not occupy yet.
      const double spread = domains_used.contains(machine.failure_domain) ? 0.0 : 1.0;
      const double score =
          options_.best_fit_weight * fit + options_.spreading_weight * spread;
      if (score > best_score) {
        best_score = score;
        best = m;
      }
      return true;
    };

    if (cell.HasAvailabilityIndex()) {
      // Global best-fit via the availability index: visit machines from the
      // tightest feasible bucket upward; the first feasible candidates are the
      // globally best-packing choices, which is exactly why careful placement
      // algorithms concentrate onto the same machines and conflict (§5).
      uint32_t feasible = 0;
      uint32_t visited = 0;
      const uint32_t max_feasible = std::max(1u, options_.candidate_sample / 8);
      const uint32_t max_visited = options_.candidate_sample * 4;
      cell.VisitByAvailability(job.task_resources, [&](MachineId m) {
        ++visited;
        if (consider(m)) {
          ++feasible;
        }
        if (feasible >= max_feasible) {
          return false;  // enough tight candidates scored
        }
        // Past the visit budget, keep walking only until something feasible
        // turns up (memory-bound or constrained tasks may need to reach
        // looser buckets); a full walk happens only when nothing fits at all.
        return feasible == 0 || visited < max_visited;
      });
    } else {
      const uint32_t samples = std::min(options_.candidate_sample, num_machines);
      for (uint32_t i = 0; i < samples; ++i) {
        consider(static_cast<MachineId>(rng.NextBounded(num_machines)));
      }
      if (best == kInvalidMachineId) {
        const auto start = static_cast<MachineId>(rng.NextBounded(num_machines));
        if (cell.soa_scan()) {
          // The reference loop below stops at the first machine consider()
          // scores (its loop condition), so this is a first-fit search: sweep
          // each ascending segment with the SoA core, re-checking candidates
          // with consider() (constraints + pending). Machines the sweep skips
          // fail CanFit outright, and consider() is side-effect-free on them,
          // so the chosen machine — and the absence of RNG draws — match the
          // reference exactly.
          auto sweep = [&](MachineId from, MachineId to) {
            while (from < to && best == kInvalidMachineId) {
              const MachineId hit =
                  cell.FindFirstFit(from, to, job.task_resources);
              if (hit == kInvalidMachineId) {
                return;
              }
              consider(hit);
              from = hit + 1;
            }
          };
          sweep(start, num_machines);
          if (best == kInvalidMachineId) {
            sweep(0, start);
          }
        } else {
          for (uint32_t i = 0; i < num_machines && best == kInvalidMachineId;
               ++i) {
            consider((start + i) % num_machines);
          }
        }
      }
    }
    if (best == kInvalidMachineId) {
      break;
    }
    claims->push_back(
        TaskClaim{best, job.task_resources, cell.machine(best).seqnum});
    pending.Add(best, job.task_resources);
    domains_used.insert(cell.machine(best).failure_domain);
    ++placed;
  }
  return placed;
}

}  // namespace omega
