// MapReduce job performance model (§6.1).
//
// Deliberately simple, as in the paper: adding workers yields an idealized
// linear speedup (modulo the dependency between mappers and reducers), up to
// the point where all map activities, and all reduce activities respectively,
// run in parallel.
#pragma once

#include <cstdint>

#include "src/common/sim_time.h"
#include "src/workload/job.h"

namespace omega {

// Predicted completion time of `spec` with `workers` workers.
Duration PredictCompletionTime(const MapReduceSpec& spec, int64_t workers);

// Largest worker count beyond which adding workers yields no further benefit
// (all map and reduce activities already run fully parallel).
int64_t MaxBeneficialWorkers(const MapReduceSpec& spec);

// Predicted speedup of running with `workers` relative to the user-requested
// worker count.
double PredictSpeedup(const MapReduceSpec& spec, int64_t workers);

}  // namespace omega

