#include "src/mapreduce/mr_scheduler.h"

#include "src/common/logging.h"
#include "src/mapreduce/perf_model.h"

namespace omega {

MapReduceScheduler::MapReduceScheduler(ClusterSimulation& harness,
                                       SchedulerConfig config, Rng rng,
                                       MapReducePolicyOptions policy)
    : QueueScheduler(harness, std::move(config)), rng_(rng), policy_(policy) {}

void MapReduceScheduler::BeginAttempt(const JobPtr& job) {
  OMEGA_CHECK(job->mapreduce.has_value());
  if (job->scheduling_attempts == 0) {
    // First look at the job: observe the overall cluster utilization (full
    // cell-state visibility) and choose the worker count per policy.
    const int64_t workers = ChooseWorkers(policy_, *job, harness_.cell());
    job->num_tasks = static_cast<uint32_t>(workers);
    job->task_duration = PredictCompletionTime(*job->mapreduce, workers);
    // Record the *potential* speedup the predictive model chose (Fig. 15
    // plots potential per-job speedups, known at decision time).
    outcomes_.push_back(MapReduceOutcome{
        job->id, job->mapreduce->requested_workers, workers,
        PredictSpeedup(*job->mapreduce, workers)});
  }

  const uint32_t remaining = job->TasksRemaining();
  const Duration decision = AccountAttemptStart(job, remaining);

  // Workers are placed with ordinary optimistic transactions against the
  // shared cell state, exactly like any other Omega scheduler.
  auto claims = std::make_shared<std::vector<TaskClaim>>();
  placer_.PlaceTasks(harness_.cell(), *job, remaining, rng_, claims.get());

  harness_.sim().ScheduleAfter(decision, [this, job, claims] {
    std::vector<TaskClaim> rejected;
    const CommitResult result =
        harness_.cell().Commit(*claims, config_.conflict_mode,
                               config_.commit_mode, &rejected);
    metrics_.RecordTransaction(result.accepted, result.conflicted);
    if (TraceRecorder* trace = harness_.trace()) {
      const SimTime now = harness_.sim().Now();
      if (!claims->empty()) {
        trace->TxnCommit(now, TraceTrack(), job->id, result.accepted,
                         result.conflicted);
      }
      for (const TaskClaim& claim : rejected) {
        trace->ClaimConflict(now, TraceTrack(), job->id, claim.machine,
                             claim.seqnum_at_placement,
                             harness_.cell().machine(claim.machine).seqnum);
      }
    }
    if (result.accepted > 0) {
      if (result.conflicted == 0) {
        StartPlacedTasks(*job, *claims);
      } else {
        StartPlacedTasks(*job, ReconstructAcceptedClaims(*claims, rejected,
                                                         result.accepted));
      }
    }
    CompleteAttempt(job, static_cast<uint32_t>(result.accepted),
                    result.conflicted > 0);
  });
}

MapReduceSimulation::MapReduceSimulation(const ClusterConfig& config,
                                         const SimOptions& options,
                                         const SchedulerConfig& batch_config,
                                         const SchedulerConfig& service_config,
                                         const MapReducePolicyOptions& policy)
    : ClusterSimulation(config, options,
                        [] {
                          GeneratorOptions g;
                          g.generate_mapreduce_specs = true;
                          return g;
                        }()) {
  batch_scheduler_ = std::make_unique<OmegaScheduler>(
      *this, batch_config, rng().Fork(),
      std::make_unique<RandomizedFirstFitPlacer>());
  service_scheduler_ = std::make_unique<OmegaScheduler>(
      *this, service_config, rng().Fork(),
      std::make_unique<RandomizedFirstFitPlacer>());
  SchedulerConfig mr_config = batch_config;
  mr_config.name = "mapreduce";
  mr_scheduler_ = std::make_unique<MapReduceScheduler>(*this, mr_config,
                                                       rng().Fork(), policy);
}

void MapReduceSimulation::SubmitJob(const JobPtr& job) {
  if (job->mapreduce.has_value()) {
    mr_scheduler_->Submit(job);
  } else if (job->type == JobType::kService) {
    service_scheduler_->Submit(job);
  } else {
    batch_scheduler_->Submit(job);
  }
}

}  // namespace omega
