#include "src/mapreduce/perf_model.h"

#include <algorithm>

#include "src/common/logging.h"

namespace omega {

Duration PredictCompletionTime(const MapReduceSpec& spec, int64_t workers) {
  OMEGA_CHECK(workers >= 1);
  // Map phase completes before reducers start (mapper/reducer dependency);
  // each phase runs ceil(activities / workers) waves of its activity
  // duration. Workers beyond the activity count of a phase are idle in it.
  auto waves = [](int64_t activities, int64_t w) {
    if (activities <= 0) {
      return static_cast<int64_t>(0);
    }
    return (activities + w - 1) / w;
  };
  const int64_t map_waves = waves(spec.num_map_activities, workers);
  const int64_t reduce_waves = waves(spec.num_reduce_activities, workers);
  return spec.map_activity_duration * static_cast<double>(map_waves) +
         spec.reduce_activity_duration * static_cast<double>(reduce_waves);
}

int64_t MaxBeneficialWorkers(const MapReduceSpec& spec) {
  return std::max<int64_t>(
      1, std::max(spec.num_map_activities, spec.num_reduce_activities));
}

double PredictSpeedup(const MapReduceSpec& spec, int64_t workers) {
  const int64_t baseline = std::max<int64_t>(1, spec.requested_workers);
  const Duration t0 = PredictCompletionTime(spec, baseline);
  const Duration t1 = PredictCompletionTime(spec, workers);
  if (t1.micros() <= 0) {
    return 1.0;
  }
  return t0 / t1;
}

}  // namespace omega
