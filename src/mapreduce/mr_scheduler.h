// Specialized MapReduce scheduler (§6).
//
// A scheduler that opportunistically uses idle cluster resources to speed up
// MapReduce jobs: it observes overall utilization (possible because Omega
// exposes the entire cell state to every scheduler), predicts the benefit of
// scaling up each job with the performance model, apportions idle resources
// per the configured policy, and places the chosen number of workers through
// ordinary optimistic transactions.
#pragma once

#include <memory>
#include <vector>

#include "src/mapreduce/policy.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/queue_scheduler.h"

namespace omega {

// Per-job decision of the MapReduce scheduler, recorded when the policy
// chooses the worker count: the *potential* speedup of Fig. 15.
struct MapReduceOutcome {
  JobId job = 0;
  int64_t requested_workers = 0;
  // Workers the policy chose (>= requested; placement may still fall short if
  // the cell fills before the job lands).
  int64_t granted_workers = 0;
  double predicted_speedup = 1.0;
};

class MapReduceScheduler final : public QueueScheduler {
 public:
  MapReduceScheduler(ClusterSimulation& harness, SchedulerConfig config, Rng rng,
                     MapReducePolicyOptions policy);

  const std::vector<MapReduceOutcome>& outcomes() const { return outcomes_; }

 protected:
  void BeginAttempt(const JobPtr& job) override;

 private:
  RandomizedFirstFitPlacer placer_;
  Rng rng_;
  MapReducePolicyOptions policy_;
  std::vector<MapReduceOutcome> outcomes_;
};

// Omega simulation with an additional specialized MapReduce scheduler. Batch
// jobs carrying a MapReduceSpec are routed to it; everything else goes to the
// regular batch/service schedulers.
class MapReduceSimulation final : public ClusterSimulation {
 public:
  MapReduceSimulation(const ClusterConfig& config, const SimOptions& options,
                      const SchedulerConfig& batch_config,
                      const SchedulerConfig& service_config,
                      const MapReducePolicyOptions& policy);

  void SubmitJob(const JobPtr& job) override;

  MapReduceScheduler& mr_scheduler() { return *mr_scheduler_; }
  OmegaScheduler& batch_scheduler() { return *batch_scheduler_; }
  OmegaScheduler& service_scheduler() { return *service_scheduler_; }

 private:
  std::unique_ptr<OmegaScheduler> batch_scheduler_;
  std::unique_ptr<OmegaScheduler> service_scheduler_;
  std::unique_ptr<MapReduceScheduler> mr_scheduler_;
};

}  // namespace omega

