// Resource policies for the opportunistic MapReduce scheduler (§6.1).
//
// Three policies from the paper:
//  - max-parallelism: keep adding workers as long as benefit is obtained;
//  - global cap: stop using idle resources once total cluster utilization
//    exceeds a target (60% in the paper's evaluation);
//  - relative job size: at most 4x the workers the job initially requested.
// In each case candidate allocations are run through the predictive model and
// the one with the earliest finish time is chosen.
#pragma once

#include <cstdint>
#include <string>

#include "src/cluster/cell_state.h"
#include "src/workload/job.h"

namespace omega {

enum class MapReducePolicy {
  kNone,             // baseline: exactly the requested workers
  kMaxParallelism,
  kGlobalCap,
  kRelativeJobSize,
};

const char* MapReducePolicyName(MapReducePolicy policy);

struct MapReducePolicyOptions {
  MapReducePolicy policy = MapReducePolicy::kNone;
  // Utilization ceiling for the global-cap policy (§6.2: set at 60%).
  double global_cap_utilization = 0.6;
  // Multiplier for the relative-job-size policy (§6.1: four times).
  double relative_size_multiplier = 4.0;
};

// Chooses the worker count for `job` (which must carry a MapReduceSpec) given
// the current cluster state. Evaluates candidate allocations through the
// predictive model and returns the count with the earliest finish time,
// preferring fewer workers on ties. Never returns less than the requested
// worker count and never more than the cluster can supply from idle
// resources.
int64_t ChooseWorkers(const MapReducePolicyOptions& options, const Job& job,
                      const CellState& cell);

}  // namespace omega

