#include "src/mapreduce/policy.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/mapreduce/perf_model.h"

namespace omega {

const char* MapReducePolicyName(MapReducePolicy policy) {
  switch (policy) {
    case MapReducePolicy::kNone:
      return "none";
    case MapReducePolicy::kMaxParallelism:
      return "max-parallelism";
    case MapReducePolicy::kGlobalCap:
      return "global-cap";
    case MapReducePolicy::kRelativeJobSize:
      return "relative-job-size";
  }
  return "?";
}

namespace {

// Workers that can be built from the cell's idle resources (beyond the
// requested ones, which the job would have claimed anyway).
int64_t IdleWorkerCapacity(const CellState& cell, const Resources& per_worker) {
  const Resources idle = cell.TotalAvailable();
  const double by_cpu =
      per_worker.cpus > 0.0 ? idle.cpus / per_worker.cpus : 1e18;
  const double by_mem =
      per_worker.mem_gb > 0.0 ? idle.mem_gb / per_worker.mem_gb : 1e18;
  return static_cast<int64_t>(std::max(0.0, std::floor(std::min(by_cpu, by_mem))));
}

}  // namespace

int64_t ChooseWorkers(const MapReducePolicyOptions& options, const Job& job,
                      const CellState& cell) {
  OMEGA_CHECK(job.mapreduce.has_value());
  const MapReduceSpec& spec = *job.mapreduce;
  const int64_t requested = std::max<int64_t>(1, spec.requested_workers);
  if (options.policy == MapReducePolicy::kNone) {
    return requested;
  }

  // Upper bound on extra workers under the policy.
  int64_t cap = MaxBeneficialWorkers(spec);
  switch (options.policy) {
    case MapReducePolicy::kMaxParallelism:
      break;  // only bounded by benefit and idle resources
    case MapReducePolicy::kGlobalCap: {
      // Opportunistic resources are only used while total utilization stays
      // below the target; above it, the job gets what it asked for.
      if (cell.MaxUtilization() >= options.global_cap_utilization) {
        return requested;
      }
      // Allow growth only up to the utilization ceiling.
      const Resources total = cell.TotalCapacity();
      const Resources allocated = cell.TotalAllocated();
      const double cpu_room =
          options.global_cap_utilization * total.cpus - allocated.cpus;
      const double mem_room =
          options.global_cap_utilization * total.mem_gb - allocated.mem_gb;
      const double by_cpu = job.task_resources.cpus > 0.0
                                ? cpu_room / job.task_resources.cpus
                                : 1e18;
      const double by_mem = job.task_resources.mem_gb > 0.0
                                ? mem_room / job.task_resources.mem_gb
                                : 1e18;
      const auto room_workers = static_cast<int64_t>(
          std::max(0.0, std::floor(std::min(by_cpu, by_mem))));
      cap = std::min(cap, requested + room_workers);
      break;
    }
    case MapReducePolicy::kRelativeJobSize:
      cap = std::min(cap, static_cast<int64_t>(std::llround(
                              options.relative_size_multiplier *
                              static_cast<double>(requested))));
      break;
    case MapReducePolicy::kNone:
      break;
  }
  cap = std::min(cap, requested + IdleWorkerCapacity(cell, job.task_resources));
  cap = std::max(cap, requested);

  // Run the candidate allocations through the predictive model (§6.1) and
  // pick the earliest finish; prefer fewer workers on ties. Completion time
  // is monotone non-increasing in workers but plateaus between wave counts,
  // so scan geometrically then refine around the best.
  int64_t best_workers = requested;
  Duration best_time = PredictCompletionTime(spec, requested);
  for (int64_t w = requested; w <= cap;
       w = std::max(w + 1, static_cast<int64_t>(
                               std::llround(static_cast<double>(w) * 1.25)))) {
    const Duration t = PredictCompletionTime(spec, w);
    if (t < best_time) {
      best_time = t;
      best_workers = w;
    }
  }
  const Duration cap_time = PredictCompletionTime(spec, cap);
  if (cap_time < best_time) {
    best_time = cap_time;
    best_workers = cap;
  }
  // Shrink to the smallest worker count achieving the best time (avoids
  // hoarding workers that only idle).
  int64_t lo = requested;
  int64_t hi = best_workers;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (PredictCompletionTime(spec, mid) <= best_time) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace omega
