// Two-level scheduling modeled on Mesos (§3.3, §4.2).
//
// A centralized resource allocator dynamically partitions the cluster by
// making resource offers to scheduler frameworks. Only one framework sees a
// given resource at a time — it effectively holds a lock on the offered
// resources for the duration of its scheduling attempt, so concurrency
// control is pessimistic. The allocator aims at dominant resource fairness
// (DRF) by offering all available resources to the framework furthest below
// its dominant share.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <map>
#include <vector>

#include "src/common/deterministic_reduce.h"
#include "src/mesos/offer.h"
#include "src/scheduler/cluster_simulation.h"
#include "src/scheduler/config.h"
#include "src/scheduler/metrics.h"

namespace omega {

class MesosSimulation;

// A scheduler framework: receives offers, schedules its queued jobs onto the
// offered resources, and returns what it does not use.
//
// With `config.commit_mode == kAllOrNothing` the framework gang-schedules by
// *hoarding* (§3.3): accepted resources are held idle until the whole job has
// been placed, only then do its tasks start. Hoarding wastes the held
// resources in the meantime and can deadlock against another hoarding
// framework; the attempt limit eventually breaks the deadlock by abandoning
// the job and releasing its hoard.
class MesosFramework {
 public:
  MesosFramework(MesosSimulation& sim, SchedulerConfig config, JobType type);

  void Submit(const JobPtr& job);

  // Allocator delivers an offer; the framework starts a scheduling attempt
  // for its head job. Must only be called when IsPending().
  void HandleOffer(ResourceOffer offer);

  // Pending = has queued work and is able to receive an offer.
  bool IsPending() const { return !busy_ && !queue_.empty(); }
  bool busy() const { return busy_; }
  JobType type() const { return type_; }
  const std::string& name() const { return config_.name; }
  SchedulerMetrics& metrics() { return metrics_; }
  const SchedulerMetrics& metrics() const { return metrics_; }
  size_t QueueDepth() const { return queue_.size(); }

  // Resources currently hoarded for incomplete gang-scheduled jobs.
  Resources HoardedResources() const;

 private:
  void FinishAttempt(const JobPtr& job, ResourceOffer offer,
                     std::vector<TaskClaim> claims);
  void ReleaseHoard(const JobPtr& job);
  // Trace track for this framework, registered lazily under config_.name.
  uint16_t TraceTrack();

  MesosSimulation& sim_;
  SchedulerConfig config_;
  JobType type_;
  SchedulerMetrics metrics_;
  std::deque<JobPtr> queue_;
  bool busy_ = false;
  int32_t trace_track_ = -1;  // lazily registered; -1 = not yet
  // Gang scheduling by hoarding: claims held per incomplete job. Ordered
  // by JobId so HoardedResources() sums in a deterministic order (the
  // floating-point total feeds reported metrics; see det-unordered-iter
  // in DESIGN.md §9).
  std::map<JobId, std::vector<TaskClaim>> hoards_;
};

// The centralized resource allocator. Decision time is modeled as 1 ms (§4.2:
// "The DRF algorithm ... is quite fast"); successive allocation rounds are
// additionally paced by `min_round_interval`, matching Mesos's batched
// allocation cycle (and bounding simulation cost on large cells).
class MesosAllocator {
 public:
  explicit MesosAllocator(MesosSimulation& sim,
                          Duration decision_time = Duration::FromMillis(1),
                          Duration min_round_interval = Duration::FromMillis(100));

  void RegisterFramework(MesosFramework* framework);

  // Wakes the allocator: if any framework is pending and unoffered resources
  // exist, schedule an allocation round.
  void Trigger();

  // Framework bookkeeping for DRF and offer locking.
  void OnResourcesAllocated(const MesosFramework* framework, const Resources& r);
  void OnResourcesFreed(const MesosFramework* framework, const Resources& r);
  void ReturnOffer(const ResourceOffer& offer);

  // Unlocks the offered share consumed by committed claims (the machine's
  // availability already dropped by the same amount, so leaving it in
  // `offered_` would double-count it as locked forever).
  void OnOfferResourcesUsed(const std::vector<TaskClaim>& claims);

  // Offered (locked) resources on `machine`.
  const Resources& OfferedOn(MachineId machine) const { return offered_[machine]; }
  Resources TotalOffered() const;
  double DominantShare(const MesosFramework* framework) const;

 private:
  void RunAllocationRound();
  // DRF argmin: the pending framework with the lowest dominant share,
  // earliest registration order on ties. Scans sequentially without an
  // intra-trial pool; with one, shards across it via DeterministicReducer
  // (negated-share scores, so the ordered strictly-greater merge reproduces
  // the sequential scan bit for bit — diffed in parallel_reduce_test).
  MesosFramework* PickFramework();

  MesosSimulation& sim_;
  Duration decision_time_;
  Duration min_round_interval_;
  std::vector<MesosFramework*> frameworks_;
  std::vector<Resources> allocated_;  // per framework, for DRF
  std::vector<Resources> offered_;    // per machine, locked in offers
  DeterministicReducer reducer_;
  bool round_scheduled_ = false;
  SimTime last_round_;
};

class MesosSimulation final : public ClusterSimulation {
 public:
  MesosSimulation(const ClusterConfig& config, const SimOptions& options,
                  const SchedulerConfig& batch_config,
                  const SchedulerConfig& service_config);

  void SubmitJob(const JobPtr& job) override;

  MesosFramework& batch_framework() { return *batch_; }
  MesosFramework& service_framework() { return *service_; }
  MesosAllocator& allocator() { return allocator_; }

  int64_t TotalJobsAbandoned() const {
    return batch_->metrics().JobsAbandonedTotal() +
           service_->metrics().JobsAbandonedTotal();
  }

 protected:
  void OnTaskFreed() override { allocator_.Trigger(); }

 private:
  friend class MesosFramework;
  friend class MesosAllocator;

  MesosAllocator allocator_;
  std::unique_ptr<MesosFramework> batch_;
  std::unique_ptr<MesosFramework> service_;
};

}  // namespace omega

