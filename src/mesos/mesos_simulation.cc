#include "src/mesos/mesos_simulation.h"

#include <algorithm>

#include "src/common/logging.h"

namespace omega {

// ---------------------------------------------------------------------------
// MesosFramework

MesosFramework::MesosFramework(MesosSimulation& sim, SchedulerConfig config,
                               JobType type)
    : sim_(sim), config_(std::move(config)), type_(type) {}

void MesosFramework::Submit(const JobPtr& job) {
  queue_.push_back(job);
  sim_.allocator().Trigger();
}

uint16_t MesosFramework::TraceTrack() {
  if (trace_track_ < 0) {
    TraceRecorder* trace = sim_.trace();
    // The cell's trace scope keeps same-named frameworks in different cells
    // on distinct Perfetto tracks (empty for single-cell runs).
    trace_track_ =
        trace ? trace->RegisterTrack(sim_.trace_scope() + config_.name) : 0;
  }
  return static_cast<uint16_t>(trace_track_);
}

void MesosFramework::HandleOffer(ResourceOffer offer) {
  OMEGA_CHECK(!busy_);
  OMEGA_CHECK(!queue_.empty());
  JobPtr job = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;

  const SimTime now = sim_.sim().Now();
  if (!job->first_attempt_time.has_value()) {
    job->first_attempt_time = now;
    metrics_.RecordJobWait(job->type, now - job->submit_time);
  }
  ++job->scheduling_attempts;

  const uint32_t remaining = job->TasksRemaining();
  Duration decision = config_.TimesFor(job->type).ForTasks(remaining);
  if (decision.micros() <= 0) {
    decision = Duration(1);
  }
  metrics_.AddBusyInterval(now, now + decision);
  if (TraceRecorder* trace = sim_.trace()) {
    trace->AttemptBegin(now, TraceTrack(), job->id, job->scheduling_attempts,
                        remaining);
  }

  // The framework only sees the offered resources — not the whole cell
  // ("restricted visibility", §3.3/§3.4). Place tasks greedily onto offer
  // slices; the claims are guaranteed to commit because the resources are
  // locked for this framework while the offer is outstanding.
  std::vector<TaskClaim> claims;
  claims.reserve(std::min<uint32_t>(remaining, 1024));
  uint32_t placed = 0;
  for (OfferSlice& slice : offer.slices) {
    while (placed < remaining && job->task_resources.FitsIn(slice.resources)) {
      slice.resources -= job->task_resources;
      claims.push_back(TaskClaim{slice.machine, job->task_resources, 0});
      ++placed;
    }
    if (placed == remaining) {
      break;
    }
  }

  sim_.sim().ScheduleAfter(decision, [this, job, offer = std::move(offer),
                                      claims = std::move(claims)]() mutable {
    FinishAttempt(job, std::move(offer), std::move(claims));
  });
}

void MesosFramework::FinishAttempt(const JobPtr& job, ResourceOffer offer,
                                   std::vector<TaskClaim> claims) {
  // Commit the placed tasks. Offer-locked resources commit cleanly under
  // pessimistic concurrency, with one exception: a machine that failed while
  // the offer was outstanding. The downtime reservation consumes the offered
  // headroom, so the tasks placed there reject — they are lost, exactly like
  // tasks launched onto a dead slave in the real system. Any rejection on a
  // healthy machine would be a genuine offer-lifecycle bug.
  std::vector<TaskClaim> rejected;
  const CommitResult result =
      sim_.cell().Commit(claims, ConflictMode::kFineGrained,
                         CommitMode::kIncremental, &rejected);
  for (const TaskClaim& loss : rejected) {
    OMEGA_CHECK(sim_.MachineIsDown(loss.machine))
        << "offer-locked resources must commit cleanly";
  }
  if (!claims.empty()) {
    // The locked share of a failed machine is spent either way, so debit the
    // offer ledger for the full claim set before dropping the losses.
    sim_.allocator().OnOfferResourcesUsed(claims);
    if (!rejected.empty()) {
      claims = ReconstructAcceptedClaims(claims, rejected, result.accepted);
    }
  }
  metrics_.RecordTransaction(result.accepted, 0);
  if (TraceRecorder* trace = sim_.trace()) {
    const SimTime when = sim_.sim().Now();
    if (!claims.empty()) {
      trace->TxnCommit(when, TraceTrack(), job->id, result.accepted, 0);
    }
    trace->AttemptEnd(when, TraceTrack(), job->id, result.accepted,
                      /*had_conflict=*/false);
  }

  Resources used;
  for (const TaskClaim& c : claims) {
    used += c.resources;
  }
  const bool gang_by_hoarding = config_.commit_mode == CommitMode::kAllOrNothing;
  const bool completes_job =
      job->TasksRemaining() == static_cast<uint32_t>(result.accepted);
  if (!claims.empty()) {
    sim_.allocator().OnResourcesAllocated(this, used);
    if (gang_by_hoarding && !completes_job) {
      // Hoard: the resources stay allocated (and thus idle) until the whole
      // job can start together.
      auto& hoard = hoards_[job->id];
      hoard.insert(hoard.end(), claims.begin(), claims.end());
    } else {
      if (gang_by_hoarding) {
        // The gang is complete: release nothing, start the hoarded tasks
        // alongside this final batch of claims.
        auto it = hoards_.find(job->id);
        if (it != hoards_.end()) {
          claims.insert(claims.end(), it->second.begin(), it->second.end());
          hoards_.erase(it);
        }
      }
      sim_.StartTasks(*job, claims, [this](const TaskClaim& claim) {
        sim_.allocator().OnResourcesFreed(this, claim.resources);
      });
    }
  }

  // Return the unused remainder of the offer to the allocator (§4.2:
  // "Resources not used at the end of scheduling a job are returned").
  // `offer.slices` was decremented in place while placing tasks, so it now
  // holds exactly the unused portions.
  sim_.allocator().ReturnOffer(offer);

  job->tasks_scheduled += static_cast<uint32_t>(result.accepted);
  busy_ = false;

  const SimTime now = sim_.sim().Now();
  if (job->FullyScheduled()) {
    metrics_.RecordJobScheduled(now, job->type, job->scheduling_attempts,
                                job->conflicted_attempts);
    sim_.OnJobFullyScheduled(job);
  } else if (job->scheduling_attempts >= config_.max_attempts) {
    job->abandoned = true;
    metrics_.RecordJobAbandoned(job->type);
    ReleaseHoard(job);  // break any hoarding deadlock
    sim_.OnJobAbandoned(job);
  } else {
    // Keep trying: the job returns to the head of the queue and waits for the
    // next offer (§4.2: "It nonetheless keeps trying").
    queue_.push_front(job);
  }
  sim_.allocator().Trigger();
}

void MesosFramework::ReleaseHoard(const JobPtr& job) {
  auto it = hoards_.find(job->id);
  if (it == hoards_.end()) {
    return;
  }
  for (const TaskClaim& claim : it->second) {
    sim_.cell().Free(claim.machine, claim.resources);
    sim_.allocator().OnResourcesFreed(this, claim.resources);
  }
  // The placed-task count no longer reflects running tasks; reset so the
  // abandoned job's accounting stays consistent.
  job->tasks_scheduled -= static_cast<uint32_t>(it->second.size());
  hoards_.erase(it);
}

Resources MesosFramework::HoardedResources() const {
  Resources total;
  for (const auto& [id, claims] : hoards_) {
    for (const TaskClaim& claim : claims) {
      total += claim.resources;
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// MesosAllocator

MesosAllocator::MesosAllocator(MesosSimulation& sim, Duration decision_time,
                               Duration min_round_interval)
    : sim_(sim),
      decision_time_(decision_time),
      min_round_interval_(min_round_interval) {}

void MesosAllocator::RegisterFramework(MesosFramework* framework) {
  frameworks_.push_back(framework);
  allocated_.push_back(Resources::Zero());
  if (offered_.empty()) {
    offered_.assign(sim_.cell().NumMachines(), Resources::Zero());
  }
}

double MesosAllocator::DominantShare(const MesosFramework* framework) const {
  for (size_t i = 0; i < frameworks_.size(); ++i) {
    if (frameworks_[i] == framework) {
      return allocated_[i].DominantShare(sim_.cell().TotalCapacity());
    }
  }
  return 0.0;
}

MesosFramework* MesosAllocator::PickFramework() {
  const size_t n = frameworks_.size();
  const Resources capacity = sim_.cell().TotalCapacity();
  // Reference scan restricted to [begin, end): negated dominant share as the
  // score turns the DRF minimum into ArgBest's "strictly greater wins" shape,
  // with ties breaking to the earliest registered framework either way. Each
  // index reads only its own framework's queue state and allocated_ slot, so
  // shards may evaluate concurrently.
  auto scan = [&](size_t begin, size_t end) {
    DeterministicReducer::Best local;
    for (size_t i = begin; i < end; ++i) {
      if (!frameworks_[i]->IsPending()) {
        continue;
      }
      const double score = -allocated_[i].DominantShare(capacity);
      if (local.index == kReduceNotFound || score > local.score) {
        local.index = i;
        local.score = score;
      }
    }
    return local;
  };
  WorkerPool* pool = sim_.cell().intra_trial_pool();
  const DeterministicReducer::Best best =
      pool == nullptr
          ? scan(0, n)
          : reducer_.ArgBest(
                pool, n, ReduceGrain(n, pool->concurrency(), /*min_grain=*/1),
                scan);
  return best.index == kReduceNotFound ? nullptr : frameworks_[best.index];
}

void MesosAllocator::Trigger() {
  if (round_scheduled_) {
    return;
  }
  if (PickFramework() == nullptr) {
    return;
  }
  round_scheduled_ = true;
  const SimTime now = sim_.sim().Now();
  SimTime when = now + decision_time_;
  const SimTime paced = last_round_ + min_round_interval_;
  if (paced > when) {
    when = paced;
  }
  sim_.sim().ScheduleAt(when, [this] {
    round_scheduled_ = false;
    last_round_ = sim_.sim().Now();
    RunAllocationRound();
  });
}

void MesosAllocator::RunAllocationRound() {
  MesosFramework* framework = PickFramework();
  if (framework == nullptr) {
    return;
  }
  // Build the offer: every machine's currently unused and unoffered
  // resources. The simple allocator offers everything available (§3.3 fn 3).
  ResourceOffer offer;
  const CellState& cell = sim_.cell();
  for (MachineId m = 0; m < cell.NumMachines(); ++m) {
    const Resources available =
        (cell.machine(m).Available() - offered_[m]).ClampNonNegative();
    if (available.IsZero()) {
      continue;
    }
    offer.slices.push_back(OfferSlice{m, available});
    offered_[m] += available;
  }
  if (offer.Empty()) {
    // Nothing to offer right now; a task finish or offer return re-triggers.
    return;
  }
  framework->HandleOffer(std::move(offer));
  // Other frameworks may still be pending; try to offer whatever remains.
  Trigger();
}

void MesosAllocator::OnResourcesAllocated(const MesosFramework* framework,
                                          const Resources& r) {
  for (size_t i = 0; i < frameworks_.size(); ++i) {
    if (frameworks_[i] == framework) {
      allocated_[i] += r;
      return;
    }
  }
  OMEGA_CHECK(false) << "unregistered framework";
}

void MesosAllocator::OnResourcesFreed(const MesosFramework* framework,
                                      const Resources& r) {
  for (size_t i = 0; i < frameworks_.size(); ++i) {
    if (frameworks_[i] == framework) {
      allocated_[i] -= r;
      allocated_[i] = allocated_[i].ClampNonNegative();
      Trigger();
      return;
    }
  }
  OMEGA_CHECK(false) << "unregistered framework";
}

void MesosAllocator::OnOfferResourcesUsed(const std::vector<TaskClaim>& claims) {
  for (const TaskClaim& claim : claims) {
    offered_[claim.machine] -= claim.resources;
    offered_[claim.machine] = offered_[claim.machine].ClampNonNegative();
  }
}

void MesosAllocator::ReturnOffer(const ResourceOffer& offer) {
  for (const OfferSlice& slice : offer.slices) {
    offered_[slice.machine] -= slice.resources;
    offered_[slice.machine] = offered_[slice.machine].ClampNonNegative();
  }
}

Resources MesosAllocator::TotalOffered() const {
  Resources sum;
  for (const Resources& r : offered_) {
    sum += r;
  }
  return sum;
}

// ---------------------------------------------------------------------------
// MesosSimulation

MesosSimulation::MesosSimulation(const ClusterConfig& config,
                                 const SimOptions& options,
                                 const SchedulerConfig& batch_config,
                                 const SchedulerConfig& service_config)
    : ClusterSimulation(config, options), allocator_(*this) {
  batch_ = std::make_unique<MesosFramework>(*this, batch_config, JobType::kBatch);
  service_ =
      std::make_unique<MesosFramework>(*this, service_config, JobType::kService);
  allocator_.RegisterFramework(batch_.get());
  allocator_.RegisterFramework(service_.get());
}

void MesosSimulation::SubmitJob(const JobPtr& job) {
  if (job->type == JobType::kBatch) {
    batch_->Submit(job);
  } else {
    service_->Submit(job);
  }
}

}  // namespace omega
