// Resource offers (two-level scheduling, §3.3).
#pragma once

#include <vector>

#include "src/cluster/machine.h"
#include "src/cluster/resources.h"

namespace omega {

// A slice of one machine's currently unused resources, locked for the
// receiving framework while the offer is outstanding.
struct OfferSlice {
  MachineId machine = kInvalidMachineId;
  Resources resources;
};

// An offer: the set of per-machine available resources handed to one
// framework. The Mesos "simple allocator" offers *all* available resources at
// once and does not limit what a framework may accept (§3.3, footnote 3).
struct ResourceOffer {
  std::vector<OfferSlice> slices;

  Resources Total() const {
    Resources sum;
    for (const OfferSlice& s : slices) {
      sum += s.resources;
    }
    return sum;
  }

  bool Empty() const { return slices.empty(); }
};

}  // namespace omega

