// Task placement algorithms.
//
// The lightweight simulator uses randomized first fit (Table 2); the
// high-fidelity simulator plugs in a constraint-aware scoring algorithm via
// the same interface (src/hifi/scoring_placer.h).
#pragma once

#include <algorithm>
#include <vector>

#include "src/cluster/cell_state.h"
#include "src/common/deterministic_reduce.h"
#include "src/common/random.h"
#include "src/workload/job.h"

namespace omega {

// True if `machine` satisfies every placement constraint of `job`.
bool MachineSatisfiesConstraints(const Machine& machine, const Job& job);

// Interface: place up to `count` tasks of `job` against the current state of
// `cell`, appending one TaskClaim per placed task (with the machine's current
// sequence number captured for conflict detection). Placements must stack:
// claims produced within one call count against machine availability for
// subsequent tasks of the same call. Returns the number of tasks placed.
class TaskPlacer {
 public:
  virtual ~TaskPlacer() = default;

  virtual uint32_t PlaceTasks(const CellState& cell, const Job& job, uint32_t count,
                              Rng& rng, std::vector<TaskClaim>* claims) = 0;
};

// A contiguous range of machine ids a placer may use. The default (empty)
// range means "the whole cell"; statically partitioned schedulers restrict
// their placer to their partition (§3.2).
struct MachineRange {
  MachineId begin = 0;
  MachineId end = 0;  // exclusive; begin == end means "whole cell"

  bool WholeCell() const { return begin == end; }
  uint32_t SizeIn(uint32_t num_machines) const {
    return WholeCell() ? num_machines : end - begin;
  }
  MachineId Nth(uint32_t i) const { return begin + i; }
};

// Helper shared by placers: tracks pending same-transaction claims per
// machine so stacked placements see each other. Storage is a dense
// epoch-stamped per-machine array: On() — called once per placement probe,
// the placer hot path — is an array read instead of a hash lookup, and
// Reset() starts a new transaction in O(1) by bumping the epoch. Placers
// hold one as persistent scratch across calls; a default-constructed
// instance works standalone (the arrays grow on demand).
class PendingClaims {
 public:
  // Starts a new transaction, forgetting all pending claims.
  void Reset(uint32_t num_machines) {
    ++epoch_;
    if (epoch_ == 0) {  // epoch wrapped: stale stamps could collide
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
    if (stamp_.size() < num_machines) {
      stamp_.resize(num_machines, 0u);
      amount_.resize(num_machines);
    }
  }

  void Add(MachineId machine, const Resources& res) {
    if (machine >= stamp_.size()) {
      stamp_.resize(machine + 1, 0u);
      amount_.resize(machine + 1);
    }
    if (stamp_[machine] != epoch_) {
      stamp_[machine] = epoch_;
      amount_[machine] = Resources::Zero();
    }
    amount_[machine] += res;
  }

  Resources On(MachineId machine) const {
    return machine < stamp_.size() && stamp_[machine] == epoch_
               ? amount_[machine]
               : Resources::Zero();
  }

 private:
  std::vector<Resources> amount_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 1;
};

// Dense epoch-stamped set of small non-negative int keys (failure domains,
// attribute ids): the same scratch pattern as PendingClaims, replacing a
// hot-path unordered_set with an array probe. Reset() is O(1); the arrays
// grow on demand; negative keys are never stored and never contained.
// Contains() is const and touches no mutable state, so concurrent reads from
// pool workers are safe.
class EpochFlagSet {
 public:
  void Reset() {
    ++epoch_;
    if (epoch_ == 0) {  // epoch wrapped: stale stamps could collide
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  void Insert(int32_t key) {
    if (key < 0) {
      return;
    }
    const auto k = static_cast<size_t>(key);
    if (k >= stamp_.size()) {
      stamp_.resize(k + 1, 0u);
    }
    stamp_[k] = epoch_;
  }

  bool Contains(int32_t key) const {
    return key >= 0 && static_cast<size_t>(key) < stamp_.size() &&
           stamp_[static_cast<size_t>(key)] == epoch_;
  }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 1;
};

// Randomized first fit: probe machines uniformly at random; fall back to a
// linear scan from a random offset so that a fit is found whenever one exists.
// Ignores placement constraints (lightweight simulator semantics, Table 2).
class RandomizedFirstFitPlacer final : public TaskPlacer {
 public:
  // `max_random_probes` bounds the random phase before the linear fallback.
  explicit RandomizedFirstFitPlacer(uint32_t max_random_probes = 32,
                                    bool respect_constraints = false,
                                    MachineRange range = {})
      : max_random_probes_(max_random_probes),
        respect_constraints_(respect_constraints),
        range_(range) {}

  uint32_t PlaceTasks(const CellState& cell, const Job& job, uint32_t count,
                      Rng& rng, std::vector<TaskClaim>* claims) override;

 private:
  uint32_t max_random_probes_;
  bool respect_constraints_;
  MachineRange range_;
  PendingClaims pending_scratch_;
  // Sharded phase-2 sweep scratch, engaged when the cell carries an
  // intra-trial worker pool (DESIGN.md §12).
  DeterministicReducer reducer_;
};

}  // namespace omega

