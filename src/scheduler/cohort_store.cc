#include "src/scheduler/cohort_store.h"

#include <utility>

namespace omega {

CohortStore::CohortId CohortStore::Create(
    JobId job, const Resources& task_resources,
    std::function<void(const TaskClaim&)> on_task_end) {
  uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cohort.job = job;
  s.cohort.task_resources = task_resources;
  s.cohort.end_event = kInvalidEventId;
  s.cohort.on_task_end = std::move(on_task_end);
  s.live = true;
  s.next_free = kNoSlot;
  ++live_;
  // Slot+1 keeps 0 free for kNoCohort; the generation tag invalidates ids
  // after slot reuse.
  return (static_cast<uint64_t>(s.generation) << 32) |
         static_cast<uint64_t>(slot + 1);
}

void CohortStore::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.cohort.on_task_end = nullptr;
  s.cohort.member_claims.clear();
  s.cohort.member_tasks.clear();
  s.live = false;
  ++s.generation;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

Cohort CohortStore::Take(CohortId id) {
  const uint32_t slot = CheckedSlot(id);
  Cohort out = std::move(slots_[slot].cohort);
  ReleaseSlot(slot);
  return out;
}

EventId CohortStore::RemoveMember(CohortId id, uint64_t task_id) {
  const uint32_t slot = CheckedSlot(id);
  Cohort& c = slots_[slot].cohort;
  OMEGA_CHECK(!c.member_tasks.empty())
      << "cohort member eviction requires tracked members";
  size_t pos = 0;
  while (pos < c.member_tasks.size() && c.member_tasks[pos] != task_id) {
    ++pos;
  }
  OMEGA_CHECK(pos < c.member_tasks.size())
      << "task " << task_id << " is not a member of cohort " << id;
  c.member_claims.erase(c.member_claims.begin() + static_cast<int64_t>(pos));
  c.member_tasks.erase(c.member_tasks.begin() + static_cast<int64_t>(pos));
  if (!c.member_claims.empty()) {
    return kInvalidEventId;
  }
  const EventId end_event = c.end_event;
  ReleaseSlot(slot);
  return end_event;
}

}  // namespace omega
