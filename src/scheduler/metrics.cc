#include "src/scheduler/metrics.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"

namespace omega {

SchedulerMetrics::SchedulerMetrics(Duration day_length) : day_length_(day_length) {
  OMEGA_CHECK(day_length.micros() > 0);
}

size_t SchedulerMetrics::DayIndex(SimTime t) const {
  return static_cast<size_t>(std::max<int64_t>(0, t.micros()) / day_length_.micros());
}

void SchedulerMetrics::EnsureDay(size_t day) {
  if (busy_secs_per_day_.size() <= day) {
    busy_secs_per_day_.resize(day + 1, 0.0);
    conflict_retry_busy_secs_per_day_.resize(day + 1, 0.0);
    conflicts_per_day_.resize(day + 1, 0.0);
    scheduled_jobs_per_day_.resize(day + 1, 0.0);
  }
}

void SchedulerMetrics::AddBusyInterval(SimTime start, SimTime end,
                                       bool conflict_retry) {
  OMEGA_CHECK(end >= start);
  total_busy_ = total_busy_ + (end - start);
  ++total_attempts_;
  // Split the interval across day boundaries.
  SimTime cursor = start;
  while (cursor < end) {
    const size_t day = DayIndex(cursor);
    const SimTime day_end = SimTime(static_cast<int64_t>(day + 1) * day_length_.micros());
    const SimTime seg_end = std::min(day_end, end);
    EnsureDay(day);
    const double secs = (seg_end - cursor).ToSeconds();
    busy_secs_per_day_[day] += secs;
    if (conflict_retry) {
      conflict_retry_busy_secs_per_day_[day] += secs;
    }
    cursor = seg_end;
  }
}

void SchedulerMetrics::RecordJobWait(JobType type, Duration wait) {
  if (type == JobType::kBatch) {
    wait_secs_batch_.push_back(wait.ToSeconds());
  } else {
    wait_secs_service_.push_back(wait.ToSeconds());
  }
}

void SchedulerMetrics::RecordJobScheduled(SimTime when, JobType type,
                                          uint32_t attempts,
                                          uint32_t conflicted_attempts) {
  attempts_per_job_.Add(static_cast<double>(attempts));
  const size_t day = DayIndex(when);
  EnsureDay(day);
  conflicts_per_day_[day] += conflicted_attempts;
  scheduled_jobs_per_day_[day] += 1.0;
  total_conflicted_attempts_ += conflicted_attempts;
  if (type == JobType::kBatch) {
    ++jobs_scheduled_batch_;
  } else {
    ++jobs_scheduled_service_;
  }
}

void SchedulerMetrics::RecordJobAbandoned(JobType type) {
  if (type == JobType::kBatch) {
    ++jobs_abandoned_batch_;
  } else {
    ++jobs_abandoned_service_;
  }
}

void SchedulerMetrics::RecordTransaction(int accepted_tasks, int conflicted_tasks) {
  tasks_accepted_ += accepted_tasks;
  tasks_conflicted_ += conflicted_tasks;
}

void SchedulerMetrics::RecordPreemption(int tasks_placed, int victims_evicted) {
  tasks_placed_by_preemption_ += tasks_placed;
  preemption_victims_ += victims_evicted;
}

DailySummary SchedulerMetrics::Summarize(const std::vector<double>& values) {
  DailySummary s;
  if (values.empty()) {
    return s;
  }
  s.median = Median(values);
  s.mad = MedianAbsoluteDeviation(values);
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  return s;
}

std::vector<double> SchedulerMetrics::DailyBusyness(SimTime end) const {
  const size_t days = std::max<size_t>(
      1, static_cast<size_t>((end.micros() + day_length_.micros() - 1) /
                             day_length_.micros()));
  std::vector<double> out;
  for (size_t day = 0; day < days; ++day) {
    const double busy =
        day < busy_secs_per_day_.size() ? busy_secs_per_day_[day] : 0.0;
    // The last day may be partial: normalize by the simulated span within it.
    const int64_t day_start = static_cast<int64_t>(day) * day_length_.micros();
    const int64_t span =
        std::min(day_length_.micros(), std::max<int64_t>(1, end.micros() - day_start));
    const double fraction = busy / (static_cast<double>(span) / 1e6);
    if (fraction > 1.0 && !clamp_warned_) {
      // Clamping hides double-counted busy intervals; surface the first one.
      // (An attempt running past the horizon legitimately clamps the final
      // day — BusynessClampEvents() lets callers tell the cases apart.)
      clamp_warned_ = true;
      OMEGA_LOG(kWarning) << "daily busyness clamped: day " << day << " busy "
                          << busy << "s exceeds span "
                          << static_cast<double>(span) / 1e6 << "s";
    }
    out.push_back(std::min(1.0, fraction));
  }
  return out;
}

int64_t SchedulerMetrics::BusynessClampEvents(SimTime end) const {
  const size_t days = std::max<size_t>(
      1, static_cast<size_t>((end.micros() + day_length_.micros() - 1) /
                             day_length_.micros()));
  int64_t clamps = 0;
  for (size_t day = 0; day < days && day < busy_secs_per_day_.size(); ++day) {
    const int64_t day_start = static_cast<int64_t>(day) * day_length_.micros();
    const int64_t span =
        std::min(day_length_.micros(), std::max<int64_t>(1, end.micros() - day_start));
    if (busy_secs_per_day_[day] > static_cast<double>(span) / 1e6) {
      ++clamps;
    }
  }
  return clamps;
}

std::vector<double> SchedulerMetrics::DailyConflictFraction(SimTime end) const {
  const size_t full_days = std::max<size_t>(
      1, static_cast<size_t>((end.micros() + day_length_.micros() - 1) /
                             day_length_.micros()));
  std::vector<double> out;
  for (size_t day = 0; day < full_days; ++day) {
    const double conflicts =
        day < conflicts_per_day_.size() ? conflicts_per_day_[day] : 0.0;
    const double scheduled =
        day < scheduled_jobs_per_day_.size() ? scheduled_jobs_per_day_[day] : 0.0;
    out.push_back(scheduled > 0.0 ? conflicts / scheduled : 0.0);
  }
  return out;
}

DailySummary SchedulerMetrics::Busyness(SimTime end) const {
  return Summarize(DailyBusyness(end));
}

DailySummary SchedulerMetrics::BusynessNoConflict(SimTime end) const {
  const size_t full_days = std::max<size_t>(
      1, static_cast<size_t>((end.micros() + day_length_.micros() - 1) /
                             day_length_.micros()));
  std::vector<double> values;
  for (size_t day = 0; day < full_days; ++day) {
    const double busy =
        day < busy_secs_per_day_.size() ? busy_secs_per_day_[day] : 0.0;
    const double retry = day < conflict_retry_busy_secs_per_day_.size()
                             ? conflict_retry_busy_secs_per_day_[day]
                             : 0.0;
    const int64_t day_start = static_cast<int64_t>(day) * day_length_.micros();
    const int64_t span =
        std::min(day_length_.micros(), std::max<int64_t>(1, end.micros() - day_start));
    values.push_back(std::min(
        1.0, std::max(0.0, busy - retry) / (static_cast<double>(span) / 1e6)));
  }
  return Summarize(values);
}

DailySummary SchedulerMetrics::ConflictFraction(SimTime end) const {
  return Summarize(DailyConflictFraction(end));
}

double SchedulerMetrics::MeanWait(JobType type) const {
  const auto& waits = type == JobType::kBatch ? wait_secs_batch_ : wait_secs_service_;
  if (waits.empty()) {
    // No jobs waited: "no data", not a zero-second wait (see stats.h).
    // Aggregators that weight by JobsWaited() must guard the count.
    return std::numeric_limits<double>::quiet_NaN();
  }
  double sum = 0.0;
  for (double w : waits) {
    sum += w;
  }
  return sum / static_cast<double>(waits.size());
}

double SchedulerMetrics::WaitPercentile(JobType type, double q) const {
  const auto& waits = type == JobType::kBatch ? wait_secs_batch_ : wait_secs_service_;
  return Percentile(waits, q);
}

int64_t SchedulerMetrics::JobsWaited(JobType type) const {
  return type == JobType::kBatch ? static_cast<int64_t>(wait_secs_batch_.size())
                                 : static_cast<int64_t>(wait_secs_service_.size());
}

int64_t SchedulerMetrics::JobsScheduled(JobType type) const {
  return type == JobType::kBatch ? jobs_scheduled_batch_ : jobs_scheduled_service_;
}

int64_t SchedulerMetrics::JobsAbandoned(JobType type) const {
  return type == JobType::kBatch ? jobs_abandoned_batch_ : jobs_abandoned_service_;
}

int64_t SchedulerMetrics::JobsAbandonedTotal() const {
  return jobs_abandoned_batch_ + jobs_abandoned_service_;
}

}  // namespace omega
