#include "src/scheduler/queue_scheduler.h"

#include <algorithm>

#include "src/common/logging.h"

namespace omega {

QueueScheduler::QueueScheduler(ClusterSimulation& harness, SchedulerConfig config)
    : harness_(harness), config_(std::move(config)) {}

void QueueScheduler::Submit(const JobPtr& job) {
  if (config_.admission_limit.has_value() &&
      queue_.size() >= *config_.admission_limit) {
    job->abandoned = true;
    metrics_.RecordJobAbandoned(job->type);
    harness_.OnJobAbandoned(job);
    return;
  }
  queue_.push_back(job);
  TryStartNext();
}

void QueueScheduler::TryStartNext() {
  while (!busy_ && !queue_.empty()) {
    JobPtr job = std::move(queue_.front());
    queue_.pop_front();
    if (job->cancelled) {
      continue;  // withdrawn by the submitter while queued
    }
    BeginAttempt(job);
    return;
  }
}

uint16_t QueueScheduler::TraceTrack() {
  if (trace_track_ < 0) {
    TraceRecorder* trace = harness_.trace();
    // The cell's trace scope keeps same-named schedulers in different cells
    // on distinct Perfetto tracks (empty for single-cell runs).
    trace_track_ =
        trace ? trace->RegisterTrack(harness_.trace_scope() + config_.name) : 0;
  }
  return static_cast<uint16_t>(trace_track_);
}

Duration QueueScheduler::AccountAttemptStart(const JobPtr& job,
                                             uint32_t tasks_in_attempt) {
  const SimTime now = harness_.sim().Now();
  if (!job->first_attempt_time.has_value()) {
    job->first_attempt_time = now;
    metrics_.RecordJobWait(job->type, now - job->submit_time);
  }
  ++job->scheduling_attempts;
  Duration d = config_.TimesFor(job->type).ForTasks(tasks_in_attempt);
  if (d.micros() <= 0) {
    d = Duration(1);  // keep simulated time strictly advancing
  }
  metrics_.AddBusyInterval(now, now + d, pending_conflict_retry_);
  pending_conflict_retry_ = false;
  busy_ = true;
  if (TraceRecorder* trace = harness_.trace()) {
    trace->AttemptBegin(now, TraceTrack(), job->id, job->scheduling_attempts,
                        tasks_in_attempt);
  }
  return d;
}

bool QueueScheduler::ExceedsResourceLimit(const Job& job) const {
  if (!config_.resource_limit.has_value()) {
    return false;
  }
  return !(held_ + job.TotalRequest()).FitsIn(*config_.resource_limit);
}

void QueueScheduler::StartPlacedTasks(const Job& job,
                                      std::span<const TaskClaim> claims) {
  if (!config_.resource_limit.has_value()) {
    harness_.StartTasks(job, claims);
    return;
  }
  for (const TaskClaim& claim : claims) {
    held_ += claim.resources;
  }
  harness_.StartTasks(job, claims, [this](const TaskClaim& claim) {
    held_ -= claim.resources;
    held_ = held_.ClampNonNegative();
  });
}

void QueueScheduler::CompleteAttempt(const JobPtr& job, uint32_t tasks_placed,
                                     bool had_conflict) {
  job->tasks_scheduled += tasks_placed;
  OMEGA_CHECK(job->tasks_scheduled <= job->num_tasks);
  if (had_conflict) {
    ++job->conflicted_attempts;
  }
  const SimTime now = harness_.sim().Now();
  if (TraceRecorder* trace = harness_.trace()) {
    trace->AttemptEnd(now, TraceTrack(), job->id, tasks_placed, had_conflict);
  }
  if (job->cancelled) {
    // Withdrawn by the submitter mid-attempt (federation spillover). Tasks
    // this attempt placed keep running, but the job neither retries nor
    // counts as scheduled/abandoned here — its remaining work was re-issued
    // elsewhere as a clone.
    busy_ = false;
    TryStartNext();
    return;
  }
  if (job->FullyScheduled()) {
    metrics_.RecordJobScheduled(now, job->type, job->scheduling_attempts,
                                job->conflicted_attempts);
    busy_ = false;
    harness_.OnJobFullyScheduled(job);
    TryStartNext();
    return;
  }
  if (job->scheduling_attempts >= config_.max_attempts) {
    // The 1,000-attempt retry limit (§4): abandon the job with its remaining
    // tasks unscheduled. Already-placed tasks keep running.
    job->abandoned = true;
    metrics_.RecordJobAbandoned(job->type);
    busy_ = false;
    harness_.OnJobAbandoned(job);
    TryStartNext();
    return;
  }
  if (had_conflict || tasks_placed > 0) {
    // Retry immediately: the job stays at the head of the queue and the next
    // attempt re-runs the scheduling algorithm for its remaining tasks.
    busy_ = false;
    pending_conflict_retry_ = had_conflict;
    BeginAttempt(job);
    return;
  }
  // No progress and no conflict: the cell currently has no room for this
  // job's tasks. Requeue at the back so other jobs are not blocked, and if
  // nothing else is queued, wait for the backoff before looking again.
  busy_ = false;
  queue_.push_back(job);
  if (queue_.size() == 1) {
    harness_.sim().ScheduleAfter(config_.no_progress_backoff,
                                 [this] { TryStartNext(); });
  } else {
    TryStartNext();
  }
}

}  // namespace omega
