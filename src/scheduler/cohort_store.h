// Cohorts: batched task lifecycles for a placement batch (DESIGN.md §10).
//
// The workload model guarantees that all tasks of a job are identical (§2.1),
// so every task started by one StartTasks call — one committed placement
// batch — shares a start time, a duration, and per-task resources. A cohort
// coalesces those tasks into a single end event that frees their resources
// with per-machine batched mutations, instead of one heap event, closure and
// CellState::Free per task. Machine failures and preemption can still kill
// individual members: RemoveMember shrinks the cohort's pending free (the
// caller frees the victim's resources immediately, as before), and only when
// the last member is gone does the shared end event get cancelled.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/cluster/cell_state.h"
#include "src/common/logging.h"
#include "src/sim/event_queue.h"
#include "src/workload/job.h"

namespace omega {

// One placement batch's worth of running tasks sharing an end time.
struct Cohort {
  JobId job = 0;
  // Per-task resources, identical across members (§2.1); the end-time frees
  // aggregate per machine as (resources, count).
  Resources task_resources;
  EventId end_event = kInvalidEventId;
  // Runs per member, in claim order, before the member's resources are freed
  // (Mesos allocator bookkeeping, MapReduce job completion).
  std::function<void(const TaskClaim&)> on_task_end;
  // Members in claim order. Claims keep per-member machines (and resources,
  // for the availability-index fallback); member_tasks holds the parallel
  // TaskRegistry ids and is empty when the registry is off.
  std::vector<TaskClaim> member_claims;
  std::vector<uint64_t> member_tasks;
};

// Slab of live cohorts with generation-tagged ids (same recycling scheme as
// the event queue): id 0 is reserved as "no cohort" so RunningTask::cohort
// can use 0 as its null value.
class CohortStore {
 public:
  using CohortId = uint64_t;
  static constexpr CohortId kNoCohort = 0;

  // Creates an empty cohort; members are added as claims are started.
  CohortId Create(JobId job, const Resources& task_resources,
                  std::function<void(const TaskClaim&)> on_task_end);

  Cohort& Get(CohortId id) {
    const uint32_t slot = CheckedSlot(id);
    return slots_[slot].cohort;
  }

  // Moves the cohort out and releases its slot (end-event fire path). Taking
  // rather than referencing keeps the fire loop safe against callbacks that
  // create new cohorts (slab growth would invalidate references).
  Cohort Take(CohortId id);

  // Evicts one member (machine failure or preemption); the caller has already
  // freed the victim's resources. Returns the cohort's end event when the
  // last member was removed — the caller cancels it and the cohort is
  // released — and kInvalidEventId otherwise.
  EventId RemoveMember(CohortId id, uint64_t task_id);

  size_t LiveCount() const { return live_; }

 private:
  struct Slot {
    Cohort cohort;
    uint32_t generation = 0;
    uint32_t next_free = kNoSlot;
    bool live = false;
  };
  static constexpr uint32_t kNoSlot = ~0u;

  uint32_t CheckedSlot(CohortId id) const {
    const uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu) - 1;
    OMEGA_CHECK(slot < slots_.size() && slots_[slot].live &&
                slots_[slot].generation == static_cast<uint32_t>(id >> 32))
        << "stale or invalid cohort id " << id;
    return slot;
  }
  void ReleaseSlot(uint32_t slot);

  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoSlot;
  size_t live_ = 0;
};

}  // namespace omega
