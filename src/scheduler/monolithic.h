// Monolithic scheduler architecture (§3.1, §4.1).
//
// A single scheduler instance serves the whole workload. In the single-path
// configuration batch and service jobs share one decision-time model (much of
// the same code runs for every job type); the multi-path configuration gives
// batch jobs a fast path but still schedules one job at a time, so
// head-of-line blocking persists.
#pragma once

#include <memory>

#include "src/scheduler/cluster_simulation.h"
#include "src/scheduler/placement.h"
#include "src/scheduler/queue_scheduler.h"

namespace omega {

// The serialized monolithic scheduler: placement is committed directly against
// the live cell state (it is the only writer), then the scheduler stays busy
// for the decision time.
class MonolithicScheduler final : public QueueScheduler {
 public:
  // `range` restricts placement to a machine subset (statically partitioned
  // schedulers); the default covers the whole cell.
  MonolithicScheduler(ClusterSimulation& harness, SchedulerConfig config,
                      Rng rng, MachineRange range = {});

 protected:
  void BeginAttempt(const JobPtr& job) override;

 private:
  RandomizedFirstFitPlacer placer_;
  Rng rng_;
  std::vector<TaskClaim> scratch_claims_;
};

// Harness: one monolithic scheduler for everything.
class MonolithicSimulation final : public ClusterSimulation {
 public:
  // `single_path`: if true, the service decision-time model applies to every
  // job (the paper's single-path baseline varies t_job for all jobs).
  MonolithicSimulation(const ClusterConfig& config, const SimOptions& options,
                       const SchedulerConfig& scheduler_config);

  void SubmitJob(const JobPtr& job) override;

  MonolithicScheduler& scheduler() { return *scheduler_; }

 private:
  std::unique_ptr<MonolithicScheduler> scheduler_;
};

}  // namespace omega

