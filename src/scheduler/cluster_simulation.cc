#include "src/scheduler/cluster_simulation.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/scheduler/placement.h"

namespace omega {

ClusterSimulation::ClusterSimulation(const ClusterConfig& config,
                                     const SimOptions& options,
                                     GeneratorOptions generator_options)
    : config_(config),
      options_(options),
      owned_sim_(std::make_unique<Simulator>()),
      sim_(owned_sim_.get()),
      cell_(BuildMachineCapacities(config), options.fullness,
            options.headroom_fraction, config.machines_per_failure_domain),
      generator_(config,
                 [&] {
                   GeneratorOptions g = generator_options;
                   g.batch_rate_multiplier = options.batch_rate_multiplier;
                   g.service_rate_multiplier = options.service_rate_multiplier;
                   return g;
                 }(),
                 options.seed),
      rng_(options.seed ^ 0xabcdef1234567890ULL) {
  // One flag drives both halves of cohort batching: grouped commit
  // application in the cell and the shared-end-event lifecycle here.
  cell_.SetBatchedCommit(options.cohort_batching);
  cell_.SetSoAScan(options.soa_cell);
  cell_.SetIntraTrialParallelism(options.intra_trial_threads);
  cell_.SetParallelCommitMinClaims(options.parallel_commit_min_claims);
  if (generator_options.generate_constraints) {
    MachineAttributeAssignment assignment;
    assignment.num_attribute_keys = generator_options.num_attribute_keys;
    assignment.num_attribute_values = generator_options.num_attribute_values;
    assignment.seed = options.seed ^ 0x5151515151515151ULL;
    auto attributes = GenerateMachineAttributes(config.num_machines, assignment);
    for (uint32_t m = 0; m < config.num_machines; ++m) {
      cell_.mutable_machine(m).attributes = std::move(attributes[m]);
    }
  }
}

void ClusterSimulation::PlaceInitialFill() {
  // Fill each machine to an independent random target level whose mean is the
  // configured initial utilization. This reproduces the availability spread
  // of a live cell (tightly packed machines coexist with nearly empty ones);
  // a uniform spread fill would leave no machine with room for large tasks.
  const double target = config_.initial_utilization;
  const double lo = std::max(0.05, target - 0.45);
  const double hi = std::min(0.95, target + (target - lo));
  for (MachineId m = 0; m < cell_.NumMachines(); ++m) {
    const double machine_target = rng_.NextRange(lo, hi);
    const Resources cap = cell_.machine(m).capacity;
    // Bail out of a machine after a few tasks in a row fail to fit.
    int misses = 0;
    while (cell_.machine(m).allocated.cpus < machine_target * cap.cpus &&
           misses < 8) {
      const WorkloadGenerator::InitialTask task = generator_.SampleInitialTask();
      if (!cell_.CanFit(m, task.resources)) {
        ++misses;
        continue;
      }
      cell_.Allocate(m, task.resources);
      const TaskClaim claim{m, task.resources, 0};
      const SimTime end = SimTime::Zero() + task.remaining;
      if (options_.track_running_tasks) {
        const uint64_t task_id =
            registry_.Add(m, task.resources, task.precedence, 0);
        const EventId eid = sim_->ScheduleAt(end, [this, claim, task_id] {
          registry_.Remove(task_id);
          cell_.Free(claim.machine, claim.resources);
          OnTaskFreed();
        });
        registry_.SetEndEvent(task_id, eid);
      } else {
        sim_->ScheduleAt(end, [this, claim] {
          cell_.Free(claim.machine, claim.resources);
          OnTaskFreed();
        });
      }
      misses = 0;
    }
  }
  OMEGA_LOG(kDebug) << "initial fill: cpu=" << cell_.CpuUtilization()
                    << " mem=" << cell_.MemUtilization();
}

void ClusterSimulation::CountSubmission(JobType type) {
  if (type == JobType::kBatch) {
    ++batch_submitted_;
  } else {
    ++service_submitted_;
  }
}

void ClusterSimulation::ScheduleNextArrival(JobType type) {
  const WorkloadParams& params =
      type == JobType::kBatch ? config_.batch : config_.service;
  const double multiplier = type == JobType::kBatch
                                ? options_.batch_rate_multiplier
                                : options_.service_rate_multiplier;
  if (multiplier <= 0.0) {
    return;
  }
  ExponentialDist interarrival(params.interarrival_mean_secs / multiplier);
  const Duration gap = Duration::FromSeconds(interarrival.Sample(rng_));
  const SimTime when = sim_->Now() + gap;
  if (when > EndTime()) {
    return;
  }
  sim_->ScheduleAt(when, [this, type] {
    auto job = std::make_shared<Job>(generator_.GenerateJob(type, sim_->Now()));
    InjectJob(job);
    ScheduleNextArrival(type);
  });
}

void ClusterSimulation::SetTraceRecorder(TraceRecorder* recorder) {
  trace_ = recorder;
  if (recorder == nullptr) {
    cell_.SetCommitObserver(nullptr);
    return;
  }
  cell_.SetCommitObserver(
      [this](std::span<const TaskClaim> claims, const CommitResult& result) {
        trace_->CellCommit(sim_->Now(), static_cast<int64_t>(claims.size()),
                           result.accepted, result.conflicted,
                           HarnessTraceTrack());
      });
}

void ClusterSimulation::ScheduleUtilizationSample() {
  if (options_.utilization_sample_interval.micros() <= 0) {
    return;
  }
  utilization_series_.push_back(UtilizationSample{
      sim_->Now().ToHours(), cell_.CpuUtilization(), cell_.MemUtilization()});
  const SimTime next = sim_->Now() + options_.utilization_sample_interval;
  if (next > EndTime()) {
    return;
  }
  sim_->ScheduleAt(next, [this] { ScheduleUtilizationSample(); });
}

void ClusterSimulation::Run() {
  PrepareRun();
  sim_->RunUntil(EndTime());
}

void ClusterSimulation::PrepareRun() {
  PlaceInitialFill();
  OnSimulationStart();
  ScheduleNextArrival(JobType::kBatch);
  ScheduleNextArrival(JobType::kService);
  ScheduleUtilizationSample();
  ScheduleNextMachineFailure();
}

void ClusterSimulation::UseSharedSimulator(Simulator* sim) {
  if (sim == nullptr) {
    return;  // keep the owned per-cell simulator (windowed federation)
  }
  OMEGA_CHECK(owned_sim_ == nullptr || owned_sim_->PendingEvents() == 0)
      << "UseSharedSimulator must be called before any event is scheduled";
  sim_ = sim;
  owned_sim_.reset();
}

void ClusterSimulation::InjectJob(const JobPtr& job) {
  CountSubmission(job->type);
  if (trace_ != nullptr) {
    trace_->JobSubmit(sim_->Now(), job->id, job->type == JobType::kService,
                      job->num_tasks, HarnessTraceTrack());
  }
  SubmitJob(job);
}

uint16_t ClusterSimulation::HarnessTraceTrack() {
  if (harness_track_ < 0) {
    harness_track_ = trace_scope_.empty()
                         ? 0
                         : trace_->RegisterTrack(trace_scope_ + "cluster");
  }
  return static_cast<uint16_t>(harness_track_);
}

void ClusterSimulation::RunEndCallbackForKill(const RunningTask& task) {
  const TaskClaim claim{task.machine, task.resources, 0};
  if (task.cohort != CohortStore::kNoCohort) {
    // The cohort record survives member eviction (Take only happens when the
    // shared end event fires), so the callback is still reachable here.
    const Cohort& c = cohorts_.Get(task.cohort);
    if (c.on_task_end != nullptr) {
      c.on_task_end(claim);
    }
  } else {
    auto it = pertask_end_callbacks_.find(task.task_id);
    if (it != pertask_end_callbacks_.end()) {
      const auto cb = std::move(it->second);
      pertask_end_callbacks_.erase(it);
      cb(claim);
    }
  }
}

void ClusterSimulation::ScheduleNextMachineFailure() {
  if (options_.machine_failure_rate_per_day <= 0.0) {
    return;
  }
  OMEGA_CHECK(options_.track_running_tasks)
      << "machine failures require track_running_tasks";
  // Cluster-wide failures form a Poisson process with rate
  // machines * per-machine-rate.
  const double cluster_rate_per_sec = options_.machine_failure_rate_per_day *
                                      cell_.NumMachines() / 86400.0;
  ExponentialDist gap(1.0 / cluster_rate_per_sec);
  const SimTime when = sim_->Now() + Duration::FromSeconds(gap.Sample(rng_));
  if (when > EndTime()) {
    return;
  }
  sim_->ScheduleAt(when, [this] {
    FailMachine(static_cast<MachineId>(rng_.NextBounded(cell_.NumMachines())));
    ScheduleNextMachineFailure();
  });
}

void ClusterSimulation::FailMachine(MachineId machine) {
  if (downtime_reservation_.empty()) {
    downtime_reservation_.assign(cell_.NumMachines(), Resources::Zero());
    machine_down_.assign(cell_.NumMachines(), 0);
  }
  if (machine_down_[machine] != 0) {
    return;  // already down
  }
  machine_down_[machine] = 1;
  // Kill every task running on the machine; their work is lost and their
  // owners observe the failure only through the freed state (the paper notes
  // failures "only generate a small load on the scheduler").
  int64_t killed_here = 0;
  for (const RunningTask& task : registry_.TasksOn(machine)) {
    RunEndCallbackForKill(task);
    CancelTaskEnd(task);
    registry_.Remove(task.task_id);
    cell_.Free(task.machine, task.resources);
    ++tasks_killed_by_failures_;
    ++killed_here;
  }
  if (trace_ != nullptr) {
    trace_->MachineFailure(sim_->Now(), machine, killed_here,
                           HarnessTraceTrack());
  }
  // Take the machine out of service by reserving all remaining capacity; the
  // sequence-number bump doubles as the state change other schedulers see.
  const Resources reservation =
      (cell_.machine(machine).capacity - cell_.machine(machine).allocated)
          .ClampNonNegative();
  if (!reservation.IsZero()) {
    cell_.Allocate(machine, reservation);
  }
  downtime_reservation_[machine] = reservation;
  ++machine_failures_;
  ++machines_down_;
  sim_->ScheduleAt(sim_->Now() + options_.machine_repair_time, [this, machine] {
    if (!downtime_reservation_[machine].IsZero()) {
      cell_.Free(machine, downtime_reservation_[machine]);
      downtime_reservation_[machine] = Resources::Zero();
    }
    machine_down_[machine] = 0;
    --machines_down_;
    if (trace_ != nullptr) {
      trace_->MachineRepair(sim_->Now(), machine, HarnessTraceTrack());
    }
    OnTaskFreed();
  });
}

void ClusterSimulation::RunTrace(std::vector<Job> trace) {
  PlaceInitialFill();
  OnSimulationStart();
  for (Job& job : trace) {
    if (job.submit_time > EndTime()) {
      continue;
    }
    auto ptr = std::make_shared<Job>(std::move(job));
    sim_->ScheduleAt(ptr->submit_time, [this, ptr] { InjectJob(ptr); });
  }
  ScheduleUtilizationSample();
  sim_->RunUntil(EndTime());
}

void ClusterSimulation::StartTasks(const Job& job,
                                   std::span<const TaskClaim> claims,
                                   std::function<void(const TaskClaim&)> on_task_end) {
  if (claims.empty()) {
    return;
  }
  if (!options_.cohort_batching) {
    StartTasksPerTask(job, claims, std::move(on_task_end));
    return;
  }
  const JobId job_id = job.id;
  const SimTime end = sim_->Now() + job.task_duration;
  const CohortStore::CohortId cohort =
      cohorts_.Create(job_id, job.task_resources, std::move(on_task_end));
  Cohort& c = cohorts_.Get(cohort);
  c.member_claims.assign(claims.begin(), claims.end());
  if (options_.track_running_tasks) {
    c.member_tasks.reserve(claims.size());
  }
  for (const TaskClaim& claim : claims) {
    // FinishCohort frees (task_resources, count) per machine; a claim that
    // deviated from the job's uniform task shape would corrupt the cell.
    OMEGA_CHECK(claim.resources == job.task_resources)
        << "claim resources diverge from the job's task shape";
    if (trace_ != nullptr) {
      trace_->TaskStart(sim_->Now(), job_id, claim.machine,
                        HarnessTraceTrack());
    }
    if (options_.track_running_tasks) {
      c.member_tasks.push_back(registry_.Add(claim.machine, claim.resources,
                                             job.precedence, 0, cohort));
    }
  }
  c.end_event = sim_->ScheduleAt(end, [this, cohort] { FinishCohort(cohort); });
}

void ClusterSimulation::FinishCohort(CohortStore::CohortId cohort_id) {
  // Take (move out + release) rather than reference: the member callbacks
  // below may start new cohorts, and slab growth would invalidate references.
  const Cohort c = cohorts_.Take(cohort_id);
  const SimTime now = sim_->Now();
  const size_t n = c.member_claims.size();
  for (size_t i = 0; i < n; ++i) {
    const TaskClaim& claim = c.member_claims[i];
    if (c.on_task_end != nullptr) {
      c.on_task_end(claim);
    }
    if (trace_ != nullptr) {
      trace_->TaskEnd(now, c.job, claim.machine, HarnessTraceTrack());
    }
    if (!c.member_tasks.empty()) {
      registry_.Remove(c.member_tasks[i]);
    }
  }
  if (cell_.HasAvailabilityIndex()) {
    // Bucket-list permutations are order-sensitive; replay per-task frees in
    // claim order (the cohort still saved n-1 heap events).
    for (const TaskClaim& claim : c.member_claims) {
      cell_.Free(claim.machine, claim.resources);
    }
  } else {
    // One batched free per distinct machine. Sorting reorders frees across
    // machines, which is state-identical because members share per-task
    // resources (DESIGN.md §10).
    cohort_scratch_.clear();
    for (const TaskClaim& claim : c.member_claims) {
      cohort_scratch_.push_back(claim.machine);
    }
    std::sort(cohort_scratch_.begin(), cohort_scratch_.end());
    for (size_t i = 0; i < cohort_scratch_.size();) {
      size_t j = i + 1;
      while (j < cohort_scratch_.size() &&
             cohort_scratch_[j] == cohort_scratch_[i]) {
        ++j;
      }
      cell_.FreeBatch(cohort_scratch_[i], c.task_resources,
                      static_cast<uint32_t>(j - i));
      i = j;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    OnTaskFreed();
  }
}

void ClusterSimulation::CancelTaskEnd(const RunningTask& task) {
  if (task.cohort != CohortStore::kNoCohort) {
    // Partial cancel: shrink the cohort's pending free; the shared end event
    // is cancelled only when the last member is evicted.
    const EventId shared = cohorts_.RemoveMember(task.cohort, task.task_id);
    if (shared != kInvalidEventId) {
      sim_->Cancel(shared);
    }
  } else {
    sim_->Cancel(task.end_event);
  }
}

void ClusterSimulation::StartTasksPerTask(
    const Job& job, std::span<const TaskClaim> claims,
    std::function<void(const TaskClaim&)> on_task_end) {
  // The trace-disabled closures below are kept byte-identical to the
  // untraced build: the extra job-id capture would grow every task-end
  // closure and measurably slow the event loop, so the instrumented variants
  // are only instantiated when a recorder is attached (the attachment state
  // cannot change between schedule and fire).
  const JobId job_id = job.id;
  for (const TaskClaim& claim : claims) {
    const SimTime end = sim_->Now() + job.task_duration;
    if (trace_ != nullptr) {
      trace_->TaskStart(sim_->Now(), job_id, claim.machine,
                        HarnessTraceTrack());
    }
    if (options_.track_running_tasks) {
      const uint64_t task_id =
          registry_.Add(claim.machine, claim.resources, job.precedence, 0);
      if (on_task_end != nullptr) {
        // Keep the callback reachable by the kill path (machine failure,
        // preemption), which cancels the end event before it can run.
        pertask_end_callbacks_.emplace(task_id, on_task_end);
      }
      EventId eid;
      if (trace_ != nullptr) {
        eid = sim_->ScheduleAt(end, [this, claim, task_id, job_id, on_task_end] {
          if (on_task_end != nullptr) {
            pertask_end_callbacks_.erase(task_id);
            on_task_end(claim);
          }
          trace_->TaskEnd(sim_->Now(), job_id, claim.machine,
                          HarnessTraceTrack());
          registry_.Remove(task_id);
          cell_.Free(claim.machine, claim.resources);
          OnTaskFreed();
        });
      } else {
        eid = sim_->ScheduleAt(end, [this, claim, task_id, on_task_end] {
          if (on_task_end != nullptr) {
            pertask_end_callbacks_.erase(task_id);
            on_task_end(claim);
          }
          registry_.Remove(task_id);
          cell_.Free(claim.machine, claim.resources);
          OnTaskFreed();
        });
      }
      registry_.SetEndEvent(task_id, eid);
    } else if (on_task_end == nullptr) {
      if (trace_ != nullptr) {
        sim_->ScheduleAt(end, [this, claim, job_id] {
          trace_->TaskEnd(sim_->Now(), job_id, claim.machine,
                          HarnessTraceTrack());
          cell_.Free(claim.machine, claim.resources);
          OnTaskFreed();
        });
      } else {
        sim_->ScheduleAt(end, [this, claim] {
          cell_.Free(claim.machine, claim.resources);
          OnTaskFreed();
        });
      }
    } else {
      if (trace_ != nullptr) {
        sim_->ScheduleAt(end, [this, claim, job_id, on_task_end] {
          on_task_end(claim);
          trace_->TaskEnd(sim_->Now(), job_id, claim.machine,
                          HarnessTraceTrack());
          cell_.Free(claim.machine, claim.resources);
          OnTaskFreed();
        });
      } else {
        sim_->ScheduleAt(end, [this, claim, on_task_end] {
          on_task_end(claim);
          cell_.Free(claim.machine, claim.resources);
          OnTaskFreed();
        });
      }
    }
  }
}

MachineId ClusterSimulation::PreemptAndPlace(const Job& job, Rng& rng,
                                             int* victims_evicted) {
  OMEGA_CHECK(options_.track_running_tasks)
      << "preemption requires SimOptions::track_running_tasks";
  const uint32_t num_machines = cell_.NumMachines();
  auto try_machine = [&](MachineId m) -> bool {
    if (!job.constraints.empty() &&
        !MachineSatisfiesConstraints(cell_.machine(m), job)) {
      return false;
    }
    const Resources available =
        (cell_.UsableCapacity(m) - cell_.machine(m).allocated).ClampNonNegative();
    const Resources shortfall = (job.task_resources - available).ClampNonNegative();
    if (shortfall.IsZero()) {
      // Fits without eviction (resources freed since the placement attempt).
      cell_.Allocate(m, job.task_resources);
      return true;
    }
    const std::vector<RunningTask> victims =
        registry_.SelectVictims(m, job.precedence, shortfall);
    if (victims.empty()) {
      return false;
    }
    for (const RunningTask& victim : victims) {
      RunEndCallbackForKill(victim);
      CancelTaskEnd(victim);
      registry_.Remove(victim.task_id);
      cell_.Free(victim.machine, victim.resources);
      ++tasks_preempted_;
      if (victims_evicted != nullptr) {
        ++*victims_evicted;
      }
      if (trace_ != nullptr) {
        trace_->Preemption(sim_->Now(), job.id, victim.machine,
                           victim.precedence, victim.task_id,
                           HarnessTraceTrack());
      }
    }
    cell_.Allocate(m, job.task_resources);
    return true;
  };
  // Random probes, then a linear scan so that a preemptable placement is
  // found whenever one exists.
  for (uint32_t probe = 0; probe < 32; ++probe) {
    const auto m = static_cast<MachineId>(rng.NextBounded(num_machines));
    if (try_machine(m)) {
      return m;
    }
  }
  const auto start = static_cast<MachineId>(rng.NextBounded(num_machines));
  for (uint32_t i = 0; i < num_machines; ++i) {
    const MachineId m = (start + i) % num_machines;
    if (try_machine(m)) {
      return m;
    }
  }
  return kInvalidMachineId;
}

}  // namespace omega
