// Per-scheduler metric accounting (§4, "Metrics").
//
// The paper reports three primary metrics:
//  - job wait time: submission to the *beginning of the first scheduling
//    attempt* (overall averages; 90th percentiles in §5);
//  - scheduler busyness: fraction of time the scheduler spends making
//    decisions, reported as the median of per-day values with median-absolute-
//    deviation error bars;
//  - conflict fraction: conflicts per successfully scheduled job (a value of
//    3 means the average job needed four scheduling attempts).
#ifndef OMEGA_SRC_SCHEDULER_METRICS_H_
#define OMEGA_SRC_SCHEDULER_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/workload/job.h"

namespace omega {

struct DailySummary {
  double median = 0.0;
  double mad = 0.0;  // median absolute deviation across days
  double mean = 0.0;
};

class SchedulerMetrics {
 public:
  explicit SchedulerMetrics(Duration day_length = Duration::FromDays(1));

  // --- recording ---

  // Accounts a busy interval [start, end); split across day buckets.
  // `conflict_retry` marks work that only happened because a previous attempt
  // of the same job conflicted — subtracted to approximate the "no conflict"
  // busyness of Fig. 12c.
  void AddBusyInterval(SimTime start, SimTime end, bool conflict_retry = false);

  // Job wait time, recorded when the first scheduling attempt begins.
  void RecordJobWait(JobType type, Duration wait);

  // Called when a job finishes scheduling (all tasks placed). `attempts` is
  // the total number of scheduling attempts, `conflicted_attempts` how many of
  // them hit a commit conflict. `when` attributes the conflicts to a day.
  void RecordJobScheduled(SimTime when, JobType type, uint32_t attempts,
                          uint32_t conflicted_attempts);

  void RecordJobAbandoned(JobType type);

  // Raw transaction-level accounting (accepted/conflicted task claims).
  void RecordTransaction(int accepted_tasks, int conflicted_tasks);

  // --- queries (after the run; `end` is the simulation end time) ---

  DailySummary Busyness(SimTime end) const;
  DailySummary BusynessNoConflict(SimTime end) const;
  DailySummary ConflictFraction(SimTime end) const;

  double MeanWait(JobType type) const;
  double WaitPercentile(JobType type, double q) const;
  int64_t JobsWaited(JobType type) const;

  int64_t JobsScheduled(JobType type) const;
  int64_t JobsAbandoned(JobType type) const;
  int64_t JobsAbandonedTotal() const;
  int64_t TasksAccepted() const { return tasks_accepted_; }
  int64_t TasksConflicted() const { return tasks_conflicted_; }
  int64_t TotalConflictedAttempts() const { return total_conflicted_attempts_; }
  int64_t TotalAttempts() const { return total_attempts_; }
  Duration TotalBusy() const { return total_busy_; }

  // Daily series (value per simulated day), for plots.
  std::vector<double> DailyBusyness(SimTime end) const;
  std::vector<double> DailyConflictFraction(SimTime end) const;

 private:
  size_t DayIndex(SimTime t) const;
  void EnsureDay(size_t day);
  static DailySummary Summarize(const std::vector<double>& values);

  Duration day_length_;

  std::vector<double> busy_secs_per_day_;
  std::vector<double> conflict_retry_busy_secs_per_day_;
  std::vector<double> conflicts_per_day_;
  std::vector<double> scheduled_jobs_per_day_;

  std::vector<double> wait_secs_batch_;
  std::vector<double> wait_secs_service_;

  int64_t jobs_scheduled_batch_ = 0;
  int64_t jobs_scheduled_service_ = 0;
  int64_t jobs_abandoned_batch_ = 0;
  int64_t jobs_abandoned_service_ = 0;
  int64_t tasks_accepted_ = 0;
  int64_t tasks_conflicted_ = 0;
  int64_t total_conflicted_attempts_ = 0;
  int64_t total_attempts_ = 0;
  Duration total_busy_;
};

}  // namespace omega

#endif  // OMEGA_SRC_SCHEDULER_METRICS_H_
