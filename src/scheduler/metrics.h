// Per-scheduler metric accounting (§4, "Metrics").
//
// The paper reports three primary metrics:
//  - job wait time: submission to the *beginning of the first scheduling
//    attempt* (overall averages; 90th percentiles in §5);
//  - scheduler busyness: fraction of time the scheduler spends making
//    decisions, reported as the median of per-day values with median-absolute-
//    deviation error bars;
//  - conflict fraction: conflicts per successfully scheduled job (a value of
//    3 means the average job needed four scheduling attempts).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/workload/job.h"

namespace omega {

struct DailySummary {
  double median = 0.0;
  double mad = 0.0;  // median absolute deviation across days
  double mean = 0.0;
};

class SchedulerMetrics {
 public:
  explicit SchedulerMetrics(Duration day_length = Duration::FromDays(1));

  // --- recording ---

  // Accounts a busy interval [start, end); split across day buckets.
  // `conflict_retry` marks work that only happened because a previous attempt
  // of the same job conflicted — subtracted to approximate the "no conflict"
  // busyness of Fig. 12c.
  void AddBusyInterval(SimTime start, SimTime end, bool conflict_retry = false);

  // Job wait time, recorded when the first scheduling attempt begins.
  void RecordJobWait(JobType type, Duration wait);

  // Called when a job finishes scheduling (all tasks placed). `attempts` is
  // the total number of scheduling attempts (recorded into the per-job
  // attempt-count distribution), `conflicted_attempts` how many of them hit a
  // commit conflict. `when` attributes the conflicts to a day.
  void RecordJobScheduled(SimTime when, JobType type, uint32_t attempts,
                          uint32_t conflicted_attempts);

  void RecordJobAbandoned(JobType type);

  // Raw transaction-level accounting (accepted/conflicted task claims from
  // optimistic commits — preemption placements are NOT transactions and go
  // through RecordPreemption instead).
  void RecordTransaction(int accepted_tasks, int conflicted_tasks);

  // Placements won by evicting lower-precedence tasks (§3.4). Kept separate
  // from the transaction counters: folding eviction-won tasks into
  // TasksAccepted would skew the transaction-level conflict statistics.
  void RecordPreemption(int tasks_placed, int victims_evicted);

  // --- queries (after the run; `end` is the simulation end time) ---

  DailySummary Busyness(SimTime end) const;
  DailySummary BusynessNoConflict(SimTime end) const;
  DailySummary ConflictFraction(SimTime end) const;

  double MeanWait(JobType type) const;
  double WaitPercentile(JobType type, double q) const;
  int64_t JobsWaited(JobType type) const;

  int64_t JobsScheduled(JobType type) const;
  int64_t JobsAbandoned(JobType type) const;
  int64_t JobsAbandonedTotal() const;
  int64_t TasksAccepted() const { return tasks_accepted_; }
  int64_t TasksConflicted() const { return tasks_conflicted_; }
  int64_t TotalConflictedAttempts() const { return total_conflicted_attempts_; }
  int64_t TotalAttempts() const { return total_attempts_; }
  Duration TotalBusy() const { return total_busy_; }

  // Preemption accounting (separate from the optimistic-commit counters).
  int64_t TasksPlacedByPreemption() const { return tasks_placed_by_preemption_; }
  int64_t PreemptionVictims() const { return preemption_victims_; }

  // Attempts-per-job distribution over successfully scheduled jobs (Fig. 14
  // analysis wants attempts per job, not just conflicts per job).
  const Cdf& AttemptsPerJob() const { return attempts_per_job_; }
  double MeanAttemptsPerJob() const { return attempts_per_job_.MeanValue(); }

  // Daily series (value per simulated day), for plots.
  std::vector<double> DailyBusyness(SimTime end) const;
  std::vector<double> DailyConflictFraction(SimTime end) const;

  // Number of day buckets whose recorded busy time exceeds the day's
  // simulated span, i.e. days where DailyBusyness silently clamped to 1.0.
  // A scheduler is busy with at most one attempt at a time, so the only
  // legitimate clamp is the final day when an attempt runs past the horizon;
  // anything else indicates double-counted busy intervals.
  int64_t BusynessClampEvents(SimTime end) const;

 private:
  size_t DayIndex(SimTime t) const;
  void EnsureDay(size_t day);
  static DailySummary Summarize(const std::vector<double>& values);

  Duration day_length_;

  std::vector<double> busy_secs_per_day_;
  std::vector<double> conflict_retry_busy_secs_per_day_;
  std::vector<double> conflicts_per_day_;
  std::vector<double> scheduled_jobs_per_day_;

  std::vector<double> wait_secs_batch_;
  std::vector<double> wait_secs_service_;
  Cdf attempts_per_job_;

  int64_t jobs_scheduled_batch_ = 0;
  int64_t jobs_scheduled_service_ = 0;
  int64_t jobs_abandoned_batch_ = 0;
  int64_t jobs_abandoned_service_ = 0;
  int64_t tasks_accepted_ = 0;
  int64_t tasks_conflicted_ = 0;
  int64_t tasks_placed_by_preemption_ = 0;
  int64_t preemption_victims_ = 0;
  int64_t total_conflicted_attempts_ = 0;
  int64_t total_attempts_ = 0;
  Duration total_busy_;
  // Warn-once latch for busyness clamping (mutable: set from const queries).
  mutable bool clamp_warned_ = false;
};

}  // namespace omega

