// Scheduler and simulation configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/cluster/cell_state.h"
#include "src/common/sim_time.h"
#include "src/workload/job.h"

namespace omega {

// Linear decision-time model: t_decision = t_job + t_task * tasks (§4,
// "Parameters"). Defaults are the paper's conservative estimates from the
// production system: t_job = 0.1 s, t_task = 5 ms.
struct DecisionTimes {
  Duration t_job = Duration::FromSeconds(0.1);
  Duration t_task = Duration::FromMillis(5);

  Duration ForTasks(uint32_t tasks) const {
    return t_job + t_task * static_cast<double>(tasks);
  }
};

// Per-scheduler configuration.
struct SchedulerConfig {
  std::string name = "scheduler";

  // Decision-time model per job type (multi-path monolithic schedulers use a
  // fast path for batch; single-path uses identical values for both).
  DecisionTimes batch_times;
  DecisionTimes service_times;

  // Jobs are abandoned after this many scheduling attempts (§4: 1,000).
  uint32_t max_attempts = 1000;

  // After an attempt that made no progress for lack of fitting resources
  // (no conflict — the cell is simply full for this job), the job is requeued
  // at the back and, if the queue is otherwise empty, retried only after this
  // backoff. Conflicted attempts retry immediately, per §3.4.
  Duration no_progress_backoff = Duration::FromSeconds(5);

  // Omega transaction semantics (§3.4, §5.2).
  ConflictMode conflict_mode = ConflictMode::kFineGrained;
  CommitMode commit_mode = CommitMode::kIncremental;

  // Optional caps supporting cluster-wide policies as emergent behavior
  // (§3.4): a limit on the total resources this scheduler may hold, and on
  // the number of jobs it will admit to its queue.
  std::optional<Resources> resource_limit;
  std::optional<uint64_t> admission_limit;

  // If true, this scheduler may preempt running tasks of strictly lower
  // precedence when its jobs do not otherwise fit (§3.4). Requires
  // SimOptions::track_running_tasks. Off by default, like the paper's
  // high-fidelity simulator.
  bool enable_preemption = false;

  const DecisionTimes& TimesFor(JobType type) const {
    return type == JobType::kBatch ? batch_times : service_times;
  }
};

// Simulation-wide options.
struct SimOptions {
  Duration horizon = Duration::FromDays(7);
  uint64_t seed = 1;

  // If non-zero, the harness records (time, cpu_util, mem_util) samples at
  // this interval (Fig. 16).
  Duration utilization_sample_interval = Duration::Zero();

  // Workload scaling (Figs. 8, 9 vary the batch arrival rate).
  double batch_rate_multiplier = 1.0;
  double service_rate_multiplier = 1.0;

  // Cell-state fullness policy (the high-fidelity simulator uses a stricter
  // notion of machine fullness; see DESIGN.md).
  FullnessPolicy fullness = FullnessPolicy::kExact;
  double headroom_fraction = 0.0;

  // Maintain the running-task registry so schedulers with enable_preemption
  // can select victims. Costs memory and a little time; off by default.
  bool track_running_tasks = false;

  // Cohort task-lifecycle batching (DESIGN.md §10): one end event per
  // placement batch instead of one per task, with per-machine aggregated
  // frees, and per-machine grouped commit application in CellState. Results
  // are bit-identical either way by construction; the flag exists so the
  // differential tests can compare against the per-task reference path.
  bool cohort_batching = true;

  // Struct-of-arrays placement scans (DESIGN.md §11): the placers' linear
  // no-fit fallbacks sweep CellState's contiguous per-resource arrays (with
  // two-level summary pruning) instead of walking Machine structs. Placement
  // decisions are identical either way by construction; the flag exists so
  // the differential tests can compare against the per-Machine reference.
  bool soa_cell = true;

  // Intra-trial parallelism (DESIGN.md §12): worker threads the placement
  // scans and Commit conflict pre-checks may use inside one trial. 1
  // (default) keeps every path strictly sequential with no pool; 0 means
  // hardware concurrency; >1 spawns that many lanes. Every emitted metric,
  // seqnum, and trace byte is bit-identical at any value by construction
  // (deterministic ordered reductions) — the knob only changes wall-clock.
  uint32_t intra_trial_threads = 1;

  // Transactions with fewer claims than this pre-check sequentially even
  // when intra_trial_threads > 1 (a pool dispatch costs microseconds; small
  // transactions are cheaper inline). Both branches produce bitwise-identical
  // verdicts; differential tests lower this to force the parallel branch.
  size_t parallel_commit_min_claims = 256;

  // Machine failure injection. The paper's simulators do not model machine
  // failures ("these only generate a small load on the scheduler"); this
  // lifts that simplification. Expected failures per machine per day; 0
  // disables. Requires track_running_tasks (failures kill the tasks on the
  // machine). Failed machines return empty after `machine_repair_time`.
  double machine_failure_rate_per_day = 0.0;
  Duration machine_repair_time = Duration::FromHours(1);
};

}  // namespace omega

