// Base harness for a simulated cluster: cell state, workload arrival streams,
// initial fill, task lifecycle, and utilization sampling.
//
// Architecture-specific simulations (monolithic, two-level/Mesos, shared-
// state/Omega) subclass this and route submitted jobs to their schedulers.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/cluster/cell_state.h"
#include "src/cluster/task_registry.h"
#include "src/common/random.h"
#include "src/trace/trace_recorder.h"
#include "src/scheduler/cohort_store.h"
#include "src/scheduler/config.h"
#include "src/sim/simulator.h"
#include "src/workload/generator.h"
#include "src/workload/job.h"

namespace omega {

using JobPtr = std::shared_ptr<Job>;

// A point of the cluster-utilization time series (Fig. 16).
struct UtilizationSample {
  double time_hours = 0.0;
  double cpu = 0.0;
  double mem = 0.0;
};

class ClusterSimulation {
 public:
  ClusterSimulation(const ClusterConfig& config, const SimOptions& options,
                    GeneratorOptions generator_options = {});
  virtual ~ClusterSimulation() = default;
  ClusterSimulation(const ClusterSimulation&) = delete;
  ClusterSimulation& operator=(const ClusterSimulation&) = delete;

  // Fills the cell to the configured initial utilization, starts the batch and
  // service arrival streams, and runs the simulation to the horizon.
  void Run();

  // Replay mode: instead of synthesizing arrivals, submit exactly these jobs
  // at their recorded submission times (high-fidelity trace replay, §5).
  void RunTrace(std::vector<Job> trace);

  // Routes a newly submitted job to the appropriate scheduler.
  virtual void SubmitJob(const JobPtr& job) = 0;

  Simulator& sim() { return sim_; }
  CellState& cell() { return cell_; }
  const CellState& cell() const { return cell_; }
  const ClusterConfig& config() const { return config_; }
  const SimOptions& options() const { return options_; }
  SimTime EndTime() const { return SimTime::Zero() + options_.horizon; }

  // Allocations already committed: starts the end timers that free resources
  // when tasks finish. `on_task_end` (optional) runs per task before its
  // resources are freed (Mesos uses it to update allocator bookkeeping; the
  // MapReduce scheduler to track job completion). With cohort batching
  // (SimOptions::cohort_batching, the default) the whole batch shares one
  // end event — all claims come from one commit of one job, so they share a
  // start time, duration, and per-task resources — and the end-time frees
  // are applied per machine as (resources, count) batches; results are
  // bit-identical to the per-task path (DESIGN.md §10).
  void StartTasks(const Job& job, std::span<const TaskClaim> claims,
                  std::function<void(const TaskClaim&)> on_task_end = nullptr);

  // Job accounting.
  int64_t JobsSubmitted(JobType type) const {
    return type == JobType::kBatch ? batch_submitted_ : service_submitted_;
  }
  int64_t JobsSubmittedTotal() const { return batch_submitted_ + service_submitted_; }

  const std::vector<UtilizationSample>& utilization_series() const {
    return utilization_series_;
  }

  WorkloadGenerator& generator() { return generator_; }
  Rng& rng() { return rng_; }

  // --- lifecycle tracing (off by default) ---

  // Attaches a TraceRecorder; call before Run()/RunTrace(). The recorder is
  // borrowed, not owned, and must outlive the simulation. Attaching installs
  // the CellState commit observer; every instrumentation hook is a null check
  // when no recorder is attached, and recording never schedules events or
  // samples RNGs, so results are bit-identical with tracing on or off.
  void SetTraceRecorder(TraceRecorder* recorder);
  TraceRecorder* trace() const { return trace_; }

  // --- preemption support (requires SimOptions::track_running_tasks) ---

  // Attempts to place one task of `job` by evicting running tasks of strictly
  // lower precedence. On success the task's resources are allocated and the
  // victims' end events cancelled; returns the machine used, or
  // kInvalidMachineId if no machine can supply the resources even with
  // preemption. The caller starts the new task via StartTasks.
  // `victims_evicted`, if non-null, is incremented by the number of tasks
  // evicted for this placement (zero when the task fit without eviction).
  MachineId PreemptAndPlace(const Job& job, Rng& rng,
                            int* victims_evicted = nullptr);

  int64_t TasksPreempted() const { return tasks_preempted_; }
  const TaskRegistry& task_registry() const { return registry_; }

  // --- machine failure injection (SimOptions::machine_failure_rate_per_day) ---

  int64_t MachineFailures() const { return machine_failures_; }
  int64_t TasksKilledByFailures() const { return tasks_killed_by_failures_; }
  int64_t MachinesDown() const { return machines_down_; }

 protected:
  // Hook invoked after the initial fill and before arrivals start; subclasses
  // may inspect the initial cell state.
  virtual void OnSimulationStart() {}

  // Hook invoked after every task-end free (including initial-fill tasks).
  // The Mesos allocator uses it to re-offer newly available resources.
  virtual void OnTaskFreed() {}

  // Kills every running task on `machine` and reserves its capacity until
  // repair. Protected so test harnesses can inject deterministic failures.
  void FailMachine(MachineId machine);

 private:
  void PlaceInitialFill();
  void ScheduleNextArrival(JobType type);
  void ScheduleUtilizationSample();
  void CountSubmission(JobType type);
  void ScheduleNextMachineFailure();

  // Reference per-task lifecycle path (cohort_batching off); kept so the
  // differential tests can compare the batched path against it.
  void StartTasksPerTask(const Job& job, std::span<const TaskClaim> claims,
                         std::function<void(const TaskClaim&)> on_task_end);
  // Fires a cohort's shared end event: per-member callback/trace/registry
  // work in claim order, then per-machine batched frees.
  void FinishCohort(CohortStore::CohortId cohort_id);
  // Cancels a running task's pending end: its private event, or its cohort
  // membership (cancelling the shared event only when the cohort empties).
  void CancelTaskEnd(const RunningTask& task);

  ClusterConfig config_;
  SimOptions options_;
  Simulator sim_;
  CellState cell_;
  WorkloadGenerator generator_;
  Rng rng_;

  int64_t batch_submitted_ = 0;
  int64_t service_submitted_ = 0;
  std::vector<UtilizationSample> utilization_series_;

  TaskRegistry registry_;
  CohortStore cohorts_;
  // Scratch for FinishCohort's per-machine grouping, reused across cohorts.
  std::vector<MachineId> cohort_scratch_;
  int64_t tasks_preempted_ = 0;
  TraceRecorder* trace_ = nullptr;

  // Failure injection state: capacity reserved on down machines, pending
  // repair.
  std::vector<Resources> downtime_reservation_;
  std::vector<char> machine_down_;
  int64_t machine_failures_ = 0;
  int64_t tasks_killed_by_failures_ = 0;
  int64_t machines_down_ = 0;
};

}  // namespace omega

