// Base harness for a simulated cluster: cell state, workload arrival streams,
// initial fill, task lifecycle, and utilization sampling.
//
// Architecture-specific simulations (monolithic, two-level/Mesos, shared-
// state/Omega) subclass this and route submitted jobs to their schedulers.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/cluster/cell_state.h"
#include "src/cluster/task_registry.h"
#include "src/common/random.h"
#include "src/trace/trace_recorder.h"
#include "src/scheduler/cohort_store.h"
#include "src/scheduler/config.h"
#include "src/sim/simulator.h"
#include "src/workload/generator.h"
#include "src/workload/job.h"

namespace omega {

using JobPtr = std::shared_ptr<Job>;

// A point of the cluster-utilization time series (Fig. 16).
struct UtilizationSample {
  double time_hours = 0.0;
  double cpu = 0.0;
  double mem = 0.0;
};

class ClusterSimulation {
 public:
  ClusterSimulation(const ClusterConfig& config, const SimOptions& options,
                    GeneratorOptions generator_options = {});
  virtual ~ClusterSimulation() = default;
  ClusterSimulation(const ClusterSimulation&) = delete;
  ClusterSimulation& operator=(const ClusterSimulation&) = delete;

  // Fills the cell to the configured initial utilization, starts the batch and
  // service arrival streams, and runs the simulation to the horizon.
  void Run();

  // The setup half of Run(): initial fill plus arrival/sampling/failure
  // streams, without entering the event loop. A multi-cell driver (the
  // federation layer) prepares each cell in cell-index order and then runs
  // the shared event queue itself.
  void PrepareRun();

  // Replay mode: instead of synthesizing arrivals, submit exactly these jobs
  // at their recorded submission times (high-fidelity trace replay, §5).
  void RunTrace(std::vector<Job> trace);

  // Routes a newly submitted job to the appropriate scheduler.
  virtual void SubmitJob(const JobPtr& job) = 0;

  // Front-door entry for an externally generated job: counts the submission,
  // traces it, and routes it via SubmitJob. Used by trace replay and by the
  // federation submitter layer.
  void InjectJob(const JobPtr& job);

  // Redirects all event scheduling onto an external simulator (the federation
  // layer's shared-queue mode runs N cells on one master event queue so
  // gossip, transfers, and cell events interleave deterministically). Passing
  // nullptr keeps the owned per-cell simulator — the windowed federation mode
  // drives each cell's own queue between barriers and only the front-door /
  // gossip / transfer events live on the master queue (DESIGN.md §15). Must
  // be called before any event is scheduled, i.e. before
  // Run()/PrepareRun()/RunTrace(). A non-null simulator is borrowed, not
  // owned, and must outlive this simulation.
  void UseSharedSimulator(Simulator* sim);

  // --- per-job lifecycle hooks (called by the schedulers) ---

  // Invoked when a job reaches FullyScheduled() / is abandoned. Default
  // no-ops; the federation layer overrides them to drive cross-cell
  // spillover. Public because the schedulers (QueueScheduler, Mesos
  // frameworks) invoke them on their harness.
  virtual void OnJobFullyScheduled(const JobPtr& /*job*/) {}
  virtual void OnJobAbandoned(const JobPtr& /*job*/) {}

  Simulator& sim() { return *sim_; }
  CellState& cell() { return cell_; }
  const CellState& cell() const { return cell_; }
  const ClusterConfig& config() const { return config_; }
  const SimOptions& options() const { return options_; }
  SimTime EndTime() const { return SimTime::Zero() + options_.horizon; }

  // Allocations already committed: starts the end timers that free resources
  // when tasks finish. `on_task_end` (optional) runs per task before its
  // resources are freed (Mesos uses it to update allocator bookkeeping; the
  // MapReduce scheduler to track job completion). With cohort batching
  // (SimOptions::cohort_batching, the default) the whole batch shares one
  // end event — all claims come from one commit of one job, so they share a
  // start time, duration, and per-task resources — and the end-time frees
  // are applied per machine as (resources, count) batches; results are
  // bit-identical to the per-task path (DESIGN.md §10).
  void StartTasks(const Job& job, std::span<const TaskClaim> claims,
                  std::function<void(const TaskClaim&)> on_task_end = nullptr);

  // Job accounting.
  int64_t JobsSubmitted(JobType type) const {
    return type == JobType::kBatch ? batch_submitted_ : service_submitted_;
  }
  int64_t JobsSubmittedTotal() const { return batch_submitted_ + service_submitted_; }

  const std::vector<UtilizationSample>& utilization_series() const {
    return utilization_series_;
  }

  WorkloadGenerator& generator() { return generator_; }
  Rng& rng() { return rng_; }

  // --- lifecycle tracing (off by default) ---

  // Attaches a TraceRecorder; call before Run()/RunTrace(). The recorder is
  // borrowed, not owned, and must outlive the simulation. Attaching installs
  // the CellState commit observer; every instrumentation hook is a null check
  // when no recorder is attached, and recording never schedules events or
  // samples RNGs, so results are bit-identical with tracing on or off.
  void SetTraceRecorder(TraceRecorder* recorder);
  TraceRecorder* trace() const { return trace_; }

  // Namespace prefix for this simulation's trace tracks (e.g. "cell3/").
  // When several cells share one TraceRecorder, the prefix keeps their
  // scheduler tracks (and the per-cell harness track) from colliding on the
  // same Perfetto thread id. Empty (the default) preserves the single-cell
  // track names byte-for-byte. Set before Run()/RunTrace().
  void SetTraceScope(std::string scope) { trace_scope_ = std::move(scope); }
  const std::string& trace_scope() const { return trace_scope_; }

  // --- preemption support (requires SimOptions::track_running_tasks) ---

  // Attempts to place one task of `job` by evicting running tasks of strictly
  // lower precedence. On success the task's resources are allocated and the
  // victims' end events cancelled; returns the machine used, or
  // kInvalidMachineId if no machine can supply the resources even with
  // preemption. The caller starts the new task via StartTasks.
  // `victims_evicted`, if non-null, is incremented by the number of tasks
  // evicted for this placement (zero when the task fit without eviction).
  MachineId PreemptAndPlace(const Job& job, Rng& rng,
                            int* victims_evicted = nullptr);

  int64_t TasksPreempted() const { return tasks_preempted_; }
  const TaskRegistry& task_registry() const { return registry_; }

  // --- machine failure injection (SimOptions::machine_failure_rate_per_day) ---

  int64_t MachineFailures() const { return machine_failures_; }
  int64_t TasksKilledByFailures() const { return tasks_killed_by_failures_; }
  int64_t MachinesDown() const { return machines_down_; }
  bool MachineIsDown(MachineId machine) const {
    return machine < machine_down_.size() && machine_down_[machine] != 0;
  }

 protected:
  // Hook invoked after the initial fill and before arrivals start; subclasses
  // may inspect the initial cell state.
  virtual void OnSimulationStart() {}

  // Hook invoked after every task-end free (including initial-fill tasks).
  // The Mesos allocator uses it to re-offer newly available resources.
  virtual void OnTaskFreed() {}

  // Kills every running task on `machine` and reserves its capacity until
  // repair. Protected so test harnesses can inject deterministic failures.
  void FailMachine(MachineId machine);

 private:
  void PlaceInitialFill();
  void ScheduleNextArrival(JobType type);
  void ScheduleUtilizationSample();
  void CountSubmission(JobType type);
  void ScheduleNextMachineFailure();

  // Trace track for harness-level events (job submits, task starts/ends,
  // commits, failures). Track 0 ("cluster") unless a trace scope is set, in
  // which case a per-cell "<scope>cluster" track is registered lazily.
  uint16_t HarnessTraceTrack();

  // Runs a killed task's pending end-of-life callback (Mesos allocator
  // bookkeeping, per-scheduler held-resource accounts, MapReduce completion
  // counters). Machine failures and preemption cancel the task's end event,
  // which would otherwise silently skip the callback and leak those accounts.
  void RunEndCallbackForKill(const RunningTask& task);

  // Reference per-task lifecycle path (cohort_batching off); kept so the
  // differential tests can compare the batched path against it.
  void StartTasksPerTask(const Job& job, std::span<const TaskClaim> claims,
                         std::function<void(const TaskClaim&)> on_task_end);
  // Fires a cohort's shared end event: per-member callback/trace/registry
  // work in claim order, then per-machine batched frees.
  void FinishCohort(CohortStore::CohortId cohort_id);
  // Cancels a running task's pending end: its private event, or its cohort
  // membership (cancelling the shared event only when the cohort empties).
  void CancelTaskEnd(const RunningTask& task);

  ClusterConfig config_;
  SimOptions options_;
  // Owned by default; UseSharedSimulator() repoints sim_ at an external
  // master queue (federation) and drops the owned instance.
  std::unique_ptr<Simulator> owned_sim_;
  Simulator* sim_;
  CellState cell_;
  WorkloadGenerator generator_;
  Rng rng_;

  int64_t batch_submitted_ = 0;
  int64_t service_submitted_ = 0;
  std::vector<UtilizationSample> utilization_series_;

  TaskRegistry registry_;
  CohortStore cohorts_;
  // Scratch for FinishCohort's per-machine grouping, reused across cohorts.
  std::vector<MachineId> cohort_scratch_;
  int64_t tasks_preempted_ = 0;
  TraceRecorder* trace_ = nullptr;
  std::string trace_scope_;
  int32_t harness_track_ = -1;  // lazily registered; -1 = not yet

  // End callbacks for per-task-path tasks (cohort_batching off) that are
  // registered for preemption/failure tracking; keyed by task id so the kill
  // path can still run them after the end event is cancelled. Lookup only —
  // iteration order never observed (det-unordered-iter, DESIGN.md §9).
  std::unordered_map<uint64_t, std::function<void(const TaskClaim&)>>
      pertask_end_callbacks_;

  // Failure injection state: capacity reserved on down machines, pending
  // repair.
  std::vector<Resources> downtime_reservation_;
  std::vector<char> machine_down_;
  int64_t machine_failures_ = 0;
  int64_t tasks_killed_by_failures_ = 0;
  int64_t machines_down_ = 0;
};

}  // namespace omega

