#include "src/scheduler/partitioned.h"

#include <algorithm>

#include "src/common/logging.h"

namespace omega {

PartitionedSimulation::PartitionedSimulation(const ClusterConfig& config,
                                             const SimOptions& options,
                                             const SchedulerConfig& batch_config,
                                             const SchedulerConfig& service_config,
                                             double batch_fraction)
    : ClusterSimulation(config, options) {
  OMEGA_CHECK(batch_fraction > 0.0 && batch_fraction < 1.0);
  const auto split = static_cast<MachineId>(std::clamp<double>(
      batch_fraction * config.num_machines, 1.0, config.num_machines - 1.0));
  batch_range_ = MachineRange{0, split};
  service_range_ = MachineRange{split, config.num_machines};
  batch_ = std::make_unique<MonolithicScheduler>(*this, batch_config,
                                                 rng().Fork(), batch_range_);
  service_ = std::make_unique<MonolithicScheduler>(*this, service_config,
                                                   rng().Fork(), service_range_);
}

void PartitionedSimulation::SubmitJob(const JobPtr& job) {
  if (job->type == JobType::kBatch) {
    batch_->Submit(job);
  } else {
    service_->Submit(job);
  }
}

double PartitionedSimulation::PartitionCpuUtilization(
    const MachineRange& range) const {
  Resources capacity;
  Resources allocated;
  for (MachineId m = range.begin; m < range.end; ++m) {
    capacity += cell().machine(m).capacity;
    allocated += cell().machine(m).allocated;
  }
  return capacity.cpus > 0.0 ? allocated.cpus / capacity.cpus : 0.0;
}

}  // namespace omega
