#include "src/scheduler/monolithic.h"

#include "src/common/logging.h"

namespace omega {

MonolithicScheduler::MonolithicScheduler(ClusterSimulation& harness,
                                         SchedulerConfig config, Rng rng,
                                         MachineRange range)
    : QueueScheduler(harness, std::move(config)),
      placer_(/*max_random_probes=*/32, /*respect_constraints=*/false, range),
      rng_(rng) {}

void MonolithicScheduler::BeginAttempt(const JobPtr& job) {
  const uint32_t remaining = job->TasksRemaining();
  const Duration decision = AccountAttemptStart(job, remaining);

  // The monolithic scheduler is the sole writer of cell state, so placement
  // can commit immediately; conflicts are impossible ("none (serialized)",
  // Table 1). The scheduler then stays busy for the decision time.
  uint32_t placed = 0;
  if (!ExceedsResourceLimit(*job)) {
    scratch_claims_.clear();
    placed = placer_.PlaceTasks(harness_.cell(), *job, remaining, rng_,
                                &scratch_claims_);
    const CommitResult result =
        harness_.cell().Commit(scratch_claims_, ConflictMode::kFineGrained,
                               CommitMode::kIncremental);
    OMEGA_CHECK(result.conflicted == 0);
    OMEGA_CHECK(static_cast<uint32_t>(result.accepted) == placed);
    metrics_.RecordTransaction(result.accepted, 0);
    StartPlacedTasks(*job, scratch_claims_);
  }

  harness_.sim().ScheduleAfter(decision, [this, job, placed] {
    CompleteAttempt(job, placed, /*had_conflict=*/false);
  });
}

MonolithicSimulation::MonolithicSimulation(const ClusterConfig& config,
                                           const SimOptions& options,
                                           const SchedulerConfig& scheduler_config)
    : ClusterSimulation(config, options) {
  scheduler_ = std::make_unique<MonolithicScheduler>(*this, scheduler_config,
                                                     rng().Fork());
}

void MonolithicSimulation::SubmitJob(const JobPtr& job) {
  scheduler_->Submit(job);
}

}  // namespace omega
