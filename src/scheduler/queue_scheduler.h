// A scheduler that processes one job at a time from a FIFO queue (§4,
// "Our schedulers process one request at a time").
//
// Subclasses implement BeginAttempt() with the architecture-specific placement
// and commit protocol; the base class owns the queue, busy-state machine,
// retry/abandonment policy and metric accounting shared by the monolithic and
// shared-state schedulers.
#pragma once

#include <deque>
#include <string>

#include "src/scheduler/cluster_simulation.h"
#include "src/scheduler/config.h"
#include "src/scheduler/metrics.h"

namespace omega {

class QueueScheduler {
 public:
  QueueScheduler(ClusterSimulation& harness, SchedulerConfig config);
  virtual ~QueueScheduler() = default;
  QueueScheduler(const QueueScheduler&) = delete;
  QueueScheduler& operator=(const QueueScheduler&) = delete;

  // Enqueues a job; starts an attempt immediately if idle. Jobs beyond the
  // admission limit (if configured) are rejected and counted as abandoned.
  void Submit(const JobPtr& job);

  bool busy() const { return busy_; }
  size_t QueueDepth() const { return queue_.size(); }
  const std::string& name() const { return config_.name; }
  const SchedulerConfig& config() const { return config_; }
  SchedulerMetrics& metrics() { return metrics_; }
  const SchedulerMetrics& metrics() const { return metrics_; }

 protected:
  // Starts the architecture-specific scheduling attempt for `job`. The
  // implementation must, after the decision time elapses, call
  // CompleteAttempt() exactly once.
  virtual void BeginAttempt(const JobPtr& job) = 0;

  // Shared epilogue: updates job bookkeeping and decides between completion,
  // immediate retry (job stays at the head), and abandonment.
  // `tasks_placed` tasks were committed this attempt; `had_conflict` marks a
  // transaction that hit at least one conflict.
  void CompleteAttempt(const JobPtr& job, uint32_t tasks_placed, bool had_conflict);

  // Records wait time (first attempt only) and attempt count; returns the
  // decision duration for this attempt. Call at the start of BeginAttempt.
  Duration AccountAttemptStart(const JobPtr& job, uint32_t tasks_in_attempt);

  // True if taking on `job` would exceed the configured resource limit.
  bool ExceedsResourceLimit(const Job& job) const;

  // Starts committed tasks, maintaining the held-resources account when a
  // resource limit is configured.
  void StartPlacedTasks(const Job& job, std::span<const TaskClaim> claims);

  void TryStartNext();

  // Trace track for this scheduler, registered lazily under config_.name.
  // Returns 0 (the cluster track) when no recorder is attached.
  uint16_t TraceTrack();

  ClusterSimulation& harness_;
  SchedulerConfig config_;
  SchedulerMetrics metrics_;
  std::deque<JobPtr> queue_;
  bool busy_ = false;

  // Resources currently held by jobs this scheduler placed (for the optional
  // per-scheduler resource limit, §3.4).
  Resources held_;

 private:
  // Marks whether the in-flight attempt was triggered by a conflict on the
  // previous attempt of the same job (for the no-conflict busyness estimate).
  bool pending_conflict_retry_ = false;
  int32_t trace_track_ = -1;  // lazily registered; -1 = not yet
};

}  // namespace omega

