#include "src/scheduler/placement.h"

#include <algorithm>

namespace omega {

bool MachineSatisfiesConstraints(const Machine& machine, const Job& job) {
  for (const PlacementConstraint& c : job.constraints) {
    if (c.attribute_key < 0 ||
        static_cast<size_t>(c.attribute_key) >= machine.attributes.size()) {
      // Machines without the attribute fail equality constraints and satisfy
      // inequality constraints.
      if (c.must_equal) {
        return false;
      }
      continue;
    }
    const bool equal = machine.attributes[c.attribute_key] == c.attribute_value;
    if (equal != c.must_equal) {
      return false;
    }
  }
  return true;
}

uint32_t RandomizedFirstFitPlacer::PlaceTasks(const CellState& cell, const Job& job,
                                              uint32_t count, Rng& rng,
                                              std::vector<TaskClaim>* claims) {
  const uint32_t num_machines = range_.SizeIn(cell.NumMachines());
  if (num_machines == 0 || count == 0) {
    return 0;
  }
  PendingClaims& pending = pending_scratch_;
  pending.Reset(cell.NumMachines());
  uint32_t placed = 0;
  for (uint32_t t = 0; t < count; ++t) {
    MachineId chosen = kInvalidMachineId;
    // Phase 1: random probes.
    for (uint32_t probe = 0; probe < max_random_probes_; ++probe) {
      const MachineId m =
          range_.Nth(static_cast<uint32_t>(rng.NextBounded(num_machines)));
      if (respect_constraints_ &&
          !MachineSatisfiesConstraints(cell.machine(m), job)) {
        continue;
      }
      if (cell.CanFitWithPending(m, job.task_resources, pending.On(m))) {
        chosen = m;
        break;
      }
    }
    // Phase 2: linear scan from a random offset; guarantees a fit is found
    // whenever one exists. Whole blocks whose availability summary cannot fit
    // the request are skipped — their machines would all fail CanFit, so the
    // first machine accepted (and hence the placement) is unchanged. The scan
    // wraps at most once, so a block is re-summarized at most twice.
    if (chosen == kInvalidMachineId && cell.soa_scan() &&
        respect_constraints_ && cell.intra_trial_pool() != nullptr) {
      // Sharded SoA sweep (DESIGN.md §12), engaged only under constraints:
      // without them the sequential branch below touches O(summary consults
      // + 1 hit) machines — the two-level pruning already removed the linear
      // scan, so a pool dispatch can only add latency (measured ~16% on the
      // mega-cell sweep). With constraints, raw-fit hits that fail the
      // constraint re-check make the scan genuinely long, and sharding pays.
      // This is the same wrapped scan as the
      // sequential SoA branch below — one RNG draw for the start offset, the
      // segment [start, n) then the segment [0, start) — but each segment's
      // first full-predicate match is found by a deterministic FirstMatch
      // reduction over contiguous shards. The per-index predicate (raw fit,
      // constraints, pending re-check) reads only shared state, so shards
      // evaluate concurrently; the ordered merge returns the lowest matching
      // index, which is exactly the machine the sequential sweep would
      // accept first. Summaries are refreshed up front on this thread so
      // workers scan with full pruning without writing anything.
      const auto start = static_cast<uint32_t>(rng.NextBounded(num_machines));
      cell.RefreshSummaries();
      WorkerPool* pool = cell.intra_trial_pool();
      auto scan_idx = [&](uint32_t idx_begin, uint32_t idx_end) -> size_t {
        // Lowest range-relative index in [idx_begin, idx_end) — an ascending
        // machine-id span — passing the full placement predicate.
        MachineId from = range_.Nth(idx_begin);
        const MachineId to = range_.Nth(idx_end);
        while (from < to) {
          const MachineId hit =
              cell.FindFirstFitNoRefresh(from, to, job.task_resources);
          if (hit == kInvalidMachineId) {
            return kReduceNotFound;
          }
          if ((!respect_constraints_ ||
               MachineSatisfiesConstraints(cell.machine(hit), job)) &&
              cell.CanFitWithPending(hit, job.task_resources,
                                     pending.On(hit))) {
            return static_cast<size_t>(hit - range_.Nth(0));
          }
          from = hit + 1;
        }
        return kReduceNotFound;
      };
      auto sweep = [&](uint32_t seg_begin, uint32_t seg_end) -> size_t {
        const size_t seg_n = seg_end - seg_begin;
        if (seg_n == 0) {
          return kReduceNotFound;
        }
        const size_t grain = ReduceGrain(seg_n, pool->concurrency());
        return reducer_.FirstMatch(pool, seg_n, grain, [&](size_t b, size_t e) {
          return scan_idx(seg_begin + static_cast<uint32_t>(b),
                          seg_begin + static_cast<uint32_t>(e));
        });
      };
      size_t idx = sweep(start, num_machines);
      if (idx == kReduceNotFound) {
        idx = sweep(0, start);
      }
      if (idx != kReduceNotFound) {
        chosen = range_.Nth(static_cast<uint32_t>(idx));
      }
    } else if (chosen == kInvalidMachineId && cell.soa_scan()) {
      // SoA sweep: FindFirstFit walks the contiguous per-resource arrays
      // (with two-level summary pruning) and returns the first machine whose
      // raw allocation fits. Machines it skips fail CanFit outright, so they
      // would fail the reference loop's CanFitWithPending too (pending only
      // shrinks availability) — candidates just need the constraint and
      // pending re-checks, and a rejected candidate resumes the sweep at the
      // next id. Same claims, same RNG draws as the reference branch below.
      const auto start = static_cast<uint32_t>(rng.NextBounded(num_machines));
      for (uint32_t i = 0; i < num_machines;) {
        const uint32_t idx = (start + i) % num_machines;
        const MachineId m = range_.Nth(idx);
        // Machine ids ascend until the scan wraps at the range end.
        const uint32_t span = num_machines - idx;
        const MachineId hit = cell.FindFirstFit(m, m + span, job.task_resources);
        if (hit == kInvalidMachineId) {
          i += span;
          continue;
        }
        i += hit - m;
        if (respect_constraints_ &&
            !MachineSatisfiesConstraints(cell.machine(hit), job)) {
          ++i;
          continue;
        }
        if (cell.CanFitWithPending(hit, job.task_resources, pending.On(hit))) {
          chosen = hit;
          break;
        }
        ++i;
      }
    } else if (chosen == kInvalidMachineId) {
      const auto start = static_cast<uint32_t>(rng.NextBounded(num_machines));
      for (uint32_t i = 0; i < num_machines;) {
        const uint32_t idx = (start + i) % num_machines;
        const MachineId m = range_.Nth(idx);
        if (!cell.BlockMayFit(m, job.task_resources)) {
          // Jump to the next block boundary, clamped to the wrap point where
          // the scan's machine ids stop ascending.
          const uint32_t to_next_block = CellState::NextBlockStart(m) - m;
          i += std::min(to_next_block, num_machines - idx);
          continue;
        }
        if (respect_constraints_ &&
            !MachineSatisfiesConstraints(cell.machine(m), job)) {
          ++i;
          continue;
        }
        if (cell.CanFitWithPending(m, job.task_resources, pending.On(m))) {
          chosen = m;
          break;
        }
        ++i;
      }
    }
    if (chosen == kInvalidMachineId) {
      break;  // No machine fits: the remaining tasks cannot be placed now.
    }
    claims->push_back(TaskClaim{chosen, job.task_resources,
                                cell.machine(chosen).seqnum});
    pending.Add(chosen, job.task_resources);
    ++placed;
  }
  return placed;
}

}  // namespace omega
