// Statically partitioned scheduling (§3.2, Table 1).
//
// The cluster is split into fixed machine subsets, one per workload type,
// each served by its own scheduler with no resource sharing ("most cloud
// computing schedulers assume they have complete control over a set of
// resources, deployed onto dedicated, statically partitioned clusters").
// The paper dismisses this design because fixed partitions fragment the
// cluster: one partition can be full while the other idles — visible here as
// abandonment/backlog in the loaded partition despite cluster-wide headroom.
#pragma once

#include <memory>

#include "src/scheduler/monolithic.h"

namespace omega {

class PartitionedSimulation final : public ClusterSimulation {
 public:
  // `batch_fraction` of the machines form the batch partition; the rest form
  // the service partition.
  PartitionedSimulation(const ClusterConfig& config, const SimOptions& options,
                        const SchedulerConfig& batch_config,
                        const SchedulerConfig& service_config,
                        double batch_fraction = 0.5);

  void SubmitJob(const JobPtr& job) override;

  MonolithicScheduler& batch_scheduler() { return *batch_; }
  MonolithicScheduler& service_scheduler() { return *service_; }
  MachineRange batch_range() const { return batch_range_; }
  MachineRange service_range() const { return service_range_; }

  // Utilization of each partition (CPU dimension) — the fragmentation the
  // paper calls out shows up as a large gap between the two.
  double PartitionCpuUtilization(const MachineRange& range) const;

 private:
  MachineRange batch_range_;
  MachineRange service_range_;
  std::unique_ptr<MonolithicScheduler> batch_;
  std::unique_ptr<MonolithicScheduler> service_;
};

}  // namespace omega

