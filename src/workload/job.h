// Jobs and tasks (§2.1).
//
// A job is one or more tasks; the workload is split two ways into long-running
// *service* jobs and *batch* jobs. Tasks within a job have identical resource
// requirements (the common case in the traces, which also justifies the linear
// decision-time model t_decision = t_job + t_task * tasks).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/resources.h"
#include "src/common/sim_time.h"

namespace omega {

using JobId = uint64_t;

enum class JobType : uint8_t {
  kBatch,
  kService,
};

inline const char* JobTypeName(JobType type) {
  return type == JobType::kBatch ? "batch" : "service";
}

// The common scale for the relative importance of work that all schedulers
// must agree on, called "precedence" (§3.4). Modeled on the public trace's
// priority bands: batch jobs sit in the lower bands, service jobs in the
// production bands.
inline int32_t DefaultPrecedence(JobType type) {
  return type == JobType::kService ? 10 : 4;
}

// A placement constraint over machine attributes (high-fidelity simulator,
// §5): the task may only run on machines whose attribute `key` compares
// (equal / not-equal) to `value`.
struct PlacementConstraint {
  int32_t attribute_key = 0;
  int32_t attribute_value = 0;
  bool must_equal = true;

  bool operator==(const PlacementConstraint&) const = default;
};

// Extra shape information carried by MapReduce jobs (§6): activity counts and
// historical average activity durations, from which the specialized scheduler
// predicts completion time as a function of worker count.
struct MapReduceSpec {
  int64_t num_map_activities = 0;
  int64_t num_reduce_activities = 0;
  Duration map_activity_duration;
  Duration reduce_activity_duration;
  // Worker count the user configured at submission.
  int32_t requested_workers = 0;

  bool operator==(const MapReduceSpec&) const = default;
};

// A unit of scheduling work. Static description plus the mutable bookkeeping
// a scheduler maintains while placing it.
struct Job {
  // --- static description (what a trace record contains) ---
  JobId id = 0;
  JobType type = JobType::kBatch;
  SimTime submit_time;
  uint32_t num_tasks = 1;
  Duration task_duration;      // identical for all tasks of the job
  Resources task_resources;    // identical for all tasks of the job
  int32_t precedence = 0;      // see DefaultPrecedence()
  std::vector<PlacementConstraint> constraints;
  std::optional<MapReduceSpec> mapreduce;

  // --- scheduling bookkeeping ---
  uint32_t tasks_scheduled = 0;
  uint32_t scheduling_attempts = 0;
  // Attempts whose transaction hit at least one conflict (drives the
  // conflict-fraction metric).
  uint32_t conflicted_attempts = 0;
  std::optional<SimTime> first_attempt_time;
  bool abandoned = false;
  // Withdrawn by the submitter (the federation layer spills a timed-out job
  // to another cell); schedulers drop cancelled jobs when they reach the
  // queue head, without counting them as scheduled or abandoned.
  bool cancelled = false;

  uint32_t TasksRemaining() const { return num_tasks - tasks_scheduled; }
  bool FullyScheduled() const { return tasks_scheduled == num_tasks; }

  // Aggregate resource request of the whole job.
  Resources TotalRequest() const {
    return task_resources * static_cast<double>(num_tasks);
  }
};

}  // namespace omega

